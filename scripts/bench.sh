#!/usr/bin/env bash
# Runs the headline micro-benchmarks and records the results as
# BENCH_<date>.json in the repo root, so perf changes can be compared
# across commits.
#
#   BENCH='BenchmarkDecision' BENCHTIME=5s scripts/bench.sh
#
# `scripts/bench.sh latency_profile` runs only the end-to-end latency
# profile (span-instrumented loadgen + trace report check) and merges
# the result into today's BENCH_<date>.json.
#
# `scripts/bench.sh failover` runs only the leader/follower failover
# soak (real daemons, SIGKILL, promotion) and merges the result the
# same way.
#
# `scripts/bench.sh shard_scaling` runs only the sharded control-plane
# scaling sweep (selfhost gateway at 1/2/4/8 shards on k=8) and merges
# the result the same way.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkDecision|BenchmarkProbeEvent|BenchmarkNetworkFork|BenchmarkAdmitFlow|BenchmarkTraceOverhead}"
BENCHTIME="${BENCHTIME:-2s}"
OUT="BENCH_$(date +%Y%m%d).json"

# End-to-end latency profile: a span-instrumented selfhost loadgen run.
# Sets $latency_profile to a JSON object with the wall-clock stage
# percentiles (or null). Also sanity-checks the span file by rendering
# it with `updatectl trace report` (LAT_RATE=0 skips the whole block).
LAT_RATE="${LAT_RATE:-800}"
LAT_DURATION="${LAT_DURATION:-3s}"
latency_profile=null
run_latency_profile() {
  [ "$LAT_RATE" = 0 ] && return 0
  local span_file lat_json
  span_file=$(mktemp)
  lat_json=$(go run ./cmd/loadgen -selfhost -rate "$LAT_RATE" -duration "$LAT_DURATION" \
    -batch 16 -conns 4 -retries 3 -spans "$span_file" -json 2>/dev/null) || lat_json=null
  if [ "$lat_json" != null ]; then
    # The report rendering from the same spans must succeed: exit 0
    # proves the span file is complete and well-formed.
    go run ./cmd/updatectl trace report "$span_file" -top 3 >/dev/null
    latency_profile=$(LAT_JSON="$lat_json" python3 - <<'PY'
import json, os
doc = json.loads(os.environ["LAT_JSON"])
lat = doc.get("latency") or {}
out = {k: lat.get(k, 0) for k in (
    "e2e_p50_ms", "e2e_p95_ms", "e2e_p99_ms", "e2e_p999_ms",
    "queue_p50_ms", "queue_p99_ms", "rounds_p50_ms", "rounds_p99_ms",
    "spans_dropped")}
out["accepted_per_sec"] = round(doc.get("accepted_per_sec", 0), 1)
print(json.dumps(out))
PY
    ) || latency_profile=null
  fi
  rm -f "$span_file"
}

# Failover soak: a real leader daemon replicating its WAL to a real
# warm-follower daemon, the log grown well past the checkpoint interval
# (the design target is >=10x), the leader SIGKILLed mid-commit, the
# follower promoted. Records the promotion latency next to the follower
# lag that bounds it — failover cost must track replication lag, not
# log length, because the follower has already folded the log
# (FAILOVER_RATE=0 skips the block).
FAILOVER_RATE="${FAILOVER_RATE:-1000}"
FAILOVER_DURATION="${FAILOVER_DURATION:-3s}"
FAILOVER_CKPT="${FAILOVER_CKPT:-32}"
failover=null

# daemon_line waits for a startup line with the given prefix in a
# daemon's log and prints its suffix (the bound address).
daemon_line() {
  local file=$1 prefix=$2 i s
  for i in $(seq 200); do
    s=$(sed -n "s|^$prefix||p" "$file" 2>/dev/null | head -1)
    if [ -n "$s" ]; then printf '%s\n' "$s"; return 0; fi
    sleep 0.05
  done
  echo "bench.sh: daemon never printed '$prefix' (see $file)" >&2
  return 1
}

run_failover() {
  [ "$FAILOVER_RATE" = 0 ] && return 0
  local dir laddr faddr fmet lag_at_kill leader_pid follower_pid
  dir=$(mktemp -d)
  go build -o "$dir/updated" ./cmd/updated

  "$dir/updated" -addr 127.0.0.1:0 -k 4 -util 0.3 -seed 1 \
    -wal-dir "$dir/wal-leader" -wal-sync group -wal-checkpoint-every "$FAILOVER_CKPT" \
    >"$dir/leader.log" 2>&1 &
  leader_pid=$!
  laddr=$(daemon_line "$dir/leader.log" "updated: listening on ") || { rm -rf "$dir"; return 0; }

  "$dir/updated" -addr 127.0.0.1:0 -k 4 -util 0.3 -seed 1 \
    -telemetry-addr 127.0.0.1:0 \
    -wal-dir "$dir/wal-follower" -wal-sync group -wal-checkpoint-every "$FAILOVER_CKPT" \
    -follow "$laddr" \
    >"$dir/follower.log" 2>&1 &
  follower_pid=$!
  faddr=$(daemon_line "$dir/follower.log" "updated: listening on ") || {
    kill -9 "$leader_pid" 2>/dev/null || true; rm -rf "$dir"; return 0; }
  fmet=$(daemon_line "$dir/follower.log" "updated: telemetry on ")

  # Load the leader; every accepted event is group-committed through
  # the synced follower before its ack, so the follower's fold tracks
  # the log end within the replication lag being measured.
  go run ./cmd/loadgen -addr "$laddr" -rate "$FAILOVER_RATE" -duration "$FAILOVER_DURATION" \
    -batch 32 -conns 4 -retries 3 -json >"$dir/load.json" 2>/dev/null || echo null >"$dir/load.json"

  lag_at_kill=$(FMET="$fmet" python3 -c '
import os, urllib.request
body = urllib.request.urlopen(os.environ["FMET"], timeout=5).read().decode()
for line in body.splitlines():
    if line.startswith("netupdate_repl_lag_records "):
        print(line.split()[1]); break
else:
    print(0)' 2>/dev/null || echo 0)

  kill -9 "$leader_pid" 2>/dev/null || true
  wait "$leader_pid" 2>/dev/null || true
  go run ./cmd/updatectl -addr "$faddr" repl promote >"$dir/promote.log" || {
    kill -9 "$follower_pid" 2>/dev/null || true; rm -rf "$dir"; return 0; }

  failover=$(FMET="$fmet" LAG_AT_KILL="$lag_at_kill" CKPT="$FAILOVER_CKPT" \
    LOAD_JSON="$dir/load.json" python3 - <<'PY'
import json, os, urllib.request
body = urllib.request.urlopen(os.environ["FMET"], timeout=5).read().decode()
m = {}
for line in body.splitlines():
    if line and not line.startswith("#"):
        parts = line.split()
        if len(parts) == 2:
            m[parts[0]] = parts[1]
def num(name, default=0):
    try:
        return int(float(m.get(name, default)))
    except ValueError:
        return default
try:
    load = json.load(open(os.environ["LOAD_JSON"])) or {}
except Exception:
    load = {}
out = {
    "failover_ms": num("netupdate_repl_failover_ms"),
    "lag_p99_records": num('netupdate_repl_lag_records_q{q="0.99"}'),
    "lag_at_kill_records": int(float(os.environ["LAG_AT_KILL"] or 0)),
    "wal_last_seq": num("netupdate_wal_last_seq"),
    "checkpoint_seq": num("netupdate_wal_checkpoint_seq"),
    "checkpoint_every": int(os.environ["CKPT"]),
    "accepted_per_sec": round(load.get("accepted_per_sec", 0), 1),
}
print(json.dumps(out))
PY
  ) || failover=null

  kill -9 "$follower_pid" 2>/dev/null || true
  wait "$follower_pid" 2>/dev/null || true
  rm -rf "$dir"
}

# Shard scaling sweep: the same saturating open-loop workload against a
# selfhost gateway at each shard count, recording the server-side
# completion rate (events done per second — ingest acks are bounded by
# the client's pipeline window, so completion is the honest throughput
# number). On one CPU the speedup is not parallelism: each shard's
# world carries ~1/N of the background flows and queue depth, so every
# probe, placement, and incremental replan touches a fraction of the
# interferer set. Demand is kept low and the cross pool generous so
# cross-shard admission never skews the sweep (SHARD_RATE=0 skips it).
SHARD_RATE="${SHARD_RATE:-20000}"
SHARD_DURATION="${SHARD_DURATION:-4s}"
SHARD_K="${SHARD_K:-8}"
SHARD_UTIL="${SHARD_UTIL:-0.75}"
SHARD_COUNTS="${SHARD_COUNTS:-1 2 4 8}"
shard_scaling=null
run_shard_scaling() {
  [ "$SHARD_RATE" = 0 ] && return 0
  local n out runs=""
  for n in $SHARD_COUNTS; do
    out=$(go run ./cmd/loadgen -selfhost -shards "$n" -k "$SHARD_K" -util "$SHARD_UTIL" \
      -rate "$SHARD_RATE" -duration "$SHARD_DURATION" -batch 64 -conns 2 \
      -min-flows 1 -max-flows 1 -demand-mbps 1 -watermark 1000000 \
      -cross-pool-frac 0.5 -json 2>/dev/null) || out=null
    runs="$runs{\"shards\": $n, \"run\": $out},"
  done
  shard_scaling=$(RUNS="$runs" python3 - <<'PY'
import json, os
runs = json.loads("[" + os.environ["RUNS"].rstrip(",") + "]")
per = []
for r in runs:
    run = r.get("run") or {}
    srv = run.get("server") or {}
    el = run.get("elapsed_sec") or 0
    per.append({
        "shards": r["shards"],
        "completed_per_sec": round(srv.get("events_done", 0) / el, 1) if el else 0,
        "ingest_accepted_per_sec": round(srv.get("ingest_accepted", 0) / el, 1) if el else 0,
        "cross_admitted": srv.get("cross_events", 0),
        "cross_rejected": srv.get("cross_rejected", 0),
    })
by = {p["shards"]: p for p in per}
out = {"per_shards": per}
if by.get(1, {}).get("completed_per_sec", 0) > 0 and 4 in by:
    out["speedup_4x"] = round(by[4]["completed_per_sec"] / by[1]["completed_per_sec"], 2)
print(json.dumps(out))
PY
  ) || shard_scaling=null
}

if [ "${1:-}" = "shard_scaling" ]; then
  run_shard_scaling
  if [ "$shard_scaling" = null ]; then
    echo "bench.sh: shard scaling run failed" >&2
    exit 1
  fi
  OUT="$OUT" PROFILE="$shard_scaling" python3 - <<'PY'
import json, os
path, profile = os.environ["OUT"], json.loads(os.environ["PROFILE"])
try:
    with open(path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {}
doc["shard_scaling"] = profile
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"merged shard_scaling into {path}")
PY
  printf '%s\n' "$shard_scaling"
  exit 0
fi

if [ "${1:-}" = "failover" ]; then
  run_failover
  if [ "$failover" = null ]; then
    echo "bench.sh: failover run failed" >&2
    exit 1
  fi
  OUT="$OUT" PROFILE="$failover" python3 - <<'PY'
import json, os
path, profile = os.environ["OUT"], json.loads(os.environ["PROFILE"])
try:
    with open(path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {}
doc["failover"] = profile
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"merged failover into {path}")
PY
  printf '%s\n' "$failover"
  exit 0
fi

if [ "${1:-}" = "latency_profile" ]; then
  run_latency_profile
  if [ "$latency_profile" = null ]; then
    echo "bench.sh: latency profile run failed" >&2
    exit 1
  fi
  OUT="$OUT" PROFILE="$latency_profile" python3 - <<'PY'
import json, os
path, profile = os.environ["OUT"], json.loads(os.environ["PROFILE"])
try:
    with open(path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {}
doc["latency_profile"] = profile
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"merged latency_profile into {path}")
PY
  printf '%s\n' "$latency_profile"
  exit 0
fi

raw=$(go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" .)
printf '%s\n' "$raw"

# Ingest soak: an open-loop selfhost loadgen run recording sustained
# events/sec and the overload-rejection rate (SOAK_RATE=0 skips it).
SOAK_RATE="${SOAK_RATE:-1500}"
SOAK_DURATION="${SOAK_DURATION:-3s}"
soak=null
if [ "$SOAK_RATE" != 0 ]; then
  soak=$(go run ./cmd/loadgen -selfhost -rate "$SOAK_RATE" -duration "$SOAK_DURATION" \
    -batch 16 -conns 4 -retries 3 -json 2>/dev/null) || soak=null
fi

# Codec comparison soak: the same offered rate through the JSON v1
# codec and the pipelined binary v2 codec, so the wire-format win is
# tracked release over release (CODEC_RATE=0 skips it). The watermark
# is lifted out of the way: this measures transport, not backpressure.
CODEC_RATE="${CODEC_RATE:-20000}"
CODEC_DURATION="${CODEC_DURATION:-3s}"
codec_v1=null
codec_v2=null
if [ "$CODEC_RATE" != 0 ]; then
  codec_v1=$(go run ./cmd/loadgen -selfhost -codec v1 -rate "$CODEC_RATE" -duration "$CODEC_DURATION" \
    -batch 128 -conns 4 -watermark 1000000 -json 2>/dev/null) || codec_v1=null
  codec_v2=$(go run ./cmd/loadgen -selfhost -codec v2 -rate "$CODEC_RATE" -duration "$CODEC_DURATION" \
    -batch 128 -conns 4 -watermark 1000000 -json 2>/dev/null) || codec_v2=null
fi

# WAL durability soak: the ingest soak repeated with a group-commit
# write-ahead log, then a restart on the same directory so the recovery
# path (checkpoint restore + log-suffix replay) is timed for real. The
# summary reports append overhead vs the no-WAL soak above — the
# recovery design budgets <10% — and recovery_ms (WAL_RATE=0 skips it).
WAL_RATE="${WAL_RATE:-$SOAK_RATE}"
WAL_DURATION="${WAL_DURATION:-$SOAK_DURATION}"
wal_soak=null
wal_restart=null
if [ "$WAL_RATE" != 0 ] && [ "$SOAK_RATE" != 0 ]; then
  wal_dir=$(mktemp -d)
  wal_soak=$(go run ./cmd/loadgen -selfhost -rate "$WAL_RATE" -duration "$WAL_DURATION" \
    -batch 16 -conns 4 -retries 3 -wal-dir "$wal_dir" -wal-sync group -json 2>/dev/null) || wal_soak=null
  wal_restart=$(go run ./cmd/loadgen -selfhost -rate 50 -duration 1s \
    -batch 8 -conns 2 -wal-dir "$wal_dir" -wal-sync group -json 2>/dev/null) || wal_restart=null
  rm -rf "$wal_dir"
fi
run_latency_profile
run_failover
run_shard_scaling

wal_summary=null
if [ "$wal_soak" != null ]; then
  wal_summary=$(BASE_JSON="$soak" WAL_JSON="$wal_soak" RESTART_JSON="$wal_restart" python3 - <<'PY'
import json, os

def load(name):
    try:
        return json.loads(os.environ[name])
    except Exception:
        return None

base, walrun, restart = load("BASE_JSON"), load("WAL_JSON"), load("RESTART_JSON")
out = {}
if base and walrun:
    b = base.get("accepted_per_sec", 0)
    w = walrun.get("accepted_per_sec", 0)
    out["baseline_accepted_per_sec"] = round(b, 1)
    out["wal_accepted_per_sec"] = round(w, 1)
    if b > 0:
        out["append_overhead_pct"] = round((b - w) * 100 / b, 2)
srv = (restart or {}).get("server") or {}
out["recovery_ms"] = srv.get("wal_recovery_ms", 0)
out["replayed_records"] = srv.get("wal_replayed", 0)
print(json.dumps(out))
PY
  ) || wal_summary=null
fi

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
  printf '  "benchmarks": [\n'
  printf '%s\n' "$raw" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      if (sep) printf "%s\n", sep
      line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, $3)
      if (NF >= 8) line = line sprintf(", \"bytes_per_op\": %s, \"allocs_per_op\": %s", $5, $7)
      printf "%s}", line
      sep = ","
    }
    END { printf "\n" }'
  printf '  ],\n'
  # Tracing overhead: ring-sink vs tracing-disabled end-to-end runs
  # (BenchmarkTraceOverhead/{off,ring}). Deltas near zero mean the
  # observability layer is effectively free when disabled and cheap live.
  printf '%s\n' "$raw" | awk '
    # The -N GOMAXPROCS suffix is absent when GOMAXPROCS is 1.
    $1 ~ /^BenchmarkTraceOverhead\/off(-[0-9]+)?$/  { off = $3 }
    $1 ~ /^BenchmarkTraceOverhead\/ring(-[0-9]+)?$/ { ring = $3 }
    END {
      printf "  \"trace_overhead\": "
      if (off > 0 && ring > 0)
        printf "{\"off_ns_per_op\": %s, \"ring_ns_per_op\": %s, \"delta_pct\": %.2f}\n", off, ring, (ring - off) * 100 / off
      else
        printf "null\n"
    }'
  printf '  ,"loadgen_soak":\n'
  printf '%s\n' "$soak" | sed 's/^/  /'
  printf '  ,"codec_compare": {\n'
  printf '  "v1":\n'
  printf '%s\n' "$codec_v1" | sed 's/^/  /'
  printf '  ,"v2":\n'
  printf '%s\n' "$codec_v2" | sed 's/^/  /'
  printf '  }\n'
  printf '  ,"latency_profile": %s\n' "$latency_profile"
  printf '  ,"failover": %s\n' "$failover"
  printf '  ,"shard_scaling": %s\n' "$shard_scaling"
  printf '  ,"wal_recovery": {\n'
  printf '  "summary": %s\n' "$wal_summary"
  printf '  ,"soak":\n'
  printf '%s\n' "$wal_soak" | sed 's/^/  /'
  printf '  ,"restart":\n'
  printf '%s\n' "$wal_restart" | sed 's/^/  /'
  printf '  }\n'
  printf '}\n'
} >"$OUT"

echo "wrote $OUT"
