#!/usr/bin/env bash
# Fails when a tier-1 micro-benchmark regresses beyond BENCH_TOLERANCE
# (default 1.2, i.e. >20% slower) against a pinned BENCH_<date>.json
# baseline.
#
# Raw ns/op is meaningless across machines, so every number is first
# normalized by the run's BenchmarkAdmitFlow result — a small, stable
# planner kernel that scales with the host like everything else here.
# What the guard compares is each benchmark's ratio to AdmitFlow, now
# vs at baseline time. Each benchmark runs BENCH_COUNT times (default
# 3) and the minimum ns/op is used, which strips scheduler noise.
#
# The baseline is pinned explicitly — as the first argument or the
# BASELINE env var — so the guard always measures against a known
# anchor. (The old behavior of silently picking the newest
# BENCH_<date>.json let a fresh bench.sh run become its own baseline,
# turning the guard into a no-op exactly when a regression landed.)
# With no pin it still falls back to the newest file, minus any written
# today, and says so.
#
#   scripts/bench_guard.sh BENCH_20260801.json   # pinned (preferred)
#   BASELINE=BENCH_20260801.json scripts/bench_guard.sh
#   BENCH_TOLERANCE=1.5 scripts/bench_guard.sh BENCH_20260801.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-${BASELINE:-}}"
if [ -z "$BASELINE" ]; then
  # Unpinned fallback: newest baseline not written today, so a run that
  # just produced today's file never guards against itself.
  today="BENCH_$(date +%Y%m%d).json"
  BASELINE=$(ls BENCH_*.json 2>/dev/null | grep -v -F "$today" | sort | tail -1 || true)
  if [ -n "$BASELINE" ]; then
    echo "bench_guard: no baseline pinned; falling back to newest prior baseline $BASELINE" >&2
  fi
fi
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
  echo "bench_guard: no usable BENCH_<date>.json baseline; pin one as \$1 or run scripts/bench.sh first" >&2
  exit 0
fi

BENCH="${BENCH:-BenchmarkDecision|BenchmarkProbeEvent|BenchmarkNetworkFork|BenchmarkAdmitFlow}"
BENCH_COUNT="${BENCH_COUNT:-3}"
BENCHTIME="${BENCHTIME:-300ms}"
TOLERANCE="${BENCH_TOLERANCE:-1.2}"

echo "bench_guard: baseline $BASELINE, tolerance ${TOLERANCE}x (calibrated by BenchmarkAdmitFlow)"
raw=$(go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$BENCH_COUNT" .)
printf '%s\n' "$raw"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
printf '%s\n' "$raw" >"$tmp"

python3 - "$BASELINE" "$TOLERANCE" "$tmp" <<'PY'
import json, re, sys

baseline_path, tolerance, raw_path = sys.argv[1], float(sys.argv[2]), sys.argv[3]
with open(baseline_path) as f:
    doc = json.load(f)
base = {b["name"]: float(b["ns_per_op"]) for b in doc["benchmarks"]}

# Min-of-N current results, keyed by benchmark name sans -GOMAXPROCS.
cur = {}
for line in open(raw_path):
    m = re.match(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op", line)
    if m:
        name, ns = m.group(1), float(m.group(2))
        cur[name] = min(cur.get(name, ns), ns)

CAL = "BenchmarkAdmitFlow"
if CAL not in cur or CAL not in base:
    print(f"bench_guard: {CAL} missing from run or baseline; cannot calibrate", file=sys.stderr)
    sys.exit(0)
scale_cur, scale_base = cur[CAL], base[CAL]

failed = []
for name, ns in sorted(cur.items()):
    if name == CAL or name not in base:
        continue
    ratio_now = ns / scale_cur
    ratio_then = base[name] / scale_base
    rel = ratio_now / ratio_then
    verdict = "FAIL" if rel > tolerance else "ok"
    print(f"bench_guard: {name}: {rel:.2f}x vs baseline ({verdict})")
    if rel > tolerance:
        failed.append(name)

if failed:
    print(f"bench_guard: REGRESSION beyond {tolerance}x: {', '.join(failed)}", file=sys.stderr)
    sys.exit(1)
print("bench_guard: all benchmarks within tolerance")
PY

# End-to-end latency gate: compares a fresh span-instrumented loadgen
# run's e2e p99 against the baseline's latency_profile block. Wall-clock
# latency is far noisier than calibrated ns/op ratios, so the tolerance
# is wider (default 2.0x) and the gate only arms when the pinned
# baseline actually carries a profile (LAT_RATE=0 disables it).
LAT_RATE="${LAT_RATE:-800}"
LAT_DURATION="${LAT_DURATION:-3s}"
LAT_TOLERANCE="${LAT_TOLERANCE:-2.0}"
base_p99=$(python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
prof = doc.get("latency_profile") or {}
print(prof.get("e2e_p99_ms", ""))' "$BASELINE")
if [ -z "$base_p99" ] || [ "$LAT_RATE" = 0 ]; then
  echo "bench_guard: baseline has no latency_profile block; e2e p99 gate skipped"
  exit 0
fi
span_file=$(mktemp)
lat_json=$(go run ./cmd/loadgen -selfhost -rate "$LAT_RATE" -duration "$LAT_DURATION" \
  -batch 16 -conns 4 -retries 3 -spans "$span_file" -json 2>/dev/null) || lat_json=null
rm -f "$span_file"
if [ "$lat_json" = null ]; then
  echo "bench_guard: latency profile run failed; e2e p99 gate skipped" >&2
  exit 0
fi
LAT_JSON="$lat_json" python3 - "$base_p99" "$LAT_TOLERANCE" <<'PY'
import json, os, sys

base_p99, tolerance = float(sys.argv[1]), float(sys.argv[2])
lat = (json.loads(os.environ["LAT_JSON"]).get("latency") or {})
cur_p99 = float(lat.get("e2e_p99_ms", 0))
if cur_p99 <= 0 or base_p99 <= 0:
    print("bench_guard: e2e p99 unavailable; gate skipped")
    sys.exit(0)
rel = cur_p99 / base_p99
verdict = "FAIL" if rel > tolerance else "ok"
print(f"bench_guard: e2e p99 {cur_p99:.3f}ms vs baseline {base_p99:.3f}ms: {rel:.2f}x ({verdict})")
if rel > tolerance:
    print(f"bench_guard: LATENCY REGRESSION beyond {tolerance}x", file=sys.stderr)
    sys.exit(1)
PY

# Failover gate: re-runs the leader/follower failover soak and compares
# promotion latency against the pinned baseline's failover block. Like
# the latency gate it only arms when the baseline carries the block, so
# pinning a pre-replication baseline leaves it dormant. Promotion is a
# drain-plus-fsync, so wall-clock noise dominates small absolute values;
# the gate uses a floor (FAILOVER_FLOOR_MS, default 50) under which any
# result passes, and a wide ratio above it (FAILOVER_TOLERANCE, 3.0x).
# FAILOVER_RATE=0 disables the re-run.
FAILOVER_RATE="${FAILOVER_RATE:-1000}"
FAILOVER_TOLERANCE="${FAILOVER_TOLERANCE:-3.0}"
FAILOVER_FLOOR_MS="${FAILOVER_FLOOR_MS:-50}"
base_failover_ms=$(python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
fo = doc.get("failover") or {}
print(fo.get("failover_ms", ""))' "$BASELINE")
if [ -z "$base_failover_ms" ] || [ "$FAILOVER_RATE" = 0 ]; then
  echo "bench_guard: baseline has no failover block; failover gate skipped"
  exit 0
fi
fo_json=$(FAILOVER_RATE="$FAILOVER_RATE" scripts/bench.sh failover 2>/dev/null | tail -1) || fo_json=null
if [ "$fo_json" = null ] || [ -z "$fo_json" ]; then
  echo "bench_guard: failover run failed; failover gate skipped" >&2
  exit 0
fi
FO_JSON="$fo_json" python3 - "$base_failover_ms" "$FAILOVER_TOLERANCE" "$FAILOVER_FLOOR_MS" <<'PY'
import json, os, sys

base_ms, tolerance, floor_ms = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
fo = json.loads(os.environ["FO_JSON"])
cur_ms = float(fo.get("failover_ms", 0))
if cur_ms <= floor_ms:
    print(f"bench_guard: failover {cur_ms:.0f}ms under the {floor_ms:.0f}ms floor (ok)")
    sys.exit(0)
if base_ms <= 0:
    base_ms = floor_ms
rel = cur_ms / max(base_ms, floor_ms)
verdict = "FAIL" if rel > tolerance else "ok"
print(f"bench_guard: failover {cur_ms:.0f}ms vs baseline {base_ms:.0f}ms: {rel:.2f}x ({verdict})")
if rel > tolerance:
    print(f"bench_guard: FAILOVER REGRESSION beyond {tolerance}x", file=sys.stderr)
    sys.exit(1)
PY

# Shard scaling gate: re-runs the sharded control-plane sweep and checks
# the 4-shard completion speedup. Like the other wall-clock gates it only
# arms when the pinned baseline carries a shard_scaling block, so pinning
# a pre-sharding baseline leaves it dormant. The gate is a floor, not a
# ratio: the design target is >=3x completed events/s at 4 shards vs 1
# (same seed, same workload), and SHARD_SPEEDUP_MIN (default 2.5 for
# CI-host noise headroom) is the hard minimum. SHARD_RATE=0 disables the
# re-run.
SHARD_RATE="${SHARD_RATE:-20000}"
SHARD_SPEEDUP_MIN="${SHARD_SPEEDUP_MIN:-2.5}"
base_speedup=$(python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
sc = doc.get("shard_scaling") or {}
print(sc.get("speedup_4x", ""))' "$BASELINE")
if [ -z "$base_speedup" ] || [ "$SHARD_RATE" = 0 ]; then
  echo "bench_guard: baseline has no shard_scaling block; shard gate skipped"
  exit 0
fi
sc_json=$(SHARD_RATE="$SHARD_RATE" SHARD_COUNTS="1 4" scripts/bench.sh shard_scaling 2>/dev/null | tail -1) || sc_json=null
if [ "$sc_json" = null ] || [ -z "$sc_json" ]; then
  echo "bench_guard: shard scaling run failed; shard gate skipped" >&2
  exit 0
fi
SC_JSON="$sc_json" python3 - "$base_speedup" "$SHARD_SPEEDUP_MIN" <<'PY'
import json, os, sys

base, floor = float(sys.argv[1]), float(sys.argv[2])
sc = json.loads(os.environ["SC_JSON"])
cur = float(sc.get("speedup_4x", 0))
if cur <= 0:
    print("bench_guard: shard speedup unavailable; gate skipped")
    sys.exit(0)
verdict = "FAIL" if cur < floor else "ok"
print(f"bench_guard: shard 4x speedup {cur:.2f}x vs baseline {base:.2f}x, floor {floor:.2f}x ({verdict})")
if cur < floor:
    print(f"bench_guard: SHARD SCALING below the {floor:.2f}x floor", file=sys.stderr)
    sys.exit(1)
PY
