// Reconfiguration rollout: a traffic-engineering run computed new paths
// for a set of elephant flows, and the whole batch must move without ever
// congesting a link — the congestion-free transition problem of the
// literature the paper builds on (zUpdate, SWAN, Dionysus). The example
// loads a fat-tree, picks the most imbalanced elephants, computes better
// (widest) target paths, and lets the transition planner find a safe
// order — parking flows on temporary paths when two moves block each
// other.
package main

import (
	"fmt"
	"log"
	"sort"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
	"netupdate/internal/transition"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("reconfiguration: %v", err)
	}
}

func run() error {
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		return err
	}
	g := ft.Graph()
	net := netstate.New(g, routing.NewFatTreeProvider(ft), routing.NewRandomFit(23))
	gen, err := trace.NewGenerator(4, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		return err
	}
	if _, err := trace.FillBackground(net, gen, 0.62, 0); err != nil {
		return err
	}
	fmt.Printf("fabric at %.2f utilization, hottest link %.2f\n",
		net.Utilization(), hottest(g))

	// The TE step: for the 40 largest flows, compute the widest candidate
	// path as the new target.
	placed := net.Registry().Placed()
	sort.Slice(placed, func(i, j int) bool { return placed[i].Demand > placed[j].Demand })
	var moves []transition.Move
	for _, f := range placed[:40] {
		target, _, ok := routing.Widest(g, widestEligible(net, f))
		if !ok || target.Equal(f.Path()) {
			continue
		}
		// Only request moves that can ever land: the target must fit the
		// demand once the flow's own reservations are released (crediting
		// links shared with the current path).
		bottleneck := topology.Bandwidth(1<<62 - 1)
		for _, l := range target.Links() {
			r := g.Link(l).Residual()
			if f.Path().Contains(l) {
				r += f.Demand
			}
			if r < bottleneck {
				bottleneck = r
			}
		}
		if bottleneck < f.Demand {
			continue
		}
		moves = append(moves, transition.Move{Flow: f, Target: target})
	}
	fmt.Printf("TE wants to move %d elephant flows\n", len(moves))

	steps, blocked, err := transition.ExecuteBestEffort(net, moves)
	if err != nil {
		return err
	}
	finals, parks := 0, 0
	for _, st := range steps {
		if st.Final {
			finals++
		} else {
			parks++
		}
	}
	fmt.Printf("rollout: %d final moves, %d temporary parkings, %d blocked (left in place); all states congestion-free\n",
		finals, parks, len(blocked))
	fmt.Printf("hottest link now %.2f\n", hottest(g))
	return nil
}

// widestEligible returns the flow's candidates, which Widest then ranks.
func widestEligible(net *netstate.Network, f *flow.Flow) []routing.Path {
	return net.Candidates(f)
}

// hottest returns the maximum link utilization.
func hottest(g *topology.Graph) float64 {
	max := 0.0
	for i := 0; i < g.NumLinks(); i++ {
		if u := g.Link(topology.LinkID(i)).Utilization(); u > max {
			max = u
		}
	}
	return max
}
