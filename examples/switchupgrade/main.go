// Switch upgrade: the canonical update issue from the paper's
// introduction. Before upgrading an aggregation switch, every flow passing
// through it must be rerouted along other parts of the network. This
// example drains a switch by zeroing the residual bandwidth of its links,
// gathers the displaced flows into one update event, and re-admits them —
// the event-level abstraction treats the whole upgrade as one schedulable
// entity with a single Cost(U).
package main

import (
	"fmt"
	"log"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("switchupgrade: %v", err)
	}
}

func run() error {
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		return err
	}
	g := ft.Graph()
	net := netstate.New(g, routing.NewFatTreeProvider(ft), routing.NewRandomFit(11))
	gen, err := trace.NewGenerator(3, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		return err
	}
	if _, err := trace.FillBackground(net, gen, 0.55, 0); err != nil {
		return err
	}
	fmt.Printf("network loaded to %.2f utilization\n", net.Utilization())

	// The switch to upgrade: aggregation switch 0 of pod 0.
	target := ft.Agg(0, 0)
	fmt.Printf("upgrading %v\n", g.Node(target))

	// 1. Collect every flow currently crossing the switch.
	displaced := make(map[flow.ID]*flow.Flow)
	var adjacent []topology.LinkID
	for _, l := range g.Out(target) {
		adjacent = append(adjacent, l)
		for _, f := range net.Registry().FlowsOn(l) {
			displaced[f.ID] = f
		}
	}
	for _, l := range g.In(target) {
		adjacent = append(adjacent, l)
		for _, f := range net.Registry().FlowsOn(l) {
			displaced[f.ID] = f
		}
	}
	fmt.Printf("%d flows traverse the switch and must be rerouted\n", len(displaced))

	// 2. Withdraw them and build the upgrade event from their specs.
	var specs []flow.Spec
	for _, f := range net.Registry().Placed() {
		if _, hit := displaced[f.ID]; !hit {
			continue
		}
		specs = append(specs, flow.Spec{Src: f.Src, Dst: f.Dst, Demand: f.Demand, Size: f.Size})
		if err := net.Remove(f); err != nil {
			return err
		}
	}

	// 3. Drain the switch: no residual bandwidth on any adjacent link, so
	// no re-admitted or migrated flow can route through it.
	for _, l := range adjacent {
		if r := g.Link(l).Residual(); r > 0 {
			if err := g.Reserve(l, r); err != nil {
				return err
			}
		}
	}

	// 4. Re-admit the displaced flows as one update event. The upgrade
	// controller routes around the drained switch, so desired paths are
	// chosen load-aware (DesiredWidest) instead of by the static ECMP hash
	// that might still point at the switch being upgraded.
	mig := migration.NewPlanner(net, 0)
	mig.SetDesiredPolicy(migration.DesiredWidest)
	planner := core.NewPlanner(mig, core.FailSkip)
	event := core.NewEvent(1, "switch-upgrade", 0, specs)
	result, err := planner.Execute(event)
	if err != nil {
		return err
	}
	fmt.Printf("upgrade event: %d/%d flows rerouted, %d unrouteable, Cost(U) = %v\n",
		len(result.Admitted), len(specs), result.Failed, result.Cost)

	// 5. Verify the drain: nothing crosses the switch anymore.
	for _, l := range adjacent {
		if n := net.Registry().NumFlowsOn(l); n != 0 {
			return fmt.Errorf("link %v still carries %d flows", g.Link(l), n)
		}
	}
	fmt.Println("switch fully drained: safe to upgrade")
	return nil
}
