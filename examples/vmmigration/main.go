// VM migration: a queue of update events, each migrating a batch of VMs —
// one bulk memory-copy flow per VM, with real payload sizes. The example
// simulates the same queue under FIFO, LMTF and P-LMTF and prints the
// scheduling metrics of the paper's Section V: average/tail event
// completion time and queuing delay, update cost, and plan time.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/metrics"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

const (
	nEvents   = 20
	seed      = 5
	utilGoal  = 0.65
	minVMs    = 4
	maxVMs    = 24
	vmRateMin = 20  // Mbps per migration stream
	vmRateMax = 100 //
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("vmmigration: %v", err)
	}
}

// buildEvents draws the same VM-migration event queue for every scheduler:
// each event evacuates one host, moving its VMs (512 MB – 4 GB of memory
// each) to random destinations.
func buildEvents(ft *topology.FatTree, rng *rand.Rand) []*core.Event {
	hosts := ft.Hosts()
	events := make([]*core.Event, nEvents)
	for i := range events {
		src := hosts[rng.Intn(len(hosts))]
		n := minVMs + rng.Intn(maxVMs-minVMs+1)
		specs := make([]flow.Spec, n)
		for j := range specs {
			dst := src
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			specs[j] = flow.Spec{
				Src:    src,
				Dst:    dst,
				Demand: topology.Bandwidth(vmRateMin+rng.Intn(vmRateMax-vmRateMin+1)) * topology.Mbps,
				Size:   int64(512+rng.Intn(3584)) << 20, // 512 MB .. 4 GB
			}
		}
		events[i] = core.NewEvent(flow.EventID(i+1), "vm-migration", 0, specs)
	}
	return events
}

func simulate(name string, mk func() sched.Scheduler) (*metrics.Collector, error) {
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		return nil, err
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(seed+7))
	gen, err := trace.NewGenerator(seed, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		return nil, err
	}
	if _, err := trace.FillBackground(net, gen, utilGoal, 0); err != nil {
		return nil, err
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	events := buildEvents(ft, rand.New(rand.NewSource(seed)))
	engine := sim.NewEngine(planner, mk(), sim.Config{})
	col, err := engine.Run(events)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return col, nil
}

func run() error {
	table := metrics.NewTable(
		fmt.Sprintf("VM migration: %d events, %d-%d VMs each, %.0f%% background utilization",
			nEvents, minVMs, maxVMs, utilGoal*100),
		"scheduler", "avg ECT", "tail ECT", "avg delay", "worst delay", "cost (Mbps)", "plan time")
	schedulers := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"fifo", func() sched.Scheduler { return sched.FIFO{} }},
		{"lmtf", func() sched.Scheduler { return sched.NewLMTF(4, seed) }},
		{"p-lmtf", func() sched.Scheduler { return sched.NewPLMTF(4, seed) }},
	}
	for _, s := range schedulers {
		col, err := simulate(s.name, s.mk)
		if err != nil {
			return err
		}
		table.AddRow(s.name,
			col.AvgECT().Round(time.Millisecond),
			col.TailECT().Round(time.Millisecond),
			col.AvgQueuingDelay().Round(time.Millisecond),
			col.WorstQueuingDelay().Round(time.Millisecond),
			float64(col.TotalCost())/1e6,
			col.PlanTime.Round(time.Millisecond))
	}
	fmt.Print(table.String())
	return nil
}
