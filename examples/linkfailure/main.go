// Link failure: an unplanned update issue on a general (non-Fat-Tree)
// topology. A core cable of a small leaf-spine network dies; every flow
// on it must be restored over the surviving paths. The example uses the
// k-shortest path provider (Yen's algorithm, arbitrary graphs) and shows
// LMTF scheduling a queue of per-link restoration events when two cables
// fail at once.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("linkfailure: %v", err)
	}
}

func run() error {
	ls, err := topology.NewLeafSpine(6, 3, 4, topology.Gbps)
	if err != nil {
		return err
	}
	g, hosts := ls.Graph(), ls.Hosts()
	// K-shortest routing (Yen) so restoration can use detours one hop
	// longer than the dead shortest paths.
	prov := routing.NewKShortestProvider(g, 8)
	net := netstate.New(g, prov, routing.NewRandomFit(13))

	// Load the fabric with random flows.
	rng := rand.New(rand.NewSource(2))
	placed := 0
	for i := 0; i < 600; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := src
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		f, err := net.AddFlow(flow.Spec{
			Src:    src,
			Dst:    dst,
			Demand: topology.Bandwidth(5+rng.Intn(45)) * topology.Mbps,
			Size:   int64(1+rng.Intn(64)) << 20,
		})
		if err != nil {
			return err
		}
		if _, err := net.PlaceBest(f); err != nil {
			if rmErr := net.Remove(f); rmErr != nil {
				return rmErr
			}
			continue
		}
		placed++
	}
	fmt.Printf("leaf-spine loaded: %d flows, utilization %.2f\n", placed, net.Utilization())

	// Two leaf->spine cables fail simultaneously.
	fail := [][2]topology.NodeID{
		{g.NodesOfKind(topology.KindEdgeSwitch)[0], g.NodesOfKind(topology.KindCoreSwitch)[0]},
		{g.NodesOfKind(topology.KindEdgeSwitch)[1], g.NodesOfKind(topology.KindCoreSwitch)[1]},
	}
	var events []*core.Event
	for i, pair := range fail {
		ev, n, err := failCable(net, g, pair[0], pair[1], flow.EventID(i+1))
		if err != nil {
			return err
		}
		fmt.Printf("cable %v <-> %v failed: %d flows to restore\n",
			g.Node(pair[0]).Name, g.Node(pair[1]).Name, n)
		events = append(events, ev)
	}
	// Failed links changed the graph's usable structure; drop cached paths.
	prov.Invalidate()

	// Restore both failures as queued update events under LMTF. Restoration
	// picks load-aware desired paths (the hash route may be the dead one).
	mig := migration.NewPlanner(net, 0)
	mig.SetDesiredPolicy(migration.DesiredWidest)
	planner := core.NewPlanner(mig, core.FailSkip)
	engine := sim.NewEngine(planner, sched.NewLMTF(2, 1), sim.Config{})
	col, err := engine.Run(events)
	if err != nil {
		return err
	}
	for _, rec := range col.Records() {
		fmt.Printf("restoration event %d: %d flows restored, %d unrestorable, ECT %v\n",
			int64(rec.Event), rec.Flows, rec.Failed, rec.ECT().Round(time.Millisecond))
	}
	fmt.Printf("all restorations done in %v (avg ECT %v)\n",
		col.Makespan.Round(time.Millisecond), col.AvgECT().Round(time.Millisecond))
	return nil
}

// failCable saturates both directions of the cable (no future flow can use
// it), withdraws the flows it carried, and returns the restoration event
// holding their specs.
func failCable(net *netstate.Network, g *topology.Graph, a, b topology.NodeID, id flow.EventID) (*core.Event, int, error) {
	ab, ok := g.LinkBetween(a, b)
	if !ok {
		return nil, 0, fmt.Errorf("no cable %v<->%v", a, b)
	}
	ba, _ := g.LinkBetween(b, a)

	victims := make(map[flow.ID]*flow.Flow)
	for _, l := range []topology.LinkID{ab, ba} {
		for _, f := range net.Registry().FlowsOn(l) {
			victims[f.ID] = f
		}
	}
	var specs []flow.Spec
	for _, f := range net.Registry().Placed() {
		if _, hit := victims[f.ID]; !hit {
			continue
		}
		specs = append(specs, flow.Spec{Src: f.Src, Dst: f.Dst, Demand: f.Demand, Size: f.Size})
		if err := net.Remove(f); err != nil {
			return nil, 0, err
		}
	}
	// Dead link: consume all residual bandwidth in both directions.
	for _, l := range []topology.LinkID{ab, ba} {
		if r := g.Link(l).Residual(); r > 0 {
			if err := g.Reserve(l, r); err != nil {
				return nil, 0, err
			}
		}
	}
	return core.NewEvent(id, "link-failure", 0, specs), len(specs), nil
}
