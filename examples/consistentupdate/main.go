// Consistent update: watch the data plane during an event-level update.
// The network carries per-switch rule tables (internal/rules); every
// placement and migration is applied as a two-phase per-packet-consistent
// plan (Reitblatt et al., the paper's Section II): install the new
// generation, flip the ingress, then remove the old generation — so
// packets never see a mix of configurations. The example drives an update
// event that forces migrations and reports the rule operations and table
// occupancy behind it, then shows a TCAM-constrained fabric rejecting a
// transition that doesn't have two-generation headroom.
package main

import (
	"errors"
	"fmt"
	"log"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/rules"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("consistentupdate: %v", err)
	}
}

func run() error {
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		return err
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(5))
	dataplane := rules.NewManager(ft.Graph(), 0) // unlimited tables
	if err := net.AttachDataPlane(dataplane); err != nil {
		return err
	}

	gen, err := trace.NewGenerator(2, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		return err
	}
	background, err := trace.FillBackground(net, gen, 0.68, 0)
	if err != nil {
		return err
	}
	fmt.Printf("fabric at %.2f utilization: %d flows, %d rule entries installed with %d rule ops\n",
		net.Utilization(), len(background), dataplane.TotalEntries(), dataplane.Ops())

	// One update event; its admissions and migrations all flow through
	// two-phase plans.
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	event := gen.Event(1, "demo", 0, 40, 40)
	opsBefore := dataplane.Ops()
	entriesBefore := dataplane.TotalEntries()
	res, err := planner.Execute(event)
	if err != nil {
		return err
	}
	moves := 0
	for _, adm := range res.Admitted {
		moves += len(adm.Moves)
	}
	fmt.Printf("event executed: %d flows admitted, %d migrations, Cost(U)=%v\n",
		len(res.Admitted), moves, res.Cost)
	fmt.Printf("data plane: %d rule ops applied, %d new entries\n",
		dataplane.Ops()-opsBefore, dataplane.TotalEntries()-entriesBefore)

	// Migrated flows went through install -> flip -> remove: their rule
	// generation advanced past 1.
	bumped := 0
	for _, f := range net.Registry().Placed() {
		if dataplane.CurrentVersion(f.ID) > 1 {
			bumped++
		}
	}
	fmt.Printf("%d flows now run a generation > 1 (two-phase migrations)\n", bumped)

	// Now the known cost of per-packet consistency: both generations
	// coexist during a transition, so a full table blocks a move that
	// would fit at steady state.
	tiny, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		return err
	}
	tnet := netstate.New(tiny.Graph(), routing.NewFatTreeProvider(tiny), routing.WidestFit{})
	tdp := rules.NewManager(tiny.Graph(), 1) // one TCAM slot per switch
	if err := tnet.AttachDataPlane(tdp); err != nil {
		return err
	}
	f, err := tnet.AddFlow(flow.Spec{
		Src: tiny.Host(0, 0, 0), Dst: tiny.Host(0, 1, 0), Demand: topology.Mbps,
	})
	if err != nil {
		return err
	}
	paths := tnet.Candidates(f)
	if err := tnet.Place(f, paths[0]); err != nil {
		return err
	}
	err = tnet.Reroute(f, paths[1])
	if errors.Is(err, rules.ErrTableFull) {
		fmt.Println("TCAM-constrained fabric: two-phase move rejected (no headroom for both generations) — the overhead Katta et al. attack")
	} else if err != nil {
		return err
	} else {
		return fmt.Errorf("expected the constrained move to fail")
	}
	if !f.Placed() || !f.Path().Equal(paths[0]) {
		return fmt.Errorf("flow not restored after rejected move")
	}
	fmt.Println("flow remained consistently on its old path throughout")
	return nil
}
