// Quickstart: build the paper's testbed (an 8-pod Fat-Tree with 1 Gbps
// links), load it with background traffic, and admit one update event —
// watching the migration planner free congested links when a flow's
// desired path lacks capacity (Definitions 1 and 2 of the paper).
package main

import (
	"fmt"
	"log"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	// 1. The substrate: a k=8 Fat-Tree, 1 Gbps everywhere.
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %d switches, %d hosts, %d directed links\n",
		ft.NumSwitches(), ft.NumHosts(), ft.Graph().NumLinks())

	// 2. Network state: ECMP path sets + hash-like random placement for
	// background traffic, which leaves some links much hotter than others.
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))

	// 3. Fill the network to 70% utilization with Yahoo!-like traffic.
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		return err
	}
	background, err := trace.FillBackground(net, gen, 0.70, 0)
	if err != nil {
		return err
	}
	fmt.Printf("background: %d flows, utilization %.2f\n", len(background), net.Utilization())

	// 4. An update event: 40 new flows that must all be admitted.
	planner := core.NewPlanner(migration.NewPlanner(net, migration.StrategyDensity), core.FailSkip)
	event := gen.Event(1, "demo", 0, 40, 40)

	// Probe first: what would this event cost right now?
	estimate, err := planner.Probe(event)
	if err != nil {
		return err
	}
	fmt.Printf("probe: cost %v migrated traffic, %d/%d flows admittable\n",
		estimate.Cost, estimate.Admittable, event.NumFlows())

	// 5. Execute it for real.
	result, err := planner.Execute(event)
	if err != nil {
		return err
	}
	fmt.Printf("executed: %d flows admitted, %d blocked, Cost(U) = %v\n",
		len(result.Admitted), result.Failed, result.Cost)
	for _, adm := range result.Admitted {
		if len(adm.Moves) == 0 {
			continue
		}
		fmt.Printf("  flow %d->%d (%v) needed %d migration(s), %v migrated\n",
			int(adm.Flow.Src), int(adm.Flow.Dst), adm.Flow.Demand,
			len(adm.Moves), adm.MigratedTraffic)
	}
	fmt.Printf("final utilization: %.2f\n", net.Utilization())
	return nil
}
