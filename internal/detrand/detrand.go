// Package detrand provides a seeded math/rand source that counts the
// values drawn from it. Randomized components (the LMTF sampler, the
// RandomFit path selector) draw through a CountedSource so checkpoint/
// recovery can capture an RNG's exact position as a draw count and
// restore it by reseeding and replaying that many draws — the stream a
// recovered process sees continues precisely where the crashed one
// stopped, which the deterministic replay fold depends on.
package detrand

import "math/rand"

// CountedSource is a rand.Source whose draws are counted. It
// deliberately implements only Source (not Source64): rand.Rand then
// funnels every consuming method through Int63, so one count always
// equals one state step and Restore replays exactly.
type CountedSource struct {
	seed int64
	src  rand.Source
	n    int64
}

var _ rand.Source = (*CountedSource)(nil)

// New returns a counted source seeded with seed.
func New(seed int64) *CountedSource {
	return &CountedSource{seed: seed, src: rand.NewSource(seed)}
}

// Int63 implements rand.Source.
func (s *CountedSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Seed implements rand.Source, resetting the draw count.
func (s *CountedSource) Seed(seed int64) {
	s.seed = seed
	s.src.Seed(seed)
	s.n = 0
}

// Draws returns the number of values drawn since the last (re)seed.
func (s *CountedSource) Draws() int64 { return s.n }

// Restore reseeds the source with its original seed and burns draws
// values, leaving the stream positioned exactly where a source that
// made draws live draws would be.
func (s *CountedSource) Restore(draws int64) {
	s.src.Seed(s.seed)
	s.n = 0
	for i := int64(0); i < draws; i++ {
		s.Int63()
	}
}
