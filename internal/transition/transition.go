// Package transition orders a batch of flow migrations so that every
// intermediate network state stays congestion-free — the consistent-
// migration problem of the congestion-free update literature the paper
// builds on (zUpdate [1], SWAN [6], Dionysus [9] in its Section VI).
//
// Given a set of moves (flow -> target path), a sequential order may not
// exist: two flows can each wait for the capacity the other occupies.
// Execute resolves such deadlocks Dionysus-style by routing a blocked
// flow through a temporary intermediate path first, and rolls everything
// back if no progress can be made at all.
package transition

import (
	"errors"
	"fmt"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
)

// ErrDeadlock is returned when no congestion-free order exists even with
// intermediate paths; the network is restored to its initial state.
var ErrDeadlock = errors.New("transition: migration deadlock")

// Move asks for one flow to end up on Target.
type Move struct {
	Flow   *flow.Flow
	Target routing.Path
}

// Step records one applied reroute of the resulting schedule.
type Step struct {
	// Flow is the rerouted flow.
	Flow *flow.Flow
	// Via is the path the flow moved to in this step.
	Via routing.Path
	// Final reports whether Via is the flow's target (false for a
	// temporary detour used to break a deadlock).
	Final bool
}

// Execute applies the moves in a congestion-free order and returns the
// steps taken. Flows already on their targets produce no step. On
// ErrDeadlock every flow is restored to its original path.
//
// The loop alternates two phases: apply every currently-feasible final
// move; when stuck, try to break the deadlock by parking one blocked flow
// on a temporary path with room. Each flow parks at most once per round,
// and rounds are bounded, so Execute always terminates.
func Execute(net *netstate.Network, moves []Move) ([]Step, error) {
	pending := make([]*moveState, 0, len(moves))
	for _, m := range moves {
		if !m.Flow.Placed() {
			return nil, fmt.Errorf("transition: %v not placed", m.Flow)
		}
		if m.Target.IsZero() {
			return nil, fmt.Errorf("transition: %v has no target", m.Flow)
		}
		if m.Flow.Path().Equal(m.Target) {
			continue
		}
		pending = append(pending, &moveState{move: m, origin: m.Flow.Path()})
	}

	var steps []Step
	remaining := len(pending)
	for rounds := 0; remaining > 0; rounds++ {
		if rounds > 2*len(pending)+4 {
			break // defensive bound; deadlock handling below should hit first
		}
		progress := false
		// Phase 1: apply every final move that fits right now.
		for _, st := range pending {
			if st.done {
				continue
			}
			if err := net.Reroute(st.move.Flow, st.move.Target); err == nil {
				steps = append(steps, Step{Flow: st.move.Flow, Via: st.move.Target, Final: true})
				st.done = true
				remaining--
				progress = true
			}
		}
		if remaining == 0 {
			break
		}
		if progress {
			continue
		}
		// Phase 2: deadlock — park one blocked flow on any path with room
		// (other than where it is and its target), freeing its current
		// links for the others.
		parked := false
		for _, st := range pending {
			if st.done {
				continue
			}
			f := st.move.Flow
			for _, q := range net.Candidates(f) {
				if q.Equal(f.Path()) || q.Equal(st.move.Target) {
					continue
				}
				if err := net.Reroute(f, q); err == nil {
					steps = append(steps, Step{Flow: f, Via: q, Final: false})
					parked = true
					break
				}
			}
			if parked {
				break
			}
		}
		if !parked {
			// Genuine deadlock: unwind every applied step in reverse.
			unwound := unwind(net, steps, pending)
			if !unwound {
				panic("transition: rollback failed; ledger corrupt")
			}
			return nil, fmt.Errorf("%w: %d of %d moves blocked", ErrDeadlock, remaining, len(pending))
		}
	}
	if remaining > 0 {
		unwind(net, steps, pending)
		return nil, fmt.Errorf("%w: %d of %d moves unresolved", ErrDeadlock, remaining, len(pending))
	}
	return steps, nil
}

// ExecuteBestEffort is Execute without the all-or-nothing guarantee. It
// first attempts the full plan; if that deadlocks (state restored), it
// falls back to pass-based direct moves — applying whatever lands, without
// temporary parking — and returns the moves that never fit, which stay on
// their original paths. Operators use this to roll out as much of a
// traffic-engineering solution as the fabric currently admits.
func ExecuteBestEffort(net *netstate.Network, moves []Move) (steps []Step, blocked []Move, err error) {
	steps, err = Execute(net, moves)
	if err == nil {
		return steps, nil, nil
	}
	if !errors.Is(err, ErrDeadlock) {
		return nil, nil, err
	}
	// Execute restored the initial state; retry move-by-move, keeping
	// whatever lands. Ordering effects are handled by looping until a
	// full pass admits nothing more.
	remaining := make([]Move, len(moves))
	copy(remaining, moves)
	for {
		progress := false
		var still []Move
		for _, m := range remaining {
			if m.Flow.Path().Equal(m.Target) {
				continue
			}
			if rerouteErr := net.Reroute(m.Flow, m.Target); rerouteErr == nil {
				steps = append(steps, Step{Flow: m.Flow, Via: m.Target, Final: true})
				progress = true
				continue
			}
			still = append(still, m)
		}
		remaining = still
		if !progress || len(remaining) == 0 {
			return steps, remaining, nil
		}
	}
}

// moveState tracks one requested move through Execute's rounds.
type moveState struct {
	move   Move
	origin routing.Path
	done   bool
}

// unwind restores every flow touched by steps to its original path, in
// reverse step order (which exactly reverses the applied reservations).
func unwind(net *netstate.Network, steps []Step, pending []*moveState) bool {
	// Replay in reverse: each step moved Flow from some previous path to
	// Via; the previous path is the flow's origin for its first step, or
	// the Via of its previous step. Build per-flow step stacks.
	perFlow := make(map[flow.ID][]int)
	for i, st := range steps {
		perFlow[st.Flow.ID] = append(perFlow[st.Flow.ID], i)
	}
	origins := make(map[flow.ID]routing.Path)
	for _, st := range pending {
		origins[st.move.Flow.ID] = st.origin
	}
	for i := len(steps) - 1; i >= 0; i-- {
		st := steps[i]
		stack := perFlow[st.Flow.ID]
		// Pop this step; the flow's destination is the Via of the step
		// below it on its own stack, or its origin.
		stack = stack[:len(stack)-1]
		perFlow[st.Flow.ID] = stack
		var back routing.Path
		if len(stack) > 0 {
			back = steps[stack[len(stack)-1]].Via
		} else {
			back = origins[st.Flow.ID]
		}
		if err := net.Reroute(st.Flow, back); err != nil {
			return false
		}
	}
	return true
}
