package transition

import (
	"errors"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// slotFabric builds two host pairs whose paths share per-slot trunk links:
//
//	xa -> m_i -> n -> ya        xb -> m_i -> n -> yb
//
// Every flow between a pair can use any of the `slots` middle switches;
// the m_i -> n trunk (1 Gbps) is the contended resource per slot.
type slotFabric struct {
	net            *netstate.Network
	g              *topology.Graph
	a, b           *flow.Flow // 600 Mbps each, on slot 0 and slot 1
	pathsA, pathsB []routing.Path
}

func newSlotFabric(t *testing.T, slots int) *slotFabric {
	t.Helper()
	g := topology.NewGraph()
	xa := g.AddNode(topology.KindHost, "xa")
	ya := g.AddNode(topology.KindHost, "ya")
	xb := g.AddNode(topology.KindHost, "xb")
	yb := g.AddNode(topology.KindHost, "yb")
	n := g.AddNode(topology.KindCoreSwitch, "n")
	link := func(x, y topology.NodeID, cap_ topology.Bandwidth) {
		if _, err := g.AddLink(x, y, cap_); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < slots; i++ {
		m := g.AddNode(topology.KindEdgeSwitch, "m")
		link(xa, m, topology.Gbps)
		link(xb, m, topology.Gbps)
		link(m, n, topology.Gbps) // the contended trunk
	}
	link(n, ya, 2*topology.Gbps)
	link(n, yb, 2*topology.Gbps)

	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})
	fa, err := net.AddFlow(flow.Spec{Src: xa, Dst: ya, Demand: 600 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := net.AddFlow(flow.Spec{Src: xb, Dst: yb, Demand: 600 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	s := &slotFabric{net: net, g: g, a: fa, b: fb}
	s.pathsA = net.Candidates(fa)
	s.pathsB = net.Candidates(fb)
	if len(s.pathsA) != slots || len(s.pathsB) != slots {
		t.Fatalf("candidates = %d/%d, want %d", len(s.pathsA), len(s.pathsB), slots)
	}
	// slotOf aligns path indexes between the two flows (both candidate
	// sets are ordered by the shared middle switch's link IDs).
	if err := net.Place(fa, s.pathsA[0]); err != nil {
		t.Fatal(err)
	}
	if err := net.Place(fb, s.pathsB[1]); err != nil {
		t.Fatal(err)
	}
	return s
}

// sharesTrunk reports whether two paths use the same m->n trunk.
func (s *slotFabric) sharesTrunk(p, q routing.Path) bool {
	trunk := func(path routing.Path) topology.LinkID {
		links := path.Links()
		return links[1] // xa->m, m->n, n->ya
	}
	// Trunks differ per slot but are distinct links for pathsA vs pathsB
	// only in their endpoints; compare via the middle switch instead.
	mid := func(path routing.Path) topology.NodeID {
		return s.g.Link(path.Links()[1]).From
	}
	_ = trunk
	return mid(p) == mid(q)
}

func TestExecuteOrdersMoves(t *testing.T) {
	s := newSlotFabric(t, 3)
	// A (slot 0) wants B's slot 1; B wants the free slot 2. Sequential
	// order exists: B first, then A.
	var targetA, targetB routing.Path
	for _, p := range s.pathsA {
		if s.sharesTrunk(p, s.b.Path()) {
			targetA = p
		}
	}
	for _, p := range s.pathsB {
		if !s.sharesTrunk(p, s.a.Path()) && !s.sharesTrunk(p, s.b.Path()) {
			targetB = p
		}
	}
	steps, err := Execute(s.net, []Move{
		{Flow: s.a, Target: targetA},
		{Flow: s.b, Target: targetB},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps))
	}
	if steps[0].Flow != s.b || !steps[0].Final {
		t.Errorf("first step = %+v, want B final", steps[0])
	}
	if steps[1].Flow != s.a || !steps[1].Final {
		t.Errorf("second step = %+v, want A final", steps[1])
	}
	if !s.a.Path().Equal(targetA) || !s.b.Path().Equal(targetB) {
		t.Error("flows not on targets")
	}
}

func TestExecuteBreaksDeadlockViaPark(t *testing.T) {
	s := newSlotFabric(t, 3)
	// A and B swap slots: direct order impossible (each trunk has only
	// 400 Mbps spare), but slot 2 is free to park on.
	var targetA, targetB routing.Path
	for _, p := range s.pathsA {
		if s.sharesTrunk(p, s.b.Path()) {
			targetA = p
		}
	}
	for _, p := range s.pathsB {
		if s.sharesTrunk(p, s.a.Path()) {
			targetB = p
		}
	}
	steps, err := Execute(s.net, []Move{
		{Flow: s.a, Target: targetA},
		{Flow: s.b, Target: targetB},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !s.a.Path().Equal(targetA) || !s.b.Path().Equal(targetB) {
		t.Error("flows not on swap targets")
	}
	// One temporary park plus the finals.
	parks := 0
	for _, st := range steps {
		if !st.Final {
			parks++
		}
	}
	if parks == 0 {
		t.Error("expected at least one parking step to break the deadlock")
	}
	// Congestion-free throughout implies congestion-free at the end.
	for i := 0; i < s.g.NumLinks(); i++ {
		if l := s.g.Link(topology.LinkID(i)); l.Residual() < 0 {
			t.Errorf("link %v over capacity", l)
		}
	}
}

func TestExecuteDeadlockRestoresState(t *testing.T) {
	s := newSlotFabric(t, 2) // no spare slot to park on
	var targetA, targetB routing.Path
	for _, p := range s.pathsA {
		if s.sharesTrunk(p, s.b.Path()) {
			targetA = p
		}
	}
	for _, p := range s.pathsB {
		if s.sharesTrunk(p, s.a.Path()) {
			targetB = p
		}
	}
	before := make([]topology.Bandwidth, s.g.NumLinks())
	for i := range before {
		before[i] = s.g.Link(topology.LinkID(i)).Reserved()
	}
	origA, origB := s.a.Path(), s.b.Path()

	_, err := Execute(s.net, []Move{
		{Flow: s.a, Target: targetA},
		{Flow: s.b, Target: targetB},
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Execute error = %v, want ErrDeadlock", err)
	}
	if !s.a.Path().Equal(origA) || !s.b.Path().Equal(origB) {
		t.Error("flows not restored after deadlock")
	}
	for i := range before {
		if got := s.g.Link(topology.LinkID(i)).Reserved(); got != before[i] {
			t.Fatalf("link %d reserved = %v, want %v", i, got, before[i])
		}
	}
}

func TestExecuteNoOpAndErrors(t *testing.T) {
	s := newSlotFabric(t, 3)
	// Already on target: no steps.
	steps, err := Execute(s.net, []Move{{Flow: s.a, Target: s.a.Path()}})
	if err != nil || len(steps) != 0 {
		t.Errorf("no-op Execute = %v, %v", steps, err)
	}
	// Unplaced flow rejected.
	ghost, err := s.net.AddFlow(flow.Spec{Src: s.a.Src, Dst: s.a.Dst, Demand: topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(s.net, []Move{{Flow: ghost, Target: s.pathsA[0]}}); err == nil {
		t.Error("Execute with unplaced flow succeeded")
	}
	// Zero target rejected.
	if _, err := Execute(s.net, []Move{{Flow: s.a}}); err == nil {
		t.Error("Execute with zero target succeeded")
	}
}

func TestExecuteBestEffortAppliesWhatFits(t *testing.T) {
	// The 2-slot swap deadlock: neither move can land even best-effort.
	s := newSlotFabric(t, 2)
	var targetA, targetB routing.Path
	for _, p := range s.pathsA {
		if s.sharesTrunk(p, s.b.Path()) {
			targetA = p
		}
	}
	for _, p := range s.pathsB {
		if s.sharesTrunk(p, s.a.Path()) {
			targetB = p
		}
	}
	origA, origB := s.a.Path(), s.b.Path()
	steps, blocked, err := ExecuteBestEffort(s.net, []Move{
		{Flow: s.a, Target: targetA},
		{Flow: s.b, Target: targetB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 || len(blocked) != 2 {
		t.Errorf("steps=%d blocked=%d, want 0/2", len(steps), len(blocked))
	}
	if !s.a.Path().Equal(origA) || !s.b.Path().Equal(origB) {
		t.Error("blocked flows not on their original paths")
	}

	// With a third slot Execute succeeds outright, so best-effort returns
	// the full plan and no blocked moves.
	s3 := newSlotFabric(t, 3)
	var tA, tB routing.Path
	for _, p := range s3.pathsA {
		if s3.sharesTrunk(p, s3.b.Path()) {
			tA = p
		}
	}
	for _, p := range s3.pathsB {
		if s3.sharesTrunk(p, s3.a.Path()) {
			tB = p
		}
	}
	steps, blocked, err = ExecuteBestEffort(s3.net, []Move{
		{Flow: s3.a, Target: tA},
		{Flow: s3.b, Target: tB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocked) != 0 {
		t.Errorf("blocked = %d, want 0", len(blocked))
	}
	if !s3.a.Path().Equal(tA) || !s3.b.Path().Equal(tB) {
		t.Error("flows not on swap targets")
	}
	_ = steps
}

func TestExecuteBestEffortPartial(t *testing.T) {
	// A's target is permanently infeasible (occupied by an unmoving
	// bystander); B's move is trivial. Best-effort lands B, blocks A.
	s := newSlotFabric(t, 3)
	var targetA, targetB routing.Path
	for _, p := range s.pathsA {
		if s.sharesTrunk(p, s.b.Path()) {
			targetA = p // B never moves away, so A can never land
		}
	}
	for _, p := range s.pathsB {
		if s.sharesTrunk(p, s.b.Path()) {
			targetB = p // no-op turned real: pick the free slot instead
		}
	}
	for _, p := range s.pathsB {
		if !s.sharesTrunk(p, s.a.Path()) && !s.sharesTrunk(p, s.b.Path()) {
			targetB = p
		}
	}
	// Park a bystander on B's target trunk? Not needed: A targets B's
	// slot, but B moves to the free slot — then A lands. To force a
	// genuine block, point A at B's ORIGINAL slot but keep B in place by
	// not moving it... instead: both A and B target B's current slot.
	steps, blocked, err := ExecuteBestEffort(s.net, []Move{
		{Flow: s.a, Target: targetA},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A targets B's occupied slot: 400 Mbps spare < 600 Mbps, blocked.
	if len(steps) != 0 || len(blocked) != 1 {
		t.Errorf("steps=%d blocked=%d, want 0/1", len(steps), len(blocked))
	}
	_ = targetB
}
