package rules

import (
	"fmt"

	"netupdate/internal/flow"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// Manager owns one Table per switch of a graph and installs/removes whole
// paths. Hosts have no tables; a path's rules live at its internal
// switches only.
type Manager struct {
	graph  *topology.Graph
	tables map[topology.NodeID]*Table
	// versions tracks each flow's current rule generation.
	versions map[flow.ID]Version
	// ops counts rule operations applied (installs + removals), the
	// quantity controller install time is proportional to.
	ops int
}

// NewManager creates tables for every switch of the graph, each with the
// given capacity (0 = unlimited).
func NewManager(g *topology.Graph, capacity int) *Manager {
	m := &Manager{
		graph:    g,
		tables:   make(map[topology.NodeID]*Table),
		versions: make(map[flow.ID]Version),
	}
	for _, n := range g.Nodes() {
		if n.Kind.IsSwitch() {
			m.tables[n.ID] = NewTable(n.ID, capacity)
		}
	}
	return m
}

// Table returns the table of the given switch.
func (m *Manager) Table(n topology.NodeID) (*Table, error) {
	t, ok := m.tables[n]
	if !ok {
		return nil, fmt.Errorf("node %d: %w", int(n), ErrNotSwitch)
	}
	return t, nil
}

// Ops returns the total rule operations applied so far.
func (m *Manager) Ops() int { return m.ops }

// CurrentVersion returns a flow's installed rule generation (0 if none).
func (m *Manager) CurrentVersion(f flow.ID) Version { return m.versions[f] }

// TotalEntries sums installed entries across all tables.
func (m *Manager) TotalEntries() int {
	total := 0
	for _, t := range m.tables {
		total += t.Len()
	}
	return total
}

// hopEntries lists the (switch, next-hop) pairs a path's rules occupy:
// for each link leaving a switch, that switch forwards the flow into it.
func (m *Manager) hopEntries(path routing.Path) []Entry {
	var out []Entry
	for _, lid := range path.Links() {
		l := m.graph.Link(lid)
		if m.graph.Node(l.From).Kind.IsSwitch() {
			out = append(out, Entry{NextHop: lid, Key: Key{}})
		}
	}
	return out
}

// InstallPath installs version v rules for the flow along the path,
// rolling back on failure (e.g. a full table mid-path).
func (m *Manager) InstallPath(f flow.ID, v Version, path routing.Path) error {
	installed := make([]Entry, 0, path.Len())
	for _, proto := range m.hopEntries(path) {
		sw := m.graph.Link(proto.NextHop).From
		e := Entry{Key: Key{Flow: f, Version: v}, NextHop: proto.NextHop}
		t := m.tables[sw]
		if err := t.Install(e); err != nil {
			for _, undo := range installed {
				undoSw := m.graph.Link(undo.NextHop).From
				if rmErr := m.tables[undoSw].Remove(undo.Key); rmErr != nil {
					panic(fmt.Sprintf("rules: rollback remove: %v", rmErr))
				}
			}
			return fmt.Errorf("install flow %d v%d: %w", int64(f), uint64(v), err)
		}
		m.ops++
		installed = append(installed, e)
	}
	if v > m.versions[f] {
		m.versions[f] = v
	}
	return nil
}

// RemovePath removes version v rules for the flow along the path.
func (m *Manager) RemovePath(f flow.ID, v Version, path routing.Path) error {
	for _, proto := range m.hopEntries(path) {
		sw := m.graph.Link(proto.NextHop).From
		if err := m.tables[sw].Remove(Key{Flow: f, Version: v}); err != nil {
			return fmt.Errorf("remove flow %d v%d: %w", int64(f), uint64(v), err)
		}
		m.ops++
	}
	return nil
}

// PathInstalled reports whether every internal switch of the path holds
// the flow's version-v rule pointing along the path.
func (m *Manager) PathInstalled(f flow.ID, v Version, path routing.Path) bool {
	for _, proto := range m.hopEntries(path) {
		sw := m.graph.Link(proto.NextHop).From
		e, ok := m.tables[sw].Lookup(Key{Flow: f, Version: v})
		if !ok || e.NextHop != proto.NextHop {
			return false
		}
	}
	return true
}
