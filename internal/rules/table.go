// Package rules models the data plane that network updates actually touch:
// per-switch flow tables holding versioned forwarding entries. The paper's
// update events ultimately become rule installs and removals at switches
// (its Section II overview; Reitblatt et al. [2] for the versioning); this
// package provides the tables, and package consistency builds two-phase
// update plans over them.
package rules

import (
	"errors"
	"fmt"
	"sort"

	"netupdate/internal/flow"
	"netupdate/internal/topology"
)

// Version tags a generation of a flow's rules. Two-phase updates install
// version n+1 alongside version n before removing n.
type Version uint64

// Errors reported by rule tables.
var (
	// ErrTableFull is returned when a switch's table capacity (TCAM
	// size) is exhausted.
	ErrTableFull = errors.New("rules: table full")
	// ErrDuplicateEntry is returned when installing an entry that is
	// already present.
	ErrDuplicateEntry = errors.New("rules: duplicate entry")
	// ErrNoSuchEntry is returned when removing an absent entry.
	ErrNoSuchEntry = errors.New("rules: no such entry")
	// ErrNotSwitch is returned when addressing a table on a non-switch
	// node.
	ErrNotSwitch = errors.New("rules: node is not a switch")
)

// Key identifies one entry: the flow it matches and the rule generation.
type Key struct {
	Flow    flow.ID
	Version Version
}

// Entry is one forwarding rule: packets of Flow (generation Version)
// leave through link NextHop.
type Entry struct {
	Key
	NextHop topology.LinkID
}

// Table is one switch's flow table.
type Table struct {
	node     topology.NodeID
	capacity int // 0 = unlimited
	entries  map[Key]Entry
}

// NewTable returns a table for the given switch with the given capacity
// (0 = unlimited).
func NewTable(node topology.NodeID, capacity int) *Table {
	return &Table{
		node:     node,
		capacity: capacity,
		entries:  make(map[Key]Entry),
	}
}

// Node returns the switch this table belongs to.
func (t *Table) Node() topology.NodeID { return t.node }

// Capacity returns the table's entry capacity (0 = unlimited).
func (t *Table) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Free returns the remaining entry slots, or -1 for unlimited tables.
func (t *Table) Free() int {
	if t.capacity == 0 {
		return -1
	}
	return t.capacity - len(t.entries)
}

// Install adds an entry. It fails with ErrTableFull at capacity and
// ErrDuplicateEntry if the key is present.
func (t *Table) Install(e Entry) error {
	if _, ok := t.entries[e.Key]; ok {
		return fmt.Errorf("switch %d, flow %d v%d: %w",
			int(t.node), int64(e.Flow), uint64(e.Version), ErrDuplicateEntry)
	}
	if t.capacity > 0 && len(t.entries) >= t.capacity {
		return fmt.Errorf("switch %d (%d entries): %w", int(t.node), len(t.entries), ErrTableFull)
	}
	t.entries[e.Key] = e
	return nil
}

// Remove deletes an entry by key.
func (t *Table) Remove(k Key) error {
	if _, ok := t.entries[k]; !ok {
		return fmt.Errorf("switch %d, flow %d v%d: %w",
			int(t.node), int64(k.Flow), uint64(k.Version), ErrNoSuchEntry)
	}
	delete(t.entries, k)
	return nil
}

// Lookup returns the entry for a key.
func (t *Table) Lookup(k Key) (Entry, bool) {
	e, ok := t.entries[k]
	return e, ok
}

// Entries returns all entries sorted by (flow, version) for deterministic
// iteration.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flow != out[j].Flow {
			return out[i].Flow < out[j].Flow
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// VersionsOf returns the distinct rule generations a flow has in the
// table, ascending. During a two-phase transition a flow briefly has two.
func (t *Table) VersionsOf(f flow.ID) []Version {
	var out []Version
	for k := range t.entries {
		if k.Flow == f {
			out = append(out, k.Version)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
