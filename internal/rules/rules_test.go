package rules

import (
	"errors"
	"testing"

	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

func TestTableInstallRemove(t *testing.T) {
	tb := NewTable(5, 2)
	if tb.Node() != 5 || tb.Capacity() != 2 || tb.Len() != 0 || tb.Free() != 2 {
		t.Fatalf("fresh table state wrong: %+v", tb)
	}
	e1 := Entry{Key: Key{Flow: 1, Version: 1}, NextHop: 10}
	e2 := Entry{Key: Key{Flow: 2, Version: 1}, NextHop: 11}
	if err := tb.Install(e1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Install(e1); !errors.Is(err, ErrDuplicateEntry) {
		t.Errorf("duplicate install error = %v", err)
	}
	if err := tb.Install(e2); err != nil {
		t.Fatal(err)
	}
	if tb.Free() != 0 {
		t.Errorf("Free = %d, want 0", tb.Free())
	}
	e3 := Entry{Key: Key{Flow: 3, Version: 1}, NextHop: 12}
	if err := tb.Install(e3); !errors.Is(err, ErrTableFull) {
		t.Errorf("full install error = %v", err)
	}
	got, ok := tb.Lookup(e1.Key)
	if !ok || got.NextHop != 10 {
		t.Errorf("Lookup = %+v,%v", got, ok)
	}
	if err := tb.Remove(e1.Key); err != nil {
		t.Fatal(err)
	}
	if err := tb.Remove(e1.Key); !errors.Is(err, ErrNoSuchEntry) {
		t.Errorf("double remove error = %v", err)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestTableUnlimitedCapacity(t *testing.T) {
	tb := NewTable(0, 0)
	if tb.Free() != -1 {
		t.Errorf("unlimited Free = %d, want -1", tb.Free())
	}
	for i := 0; i < 1000; i++ {
		e := Entry{Key: Key{Flow: 1, Version: Version(i + 1)}, NextHop: 0}
		if err := tb.Install(e); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	if tb.Len() != 1000 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableEntriesSortedAndVersions(t *testing.T) {
	tb := NewTable(0, 0)
	for _, k := range []Key{{Flow: 2, Version: 1}, {Flow: 1, Version: 2}, {Flow: 1, Version: 1}} {
		if err := tb.Install(Entry{Key: k}); err != nil {
			t.Fatal(err)
		}
	}
	es := tb.Entries()
	want := []Key{{Flow: 1, Version: 1}, {Flow: 1, Version: 2}, {Flow: 2, Version: 1}}
	for i, k := range want {
		if es[i].Key != k {
			t.Errorf("Entries[%d] = %+v, want %+v", i, es[i].Key, k)
		}
	}
	vs := tb.VersionsOf(1)
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Errorf("VersionsOf(1) = %v", vs)
	}
	if got := tb.VersionsOf(99); got != nil {
		t.Errorf("VersionsOf(99) = %v, want nil", got)
	}
}

// ftPath builds a cross-pod path on a k=4 fat-tree (6 links, 5 internal
// switches... 6 links with 4 switch-source hops: host->edge->agg->core->
// agg->edge->host: 5 switch hops? host link's From is a host).
func ftPath(t *testing.T) (*topology.FatTree, routing.Path) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	prov := routing.NewFatTreeProvider(ft)
	paths := prov.Paths(ft.Host(0, 0, 0), ft.Host(1, 0, 0))
	return ft, paths[0]
}

func TestManagerInstallPath(t *testing.T) {
	ft, path := ftPath(t)
	m := NewManager(ft.Graph(), 0)

	if err := m.InstallPath(7, 1, path); err != nil {
		t.Fatal(err)
	}
	// A 6-link cross-pod path has 5 switch-sourced links (all but the
	// host's own uplink), so 5 rules.
	if got := m.TotalEntries(); got != 5 {
		t.Errorf("TotalEntries = %d, want 5", got)
	}
	if got := m.Ops(); got != 5 {
		t.Errorf("Ops = %d, want 5", got)
	}
	if !m.PathInstalled(7, 1, path) {
		t.Error("PathInstalled = false after install")
	}
	if m.PathInstalled(7, 2, path) {
		t.Error("PathInstalled true for wrong version")
	}
	if got := m.CurrentVersion(7); got != 1 {
		t.Errorf("CurrentVersion = %d, want 1", got)
	}

	if err := m.RemovePath(7, 1, path); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalEntries(); got != 0 {
		t.Errorf("TotalEntries after remove = %d, want 0", got)
	}
	if got := m.Ops(); got != 10 {
		t.Errorf("Ops = %d, want 10", got)
	}
}

func TestManagerRollbackOnFullTable(t *testing.T) {
	ft, path := ftPath(t)
	// Capacity 1 per table; pre-fill the table of the path's last switch.
	m := NewManager(ft.Graph(), 1)
	links := path.Links()
	lastSwitchLink := links[len(links)-1] // From = last edge switch
	lastSwitch := ft.Graph().Link(lastSwitchLink).From
	tb, err := m.Table(lastSwitch)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Install(Entry{Key: Key{Flow: 99, Version: 1}}); err != nil {
		t.Fatal(err)
	}

	if err := m.InstallPath(7, 1, path); !errors.Is(err, ErrTableFull) {
		t.Fatalf("InstallPath error = %v, want ErrTableFull", err)
	}
	// Everything rolled back: only the pre-filled entry remains.
	if got := m.TotalEntries(); got != 1 {
		t.Errorf("TotalEntries after failed install = %d, want 1", got)
	}
	if m.PathInstalled(7, 1, path) {
		t.Error("PathInstalled true after failed install")
	}
}

func TestManagerTableOfHost(t *testing.T) {
	ft, _ := ftPath(t)
	m := NewManager(ft.Graph(), 0)
	if _, err := m.Table(ft.Host(0, 0, 0)); !errors.Is(err, ErrNotSwitch) {
		t.Errorf("Table(host) error = %v, want ErrNotSwitch", err)
	}
	if _, err := m.Table(ft.Core(0, 0)); err != nil {
		t.Errorf("Table(core): %v", err)
	}
}

func TestManagerVersionMonotonic(t *testing.T) {
	ft, path := ftPath(t)
	m := NewManager(ft.Graph(), 0)
	if err := m.InstallPath(7, 3, path); err != nil {
		t.Fatal(err)
	}
	// Installing an older generation must not regress the version.
	prov := routing.NewFatTreeProvider(ft)
	other := prov.Paths(ft.Host(0, 0, 1), ft.Host(1, 0, 1))[0]
	if err := m.InstallPath(7, 2, other); err != nil {
		t.Fatal(err)
	}
	if got := m.CurrentVersion(7); got != 3 {
		t.Errorf("CurrentVersion = %d, want 3", got)
	}
}
