package consistency

import (
	"errors"
	"testing"
)

// ledger is a test participant: a scalar pool debited by amt.
type ledger struct {
	avail    int
	amt      int
	prepared int
	commits  int
	aborts   int
}

func (l *ledger) Prepare() error {
	if l.amt > l.avail {
		return errors.New("insufficient")
	}
	l.avail -= l.amt
	l.prepared++
	return nil
}

func (l *ledger) Commit() { l.commits++ }

func (l *ledger) Abort() {
	l.avail += l.amt
	l.aborts++
}

func TestAtomicCommitsAll(t *testing.T) {
	a := &ledger{avail: 10, amt: 3}
	b := &ledger{avail: 10, amt: 7}
	if err := Atomic([]Participant{a, b}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if a.avail != 7 || b.avail != 3 {
		t.Errorf("pools = %d,%d, want 7,3", a.avail, b.avail)
	}
	if a.commits != 1 || b.commits != 1 || a.aborts != 0 || b.aborts != 0 {
		t.Errorf("commit/abort counts wrong: %+v %+v", a, b)
	}
}

func TestAtomicAbortsPreparedOnFailure(t *testing.T) {
	a := &ledger{avail: 10, amt: 3}
	b := &ledger{avail: 10, amt: 4}
	c := &ledger{avail: 2, amt: 5} // refuses
	d := &ledger{avail: 10, amt: 1}
	err := Atomic([]Participant{a, b, c, d})
	if err == nil {
		t.Fatal("Atomic succeeded past an exhausted participant")
	}
	// Everything before the failure was aborted; nothing after it ran.
	if a.avail != 10 || b.avail != 10 || c.avail != 2 || d.avail != 10 {
		t.Errorf("pools = %d,%d,%d,%d, want all restored", a.avail, b.avail, c.avail, d.avail)
	}
	if a.aborts != 1 || b.aborts != 1 || c.aborts != 0 || d.aborts != 0 {
		t.Errorf("abort counts = %d,%d,%d,%d, want 1,1,0,0", a.aborts, b.aborts, c.aborts, d.aborts)
	}
	if a.commits+b.commits+c.commits+d.commits != 0 {
		t.Error("a failed Atomic committed a participant")
	}
	if d.prepared != 0 {
		t.Error("participant after the failure was prepared")
	}
}

func TestAtomicEmpty(t *testing.T) {
	if err := Atomic(nil); err != nil {
		t.Fatalf("Atomic(nil): %v", err)
	}
}
