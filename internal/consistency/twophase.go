// Package consistency builds per-packet-consistent update plans in the
// style of Reitblatt et al. [2] (the paper's Section II): to move a flow
// from an old path to a new one, first install the new-generation rules at
// every switch of the new path, then flip the ingress to stamp packets
// with the new version, and only then remove the old-generation rules.
// Packets therefore always match a complete generation — never a mix.
//
// The plans drive package rules tables and give the simulator a concrete
// count of rule operations per flow move, refining the per-flow install
// time of the coarse model.
package consistency

import (
	"errors"
	"fmt"

	"netupdate/internal/flow"
	"netupdate/internal/routing"
	"netupdate/internal/rules"
)

// OpKind classifies one step of an update plan.
type OpKind int

// Plan operation kinds, in the order a two-phase update applies them.
const (
	// OpInstall adds a new-generation rule at one switch.
	OpInstall OpKind = iota + 1
	// OpFlipIngress atomically switches the ingress classifier to stamp
	// the new version (one rule modification at the first switch).
	OpFlipIngress
	// OpRemove deletes an old-generation rule at one switch.
	OpRemove
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInstall:
		return "install"
	case OpFlipIngress:
		return "flip-ingress"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// ErrInconsistentPlan is returned when applying a plan out of order or
// against tables that do not match its preconditions.
var ErrInconsistentPlan = errors.New("consistency: inconsistent plan")

// Op is one step of an update plan.
type Op struct {
	Kind OpKind
	// Flow is the flow whose rules change.
	Flow flow.ID
	// Version is the rule generation the op concerns (OpInstall and
	// OpFlipIngress: the new generation; OpRemove: the old one).
	Version rules.Version
	// Path locates the rules (install ops target its switches).
	Path routing.Path
}

// Plan is an ordered, per-packet-consistent op sequence for one flow.
type Plan struct {
	Flow flow.ID
	Ops  []Op
	// NewVersion is the generation the plan transitions the flow to.
	NewVersion rules.Version
}

// NumRuleOps returns the number of switch-table operations the plan
// performs: installs plus removals plus the ingress flip, each touching
// every internal switch of its path (the flip touches one switch).
// This is the controller work the simulator charges install time for.
func (p Plan) NumRuleOps(count func(routing.Path) int) int {
	total := 0
	for _, op := range p.Ops {
		switch op.Kind {
		case OpFlipIngress:
			total++
		default:
			total += count(op.Path)
		}
	}
	return total
}

// NewFlow plans the first installation of a flow on a path: install
// generation-1 rules, then enable the ingress.
func NewFlow(f flow.ID, path routing.Path) Plan {
	return InstallAt(f, 1, path)
}

// InstallAt plans an installation at an explicit generation — used when a
// flow is re-placed after a withdrawal and its generation counter must
// keep advancing.
func InstallAt(f flow.ID, v rules.Version, path routing.Path) Plan {
	return Plan{
		Flow:       f,
		NewVersion: v,
		Ops: []Op{
			{Kind: OpInstall, Flow: f, Version: v, Path: path},
			{Kind: OpFlipIngress, Flow: f, Version: v, Path: path},
		},
	}
}

// Move plans a per-packet-consistent migration of a flow from oldPath
// (generation oldV) to newPath: install oldV+1 on newPath, flip the
// ingress, remove oldV from oldPath.
func Move(f flow.ID, oldV rules.Version, oldPath, newPath routing.Path) Plan {
	v := oldV + 1
	return Plan{
		Flow:       f,
		NewVersion: v,
		Ops: []Op{
			{Kind: OpInstall, Flow: f, Version: v, Path: newPath},
			{Kind: OpFlipIngress, Flow: f, Version: v, Path: newPath},
			{Kind: OpRemove, Flow: f, Version: oldV, Path: oldPath},
		},
	}
}

// Teardown plans the removal of a finished flow's rules.
func Teardown(f flow.ID, v rules.Version, path routing.Path) Plan {
	return Plan{
		Flow:       f,
		NewVersion: v,
		Ops: []Op{
			{Kind: OpRemove, Flow: f, Version: v, Path: path},
		},
	}
}

// Apply executes the plan against the rule tables, op by op, verifying the
// two-phase safety property as it goes: the ingress may only flip once the
// new generation is fully installed, and old rules may only be removed
// after the flip. It returns the number of rule operations applied.
func Apply(p Plan, m *rules.Manager) (int, error) {
	flipped := false
	installed := false
	before := m.Ops()
	for i, op := range p.Ops {
		switch op.Kind {
		case OpInstall:
			if err := m.InstallPath(op.Flow, op.Version, op.Path); err != nil {
				return m.Ops() - before, fmt.Errorf("op %d: %w", i, err)
			}
			installed = true
		case OpFlipIngress:
			// Safety: the generation being flipped to must be complete.
			if !installed || !m.PathInstalled(op.Flow, op.Version, op.Path) {
				return m.Ops() - before, fmt.Errorf("op %d: flip before full install: %w", i, ErrInconsistentPlan)
			}
			flipped = true
		case OpRemove:
			// Initial teardown plans have no flip; migrations must flip
			// before removing the old generation.
			if len(p.Ops) > 1 && !flipped {
				return m.Ops() - before, fmt.Errorf("op %d: remove before flip: %w", i, ErrInconsistentPlan)
			}
			if err := m.RemovePath(op.Flow, op.Version, op.Path); err != nil {
				return m.Ops() - before, fmt.Errorf("op %d: %w", i, err)
			}
		default:
			return m.Ops() - before, fmt.Errorf("op %d: unknown kind %v: %w", i, op.Kind, ErrInconsistentPlan)
		}
	}
	return m.Ops() - before, nil
}
