package consistency

import "fmt"

// Participant is one party of an all-or-nothing multi-party operation.
// Prepare tentatively applies (and must hold) the participant's share;
// Commit makes it permanent; Abort returns the held share. After a
// successful Prepare exactly one of Commit or Abort follows.
type Participant interface {
	Prepare() error
	Commit()
	Abort()
}

// Atomic runs a two-phase commit over the participants: every Prepare in
// order, then — only if all succeeded — every Commit. The first Prepare
// failure aborts the already-prepared participants in reverse order and
// returns the failure, so a refused operation leaves no residue.
//
// This is the admission spine for cross-shard events: each touched
// shard's reserved-pool ledger is a participant, and an event either
// holds capacity on every shard it spans or on none.
func Atomic(participants []Participant) error {
	for i, p := range participants {
		if err := p.Prepare(); err != nil {
			for j := i - 1; j >= 0; j-- {
				participants[j].Abort()
			}
			return fmt.Errorf("consistency: prepare participant %d: %w", i, err)
		}
	}
	for _, p := range participants {
		p.Commit()
	}
	return nil
}
