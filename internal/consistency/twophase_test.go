package consistency

import (
	"errors"
	"testing"

	"netupdate/internal/routing"
	"netupdate/internal/rules"
	"netupdate/internal/topology"
)

// env builds a k=4 fat-tree with two disjoint-middle cross-pod paths for
// the same host pair plus a rule manager.
func env(t *testing.T, capacity int) (*rules.Manager, routing.Path, routing.Path, *topology.Graph) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	prov := routing.NewFatTreeProvider(ft)
	paths := prov.Paths(ft.Host(0, 0, 0), ft.Host(1, 0, 0))
	if len(paths) < 2 {
		t.Fatal("need two candidate paths")
	}
	return rules.NewManager(ft.Graph(), capacity), paths[0], paths[1], ft.Graph()
}

// switchHops counts a path's switch-sourced links (rules it needs).
func switchHops(g *topology.Graph) func(routing.Path) int {
	return func(p routing.Path) int {
		n := 0
		for _, l := range p.Links() {
			if g.Node(g.Link(l).From).Kind.IsSwitch() {
				n++
			}
		}
		return n
	}
}

func TestNewFlowPlan(t *testing.T) {
	m, path, _, g := env(t, 0)
	plan := NewFlow(1, path)
	if plan.NewVersion != 1 {
		t.Errorf("NewVersion = %d, want 1", plan.NewVersion)
	}
	ops, err := Apply(plan, m)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 5 { // 5 switch hops installed; flip is not a table op
		t.Errorf("applied ops = %d, want 5", ops)
	}
	if !m.PathInstalled(1, 1, path) {
		t.Error("rules not installed")
	}
	// NumRuleOps counts the flip as one controller op: 5 + 1.
	if got := plan.NumRuleOps(switchHops(g)); got != 6 {
		t.Errorf("NumRuleOps = %d, want 6", got)
	}
}

func TestMovePlanTwoPhase(t *testing.T) {
	m, oldPath, newPath, g := env(t, 0)
	if _, err := Apply(NewFlow(1, oldPath), m); err != nil {
		t.Fatal(err)
	}
	before := m.TotalEntries()

	plan := Move(1, 1, oldPath, newPath)
	if plan.NewVersion != 2 {
		t.Errorf("NewVersion = %d, want 2", plan.NewVersion)
	}
	if _, err := Apply(plan, m); err != nil {
		t.Fatal(err)
	}
	if !m.PathInstalled(1, 2, newPath) {
		t.Error("new generation not installed")
	}
	if m.PathInstalled(1, 1, oldPath) {
		t.Error("old generation still installed")
	}
	// Steady-state table occupancy is unchanged (same path lengths).
	if got := m.TotalEntries(); got != before {
		t.Errorf("TotalEntries = %d, want %d", got, before)
	}
	// install(5) + flip(1) + remove(5) controller ops.
	if got := plan.NumRuleOps(switchHops(g)); got != 11 {
		t.Errorf("NumRuleOps = %d, want 11", got)
	}
}

func TestTeardownPlan(t *testing.T) {
	m, path, _, _ := env(t, 0)
	if _, err := Apply(NewFlow(1, path), m); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(Teardown(1, 1, path), m); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalEntries(); got != 0 {
		t.Errorf("TotalEntries = %d, want 0", got)
	}
}

func TestApplyRejectsRemoveBeforeFlip(t *testing.T) {
	m, oldPath, newPath, _ := env(t, 0)
	if _, err := Apply(NewFlow(1, oldPath), m); err != nil {
		t.Fatal(err)
	}
	bad := Plan{
		Flow:       1,
		NewVersion: 2,
		Ops: []Op{
			{Kind: OpRemove, Flow: 1, Version: 1, Path: oldPath},
			{Kind: OpInstall, Flow: 1, Version: 2, Path: newPath},
			{Kind: OpFlipIngress, Flow: 1, Version: 2, Path: newPath},
		},
	}
	if _, err := Apply(bad, m); !errors.Is(err, ErrInconsistentPlan) {
		t.Errorf("Apply(bad order) error = %v, want ErrInconsistentPlan", err)
	}
}

func TestApplyRejectsFlipBeforeInstall(t *testing.T) {
	m, path, _, _ := env(t, 0)
	bad := Plan{
		Flow:       1,
		NewVersion: 1,
		Ops: []Op{
			{Kind: OpFlipIngress, Flow: 1, Version: 1, Path: path},
		},
	}
	if _, err := Apply(bad, m); !errors.Is(err, ErrInconsistentPlan) {
		t.Errorf("Apply(flip first) error = %v, want ErrInconsistentPlan", err)
	}
}

// TestTwoPhaseNeedsHeadroom demonstrates the known cost of per-packet
// consistency (Katta et al. [3]): during the transition both generations
// coexist, so a full table blocks the move even though the steady state
// would fit.
func TestTwoPhaseNeedsHeadroom(t *testing.T) {
	m, oldPath, newPath, g := env(t, 1) // 1 entry per switch
	if _, err := Apply(NewFlow(1, oldPath), m); err != nil {
		t.Fatal(err)
	}
	// The two paths share the first edge switch; its table is full with
	// the old generation, so the new generation cannot be staged.
	_ = g
	plan := Move(1, 1, oldPath, newPath)
	if _, err := Apply(plan, m); !errors.Is(err, rules.ErrTableFull) {
		t.Errorf("Apply over full tables error = %v, want ErrTableFull", err)
	}
	// The failed move left the old generation intact (rollback).
	if !m.PathInstalled(1, 1, oldPath) {
		t.Error("old generation lost after failed move")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpInstall:     "install",
		OpFlipIngress: "flip-ingress",
		OpRemove:      "remove",
		OpKind(9):     "OpKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("OpKind.String() = %q, want %q", got, want)
		}
	}
}
