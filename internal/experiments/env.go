// Package experiments contains one runner per figure of the paper's
// evaluation (Section V). Each runner builds identical environments per
// compared policy (same seed => same background traffic and same update
// events), simulates them, and reports the same rows/series the paper
// plots, as aligned text tables plus headline numbers for EXPERIMENTS.md.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/metrics"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// Options configure an experiment run.
type Options struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Quick shrinks the experiment (smaller fat-tree, fewer events and
	// sweep points) for tests and benchmarks.
	Quick bool
	// Probes is the scheduler probe concurrency (sim.Config.Probes):
	// 0 = GOMAXPROCS, 1 = serial. Results are identical at every setting;
	// only real planning wall-time changes.
	Probes int
	// Trace, when non-nil, receives lifecycle and round records from
	// every simulated scheduler run. Runs within an experiment share the
	// tracer; each run's leading "run" record delimits its stream.
	Trace *obs.Tracer
}

// apply threads run-wide knobs (probe concurrency, tracer) into a
// figure's Setup; call it on every Setup that feeds a simulation.
func (o Options) apply(s Setup) Setup {
	s.Config.Probes = o.Probes
	s.Tracer = o.Trace
	return s
}

// Setup describes one simulated environment.
type Setup struct {
	// K is the fat-tree arity (paper: 8).
	K int
	// Utilization is the background-traffic target (paper: up to 0.7).
	Utilization float64
	// Model generates background and event traffic.
	Model trace.Model
	// Strategy selects the migration greedy (default density).
	Strategy migration.Strategy
	// AllowSplit enables two-splittable victim migration.
	AllowSplit bool
	// Config is the simulator timing model.
	Config sim.Config
	// Seed drives background fill and event generation.
	Seed int64
	// Churn, when non-nil, turns over background traffic during the run
	// (the "network in flux" of Section IV-A).
	Churn *sim.ChurnConfig
	// StrictFill makes an unreachable Utilization target an error instead
	// of settling for whatever the filler achieved (the default, because
	// very high targets saturate host access links first).
	StrictFill bool
	// Tracer, when non-nil, observes every event-level simulation run
	// built from this setup (set via Options.apply).
	Tracer *obs.Tracer
}

// Env is a ready-to-simulate environment.
type Env struct {
	FatTree    *topology.FatTree
	Net        *netstate.Network
	Gen        *trace.Generator
	Planner    *core.Planner
	Background []*flow.Flow
}

// NewEnv builds a fat-tree, fills background traffic to the target
// utilization and wires up the planners. Equal setups produce identical
// environments.
func NewEnv(s Setup) (*Env, error) {
	if s.K == 0 {
		s.K = 8
	}
	if s.Model == nil {
		s.Model = trace.YahooLike{}
	}
	ft, err := topology.NewFatTree(s.K, topology.Gbps)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	// Background flows are placed with hash-ECMP-like random path choice,
	// like the paper's trace replay: random placement leaves some links
	// much hotter than others, which is what makes migration necessary at
	// 50–90% utilization (with perfectly balanced widest-fit placement the
	// fabric never congests and every experiment degenerates).
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(s.Seed+7))
	gen, err := trace.NewGenerator(s.Seed, s.Model, ft.Hosts())
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	var background []*flow.Flow
	if s.Utilization > 0 {
		background, err = trace.FillBackground(net, gen, s.Utilization, 0)
		if err != nil {
			if s.StrictFill || !errors.Is(err, trace.ErrTargetUnreachable) {
				return nil, fmt.Errorf("experiments: fill background to %.2f: %w", s.Utilization, err)
			}
			// Best effort: continue at the utilization actually reached.
		}
	}
	mig := migration.NewPlanner(net, s.Strategy)
	if s.AllowSplit {
		mig.SetAllowSplit(true)
	}
	planner := core.NewPlanner(mig, core.FailSkip)
	return &Env{
		FatTree:    ft,
		Net:        net,
		Gen:        gen,
		Planner:    planner,
		Background: background,
	}, nil
}

// runScheduler builds a fresh environment from setup, generates nEvents
// events with flows in [minFlows, maxFlows], and simulates them under the
// given scheduler, returning the collected metrics.
func runScheduler(setup Setup, mkSched func() sched.Scheduler, nEvents, minFlows, maxFlows int) (*metrics.Collector, error) {
	env, err := NewEnv(setup)
	if err != nil {
		return nil, err
	}
	events := env.Gen.Events(nEvents, minFlows, maxFlows)
	eng := sim.NewEngine(env.Planner, mkSched(), setup.Config)
	if setup.Tracer != nil {
		eng.SetTracer(setup.Tracer)
	}
	if setup.Churn != nil {
		eng.EnableChurn(env.Gen, *setup.Churn)
	}
	col, err := eng.Run(events)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s run: %w", mkSched().Name(), err)
	}
	return col, nil
}

// runFlowLevel is runScheduler for the flow-level baseline. The
// flow-level simulator has no rounds or event queue, so it stays
// untraced — Setup.Tracer only observes event-level runs.
func runFlowLevel(setup Setup, nEvents, minFlows, maxFlows int) (*metrics.Collector, error) {
	env, err := NewEnv(setup)
	if err != nil {
		return nil, err
	}
	events := env.Gen.Events(nEvents, minFlows, maxFlows)
	fl := sim.NewFlowLevel(env.Planner, setup.Config)
	col, err := fl.Run(events)
	if err != nil {
		return nil, fmt.Errorf("experiments: flow-level run: %w", err)
	}
	return col, nil
}

// seconds renders a duration as fractional seconds for table cells.
func seconds(d time.Duration) float64 { return d.Seconds() }
