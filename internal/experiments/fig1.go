package experiments

import (
	"fmt"
	"math/rand"

	"netupdate/internal/metrics"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// Fig1 measures the success probability of inserting one flow of an update
// event into the fat-tree *without* migrating any existing flow, as link
// utilization rises — Fig. 1 of the paper, with subplot (a) the Yahoo!-like
// trace and (b) the random trace. Flows are classed small/medium/large to
// show the probability is poor "irrespective of the flow size".
func Fig1(opts Options) (*Report, error) {
	utils := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	k, trials := 8, 400
	if opts.Quick {
		utils = []float64{0.2, 0.5}
		k, trials = 4, 60
	}
	classes := []struct {
		name   string
		demand topology.Bandwidth
	}{
		{"small(5M)", 5 * topology.Mbps},
		{"medium(30M)", 30 * topology.Mbps},
		{"large(80M)", 80 * topology.Mbps},
	}

	r := &Report{
		Name:        "fig1",
		Description: "success probability of accommodating a flow without migration",
	}
	for mi, model := range []trace.Model{trace.YahooLike{}, trace.Uniform{}} {
		sub := "(a) Yahoo!-like trace"
		if mi == 1 {
			sub = "(b) random trace"
		}
		table := metrics.NewTable("Fig 1"+sub,
			"utilization", classes[0].name, classes[1].name, classes[2].name)
		for ui, u := range utils {
			env, err := NewEnv(Setup{
				K:           k,
				Utilization: u,
				Model:       model,
				Seed:        opts.Seed*1000 + int64(mi*100+ui),
			})
			if err != nil {
				return nil, err
			}
			// A flow is accommodated without migration iff its hash-pinned
			// desired path (random member of the ECMP set, like a 5-tuple
			// hash) has room — the regime behind Fig. 1's steep decline.
			rng := rand.New(rand.NewSource(int64(env.Net.Graph().NumLinks()) + int64(ui)))
			probs := make([]float64, len(classes))
			for ci, class := range classes {
				success := 0
				for trial := 0; trial < trials; trial++ {
					spec := env.Gen.Spec()
					paths := env.Net.Provider().Paths(spec.Src, spec.Dst)
					if len(paths) == 0 {
						continue
					}
					desired := paths[rng.Intn(len(paths))]
					if desired.Fits(env.Net.Graph(), class.demand) {
						success++
					}
				}
				probs[ci] = float64(success) / float64(trials)
			}
			table.AddRow(fmt.Sprintf("%.1f", u), probs[0], probs[1], probs[2])
			if u >= 0.69 && u <= 0.71 {
				r.headline(fmt.Sprintf("success@0.7 %s large", model.Name()), probs[2])
			}
		}
		r.Tables = append(r.Tables, table)
	}
	r.Notes = append(r.Notes,
		"synthetic traces substitute the proprietary Yahoo!/Benson datasets (see DESIGN.md)")
	return r, nil
}
