package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			rep, err := exp.Run(Options{Seed: 1, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			if rep.Name != exp.Name {
				t.Errorf("report name = %q, want %q", rep.Name, exp.Name)
			}
			if len(rep.Tables) == 0 {
				t.Error("report has no tables")
			}
			for _, tab := range rep.Tables {
				if tab.NumRows() == 0 {
					t.Errorf("table %q has no rows", tab.Title())
				}
			}
			out := rep.String()
			if !strings.Contains(out, exp.Name) {
				t.Error("rendered report missing its name")
			}
			for k, v := range rep.Headlines {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("headline %q = %v", k, v)
				}
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("fig6"); !ok {
		t.Error("Find(fig6) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

// TestFig2MatchesPaperArithmetic pins the toy numbers: event-level 22/3,
// equal tails.
func TestFig2MatchesPaperArithmetic(t *testing.T) {
	rep, err := Fig2(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Headlines["event-level avg ECT (paper 22/3≈7.33)"]; math.Abs(got-22.0/3) > 0.01 {
		t.Errorf("event-level avg = %v, want 22/3", got)
	}
	if got := rep.Headlines["tails equal"]; got != 1 {
		t.Errorf("tails equal = %v, want 1", got)
	}
	fl := rep.Headlines["flow-level avg ECT (paper 32/3≈10.67)"]
	ev := rep.Headlines["event-level avg ECT (paper 22/3≈7.33)"]
	if fl <= ev {
		t.Errorf("flow-level avg %v not worse than event-level %v", fl, ev)
	}
}

// TestFig3MatchesPaperArithmetic pins Fig. 3's numbers: FIFO avg 7s,
// reorder avg 5s, tail 9s.
func TestFig3MatchesPaperArithmetic(t *testing.T) {
	rep, err := Fig3(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"fifo avg ECT (paper 7)":    7,
		"reorder avg ECT (paper 5)": 5,
		"tail unchanged (paper 9)":  9,
	}
	for k, want := range checks {
		if got := rep.Headlines[k]; math.Abs(got-want) > 0.01 {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
}

// TestFig1SuccessDropsWithUtilization checks the qualitative law of Fig. 1.
func TestFig1SuccessDropsWithUtilization(t *testing.T) {
	rep, err := Fig1(Options{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (two traces)", len(rep.Tables))
	}
}

// TestDeterministicReports: equal options must give byte-identical output.
// The one exception is the probe-engine table, whose wall-time columns are
// real (not simulated) time by design; it is dropped before comparing, and
// its deterministic parts (the hit rates) are checked via the headlines.
func TestDeterministicReports(t *testing.T) {
	a, err := Fig6(Options{Seed: 9, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(Options{Seed: 9, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if dropRealTimeTables(a) != dropRealTimeTables(b) {
		t.Error("same-seed fig6 reports differ")
	}
	for k, av := range a.Headlines {
		if bv, ok := b.Headlines[k]; !ok || av != bv {
			t.Errorf("headline %q: %v vs %v", k, av, bv)
		}
	}
}

// dropRealTimeTables renders a report without the tables that contain real
// wall-clock measurements.
func dropRealTimeTables(rep *Report) string {
	kept := rep.Tables[:0:0]
	for _, tb := range rep.Tables {
		if !strings.Contains(tb.Title(), "wall-time") {
			kept = append(kept, tb)
		}
	}
	trimmed := *rep
	trimmed.Tables = kept
	return trimmed.String()
}
