package experiments

import (
	"netupdate/internal/metrics"
	"netupdate/internal/sched"
	"netupdate/internal/topology"
)

// Fig6 evaluates LMTF and P-LMTF against FIFO (α=4) as the number of
// queued events grows from 10 to 50 at 50–70% utilization with 10–100
// flows per event. Four panels: (a) total update cost reduction, (b) avg
// ECT reduction, (c) tail ECT reduction, (d) total plan time. The paper
// reports P-LMTF reducing cost by 34–45%, avg ECT by 69–80% (LMTF 22–36%),
// tail ECT by 35–48% (LMTF 5–26%), with plan time FIFO < P-LMTF (~2x) <
// LMTF (~4.5x).
func Fig6(opts Options) (*Report, error) {
	counts := []int{10, 20, 30, 40, 50}
	k, util := 8, 0.6
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		counts = []int{3, 6}
		k, util = 4, 0.4
		minFlows, maxFlows = 3, 10
	}

	costTable := metrics.NewTable("Fig 6(a): total update cost (Mbps migrated) and reduction vs FIFO",
		"events", "fifo", "lmtf", "p-lmtf", "lmtf red.", "p-lmtf red.")
	avgTable := metrics.NewTable("Fig 6(b): average ECT (seconds) and reduction vs FIFO",
		"events", "fifo", "lmtf", "p-lmtf", "lmtf red.", "p-lmtf red.")
	tailTable := metrics.NewTable("Fig 6(c): tail ECT (seconds) and reduction vs FIFO",
		"events", "fifo", "lmtf", "p-lmtf", "lmtf red.", "p-lmtf red.")
	planTable := metrics.NewTable("Fig 6(d): total plan time (seconds) and ratio vs FIFO",
		"events", "fifo", "lmtf", "p-lmtf", "lmtf ratio", "p-lmtf ratio")
	probeTable := metrics.NewTable("Fig 6(e): probe engine (epoch-cache hit rate, forks, real probe wall-time ms)",
		"events", "lmtf hit", "p-lmtf hit", "lmtf forks", "p-lmtf forks", "lmtf ms", "p-lmtf ms")

	rep := &Report{
		Name:        "fig6",
		Description: "LMTF and P-LMTF vs FIFO across queue lengths",
	}
	var (
		minAvgRedP, maxAvgRedP   = 2.0, -2.0
		minTailRedP, maxTailRedP = 2.0, -2.0
		planRatioL, planRatioP   float64
		hitRateL, hitRateP       float64
	)
	for i, n := range counts {
		setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + 600 + int64(i)})
		fifo, err := runScheduler(setup, func() sched.Scheduler { return sched.FIFO{} }, n, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		lmtf, err := runScheduler(setup, func() sched.Scheduler { return sched.NewLMTF(4, setup.Seed) }, n, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		plmtf, err := runScheduler(setup, func() sched.Scheduler { return sched.NewPLMTF(4, setup.Seed) }, n, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}

		costTable.AddRow(n,
			bwMbps(fifo.TotalCost()), bwMbps(lmtf.TotalCost()), bwMbps(plmtf.TotalCost()),
			metrics.ReductionB(fifo.TotalCost(), lmtf.TotalCost()),
			metrics.ReductionB(fifo.TotalCost(), plmtf.TotalCost()))
		avgTable.AddRow(n,
			seconds(fifo.AvgECT()), seconds(lmtf.AvgECT()), seconds(plmtf.AvgECT()),
			metrics.Reduction(fifo.AvgECT(), lmtf.AvgECT()),
			metrics.Reduction(fifo.AvgECT(), plmtf.AvgECT()))
		tailTable.AddRow(n,
			seconds(fifo.TailECT()), seconds(lmtf.TailECT()), seconds(plmtf.TailECT()),
			metrics.Reduction(fifo.TailECT(), lmtf.TailECT()),
			metrics.Reduction(fifo.TailECT(), plmtf.TailECT()))
		planTable.AddRow(n,
			seconds(fifo.PlanTime), seconds(lmtf.PlanTime), seconds(plmtf.PlanTime),
			ratio(lmtf.PlanTime, fifo.PlanTime), ratio(plmtf.PlanTime, fifo.PlanTime))
		probeTable.AddRow(n,
			lmtf.ProbeHitRate(), plmtf.ProbeHitRate(),
			lmtf.ProbeForks, plmtf.ProbeForks,
			lmtf.ProbeWallTime.Seconds()*1e3, plmtf.ProbeWallTime.Seconds()*1e3)
		hitRateL += lmtf.ProbeHitRate()
		hitRateP += plmtf.ProbeHitRate()

		redAvg := metrics.Reduction(fifo.AvgECT(), plmtf.AvgECT())
		if redAvg < minAvgRedP {
			minAvgRedP = redAvg
		}
		if redAvg > maxAvgRedP {
			maxAvgRedP = redAvg
		}
		redTail := metrics.Reduction(fifo.TailECT(), plmtf.TailECT())
		if redTail < minTailRedP {
			minTailRedP = redTail
		}
		if redTail > maxTailRedP {
			maxTailRedP = redTail
		}
		planRatioL += ratio(lmtf.PlanTime, fifo.PlanTime)
		planRatioP += ratio(plmtf.PlanTime, fifo.PlanTime)
	}
	rep.Tables = []*metrics.Table{costTable, avgTable, tailTable, planTable, probeTable}
	rep.headline("p-lmtf min avg-ECT reduction (paper 0.69)", minAvgRedP)
	rep.headline("p-lmtf max avg-ECT reduction (paper 0.80)", maxAvgRedP)
	rep.headline("p-lmtf min tail-ECT reduction (paper 0.35)", minTailRedP)
	rep.headline("p-lmtf max tail-ECT reduction (paper 0.48)", maxTailRedP)
	rep.headline("lmtf mean plan-time ratio (paper ~4.5)", planRatioL/float64(len(counts)))
	rep.headline("p-lmtf mean plan-time ratio (paper ~2)", planRatioP/float64(len(counts)))
	rep.headline("lmtf mean probe-cache hit rate", hitRateL/float64(len(counts)))
	rep.headline("p-lmtf mean probe-cache hit rate", hitRateP/float64(len(counts)))
	return rep, nil
}

// ratio returns a/b (0 when b is 0).
func ratio(a, b interface{ Seconds() float64 }) float64 {
	if b.Seconds() == 0 {
		return 0
	}
	return a.Seconds() / b.Seconds()
}

// bwMbps renders a bandwidth as a megabit-per-second count for table cells.
func bwMbps(b topology.Bandwidth) float64 { return float64(b) / 1e6 }
