package experiments

import (
	"fmt"

	"netupdate/internal/metrics"
	"netupdate/internal/migration"
	"netupdate/internal/sched"
)

// AblationAlpha sweeps the sampling parameter α for LMTF and P-LMTF. The
// paper fixes α=4 but argues (via the power of two random choices) that
// α=2 already captures most of the benefit; this ablation verifies it.
func AblationAlpha(opts Options) (*Report, error) {
	alphas := []int{1, 2, 4, 8}
	k, util, nEvents := 8, 0.6, 30
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		alphas = []int{1, 2}
		k, util, nEvents = 4, 0.4, 5
		minFlows, maxFlows = 3, 10
	}
	setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + 1100})

	fifo, err := runScheduler(setup, func() sched.Scheduler { return sched.FIFO{} }, nEvents, minFlows, maxFlows)
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable("Ablation: alpha sensitivity (reductions vs FIFO)",
		"alpha", "lmtf avg red.", "lmtf plan evals", "p-lmtf avg red.", "p-lmtf plan evals")
	rep := &Report{
		Name:        "ablation-alpha",
		Description: "sensitivity of LMTF/P-LMTF to the sample size alpha",
	}
	for _, a := range alphas {
		alpha := a
		lmtf, err := runScheduler(setup, func() sched.Scheduler { return sched.NewLMTF(alpha, setup.Seed) },
			nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		plmtf, err := runScheduler(setup, func() sched.Scheduler { return sched.NewPLMTF(alpha, setup.Seed) },
			nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		lRed := metrics.Reduction(fifo.AvgECT(), lmtf.AvgECT())
		pRed := metrics.Reduction(fifo.AvgECT(), plmtf.AvgECT())
		table.AddRow(alpha, lRed, lmtf.TotalPlanEvals(), pRed, plmtf.TotalPlanEvals())
		rep.headline(fmt.Sprintf("lmtf avg red. alpha=%d", alpha), lRed)
	}
	rep.Tables = []*metrics.Table{table}
	return rep, nil
}

// AblationGreedy compares the three migration greedy strategies (density,
// smallest-first, largest-first) on total update cost and average ECT
// under LMTF — the design choice behind the cost-optimization method of
// Section IV-A.
func AblationGreedy(opts Options) (*Report, error) {
	k, util, nEvents := 8, 0.6, 20
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		k, util, nEvents = 4, 0.4, 5
		minFlows, maxFlows = 3, 10
	}
	strategies := []migration.Strategy{
		migration.StrategyDensity,
		migration.StrategySmallest,
		migration.StrategyLargest,
	}
	table := metrics.NewTable("Ablation: migration greedy strategies under LMTF",
		"strategy", "total cost (Mbps)", "avg ECT (s)", "tail ECT (s)", "failed flows")
	rep := &Report{
		Name:        "ablation-greedy",
		Description: "migration set selection heuristics",
	}
	for _, strat := range strategies {
		setup := opts.apply(Setup{
			K: k, Utilization: util, Strategy: strat,
			Seed: opts.Seed*1000 + 1200,
		})
		col, err := runScheduler(setup, func() sched.Scheduler { return sched.NewLMTF(4, setup.Seed) },
			nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		table.AddRow(strat.String(), bwMbps(col.TotalCost()),
			seconds(col.AvgECT()), seconds(col.TailECT()), col.TotalFailed())
		rep.headline("total cost "+strat.String(), bwMbps(col.TotalCost()))
	}
	rep.Tables = []*metrics.Table{table}
	return rep, nil
}

// AblationReorder quantifies what LMTF's sampling gives up against the
// "intrinsic" full-queue reorder of Section III-C — and what it saves in
// planning work, the paper's argument for sampling.
func AblationReorder(opts Options) (*Report, error) {
	k, util, nEvents := 8, 0.6, 30
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		k, util, nEvents = 4, 0.4, 5
		minFlows, maxFlows = 3, 10
	}
	setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + 1300})

	table := metrics.NewTable("Ablation: LMTF sampling vs full reorder",
		"scheduler", "avg ECT (s)", "tail ECT (s)", "decision evals", "plan time (s)")
	rep := &Report{
		Name:        "ablation-reorder",
		Description: "sampling (LMTF) vs full-queue cost reorder",
	}
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.FIFO{} },
		func() sched.Scheduler { return sched.SmallestFirst{} },
		func() sched.Scheduler { return sched.NewLMTF(4, setup.Seed) },
		func() sched.Scheduler { return sched.Reorder{} },
	} {
		s := mk()
		col, err := runScheduler(setup, mk, nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		table.AddRow(s.Name(), seconds(col.AvgECT()), seconds(col.TailECT()),
			col.DecisionEvals, seconds(col.PlanTime))
		rep.headline("decision evals "+s.Name(), float64(col.DecisionEvals))
	}
	rep.Tables = []*metrics.Table{table}
	return rep, nil
}
