package experiments

import (
	"fmt"
	"time"

	"netupdate/internal/metrics"
	"netupdate/internal/sched"
)

// Fig8 measures the reduction in average and worst-case event queuing
// delay of LMTF and P-LMTF against FIFO as the number of queued events
// grows (α=4, 50–70% utilization, 10–100 flows per event). The paper
// reports LMTF reducing the average delay by 20–40% (worst case 10–30%)
// and P-LMTF by 67–83% (worst case 60–74%), roughly independent of queue
// length.
func Fig8(opts Options) (*Report, error) {
	counts := []int{10, 20, 30, 40, 50}
	k, util := 8, 0.6
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		counts = []int{3, 6}
		k, util = 4, 0.4
		minFlows, maxFlows = 3, 10
	}
	table := metrics.NewTable("Fig 8: queuing-delay reductions vs FIFO",
		"events", "lmtf avg red.", "lmtf worst red.", "p-lmtf avg red.", "p-lmtf worst red.")
	rep := &Report{
		Name:        "fig8",
		Description: "event queuing delay reductions vs queue length",
	}
	var sumAvgL, sumAvgP float64
	for i, n := range counts {
		setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + 800 + int64(i)})
		fifo, err := runScheduler(setup, func() sched.Scheduler { return sched.FIFO{} }, n, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		lmtf, err := runScheduler(setup, func() sched.Scheduler { return sched.NewLMTF(4, setup.Seed) }, n, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		plmtf, err := runScheduler(setup, func() sched.Scheduler { return sched.NewPLMTF(4, setup.Seed) }, n, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		lAvg := metrics.Reduction(fifo.AvgQueuingDelay(), lmtf.AvgQueuingDelay())
		lWorst := metrics.Reduction(fifo.WorstQueuingDelay(), lmtf.WorstQueuingDelay())
		pAvg := metrics.Reduction(fifo.AvgQueuingDelay(), plmtf.AvgQueuingDelay())
		pWorst := metrics.Reduction(fifo.WorstQueuingDelay(), plmtf.WorstQueuingDelay())
		table.AddRow(n, lAvg, lWorst, pAvg, pWorst)
		sumAvgL += lAvg
		sumAvgP += pAvg
	}
	rep.Tables = []*metrics.Table{table}
	rep.headline("lmtf mean avg-delay reduction (paper 0.2-0.4)", sumAvgL/float64(len(counts)))
	rep.headline("p-lmtf mean avg-delay reduction (paper 0.67-0.83)", sumAvgP/float64(len(counts)))
	return rep, nil
}

// Fig9 plots the queuing delay of each of 30 events (arrival order) under
// FIFO, LMTF and P-LMTF at 50–70% utilization — the per-event view behind
// Fig. 8's aggregates. P-LMTF keeps every event's delay low; LMTF delays a
// few heavy events (the fine-tuning cost the paper discusses).
func Fig9(opts Options) (*Report, error) {
	k, util, nEvents := 8, 0.6, 30
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		k, util, nEvents = 4, 0.4, 6
		minFlows, maxFlows = 3, 10
	}
	setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + 900})

	type outcome struct {
		name   string
		delays []time.Duration
	}
	var outcomes []outcome
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.FIFO{} },
		func() sched.Scheduler { return sched.NewLMTF(4, setup.Seed) },
		func() sched.Scheduler { return sched.NewPLMTF(4, setup.Seed) },
	} {
		s := mk()
		col, err := runScheduler(setup, mk, nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, outcome{name: s.Name(), delays: col.QueuingDelays()})
	}

	table := metrics.NewTable("Fig 9: per-event queuing delay (seconds), events in arrival order",
		"event", outcomes[0].name, outcomes[1].name, outcomes[2].name)
	var betterL, betterP int
	for i := 0; i < nEvents; i++ {
		table.AddRow(fmt.Sprintf("U%d", i+1),
			seconds(outcomes[0].delays[i]), seconds(outcomes[1].delays[i]), seconds(outcomes[2].delays[i]))
		if outcomes[1].delays[i] <= outcomes[0].delays[i] {
			betterL++
		}
		if outcomes[2].delays[i] <= outcomes[0].delays[i] {
			betterP++
		}
	}
	rep := &Report{
		Name:        "fig9",
		Description: "per-event queuing delays, 30 events",
		Tables:      []*metrics.Table{table},
	}
	rep.headline("fraction events lmtf <= fifo", float64(betterL)/float64(nEvents))
	rep.headline("fraction events p-lmtf <= fifo", float64(betterP)/float64(nEvents))
	return rep, nil
}
