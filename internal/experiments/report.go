package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"netupdate/internal/metrics"
)

// Report is the output of one experiment runner.
type Report struct {
	// Name is the experiment id ("fig4", ...).
	Name string
	// Description states what the paper's figure shows.
	Description string
	// Tables hold the regenerated rows/series.
	Tables []*metrics.Table
	// Headlines are the key scalar outcomes ("max avg-ECT speedup": 4.2),
	// compared against the paper's claims in EXPERIMENTS.md.
	Headlines map[string]float64
	// Notes record caveats (substitutions, quick-mode shrinkage, ...).
	Notes []string
}

// headline records a named scalar outcome.
func (r *Report) headline(name string, v float64) {
	if r.Headlines == nil {
		r.Headlines = make(map[string]float64)
	}
	r.Headlines[name] = v
}

// WriteTo renders the report. It implements io.WriterTo.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n\n", r.Name, r.Description)
	for _, t := range r.Tables {
		if _, err := t.WriteTo(&b); err != nil {
			return 0, err
		}
		b.WriteByte('\n')
	}
	if len(r.Headlines) > 0 {
		b.WriteString("headlines:\n")
		keys := make([]string, 0, len(r.Headlines))
		for k := range r.Headlines {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-42s %.3f\n", k, r.Headlines[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the report to a string.
func (r *Report) String() string {
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		return fmt.Sprintf("report render error: %v", err)
	}
	return b.String()
}

// Runner produces a report.
type Runner func(Options) (*Report, error)

// Experiment pairs an id with its runner and a one-line summary.
type Experiment struct {
	Name    string
	Summary string
	Run     Runner
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "success probability of no-migration flow insertion vs utilization", Fig1},
		{"fig2", "toy flow-level vs event-level ordering (illustrative)", Fig2},
		{"fig3", "toy FIFO vs cost-reorder ordering (illustrative)", Fig3},
		{"fig4", "event-level vs flow-level, 10 events, mean flows/event 15..75", Fig4},
		{"fig5", "event-level vs flow-level vs number of events", Fig5},
		{"fig6", "LMTF and P-LMTF vs FIFO: cost, avg/tail ECT, plan time", Fig6},
		{"fig7", "P-LMTF vs FIFO across utilizations and event types", Fig7},
		{"fig8", "queuing-delay reductions vs number of events", Fig8},
		{"fig9", "per-event queuing delay, 30 events", Fig9},
		{"ablation-alpha", "LMTF/P-LMTF sensitivity to the sample size alpha", AblationAlpha},
		{"ablation-greedy", "migration greedy strategy comparison", AblationGreedy},
		{"ablation-reorder", "LMTF sampling vs full-queue reorder", AblationReorder},
		{"ablation-churn", "scheduler benefit with background traffic in flux", AblationChurn},
		{"ablation-split", "two-splittable victim migration at high utilization", AblationSplit},
		{"ablation-ruleops", "per-flow vs per-rule-operation install accounting", AblationRuleOps},
		{"ablation-online", "Poisson event arrivals across offered loads", AblationOnline},
		{"ablation-batch", "sampled vs full-queue opportunistic co-scheduling", AblationBatch},
	}
}

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
