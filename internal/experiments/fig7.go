package experiments

import (
	"fmt"

	"netupdate/internal/metrics"
	"netupdate/internal/sched"
)

// Fig7 evaluates P-LMTF against FIFO for two event populations as network
// utilization sweeps 50–90%: heterogeneous events (10–100 flows) and
// synchronous events (50–60 flows), with 30 queued events and α=4. The
// paper reports 60–70% average-ECT and 40–60% tail-ECT reductions for
// heterogeneous events (40–50% / 30–50% for synchronous), largely
// independent of utilization.
//
// Very high fill targets may be unreachable with unsplittable flows; the
// runner then keeps the utilization actually achieved and reports it.
func Fig7(opts Options) (*Report, error) {
	utils := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	k, nEvents := 8, 30
	if opts.Quick {
		utils = []float64{0.3, 0.45}
		k, nEvents = 4, 5
	}
	kinds := []struct {
		name               string
		minFlows, maxFlows int
	}{
		{"heterogeneous", 10, 100},
		{"synchronous", 50, 60},
	}
	if opts.Quick {
		kinds[0].minFlows, kinds[0].maxFlows = 2, 10
		kinds[1].minFlows, kinds[1].maxFlows = 5, 6
	}

	rep := &Report{
		Name:        "fig7",
		Description: "P-LMTF vs FIFO reductions across utilization and event types",
	}
	for ki, kind := range kinds {
		table := metrics.NewTable(
			fmt.Sprintf("Fig 7 (%s events): reductions vs FIFO", kind.name),
			"target util", "achieved util", "avg red.", "tail red.")
		var minAvg, maxAvg = 2.0, -2.0
		for ui, u := range utils {
			setup := opts.apply(Setup{K: k, Utilization: u, Seed: opts.Seed*1000 + 700 + int64(ki*10+ui)})
			probe, err := NewEnv(setup)
			if err != nil {
				return nil, err
			}
			achieved := probe.Net.Utilization()
			fifo, err := runScheduler(setup, func() sched.Scheduler { return sched.FIFO{} },
				nEvents, kind.minFlows, kind.maxFlows)
			if err != nil {
				return nil, err
			}
			plmtf, err := runScheduler(setup, func() sched.Scheduler { return sched.NewPLMTF(4, setup.Seed) },
				nEvents, kind.minFlows, kind.maxFlows)
			if err != nil {
				return nil, err
			}
			avgRed := metrics.Reduction(fifo.AvgECT(), plmtf.AvgECT())
			tailRed := metrics.Reduction(fifo.TailECT(), plmtf.TailECT())
			table.AddRow(fmt.Sprintf("%.2f", u), achieved, avgRed, tailRed)
			if avgRed < minAvg {
				minAvg = avgRed
			}
			if avgRed > maxAvg {
				maxAvg = avgRed
			}
		}
		rep.Tables = append(rep.Tables, table)
		rep.headline(fmt.Sprintf("%s min avg red.", kind.name), minAvg)
		rep.headline(fmt.Sprintf("%s max avg red.", kind.name), maxAvg)
	}
	rep.Notes = append(rep.Notes,
		"background is static during this experiment, as in the paper (Section V-D)")
	return rep, nil
}
