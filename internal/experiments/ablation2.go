package experiments

import (
	"time"

	"netupdate/internal/metrics"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/trace"
)

// AblationChurn evaluates the schedulers while background traffic churns —
// the "update queue in flux" condition of Section IV-A that motivates
// LMTF's per-round cost re-probing. With churn, an event's cost when it
// executes differs from its cost when first queued; the ablation checks
// the LMTF/P-LMTF advantage survives.
func AblationChurn(opts Options) (*Report, error) {
	k, util, nEvents := 8, 0.6, 30
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		k, util, nEvents = 4, 0.4, 5
		minFlows, maxFlows = 3, 10
	}
	variants := []struct {
		name  string
		churn *sim.ChurnConfig
	}{
		{"static background", nil},
		{"churning background", &sim.ChurnConfig{
			Interval: 500 * time.Millisecond,
			Fraction: 0.05,
			Seed:     opts.Seed + 77,
		}},
	}

	rep := &Report{
		Name:        "ablation-churn",
		Description: "scheduler benefit with background traffic in flux",
	}
	for _, variant := range variants {
		table := metrics.NewTable("Ablation ("+variant.name+"): vs FIFO",
			"scheduler", "avg ECT (s)", "tail ECT (s)", "avg red.", "cost (Mbps)")
		setup := opts.apply(Setup{
			K: k, Utilization: util,
			Seed:  opts.Seed*1000 + 1400,
			Churn: variant.churn,
		})
		fifo, err := runScheduler(setup, func() sched.Scheduler { return sched.FIFO{} }, nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		table.AddRow("fifo", seconds(fifo.AvgECT()), seconds(fifo.TailECT()), 0.0, bwMbps(fifo.TotalCost()))
		for _, mk := range []func() sched.Scheduler{
			func() sched.Scheduler { return sched.NewLMTF(4, setup.Seed) },
			func() sched.Scheduler { return sched.NewPLMTF(4, setup.Seed) },
		} {
			s := mk()
			col, err := runScheduler(setup, mk, nEvents, minFlows, maxFlows)
			if err != nil {
				return nil, err
			}
			red := metrics.Reduction(fifo.AvgECT(), col.AvgECT())
			table.AddRow(s.Name(), seconds(col.AvgECT()), seconds(col.TailECT()), red, bwMbps(col.TotalCost()))
			rep.headline(s.Name()+" avg red. ("+variant.name+")", red)
		}
		rep.Tables = append(rep.Tables, table)
	}
	return rep, nil
}

// AblationSplit measures what two-splittable victim migration (after
// Foerster & Wattenhofer [18], the paper's related work) buys at high
// utilization: victims with no single wide-enough detour can be split
// over two, so fewer event flows are unadmittable.
func AblationSplit(opts Options) (*Report, error) {
	k, util, nEvents := 8, 0.6, 20
	minFlows, maxFlows := 5, 30
	if opts.Quick {
		k, util, nEvents = 4, 0.5, 5
		minFlows, maxFlows = 3, 10
	}
	// Elephant-scale demands (100-400 Mbps): with 1 Gbps links, a single
	// detour with enough headroom is scarce, which is where splitting a
	// victim across two paths can matter.
	model := trace.Uniform{MinDemandMbps: 100, MaxDemandMbps: 400}
	table := metrics.NewTable("Ablation: unsplittable vs two-splittable migration (LMTF, elephant flows)",
		"migration", "failed flows", "total cost (Mbps)", "avg ECT (s)")
	rep := &Report{
		Name:        "ablation-split",
		Description: "two-splittable victim migration at high utilization",
	}
	for _, split := range []bool{false, true} {
		name := "unsplittable"
		if split {
			name = "two-splittable"
		}
		setup := opts.apply(Setup{
			K: k, Utilization: util, Model: model,
			Seed:       opts.Seed*1000 + 1600,
			AllowSplit: split,
		})
		col, err := runScheduler(setup, func() sched.Scheduler { return sched.NewLMTF(4, setup.Seed) },
			nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		table.AddRow(name, col.TotalFailed(), bwMbps(col.TotalCost()), seconds(col.AvgECT()))
		rep.headline("failed flows "+name, float64(col.TotalFailed()))
	}
	rep.Tables = []*metrics.Table{table}
	return rep, nil
}

// AblationBatch compares P-LMTF's sampled opportunistic scan (α
// candidates) with scanning the whole queue — the alternative Section
// IV-C rejects for its computation cost. Full scan buys a little more
// parallelism per round at a large planning-work multiplier.
func AblationBatch(opts Options) (*Report, error) {
	k, util, nEvents := 8, 0.6, 30
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		k, util, nEvents = 4, 0.4, 5
		minFlows, maxFlows = 3, 10
	}
	setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + 1800})
	table := metrics.NewTable("Ablation: opportunistic batch width (P-LMTF)",
		"scan", "avg ECT (s)", "tail ECT (s)", "decision evals", "plan time (s)")
	rep := &Report{
		Name:        "ablation-batch",
		Description: "sampled vs full-queue opportunistic co-scheduling",
	}
	for _, full := range []bool{false, true} {
		mk := func() sched.Scheduler {
			s := sched.NewPLMTF(4, setup.Seed)
			s.SetScanAll(full)
			return s
		}
		name := "sampled (alpha=4)"
		if full {
			name = "full queue"
		}
		col, err := runScheduler(setup, mk, nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		table.AddRow(name, seconds(col.AvgECT()), seconds(col.TailECT()),
			col.DecisionEvals, seconds(col.PlanTime))
		rep.headline("decision evals "+name, float64(col.DecisionEvals))
		rep.headline("avg ECT "+name, col.AvgECT().Seconds())
	}
	rep.Tables = []*metrics.Table{table}
	return rep, nil
}

// AblationRuleOps compares the coarse per-flow install model against
// rule-operation-level accounting (internal/consistency): with per-rule
// charging, cross-pod flows (6 rule ops) cost three times a same-edge
// flow (2 ops), and migrations add their two-phase op counts.
func AblationRuleOps(opts Options) (*Report, error) {
	k, util, nEvents := 8, 0.6, 20
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		k, util, nEvents = 4, 0.4, 5
		minFlows, maxFlows = 3, 10
	}
	variants := []struct {
		name string
		cfg  sim.Config
	}{
		{"per-flow install (10ms)", sim.Config{}},
		{"per-rule-op install (2ms/op)", sim.Config{PerRuleOpTime: 2 * time.Millisecond}},
	}
	table := metrics.NewTable("Ablation: install-time accounting granularity (LMTF)",
		"accounting", "avg ECT (s)", "tail ECT (s)", "makespan (s)")
	rep := &Report{
		Name:        "ablation-ruleops",
		Description: "per-flow vs per-rule-operation install accounting",
	}
	for _, variant := range variants {
		setup := opts.apply(Setup{
			K: k, Utilization: util,
			Seed:   opts.Seed*1000 + 1500,
			Config: variant.cfg,
		})
		col, err := runScheduler(setup, func() sched.Scheduler { return sched.NewLMTF(4, setup.Seed) },
			nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		table.AddRow(variant.name, seconds(col.AvgECT()), seconds(col.TailECT()), seconds(col.Makespan))
		rep.headline("avg ECT "+variant.name, col.AvgECT().Seconds())
	}
	rep.Tables = []*metrics.Table{table}
	return rep, nil
}
