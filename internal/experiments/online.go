package experiments

import (
	"fmt"
	"time"

	"netupdate/internal/metrics"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
)

// AblationOnline extends the paper's batch-queue setup to online Poisson
// arrivals: events arrive over time with a mean inter-arrival gap, and the
// sweep varies offered load (shorter gaps = heavier load). In queueing
// terms, FIFO's average ECT blows up as the system saturates, while
// P-LMTF's parallel rounds raise the sustainable load; LMTF sits in
// between. This is the deployment-facing view of the same head-of-line
// phenomenon the paper evaluates with a pre-filled queue.
func AblationOnline(opts Options) (*Report, error) {
	k, util, nEvents := 8, 0.6, 40
	minFlows, maxFlows := 10, 60
	gaps := []time.Duration{4 * time.Second, 2 * time.Second, time.Second, 500 * time.Millisecond}
	if opts.Quick {
		k, util, nEvents = 4, 0.4, 8
		minFlows, maxFlows = 3, 8
		gaps = []time.Duration{time.Second, 250 * time.Millisecond}
	}

	table := metrics.NewTable("Ablation: online Poisson arrivals (avg ECT seconds / avg queuing delay seconds)",
		"mean gap", "fifo ECT", "fifo delay", "lmtf ECT", "lmtf delay", "p-lmtf ECT", "p-lmtf delay")
	rep := &Report{
		Name:        "ablation-online",
		Description: "Poisson event arrivals across offered loads",
	}
	for gi, gap := range gaps {
		type outcome struct {
			ect, delay time.Duration
		}
		var outcomes []outcome
		for _, mk := range []func() sched.Scheduler{
			func() sched.Scheduler { return sched.FIFO{} },
			func() sched.Scheduler { return sched.NewLMTF(4, opts.Seed) },
			func() sched.Scheduler { return sched.NewPLMTF(4, opts.Seed) },
		} {
			setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + 1700 + int64(gi)})
			env, err := NewEnv(setup)
			if err != nil {
				return nil, err
			}
			events := env.Gen.EventsPoisson(nEvents, minFlows, maxFlows, gap)
			eng := sim.NewEngine(env.Planner, mk(), sim.Config{})
			col, err := eng.Run(events)
			if err != nil {
				return nil, err
			}
			outcomes = append(outcomes, outcome{ect: col.AvgECT(), delay: col.AvgQueuingDelay()})
		}
		table.AddRow(gap.String(),
			seconds(outcomes[0].ect), seconds(outcomes[0].delay),
			seconds(outcomes[1].ect), seconds(outcomes[1].delay),
			seconds(outcomes[2].ect), seconds(outcomes[2].delay))
		rep.headline(fmt.Sprintf("p-lmtf/fifo ECT ratio @%v", gap),
			ratioDur(outcomes[2].ect, outcomes[0].ect))
	}
	rep.Tables = []*metrics.Table{table}
	rep.Notes = append(rep.Notes,
		"extension beyond the paper: its evaluation always starts from a full queue")
	return rep, nil
}

// ratioDur returns a/b (0 when b is 0).
func ratioDur(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
