package experiments

import (
	"fmt"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/metrics"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
)

// toyConfig strips all timing except 1-second installs and 100 Mbps/s
// migration, so results come out in the unit-slot arithmetic of the
// paper's illustrations.
func toyConfig() sim.Config {
	return sim.Config{
		InstallTime:   time.Second,
		MigrationRate: 100 * topology.Mbps,
		PlanEvalTime:  -1, // the toy figures charge no plan time
		Mode:          sim.InstallOnly,
	}
}

// Fig2 reproduces the illustrative comparison of Fig. 2: three update
// events with 3, 4 and 5 unit flows, scheduled flow-by-flow (interleaved)
// versus as grouped events. The paper's numbers: event-level average ECT
// 22/3 beats flow-level (32/3 in the paper's interleave; 29/3 under plain
// round-robin), with equal tails.
func Fig2(opts Options) (*Report, error) {
	mkEvents := func(ft *topology.FatTree) []*core.Event {
		hosts := ft.Hosts()
		sizes := []int{3, 4, 5}
		events := make([]*core.Event, len(sizes))
		for i, n := range sizes {
			specs := make([]flow.Spec, n)
			for j := range specs {
				specs[j] = flow.Spec{
					Src:    hosts[(i*2)%len(hosts)],
					Dst:    hosts[(i*2+1)%len(hosts)],
					Demand: topology.Mbps,
				}
			}
			events[i] = core.NewEvent(flow.EventID(i+1), "toy", 0, specs)
		}
		return events
	}
	newToyPlanner := func() (*core.Planner, *topology.FatTree, error) {
		ft, err := topology.NewFatTree(4, topology.Gbps)
		if err != nil {
			return nil, nil, err
		}
		net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
		return core.NewPlanner(migration.NewPlanner(net, 0), 0), ft, nil
	}

	plEv, ftEv, err := newToyPlanner()
	if err != nil {
		return nil, err
	}
	evEvents := mkEvents(ftEv)
	evCol, err := sim.NewEngine(plEv, sched.FIFO{}, toyConfig()).Run(evEvents)
	if err != nil {
		return nil, err
	}

	plFl, ftFl, err := newToyPlanner()
	if err != nil {
		return nil, err
	}
	flEvents := mkEvents(ftFl)
	flCol, err := sim.NewFlowLevel(plFl, toyConfig()).Run(flEvents)
	if err != nil {
		return nil, err
	}

	table := metrics.NewTable("Fig 2: toy schedule (seconds = unit slots)",
		"event", "flows", "event-level ECT", "flow-level ECT")
	for i := range evEvents {
		table.AddRow(fmt.Sprintf("U%d", i+1), evEvents[i].NumFlows(),
			seconds(evEvents[i].ECT()), seconds(flEvents[i].ECT()))
	}
	table.AddRow("average", "", seconds(evCol.AvgECT()), seconds(flCol.AvgECT()))
	table.AddRow("tail", "", seconds(evCol.TailECT()), seconds(flCol.TailECT()))

	r := &Report{
		Name:        "fig2",
		Description: "flow-level vs event-level update orders (illustrative)",
		Tables:      []*metrics.Table{table},
	}
	r.headline("event-level avg ECT (paper 22/3≈7.33)", evCol.AvgECT().Seconds())
	r.headline("flow-level avg ECT (paper 32/3≈10.67)", flCol.AvgECT().Seconds())
	r.headline("tails equal", boolAsFloat(evCol.TailECT() == flCol.TailECT()))
	r.Notes = append(r.Notes,
		"paper's interleave order yields 32/3; plain round-robin yields 29/3 — same ordering, same conclusion")
	return r, nil
}

// fig3Gadgets builds three independent bottleneck gadgets. Gadget i hosts
// event U_{i+1}: a 1 Gbps flow a->u->v->b whose bottleneck is pre-loaded
// with a victim of the given demand (with a free detour), so admitting the
// event migrates exactly that demand. With 100 Mbps/s migration and 1 s
// installs this reproduces Fig. 3's service times: U1 = 4s cost + 1s exec,
// U2 = U3 = 1s cost + 1s exec.
func fig3Gadgets(victimDemands []topology.Bandwidth) (*core.Planner, []*core.Event, error) {
	g := topology.NewGraph()
	events := make([]*core.Event, len(victimDemands))

	type pending struct {
		spec flow.Spec
		path []topology.LinkID
	}
	var victims []pending

	for i, vd := range victimDemands {
		a := g.AddNode(topology.KindHost, fmt.Sprintf("a%d", i))
		b := g.AddNode(topology.KindHost, fmt.Sprintf("b%d", i))
		c := g.AddNode(topology.KindHost, fmt.Sprintf("c%d", i))
		d := g.AddNode(topology.KindHost, fmt.Sprintf("d%d", i))
		u := g.AddNode(topology.KindEdgeSwitch, fmt.Sprintf("u%d", i))
		v := g.AddNode(topology.KindEdgeSwitch, fmt.Sprintf("v%d", i))
		w := g.AddNode(topology.KindEdgeSwitch, fmt.Sprintf("w%d", i))
		link := func(x, y topology.NodeID) topology.LinkID {
			id, err := g.AddLink(x, y, topology.Gbps)
			if err != nil {
				panic(err) // static construction; cannot fail
			}
			return id
		}
		link(a, u)
		uv := link(u, v)
		link(v, b)
		cu := link(c, u)
		vd2 := link(v, d)
		link(c, w)
		link(w, d)
		victims = append(victims, pending{
			spec: flow.Spec{Src: c, Dst: d, Demand: vd},
			path: []topology.LinkID{cu, uv, vd2},
		})
		events[i] = core.NewEvent(flow.EventID(i+1), "toy", 0, []flow.Spec{
			{Src: a, Dst: b, Demand: topology.Gbps},
		})
	}

	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})
	for _, p := range victims {
		f, err := net.AddFlow(p.spec)
		if err != nil {
			return nil, nil, err
		}
		path, err := routing.NewPath(g, p.path)
		if err != nil {
			return nil, nil, err
		}
		if err := net.Place(f, path); err != nil {
			return nil, nil, err
		}
	}
	return core.NewPlanner(migration.NewPlanner(net, 0), 0), events, nil
}

// Fig3 reproduces the illustrative FIFO vs cost-reorder comparison of
// Fig. 3: three events with update costs 4s/1s/1s and 1s execution each.
// FIFO's average ECT is 7s; ordering by cost reduces it to 5s with an
// unchanged 9s tail. LMTF recovers the reordered schedule by sampling.
func Fig3(opts Options) (*Report, error) {
	demands := []topology.Bandwidth{400 * topology.Mbps, 100 * topology.Mbps, 100 * topology.Mbps}
	type outcome struct {
		name string
		ects []time.Duration
		avg  time.Duration
		tail time.Duration
	}
	var outcomes []outcome
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.FIFO{} },
		func() sched.Scheduler { return sched.Reorder{} },
		func() sched.Scheduler { return sched.NewLMTF(2, opts.Seed+1) },
		// Smallest-first ties (every event has one flow) and degenerates
		// to FIFO — static size proxies cannot see migration cost, the
		// heterogeneity LMTF's probing orders by.
		func() sched.Scheduler { return sched.SmallestFirst{} },
	} {
		planner, events, err := fig3Gadgets(demands)
		if err != nil {
			return nil, err
		}
		s := mk()
		col, err := sim.NewEngine(planner, s, toyConfig()).Run(events)
		if err != nil {
			return nil, err
		}
		o := outcome{name: s.Name(), avg: col.AvgECT(), tail: col.TailECT()}
		for _, ev := range events {
			o.ects = append(o.ects, ev.ECT())
		}
		outcomes = append(outcomes, o)
	}

	table := metrics.NewTable("Fig 3: toy schedule (seconds)",
		"scheduler", "U1 ECT", "U2 ECT", "U3 ECT", "avg", "tail")
	for _, o := range outcomes {
		table.AddRow(o.name, seconds(o.ects[0]), seconds(o.ects[1]), seconds(o.ects[2]),
			seconds(o.avg), seconds(o.tail))
	}
	r := &Report{
		Name:        "fig3",
		Description: "FIFO vs cost-based reorder (illustrative)",
		Tables:      []*metrics.Table{table},
	}
	r.headline("fifo avg ECT (paper 7)", outcomes[0].avg.Seconds())
	r.headline("reorder avg ECT (paper 5)", outcomes[1].avg.Seconds())
	r.headline("tail unchanged (paper 9)", outcomes[1].tail.Seconds())
	return r, nil
}

func boolAsFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
