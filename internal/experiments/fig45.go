package experiments

import (
	"time"

	"netupdate/internal/metrics"
	"netupdate/internal/sched"
)

// Fig4 compares event-level scheduling with the flow-level baseline for
// 10 update events as the mean number of flows per event grows from 15 to
// 75, at ~70% network utilization. The event-level arm uses P-LMTF (α=4),
// the paper's best event-level method — "our approach" in its headline
// claims. The paper reports the event-level average and tail ECTs up to
// 10x and 6x faster; the flow-level curves inflect once events exceed ~35
// flows.
func Fig4(opts Options) (*Report, error) {
	means := []int{15, 25, 35, 45, 55, 65, 75}
	k, nEvents, util := 8, 10, 0.7
	if opts.Quick {
		means = []int{5, 10}
		k, nEvents, util = 4, 4, 0.4
	}

	table := metrics.NewTable("Fig 4: avg/tail ECT vs mean flows per event (seconds; norm = /max flow-level)",
		"mean flows", "event avg", "flow avg", "event tail", "flow tail",
		"event avg norm", "flow avg norm", "event tail norm", "flow tail norm")

	type row struct {
		mean                         int
		evAvg, flAvg, evTail, flTail time.Duration
		avgSpeedup, tailSpeedup      float64
	}
	rows := make([]row, 0, len(means))
	var maxFlAvg, maxFlTail time.Duration

	for i, mean := range means {
		setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + int64(i)})
		minFlows, maxFlows := mean-5, mean+5
		if minFlows < 1 {
			minFlows = 1
		}
		evCol, err := runScheduler(setup, func() sched.Scheduler { return sched.NewPLMTF(4, setup.Seed) },
			nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		flCol, err := runFlowLevel(setup, nEvents, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		r := row{
			mean:  mean,
			evAvg: evCol.AvgECT(), flAvg: flCol.AvgECT(),
			evTail: evCol.TailECT(), flTail: flCol.TailECT(),
			avgSpeedup:  metrics.Speedup(flCol.AvgECT(), evCol.AvgECT()),
			tailSpeedup: metrics.Speedup(flCol.TailECT(), evCol.TailECT()),
		}
		rows = append(rows, r)
		if r.flAvg > maxFlAvg {
			maxFlAvg = r.flAvg
		}
		if r.flTail > maxFlTail {
			maxFlTail = r.flTail
		}
	}

	rep := &Report{
		Name:        "fig4",
		Description: "event-level vs flow-level ECTs, 10 events, growing event size",
	}
	var bestAvg, bestTail float64
	for _, r := range rows {
		table.AddRow(r.mean,
			seconds(r.evAvg), seconds(r.flAvg), seconds(r.evTail), seconds(r.flTail),
			norm(r.evAvg, maxFlAvg), norm(r.flAvg, maxFlAvg),
			norm(r.evTail, maxFlTail), norm(r.flTail, maxFlTail))
		if r.avgSpeedup > bestAvg {
			bestAvg = r.avgSpeedup
		}
		if r.tailSpeedup > bestTail {
			bestTail = r.tailSpeedup
		}
	}
	rep.Tables = []*metrics.Table{table}
	rep.headline("max avg-ECT speedup (paper: up to 10x)", bestAvg)
	rep.headline("max tail-ECT speedup (paper: up to 6x)", bestTail)
	return rep, nil
}

// Fig5 repeats the comparison as the number of queued events grows from 10
// to 50 with 10–100 flows per event at 70% utilization, again with P-LMTF
// as the event-level method. The paper reports ~5x average and ~2x tail
// advantage for event-level scheduling, with the flow-level curves jumping
// near 30 events.
func Fig5(opts Options) (*Report, error) {
	counts := []int{10, 20, 30, 40, 50}
	k, util := 8, 0.7
	minFlows, maxFlows := 10, 100
	if opts.Quick {
		counts = []int{3, 6}
		k, util = 4, 0.4
		minFlows, maxFlows = 3, 10
	}

	table := metrics.NewTable("Fig 5: avg/tail ECT vs number of events (seconds)",
		"events", "event avg", "flow avg", "event tail", "flow tail",
		"avg speedup", "tail speedup")
	rep := &Report{
		Name:        "fig5",
		Description: "event-level vs flow-level ECTs vs queue length",
	}
	var sumAvgSp, sumTailSp float64
	for i, n := range counts {
		setup := opts.apply(Setup{K: k, Utilization: util, Seed: opts.Seed*1000 + 500 + int64(i)})
		evCol, err := runScheduler(setup, func() sched.Scheduler { return sched.NewPLMTF(4, setup.Seed) },
			n, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		flCol, err := runFlowLevel(setup, n, minFlows, maxFlows)
		if err != nil {
			return nil, err
		}
		avgSp := metrics.Speedup(flCol.AvgECT(), evCol.AvgECT())
		tailSp := metrics.Speedup(flCol.TailECT(), evCol.TailECT())
		sumAvgSp += avgSp
		sumTailSp += tailSp
		table.AddRow(n, seconds(evCol.AvgECT()), seconds(flCol.AvgECT()),
			seconds(evCol.TailECT()), seconds(flCol.TailECT()), avgSp, tailSp)
	}
	rep.Tables = []*metrics.Table{table}
	rep.headline("mean avg-ECT speedup (paper ~5x)", sumAvgSp/float64(len(counts)))
	rep.headline("mean tail-ECT speedup (paper ~2x)", sumTailSp/float64(len(counts)))
	return rep, nil
}

// norm divides a duration by a base duration (0 when base is 0), matching
// the paper's normalized plots ("divided by the maximum value of the
// flow-level method").
func norm(v, base time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / float64(base)
}
