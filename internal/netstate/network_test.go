package netstate

import (
	"errors"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// newTestNetwork returns a k=4 fat-tree network with widest-fit selection.
func newTestNetwork(t *testing.T) (*Network, *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	n := New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	return n, ft
}

func mustAdd(t *testing.T, n *Network, src, dst topology.NodeID, demand topology.Bandwidth) *flow.Flow {
	t.Helper()
	f, err := n.AddFlow(flow.Spec{Src: src, Dst: dst, Demand: demand, Size: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPlaceBestReservesBandwidth(t *testing.T) {
	n, ft := newTestNetwork(t)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), 400*topology.Mbps)

	path, err := n.PlaceBest(f)
	if err != nil {
		t.Fatalf("PlaceBest: %v", err)
	}
	if !f.Placed() {
		t.Fatal("flow not placed")
	}
	for _, l := range path.Links() {
		if got := n.Graph().Link(l).Reserved(); got != 400*topology.Mbps {
			t.Errorf("link %v reserved = %v, want 400Mbps", l, got)
		}
	}
	if n.Utilization() == 0 {
		t.Error("utilization still zero after placement")
	}
}

func TestPlaceBestExhaustsAllPaths(t *testing.T) {
	n, ft := newTestNetwork(t)
	src, dst := ft.Host(0, 0, 0), ft.Host(0, 1, 0) // same pod: 2 paths (k=4)

	// Each placement takes 600 Mbps; two fit on disjoint agg paths, the
	// third cannot (shared host access links are full at 1 Gbps... actually
	// the host uplink carries every flow, so a second 600 Mbps flow already
	// exceeds it).
	f1 := mustAdd(t, n, src, dst, 600*topology.Mbps)
	if _, err := n.PlaceBest(f1); err != nil {
		t.Fatalf("first placement: %v", err)
	}
	f2 := mustAdd(t, n, src, dst, 600*topology.Mbps)
	if _, err := n.PlaceBest(f2); !errors.Is(err, ErrNoFeasiblePath) {
		t.Fatalf("second placement error = %v, want ErrNoFeasiblePath (host uplink full)", err)
	}
	if f2.Placed() {
		t.Error("failed placement left flow placed")
	}
}

func TestPlaceRollsBackOnPartialFailure(t *testing.T) {
	n, ft := newTestNetwork(t)
	g := n.Graph()
	src, dst := ft.Host(0, 0, 0), ft.Host(2, 0, 0)
	f := mustAdd(t, n, src, dst, 500*topology.Mbps)

	paths := n.Candidates(f)
	target := paths[0]
	// Congest the last link of the target path so reservation fails midway.
	last := target.Links()[target.Len()-1]
	if err := g.Reserve(last, 700*topology.Mbps); err != nil {
		t.Fatal(err)
	}
	if err := n.Place(f, target); err == nil {
		t.Fatal("Place on congested path succeeded")
	}
	// Every other link of the path must be back to 0 reserved.
	for _, l := range target.Links()[:target.Len()-1] {
		if got := g.Link(l).Reserved(); got != 0 {
			t.Errorf("link %v reserved = %v after rollback, want 0", l, got)
		}
	}
	if f.Placed() {
		t.Error("flow placed after failed Place")
	}
}

func TestPlaceEmptyPathAndDoublePlace(t *testing.T) {
	n, ft := newTestNetwork(t)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), topology.Mbps)
	if err := n.Place(f, routing.Path{}); err == nil {
		t.Error("Place(empty path) succeeded")
	}
	if _, err := n.PlaceBest(f); err != nil {
		t.Fatal(err)
	}
	if err := n.Place(f, f.Path()); !errors.Is(err, flow.ErrAlreadyPlaced) {
		t.Errorf("double Place error = %v, want ErrAlreadyPlaced", err)
	}
}

func TestWithdrawRestoresBandwidth(t *testing.T) {
	n, ft := newTestNetwork(t)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 1, 1), 250*topology.Mbps)
	path, err := n.PlaceBest(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Withdraw(f); err != nil {
		t.Fatalf("Withdraw: %v", err)
	}
	for _, l := range path.Links() {
		if got := n.Graph().Link(l).Reserved(); got != 0 {
			t.Errorf("link %v reserved = %v after withdraw, want 0", l, got)
		}
	}
	if err := n.Withdraw(f); !errors.Is(err, flow.ErrNotPlaced) {
		t.Errorf("double Withdraw error = %v, want ErrNotPlaced", err)
	}
	// The flow is still registered and can be placed again.
	if _, err := n.PlaceBest(f); err != nil {
		t.Errorf("re-place after withdraw: %v", err)
	}
}

func TestRemoveDeletesFlow(t *testing.T) {
	n, ft := newTestNetwork(t)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 1, 1), 250*topology.Mbps)
	if _, err := n.PlaceBest(f); err != nil {
		t.Fatal(err)
	}
	if err := n.Remove(f); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if n.Utilization() != 0 {
		t.Error("utilization nonzero after removing only flow")
	}
	if _, err := n.Registry().Get(f.ID); !errors.Is(err, flow.ErrUnknownFlow) {
		t.Error("flow still registered after Remove")
	}
}

func TestRerouteMovesReservations(t *testing.T) {
	n, ft := newTestNetwork(t)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(0, 1, 0), 400*topology.Mbps)
	paths := n.Candidates(f)
	if len(paths) != 2 {
		t.Fatalf("same-pod candidates = %d, want 2", len(paths))
	}
	if err := n.Place(f, paths[0]); err != nil {
		t.Fatal(err)
	}
	if err := n.Reroute(f, paths[1]); err != nil {
		t.Fatalf("Reroute: %v", err)
	}
	if !f.Path().Equal(paths[1]) {
		t.Error("flow not on new path after Reroute")
	}
	// Old path's agg links are free again (host access links are shared
	// between the two paths, so check the middle links only).
	for _, l := range paths[0].Links() {
		if paths[1].Contains(l) {
			continue
		}
		if got := n.Graph().Link(l).Reserved(); got != 0 {
			t.Errorf("old link %v still reserved: %v", l, got)
		}
	}
}

func TestRerouteRestoresOnFailure(t *testing.T) {
	n, ft := newTestNetwork(t)
	g := n.Graph()
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(0, 1, 0), 400*topology.Mbps)
	paths := n.Candidates(f)
	if err := n.Place(f, paths[0]); err != nil {
		t.Fatal(err)
	}
	// Fill the alternative path's distinctive middle link.
	var blocked topology.LinkID = topology.InvalidLink
	for _, l := range paths[1].Links() {
		if !paths[0].Contains(l) {
			blocked = l
			break
		}
	}
	if err := g.Reserve(blocked, 700*topology.Mbps); err != nil {
		t.Fatal(err)
	}
	if err := n.Reroute(f, paths[1]); !errors.Is(err, ErrNoFeasiblePath) {
		t.Fatalf("Reroute error = %v, want ErrNoFeasiblePath", err)
	}
	if !f.Placed() || !f.Path().Equal(paths[0]) {
		t.Error("flow not restored to original path")
	}
	for _, l := range paths[0].Links() {
		if got := g.Link(l).Reserved(); got != 400*topology.Mbps {
			t.Errorf("restored link %v reserved = %v, want 400Mbps", l, got)
		}
	}
}

func TestDesiredPathIgnoresFeasibility(t *testing.T) {
	n, ft := newTestNetwork(t)
	g := n.Graph()
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(0, 1, 0), 800*topology.Mbps)
	paths := n.Candidates(f)
	// Congest both candidates; desired path is still returned (the less
	// congested one).
	for i, p := range paths {
		for _, l := range p.Links() {
			if !paths[(i+1)%2].Contains(l) {
				if err := g.Reserve(l, topology.Bandwidth(500+i*200)*topology.Mbps); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	dp, err := n.DesiredPath(f)
	if err != nil {
		t.Fatalf("DesiredPath: %v", err)
	}
	if dp.IsZero() {
		t.Fatal("DesiredPath returned zero path")
	}
	congested := n.CongestedLinks(f, dp)
	if len(congested) == 0 {
		t.Error("expected congestion on desired path at 800Mbps demand")
	}
}

func TestFlowsAcross(t *testing.T) {
	n, ft := newTestNetwork(t)
	src, dst := ft.Host(0, 0, 0), ft.Host(0, 0, 1)
	// Three flows on the same 2-hop path (same edge switch), two belonging
	// to event 7.
	var flows []*flow.Flow
	for i := 0; i < 3; i++ {
		spec := flow.Spec{Src: src, Dst: dst, Demand: 10 * topology.Mbps, Event: flow.NoEvent}
		if i < 2 {
			spec.Event = 7
		}
		f, err := n.AddFlow(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.PlaceBest(f); err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	links := flows[0].Path().Links()

	all := n.FlowsAcross(links, flow.NoEvent)
	if len(all) != 3 {
		t.Fatalf("FlowsAcross(no exclude) = %d flows, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Error("FlowsAcross not ID-sorted")
		}
	}
	filtered := n.FlowsAcross(links, 7)
	if len(filtered) != 1 || filtered[0] != flows[2] {
		t.Errorf("FlowsAcross(exclude 7) = %v, want only background flow", filtered)
	}
	if got := n.FlowsAcross(nil, flow.NoEvent); got != nil {
		t.Errorf("FlowsAcross(no links) = %v, want nil", got)
	}
}

func TestNewDefaultsSelector(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	n := New(ft.Graph(), routing.NewFatTreeProvider(ft), nil)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), topology.Mbps)
	if _, err := n.PlaceBest(f); err != nil {
		t.Errorf("PlaceBest with default selector: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	n, _ := newTestNetwork(t)
	if n.Provider() == nil {
		t.Error("Provider() = nil")
	}
	if n.DataPlane() != nil {
		t.Error("DataPlane() != nil before attach")
	}
}

func TestDesiredPathNoCandidates(t *testing.T) {
	n, ft := newTestNetwork(t)
	// A flow between two switches has no host-pair candidates under the
	// fat-tree provider.
	f := &flow.Flow{ID: 999, Src: ft.Core(0, 0), Dst: ft.Agg(0, 0), Demand: topology.Mbps}
	if _, err := n.DesiredPath(f); err == nil {
		t.Error("DesiredPath with no candidates succeeded")
	}
}

func TestRemoveUnknownFlow(t *testing.T) {
	n, _ := newTestNetwork(t)
	ghost := &flow.Flow{ID: 12345, Src: 0, Dst: 1, Demand: topology.Mbps}
	if err := n.Remove(ghost); err == nil {
		t.Error("Remove(ghost) succeeded")
	}
}
