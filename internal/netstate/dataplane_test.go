package netstate

import (
	"errors"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/routing"
	"netupdate/internal/rules"
	"netupdate/internal/topology"
)

// newDPNetwork returns a k=4 fat-tree network with rule tables attached
// (capacity per switch as given; 0 = unlimited).
func newDPNetwork(t *testing.T, capacity int) (*Network, *topology.FatTree, *rules.Manager) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	n := New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	m := rules.NewManager(ft.Graph(), capacity)
	if err := n.AttachDataPlane(m); err != nil {
		t.Fatal(err)
	}
	return n, ft, m
}

// switchHops counts the rules a path occupies (switch-sourced links).
func switchHops(g *topology.Graph, p routing.Path) int {
	hops := 0
	for _, l := range p.Links() {
		if g.Node(g.Link(l).From).Kind.IsSwitch() {
			hops++
		}
	}
	return hops
}

func TestAttachDataPlaneRequiresEmptyNetwork(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	n := New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), topology.Mbps)
	if _, err := n.PlaceBest(f); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachDataPlane(rules.NewManager(ft.Graph(), 0)); !errors.Is(err, ErrDataPlaneNotEmpty) {
		t.Errorf("AttachDataPlane error = %v, want ErrDataPlaneNotEmpty", err)
	}
}

func TestPlaceInstallsRules(t *testing.T) {
	n, ft, m := newDPNetwork(t, 0)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), 10*topology.Mbps)
	path, err := n.PlaceBest(f)
	if err != nil {
		t.Fatal(err)
	}
	if !m.PathInstalled(f.ID, 1, path) {
		t.Error("rules not installed after Place")
	}
	if got, want := m.TotalEntries(), switchHops(n.Graph(), path); got != want {
		t.Errorf("TotalEntries = %d, want %d", got, want)
	}
	if err := n.Withdraw(f); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalEntries(); got != 0 {
		t.Errorf("TotalEntries after withdraw = %d, want 0", got)
	}
}

func TestRerouteIsTwoPhaseMove(t *testing.T) {
	n, ft, m := newDPNetwork(t, 0)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(0, 1, 0), 10*topology.Mbps)
	paths := n.Candidates(f)
	if err := n.Place(f, paths[0]); err != nil {
		t.Fatal(err)
	}
	if err := n.Reroute(f, paths[1]); err != nil {
		t.Fatal(err)
	}
	if !m.PathInstalled(f.ID, 2, paths[1]) {
		t.Error("generation 2 not installed on new path")
	}
	if m.PathInstalled(f.ID, 1, paths[0]) {
		t.Error("generation 1 still installed on old path")
	}
	if got := m.CurrentVersion(f.ID); got != 2 {
		t.Errorf("CurrentVersion = %d, want 2", got)
	}
	// Steady-state occupancy equals the new path's rules only.
	if got, want := m.TotalEntries(), switchHops(n.Graph(), paths[1]); got != want {
		t.Errorf("TotalEntries = %d, want %d", got, want)
	}
}

func TestRePlacementAdvancesGeneration(t *testing.T) {
	n, ft, m := newDPNetwork(t, 0)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), 10*topology.Mbps)
	if _, err := n.PlaceBest(f); err != nil {
		t.Fatal(err)
	}
	if err := n.Withdraw(f); err != nil {
		t.Fatal(err)
	}
	path, err := n.PlaceBest(f)
	if err != nil {
		t.Fatal(err)
	}
	// Second placement must not collide with the (removed) generation 1.
	if !m.PathInstalled(f.ID, 2, path) {
		t.Error("second placement not at generation 2")
	}
}

func TestFullTablesBlockPlacement(t *testing.T) {
	n, ft, _ := newDPNetwork(t, 1)
	// First flow occupies the shared edge switch's single slot.
	f1 := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), topology.Mbps)
	if _, err := n.PlaceBest(f1); err != nil {
		t.Fatal(err)
	}
	// A second flow from the same edge switch cannot install its rule.
	f2 := mustAdd(t, n, ft.Host(0, 0, 1), ft.Host(1, 0, 1), topology.Mbps)
	_, err := n.PlaceBest(f2)
	if !errors.Is(err, rules.ErrTableFull) {
		t.Fatalf("PlaceBest error = %v, want ErrTableFull", err)
	}
	if f2.Placed() {
		t.Error("flow placed despite full tables")
	}
	// Bandwidth fully rolled back: withdrawing f1 leaves a clean network.
	if err := n.Remove(f1); err != nil {
		t.Fatal(err)
	}
	if n.Utilization() != 0 {
		t.Error("utilization nonzero after cleanup")
	}
}

func TestFullTablesBlockRerouteAndRestore(t *testing.T) {
	// Capacity 1: a two-phase move needs both generations at the shared
	// edge switches, so the move must fail and restore the old path.
	n, ft, m := newDPNetwork(t, 1)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(0, 1, 0), topology.Mbps)
	paths := n.Candidates(f)
	if err := n.Place(f, paths[0]); err != nil {
		t.Fatal(err)
	}
	err := n.Reroute(f, paths[1])
	if !errors.Is(err, rules.ErrTableFull) {
		t.Fatalf("Reroute error = %v, want ErrTableFull", err)
	}
	if !f.Placed() || !f.Path().Equal(paths[0]) {
		t.Error("flow not restored to old path")
	}
	if !m.PathInstalled(f.ID, 1, paths[0]) {
		t.Error("old generation rules lost")
	}
	// Reservations restored exactly.
	for _, l := range paths[0].Links() {
		if got := n.Graph().Link(l).Reserved(); got != topology.Mbps {
			t.Errorf("link %v reserved = %v, want 1Mbps", l, got)
		}
	}
}

// TestDataPlaneMatchesRegistryInvariant drives a mixed workload and then
// checks the global invariant: the rule tables contain exactly the
// current-generation rules of the placed flows.
func TestDataPlaneMatchesRegistryInvariant(t *testing.T) {
	n, ft, m := newDPNetwork(t, 0)
	hosts := ft.Hosts()
	var flows []*flow.Flow
	for i := 0; i < 40; i++ {
		f := mustAdd(t, n, hosts[(2*i)%len(hosts)], hosts[(2*i+5)%len(hosts)], 5*topology.Mbps)
		if _, err := n.PlaceBest(f); err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	// Churn: reroute some, remove others.
	for i, f := range flows {
		switch i % 3 {
		case 0:
			for _, p := range n.Candidates(f) {
				if !p.Equal(f.Path()) {
					if err := n.Reroute(f, p); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		case 1:
			if err := n.Remove(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := 0
	for _, f := range n.Registry().Placed() {
		if !m.PathInstalled(f.ID, m.CurrentVersion(f.ID), f.Path()) {
			t.Errorf("flow %v's rules missing or stale", f)
		}
		want += switchHops(n.Graph(), f.Path())
	}
	if got := m.TotalEntries(); got != want {
		t.Errorf("TotalEntries = %d, want %d (placed flows only)", got, want)
	}
}
