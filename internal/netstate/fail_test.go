package netstate

import (
	"errors"
	"testing"

	"netupdate/internal/topology"
)

func TestFailLinksReturnsAffectedFlows(t *testing.T) {
	n, ft := newTestNetwork(t)
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), 400*topology.Mbps)
	path, err := n.PlaceBest(f)
	if err != nil {
		t.Fatalf("PlaceBest: %v", err)
	}
	// A second flow in a different pod pair that shares no link with f's
	// path must not appear in the affected set.
	other := mustAdd(t, n, ft.Host(2, 0, 0), ft.Host(2, 1, 0), 100*topology.Mbps)
	if _, err := n.PlaceBest(other); err != nil {
		t.Fatalf("PlaceBest(other): %v", err)
	}

	failed := path.Links()[:1]
	affected, changed := n.FailLinks(failed)
	if changed != 1 {
		t.Errorf("FailLinks changed = %d, want 1", changed)
	}
	if len(affected) != 1 || affected[0].ID != f.ID {
		t.Errorf("affected = %v, want exactly flow %v", affected, f.ID)
	}
	if !n.Graph().Link(failed[0]).Down() {
		t.Error("link not marked down")
	}
	// The flow's reservation persists until the fault layer withdraws it.
	if got := n.Graph().Link(failed[0]).Reserved(); got != 400*topology.Mbps {
		t.Errorf("down link reserved = %v, want 400Mbps", got)
	}
	// Withdraw still works across the down link.
	if err := n.Withdraw(f); err != nil {
		t.Fatalf("Withdraw across down link: %v", err)
	}
	if got := n.Graph().Link(failed[0]).Reserved(); got != 0 {
		t.Errorf("down link reserved after withdraw = %v, want 0", got)
	}
}

func TestFailLinksIdempotentAndRestore(t *testing.T) {
	n, ft := newTestNetwork(t)
	up, ok := n.Graph().LinkBetween(ft.Host(0, 0, 0), ft.Edge(0, 0))
	if !ok {
		t.Fatal("no host uplink")
	}
	links := []topology.LinkID{up}

	if _, changed := n.FailLinks(links); changed != 1 {
		t.Fatal("first FailLinks did not change state")
	}
	if _, changed := n.FailLinks(links); changed != 0 {
		t.Error("second FailLinks on a down link reported a change")
	}
	if got := n.Graph().NumLinksDown(); got != 1 {
		t.Errorf("NumLinksDown = %d, want 1", got)
	}

	// While down, placement over the link is impossible.
	f := mustAdd(t, n, ft.Host(0, 0, 0), ft.Host(1, 0, 0), topology.Mbps)
	if _, err := n.PlaceBest(f); !errors.Is(err, ErrNoFeasiblePath) {
		t.Errorf("PlaceBest over down uplink: err = %v, want ErrNoFeasiblePath", err)
	}

	if changed := n.RestoreLinks(links); changed != 1 {
		t.Error("RestoreLinks did not change state")
	}
	if changed := n.RestoreLinks(links); changed != 0 {
		t.Error("RestoreLinks on an up link reported a change")
	}
	if got := n.Graph().NumLinksDown(); got != 0 {
		t.Errorf("NumLinksDown after restore = %d, want 0", got)
	}
	if _, err := n.PlaceBest(f); err != nil {
		t.Errorf("PlaceBest after restore: %v", err)
	}
}
