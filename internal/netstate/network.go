// Package netstate ties the substrate together: one Network value owns the
// graph (bandwidth bookkeeping), the routing provider (candidate paths) and
// the flow registry (who is where), and exposes the state transitions the
// paper's machinery needs — placing, withdrawing and rerouting unsplittable
// flows while preserving the congestion-free invariants of Section III-A.
package netstate

import (
	"errors"
	"fmt"

	"netupdate/internal/consistency"
	"netupdate/internal/flow"
	"netupdate/internal/routing"
	"netupdate/internal/rules"
	"netupdate/internal/topology"
)

// ErrNoFeasiblePath is returned when no candidate path can carry a flow's
// demand. Callers fall back to migration planning (Definition 1) when they
// see it.
var ErrNoFeasiblePath = errors.New("no feasible path")

// Network is the authoritative network state: graph + routing + flows.
// All mutation goes through its methods so the bandwidth ledger and the
// link index can never disagree.
//
// Network is not safe for concurrent use; the simulator serializes access.
type Network struct {
	graph    *topology.Graph
	provider routing.Provider
	selector routing.Selector
	reg      *flow.Registry
	// dataplane, when attached, mirrors every placement into per-switch
	// rule tables via per-packet-consistent plans.
	dataplane *rules.Manager
}

// ErrDataPlaneNotEmpty is returned by AttachDataPlane when flows are
// already placed (their rules would be missing from the tables).
var ErrDataPlaneNotEmpty = errors.New("netstate: attach data plane before placing flows")

// New assembles a Network from its parts. selector defaults to WidestFit
// when nil.
func New(g *topology.Graph, provider routing.Provider, selector routing.Selector) *Network {
	if selector == nil {
		selector = routing.WidestFit{}
	}
	return &Network{
		graph:    g,
		provider: provider,
		selector: selector,
		reg:      flow.NewRegistry(),
	}
}

// Graph returns the underlying graph (shared, live state).
func (n *Network) Graph() *topology.Graph { return n.graph }

// Fork returns a scratch copy of the network for trial planning: the
// graph's reservation ledger and the flow registry are copied, while the
// immutable topology, the routing provider (with its path cache) and the
// selector are shared. Mutations on the fork never touch the live
// network, so cost probes can run on forks concurrently with each other
// (each probe owns its fork) and with reads of the live state.
//
// The data plane is deliberately NOT carried onto forks: rule tables have
// their own mutable state that forking does not capture. Callers that
// need probe results faithful to rule-table admission (DataPlane() !=
// nil) must probe the live network serially instead.
func (n *Network) Fork() *Network {
	return &Network{
		graph:    n.graph.Fork(),
		provider: n.provider,
		selector: n.selector,
		reg:      n.reg.Fork(),
	}
}

// SyncFrom resets a fork's mutable state to match src: reservations are
// copied in place and the flow registry is re-forked. The topology must
// match (it panics otherwise, via Graph.SyncFrom).
func (n *Network) SyncFrom(src *Network) {
	n.graph.SyncFrom(src.graph)
	n.reg = src.reg.Fork()
}

// Provider returns the routing provider.
func (n *Network) Provider() routing.Provider { return n.provider }

// Selector returns the path selector (checkpoint recovery restores its
// RNG position through it).
func (n *Network) Selector() routing.Selector { return n.selector }

// Registry returns the flow registry (shared, live state).
func (n *Network) Registry() *flow.Registry { return n.reg }

// AttachDataPlane mirrors all future placements, reroutes and withdrawals
// into m's rule tables using two-phase consistent plans: placements become
// install+flip, reroutes become install+flip+remove (both generations
// briefly coexist), withdrawals become teardowns. Rule-table capacity then
// becomes a real admission constraint. Must be called before any flow is
// placed.
func (n *Network) AttachDataPlane(m *rules.Manager) error {
	if len(n.reg.Placed()) > 0 {
		return ErrDataPlaneNotEmpty
	}
	n.dataplane = m
	return nil
}

// DataPlane returns the attached rule tables (nil when none).
func (n *Network) DataPlane() *rules.Manager { return n.dataplane }

// AddFlow registers a new unplaced flow.
func (n *Network) AddFlow(spec flow.Spec) (*flow.Flow, error) {
	return n.reg.Add(spec)
}

// Candidates returns the feasible path set P(f) for the flow's endpoints.
func (n *Network) Candidates(f *flow.Flow) []routing.Path {
	return n.provider.Paths(f.Src, f.Dst)
}

// Place reserves the flow's demand on every link of path and binds the
// flow to it. On failure nothing is reserved and the flow stays unplaced.
func (n *Network) Place(f *flow.Flow, path routing.Path) error {
	if f.Placed() {
		return fmt.Errorf("place %v: %w", f, flow.ErrAlreadyPlaced)
	}
	if path.IsZero() {
		return fmt.Errorf("place %v: empty path", f)
	}
	if err := n.reserveAll(path, f.Demand); err != nil {
		return fmt.Errorf("place %v: %w", f, err)
	}
	if err := n.reg.Bind(f, path); err != nil {
		n.releaseAll(path, f.Demand)
		return err
	}
	if n.dataplane != nil {
		v := n.dataplane.CurrentVersion(f.ID) + 1
		if _, err := consistency.Apply(consistency.InstallAt(f.ID, v, path), n.dataplane); err != nil {
			if ubErr := n.reg.Unbind(f); ubErr != nil {
				panic(fmt.Sprintf("netstate: unbind during place rollback: %v", ubErr))
			}
			n.releaseAll(path, f.Demand)
			return fmt.Errorf("place %v: data plane: %w", f, err)
		}
	}
	return nil
}

// PlaceBest selects a feasible path for the flow using the configured
// selector and places it. It returns ErrNoFeasiblePath (wrapped) when no
// candidate fits the demand.
func (n *Network) PlaceBest(f *flow.Flow) (routing.Path, error) {
	candidates := n.Candidates(f)
	if len(candidates) == 0 {
		return routing.Path{}, fmt.Errorf("place %v: no candidate paths: %w", f, ErrNoFeasiblePath)
	}
	path, ok := n.selector.Select(n.graph, candidates, f.Demand)
	if !ok {
		return routing.Path{}, fmt.Errorf("place %v: %w", f, ErrNoFeasiblePath)
	}
	if err := n.Place(f, path); err != nil {
		return routing.Path{}, err
	}
	return path, nil
}

// Withdraw releases the flow's reservations and unbinds its path; the flow
// stays registered and can be placed again (migration uses this).
func (n *Network) Withdraw(f *flow.Flow) error {
	if !f.Placed() {
		return fmt.Errorf("withdraw %v: %w", f, flow.ErrNotPlaced)
	}
	path := f.Path()
	if n.dataplane != nil {
		v := n.dataplane.CurrentVersion(f.ID)
		if _, err := consistency.Apply(consistency.Teardown(f.ID, v, path), n.dataplane); err != nil {
			return fmt.Errorf("withdraw %v: data plane: %w", f, err)
		}
	}
	if err := n.reg.Unbind(f); err != nil {
		return err
	}
	n.releaseAll(path, f.Demand)
	return nil
}

// Remove withdraws the flow if placed and deletes it from the registry
// (e.g. a background flow finishing its transfer).
func (n *Network) Remove(f *flow.Flow) error {
	if f.Placed() {
		if err := n.Withdraw(f); err != nil {
			return err
		}
	}
	return n.reg.Remove(f)
}

// Reroute atomically moves a placed flow onto newPath. If newPath cannot
// accommodate the demand once the flow's own reservations are released —
// or, with a data plane attached, if the two-phase transition does not fit
// the rule tables — the flow is restored to its original path and the
// error returned (wrapping ErrNoFeasiblePath for bandwidth failures).
//
// With a data plane attached the move is per-packet consistent: the new
// generation's rules are fully installed before the ingress flips, and
// both generations briefly coexist in the tables.
func (n *Network) Reroute(f *flow.Flow, newPath routing.Path) error {
	if !f.Placed() {
		return fmt.Errorf("reroute %v: %w", f, flow.ErrNotPlaced)
	}
	oldPath := f.Path()

	// Move the bandwidth reservations first, without touching the data
	// plane (registry bind/unbind + ledger only).
	if err := n.reg.Unbind(f); err != nil {
		return err
	}
	n.releaseAll(oldPath, f.Demand)
	restoreOld := func() {
		if err := n.reserveAll(oldPath, f.Demand); err != nil {
			panic(fmt.Sprintf("netstate: restoring reservations: %v", err))
		}
		if err := n.reg.Bind(f, oldPath); err != nil {
			panic(fmt.Sprintf("netstate: restoring binding: %v", err))
		}
	}
	if err := n.reserveAll(newPath, f.Demand); err != nil {
		restoreOld()
		return fmt.Errorf("reroute %v: %w", f, ErrNoFeasiblePath)
	}
	if err := n.reg.Bind(f, newPath); err != nil {
		n.releaseAll(newPath, f.Demand)
		restoreOld()
		return err
	}

	if n.dataplane != nil {
		cur := n.dataplane.CurrentVersion(f.ID)
		if _, err := consistency.Apply(consistency.Move(f.ID, cur, oldPath, newPath), n.dataplane); err != nil {
			if ubErr := n.reg.Unbind(f); ubErr != nil {
				panic(fmt.Sprintf("netstate: unbind during reroute rollback: %v", ubErr))
			}
			n.releaseAll(newPath, f.Demand)
			restoreOld()
			return fmt.Errorf("reroute %v: data plane: %w", f, err)
		}
	}
	return nil
}

// DesiredPath returns the path the flow would prefer right now — the
// candidate with the largest bottleneck residual, regardless of
// feasibility. Definition 1 inspects the congested links of this path.
func (n *Network) DesiredPath(f *flow.Flow) (routing.Path, error) {
	path, _, ok := routing.Widest(n.graph, n.Candidates(f))
	if !ok {
		return routing.Path{}, fmt.Errorf("desired path for %v: no candidates", f)
	}
	return path, nil
}

// CongestedLinks returns the links of path whose residual is below the
// flow's demand — the set E^c_{f_a} of Definition 1.
func (n *Network) CongestedLinks(f *flow.Flow, path routing.Path) []topology.LinkID {
	return path.CongestedLinks(n.graph, f.Demand)
}

// FlowsAcross returns the union of flows traversing any of the given
// links — the candidate migration set F_A of Definition 1 — sorted by flow
// ID, excluding flows of the given event (an event never migrates its own
// flows to make room for itself).
func (n *Network) FlowsAcross(links []topology.LinkID, exclude flow.EventID) []*flow.Flow {
	seen := make(map[flow.ID]bool)
	var out []*flow.Flow
	for _, l := range links {
		for _, f := range n.reg.FlowsOn(l) {
			if seen[f.ID] {
				continue
			}
			if exclude != flow.NoEvent && f.Event == exclude {
				continue
			}
			seen[f.ID] = true
			out = append(out, f)
		}
	}
	// FlowsOn returns each link's flows ID-sorted, but the union across
	// links is not; restore global ID order for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FailLinks marks the given links down and returns the placed flows that
// were traversing any of them (deduplicated, ID-sorted) together with how
// many links actually changed state. The flows are NOT withdrawn: their
// reservations still sit on the dead links, and the caller (the fault
// layer) decides whether to reroute, re-admit or drop them. Marking a
// link down bumps the graph epoch, so probe caches and forks
// self-invalidate.
func (n *Network) FailLinks(links []topology.LinkID) (affected []*flow.Flow, changed int) {
	affected = n.FlowsAcross(links, flow.NoEvent)
	for _, l := range links {
		if n.graph.SetLinkDown(l, true) {
			changed++
		}
	}
	return affected, changed
}

// RestoreLinks marks the given links up again and returns how many
// actually changed state. Restored capacity becomes visible to the next
// scheduling round; no flows move automatically.
func (n *Network) RestoreLinks(links []topology.LinkID) (changed int) {
	for _, l := range links {
		if n.graph.SetLinkDown(l, false) {
			changed++
		}
	}
	return changed
}

// Utilization returns the overall link utilization of the graph.
func (n *Network) Utilization() float64 { return n.graph.Utilization() }

// reserveAll reserves demand on every link of path, rolling back on the
// first failure.
func (n *Network) reserveAll(path routing.Path, demand topology.Bandwidth) error {
	links := path.Links()
	for i, l := range links {
		if err := n.graph.Reserve(l, demand); err != nil {
			for _, undo := range links[:i] {
				n.mustRelease(undo, demand)
			}
			return err
		}
	}
	return nil
}

// releaseAll releases demand on every link of path.
func (n *Network) releaseAll(path routing.Path, demand topology.Bandwidth) {
	for _, l := range path.Links() {
		n.mustRelease(l, demand)
	}
}

// mustRelease releases bandwidth that is known to be reserved; failure
// indicates ledger corruption and panics rather than limping on.
func (n *Network) mustRelease(l topology.LinkID, demand topology.Bandwidth) {
	if err := n.graph.Release(l, demand); err != nil {
		panic(fmt.Sprintf("netstate: bandwidth ledger corrupt: %v", err))
	}
}
