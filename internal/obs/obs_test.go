package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONLSinkDeterministicBytes(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		tr := NewTracer(s, nil)
		tr.RunStart(0, "lmtf(a=4)", 3)
		tr.EventArrival(0, ArrivalRecord{Event: 1, Kind: "vm", Flows: 4, QueueDepth: 1})
		tr.Round(1000, &RoundRecord{
			Round: 1, QueueDepth: 1, Head: 1, DecisionEvals: 7,
			Candidates: []ProbeOutcome{{Event: 1, CostBps: 42, Evals: 7, Admittable: 4}},
			Claims:     []LaneClaim{{Event: 1, Flows: 4, CostBps: 42, CompletionVT: 2000}},
			EndVT:      2000,
		})
		tr.EventComplete(2000, SpanRecord{Event: 1, Round: 1, CompletionVT: 2000, ECTNs: 2000, Flows: 4})
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical emissions produced different bytes:\n%s\nvs\n%s", a, b)
	}
	lines := bytes.Split(bytes.TrimSpace(a), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for _, line := range lines {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if r.Kind == "" {
			t.Fatalf("line %q: empty kind", line)
		}
	}
}

func TestRingSinkEvictsOldest(t *testing.T) {
	s := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		s.Emit(&Record{Kind: KindArrival, VT: int64(i)})
	}
	if s.Total() != 5 {
		t.Fatalf("Total = %d, want 5", s.Total())
	}
	got := s.Last(0)
	if len(got) != 3 {
		t.Fatalf("Last(0) returned %d records, want 3", len(got))
	}
	for i, r := range got {
		if want := int64(i + 3); r.VT != want {
			t.Errorf("record %d: VT = %d, want %d", i, r.VT, want)
		}
	}
	if got := s.Last(2); len(got) != 2 || got[0].VT != 4 || got[1].VT != 5 {
		t.Errorf("Last(2) = %+v, want VT 4,5", got)
	}
	if got := s.Last(10); len(got) != 3 {
		t.Errorf("Last(10) returned %d records, want 3", len(got))
	}
}

func TestRingSinkPartial(t *testing.T) {
	s := NewRingSink(8)
	s.Emit(&Record{VT: 1})
	s.Emit(&Record{VT: 2})
	got := s.Last(0)
	if len(got) != 2 || got[0].VT != 1 || got[1].VT != 2 {
		t.Fatalf("Last(0) = %+v, want VT 1,2", got)
	}
}

func TestNilTracerAndNilSink(t *testing.T) {
	// A tracer over a NilSink must accept every hook without panicking.
	tr := NewTracer(NilSink{}, nil)
	tr.RunStart(0, "fifo", 0)
	tr.EventArrival(0, ArrivalRecord{})
	tr.Round(0, &RoundRecord{})
	tr.EventComplete(0, SpanRecord{})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "test", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 5+10+11+100+5000 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`h_bucket{le="10"} 2`,   // 5 and 10
		`h_bucket{le="100"} 4`,  // + 11, 100
		`h_bucket{le="1000"} 4`, // nothing in (100, 1000]
		`h_bucket{le="+Inf"} 5`, // + 5000
		"h_sum 5126",
		"h_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestDistributionUpdateReplaces(t *testing.T) {
	r := NewRegistry()
	d := r.NewDistribution("u", "test", []float64{0.5, 1.0})
	d.Update([]float64{0.1, 0.5, 0.9, 1.5})
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	for _, want := range []string{
		`u_bucket{le="0.5"} 2`,
		`u_bucket{le="1"} 3`,
		`u_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q:\n%s", want, buf.String())
		}
	}
	// A second Update replaces, not accumulates.
	d.Update([]float64{0.2})
	buf.Reset()
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `u_bucket{le="+Inf"} 1`) {
		t.Errorf("update did not replace distribution:\n%s", buf.String())
	}
}

func TestDurationHistogramCoversHours(t *testing.T) {
	r := NewRegistry()
	h := r.NewDurationHistogram("d_ns", "test")
	h.Observe(int64(30 * time.Minute))
	var buf bytes.Buffer
	h.writeProm(&buf)
	// 30min must land in a finite bucket, not +Inf only.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	finite := false
	for _, l := range lines {
		if strings.Contains(l, "le=\"+Inf\"") || !strings.Contains(l, "_bucket") {
			continue
		}
		if strings.HasSuffix(l, " 1") {
			finite = true
		}
	}
	if !finite {
		t.Errorf("30min observation fell through every finite bucket:\n%s", buf.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("x", "second")
}

func TestSimMetricsAndHandler(t *testing.T) {
	reg := NewRegistry()
	m := NewSimMetrics(reg)
	m.QueueDepth.Set(7)
	m.SetProbeStats(3, 1)
	m.ECT.Observe(int64(2 * time.Millisecond))
	m.LinkUtil.Update([]float64{0.3, 0.8})
	m.Utilization.Set(0.55)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	for path, wants := range map[string][]string{
		"/metrics": {
			"netupdate_queue_depth 7",
			"netupdate_probe_hit_rate 0.75",
			"netupdate_ect_ns_count 1",
			"netupdate_link_utilization_bucket",
			"netupdate_utilization 0.55",
		},
		"/debug/vars":   {"netupdate_queue_depth"},
		"/debug/pprof/": {"profiles"},
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		for _, want := range wants {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("GET %s missing %q", path, want)
			}
		}
	}
}

func TestMetricsConcurrency(t *testing.T) {
	reg := NewRegistry()
	m := NewSimMetrics(reg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Rounds.Inc()
				m.QueueDepth.Set(int64(i))
				m.ECT.Observe(int64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if m.Rounds.Value() != 4000 {
		t.Fatalf("Rounds = %d, want 4000", m.Rounds.Value())
	}
	if m.ECT.Count() != 4000 {
		t.Fatalf("ECT count = %d, want 4000", m.ECT.Count())
	}
}
