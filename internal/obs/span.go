package obs

import "time"

// This file is the stage-level latency span pipeline: a wire-propagated
// SpanContext opened at client submit, per-stage StageRecords emitted on
// a dedicated span channel, and the SpanRecorder that turns stage
// transitions into records and latency histograms.
//
// Determinism contract: stage records carry wall-clock stamps, so they
// are explicitly NON-deterministic and must never be emitted into a
// virtual-clock trace sink. The SpanRecorder enforces the split by
// owning its own sink; the engine's Tracer never sees a stage record.

// SpanContext is the trace context a submitter attaches to a request.
// Event IDs are assigned server-side, so the wire context carries only
// the submitter's identity and its wall clock at submit; the server
// completes the trace identity as TraceID(eventID, origin) once the
// event is admitted. The zero value means "no context" (local submit or
// a peer that does not speak spans).
type SpanContext struct {
	// Origin is a 16-bit submitter identity (loadgen worker, shard,
	// gateway...), chosen by the client.
	Origin uint16 `json:"origin,omitempty"`
	// SubmitWallNs is the client wall clock at submit, Unix nanoseconds.
	SubmitWallNs int64 `json:"submit_wall_ns,omitempty"`
}

// TraceID composes the canonical trace identity: event ID in the high
// 48 bits, origin in the low 16.
func TraceID(event int64, origin uint16) uint64 {
	return uint64(event)<<16 | uint64(origin)
}

// Span pipeline stage names, in lifecycle order.
const (
	// StageSubmit is the client-side submit stamp (wire context only).
	StageSubmit = "submit"
	// StageIngest is the server decoding the request off the wire.
	StageIngest = "ingest"
	// StageAdmit is the event entering the update queue.
	StageAdmit = "admit"
	// StageWALCommit is the event's WAL record made durable.
	StageWALCommit = "wal_commit"
	// StageProbed marks a scheduling round that cost-probed the event.
	StageProbed = "probed"
	// StageExec is the event starting execution (planning + migration +
	// rule install) as a round lane.
	StageExec = "exec"
	// StageComplete closes the span at event completion.
	StageComplete = "complete"
)

// StageRecord is one stage transition of an event's latency span. WallNs
// and the derived durations are wall-clock and non-deterministic; VT on
// the enclosing Record carries the matching virtual-clock stamp.
type StageRecord struct {
	TraceID uint64 `json:"trace_id"`
	Event   int64  `json:"event"`
	Origin  uint16 `json:"origin,omitempty"`
	Stage   string `json:"stage"`
	// Round is the scheduling round for probed/exec/complete stages.
	Round int64 `json:"round,omitempty"`
	// WallNs is the wall clock at the transition, Unix nanoseconds.
	WallNs int64 `json:"wall_ns,omitempty"`
	// SinceNs is the wall time elapsed since the previous stage of this
	// span (0 when unknown).
	SinceNs int64 `json:"since_ns,omitempty"`
	// Completion-only summary: the overload breakdown (QueueNs =
	// admit → exec, RoundsNs = exec → complete) and the end-to-end
	// latency (E2ENs = submit-or-ingest → complete), plus the outcome.
	QueueNs    int64 `json:"queue_ns,omitempty"`
	RoundsNs   int64 `json:"rounds_ns,omitempty"`
	E2ENs      int64 `json:"e2e_ns,omitempty"`
	Probes     int   `json:"probes,omitempty"`
	Flows      int   `json:"flows,omitempty"`
	Failed     int   `json:"failed,omitempty"`
	Retries    int   `json:"retries,omitempty"`
	RolledBack bool  `json:"rolled_back,omitempty"`
}

// openSpan is the recorder's per-event bookkeeping between stages.
type openSpan struct {
	origin     uint16
	submitWall int64 // client stamp from the wire context; 0 if none
	ingestWall int64
	admitWall  int64
	execWall   int64
	lastWall   int64
	probes     int
}

// SpanRecorder turns stage transitions into StageRecords on a span sink
// and wall-clock latency histograms. Like the engine it instruments, it
// is confined to the state-owner goroutine: every method except
// construction must be called from the goroutine driving the engine.
// Both sink and metrics may be nil (nil sink: histograms only).
type SpanRecorder struct {
	sink Sink
	met  *LatencyMetrics
	open map[int64]*openSpan
}

// NewSpanRecorder returns a recorder emitting stage records to sink
// (nil = metrics only) and observing latency histograms on met (nil =
// records only).
func NewSpanRecorder(sink Sink, met *LatencyMetrics) *SpanRecorder {
	return &SpanRecorder{sink: sink, met: met, open: make(map[int64]*openSpan)}
}

// Sink returns the recorder's span sink (possibly nil).
func (r *SpanRecorder) Sink() Sink { return r.sink }

func (r *SpanRecorder) emit(vt int64, s *StageRecord) {
	if r.sink != nil {
		r.sink.Emit(&Record{Kind: KindStage, VT: vt, Stage: s})
	}
}

// now is the recorder's wall clock, swappable in tests.
var spanNow = func() int64 { return time.Now().UnixNano() }

// get returns the open span for event, lazily opening one for events
// the recorder never saw submitted (repair events minted by fault
// recovery, events re-admitted by WAL replay). Lazy spans have no
// submit/ingest/admit stamps and contribute only to the stages they
// were seen in.
func (r *SpanRecorder) get(event int64) *openSpan {
	sp := r.open[event]
	if sp == nil {
		sp = &openSpan{}
		r.open[event] = sp
	}
	return sp
}

// Opened starts an event's span at ingest: sc is the wire context (zero
// value when the submitter sent none) and ingestWall the server wall
// clock at request decode. Emits the submit stage (when the wire
// carried a stamp) and the ingest stage.
func (r *SpanRecorder) Opened(event int64, sc SpanContext, ingestWall, vt int64) {
	sp := &openSpan{origin: sc.Origin, submitWall: sc.SubmitWallNs, ingestWall: ingestWall, lastWall: ingestWall}
	r.open[event] = sp
	tid := TraceID(event, sc.Origin)
	var since int64
	if sc.SubmitWallNs > 0 {
		r.emit(vt, &StageRecord{TraceID: tid, Event: event, Origin: sc.Origin, Stage: StageSubmit, WallNs: sc.SubmitWallNs})
		if d := ingestWall - sc.SubmitWallNs; d >= 0 {
			since = d
			if r.met != nil {
				r.met.Ingest.Observe(d)
			}
		}
	}
	r.emit(vt, &StageRecord{TraceID: tid, Event: event, Origin: sp.origin, Stage: StageIngest, WallNs: ingestWall, SinceNs: since})
}

// Admitted records the event entering the update queue.
func (r *SpanRecorder) Admitted(event, wall, vt int64) {
	sp := r.get(event)
	sp.admitWall = wall
	var since int64
	if sp.ingestWall > 0 {
		since = wall - sp.ingestWall
		if r.met != nil && since >= 0 {
			r.met.Admit.Observe(since)
		}
	}
	sp.lastWall = wall
	r.emit(vt, &StageRecord{TraceID: TraceID(event, sp.origin), Event: event, Origin: sp.origin,
		Stage: StageAdmit, WallNs: wall, SinceNs: since})
}

// WALCommitted records the event's log record becoming durable.
func (r *SpanRecorder) WALCommitted(event, wall, vt int64) {
	sp := r.get(event)
	var since int64
	if sp.admitWall > 0 {
		since = wall - sp.admitWall
		if r.met != nil && since >= 0 {
			r.met.WALCommit.Observe(since)
		}
	}
	sp.lastWall = wall
	r.emit(vt, &StageRecord{TraceID: TraceID(event, sp.origin), Event: event, Origin: sp.origin,
		Stage: StageWALCommit, WallNs: wall, SinceNs: since})
}

// Probed records a scheduling round cost-probing the event. Skipped
// entirely without a sink — probes feed no histogram.
func (r *SpanRecorder) Probed(event, round, vt int64) {
	sp := r.open[event]
	if sp != nil {
		sp.probes++
	}
	if r.sink == nil {
		return
	}
	var origin uint16
	if sp != nil {
		origin = sp.origin
	}
	r.emit(vt, &StageRecord{TraceID: TraceID(event, origin), Event: event, Origin: origin,
		Stage: StageProbed, Round: round, WallNs: spanNow()})
}

// ExecStart records the event starting execution as a round lane.
func (r *SpanRecorder) ExecStart(event, round, vt int64) {
	sp := r.get(event)
	wall := spanNow()
	sp.execWall = wall
	var since int64
	if sp.lastWall > 0 {
		since = wall - sp.lastWall
	}
	sp.lastWall = wall
	r.emit(vt, &StageRecord{TraceID: TraceID(event, sp.origin), Event: event, Origin: sp.origin,
		Stage: StageExec, Round: round, WallNs: wall, SinceNs: since})
	if r.met != nil && sp.admitWall > 0 {
		if d := wall - sp.admitWall; d >= 0 {
			r.met.Queue.Observe(d)
		}
	}
}

// Completed closes the event's span, emitting the completion stage with
// the end-to-end waterfall summary and feeding the e2e/rounds
// histograms.
func (r *SpanRecorder) Completed(event, round, vt int64, flows, failed, retries int, rolledBack bool) {
	sp := r.get(event)
	wall := spanNow()
	st := &StageRecord{
		TraceID: TraceID(event, sp.origin), Event: event, Origin: sp.origin,
		Stage: StageComplete, Round: round, WallNs: wall,
		Probes: sp.probes, Flows: flows, Failed: failed, Retries: retries, RolledBack: rolledBack,
	}
	if sp.lastWall > 0 {
		st.SinceNs = wall - sp.lastWall
	}
	if sp.execWall > 0 {
		st.RoundsNs = wall - sp.execWall
		if r.met != nil && st.RoundsNs >= 0 {
			r.met.Rounds.Observe(st.RoundsNs)
		}
	}
	if sp.admitWall > 0 {
		if sp.execWall > 0 {
			st.QueueNs = sp.execWall - sp.admitWall
		}
	}
	// End-to-end from the earliest stamp the span has: client submit
	// when the wire carried one, server ingest otherwise.
	start := sp.submitWall
	if start == 0 {
		start = sp.ingestWall
	}
	if start > 0 {
		st.E2ENs = wall - start
		if r.met != nil && st.E2ENs >= 0 {
			r.met.E2E.Observe(st.E2ENs)
		}
	}
	r.emit(vt, st)
	delete(r.open, event)
}

// OpenSpans returns the number of spans opened but not yet completed.
func (r *SpanRecorder) OpenSpans() int { return len(r.open) }

// Flush flushes the span sink, if any.
func (r *SpanRecorder) Flush() error {
	if r.sink != nil {
		return r.sink.Flush()
	}
	return nil
}
