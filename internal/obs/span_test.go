package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// Regression: percentiles used to report the bucket's upper bound even
// when the bucket is orders of magnitude wider than the largest sample.
// The top percentile must snap to the observed max.
func TestHistogramPercentileSnapsToMax(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_wide", "wide-bucket test", []int64{1000, 1 << 40})
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	// 1500 lands in the (1000, 2^40] bucket; the naive bucket upper
	// bound would report 2^40 ≈ 18 minutes for a 1.5µs sample.
	if got := h.Percentile(99); got != 1500 {
		t.Fatalf("p99 = %d, want observed max 1500", got)
	}
	if got := h.Percentile(50); got != 1500 {
		t.Fatalf("p50 = %d, want observed max 1500", got)
	}

	// A sample past every bound lands in +Inf; percentile must still be
	// finite (the max), not an overflow sentinel.
	h.Observe(1 << 50)
	if got := h.Percentile(100); got != 1<<50 {
		t.Fatalf("p100 = %d, want %d", got, int64(1<<50))
	}
}

func TestHistogramPercentileEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.NewDurationHistogram("t_edge", "edge cases")
	if got := h.Percentile(99); got != 0 {
		t.Fatalf("empty histogram p99 = %d, want 0", got)
	}
	h.Observe(int64(5 * time.Millisecond))
	if got := h.Percentile(0); got != 0 {
		t.Fatalf("p<=0 = %d, want 0 (repo percentile contract)", got)
	}
	if got := h.Percentile(200); got != int64(5*time.Millisecond) {
		t.Fatalf("p>100 clamps to max: got %d", got)
	}
	// Lower percentiles still use bucket bounds when samples spread.
	for i := 0; i < 99; i++ {
		h.Observe(int64(time.Microsecond))
	}
	if got := h.Percentile(50); got != int64(time.Microsecond) {
		t.Fatalf("p50 = %d, want %d", got, int64(time.Microsecond))
	}
}

func TestHistogramStateCarriesMax(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_state_max", "state", []int64{1000, 1 << 40})
	h.Observe(2500)
	st := h.State()
	if st.Max != 2500 {
		t.Fatalf("state max = %d, want 2500", st.Max)
	}
	r2 := NewRegistry()
	h2 := r2.NewHistogram("t_state_max", "state", []int64{1000, 1 << 40})
	h2.Restore(st)
	if got := h2.Percentile(99); got != 2500 {
		t.Fatalf("restored p99 = %d, want 2500", got)
	}
}

// blockingSink blocks every Emit until released, to prove AsyncSink
// never propagates inner-sink stalls to the emitter.
type blockingSink struct {
	release chan struct{}
	got     chan Record
}

func (b *blockingSink) Emit(r *Record) {
	b.got <- *r
	<-b.release
}
func (b *blockingSink) Flush() error { return nil }

func TestAsyncSinkOverflowDropsInsteadOfBlocking(t *testing.T) {
	inner := &blockingSink{release: make(chan struct{}), got: make(chan Record, 64)}
	r := NewRegistry()
	dropped := r.NewCounter("obs_spans_dropped_total", "test")
	s := NewAsyncSink(inner, 4, dropped)

	// First record is picked up by the drainer and stalls inside the
	// inner sink; the next 4 fill the ring; everything after drops.
	s.Emit(&Record{Kind: KindStage, VT: 0, Stage: &StageRecord{Event: 0, Stage: StageAdmit}})
	<-inner.got // drainer is provably stuck inside Emit #0, ring empty
	for i := 1; i < 10; i++ {
		done := make(chan struct{})
		go func(i int) {
			s.Emit(&Record{Kind: KindStage, VT: int64(i), Stage: &StageRecord{Event: int64(i), Stage: StageAdmit}})
			close(done)
		}(i)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("Emit %d blocked on a stalled inner sink", i)
		}
	}
	if got := s.Dropped(); got != 5 {
		t.Fatalf("dropped = %d, want 5 (1 in-flight + 4 buffered of 10)", got)
	}
	if got := dropped.Value(); got != 5 {
		t.Fatalf("obs_spans_dropped_total = %d, want 5", got)
	}

	// Release the inner sink: the buffered 4 must still arrive, then
	// Close flushes cleanly.
	go func() {
		for i := 0; i < 10; i++ {
			inner.release <- struct{}{}
		}
	}()
	seen := 1
	for seen < 5 {
		select {
		case <-inner.got:
			seen++
		case <-time.After(2 * time.Second):
			t.Fatalf("drainer delivered %d records, want 5", seen)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAsyncSinkDrainsInOrder(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	inner := NewJSONLSink(&lockedWriter{mu: &mu, w: &buf})
	s := NewAsyncSink(inner, 128, nil)
	for i := 0; i < 100; i++ {
		s.Emit(&Record{Kind: KindStage, VT: int64(i), Stage: &StageRecord{Event: int64(i), Stage: StageAdmit}})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	mu.Lock()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	mu.Unlock()
	if len(lines) != 100 {
		t.Fatalf("got %d records, want 100", len(lines))
	}
	for i, ln := range lines {
		var rec Record
		if err := json.Unmarshal(ln, &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Stage == nil || rec.Stage.Event != int64(i) {
			t.Fatalf("line %d out of order: %s", i, ln)
		}
	}
	if s.Dropped() != 0 {
		t.Fatalf("unexpected drops: %d", s.Dropped())
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestSpanRecorderWaterfall(t *testing.T) {
	// Deterministic wall clock for the test.
	old := spanNow
	var wall int64 = 1000
	spanNow = func() int64 { wall += 1000; return wall }
	defer func() { spanNow = old }()

	ring := NewRingSink(64)
	reg := NewRegistry()
	met := NewLatencyMetrics(reg)
	rec := NewSpanRecorder(ring, met)

	rec.Opened(7, SpanContext{Origin: 3, SubmitWallNs: 500}, 1000, 10)
	rec.Admitted(7, 2000, 10)
	rec.WALCommitted(7, 3000, 10)
	rec.Probed(7, 1, 20)
	rec.Probed(7, 2, 30)
	rec.ExecStart(7, 2, 30)
	rec.Completed(7, 2, 40, 5, 1, 2, false)

	if rec.OpenSpans() != 0 {
		t.Fatalf("span not closed: %d open", rec.OpenSpans())
	}
	recs := ring.Last(0)
	var stages []string
	for _, r := range recs {
		if r.Kind != KindStage || r.Stage == nil {
			t.Fatalf("non-stage record on span channel: %+v", r)
		}
		stages = append(stages, r.Stage.Stage)
	}
	want := []string{StageSubmit, StageIngest, StageAdmit, StageWALCommit, StageProbed, StageProbed, StageExec, StageComplete}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage[%d] = %s, want %s", i, stages[i], want[i])
		}
	}

	last := recs[len(recs)-1].Stage
	if last.TraceID != TraceID(7, 3) {
		t.Fatalf("trace id = %d, want %d", last.TraceID, TraceID(7, 3))
	}
	if last.Probes != 2 || last.Flows != 5 || last.Failed != 1 || last.Retries != 2 {
		t.Fatalf("completion summary wrong: %+v", last)
	}
	// exec wall is the first spanNow() after WallNs-stamped stages; the
	// breakdown and e2e must be internally consistent.
	if last.QueueNs != last.WallNs-last.RoundsNs-2000 {
		t.Fatalf("queue/rounds breakdown inconsistent: %+v", last)
	}
	if last.E2ENs != last.WallNs-500 {
		t.Fatalf("e2e = %d, want wall-submit=%d", last.E2ENs, last.WallNs-500)
	}
	if met.E2E.Count() != 1 || met.Queue.Count() != 1 || met.Rounds.Count() != 1 {
		t.Fatalf("histograms not fed: e2e=%d queue=%d rounds=%d", met.E2E.Count(), met.Queue.Count(), met.Rounds.Count())
	}
	if met.Ingest.Count() != 1 || met.Admit.Count() != 1 || met.WALCommit.Count() != 1 {
		t.Fatalf("stage histograms not fed")
	}
}

// Lazily opened spans (repair events, WAL-replayed events) must not
// fabricate ingest/e2e samples they have no submit stamp for.
func TestSpanRecorderLazyOpen(t *testing.T) {
	old := spanNow
	var wall int64
	spanNow = func() int64 { wall += 1000; return wall }
	defer func() { spanNow = old }()

	ring := NewRingSink(16)
	reg := NewRegistry()
	met := NewLatencyMetrics(reg)
	rec := NewSpanRecorder(ring, met)

	rec.ExecStart(99, 4, 100)
	rec.Completed(99, 4, 200, 2, 0, 0, false)

	if met.E2E.Count() != 0 || met.Queue.Count() != 0 || met.Ingest.Count() != 0 {
		t.Fatalf("lazy span fed start-dependent histograms")
	}
	if met.Rounds.Count() != 1 {
		t.Fatalf("rounds histogram not fed for lazy span")
	}
	recs := ring.Last(0)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want exec+complete", len(recs))
	}
	if c := recs[1].Stage; c.E2ENs != 0 || c.QueueNs != 0 || c.RoundsNs == 0 {
		t.Fatalf("lazy completion summary wrong: %+v", c)
	}
}

func TestTraceIDComposition(t *testing.T) {
	if TraceID(1, 0) != 1<<16 {
		t.Fatalf("TraceID(1,0) = %d", TraceID(1, 0))
	}
	if TraceID(0x123456, 0xBEEF) != 0x123456<<16|0xBEEF {
		t.Fatalf("TraceID composition wrong")
	}
}
