package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// metric is anything a Registry can expose: it renders itself in
// Prometheus text format and as a plain value for expvar.
type metric interface {
	metricName() string
	writeProm(w io.Writer)
	snapshot() any
}

// Registry holds named metrics and renders them for scraping. All value
// updates are lock-free atomics; the registry lock only guards the metric
// list itself (registration vs. scrape).
type Registry struct {
	mu sync.Mutex
	ms []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.ms {
		if existing.metricName() == m.metricName() {
			panic(fmt.Sprintf("obs: duplicate metric %q", m.metricName()))
		}
	}
	r.ms = append(r.ms, m)
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (metrics sorted by name).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := make([]metric, len(r.ms))
	copy(ms, r.ms)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].metricName() < ms[j].metricName() })
	for _, m := range ms {
		m.writeProm(w)
	}
}

// Snapshot returns a name → value map of every metric (histograms and
// distributions snapshot to nested maps), for expvar publication.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	ms := make([]metric, len(r.ms))
	copy(ms, r.ms)
	r.mu.Unlock()
	out := make(map[string]any, len(ms))
	for _, m := range ms {
		out[m.metricName()] = m.snapshot()
	}
	return out
}

// Counter is a monotonically increasing integer metric, safe for
// concurrent use.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) snapshot() any      { return c.Value() }
func (c *Counter) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Value())
}

// Gauge is a settable instantaneous integer value, safe for concurrent
// use.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative), for gauges tracking a level
// such as open connections.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) snapshot() any      { return g.Value() }
func (g *Gauge) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.Value())
}

// FloatGauge is a settable instantaneous float64 value (stored as raw
// bits), safe for concurrent use.
type FloatGauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewFloatGauge registers and returns a float gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FloatGauge) metricName() string { return g.name }
func (g *FloatGauge) snapshot() any      { return g.Value() }
func (g *FloatGauge) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		g.name, g.help, g.name, g.name, formatFloat(g.Value()))
}

// Histogram is a log-bucketed cumulative histogram of int64 observations
// (typically durations in nanoseconds), safe for concurrent use. Bucket
// upper bounds double from a configurable start, so a handful of buckets
// cover many orders of magnitude.
type Histogram struct {
	name, help string
	bounds     []int64 // ascending upper bounds; implicit +Inf bucket after
	counts     []atomic.Int64
	sum        atomic.Int64
	count      atomic.Int64
	// max tracks the largest observation so Percentile can snap to it
	// instead of reporting a wide bucket's upper bound (or +Inf).
	max atomic.Int64
}

// NewDurationHistogram registers a histogram with 32 power-of-two
// nanosecond buckets from 1µs (~covering 1µs to over an hour), suitable
// for ECT and queuing-delay observations.
func (r *Registry) NewDurationHistogram(name, help string) *Histogram {
	bounds := make([]int64, 32)
	b := int64(time.Microsecond)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return r.NewHistogram(name, help, bounds)
}

// NewHistogram registers a histogram with the given ascending upper
// bounds (an implicit +Inf bucket is appended).
func (r *Registry) NewHistogram(name, help string, bounds []int64) *Histogram {
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Percentile estimates the p-th percentile (0 < p <= 100) by
// nearest-rank over the cumulative bucket counts, reporting the upper
// bound of the bucket the rank falls in. Because log buckets double,
// that upper bound can sit far past the largest sample actually
// observed — so any estimate above the tracked maximum snaps to the
// maximum, which also gives the +Inf bucket a finite answer. Returns 0
// when the histogram is empty or p <= 0 (matching the repo-wide
// percentile contract).
func (h *Histogram) Percentile(p float64) int64 {
	total := h.count.Load()
	if total == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(total)))
	var cum int64
	var v int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				v = h.bounds[i]
			} else {
				v = h.max.Load()
			}
			break
		}
	}
	// Snap to the observed max (when known: histograms restored from
	// pre-max checkpoints carry max == 0 and keep the bucket bound).
	if m := h.max.Load(); m > 0 && v > m {
		v = m
	}
	return v
}

// HistogramState is a serializable snapshot of a histogram's raw
// per-bucket counts (not cumulative), used by checkpoint/recovery to
// carry observation streams across a restart.
type HistogramState struct {
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
	Max    int64   `json:"max,omitempty"`
}

// State captures the histogram for checkpointing.
func (h *Histogram) State() HistogramState {
	st := HistogramState{Counts: make([]int64, len(h.counts)), Sum: h.Sum(), Count: h.Count(), Max: h.max.Load()}
	for i := range h.counts {
		st.Counts[i] = h.counts[i].Load()
	}
	return st
}

// Restore adds a checkpointed state into the histogram. It is meant for
// a freshly registered histogram during recovery; bucket layouts must
// match (extra or missing buckets are ignored rather than guessed at).
func (h *Histogram) Restore(st HistogramState) {
	for i, c := range st.Counts {
		if i < len(h.counts) {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(st.Sum)
	h.count.Add(st.Count)
	for {
		m := h.max.Load()
		if st.Max <= m || h.max.CompareAndSwap(m, st.Max) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) snapshot() any {
	buckets := make(map[string]int64, len(h.bounds)+1)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		buckets["le_"+strconv.FormatInt(b, 10)] = cum
	}
	cum += h.counts[len(h.bounds)].Load()
	buckets["le_inf"] = cum
	return map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
}

func (h *Histogram) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.name, b, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.Count())
}

// Distribution is a refreshable snapshot histogram of float64 samples:
// each Update replaces the whole distribution. Unlike Histogram it
// describes current state (e.g. the link-utilization distribution right
// now), not a stream of observations. Readers may observe a torn update
// across buckets; each bucket value is individually consistent, which is
// all a monitoring scrape needs.
type Distribution struct {
	name, help string
	bounds     []float64 // ascending upper bounds; implicit +Inf after
	counts     []atomic.Int64
	scratch    []int64 // Update-side accumulation; single updater only
}

// NewDistribution registers a distribution with the given ascending
// upper bounds.
func (r *Registry) NewDistribution(name, help string, bounds []float64) *Distribution {
	d := &Distribution{
		name:    name,
		help:    help,
		bounds:  append([]float64(nil), bounds...),
		counts:  make([]atomic.Int64, len(bounds)+1),
		scratch: make([]int64, len(bounds)+1),
	}
	r.register(d)
	return d
}

// Update recomputes the distribution from samples. Only one goroutine
// may call Update (readers are unrestricted).
func (d *Distribution) Update(samples []float64) {
	for i := range d.scratch {
		d.scratch[i] = 0
	}
	for _, v := range samples {
		i := sort.SearchFloat64s(d.bounds, v)
		// SearchFloat64s finds the first bound >= v, which is the
		// (v <= bound) bucket except when v exceeds every bound.
		d.scratch[i]++
	}
	for i := range d.counts {
		d.counts[i].Store(d.scratch[i])
	}
}

func (d *Distribution) metricName() string { return d.name }

func (d *Distribution) snapshot() any {
	buckets := make(map[string]int64, len(d.bounds)+1)
	var cum int64
	for i, b := range d.bounds {
		cum += d.counts[i].Load()
		buckets["le_"+formatFloat(b)] = cum
	}
	cum += d.counts[len(d.bounds)].Load()
	buckets["le_inf"] = cum
	return buckets
}

func (d *Distribution) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", d.name, d.help, d.name)
	var cum int64
	for i, b := range d.bounds {
		cum += d.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", d.name, formatFloat(b), cum)
	}
	cum += d.counts[len(d.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", d.name, cum)
}

// formatFloat renders floats compactly ("0.6", not "0.600000").
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// SimMetrics is the live metric set the engine maintains: queue depth,
// virtual clock, utilization, round/event counters, probe-cache
// effectiveness, the ECT and queuing-delay histograms, and the current
// link-utilization distribution.
type SimMetrics struct {
	QueueDepth   *Gauge
	VirtualClock *Gauge
	Utilization  *FloatGauge

	Rounds        *Counter
	EventsDone    *Counter
	FlowsAdmitted *Counter
	FlowsFailed   *Counter

	ProbeHits    *Gauge
	ProbeMisses  *Gauge
	ProbeHitRate *FloatGauge
	// ProbeCold and ProbeIncremental split the misses: full trial-plans
	// of never-cached events vs. re-plans of invalidated entries. A
	// steady-state round on an unchanged queue moves neither.
	ProbeCold        *Gauge
	ProbeIncremental *Gauge
	// ProbeDirtyLinks observes the distinct dirty-link count of each
	// journal batch the probe engine consumes (one sample per epoch-bump
	// group processed).
	ProbeDirtyLinks *Histogram

	ECT          *Histogram
	QueuingDelay *Histogram
	LinkUtil     *Distribution

	FaultsInjected   *Counter
	LinksDown        *Gauge
	RepairEvents     *Counter
	FlowsDisrupted   *Counter
	InstallRetries   *Counter
	InstallRollbacks *Counter
}

// NewSimMetrics registers the full engine metric set under the
// "netupdate_" prefix.
func NewSimMetrics(r *Registry) *SimMetrics {
	utilBounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Power-of-two dirty-set buckets 1..4096: one committed event dirties
	// a handful of links, a fault cascade dirties hundreds.
	dirtyBounds := make([]int64, 13)
	db := int64(1)
	for i := range dirtyBounds {
		dirtyBounds[i] = db
		db *= 2
	}
	return &SimMetrics{
		QueueDepth:   r.NewGauge("netupdate_queue_depth", "Events waiting in the update queue."),
		VirtualClock: r.NewGauge("netupdate_virtual_clock_ns", "Simulation virtual clock in nanoseconds."),
		Utilization:  r.NewFloatGauge("netupdate_utilization", "Overall link utilization of the fabric."),

		Rounds:        r.NewCounter("netupdate_rounds_total", "Scheduling rounds executed."),
		EventsDone:    r.NewCounter("netupdate_events_done_total", "Update events completed."),
		FlowsAdmitted: r.NewCounter("netupdate_flows_admitted_total", "Event flows admitted."),
		FlowsFailed:   r.NewCounter("netupdate_flows_failed_total", "Event flow specs that could not be admitted."),

		ProbeHits:        r.NewGauge("netupdate_probe_cache_hits", "Cost probes answered from the epoch cache (run total)."),
		ProbeMisses:      r.NewGauge("netupdate_probe_cache_misses", "Cost probes freshly planned (run total)."),
		ProbeHitRate:     r.NewFloatGauge("netupdate_probe_hit_rate", "Probe cache hit rate, 0 when no probes ran."),
		ProbeCold:        r.NewGauge("netupdate_probe_cold_plans", "Full trial-plans of never-cached events (run total)."),
		ProbeIncremental: r.NewGauge("netupdate_probe_incremental_replans", "Re-plans of cache entries invalidated by link changes (run total)."),
		ProbeDirtyLinks:  r.NewHistogram("netupdate_probe_dirty_links", "Distinct dirty links per consumed change-journal batch.", dirtyBounds),

		ECT:          r.NewDurationHistogram("netupdate_ect_ns", "Event completion time (completion - arrival), ns."),
		QueuingDelay: r.NewDurationHistogram("netupdate_queuing_delay_ns", "Event queuing delay (start - arrival), ns."),
		LinkUtil:     r.NewDistribution("netupdate_link_utilization", "Current per-link utilization distribution.", utilBounds),

		FaultsInjected:   r.NewCounter("netupdate_faults_injected_total", "Fault injections applied to the run."),
		LinksDown:        r.NewGauge("netupdate_links_down", "Links currently failed."),
		RepairEvents:     r.NewCounter("netupdate_repair_events_total", "Update events minted from link/switch failures."),
		FlowsDisrupted:   r.NewCounter("netupdate_flows_disrupted_total", "Placed flows withdrawn by link/switch failures."),
		InstallRetries:   r.NewCounter("netupdate_install_retries_total", "Rule-install attempts that timed out and were retried."),
		InstallRollbacks: r.NewCounter("netupdate_install_rollbacks_total", "Events rolled back after exhausting the install retry budget."),
	}
}

// IngestMetrics is the live metric set of the daemon's batched ingest
// path: submission outcomes (accepted / rejected-for-overload / accepted
// on a marked retry), the size distribution of admitted batches, and the
// intake bound itself. The queue-depth gauge lives in SimMetrics — the
// engine refreshes it on every arrival and round.
type IngestMetrics struct {
	Accepted  *Counter
	Rejected  *Counter
	Retried   *Counter
	Batches   *Counter
	BatchSize *Histogram
	Watermark *Gauge
	// CodecV2Conns tracks connections currently speaking the binary v2
	// framing; FramesV1/FramesV2 count requests decoded per codec.
	CodecV2Conns *Gauge
	FramesV1     *Counter
	FramesV2     *Counter
}

// NewIngestMetrics registers the ingest metric set under the
// "netupdate_ingest_" prefix.
func NewIngestMetrics(r *Registry) *IngestMetrics {
	// Power-of-two batch-size buckets 1..4096 cover single submits
	// through the largest sane wire batches.
	bounds := make([]int64, 13)
	b := int64(1)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return &IngestMetrics{
		Accepted:  r.NewCounter("netupdate_ingest_accepted_total", "Submitted events admitted into the update queue."),
		Rejected:  r.NewCounter("netupdate_ingest_rejected_total", "Submitted events rejected with an overload response."),
		Retried:   r.NewCounter("netupdate_ingest_retried_total", "Events admitted from requests marked as backoff retries."),
		Batches:   r.NewCounter("netupdate_ingest_batches_total", "Submit requests that admitted at least one event."),
		BatchSize: r.NewHistogram("netupdate_ingest_batch_size", "Events admitted per submit request.", bounds),
		Watermark: r.NewGauge("netupdate_ingest_watermark", "Queue high-watermark past which submissions are rejected."),
		CodecV2Conns: r.NewGauge("netupdate_ingest_codec_v2_conns",
			"Connections currently speaking the binary v2 framing."),
		FramesV1: r.NewCounter("netupdate_ingest_frames_v1_total", "Requests decoded from the JSON v1 codec."),
		FramesV2: r.NewCounter("netupdate_ingest_frames_v2_total", "Requests decoded from the binary v2 codec."),
	}
}

// WALMetrics is the live metric set of the write-ahead log and its
// recovery path: append/commit/fsync activity, checkpoint progress, and
// what the last recovery replayed and how long it took.
type WALMetrics struct {
	Appends *Counter
	Bytes   *Counter
	Commits *Counter
	Syncs   *Counter

	Checkpoints   *Counter
	CheckpointSeq *Gauge
	LastSeq       *Gauge

	Replayed   *Counter
	RecoveryMs *Gauge
}

// NewWALMetrics registers the WAL metric set under the "netupdate_wal_"
// prefix. It is only registered when the daemon runs with a WAL.
func NewWALMetrics(r *Registry) *WALMetrics {
	return &WALMetrics{
		Appends: r.NewCounter("netupdate_wal_appends_total", "Records appended to the write-ahead log."),
		Bytes:   r.NewCounter("netupdate_wal_bytes_total", "Bytes written to the write-ahead log (frames included)."),
		Commits: r.NewCounter("netupdate_wal_commits_total", "Group commits of appended WAL records."),
		Syncs:   r.NewCounter("netupdate_wal_syncs_total", "fsync calls issued by the WAL writer."),

		Checkpoints:   r.NewCounter("netupdate_wal_checkpoints_total", "Checkpoints taken (log truncations)."),
		CheckpointSeq: r.NewGauge("netupdate_wal_checkpoint_seq", "Log sequence covered by the newest checkpoint."),
		LastSeq:       r.NewGauge("netupdate_wal_last_seq", "Sequence number of the last appended WAL record."),

		Replayed:   r.NewCounter("netupdate_wal_replayed_records", "Records replayed from the log during the last recovery."),
		RecoveryMs: r.NewGauge("netupdate_wal_recovery_ms", "Wall-clock milliseconds the last recovery took."),
	}
}

// ReplMetrics is the live metric set of WAL replication: the server's
// role and term, follower registration and lag on the leader, frame
// traffic in both directions, and the promotion path's failover time.
type ReplMetrics struct {
	// Role is 0 on a leader, 1 on a follower, 2 once deposed.
	Role *Gauge
	Term *Gauge

	// Followers/SyncedFollowers count registered replication sessions on
	// the leader; LagRecords is the worst acked-sequence lag across them
	// (on a follower: its own lag behind the leader's heartbeats), with
	// Lag the sampled distribution behind the p99 quantile view.
	Followers       *Gauge
	SyncedFollowers *Gauge
	LagRecords      *Gauge
	Lag             *Histogram
	LagQuantiles    *Quantiles

	// RecordsSent counts WAL records streamed to followers;
	// RecordsApplied records folded by this follower; AcksReceived
	// follower durability acks seen by the leader; FollowerDrops
	// sessions the leader dropped for lagging past the ack timeout or
	// overflowing their outbox.
	RecordsSent    *Counter
	RecordsApplied *Counter
	AcksReceived   *Counter
	HeartbeatsSent *Counter
	FollowerDrops  *Counter

	// Promotions counts role flips to leader; Failover is the drain-to-
	// serving time distribution and FailoverMs the last observed value.
	Promotions *Counter
	Failover   *Histogram
	FailoverMs *Gauge
}

// NewReplMetrics registers the replication metric set under the
// "netupdate_repl_" prefix. It is only registered when the daemon runs
// with a WAL (replication folds the WAL, so there is nothing to
// replicate without one).
func NewReplMetrics(r *Registry) *ReplMetrics {
	// Power-of-two lag buckets 1..65536 records.
	lagBounds := make([]int64, 17)
	lb := int64(1)
	for i := range lagBounds {
		lagBounds[i] = lb
		lb *= 2
	}
	m := &ReplMetrics{
		Role: r.NewGauge("netupdate_repl_role", "Replication role: 0 leader, 1 follower, 2 deposed."),
		Term: r.NewGauge("netupdate_repl_term", "Current replication term."),

		Followers:       r.NewGauge("netupdate_repl_followers", "Replication sessions currently registered on this leader."),
		SyncedFollowers: r.NewGauge("netupdate_repl_synced_followers", "Registered followers that have caught up and gate commits."),
		LagRecords:      r.NewGauge("netupdate_repl_lag_records", "Worst follower lag in WAL records (own lag on a follower)."),
		Lag:             r.NewHistogram("netupdate_repl_lag_records_hist", "Observed replication lag samples, in WAL records.", lagBounds),

		RecordsSent:    r.NewCounter("netupdate_repl_records_sent_total", "WAL records streamed to followers."),
		RecordsApplied: r.NewCounter("netupdate_repl_records_applied_total", "Replicated WAL records folded by this follower."),
		AcksReceived:   r.NewCounter("netupdate_repl_acks_total", "Follower durability acknowledgements received."),
		HeartbeatsSent: r.NewCounter("netupdate_repl_heartbeats_total", "Heartbeat frames sent to followers."),
		FollowerDrops:  r.NewCounter("netupdate_repl_follower_drops_total", "Follower sessions dropped for ack timeout or outbox overflow."),

		Promotions: r.NewCounter("netupdate_repl_promotions_total", "Role flips from follower to leader."),
		Failover:   r.NewDurationHistogram("netupdate_repl_failover_ns", "Promotion drain-to-serving time, ns."),
		FailoverMs: r.NewGauge("netupdate_repl_failover_ms", "Last promotion's drain-to-serving time, ms."),
	}
	m.LagQuantiles = r.NewQuantiles("netupdate_repl_lag_records_q", "Replication lag percentiles, in WAL records.", m.Lag, 50, 99)
	return m
}

// Quantiles renders chosen percentiles of a histogram at scrape time as
// a labelled gauge family (name{q="0.99"} ...). It registers no storage
// of its own — values come from Histogram.Percentile on demand.
type Quantiles struct {
	name, help string
	h          *Histogram
	qs         []float64
}

// NewQuantiles registers a quantile view over h. qs are percentiles in
// (0, 100], e.g. 50, 95, 99, 99.9.
func (r *Registry) NewQuantiles(name, help string, h *Histogram, qs ...float64) *Quantiles {
	q := &Quantiles{name: name, help: help, h: h, qs: append([]float64(nil), qs...)}
	r.register(q)
	return q
}

func (q *Quantiles) metricName() string { return q.name }

func (q *Quantiles) snapshot() any {
	out := make(map[string]int64, len(q.qs))
	for _, p := range q.qs {
		out["p"+formatFloat(p)] = q.h.Percentile(p)
	}
	return out
}

func (q *Quantiles) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", q.name, q.help, q.name)
	for _, p := range q.qs {
		fmt.Fprintf(w, "%s{q=\"%s\"} %d\n", q.name, formatFloat(p/100), q.h.Percentile(p))
	}
}

// LatencyMetrics is the stage-level latency pipeline: wall-clock
// histograms for each hop an event takes from client submit to
// completion, the end-to-end distribution with a scrape-time quantile
// view, the WAL fsync latency, and the span-drop counter of the bounded
// span sink. All values are wall-clock nanoseconds and therefore
// explicitly NON-deterministic — they never enter trace records on the
// virtual-clock channel.
type LatencyMetrics struct {
	// Ingest is client submit → server ingest decode (requires a wire
	// span context; empty otherwise). Admit is ingest decode → queue
	// admission; WALCommit is admission → durable (WAL servers only).
	Ingest    *Histogram
	Admit     *Histogram
	WALCommit *Histogram
	// Queue is admission → execution start (time-in-queue) and Rounds is
	// execution start → completion (time-in-rounds): together they are
	// the overload breakdown that makes watermark backpressure visible.
	Queue  *Histogram
	Rounds *Histogram
	// E2E is the end-to-end latency: client submit (or, without wire
	// context, server ingest) → completion.
	E2E *Histogram
	// WALFsync observes each fsync issued by the WAL writer; under
	// SyncGroup one sample per group commit, under SyncAlways one per
	// append.
	WALFsync *Histogram
	// SpansDropped counts span records dropped by the bounded span sink
	// instead of backpressuring the state loop.
	SpansDropped *Counter
}

// NewLatencyMetrics registers the latency pipeline metric set.
func NewLatencyMetrics(r *Registry) *LatencyMetrics {
	m := &LatencyMetrics{
		Ingest:    r.NewDurationHistogram("netupdate_latency_submit_ingest_ns", "Client submit to server ingest decode, wall ns (requires wire span context)."),
		Admit:     r.NewDurationHistogram("netupdate_latency_ingest_admit_ns", "Server ingest decode to queue admission, wall ns."),
		WALCommit: r.NewDurationHistogram("netupdate_latency_wal_commit_ns", "Queue admission to durable WAL commit, wall ns."),
		Queue:     r.NewDurationHistogram("netupdate_latency_queue_ns", "Queue admission to execution start (time-in-queue), wall ns."),
		Rounds:    r.NewDurationHistogram("netupdate_latency_rounds_ns", "Execution start to completion (time-in-rounds), wall ns."),
		E2E:       r.NewDurationHistogram("netupdate_latency_e2e_ns", "End-to-end event latency (submit or ingest to completion), wall ns."),
		WALFsync:  r.NewDurationHistogram("netupdate_wal_fsync_ns", "WAL fsync duration, wall ns (per group commit under group policy, per append under always)."),
		SpansDropped: r.NewCounter("obs_spans_dropped_total",
			"Span records dropped by the bounded span sink instead of backpressuring the state loop."),
	}
	r.NewQuantiles("netupdate_latency_e2e_quantile_ns",
		"End-to-end event latency percentiles, wall ns.", m.E2E, 50, 95, 99, 99.9)
	return m
}

// SetProbeDetail refreshes the miss-split gauges from run totals.
func (m *SimMetrics) SetProbeDetail(cold, incremental int64) {
	m.ProbeCold.Set(cold)
	m.ProbeIncremental.Set(incremental)
}

// SetProbeStats refreshes the probe-cache gauges from run totals.
func (m *SimMetrics) SetProbeStats(hits, misses int64) {
	m.ProbeHits.Set(hits)
	m.ProbeMisses.Set(misses)
	if total := hits + misses; total > 0 {
		m.ProbeHitRate.Set(float64(hits) / float64(total))
	} else {
		m.ProbeHitRate.Set(0)
	}
}
