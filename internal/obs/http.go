package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvar's process-global map panics on duplicate names, but tests and
// restarts may build several handlers — so the "netupdate" var is
// published once and indirects through a swappable registry pointer
// (the most recent Handler's registry wins).
var (
	expvarPublish sync.Once
	expvarReg     atomic.Pointer[Registry]
)

// Handler serves the telemetry endpoints for a registry:
//
//	/metrics        Prometheus text exposition format
//	/debug/vars     expvar JSON (Go runtime vars + a "netupdate" map)
//	/debug/pprof/   the standard net/http/pprof profile index
//
// The handler only reads atomics and registry snapshots, so it is safe
// to serve from any goroutine while the simulation runs in another.
func Handler(reg *Registry) http.Handler {
	expvarReg.Store(reg)
	expvarPublish.Do(func() {
		expvar.Publish("netupdate", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
