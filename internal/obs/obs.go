// Package obs is the observability layer: structured event-lifecycle
// traces and live metrics for the simulator and the updated daemon.
//
// It has two halves:
//
//   - A trace model (Record and its payloads) stamped exclusively with the
//     simulation's virtual clock: one span per event lifecycle (arrival →
//     queued → probed → planned → installing → complete) and one round
//     record per scheduling decision, carrying the α+1 sampled candidates,
//     each probe's cost/cache-hit/evals, the chosen head, the P-LMTF
//     co-scheduled set and the per-lane resource claims. Records flow
//     through a pluggable Sink (JSONL file, ring buffer, or nothing).
//     Because no wall-clock value ever enters a record, traces from equal
//     seeds are byte-identical and double as determinism fixtures.
//
//   - Live metrics (Counter, Gauge, FloatGauge, Histogram, Distribution in
//     a Registry) updated by the engine each round and scraped lock-free
//     from other goroutines; Handler serves them as Prometheus text,
//     expvar JSON and pprof endpoints.
//
// The whole layer is optional: a nil *Tracer on the engine reduces every
// instrumentation hook to a single nil check.
//
// Package obs depends only on the standard library and on no other
// netupdate package, so every layer of the system can use it.
package obs

// Record kinds.
const (
	// KindRun opens a traced simulation run.
	KindRun = "run"
	// KindArrival marks an event entering the update queue.
	KindArrival = "arrival"
	// KindSpan closes an event lifecycle (emitted at completion).
	KindSpan = "span"
	// KindRound reports one scheduling round.
	KindRound = "round"
	// KindFault marks a fault injection being applied to the run.
	KindFault = "fault"
	// KindStage is a stage transition of the latency span pipeline.
	// Unlike every other kind, stage records carry wall-clock fields and
	// therefore flow ONLY through the separate span channel, never
	// through a virtual-clock trace sink (see span.go).
	KindStage = "stage"
)

// Record is one trace entry. Exactly one payload pointer is non-nil,
// matching Kind. VT is the virtual clock in nanoseconds at emission; no
// trace-channel record ever carries wall-clock time, which is what makes
// traces reproducible byte-for-byte across runs and probe-concurrency
// settings. The single exception is KindStage: its payload carries wall
// clocks by design and is confined to the separate, explicitly
// non-deterministic span channel (SpanRecorder) — it never reaches a
// virtual-clock trace sink.
type Record struct {
	Kind string `json:"k"`
	VT   int64  `json:"vt"`
	// Shard attributes the record to one engine of a sharded deployment
	// (1-based). Engines emit it as zero — per-shard trace streams stay
	// byte-identical to an unsharded run's — and the gateway stamps it
	// when fanning per-shard traces into one aggregate stream.
	Shard int `json:"shard,omitempty"`

	Run     *RunRecord     `json:"run,omitempty"`
	Arrival *ArrivalRecord `json:"arrival,omitempty"`
	Round   *RoundRecord   `json:"round,omitempty"`
	Span    *SpanRecord    `json:"span,omitempty"`
	Fault   *FaultRecord   `json:"fault,omitempty"`
	Stage   *StageRecord   `json:"stage,omitempty"`
}

// RunRecord opens a run: one per Engine.Run with a tracer attached.
type RunRecord struct {
	// Scheduler is the policy name ("lmtf(a=4)", ...).
	Scheduler string `json:"scheduler"`
	// Events is the number of events submitted to the run (0 for
	// incremental/daemon use, where events arrive over time).
	Events int `json:"events"`
}

// ArrivalRecord marks an event entering the update queue.
type ArrivalRecord struct {
	Event int64  `json:"event"`
	Kind  string `json:"kind,omitempty"`
	Flows int    `json:"flows"`
	// QueueDepth is the queue length just after this arrival.
	QueueDepth int `json:"queue_depth"`
}

// ProbeOutcome is one cost probe made while deciding a round: a sampled
// candidate (LMTF/P-LMTF), a full-queue scan entry (Reorder), or an
// opportunistic re-probe.
type ProbeOutcome struct {
	Event int64 `json:"event"`
	// CostBps is the probed Cost(U) in bits/s.
	CostBps int64 `json:"cost_bps"`
	// Evals is the planning work the probe reported (cache hits report
	// the work a fresh probe would have done).
	Evals int `json:"evals"`
	// Admittable counts the event's flows that could be admitted.
	Admittable int `json:"admittable"`
	// CacheHit reports whether the probe was answered from the probe
	// engine's epoch cache instead of freshly planned.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// CoSchedule reports one opportunistic co-scheduling attempt of a round
// (P-LMTF): the re-probe of a candidate after the head committed, and
// whether it ran in the round.
type CoSchedule struct {
	Probe ProbeOutcome `json:"probe"`
	// AloneAdmittable is the candidate's admission headroom before the
	// head executed; the executor commits the candidate only if the
	// re-probe admits at least as many flows.
	AloneAdmittable int `json:"alone_admittable"`
	// Committed reports whether the event actually ran in this round.
	Committed bool `json:"committed"`
}

// LaneClaim is the resources one executed lane of a round claimed.
type LaneClaim struct {
	Event int64 `json:"event"`
	// Flows admitted and specs failed by the execution.
	Flows  int `json:"flows"`
	Failed int `json:"failed"`
	// CostBps is the realized Cost(U) in bits/s (migrated traffic).
	CostBps int64 `json:"cost_bps"`
	// Evals is the planning work of the committing execution.
	Evals int `json:"evals"`
	// CompletionVT is the lane's completion virtual time (ns).
	CompletionVT int64 `json:"completion_vt"`
	// Retries counts injected rule-install timeouts the lane absorbed
	// before its installs succeeded; RolledBack marks a lane whose
	// installs exhausted the retry budget and was fully reverted.
	Retries    int  `json:"retries,omitempty"`
	RolledBack bool `json:"rolled_back,omitempty"`
}

// RoundRecord reports one scheduling round. Its VT is the round start.
type RoundRecord struct {
	// Round numbers rounds from 1 within a run.
	Round int64 `json:"round"`
	// QueueDepth is the queue length when the decision was made.
	QueueDepth int `json:"queue_depth"`
	// Candidates are the probes behind the decision, in sampled order
	// (LMTF: head + α samples; Reorder: whole queue; FIFO: empty).
	Candidates []ProbeOutcome `json:"candidates,omitempty"`
	// Head is the chosen event.
	Head int64 `json:"head"`
	// DecisionEvals is the total planning work of the decision.
	DecisionEvals int `json:"decision_evals"`
	// CoScheduled lists the round's opportunistic attempts (P-LMTF).
	CoScheduled []CoSchedule `json:"co_scheduled,omitempty"`
	// Claims lists executed lanes (head first, then committed
	// co-schedules in arrival order).
	Claims []LaneClaim `json:"claims,omitempty"`
	// EndVT is the round barrier: the virtual time when every lane of
	// the round has completed.
	EndVT int64 `json:"end_vt"`
}

// SpanRecord closes one event's lifecycle; emitted when the event
// completes. Together with the event's ArrivalRecord and the round
// records that sampled it, it reconstructs the full lifecycle
// arrival → queued → probed → planned → installing → complete.
type SpanRecord struct {
	Event int64  `json:"event"`
	Kind  string `json:"kind,omitempty"`
	// Round is the round that executed the event.
	Round int64 `json:"round"`
	// ArrivalVT/StartVT/CompletionVT are the lifecycle timestamps (ns,
	// virtual clock): queued at ArrivalVT, planned+installing from
	// StartVT, complete at CompletionVT.
	ArrivalVT    int64 `json:"arrival_vt"`
	StartVT      int64 `json:"start_vt"`
	CompletionVT int64 `json:"completion_vt"`
	// QueuingNs and ECTNs are the derived per-event metrics (Figs. 8–9
	// and 4–7 respectively).
	QueuingNs int64 `json:"queuing_ns"`
	ECTNs     int64 `json:"ect_ns"`
	// Flows admitted, specs failed, and the realized Cost(U).
	Flows   int   `json:"flows"`
	Failed  int   `json:"failed"`
	CostBps int64 `json:"cost_bps"`
	// Opportunistic reports whether the event ran as a co-scheduled
	// lane rather than as the round head.
	Opportunistic bool `json:"opportunistic,omitempty"`
	// Retries counts injected rule-install timeouts absorbed before the
	// event's installs succeeded; RolledBack marks an event whose
	// installs exhausted the retry budget and whose bandwidth plan was
	// reverted (all specs then count as failed).
	Retries    int  `json:"retries,omitempty"`
	RolledBack bool `json:"rolled_back,omitempty"`
}

// FaultRecord reports one applied fault injection.
type FaultRecord struct {
	// Action is the fault kind ("link-down", "install-timeout", ...).
	Action string `json:"action"`
	// Link / Node identify the target for link and switch faults.
	Link int `json:"link,omitempty"`
	Node int `json:"node,omitempty"`
	// FlowsAffected counts placed flows withdrawn by the failure.
	FlowsAffected int `json:"flows_affected,omitempty"`
	// RepairEvent is the ID of the update event minted to re-admit the
	// disrupted flows (0 when none was needed).
	RepairEvent int64 `json:"repair_event,omitempty"`
	// LinksDown is the total number of failed links after this injection.
	LinksDown int `json:"links_down"`
	// Times is the armed timeout count for install-timeout injections.
	Times int `json:"times,omitempty"`
}

// Tracer binds a Sink and a SimMetrics set; either may be nil. The
// engine's instrumentation hooks go through a *Tracer, and a nil *Tracer
// disables the whole layer at the cost of one pointer check per hook.
type Tracer struct {
	sink Sink
	met  *SimMetrics
}

// NewTracer returns a tracer emitting to sink (nil = no trace records)
// and updating met (nil = no live metrics).
func NewTracer(sink Sink, met *SimMetrics) *Tracer {
	return &Tracer{sink: sink, met: met}
}

// Sink returns the tracer's sink (possibly nil).
func (t *Tracer) Sink() Sink { return t.sink }

// Metrics returns the tracer's live metric set (possibly nil).
func (t *Tracer) Metrics() *SimMetrics { return t.met }

// emit sends a record to the sink, if any.
func (t *Tracer) emit(r *Record) {
	if t.sink != nil {
		t.sink.Emit(r)
	}
}

// RunStart records the beginning of a traced run.
func (t *Tracer) RunStart(vt int64, scheduler string, events int) {
	t.emit(&Record{Kind: KindRun, VT: vt, Run: &RunRecord{Scheduler: scheduler, Events: events}})
}

// EventArrival records an event entering the update queue and refreshes
// the queue-depth gauge.
func (t *Tracer) EventArrival(vt int64, a ArrivalRecord) {
	if t.met != nil {
		t.met.QueueDepth.Set(int64(a.QueueDepth))
	}
	t.emit(&Record{Kind: KindArrival, VT: vt, Arrival: &a})
}

// Round records a completed scheduling round and bumps round/event
// counters. Span records for the round's lanes are emitted separately
// (before the round record) via EventComplete.
func (t *Tracer) Round(vt int64, r *RoundRecord) {
	if t.met != nil {
		t.met.Rounds.Inc()
		t.met.QueueDepth.Set(int64(r.QueueDepth - len(r.Claims)))
	}
	t.emit(&Record{Kind: KindRound, VT: vt, Round: r})
}

// EventComplete records an event's lifecycle span and feeds the ECT and
// queuing-delay histograms.
func (t *Tracer) EventComplete(vt int64, s SpanRecord) {
	if t.met != nil {
		t.met.EventsDone.Inc()
		t.met.FlowsAdmitted.Add(int64(s.Flows))
		t.met.FlowsFailed.Add(int64(s.Failed))
		t.met.ECT.Observe(s.ECTNs)
		t.met.QueuingDelay.Observe(s.QueuingNs)
		if s.Retries > 0 {
			t.met.InstallRetries.Add(int64(s.Retries))
		}
		if s.RolledBack {
			t.met.InstallRollbacks.Inc()
		}
	}
	t.emit(&Record{Kind: KindSpan, VT: vt, Span: &s})
}

// Fault records an applied fault injection and bumps the recovery
// counters.
func (t *Tracer) Fault(vt int64, f FaultRecord) {
	if t.met != nil {
		t.met.FaultsInjected.Inc()
		t.met.LinksDown.Set(int64(f.LinksDown))
		if f.RepairEvent != 0 {
			t.met.RepairEvents.Inc()
		}
		t.met.FlowsDisrupted.Add(int64(f.FlowsAffected))
	}
	t.emit(&Record{Kind: KindFault, VT: vt, Fault: &f})
}

// Flush flushes the sink, if any.
func (t *Tracer) Flush() error {
	if t.sink != nil {
		return t.sink.Flush()
	}
	return nil
}
