package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"runtime"
	"sync"
)

// Sink receives trace records. Emit is called from the goroutine that
// owns the simulation state (records are never emitted concurrently);
// sinks that are also read from other goroutines (RingSink) synchronize
// internally. The record pointer is only valid during the call — sinks
// that retain records must copy them.
type Sink interface {
	// Emit consumes one record.
	Emit(r *Record)
	// Flush forces buffered records out and reports any write error
	// accumulated so far.
	Flush() error
}

// NilSink discards every record. It exists for explicitness; leaving the
// engine's tracer nil is the cheaper way to disable tracing entirely.
type NilSink struct{}

// Emit implements Sink.
func (NilSink) Emit(*Record) {}

// Flush implements Sink.
func (NilSink) Flush() error { return nil }

// JSONLSink writes each record as one JSON line. Records contain only
// virtual-clock timestamps and deterministic fields, and Go's
// encoding/json marshals struct fields in declaration order, so two runs
// with the same seed and config produce byte-identical output.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w (buffered; call
// Flush when done).
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink. The first encode error sticks and suppresses
// further writes; Flush reports it.
func (s *JSONLSink) Emit(r *Record) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(r)
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// RingSink keeps the most recent records in a fixed-size ring buffer, for
// live inspection of a running daemon (the ctl "trace" verb). It is safe
// for concurrent Emit and Last.
type RingSink struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	total uint64
}

// NewRingSink returns a ring sink retaining the last n records (n >= 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Record, 0, n)}
}

// Emit implements Sink, copying the record into the ring.
func (s *RingSink) Emit(r *Record) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, *r)
	} else {
		s.buf[s.next] = *r
	}
	s.next = (s.next + 1) % cap(s.buf)
	s.total++
	s.mu.Unlock()
}

// Flush implements Sink (no-op).
func (*RingSink) Flush() error { return nil }

// Total returns the number of records ever emitted (including evicted).
func (s *RingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// AsyncSink decouples record emission from the wrapped sink's writer: a
// bounded ring buffer sits between Emit (which copies the record and
// returns immediately) and a background goroutine draining into the
// inner sink. When the ring is full the record is dropped and counted
// instead of blocking — so span recording can never backpressure the
// state loop, no matter how slow the sink's disk is. Built for the span
// channel; any Sink can be wrapped.
type AsyncSink struct {
	inner   Sink
	dropped *Counter // may be nil; local count kept either way

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []Record
	head, n int
	drops   int64
	closed  bool
	done    chan struct{}
}

// NewAsyncSink wraps inner with a ring of depth records (minimum 1) and
// starts the drain goroutine. dropped, when non-nil, is bumped for every
// record the full ring rejects. Call Close to stop the goroutine and
// flush inner.
func NewAsyncSink(inner Sink, depth int, dropped *Counter) *AsyncSink {
	if depth < 1 {
		depth = 1
	}
	s := &AsyncSink{inner: inner, dropped: dropped, buf: make([]Record, depth), done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.drain()
	return s
}

// Emit implements Sink: copy into the ring, or drop when full. Never
// blocks on the inner sink.
func (s *AsyncSink) Emit(r *Record) {
	s.mu.Lock()
	if s.closed || s.n == len(s.buf) {
		s.drops++
		s.mu.Unlock()
		if s.dropped != nil {
			s.dropped.Inc()
		}
		return
	}
	s.buf[(s.head+s.n)%len(s.buf)] = *r
	s.n++
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *AsyncSink) drain() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for s.n == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.n == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		r := s.buf[s.head]
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.mu.Unlock()
		s.inner.Emit(&r)
	}
}

// Dropped returns the number of records rejected by the full ring.
func (s *AsyncSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Flush waits for the ring to drain, then flushes the inner sink.
func (s *AsyncSink) Flush() error {
	s.mu.Lock()
	for s.n > 0 && !s.closed {
		s.mu.Unlock()
		// The drainer holds no lock while writing; yield until it
		// catches up.
		runtime.Gosched()
		s.mu.Lock()
	}
	s.mu.Unlock()
	return s.inner.Flush()
}

// Close stops the drain goroutine after the ring empties and flushes
// the inner sink. Emits after Close are counted as drops.
func (s *AsyncSink) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.done
	return s.inner.Flush()
}

// Last returns up to n of the most recent records, oldest first.
// n <= 0 returns everything retained.
func (s *RingSink) Last(n int) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	size := len(s.buf)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Record, 0, n)
	// Oldest retained record is at next when the ring is full, else 0.
	start := 0
	if size == cap(s.buf) {
		start = s.next
	}
	for i := size - n; i < size; i++ {
		out = append(out, s.buf[(start+i)%size])
	}
	return out
}
