package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives trace records. Emit is called from the goroutine that
// owns the simulation state (records are never emitted concurrently);
// sinks that are also read from other goroutines (RingSink) synchronize
// internally. The record pointer is only valid during the call — sinks
// that retain records must copy them.
type Sink interface {
	// Emit consumes one record.
	Emit(r *Record)
	// Flush forces buffered records out and reports any write error
	// accumulated so far.
	Flush() error
}

// NilSink discards every record. It exists for explicitness; leaving the
// engine's tracer nil is the cheaper way to disable tracing entirely.
type NilSink struct{}

// Emit implements Sink.
func (NilSink) Emit(*Record) {}

// Flush implements Sink.
func (NilSink) Flush() error { return nil }

// JSONLSink writes each record as one JSON line. Records contain only
// virtual-clock timestamps and deterministic fields, and Go's
// encoding/json marshals struct fields in declaration order, so two runs
// with the same seed and config produce byte-identical output.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w (buffered; call
// Flush when done).
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink. The first encode error sticks and suppresses
// further writes; Flush reports it.
func (s *JSONLSink) Emit(r *Record) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(r)
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// RingSink keeps the most recent records in a fixed-size ring buffer, for
// live inspection of a running daemon (the ctl "trace" verb). It is safe
// for concurrent Emit and Last.
type RingSink struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	total uint64
}

// NewRingSink returns a ring sink retaining the last n records (n >= 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Record, 0, n)}
}

// Emit implements Sink, copying the record into the ring.
func (s *RingSink) Emit(r *Record) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, *r)
	} else {
		s.buf[s.next] = *r
	}
	s.next = (s.next + 1) % cap(s.buf)
	s.total++
	s.mu.Unlock()
}

// Flush implements Sink (no-op).
func (*RingSink) Flush() error { return nil }

// Total returns the number of records ever emitted (including evicted).
func (s *RingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Last returns up to n of the most recent records, oldest first.
// n <= 0 returns everything retained.
func (s *RingSink) Last(n int) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	size := len(s.buf)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Record, 0, n)
	// Oldest retained record is at next when the ring is full, else 0.
	start := 0
	if size == cap(s.buf) {
		start = s.next
	}
	for i := size - n; i < size; i++ {
		out = append(out, s.buf[(start+i)%size])
	}
	return out
}
