package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"netupdate/internal/wal"
)

func fuzzFrames(f *testing.F, seqs ...int64) []byte {
	f.Helper()
	var buf []byte
	for _, seq := range seqs {
		var err error
		buf, err = wal.AppendFrame(buf, &wal.Record{
			Type: wal.TypeEvent, ID: wal.ID{VT: 1000 * seq, Seq: seq}, Rounds: seq,
			Event: &wal.EventRecord{EventID: seq, Kind: "submitted", BatchSize: 1,
				Flows: []wal.FlowSpec{{Src: 1, Dst: 9, DemandBps: 1e9, SizeBytes: 1 << 20}}},
		})
		if err != nil {
			f.Fatal(err)
		}
	}
	return buf
}

// FuzzReplDecode feeds arbitrary byte streams through the replication
// frame reader and the records-batch decoder, asserting the crash-free
// error taxonomy: every outcome is a decoded message, io.EOF at a clean
// boundary, io.ErrUnexpectedEOF on a torn frame, or a typed repl error —
// never a panic, never an unbounded allocation.
func FuzzReplDecode(f *testing.F) {
	meta := wal.Meta{Format: wal.FormatVersion, Scheduler: "plmtf", Seed: 7, K: 4, Util: 0.3, Watermark: 4096}

	var seeds [][]byte

	// A full healthy session: hello, welcome, bootstrap checkpoint,
	// records, rotation checkpoint, heartbeat, ack.
	var session []byte
	session, _ = AppendHello(session, &Hello{Term: 2, AfterSeq: 0, Bootstrap: true, Meta: meta})
	session, _ = AppendWelcome(session, &Welcome{Term: 2, LastSeq: 8, CheckpointSeq: 4, Snapshot: true})
	session, _ = AppendCheckpoint(session, &wal.Checkpoint{Format: wal.FormatVersion, ID: wal.ID{VT: 4000, Seq: 4}, Rounds: 4}, true)
	session, _ = AppendRecords(session, fuzzFrames(f, 5, 6, 7))
	session, _ = AppendCheckpoint(session, &wal.Checkpoint{Format: wal.FormatVersion, ID: wal.ID{VT: 7000, Seq: 7}, Rounds: 7}, false)
	session, _ = AppendHeartbeat(session, 2, 8)
	session, _ = AppendAck(session, 7)
	seeds = append(seeds, session)

	// Stale-term handshakes: hello that deposes, welcome that is stale.
	stale, _ := AppendHello(nil, &Hello{Term: 99, AfterSeq: 3, Meta: meta})
	staleW, _ := AppendWelcome(stale, &Welcome{Term: 1, LastSeq: 3})
	seeds = append(seeds, staleW)

	// Rejection welcome.
	rej, _ := AppendWelcome(nil, &Welcome{Code: CodeBehind, Detail: "wipe and resync", Term: 3})
	seeds = append(seeds, rej)

	// Records batch with an intra-batch seq gap.
	gapBatch, _ := AppendRecords(nil, append(fuzzFrames(f, 5), fuzzFrames(f, 9)...))
	seeds = append(seeds, gapBatch)

	// Truncations of a records frame at every interesting boundary.
	whole, _ := AppendRecords(nil, fuzzFrames(f, 5, 6))
	for _, cut := range []int{1, 6, HeaderSize - 1, HeaderSize, HeaderSize + 3, len(whole) - 1} {
		if cut < len(whole) {
			seeds = append(seeds, whole[:cut])
		}
	}

	// Checkpoint/records interleaving with a bootstrap flag mid-stream
	// (protocol violation the session layer must catch, codec accepts).
	var inter []byte
	inter, _ = AppendRecords(inter, fuzzFrames(f, 5))
	inter, _ = AppendCheckpoint(inter, &wal.Checkpoint{Format: wal.FormatVersion, ID: wal.ID{VT: 5000, Seq: 5}, Rounds: 5}, true)
	inter, _ = AppendRecords(inter, fuzzFrames(f, 6))
	seeds = append(seeds, inter)

	// Header-level damage.
	hb, _ := AppendHeartbeat(nil, 1, 2)
	badMagic := append([]byte(nil), hb...)
	badMagic[0] = 0xB7 // the ctl binary magic, the likeliest cross-protocol confusion
	seeds = append(seeds, badMagic)
	badLen := append([]byte(nil), hb...)
	binary.LittleEndian.PutUint32(badLen[4:8], 1<<31)
	seeds = append(seeds, badLen)
	seeds = append(seeds, []byte{})
	seeds = append(seeds, []byte{StreamMagic})

	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var scratch []byte
		for {
			m, s, err := ReadMessage(r, scratch)
			scratch = s
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF ||
					errors.Is(err, ErrCorrupt) || errors.Is(err, ErrSeqGap) {
					break
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			if m.Kind == KindRecords {
				if _, err := DecodeRecords(m.Records); err != nil &&
					!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrSeqGap) {
					t.Fatalf("DecodeRecords error class: %v", err)
				}
			}
		}
	})
}
