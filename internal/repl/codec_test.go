package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"netupdate/internal/wal"
)

func testEventRecord(seq int64) *wal.Record {
	return &wal.Record{
		Type: wal.TypeEvent, ID: wal.ID{VT: 1000 * seq, Seq: seq}, Rounds: seq,
		Event: &wal.EventRecord{EventID: seq, Kind: "submitted", BatchSize: 1,
			Flows: []wal.FlowSpec{{Src: 1, Dst: 9, DemandBps: 1e9, SizeBytes: 1 << 20}}},
	}
}

func walFrames(t *testing.T, seqs ...int64) []byte {
	t.Helper()
	var buf []byte
	for _, seq := range seqs {
		var err error
		buf, err = wal.AppendFrame(buf, testEventRecord(seq))
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func readOne(t *testing.T, frame []byte) *Message {
	t.Helper()
	m, _, err := ReadMessage(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	return m
}

// TestCodecRoundTrip drives every frame kind through Append*/ReadMessage.
func TestCodecRoundTrip(t *testing.T) {
	hello := &Hello{Term: 3, AfterSeq: 17, Bootstrap: true, Meta: testMeta()}
	frame, err := AppendHello(nil, hello)
	if err != nil {
		t.Fatal(err)
	}
	m := readOne(t, frame)
	if m.Kind != KindHello || m.Hello == nil || *m.Hello != *hello {
		t.Fatalf("hello round trip: %+v", m)
	}

	welcome := &Welcome{Code: CodeBehind, Detail: "d", Term: 4, LastSeq: 99, CheckpointSeq: 50, Snapshot: true}
	if frame, err = AppendWelcome(nil, welcome); err != nil {
		t.Fatal(err)
	}
	m = readOne(t, frame)
	if m.Kind != KindWelcome || m.Welcome == nil || *m.Welcome != *welcome {
		t.Fatalf("welcome round trip: %+v", m)
	}

	ck := &wal.Checkpoint{Format: wal.FormatVersion, ID: wal.ID{VT: 7000, Seq: 7}, Rounds: 9}
	for _, bootstrap := range []bool{false, true} {
		if frame, err = AppendCheckpoint(nil, ck, bootstrap); err != nil {
			t.Fatal(err)
		}
		m = readOne(t, frame)
		if m.Kind != KindCheckpoint || m.Checkpoint == nil || m.Checkpoint.ID != ck.ID || m.Bootstrap != bootstrap {
			t.Fatalf("checkpoint round trip (bootstrap=%v): %+v", bootstrap, m)
		}
	}

	raw := walFrames(t, 5, 6, 7)
	if frame, err = AppendRecords(nil, raw); err != nil {
		t.Fatal(err)
	}
	m = readOne(t, frame)
	if m.Kind != KindRecords || !bytes.Equal(m.Records, raw) {
		t.Fatalf("records round trip: %+v", m)
	}
	recs, err := DecodeRecords(m.Records)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].ID.Seq != 5 || recs[2].ID.Seq != 7 {
		t.Fatalf("decoded records: %+v", recs)
	}

	if frame, err = AppendHeartbeat(nil, 11, 222); err != nil {
		t.Fatal(err)
	}
	m = readOne(t, frame)
	if m.Kind != KindHeartbeat || m.Heartbeat == nil || m.Heartbeat.Term != 11 || m.Heartbeat.LastSeq != 222 {
		t.Fatalf("heartbeat round trip: %+v", m)
	}

	if frame, err = AppendAck(nil, 333); err != nil {
		t.Fatal(err)
	}
	m = readOne(t, frame)
	if m.Kind != KindAck || m.Ack == nil || m.Ack.Seq != 333 {
		t.Fatalf("ack round trip: %+v", m)
	}
}

// TestCodecStreamed checks several frames back-to-back through one
// reader with scratch reuse, the shape the session loops actually use.
func TestCodecStreamed(t *testing.T) {
	var stream []byte
	var err error
	if stream, err = AppendHeartbeat(stream, 1, 10); err != nil {
		t.Fatal(err)
	}
	if stream, err = AppendRecords(stream, walFrames(t, 11)); err != nil {
		t.Fatal(err)
	}
	if stream, err = AppendAck(stream, 11); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(stream)
	var scratch []byte
	kinds := []byte{}
	for {
		var m *Message
		m, scratch, err = ReadMessage(r, scratch)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, m.Kind)
	}
	if !bytes.Equal(kinds, []byte{KindHeartbeat, KindRecords, KindAck}) {
		t.Fatalf("kinds = %v", kinds)
	}
}

// TestReadMessageRejects pins the error taxonomy: torn reads are
// io.ErrUnexpectedEOF (transient connection damage), everything else is
// ErrCorrupt (fatal protocol damage).
func TestReadMessageRejects(t *testing.T) {
	good, err := AppendHeartbeat(nil, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"bad magic", mutate(func(b []byte) { b[0] = 0x00 }), ErrCorrupt},
		{"bad version", mutate(func(b []byte) { b[1] = 99 }), ErrCorrupt},
		{"unknown kind", mutate(func(b []byte) { b[2] = 200 }), ErrCorrupt},
		{"crc mismatch", mutate(func(b []byte) { b[len(b)-1] ^= 0xFF }), ErrCorrupt},
		{"oversized length", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:8], MaxPayload+1)
		}), ErrCorrupt},
		{"torn header", good[:6], io.ErrUnexpectedEOF},
		{"torn payload", good[:HeaderSize+3], io.ErrUnexpectedEOF},
		{"short heartbeat", func() []byte {
			f, err := appendFrame(nil, KindHeartbeat, 0, make([]byte, 15))
			if err != nil {
				t.Fatal(err)
			}
			return f
		}(), ErrCorrupt},
		{"short ack", func() []byte {
			f, err := appendFrame(nil, KindAck, 0, make([]byte, 7))
			if err != nil {
				t.Fatal(err)
			}
			return f
		}(), ErrCorrupt},
		{"malformed hello json", func() []byte {
			f, err := appendFrame(nil, KindHello, 0, []byte("{"))
			if err != nil {
				t.Fatal(err)
			}
			return f
		}(), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadMessage(bytes.NewReader(tc.frame), nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	// A clean EOF before the first byte is the one non-error ending.
	if _, _, err := ReadMessage(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

// TestDecodeRecordsRejects pins the batch-level invariants that keep a
// follower from folding garbage: no meta records mid-stream, no
// intra-batch sequence gaps, no torn WAL frames.
func TestDecodeRecordsRejects(t *testing.T) {
	if recs, err := DecodeRecords(nil); err != nil || len(recs) != 0 {
		t.Fatalf("empty batch: recs=%v err=%v", recs, err)
	}

	gap := append(walFrames(t, 4), walFrames(t, 6)...)
	if _, err := DecodeRecords(gap); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("seq gap: got %v, want ErrSeqGap", err)
	}

	whole := walFrames(t, 4)
	if _, err := DecodeRecords(whole[:len(whole)-2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn frame: got %v, want ErrCorrupt", err)
	}

	metaFrame, err := wal.AppendFrame(nil, &wal.Record{Type: wal.TypeMeta, ID: wal.ID{Seq: 0}, Meta: &wal.Meta{Format: wal.FormatVersion, Scheduler: "plmtf", Seed: 7, K: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecords(metaFrame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("meta record: got %v, want ErrCorrupt", err)
	}

	corrupted := walFrames(t, 4)
	corrupted[len(corrupted)-1] ^= 0xFF
	if _, err := DecodeRecords(corrupted); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad wal crc: got %v, want ErrCorrupt", err)
	}
}
