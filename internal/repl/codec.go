// Replication stream framing.
//
// A replication session is a single long-lived TCP connection carrying
// length-prefixed, CRC-framed messages in both directions (frames
// leader→follower, acks follower→leader):
//
//	byte 0     StreamMagic (0xB9; distinct from the ctl binary frame
//	           magic 0xB7 and from any JSON document, so the ctl
//	           listener routes the connection off its first byte)
//	byte 1     StreamVersion
//	byte 2     frame kind (Kind*)
//	byte 3     flags (kind-specific)
//	bytes 4-7  u32 little-endian payload length
//	bytes 8-11 u32 little-endian CRC-32C (Castagnoli) of the payload
//	bytes 12-  payload
//
// A KindRecords payload is a concatenation of raw WAL frames exactly as
// they sit in the leader's segment files — the follower re-parses them
// with wal.ReadFrame and appends the identical bytes to its own log, so
// leader and follower logs stay frame-for-frame comparable.
package repl

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"netupdate/internal/wal"
)

const (
	// StreamMagic is the first byte of every replication frame.
	StreamMagic byte = 0xB9
	// StreamVersion is the replication protocol version.
	StreamVersion = 1
	// HeaderSize is the fixed frame header length.
	HeaderSize = 12
	// MaxPayload bounds a frame's payload (16 MiB), limiting what a
	// malformed length field can make the receiver allocate.
	MaxPayload = 1 << 24
)

// Frame kinds.
const (
	// KindHello opens a session (follower→leader, JSON Hello payload).
	KindHello byte = 1
	// KindWelcome answers a Hello (leader→follower, JSON Welcome).
	KindWelcome byte = 2
	// KindRecords carries one batch of raw WAL frames (leader→follower).
	KindRecords byte = 3
	// KindCheckpoint carries a checkpoint: with FlagBootstrap a full
	// state snapshot to install, without it an announcement that the
	// leader rotated at the carried sequence and the follower should
	// checkpoint its own fold there too (leader→follower, JSON
	// wal.Checkpoint payload).
	KindCheckpoint byte = 4
	// KindHeartbeat is the leader's liveness beacon (16-byte payload:
	// u64 term, u64 lastSeq).
	KindHeartbeat byte = 5
	// KindAck acknowledges durable application through a sequence
	// number (follower→leader, 8-byte payload: u64 seq).
	KindAck byte = 6
)

// FlagBootstrap on a KindCheckpoint frame marks a full bootstrap
// snapshot rather than a rotation announcement.
const FlagBootstrap byte = 1 << 0

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Message is one decoded replication frame. Exactly one payload field
// matching Kind is set.
type Message struct {
	Kind byte

	Hello   *Hello
	Welcome *Welcome
	// Checkpoint is the decoded checkpoint document; Bootstrap mirrors
	// FlagBootstrap.
	Checkpoint *wal.Checkpoint
	Bootstrap  bool
	// Records holds the raw bytes of the batched WAL frames; decode
	// individual records with DecodeRecords.
	Records   []byte
	Heartbeat *Heartbeat
	Ack       *Ack
}

// appendFrame frames payload with kind/flags onto dst.
func appendFrame(dst []byte, kind, flags byte, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("repl: frame payload %d exceeds cap %d", len(payload), MaxPayload)
	}
	var h [HeaderSize]byte
	h[0] = StreamMagic
	h[1] = StreamVersion
	h[2] = kind
	h[3] = flags
	binary.LittleEndian.PutUint32(h[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[8:12], crc32.Checksum(payload, castagnoli))
	dst = append(dst, h[:]...)
	return append(dst, payload...), nil
}

// AppendHello frames a Hello onto dst.
func AppendHello(dst []byte, h *Hello) ([]byte, error) {
	payload, err := json.Marshal(h)
	if err != nil {
		return dst, err
	}
	return appendFrame(dst, KindHello, 0, payload)
}

// AppendWelcome frames a Welcome onto dst.
func AppendWelcome(dst []byte, w *Welcome) ([]byte, error) {
	payload, err := json.Marshal(w)
	if err != nil {
		return dst, err
	}
	return appendFrame(dst, KindWelcome, 0, payload)
}

// AppendRecords frames a batch of raw WAL frames onto dst.
func AppendRecords(dst []byte, frames []byte) ([]byte, error) {
	return appendFrame(dst, KindRecords, 0, frames)
}

// AppendCheckpoint frames a checkpoint document onto dst; bootstrap
// selects snapshot semantics over a rotation announcement.
func AppendCheckpoint(dst []byte, ck *wal.Checkpoint, bootstrap bool) ([]byte, error) {
	payload, err := json.Marshal(ck)
	if err != nil {
		return dst, err
	}
	var flags byte
	if bootstrap {
		flags |= FlagBootstrap
	}
	return appendFrame(dst, KindCheckpoint, flags, payload)
}

// AppendHeartbeat frames a liveness beacon onto dst.
func AppendHeartbeat(dst []byte, term uint64, lastSeq int64) ([]byte, error) {
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:8], term)
	binary.LittleEndian.PutUint64(p[8:16], uint64(lastSeq))
	return appendFrame(dst, KindHeartbeat, 0, p[:])
}

// AppendAck frames a durability acknowledgement onto dst.
func AppendAck(dst []byte, seq int64) ([]byte, error) {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(seq))
	return appendFrame(dst, KindAck, 0, p[:])
}

// ReadMessage reads and decodes exactly one replication frame from r.
// scratch is an optional reuse buffer; the returned slice is the
// (possibly grown) buffer to pass back in. io.EOF marks a clean
// boundary before any header byte; io.ErrUnexpectedEOF a torn frame;
// ErrCorrupt a CRC mismatch or malformed payload.
func ReadMessage(r io.Reader, scratch []byte) (*Message, []byte, error) {
	var h [HeaderSize]byte
	if _, err := io.ReadFull(r, h[:1]); err != nil {
		return nil, scratch, err
	}
	if h[0] != StreamMagic {
		return nil, scratch, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, h[0])
	}
	if _, err := io.ReadFull(r, h[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, scratch, err
	}
	if h[1] != StreamVersion {
		return nil, scratch, fmt.Errorf("%w: unsupported stream version %d", ErrCorrupt, h[1])
	}
	n := binary.LittleEndian.Uint32(h[4:8])
	if n > MaxPayload {
		return nil, scratch, fmt.Errorf("%w: frame payload %d exceeds cap %d", ErrCorrupt, n, MaxPayload)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, scratch, err
	}
	if crc32.Checksum(scratch, castagnoli) != binary.LittleEndian.Uint32(h[8:12]) {
		return nil, scratch, fmt.Errorf("%w: payload CRC mismatch", ErrCorrupt)
	}
	m, err := decodeMessage(h[2], h[3], scratch)
	return m, scratch, err
}

// decodeMessage decodes one frame's payload by kind. The payload slice
// is only borrowed: JSON kinds unmarshal out of it, binary kinds copy.
func decodeMessage(kind, flags byte, payload []byte) (*Message, error) {
	m := &Message{Kind: kind}
	switch kind {
	case KindHello:
		m.Hello = new(Hello)
		if err := json.Unmarshal(payload, m.Hello); err != nil {
			return nil, fmt.Errorf("%w: hello: %v", ErrCorrupt, err)
		}
	case KindWelcome:
		m.Welcome = new(Welcome)
		if err := json.Unmarshal(payload, m.Welcome); err != nil {
			return nil, fmt.Errorf("%w: welcome: %v", ErrCorrupt, err)
		}
	case KindCheckpoint:
		m.Checkpoint = new(wal.Checkpoint)
		if err := json.Unmarshal(payload, m.Checkpoint); err != nil {
			return nil, fmt.Errorf("%w: checkpoint: %v", ErrCorrupt, err)
		}
		m.Bootstrap = flags&FlagBootstrap != 0
	case KindRecords:
		m.Records = append([]byte(nil), payload...)
	case KindHeartbeat:
		if len(payload) != 16 {
			return nil, fmt.Errorf("%w: heartbeat payload %d bytes, want 16", ErrCorrupt, len(payload))
		}
		m.Heartbeat = &Heartbeat{
			Term:    binary.LittleEndian.Uint64(payload[0:8]),
			LastSeq: int64(binary.LittleEndian.Uint64(payload[8:16])),
		}
	case KindAck:
		if len(payload) != 8 {
			return nil, fmt.Errorf("%w: ack payload %d bytes, want 8", ErrCorrupt, len(payload))
		}
		m.Ack = &Ack{Seq: int64(binary.LittleEndian.Uint64(payload))}
	default:
		return nil, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, kind)
	}
	return m, nil
}

// DecodeRecords parses a KindRecords payload into its WAL records,
// enforcing intra-batch sequence contiguity (each record exactly one
// past the previous). The first record's continuity with the
// follower's applied prefix is the applier's check, not the codec's.
func DecodeRecords(frames []byte) ([]*wal.Record, error) {
	var (
		recs    []*wal.Record
		scratch []byte
		r       = bytes.NewReader(frames)
	)
	for {
		rec, s, err := wal.ReadFrame(r, scratch)
		scratch = s
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			if err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("%w: truncated wal frame in records batch", ErrCorrupt)
			}
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if rec.Type == wal.TypeMeta {
			return nil, fmt.Errorf("%w: meta record in replication stream", ErrCorrupt)
		}
		if n := len(recs); n > 0 && rec.ID.Seq != recs[n-1].ID.Seq+1 {
			return nil, fmt.Errorf("%w: seq %d after %d in one batch", ErrSeqGap, rec.ID.Seq, recs[n-1].ID.Seq)
		}
		recs = append(recs, rec)
	}
}
