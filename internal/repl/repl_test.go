package repl

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"netupdate/internal/wal"
)

func testMeta() wal.Meta {
	return wal.Meta{Format: wal.FormatVersion, Scheduler: "plmtf", Seed: 7, K: 4, Util: 0.3, Watermark: 4096}
}

// TestJudgeTable pins the handshake verdict for every split-brain and
// resume case: Judge is the single authority the server wiring
// consults, so these rows are the protocol's rules of engagement.
func TestJudgeTable(t *testing.T) {
	meta := testMeta()
	otherMeta := meta
	otherMeta.Seed = 8

	cases := []struct {
		name                    string
		term                    uint64
		lastSeq, ckptSeq        int64
		followers, maxFollowers int
		hello                   Hello
		wantCode                string
		wantDeposed             bool
		wantSnapshot            bool
	}{
		{
			name: "fresh follower accepted",
			term: 1, lastSeq: 10, ckptSeq: 0, maxFollowers: 1,
			hello: Hello{Term: 1, AfterSeq: 0, Bootstrap: true, Meta: meta},
		},
		{
			name: "resume mid-log accepted",
			term: 1, lastSeq: 10, ckptSeq: 3, maxFollowers: 1,
			hello: Hello{Term: 1, AfterSeq: 7, Meta: meta},
		},
		{
			name: "resume exactly at checkpoint accepted",
			term: 1, lastSeq: 10, ckptSeq: 5, maxFollowers: 1,
			hello: Hello{Term: 1, AfterSeq: 5, Meta: meta},
		},
		{
			name: "higher hello term deposes the leader",
			term: 2, lastSeq: 10, ckptSeq: 0, maxFollowers: 1,
			hello:       Hello{Term: 3, AfterSeq: 0, Meta: meta},
			wantCode:    CodeDeposed,
			wantDeposed: true,
		},
		{
			name: "lower hello term does not depose",
			term: 5, lastSeq: 10, ckptSeq: 0, maxFollowers: 1,
			hello: Hello{Term: 2, AfterSeq: 4, Meta: meta},
		},
		{
			name: "world mismatch refused",
			term: 1, lastSeq: 10, ckptSeq: 0, maxFollowers: 1,
			hello:    Hello{Term: 1, AfterSeq: 0, Bootstrap: true, Meta: otherMeta},
			wantCode: CodeMetaMismatch,
		},
		{
			name: "deposing term outranks meta mismatch",
			term: 1, lastSeq: 10, ckptSeq: 0, maxFollowers: 1,
			hello:       Hello{Term: 9, AfterSeq: 0, Meta: otherMeta},
			wantCode:    CodeDeposed,
			wantDeposed: true,
		},
		{
			name: "follower cap refused",
			term: 1, lastSeq: 10, ckptSeq: 0, followers: 1, maxFollowers: 1,
			hello:    Hello{Term: 1, AfterSeq: 5, Meta: meta},
			wantCode: CodeFull,
		},
		{
			name: "follower ahead of the log refused",
			term: 1, lastSeq: 10, ckptSeq: 0, maxFollowers: 1,
			hello:    Hello{Term: 1, AfterSeq: 11, Meta: meta},
			wantCode: CodeAhead,
		},
		{
			name: "empty follower behind checkpoint gets a snapshot",
			term: 1, lastSeq: 100, ckptSeq: 50, maxFollowers: 1,
			hello:        Hello{Term: 1, AfterSeq: 0, Bootstrap: true, Meta: meta},
			wantSnapshot: true,
		},
		{
			name: "non-empty follower behind checkpoint must resync",
			term: 1, lastSeq: 100, ckptSeq: 50, maxFollowers: 1,
			hello:    Hello{Term: 1, AfterSeq: 30, Meta: meta},
			wantCode: CodeBehind,
		},
		{
			name: "empty follower that cannot bootstrap must resync",
			term: 1, lastSeq: 100, ckptSeq: 50, maxFollowers: 1,
			hello:    Hello{Term: 1, AfterSeq: 0, Bootstrap: false, Meta: meta},
			wantCode: CodeBehind,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := meta
			v := Judge(tc.term, tc.lastSeq, tc.ckptSeq, &m, tc.followers, tc.maxFollowers, &tc.hello)
			if v.Code != tc.wantCode {
				t.Fatalf("code = %q (%s), want %q", v.Code, v.Detail, tc.wantCode)
			}
			if v.Deposed != tc.wantDeposed {
				t.Fatalf("deposed = %v, want %v", v.Deposed, tc.wantDeposed)
			}
			if v.SendCheckpoint != tc.wantSnapshot {
				t.Fatalf("sendCheckpoint = %v, want %v", v.SendCheckpoint, tc.wantSnapshot)
			}
		})
	}
}

// TestCheckWelcome pins the follower side of the split-brain fence: a
// stale leader's frames are refused before any is folded.
func TestCheckWelcome(t *testing.T) {
	if err := CheckWelcome(2, &Welcome{Term: 2}); err != nil {
		t.Fatalf("equal terms: %v", err)
	}
	if err := CheckWelcome(2, &Welcome{Term: 5}); err != nil {
		t.Fatalf("higher leader term: %v", err)
	}
	err := CheckWelcome(3, &Welcome{Term: 2})
	if !errors.Is(err, ErrStaleLeader) {
		t.Fatalf("stale leader: got %v, want ErrStaleLeader", err)
	}
	err = CheckWelcome(1, &Welcome{Code: CodeBehind, Detail: "wipe and resync", Term: 1})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("rejection: got %v, want ErrRejected", err)
	}
}

func TestTermPersistence(t *testing.T) {
	dir := t.TempDir()
	term, err := LoadTerm(dir)
	if err != nil || term != 1 {
		t.Fatalf("fresh dir: term=%d err=%v, want 1, nil", term, err)
	}
	if err := SaveTerm(dir, 7); err != nil {
		t.Fatalf("save: %v", err)
	}
	term, err = LoadTerm(dir)
	if err != nil || term != 7 {
		t.Fatalf("reload: term=%d err=%v, want 7, nil", term, err)
	}
	// Corrupt file surfaces an error rather than silently resetting the
	// fence to 1 (that would re-admit a deposed leader).
	if err := os.WriteFile(filepath.Join(dir, termName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTerm(dir); err == nil {
		t.Fatal("corrupt term.json: want error, got nil")
	}
}
