// Package repl defines the leader→follower WAL replication protocol of
// the update controller: the wire frames a leader uses to stream its
// write-ahead log to warm followers, the handshake that resumes a
// follower from an arbitrary sequence number, and the term discipline
// that keeps a deposed leader from ever dual-writing after a follower
// has been promoted.
//
// The protocol is deliberately small because the hard problem is
// already solved one layer down: engine state is a pure deterministic
// fold of the WAL (the Bayou ordered-update-log design), so "replicate
// the state machine" reduces to "ship the committed log frames in
// order". A follower folds each received record through the exact
// replay path crash recovery uses, which means a promoted follower is
// byte-for-byte the state a never-crashed server holding the same
// acked prefix would be in.
//
// Split-brain rules (see DESIGN.md §15):
//
//   - Every promotion bumps a monotonically increasing term, persisted
//     in term.json next to the WAL before the new leader serves.
//   - A leader that receives a Hello carrying a term above its own has
//     been deposed: it answers CodeDeposed and steps down read-only.
//   - A follower that receives a Welcome carrying a term below its own
//     refuses the session (ErrStaleLeader) and never folds its frames.
package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"netupdate/internal/wal"
)

// Typed errors. Match with errors.Is.
var (
	// ErrCorrupt marks a replication frame whose CRC does not match its
	// payload or whose shape is malformed.
	ErrCorrupt = errors.New("repl: corrupt frame")
	// ErrStaleLeader is returned by CheckWelcome when the leader's term
	// is below the follower's own: a deposed leader revived and must
	// never have its frames folded.
	ErrStaleLeader = errors.New("repl: stale leader term")
	// ErrRejected wraps a non-empty Welcome rejection code.
	ErrRejected = errors.New("repl: handshake rejected")
	// ErrSeqGap marks a records frame whose sequence numbers are not
	// contiguous with what the follower has applied.
	ErrSeqGap = errors.New("repl: replication sequence gap")
)

// Welcome rejection codes. A non-empty Code in a Welcome frame refuses
// the session; the code is machine-readable so followers and tests can
// distinguish "wipe and resync" from "you deposed me".
const (
	// CodeDeposed: the Hello carried a term above the leader's — the
	// contacted server has been deposed by a promotion it had not heard
	// about, acknowledges it, and steps down read-only.
	CodeDeposed = "deposed"
	// CodeMetaMismatch: the follower's WAL meta describes a different
	// deterministic world (scheduler, seed, topology, ...).
	CodeMetaMismatch = "meta-mismatch"
	// CodeFull: the leader already serves its configured maximum number
	// of followers.
	CodeFull = "followers-full"
	// CodeAhead: the follower claims a sequence number past the leader's
	// log end — it replicated from a different history.
	CodeAhead = "follower-ahead"
	// CodeBehind: the follower's log ends before the leader's newest
	// checkpoint and it cannot accept a bootstrap snapshot (non-empty
	// log). The operator must wipe the follower's WAL dir and resync.
	CodeBehind = "behind-checkpoint"
	// CodeNoWAL: the contacted server runs without a WAL and has nothing
	// to replicate.
	CodeNoWAL = "no-wal"
	// CodeNotLeader: the contacted server is itself a follower (or
	// deposed); chained replication is not supported.
	CodeNotLeader = "not-leader"
)

// Hello is the follower's handshake, sent once per session.
type Hello struct {
	// Term is the highest term the follower has persisted. A term above
	// the leader's own deposes the leader.
	Term uint64 `json:"term"`
	// AfterSeq is the last WAL sequence number the follower holds
	// durably; the leader resumes the stream from AfterSeq+1.
	AfterSeq int64 `json:"after_seq"`
	// Bootstrap is set when the follower's log is empty and it can
	// install a full checkpoint snapshot before folding frames.
	Bootstrap bool `json:"bootstrap,omitempty"`
	// Meta is the follower's world configuration; the leader refuses a
	// follower folding over a different world.
	Meta wal.Meta `json:"meta"`
}

// Welcome is the leader's handshake reply.
type Welcome struct {
	// Code is empty on acceptance, else one of the Code* rejections.
	Code string `json:"code,omitempty"`
	// Detail is a human-readable elaboration of Code.
	Detail string `json:"detail,omitempty"`
	// Term is the leader's current term; the follower adopts it when it
	// is higher than its own.
	Term uint64 `json:"term"`
	// LastSeq is the leader's WAL sequence at session registration; the
	// follower is "caught up" once it has acked through it.
	LastSeq int64 `json:"last_seq"`
	// CheckpointSeq is the sequence covered by the leader's newest
	// checkpoint (0 = none).
	CheckpointSeq int64 `json:"checkpoint_seq,omitempty"`
	// Snapshot announces that a bootstrap Checkpoint frame follows the
	// Welcome before any records.
	Snapshot bool `json:"snapshot,omitempty"`
}

// Heartbeat is the leader's liveness beacon; it also advances the
// follower's lag accounting between record frames.
type Heartbeat struct {
	Term    uint64
	LastSeq int64
}

// Ack is the follower's durability acknowledgement: every record with
// seq ≤ Seq has been appended to the follower's own WAL, committed, and
// folded through the replay path.
type Ack struct {
	Seq int64
}

// Verdict is Judge's decision on a Hello.
type Verdict struct {
	// Code is empty when the session is accepted.
	Code string
	// Detail elaborates a rejection.
	Detail string
	// SendCheckpoint is set when the leader must ship its newest
	// checkpoint as a bootstrap snapshot before streaming records.
	SendCheckpoint bool
	// Deposed is set when the Hello's term deposed the leader: the
	// caller must step down read-only even as it rejects the session.
	Deposed bool
}

// Judge decides, as a pure function, whether a leader at (term,
// lastSeq, ckptSeq, meta) accepts a follower's Hello. followers is the
// number of sessions already registered; maxFollowers the configured
// cap. It is the single authority consulted by the server wiring, so
// the split-brain table tests pin its behavior directly.
func Judge(term uint64, lastSeq, ckptSeq int64, meta *wal.Meta, followers, maxFollowers int, h *Hello) Verdict {
	if h.Term > term {
		return Verdict{
			Code:    CodeDeposed,
			Detail:  fmt.Sprintf("hello term %d above leader term %d", h.Term, term),
			Deposed: true,
		}
	}
	if meta != nil {
		if err := meta.Check(&h.Meta); err != nil {
			return Verdict{Code: CodeMetaMismatch, Detail: err.Error()}
		}
	}
	if followers >= maxFollowers {
		return Verdict{Code: CodeFull, Detail: fmt.Sprintf("already serving %d of %d followers", followers, maxFollowers)}
	}
	if h.AfterSeq > lastSeq {
		return Verdict{Code: CodeAhead, Detail: fmt.Sprintf("follower at seq %d, leader log ends at %d", h.AfterSeq, lastSeq)}
	}
	if h.AfterSeq < ckptSeq {
		// The leader no longer holds records ≤ its checkpoint; only a
		// follower that can install the checkpoint wholesale may proceed.
		if !h.Bootstrap || h.AfterSeq != 0 {
			return Verdict{Code: CodeBehind, Detail: fmt.Sprintf("follower at seq %d behind leader checkpoint %d; wipe the follower WAL dir and resync", h.AfterSeq, ckptSeq)}
		}
		return Verdict{SendCheckpoint: true}
	}
	return Verdict{}
}

// CheckWelcome validates a Welcome against the follower's own term.
// A rejection code maps to a typed error; a stale leader term is
// refused before any frame is folded.
func CheckWelcome(myTerm uint64, w *Welcome) error {
	if w.Code != "" {
		return fmt.Errorf("%w: %s (%s)", ErrRejected, w.Code, w.Detail)
	}
	if w.Term < myTerm {
		return fmt.Errorf("%w: leader at term %d, follower already at term %d", ErrStaleLeader, w.Term, myTerm)
	}
	return nil
}

// termName is the file persisting the replication term, next to the
// WAL segments it fences.
const termName = "term.json"

type termDoc struct {
	Term uint64 `json:"term"`
}

// LoadTerm reads the persisted replication term from dir, defaulting
// to 1 when no term has ever been persisted.
func LoadTerm(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, termName))
	if errors.Is(err, os.ErrNotExist) {
		return 1, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repl: read term: %w", err)
	}
	var doc termDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("repl: parse term: %w", err)
	}
	if doc.Term == 0 {
		return 1, nil
	}
	return doc.Term, nil
}

// SaveTerm durably persists term in dir (write, fsync, rename, dir
// fsync). A promotion must persist its new term before serving writes:
// the term is the fence that lets the old leader learn it was deposed.
func SaveTerm(dir string, term uint64) error {
	data, err := json.Marshal(termDoc{Term: term})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, termName+".tmp-*")
	if err != nil {
		return fmt.Errorf("repl: persist term: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("repl: persist term: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("repl: persist term: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("repl: persist term: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, termName)); err != nil {
		return fmt.Errorf("repl: persist term: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("repl: persist term: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("repl: persist term: %w", err)
	}
	return nil
}
