package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"netupdate/internal/ctl"
	"netupdate/internal/topology"
)

// testCluster builds an in-process 2-shard cluster plus gateway over a
// k=4 fat-tree (pods {0,1} on shard 1, {2,3} on shard 2), torn down by
// t.Cleanup.
func testCluster(t *testing.T, shards int) (*Gateway, *Cluster, *topology.FatTree) {
	t.Helper()
	cfg := WorldConfig{K: 4, Util: 0.2, Scheduler: "p-lmtf", Alpha: 4, Seed: 1, Watermark: 1024, Shards: shards}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := cl.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	ref, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewGateway(cl.Part, ref.Graph(), cl.Cross, cl.Backends())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := gw.Close(); err != nil {
			t.Errorf("gateway close: %v", err)
		}
	})
	return gw, cl, ref
}

// intraPodSpec builds one event with a single flow inside the given pod.
func intraPodSpec(ft *topology.FatTree, pod int) ctl.EventSpec {
	return ctl.EventSpec{Kind: "test", Flows: []ctl.FlowSpec{{
		Src:       int(ft.Host(pod, 0, 0)),
		Dst:       int(ft.Host(pod, 1, 0)),
		DemandBps: 1e6,
		SizeBytes: 1e4,
	}}}
}

// crossPodSpec builds one event spanning two pods.
func crossPodSpec(ft *topology.FatTree, podA, podB int) ctl.EventSpec {
	return ctl.EventSpec{Kind: "test", Flows: []ctl.FlowSpec{{
		Src:       int(ft.Host(podA, 0, 0)),
		Dst:       int(ft.Host(podB, 0, 0)),
		DemandBps: 1e6,
		SizeBytes: 1e4,
	}}}
}

func TestGatewayRoutesByPod(t *testing.T) {
	gw, _, ft := testCluster(t, 2)
	resp := gw.Handle(ctl.Request{Op: ctl.OpSubmitBatch, Events: []ctl.EventSpec{
		intraPodSpec(ft, 0), // pods {0,1} -> shard 1
		intraPodSpec(ft, 3), // pods {2,3} -> shard 2
		intraPodSpec(ft, 1),
		intraPodSpec(ft, 2),
	}}, time.Now().UnixNano())
	if !resp.OK {
		t.Fatalf("submit: %s", resp.Error)
	}
	wantShard := []int{1, 2, 1, 2}
	for i, v := range resp.Verdicts {
		if !v.OK {
			t.Fatalf("verdict %d: %s", i, v.Error)
		}
		if v.Shard != wantShard[i] {
			t.Errorf("verdict %d routed to shard %d, want %d", i, v.Shard, wantShard[i])
		}
		// Shard s of N mints IDs on the lattice s, s+N, s+2N, ...
		if got := int((v.EventID-1)%2) + 1; got != v.Shard {
			t.Errorf("verdict %d: event ID %d off shard %d's lattice", i, v.EventID, v.Shard)
		}
	}

	// Status routes back through the lattice to the shard that knows
	// the event.
	for i, v := range resp.Verdicts {
		st := gw.Handle(ctl.Request{Op: ctl.OpStatus, EventID: v.EventID}, time.Now().UnixNano())
		if !st.OK || st.Status == nil {
			t.Fatalf("status %d: %+v", i, st)
		}
		if st.Status.State == ctl.StateUnknown {
			t.Errorf("event %d unknown through the gateway", v.EventID)
		}
	}
}

func TestGatewayCrossShardAdmission(t *testing.T) {
	gw, cl, ft := testCluster(t, 2)
	resp := gw.Handle(ctl.Request{Op: ctl.OpSubmitBatch, Events: []ctl.EventSpec{
		crossPodSpec(ft, 0, 3), // spans both shards; home = shard 1
	}}, time.Now().UnixNano())
	if !resp.OK || !resp.Verdicts[0].OK {
		t.Fatalf("cross submit: %+v", resp)
	}
	if got := resp.Verdicts[0].Shard; got != 1 {
		t.Errorf("cross event homed on shard %d, want 1", got)
	}
	if adm, rej := cl.Cross.Counters(); adm != 1 || rej != 0 {
		t.Errorf("cross counters = %d admitted, %d rejected, want 1, 0", adm, rej)
	}

	// A cross event larger than the per-shard pool is refused atomically:
	// nothing held, overloaded verdict.
	huge := crossPodSpec(ft, 1, 2)
	huge.Flows[0].DemandBps = int64(topology.Gbps) * 1000
	resp = gw.Handle(ctl.Request{Op: ctl.OpSubmitBatch, Events: []ctl.EventSpec{huge}}, time.Now().UnixNano())
	if !resp.OK {
		t.Fatalf("batch-level failure: %s", resp.Error)
	}
	v := resp.Verdicts[0]
	if v.OK || !v.Overloaded {
		t.Fatalf("oversized cross event verdict = %+v, want overloaded rejection", v)
	}
	adm, rej := cl.Cross.Counters()
	if adm != 1 || rej != 1 {
		t.Errorf("cross counters = %d admitted, %d rejected, want 1, 1", adm, rej)
	}

	// The aggregated stats surface the pool counters.
	st := gw.Handle(ctl.Request{Op: ctl.OpStats}, time.Now().UnixNano())
	if !st.OK || st.Stats == nil {
		t.Fatalf("stats: %+v", st)
	}
	if st.Stats.CrossEvents != 1 || st.Stats.CrossRejected != 1 {
		t.Errorf("stats cross = %d/%d, want 1/1", st.Stats.CrossEvents, st.Stats.CrossRejected)
	}
	if st.Stats.Shards != 2 || st.Stats.ShardID != 0 {
		t.Errorf("stats shards = %d id %d, want 2, 0", st.Stats.Shards, st.Stats.ShardID)
	}
}

// waitDone polls the gateway until n events completed cluster-wide.
func waitDone(t *testing.T, gw *Gateway, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := gw.Handle(ctl.Request{Op: ctl.OpStats}, time.Now().UnixNano())
		if !resp.OK || resp.Stats == nil {
			t.Fatalf("stats: %+v", resp)
		}
		if resp.Stats.EventsDone >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d events done", resp.Stats.EventsDone, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatewayAggregation(t *testing.T) {
	gw, _, ft := testCluster(t, 2)
	var events []ctl.EventSpec
	for pod := 0; pod < 4; pod++ {
		events = append(events, intraPodSpec(ft, pod))
	}
	resp := gw.Handle(ctl.Request{Op: ctl.OpSubmitBatch, Events: events}, time.Now().UnixNano())
	if !resp.OK {
		t.Fatalf("submit: %s", resp.Error)
	}
	waitDone(t, gw, len(events))

	st := gw.Handle(ctl.Request{Op: ctl.OpStats}, time.Now().UnixNano())
	if st.Stats.EventsDone != len(events) {
		t.Errorf("EventsDone = %d, want %d", st.Stats.EventsDone, len(events))
	}
	if st.Stats.IngestAccepted != int64(len(events)) {
		t.Errorf("IngestAccepted = %d, want %d", st.Stats.IngestAccepted, len(events))
	}

	// Results fan in from every shard.
	res := gw.Handle(ctl.Request{Op: ctl.OpResults}, time.Now().UnixNano())
	if !res.OK || len(res.Results) != len(events) {
		t.Fatalf("results: ok=%v n=%d, want %d", res.OK, len(res.Results), len(events))
	}

	// Traces fan in with the shard stamped; per-shard streams are intact.
	tr := gw.Handle(ctl.Request{Op: ctl.OpTrace, N: 0}, time.Now().UnixNano())
	if !tr.OK || len(tr.Trace) == 0 {
		t.Fatalf("trace: %+v", tr)
	}
	seen := map[int]int{}
	for _, rec := range tr.Trace {
		if rec.Shard < 1 || rec.Shard > 2 {
			t.Fatalf("trace record with shard %d", rec.Shard)
		}
		seen[rec.Shard]++
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Errorf("aggregated trace missing a shard: %v", seen)
	}
}

func TestGatewayFaultRouting(t *testing.T) {
	gw, _, ref := testCluster(t, 2)
	// A core link is shared: the fault fans out to both worlds, and the
	// cluster-wide links-down count (a cumulative world total) reflects
	// every world's copy.
	coreLink, ok := ref.Graph().LinkBetween(ref.Cores()[0], ref.Agg(0, 0))
	if !ok {
		t.Fatal("no core->agg link")
	}
	resp := gw.Handle(ctl.Request{Op: ctl.OpFault, Fault: &ctl.FaultSpec{Action: "link-down", Link: int(coreLink)}}, time.Now().UnixNano())
	if !resp.OK || resp.Fault == nil {
		t.Fatalf("core fault: %+v", resp)
	}
	if resp.Fault.LinksDown != 2 {
		t.Errorf("core link-down LinksDown = %d, want 2 (one per world)", resp.Fault.LinksDown)
	}
	// A pod-internal link (edge->host in pod 0) is owned by shard 1:
	// only that world flips it.
	hostLink, ok := ref.Graph().LinkBetween(ref.Edge(0, 0), ref.Host(0, 0, 0))
	if !ok {
		t.Fatal("no edge->host link")
	}
	resp = gw.Handle(ctl.Request{Op: ctl.OpFault, Fault: &ctl.FaultSpec{Action: "link-down", Link: int(hostLink)}}, time.Now().UnixNano())
	if !resp.OK || resp.Fault == nil {
		t.Fatalf("pod fault: %+v", resp)
	}

	st := gw.Handle(ctl.Request{Op: ctl.OpStats}, time.Now().UnixNano())
	if st.Stats.FaultsInjected != 3 {
		t.Errorf("FaultsInjected = %d, want 3 (1 pod + 2 fanned out)", st.Stats.FaultsInjected)
	}
}

func TestGatewayRejectsReplOps(t *testing.T) {
	gw, _, _ := testCluster(t, 2)
	for _, op := range []ctl.Op{ctl.OpReplStatus, ctl.OpReplPromote} {
		resp := gw.Handle(ctl.Request{Op: op}, time.Now().UnixNano())
		if resp.OK {
			t.Errorf("%s through the gateway succeeded, want refusal", op)
		}
	}
}

// TestGatewayOverWire drives the gateway through the real codecs: the
// binary v2 client negotiates shard verdicts and sees the stamp; a
// plain JSON client works unchanged.
func TestGatewayOverWire(t *testing.T) {
	gw, _, ft := testCluster(t, 2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(l) }()
	t.Cleanup(func() {
		if err := gw.Close(); err != nil {
			t.Errorf("gateway close: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, ctl.ErrServerClosed) {
			t.Errorf("Serve returned %v", err)
		}
	})

	bc, err := ctl.DialBinary(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	feats, err := bc.Features()
	if err != nil {
		t.Fatal(err)
	}
	hasShard := false
	for _, f := range feats {
		if f == ctl.FeatureShardVerdicts {
			hasShard = true
		}
	}
	if !hasShard {
		t.Fatalf("gateway features %v missing %s", feats, ctl.FeatureShardVerdicts)
	}
	bc.EnableShardInfo()
	verdicts, _, err := bc.SubmitBatch([]ctl.EventSpec{intraPodSpec(ft, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].Shard != 2 {
		t.Errorf("binary verdict shard = %d, want 2", verdicts[0].Shard)
	}

	jc, err := ctl.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	id, err := jc.Submit(intraPodSpec(ft, 0))
	if err != nil {
		t.Fatal(err)
	}
	if (id-1)%2 != 0 {
		t.Errorf("JSON submit event ID %d off shard 1's lattice", id)
	}
	if _, err := jc.Stats(); err != nil {
		t.Fatal(err)
	}
}

// traceBytes renders one shard's trace stream as canonical JSON lines.
func traceBytes(t *testing.T, w *World) string {
	t.Helper()
	recs, err := w.Server.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out += string(b) + "\n"
	}
	return out
}

// TestGatewayDeterminism runs the same cross-shard-heavy seeded
// workload through two fresh 2-shard clusters and requires every
// shard's trace stream to be byte-identical between runs — the
// sharded control plane must not introduce nondeterminism.
func TestGatewayDeterminism(t *testing.T) {
	run := func() []string {
		cfg := WorldConfig{K: 4, Util: 0.2, Scheduler: "p-lmtf", Alpha: 4, Seed: 1, Watermark: 1024, Shards: 2}
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		ref, err := topology.NewFatTree(4, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		gw, err := NewGateway(cl.Part, ref.Graph(), cl.Cross, cl.Backends())
		if err != nil {
			t.Fatal(err)
		}
		defer gw.Close()

		// One batch: intra-pod and cross-pod events interleaved, so both
		// shards see local and cross-homed admissions in one EnqueueBatch.
		var events []ctl.EventSpec
		for i := 0; i < 12; i++ {
			if i%3 == 0 {
				events = append(events, crossPodSpec(ref, i%4, (i+2)%4))
			} else {
				events = append(events, intraPodSpec(ref, i%4))
			}
		}
		resp := gw.Handle(ctl.Request{Op: ctl.OpSubmitBatch, Events: events}, time.Now().UnixNano())
		if !resp.OK {
			t.Fatalf("submit: %s", resp.Error)
		}
		for _, v := range resp.Verdicts {
			if !v.OK {
				t.Fatalf("verdict: %+v", v)
			}
		}
		waitDone(t, gw, len(events))
		out := make([]string, len(cl.Worlds))
		for i, w := range cl.Worlds {
			out[i] = traceBytes(t, w)
		}
		return out
	}

	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("shard %d trace differs between identical runs:\nrun1:\n%s\nrun2:\n%s",
				i+1, firstDiff(a[i], b[i]), "")
		}
	}
}

func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("at byte %d:\n a: %.160s\n b: %.160s", i, a[lo:], b[lo:])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}
