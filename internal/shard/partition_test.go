package shard

import (
	"math/rand"
	"testing"

	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// TestPartitionCoversPods: every pod maps to exactly one shard, shards
// are contiguous, non-empty, and together cover the pod set.
func TestPartitionCoversPods(t *testing.T) {
	for _, k := range []int{4, 6, 8} {
		ft, err := topology.NewFatTree(k, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		for n := 1; n <= k; n++ {
			part, err := NewPartition(ft, n)
			if err != nil {
				t.Fatalf("k=%d n=%d: %v", k, n, err)
			}
			seen := 0
			for s := 1; s <= n; s++ {
				pods := part.PodsOf(s)
				if len(pods) == 0 {
					t.Errorf("k=%d n=%d: shard %d owns no pods", k, n, s)
				}
				for i, pod := range pods {
					if part.OfPod(pod) != s {
						t.Errorf("k=%d n=%d: pod %d not mapped back to shard %d", k, n, pod, s)
					}
					if i > 0 && pod != pods[i-1]+1 {
						t.Errorf("k=%d n=%d: shard %d pods not contiguous: %v", k, n, s, pods)
					}
				}
				seen += len(pods)
			}
			if seen != k {
				t.Errorf("k=%d n=%d: shards cover %d pods, want %d", k, n, seen, k)
			}
		}
		if _, err := NewPartition(ft, k+1); err == nil {
			t.Errorf("k=%d: partition with empty shards accepted", k)
		}
		if _, err := NewPartition(ft, 0); err == nil {
			t.Errorf("k=%d: zero-shard partition accepted", k)
		}
	}
}

// linkSetProperty checks the assignment invariant for one provider:
// every link of every candidate path of a host pair is either owned by
// a shard the event's key touches or belongs to the shared core
// (owner 0) — no event can ever need a link owned by a shard its key
// does not name.
func linkSetProperty(t *testing.T, name string, g *topology.Graph, part *Partition,
	paths func(src, dst topology.NodeID) []routing.Path, hosts []topology.NodeID, rng *rand.Rand) {
	t.Helper()
	for trial := 0; trial < 200; trial++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := src
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		key := part.KeyOf([]topology.NodeID{src, dst})
		if key.Home < 1 || key.Home > part.N() {
			t.Fatalf("%s: home shard %d out of range", name, key.Home)
		}
		if key.Cross != (len(key.Touched) > 1) {
			t.Fatalf("%s: cross=%v with touched %v", name, key.Cross, key.Touched)
		}
		touched := make(map[int]bool, len(key.Touched))
		for _, s := range key.Touched {
			touched[s] = true
		}
		for _, p := range paths(src, dst) {
			for _, lid := range p.Links() {
				l := g.Link(lid)
				owner := part.LinkOwner(l.From, l.To)
				if owner == 0 {
					continue // shared core layer, governed by the cross pool
				}
				if !touched[owner] {
					t.Fatalf("%s: pair (%d,%d) key %+v path uses link %v owned by shard %d",
						name, src, dst, key, l, owner)
				}
			}
		}
		if !key.Cross {
			// A single-shard event's endpoints must actually live there.
			for _, ep := range []topology.NodeID{src, dst} {
				if got := part.OfPod(part.mapper.PodOf(ep)); got != key.Home {
					t.Fatalf("%s: endpoint %d maps to shard %d, key home %d", name, ep, got, key.Home)
				}
			}
		}
	}
}

// TestShardKeyAssignmentProperty: across fat-trees (k=4/6/8) and a
// leaf-spine, for random host pairs and every shard count, each event
// resolves to exactly one owning shard or the cross-shard path, and its
// routable link set never leaves {touched shards} ∪ {core}.
func TestShardKeyAssignmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range []int{4, 6, 8} {
		ft, err := topology.NewFatTree(k, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		prov := routing.NewFatTreeProvider(ft)
		for n := 1; n <= k; n++ {
			part, err := NewPartition(ft, n)
			if err != nil {
				t.Fatal(err)
			}
			linkSetProperty(t, "fat-tree", ft.Graph(), part, prov.Paths, ft.Hosts(), rng)
		}
	}

	ls, err := topology.NewLeafSpine(6, 3, 4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	var hosts []topology.NodeID
	for l := 0; l < ls.NumLeaves; l++ {
		for h := 0; h < ls.HostsPerLeaf; h++ {
			hosts = append(hosts, ls.Host(l, h))
		}
	}
	prov := routing.NewBFSProvider(ls.Graph(), 8)
	for n := 1; n <= ls.NumLeaves; n++ {
		part, err := NewPartition(ls, n)
		if err != nil {
			t.Fatal(err)
		}
		linkSetProperty(t, "leaf-spine", ls.Graph(), part, prov.Paths, hosts, rng)
	}
}

// TestKeyOfEdgeCases pins the conservative paths: pod-less endpoints
// touch every shard; empty endpoint sets route to shard 1.
func TestKeyOfEdgeCases(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(ft, 2)
	if err != nil {
		t.Fatal(err)
	}
	key := part.KeyOf([]topology.NodeID{ft.Cores()[0]})
	if !key.Cross || len(key.Touched) != 2 {
		t.Errorf("core endpoint key = %+v, want cross touching all shards", key)
	}
	key = part.KeyOf(nil)
	if key.Home != 1 || key.Cross {
		t.Errorf("empty key = %+v, want home 1 non-cross", key)
	}
}
