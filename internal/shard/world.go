package shard

import (
	"errors"
	"fmt"
	"path/filepath"

	"netupdate/internal/core"
	"netupdate/internal/ctl"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
	"netupdate/internal/wal"
)

// WorldConfig describes the cluster every shard world is a slice of:
// one k-ary fat-tree, partitioned over Shards engines.
type WorldConfig struct {
	K         int
	Util      float64
	Scheduler string
	Alpha     int
	Seed      int64
	Watermark int
	Shards    int
	// CrossPoolFrac is the fraction of each core link reserved for
	// cross-shard traffic; <= 0 selects DefaultCrossPoolFrac. Ignored
	// (forced to 0) for a single shard, which has no cross traffic.
	CrossPoolFrac float64
	// WALDir, when set, gives every shard a durable log in
	// WALDir/shard-<id>; WALSync is a wal.ParseSyncPolicy name (empty =
	// "group"), CheckpointEvery as in ctl.WALConfig.
	WALDir          string
	WALSync         string
	CheckpointEvery int
}

// World is one shard's engine plus the topology slice it schedules on.
type World struct {
	ID     int
	Pods   []int // pods this shard owns, ascending
	Server *ctl.Server
	FT     *topology.FatTree
}

// Cluster is a set of shard worlds over one partition, plus the
// cross-shard admission ledgers sized from the reserved core pool.
// Ref is the full-capacity reference fat-tree the partition was built
// on — the topology a fronting gateway resolves fault specs against.
type Cluster struct {
	Part   *Partition
	Ref    *topology.FatTree
	Worlds []*World
	Cross  *CrossAdmitter
}

// NewCluster builds cfg.Shards per-shard worlds. Every world holds a
// full replica of the fat-tree (same node and link IDs as an unsharded
// run, so specs and faults need no translation), but:
//
//   - core-layer links carry capacity C·(1-frac)/N — the shard's slice
//     of the shared core, with frac of C per shard held back in the
//     gateway's cross-pool ledgers;
//   - background fill draws only from the shard's own pods' hosts, at a
//     proportionally scaled utilization target, so each world carries
//     its share of the cluster load and nothing else.
//
// With Shards == 1 the single world is byte-for-byte the unsharded
// daemon's (full core capacity, full fill).
func NewCluster(cfg WorldConfig) (*Cluster, error) {
	if cfg.K < 4 {
		return nil, fmt.Errorf("shard: fat-tree arity %d too small", cfg.K)
	}
	ref, err := topology.NewFatTree(cfg.K, topology.Gbps)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	part, err := NewPartition(ref, cfg.Shards)
	if err != nil {
		return nil, err
	}
	frac, err := ResolveCrossPoolFrac(cfg.Shards, cfg.CrossPoolFrac)
	if err != nil {
		return nil, err
	}
	cross := CrossPoolFor(ref, part, frac)

	cl := &Cluster{Part: part, Ref: ref, Cross: cross}
	for id := 1; id <= cfg.Shards; id++ {
		w, err := newWorld(cfg, part, id, frac)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Worlds = append(cl.Worlds, w)
	}
	return cl, nil
}

// NewShardWorld builds the single world for shard id of cfg.Shards —
// the standalone-engine entry point for running one slot of a sharded
// deployment in its own process behind a -shard-addrs gateway. The
// world is exactly what NewCluster would build for the slot: same core
// capacity split, pod-restricted fill, strided event IDs, and WAL slot
// binding under cfg.WALDir/shard-<id> — so a gateway fronting N such
// engines behaves like the in-process cluster.
func NewShardWorld(cfg WorldConfig, id int) (*World, error) {
	if cfg.K < 4 {
		return nil, fmt.Errorf("shard: fat-tree arity %d too small", cfg.K)
	}
	if id < 1 || id > cfg.Shards {
		return nil, fmt.Errorf("shard: slot %d outside 1..%d", id, cfg.Shards)
	}
	ref, err := topology.NewFatTree(cfg.K, topology.Gbps)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	part, err := NewPartition(ref, cfg.Shards)
	if err != nil {
		return nil, err
	}
	frac, err := ResolveCrossPoolFrac(cfg.Shards, cfg.CrossPoolFrac)
	if err != nil {
		return nil, err
	}
	return newWorld(cfg, part, id, frac)
}

// ResolveCrossPoolFrac applies the cross-pool defaults: <= 0 selects
// DefaultCrossPoolFrac, >= 1 is rejected (no shard capacity left), and
// a single shard has no cross traffic so the pool is forced empty.
func ResolveCrossPoolFrac(shards int, frac float64) (float64, error) {
	if frac <= 0 {
		frac = DefaultCrossPoolFrac
	}
	if frac >= 1 {
		return 0, fmt.Errorf("shard: cross pool fraction %v leaves no shard capacity", frac)
	}
	if shards == 1 {
		frac = 0
	}
	return frac, nil
}

// CrossPoolFor sizes the cross-shard admission ledgers for a reference
// topology: frac of the total shared-core capacity, split evenly into
// one ledger per shard.
func CrossPoolFor(ref *topology.FatTree, part *Partition, frac float64) *CrossAdmitter {
	var coreCap topology.Bandwidth
	g := ref.Graph()
	for id := 0; id < g.NumLinks(); id++ {
		l := g.Link(topology.LinkID(id))
		if part.LinkOwner(l.From, l.To) == 0 {
			coreCap += l.Capacity
		}
	}
	return NewCrossAdmitter(part.N(), topology.Bandwidth(float64(coreCap)*frac)/topology.Bandwidth(part.N()))
}

func newWorld(cfg WorldConfig, part *Partition, id int, frac float64) (*World, error) {
	scheduler, err := sched.New(cfg.Scheduler, sched.WithAlpha(cfg.Alpha), sched.WithSeed(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	ft, err := topology.NewFatTree(cfg.K, topology.Gbps)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	g := ft.Graph()
	if cfg.Shards > 1 {
		// This world's core slice: equal share of what the cross pool
		// leaves behind.
		for lid := 0; lid < g.NumLinks(); lid++ {
			l := g.Link(topology.LinkID(lid))
			if part.LinkOwner(l.From, l.To) != 0 {
				continue
			}
			slice := topology.Bandwidth(float64(l.Capacity)*(1-frac)) / topology.Bandwidth(cfg.Shards)
			if err := g.SetCapacity(topology.LinkID(lid), slice); err != nil {
				return nil, fmt.Errorf("shard %d: core split: %w", id, err)
			}
		}
	}
	net := netstate.New(g, routing.NewFatTreeProvider(ft), routing.NewRandomFit(cfg.Seed+7))

	// Open the WAL before filling: a checkpoint restores its own flows.
	var walLog *wal.Log
	var walCfg *ctl.WALConfig
	if cfg.WALDir != "" {
		syncName := cfg.WALSync
		if syncName == "" {
			syncName = "group"
		}
		policy, err := wal.ParseSyncPolicy(syncName)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
		walLog, err = wal.Open(filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%d", id)), wal.WithSync(policy))
		if err != nil {
			return nil, fmt.Errorf("shard %d: wal: %w", id, err)
		}
		walCfg = &ctl.WALConfig{
			Log: walLog,
			Meta: &wal.Meta{
				Format:    wal.FormatVersion,
				Scheduler: scheduler.Name(),
				Seed:      cfg.Seed,
				K:         cfg.K,
				Util:      cfg.Util,
				Watermark: cfg.Watermark,
				Shard:     id,
				Shards:    cfg.Shards,
			},
			CheckpointEvery: cfg.CheckpointEvery,
		}
	}

	pods := part.PodsOf(id)
	restoring := walLog != nil && walLog.Checkpoint() != nil
	if cfg.Util > 0 && !restoring {
		var hosts []topology.NodeID
		for _, h := range ft.Hosts() {
			if part.OfPod(ft.PodOf(h)) == id {
				hosts = append(hosts, h)
			}
		}
		// Fill only this shard's pods, toward this shard's proportional
		// share of the cluster-wide utilization target; with a fraction
		// of the hosts the target may be unreachable, which is fine.
		gen, err := trace.NewGenerator(cfg.Seed+int64(id-1), trace.YahooLike{}, hosts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
		target := cfg.Util * float64(len(pods)) / float64(ft.NumPods())
		if _, err := trace.FillBackground(net, gen, target, 0); err != nil && !errors.Is(err, trace.ErrTargetUnreachable) {
			return nil, fmt.Errorf("shard %d: background: %w", id, err)
		}
	}

	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	srv, _, err := ctl.New(ctl.Config{
		Planner:   planner,
		Scheduler: scheduler,
		Sim:       sim.Config{},
		Watermark: cfg.Watermark,
		Shard:     ctl.ShardIdentity{ID: id, Count: cfg.Shards},
		WAL:       walCfg,
	})
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	return &World{ID: id, Pods: pods, Server: srv, FT: ft}, nil
}

// Backends returns the worlds' engines as the unified Backend surface,
// index s-1 holding shard s.
func (c *Cluster) Backends() []ctl.Backend {
	out := make([]ctl.Backend, len(c.Worlds))
	for i, w := range c.Worlds {
		out[i] = w.Server
	}
	return out
}

// Close shuts every world down, returning the first error.
func (c *Cluster) Close() error {
	var firstErr error
	for _, w := range c.Worlds {
		if err := w.Server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
