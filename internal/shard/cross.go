package shard

import (
	"errors"
	"fmt"
	"sync"

	"netupdate/internal/consistency"
	"netupdate/internal/topology"
)

// ErrCrossPoolExhausted is returned when a cross-shard event's demand
// does not fit the reserved core pool of every shard it touches.
var ErrCrossPoolExhausted = errors.New("shard: cross-shard core pool exhausted")

// DefaultCrossPoolFrac is the fraction of each core link's capacity
// reserved for cross-shard traffic when no override is given: each
// shard's private world keeps (1-frac)/N of the core, and frac stays in
// the gateway's ledgers for events that span shards.
const DefaultCrossPoolFrac = 0.25

// CrossAdmitter is the gateway's two-phase admission ledger for
// cross-shard events. Each shard contributes one scalar pool — its
// reserved slice of the shared core layer — and an event spanning
// shards must debit its aggregate demand from every touched shard's
// pool atomically (all shards or none, via consistency.Atomic) before
// it is routed to its home engine. A debit is released only when the
// home engine rejects the event; committed events hold their slice, the
// reserved-pool analogue of a placed flow's reservation.
type CrossAdmitter struct {
	mu       sync.Mutex
	avail    []int64 // index s-1: remaining pool on shard s
	size     int64   // per-shard pool size at construction
	admitted int64
	rejected int64
}

// NewCrossAdmitter builds ledgers for n shards with perShard capacity
// (bits per second) each.
func NewCrossAdmitter(n int, perShard topology.Bandwidth) *CrossAdmitter {
	c := &CrossAdmitter{avail: make([]int64, n), size: int64(perShard)}
	for i := range c.avail {
		c.avail[i] = int64(perShard)
	}
	return c
}

// pool is one shard's ledger as a two-phase participant. The admitter's
// mutex is held across the whole Atomic call, so the participant itself
// needs no locking.
type pool struct {
	avail *int64
	amt   int64
}

func (p *pool) Prepare() error {
	if p.amt > *p.avail {
		return fmt.Errorf("%w: need %d, have %d", ErrCrossPoolExhausted, p.amt, *p.avail)
	}
	*p.avail -= p.amt
	return nil
}

func (p *pool) Commit() {}

func (p *pool) Abort() { *p.avail += p.amt }

// Admit debits demand from every touched shard's pool, atomically: on
// any shortfall nothing is held and ErrCrossPoolExhausted is returned.
func (c *CrossAdmitter) Admit(touched []int, demand int64) error {
	if demand < 0 {
		return fmt.Errorf("shard: negative cross demand %d", demand)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	parts := make([]consistency.Participant, len(touched))
	for i, s := range touched {
		if s < 1 || s > len(c.avail) {
			return fmt.Errorf("shard: cross admission touching unknown shard %d", s)
		}
		parts[i] = &pool{avail: &c.avail[s-1], amt: demand}
	}
	if err := consistency.Atomic(parts); err != nil {
		c.rejected++
		return err
	}
	c.admitted++
	return nil
}

// Release returns a previously admitted debit, after the home engine
// refused the event (overload, validation): the pool must not leak
// capacity to events that never ran.
func (c *CrossAdmitter) Release(touched []int, demand int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range touched {
		if s < 1 || s > len(c.avail) {
			continue
		}
		c.avail[s-1] += demand
		if c.avail[s-1] > c.size {
			c.avail[s-1] = c.size
		}
	}
	c.admitted--
}

// Counters reports how many cross-shard events were pool-admitted (net
// of releases) and how many were refused for pool exhaustion.
func (c *CrossAdmitter) Counters() (admitted, rejected int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitted, c.rejected
}
