// Package shard partitions the control plane by pod: a Partition maps
// every pod of a topology onto one of N engine shards, each shard runs
// the ordinary single-world state loop (engine + scheduler + WAL,
// unchanged) over its slice of the network, and a Gateway fronting the
// shards speaks the ctl protocol, routing each submitted event to the
// shard owning its endpoints' pods. Events whose endpoints span shards
// take a two-phase admission path over the reserved cross-shard core
// pool (see CrossAdmitter) before landing on their home shard.
package shard

import (
	"fmt"
	"sort"

	"netupdate/internal/topology"
)

// PodMapper exposes a topology's pod structure: how many pods there are
// and which pod a node belongs to (-1 for pod-less nodes — fat-tree
// cores, leaf-spine spines). Both *topology.FatTree and
// *topology.LeafSpine satisfy it.
type PodMapper interface {
	NumPods() int
	PodOf(topology.NodeID) int
}

// Partition assigns pods to N shards in contiguous runs: shard s
// (1-based) owns pods [⌈(s-1)·P/N⌉, ⌈s·P/N⌉). Contiguity keeps the map
// describable by two integers per shard and makes ownership stable as
// shards are added in powers of two.
type Partition struct {
	mapper PodMapper
	n      int
}

// NewPartition builds a partition of m's pods over n shards. Every
// shard must own at least one pod, so n is capped by the pod count.
func NewPartition(m PodMapper, n int) (*Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, have %d", n)
	}
	if p := m.NumPods(); n > p {
		return nil, fmt.Errorf("shard: %d shards over %d pods leaves empty shards", n, p)
	}
	return &Partition{mapper: m, n: n}, nil
}

// N reports the shard count.
func (p *Partition) N() int { return p.n }

// OfPod returns the 1-based shard owning pod, or 0 for pods outside
// [0, NumPods).
func (p *Partition) OfPod(pod int) int {
	if pod < 0 || pod >= p.mapper.NumPods() {
		return 0
	}
	return pod*p.n/p.mapper.NumPods() + 1
}

// PodsOf returns the pods shard s (1-based) owns, in ascending order.
func (p *Partition) PodsOf(s int) []int {
	var pods []int
	for pod := 0; pod < p.mapper.NumPods(); pod++ {
		if p.OfPod(pod) == s {
			pods = append(pods, pod)
		}
	}
	return pods
}

// Key classifies one event by the shards its endpoints' pods resolve
// to: Home is the routing destination (the lowest touched shard), and
// Cross marks events spanning more than one shard, which must hold
// cross-pool core capacity on every touched shard before admission.
type Key struct {
	Home    int
	Cross   bool
	Touched []int // ascending, at least [Home]
}

// KeyOf resolves an event's endpoint set to its shard key. An endpoint
// with no pod (a core or spine switch — possible only for synthetic
// specs, never host-to-host traffic) is conservatively treated as
// touching every shard.
func (p *Partition) KeyOf(endpoints []topology.NodeID) Key {
	touched := make(map[int]struct{})
	for _, ep := range endpoints {
		pod := p.mapper.PodOf(ep)
		if pod < 0 {
			for s := 1; s <= p.n; s++ {
				touched[s] = struct{}{}
			}
			break
		}
		touched[p.OfPod(pod)] = struct{}{}
	}
	if len(touched) == 0 {
		// No endpoints (an empty event): route to shard 1, whose
		// validation will reject it with the same error an unsharded
		// server gives.
		return Key{Home: 1, Touched: []int{1}}
	}
	ids := make([]int, 0, len(touched))
	for s := range touched {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	return Key{Home: ids[0], Cross: len(ids) > 1, Touched: ids}
}

// LinkOwner resolves a link to the shard owning both its endpoints, or
// 0 when the link crosses shards or touches a pod-less node (core
// links): those belong to the shared core layer.
func (p *Partition) LinkOwner(from, to topology.NodeID) int {
	fp, tp := p.mapper.PodOf(from), p.mapper.PodOf(to)
	if fp < 0 || tp < 0 {
		return 0
	}
	fs, ts := p.OfPod(fp), p.OfPod(tp)
	if fs != ts {
		return 0
	}
	return fs
}
