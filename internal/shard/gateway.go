package shard

import (
	"fmt"
	"net"
	"time"

	"netupdate/internal/ctl"
	"netupdate/internal/obs"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
)

// Gateway fronts N shard engines with one ctl endpoint: it speaks the
// full v1/v2 protocol (through the same ctl.WireServer the engine
// server uses, so codecs cannot drift), routes every submitted event to
// the shard owning its pods, two-phase-admits cross-shard events
// against the reserved core pool, and fans per-shard answers back into
// the single-controller response shapes clients already understand.
//
// Fan-out is always in ascending shard order and, within one
// connection, requests are handled one at a time — the gateway adds no
// nondeterminism of its own, which is what keeps a re-run of the same
// workload byte-identical per shard.
type Gateway struct {
	part     *Partition
	graph    *topology.Graph // reference topology, for fault routing
	cross    *CrossAdmitter
	backends []ctl.Backend // index s-1 holds shard s
	wire     *ctl.WireServer

	reg      *obs.Registry
	routed   *obs.Counter
	fanouts  *obs.Counter
	crossAdm *obs.Counter
	crossRej *obs.Counter
}

// NewGateway wires a gateway over the given backends. part decides
// event routing, graph is the reference topology fault specs are
// resolved against, and cross holds the cross-shard pool ledgers (nil
// disables the pool check, admitting every cross event).
func NewGateway(part *Partition, graph *topology.Graph, cross *CrossAdmitter, backends []ctl.Backend) (*Gateway, error) {
	if len(backends) != part.N() {
		return nil, fmt.Errorf("shard: %d backends for %d shards", len(backends), part.N())
	}
	reg := obs.NewRegistry()
	gw := &Gateway{
		part:     part,
		graph:    graph,
		cross:    cross,
		backends: backends,
		reg:      reg,
		routed:   reg.NewCounter("netupdate_gateway_routed_events_total", "Events routed to a home shard."),
		fanouts:  reg.NewCounter("netupdate_gateway_fanouts_total", "Requests fanned out to every shard."),
		crossAdm: reg.NewCounter("netupdate_gateway_cross_admitted_total", "Cross-shard events admitted through the core pool."),
		crossRej: reg.NewCounter("netupdate_gateway_cross_rejected_total", "Cross-shard events refused for core-pool exhaustion."),
	}
	gw.wire = &ctl.WireServer{Handle: gw.Handle}
	return gw, nil
}

// Registry exposes the gateway's own metrics (routing and cross-pool
// counters) for /metrics.
func (gw *Gateway) Registry() *obs.Registry { return gw.reg }

// Serve accepts ctl connections on l until Close.
func (gw *Gateway) Serve(l net.Listener) error { return gw.wire.Serve(l) }

// ListenAndServe listens on addr and serves until Close.
func (gw *Gateway) ListenAndServe(addr string) error { return gw.wire.ListenAndServe(addr) }

// Close stops the wire. The backends are owned by the caller (an
// in-process Cluster or dialed remote clients) and are not closed.
func (gw *Gateway) Close() error { return gw.wire.Close() }

// Handle answers one decoded request; it is the WireServer handler and
// the in-process entry point for tests.
func (gw *Gateway) Handle(req ctl.Request, ingestWall int64) ctl.Response {
	switch req.Op {
	case ctl.OpPing:
		return ctl.Response{OK: true, Features: []string{ctl.FeatureSpanContext, ctl.FeatureShardVerdicts}}

	case ctl.OpSubmit, ctl.OpSubmitBatch:
		return gw.submit(req)

	case ctl.OpStatus:
		return gw.status(req)

	case ctl.OpResults:
		var all []ctl.EventStatus
		for s := 1; s <= gw.part.N(); s++ {
			resp := gw.backends[s-1].Do(ctl.Request{Op: ctl.OpResults})
			if !resp.OK {
				return resp
			}
			all = append(all, resp.Results...)
		}
		gw.fanouts.Inc()
		return ctl.Response{OK: true, Results: all}

	case ctl.OpStats:
		return gw.stats()

	case ctl.OpTrace:
		var all []obs.Record
		for s := 1; s <= gw.part.N(); s++ {
			resp := gw.backends[s-1].Do(ctl.Request{Op: ctl.OpTrace, N: req.N})
			if !resp.OK {
				return resp
			}
			for _, rec := range resp.Trace {
				rec.Shard = s
				all = append(all, rec)
			}
		}
		gw.fanouts.Inc()
		return ctl.Response{OK: true, Trace: all}

	case ctl.OpSnapshot:
		// One shard's world stands in for the cluster: every world
		// replicates the full topology, so shard 1's snapshot carries the
		// complete graph (with its own pods' flows placed).
		return gw.backends[0].Do(req)

	case ctl.OpFault:
		return gw.fault(req)

	case ctl.OpReplStatus, ctl.OpReplPromote:
		return ctl.Response{OK: false, Error: fmt.Sprintf("%v: %s not supported through the gateway (address a shard directly)", ctl.ErrBadRequest, req.Op)}

	default:
		return ctl.Response{OK: false, Error: fmt.Sprintf("%v: unknown op %q", ctl.ErrBadRequest, req.Op)}
	}
}

// endpointsOf collects a spec's flow endpoints for shard-key
// resolution.
func endpointsOf(spec *ctl.EventSpec) []topology.NodeID {
	eps := make([]topology.NodeID, 0, 2*len(spec.Flows))
	for _, f := range spec.Flows {
		eps = append(eps, topology.NodeID(f.Src), topology.NodeID(f.Dst))
	}
	return eps
}

// demandOf is a spec's aggregate demand — what a cross-shard event
// holds from each touched shard's core pool.
func demandOf(spec *ctl.EventSpec) int64 {
	var d int64
	for _, f := range spec.Flows {
		d += f.DemandBps
	}
	return d
}

// submit routes the events of one submit or submit-batch request to
// their home shards and reassembles the verdicts in submission order.
// Cross-shard events first hold their demand from every touched shard's
// core pool (two-phase, all-or-nothing); a pool refusal surfaces as an
// overload verdict, and a pool admission whose home engine then refuses
// the event is released.
func (gw *Gateway) submit(req ctl.Request) ctl.Response {
	specs := req.Events
	if req.Op == ctl.OpSubmit {
		specs = []ctl.EventSpec{*req.Event}
	}
	verdicts := make([]ctl.SubmitVerdict, len(specs))
	keys := make([]Key, len(specs))
	groups := make(map[int][]int, gw.part.N()) // home shard -> spec indexes, in order
	for i := range specs {
		k := gw.part.KeyOf(endpointsOf(&specs[i]))
		keys[i] = k
		if k.Cross && gw.cross != nil {
			if err := gw.cross.Admit(k.Touched, demandOf(&specs[i])); err != nil {
				verdicts[i] = ctl.SubmitVerdict{Error: err.Error(), Overloaded: true}
				gw.crossRej.Inc()
				continue
			}
			gw.crossAdm.Inc()
		}
		groups[k.Home] = append(groups[k.Home], i)
	}

	var overload *ctl.OverloadInfo
	for s := 1; s <= gw.part.N(); s++ {
		idxs := groups[s]
		if len(idxs) == 0 {
			continue
		}
		sub := make([]ctl.EventSpec, len(idxs))
		for j, i := range idxs {
			sub[j] = specs[i]
		}
		resp := gw.backends[s-1].Do(ctl.Request{
			Op: ctl.OpSubmitBatch, Events: sub,
			Retry: req.Retry, Span: req.Span, ShardInfo: true,
		})
		if !resp.OK || len(resp.Verdicts) != len(idxs) {
			errText := resp.Error
			if resp.OK {
				errText = fmt.Sprintf("shard %d: %d verdicts for %d events", s, len(resp.Verdicts), len(idxs))
			}
			for _, i := range idxs {
				verdicts[i] = ctl.SubmitVerdict{Error: errText}
				gw.release(keys[i], &specs[i])
			}
			continue
		}
		if resp.Overload != nil && overload == nil {
			overload = resp.Overload
		}
		for j, i := range idxs {
			v := resp.Verdicts[j]
			if v.Shard == 0 {
				v.Shard = s
			}
			verdicts[i] = v
			if v.OK {
				gw.routed.Inc()
			} else {
				gw.release(keys[i], &specs[i])
			}
		}
	}

	if req.Op == ctl.OpSubmit {
		v := verdicts[0]
		if !v.OK {
			return ctl.Response{OK: false, Error: v.Error, Overload: overload}
		}
		return ctl.Response{OK: true, EventID: v.EventID}
	}
	return ctl.Response{OK: true, Verdicts: verdicts, Overload: overload}
}

// release returns a cross event's pool debit after its home engine
// refused it.
func (gw *Gateway) release(k Key, spec *ctl.EventSpec) {
	if k.Cross && gw.cross != nil {
		gw.cross.Release(k.Touched, demandOf(spec))
	}
}

// status routes a status query by the event-ID lattice: shard s of N
// mints s, s+N, s+2N, …, so the owner is ((id-1) mod N)+1. Repair
// events are minted engine-locally above sim.RepairEventIDBase outside
// the lattice, so those fan out to whichever shard knows the ID.
func (gw *Gateway) status(req ctl.Request) ctl.Response {
	id := req.EventID
	if id >= int64(sim.RepairEventIDBase) {
		gw.fanouts.Inc()
		for s := 1; s <= gw.part.N(); s++ {
			resp := gw.backends[s-1].Do(req)
			if resp.OK && resp.Status != nil && resp.Status.State != ctl.StateUnknown {
				return resp
			}
		}
		return ctl.Response{OK: true, Status: &ctl.EventStatus{EventID: id, State: ctl.StateUnknown}}
	}
	if id < 1 {
		return ctl.Response{OK: true, Status: &ctl.EventStatus{EventID: id, State: ctl.StateUnknown}}
	}
	s := int((id-1)%int64(gw.part.N())) + 1
	return gw.backends[s-1].Do(req)
}

// fault routes a fault injection: a fault scoped to one shard's pods
// goes only there, while faults on the shared layers (core links, core
// switches) and event-install faults outside any lattice hit every
// world — each shard replicates the full topology, so a core failure
// must degrade all of them coherently.
func (gw *Gateway) fault(req ctl.Request) ctl.Response {
	f := req.Fault
	if f == nil {
		return ctl.Response{OK: false, Error: fmt.Sprintf("%v: fault spec missing", ctl.ErrBadRequest)}
	}
	owner := 0
	switch f.Action {
	case "link-down", "link-up":
		if f.Link < 0 || f.Link >= gw.graph.NumLinks() {
			return ctl.Response{OK: false, Error: fmt.Sprintf("%v: link %d out of range", ctl.ErrBadRequest, f.Link)}
		}
		l := gw.graph.Link(topology.LinkID(f.Link))
		owner = gw.part.LinkOwner(l.From, l.To)
	case "switch-down", "switch-up":
		if pod := gw.part.mapper.PodOf(topology.NodeID(f.Node)); pod >= 0 {
			owner = gw.part.OfPod(pod)
		}
	case "install-timeout":
		if f.Event >= 1 && f.Event < int64(sim.RepairEventIDBase) {
			owner = int((f.Event-1)%int64(gw.part.N())) + 1
		}
	}
	if owner > 0 {
		return gw.backends[owner-1].Do(req)
	}
	// Shared-layer fault: apply to every world, fold the results.
	gw.fanouts.Inc()
	var agg *ctl.FaultResult
	for s := 1; s <= gw.part.N(); s++ {
		resp := gw.backends[s-1].Do(req)
		if !resp.OK {
			return resp
		}
		r := resp.Fault
		if r == nil {
			continue
		}
		if agg == nil {
			cp := *r
			agg = &cp
			continue
		}
		agg.FlowsAffected += r.FlowsAffected
		agg.LinksDown += r.LinksDown
		if r.LinksChanged > agg.LinksChanged {
			agg.LinksChanged = r.LinksChanged
		}
		if agg.RepairEventID == 0 {
			agg.RepairEventID = r.RepairEventID
		}
	}
	return ctl.Response{OK: true, Fault: agg}
}

// stats fans in every shard's stats and folds them into one
// cluster-wide view: counters sum, averages weight by completed events,
// the virtual clock is the furthest shard's, and the cross-pool
// counters come from the gateway's own ledgers.
func (gw *Gateway) stats() ctl.Response {
	per := make([]ctl.Stats, 0, gw.part.N())
	for s := 1; s <= gw.part.N(); s++ {
		resp := gw.backends[s-1].Do(ctl.Request{Op: ctl.OpStats})
		if !resp.OK {
			return resp
		}
		if resp.Stats == nil {
			return ctl.Response{OK: false, Error: fmt.Sprintf("shard %d: stats: empty response", s)}
		}
		per = append(per, *resp.Stats)
	}
	gw.fanouts.Inc()
	agg := mergeStats(per)
	if gw.cross != nil {
		adm, rej := gw.cross.Counters()
		agg.CrossEvents = adm
		agg.CrossRejected = rej
	}
	return ctl.Response{OK: true, Stats: agg}
}

func mergeStats(per []ctl.Stats) *ctl.Stats {
	agg := &ctl.Stats{
		Scheduler:       per[0].Scheduler,
		IngestWatermark: per[0].IngestWatermark,
		Shards:          len(per),
	}
	var utilSum float64
	var ectWeighted, queueWeighted int64
	for i := range per {
		p := &per[i]
		utilSum += p.Utilization
		agg.FlowsPlaced += p.FlowsPlaced
		agg.EventsQueued += p.EventsQueued
		agg.EventsDone += p.EventsDone
		agg.TotalCostBps += p.TotalCostBps
		ectWeighted += int64(p.AvgECT) * int64(p.EventsDone)
		queueWeighted += int64(p.AvgQueuingDelay) * int64(p.EventsDone)
		if p.TailECT > agg.TailECT {
			agg.TailECT = p.TailECT
		}
		agg.PlanTime += p.PlanTime
		if p.VirtualClock > agg.VirtualClock {
			agg.VirtualClock = p.VirtualClock
		}
		agg.ProbeCacheHits += p.ProbeCacheHits
		agg.ProbeCacheMisses += p.ProbeCacheMisses
		agg.ProbeColdPlans += p.ProbeColdPlans
		agg.ProbeIncrementalReplans += p.ProbeIncrementalReplans
		agg.Rounds += p.Rounds
		agg.FaultsInjected += p.FaultsInjected
		agg.LinksDown += p.LinksDown
		agg.RepairEvents += p.RepairEvents
		agg.FlowsDisrupted += p.FlowsDisrupted
		agg.InstallRetries += p.InstallRetries
		agg.InstallRollbacks += p.InstallRollbacks
		agg.IngestAccepted += p.IngestAccepted
		agg.IngestRejected += p.IngestRejected
		agg.IngestRetried += p.IngestRetried
		agg.IngestBatches += p.IngestBatches
		agg.CodecV2Conns += p.CodecV2Conns
		agg.FramesV1 += p.FramesV1
		agg.FramesV2 += p.FramesV2
		agg.WALEnabled = agg.WALEnabled || p.WALEnabled
		if p.WALLastSeq > agg.WALLastSeq {
			agg.WALLastSeq = p.WALLastSeq
		}
		if p.WALCheckpointSeq > agg.WALCheckpointSeq {
			agg.WALCheckpointSeq = p.WALCheckpointSeq
		}
		agg.WALAppends += p.WALAppends
		agg.WALCheckpoints += p.WALCheckpoints
		agg.WALReplayed += p.WALReplayed
		if p.WALRecoveryMs > agg.WALRecoveryMs {
			agg.WALRecoveryMs = p.WALRecoveryMs
		}
		if p.WALSyncPolicy != "" && agg.WALSyncPolicy == "" {
			agg.WALSyncPolicy = p.WALSyncPolicy
		}
		agg.WALFsyncCount += p.WALFsyncCount
		// Percentiles cannot be merged exactly; the cluster view reports
		// the worst shard's, a conservative bound.
		agg.WALFsyncP50Ns = max(agg.WALFsyncP50Ns, p.WALFsyncP50Ns)
		agg.WALFsyncP99Ns = max(agg.WALFsyncP99Ns, p.WALFsyncP99Ns)
		agg.LatencyE2EP50Ns = max(agg.LatencyE2EP50Ns, p.LatencyE2EP50Ns)
		agg.LatencyE2EP95Ns = max(agg.LatencyE2EP95Ns, p.LatencyE2EP95Ns)
		agg.LatencyE2EP99Ns = max(agg.LatencyE2EP99Ns, p.LatencyE2EP99Ns)
		agg.LatencyE2EP999Ns = max(agg.LatencyE2EP999Ns, p.LatencyE2EP999Ns)
		agg.LatencyQueueP50Ns = max(agg.LatencyQueueP50Ns, p.LatencyQueueP50Ns)
		agg.LatencyQueueP99Ns = max(agg.LatencyQueueP99Ns, p.LatencyQueueP99Ns)
		agg.LatencyRoundsP50Ns = max(agg.LatencyRoundsP50Ns, p.LatencyRoundsP50Ns)
		agg.LatencyRoundsP99Ns = max(agg.LatencyRoundsP99Ns, p.LatencyRoundsP99Ns)
		agg.SpansDropped += p.SpansDropped
	}
	agg.Utilization = utilSum / float64(len(per))
	if agg.EventsDone > 0 {
		agg.AvgECT = time.Duration(ectWeighted / int64(agg.EventsDone))
		agg.AvgQueuingDelay = time.Duration(queueWeighted / int64(agg.EventsDone))
	}
	if total := agg.ProbeCacheHits + agg.ProbeCacheMisses; total > 0 {
		agg.ProbeHitRate = float64(agg.ProbeCacheHits) / float64(total)
	}
	return agg
}
