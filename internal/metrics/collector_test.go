package metrics

import (
	"strings"
	"testing"
	"time"

	"netupdate/internal/flow"
	"netupdate/internal/topology"
)

func sampleCollector() *Collector {
	c := NewCollector()
	// Three events arriving at t=0: ECTs 2s, 4s, 9s; delays 1s, 3s, 5s.
	rows := []struct {
		id               int
		start, completed time.Duration
		cost             topology.Bandwidth
		evals            int
		failed           int
	}{
		{1, 1 * time.Second, 2 * time.Second, 100 * topology.Mbps, 10, 0},
		{2, 3 * time.Second, 4 * time.Second, 200 * topology.Mbps, 20, 1},
		{3, 5 * time.Second, 9 * time.Second, 300 * topology.Mbps, 30, 0},
	}
	for _, r := range rows {
		c.Add(EventRecord{
			Event: flow.EventID(r.id), Kind: "test", Flows: 2, Failed: r.failed,
			Arrival: 0, Start: r.start, Completion: r.completed,
			Cost: r.cost, PlanEvals: r.evals,
		})
	}
	c.DecisionEvals = 5
	return c
}

func TestCollectorAggregates(t *testing.T) {
	c := sampleCollector()
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if got, want := c.AvgECT(), 5*time.Second; got != want {
		t.Errorf("AvgECT = %v, want %v", got, want)
	}
	if got, want := c.TailECT(), 9*time.Second; got != want {
		t.Errorf("TailECT = %v, want %v", got, want)
	}
	if got, want := c.TotalCost(), 600*topology.Mbps; got != want {
		t.Errorf("TotalCost = %v, want %v", got, want)
	}
	if got, want := c.TotalPlanEvals(), 65; got != want {
		t.Errorf("TotalPlanEvals = %d, want %d", got, want)
	}
	if got, want := c.AvgQueuingDelay(), 3*time.Second; got != want {
		t.Errorf("AvgQueuingDelay = %v, want %v", got, want)
	}
	if got, want := c.WorstQueuingDelay(), 5*time.Second; got != want {
		t.Errorf("WorstQueuingDelay = %v, want %v", got, want)
	}
	if got := c.TotalFailed(); got != 1 {
		t.Errorf("TotalFailed = %d, want 1", got)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if c.AvgECT() != 0 || c.TailECT() != 0 || c.TotalCost() != 0 ||
		c.AvgQueuingDelay() != 0 || c.WorstQueuingDelay() != 0 {
		t.Error("empty collector returned nonzero aggregates")
	}
	if c.PercentileECT(99) != 0 {
		t.Error("empty PercentileECT != 0")
	}
	if got := c.QueuingDelays(); len(got) != 0 {
		t.Errorf("QueuingDelays = %v, want empty", got)
	}
}

func TestPercentileECT(t *testing.T) {
	c := sampleCollector()
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{100, 9 * time.Second},
		{50, 4 * time.Second},
		{1, 2 * time.Second},
		{0, 0},                 // empty prefix: no sample value
		{-5, 0},                // same for any non-positive p
		{150, 9 * time.Second}, // clamped down
	}
	for _, tt := range tests {
		if got := c.PercentileECT(tt.p); got != tt.want {
			t.Errorf("PercentileECT(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	c := NewCollector()
	c.Add(EventRecord{Event: 1, Arrival: 0, Start: time.Second, Completion: 3 * time.Second})
	for _, p := range []float64{1, 50, 100, 150} {
		if got, want := c.PercentileECT(p), 3*time.Second; got != want {
			t.Errorf("PercentileECT(%v) = %v, want %v", p, got, want)
		}
	}
	if got := c.PercentileECT(0); got != 0 {
		t.Errorf("PercentileECT(0) = %v, want 0", got)
	}
}

func TestProbeHitRate(t *testing.T) {
	c := NewCollector()
	if got := c.ProbeHitRate(); got != 0 {
		t.Errorf("ProbeHitRate with no probes = %v, want 0", got)
	}
	c.ProbeCacheHits, c.ProbeCacheMisses = 3, 1
	if got := c.ProbeHitRate(); got != 0.75 {
		t.Errorf("ProbeHitRate = %v, want 0.75", got)
	}
}

func TestSortedByArrival(t *testing.T) {
	c := NewCollector()
	// Completion order 3, 1, 2; arrival order 1, 2, 3 (2 and 3 tie on
	// arrival time and must fall back to event-ID order).
	c.Add(EventRecord{Event: 3, Arrival: 2 * time.Second, Start: 9 * time.Second, Completion: 10 * time.Second})
	c.Add(EventRecord{Event: 1, Arrival: 1 * time.Second, Start: 3 * time.Second, Completion: 4 * time.Second})
	c.Add(EventRecord{Event: 2, Arrival: 2 * time.Second, Start: 5 * time.Second, Completion: 6 * time.Second})
	got := c.SortedByArrival()
	for i, want := range []flow.EventID{1, 2, 3} {
		if got[i].Event != want {
			t.Errorf("SortedByArrival[%d] = event %d, want %d", i, got[i].Event, want)
		}
	}
	// The returned slice is a copy: mutating it must not affect the
	// collector's completion-order records.
	got[0].Cost = 999
	if c.Records()[0].Cost == 999 {
		t.Error("mutating SortedByArrival() copy changed collector state")
	}
}

func TestQueuingDelaysByArrivalOrder(t *testing.T) {
	c := NewCollector()
	// Completion order differs from arrival order.
	c.Add(EventRecord{Event: 2, Arrival: 2 * time.Second, Start: 10 * time.Second, Completion: 11 * time.Second})
	c.Add(EventRecord{Event: 1, Arrival: 1 * time.Second, Start: 4 * time.Second, Completion: 5 * time.Second})
	got := c.QueuingDelays()
	want := []time.Duration{3 * time.Second, 8 * time.Second}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("QueuingDelays[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRecordsIsCopy(t *testing.T) {
	c := sampleCollector()
	recs := c.Records()
	recs[0].Cost = 0
	if c.Records()[0].Cost == 0 {
		t.Error("mutating Records() copy changed collector state")
	}
}

func TestReductionAndSpeedup(t *testing.T) {
	if got := Reduction(10*time.Second, 4*time.Second); got != 0.6 {
		t.Errorf("Reduction = %v, want 0.6", got)
	}
	if got := Reduction(0, time.Second); got != 0 {
		t.Errorf("Reduction(0, x) = %v, want 0", got)
	}
	if got := ReductionB(100*topology.Mbps, 25*topology.Mbps); got != 0.75 {
		t.Errorf("ReductionB = %v, want 0.75", got)
	}
	if got := ReductionB(0, topology.Mbps); got != 0 {
		t.Errorf("ReductionB(0, x) = %v, want 0", got)
	}
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Errorf("Speedup = %v, want 5", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Errorf("Speedup(x, 0) = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "col-a", "b")
	tb.AddRow("x", 1.23456)
	tb.AddRow("longer-cell", 2)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
	if tb.Title() != "Fig X" {
		t.Errorf("Title = %q", tb.Title())
	}
	out := tb.String()
	for _, want := range []string{"Fig X", "col-a", "1.235", "longer-cell", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("title ignored", "a", "b")
	tb.AddRow("x,with comma", 1.5)
	tb.AddRow("y", 2)
	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n\"x,with comma\",1.500\ny,2\n"
	if got != want {
		t.Errorf("WriteCSV = %q, want %q", got, want)
	}
}
