package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as an aligned text table, the output
// format of every experiment runner and of cmd/netupdate.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for pad := len(cell); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("table render error: %v", err)
	}
	return b.String()
}

// WriteCSV renders the table as RFC-4180 CSV (header row then data rows);
// the title is not emitted. Use it to feed the regenerated figures into
// plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return fmt.Errorf("metrics: csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: csv flush: %w", err)
	}
	return nil
}
