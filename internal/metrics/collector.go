// Package metrics collects per-event outcomes of a simulation run and
// computes the evaluation metrics of Section V-A: total update cost,
// average ECT, tail ECT, total plan time, and event queuing delay
// (average, worst-case and per-event).
package metrics

import (
	"sort"
	"time"

	"netupdate/internal/flow"
	"netupdate/internal/topology"
)

// EventRecord captures one completed update event.
type EventRecord struct {
	// Event identifies the event.
	Event flow.EventID
	// Kind is the event's label.
	Kind string
	// Flows is the number of flows the event admitted; Failed counts
	// specs that could not be admitted.
	Flows  int
	Failed int
	// Arrival, Start and Completion are virtual times.
	Arrival    time.Duration
	Start      time.Duration
	Completion time.Duration
	// Cost is the realized Cost(U) — migrated traffic.
	Cost topology.Bandwidth
	// PlanEvals is the planning work attributable to this event
	// (decision probes are accounted separately on the Collector).
	PlanEvals int
	// Retries counts rule-install attempts that timed out (injected
	// faults) before the event's installs finally went through.
	Retries int
	// RolledBack marks an event whose installs exhausted the retry budget:
	// its bandwidth plan was reverted and all specs recorded as failed.
	RolledBack bool
}

// ECT is the event completion time (completion - arrival).
func (r EventRecord) ECT() time.Duration { return r.Completion - r.Arrival }

// QueuingDelay is the time spent waiting in the update queue.
func (r EventRecord) QueuingDelay() time.Duration { return r.Start - r.Arrival }

// Collector accumulates event records and scheduler-level counters over
// one simulation run.
type Collector struct {
	records []EventRecord
	// DecisionEvals counts planning work spent inside scheduler decisions
	// (LMTF/P-LMTF probes, Reorder scans).
	DecisionEvals int
	// PlanTime is the total simulated planning time of the run.
	PlanTime time.Duration
	// Makespan is the virtual time at which the run finished.
	Makespan time.Duration
	// ProbeCacheHits and ProbeCacheMisses count scheduler cost probes
	// answered from the epoch-based probe cache versus freshly planned.
	ProbeCacheHits   int
	ProbeCacheMisses int
	// ProbeCold and ProbeIncremental split the misses: full trial-plans
	// of never-cached events versus re-plans of cache entries invalidated
	// by link changes. ProbeJournalMisses counts times the probe engine
	// fell behind the graph's change journal and had to treat every
	// cached entry as dirty.
	ProbeCold          int
	ProbeIncremental   int
	ProbeJournalMisses int
	// ProbeForks counts scratch-network forks created for parallel probing;
	// ProbeResyncs counts fork refreshes after live-state commits.
	ProbeForks   int
	ProbeResyncs int
	// ProbeWallTime is real (not simulated) wall-clock time spent probing.
	ProbeWallTime time.Duration
	// FaultsInjected counts fault injections applied to the run.
	FaultsInjected int
	// RepairEvents counts update events minted from link/switch failures
	// (disrupted flows re-admitted through the normal scheduling path).
	RepairEvents int
	// FlowsDisrupted counts placed flows withdrawn by link/switch failures.
	FlowsDisrupted int
	// InstallRetries counts timed-out rule-install attempts that were
	// retried with backoff; InstallRollbacks counts events rolled back
	// after exhausting the retry budget.
	InstallRetries   int
	InstallRollbacks int
}

// ProbeHitRate returns the probe cache hit rate, 0 when no probes ran.
func (c *Collector) ProbeHitRate() float64 {
	total := c.ProbeCacheHits + c.ProbeCacheMisses
	if total == 0 {
		return 0
	}
	return float64(c.ProbeCacheHits) / float64(total)
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends a completed event record.
func (c *Collector) Add(r EventRecord) { c.records = append(c.records, r) }

// Restore replaces the record list with a checkpointed one (completion
// order preserved). Scalar counters are exported fields and are
// restored by direct assignment; this covers the unexported records.
func (c *Collector) Restore(records []EventRecord) {
	c.records = append(c.records[:0], records...)
}

// Len returns the number of recorded events.
func (c *Collector) Len() int { return len(c.records) }

// Records returns a copy of all records in completion order.
func (c *Collector) Records() []EventRecord {
	out := make([]EventRecord, len(c.records))
	copy(out, c.records)
	return out
}

// TotalCost sums Cost(U) over all events (Fig. 6a).
func (c *Collector) TotalCost() topology.Bandwidth {
	var total topology.Bandwidth
	for _, r := range c.records {
		total += r.Cost
	}
	return total
}

// TotalPlanEvals sums per-event planning work plus decision probes.
func (c *Collector) TotalPlanEvals() int {
	total := c.DecisionEvals
	for _, r := range c.records {
		total += r.PlanEvals
	}
	return total
}

// AvgECT is the mean event completion time (Figs. 4–7).
func (c *Collector) AvgECT() time.Duration {
	return meanDuration(c.ects())
}

// TailECT is the maximum event completion time. With the paper's queue
// sizes (10–50 events) the tail is effectively the worst case.
func (c *Collector) TailECT() time.Duration {
	return maxDuration(c.ects())
}

// PercentileECT returns the p-th percentile of ECTs using nearest-rank
// on the sorted sample. p is meaningful on (0, 100]; p <= 0 returns 0
// (an empty prefix has no value) and p > 100 clamps to the maximum.
func (c *Collector) PercentileECT(p float64) time.Duration {
	return percentile(c.ects(), p)
}

// AvgQueuingDelay is the mean event queuing delay (Fig. 8).
func (c *Collector) AvgQueuingDelay() time.Duration {
	return meanDuration(c.delays())
}

// WorstQueuingDelay is the maximum event queuing delay (Fig. 8).
func (c *Collector) WorstQueuingDelay() time.Duration {
	return maxDuration(c.delays())
}

// SortedByArrival returns a copy of all records sorted by arrival time
// (ties broken by event ID). Callers that need arrival-ordered views
// share this one sort instead of re-sorting per metric.
func (c *Collector) SortedByArrival() []EventRecord {
	byArrival := c.Records()
	sort.SliceStable(byArrival, func(i, j int) bool {
		if byArrival[i].Arrival != byArrival[j].Arrival {
			return byArrival[i].Arrival < byArrival[j].Arrival
		}
		return byArrival[i].Event < byArrival[j].Event
	})
	return byArrival
}

// QueuingDelays returns each event's queuing delay indexed by arrival
// order (Fig. 9 plots these per event).
func (c *Collector) QueuingDelays() []time.Duration {
	byArrival := c.SortedByArrival()
	out := make([]time.Duration, len(byArrival))
	for i, r := range byArrival {
		out[i] = r.QueuingDelay()
	}
	return out
}

// TotalFailed counts flows that could not be admitted across all events.
func (c *Collector) TotalFailed() int {
	total := 0
	for _, r := range c.records {
		total += r.Failed
	}
	return total
}

func (c *Collector) ects() []time.Duration {
	out := make([]time.Duration, len(c.records))
	for i, r := range c.records {
		out[i] = r.ECT()
	}
	return out
}

func (c *Collector) delays() []time.Duration {
	out := make([]time.Duration, len(c.records))
	for i, r := range c.records {
		out[i] = r.QueuingDelay()
	}
	return out
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

func maxDuration(ds []time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return max
}

// percentile is the nearest-rank percentile of ds. The contract: an
// empty sample or p <= 0 yields 0 (a non-positive percentile selects an
// empty prefix, so there is no sample value to report — not the minimum,
// which p just above 0 would give); p > 100 clamps to the maximum.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Reduction returns the fractional reduction of value relative to base:
// 1 - value/base (0 when base is 0). The paper reports most results as
// reductions against FIFO.
func Reduction(base, value time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(value)/float64(base)
}

// ReductionB is Reduction for bandwidth-valued metrics (total cost).
func ReductionB(base, value topology.Bandwidth) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(value)/float64(base)
}

// Speedup returns base/value (how many times faster value is), 0 when
// value is 0. The paper's "up to 10x faster" claims are speedups.
func Speedup(base, value time.Duration) float64 {
	if value == 0 {
		return 0
	}
	return float64(base) / float64(value)
}
