// Package snapshot serializes network state — topology, placed flows and
// their paths — to JSON and restores it. Snapshots make experiment states
// reproducible artifacts: a loaded fabric can be captured once and
// restored for debugging, and the controller daemon can checkpoint its
// world across restarts.
//
// Bandwidth reservations are not stored explicitly: they are derivable
// (and are re-derived, which re-validates the congestion-free invariant)
// by replaying the placements.
package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// FormatVersion identifies the snapshot schema.
const FormatVersion = 1

// ErrBadSnapshot is returned when a snapshot fails validation.
var ErrBadSnapshot = errors.New("snapshot: invalid snapshot")

// Node is one serialized graph node.
type Node struct {
	Kind int    `json:"kind"`
	Name string `json:"name"`
}

// Link is one serialized directed link.
type Link struct {
	From        int   `json:"from"`
	To          int   `json:"to"`
	CapacityBps int64 `json:"capacity_bps"`
}

// Flow is one serialized flow, placed or not.
type Flow struct {
	Src       int   `json:"src"`
	Dst       int   `json:"dst"`
	DemandBps int64 `json:"demand_bps"`
	SizeBytes int64 `json:"size_bytes"`
	Event     int64 `json:"event,omitempty"`
	// PathLinks is the placed route as link indices (nil = unplaced).
	PathLinks []int `json:"path_links,omitempty"`
}

// Snapshot is the serialized world.
type Snapshot struct {
	Version int    `json:"version"`
	Nodes   []Node `json:"nodes"`
	Links   []Link `json:"links"`
	Flows   []Flow `json:"flows"`
	// DownLinks lists currently failed links by index, so a restored
	// world routes around the same failures the captured one did.
	DownLinks []int `json:"down_links,omitempty"`
}

// Capture serializes the network's graph and flows.
func Capture(net *netstate.Network) *Snapshot {
	g := net.Graph()
	snap := &Snapshot{Version: FormatVersion}
	for _, n := range g.Nodes() {
		snap.Nodes = append(snap.Nodes, Node{Kind: int(n.Kind), Name: n.Name})
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		snap.Links = append(snap.Links, Link{
			From:        int(l.From),
			To:          int(l.To),
			CapacityBps: int64(l.Capacity),
		})
		if l.Down() {
			snap.DownLinks = append(snap.DownLinks, i)
		}
	}
	for _, f := range net.Registry().All() {
		sf := Flow{
			Src:       int(f.Src),
			Dst:       int(f.Dst),
			DemandBps: int64(f.Demand),
			SizeBytes: f.Size,
			Event:     int64(f.Event),
		}
		if f.Placed() {
			for _, l := range f.Path().Links() {
				sf.PathLinks = append(sf.PathLinks, int(l))
			}
		}
		snap.Flows = append(snap.Flows, sf)
	}
	return snap
}

// Write encodes the snapshot as JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// Read decodes a snapshot from JSON.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadSnapshot, s.Version, FormatVersion)
	}
	return &s, nil
}

// Restore rebuilds a Network from the snapshot: the graph is
// reconstructed, every flow re-registered, and every placed flow's
// reservations replayed (re-validating the congestion-free invariant).
// The network uses a BFS path provider unless the caller rewires one via
// the returned graph; selector is the netstate default.
func Restore(s *Snapshot) (*netstate.Network, error) {
	g := topology.NewGraph()
	for _, n := range s.Nodes {
		g.AddNode(topology.NodeKind(n.Kind), n.Name)
	}
	for i, l := range s.Links {
		if _, err := g.AddLink(topology.NodeID(l.From), topology.NodeID(l.To),
			topology.Bandwidth(l.CapacityBps)); err != nil {
			return nil, fmt.Errorf("%w: link %d: %v", ErrBadSnapshot, i, err)
		}
	}
	net := netstate.New(g, routing.NewBFSProvider(g, 0), nil)
	if _, err := Populate(net, s); err != nil {
		return nil, err
	}
	return net, nil
}

// Populate restores a snapshot's flows and link failures into an
// existing, flow-free network whose graph must match the snapshot's
// shape (node count, link count, endpoints, capacities). This is the
// checkpoint-recovery path: the daemon rebuilds its world from
// configuration — keeping its own path provider, selector and rule
// tables — and Populate replays the captured state onto it.
//
// The returned slice holds the restored flows in snapshot order, so
// callers can resolve snapshot flow indices (engine release entries
// are recorded that way).
func Populate(net *netstate.Network, s *Snapshot) ([]*flow.Flow, error) {
	g := net.Graph()
	if g.NumNodes() != len(s.Nodes) {
		return nil, fmt.Errorf("%w: graph has %d nodes, snapshot %d", ErrBadSnapshot, g.NumNodes(), len(s.Nodes))
	}
	if g.NumLinks() != len(s.Links) {
		return nil, fmt.Errorf("%w: graph has %d links, snapshot %d", ErrBadSnapshot, g.NumLinks(), len(s.Links))
	}
	if n := len(net.Registry().All()); n != 0 {
		return nil, fmt.Errorf("%w: target network already holds %d flows", ErrBadSnapshot, n)
	}
	for i, sl := range s.Links {
		l := g.Link(topology.LinkID(i))
		if int(l.From) != sl.From || int(l.To) != sl.To || int64(l.Capacity) != sl.CapacityBps {
			return nil, fmt.Errorf("%w: link %d is %v, snapshot says %d->%d cap %d",
				ErrBadSnapshot, i, l, sl.From, sl.To, sl.CapacityBps)
		}
	}
	// Fail links before placing: snapshot flows never cross down links,
	// and placement re-validates that.
	for _, dl := range s.DownLinks {
		if dl < 0 || dl >= g.NumLinks() {
			return nil, fmt.Errorf("%w: down link %d out of range", ErrBadSnapshot, dl)
		}
		g.SetLinkDown(topology.LinkID(dl), true)
	}
	flows := make([]*flow.Flow, 0, len(s.Flows))
	for i, sf := range s.Flows {
		f, err := net.AddFlow(flow.Spec{
			Src:    topology.NodeID(sf.Src),
			Dst:    topology.NodeID(sf.Dst),
			Demand: topology.Bandwidth(sf.DemandBps),
			Size:   sf.SizeBytes,
			Event:  flow.EventID(sf.Event),
		})
		if err != nil {
			return nil, fmt.Errorf("%w: flow %d: %v", ErrBadSnapshot, i, err)
		}
		flows = append(flows, f)
		if len(sf.PathLinks) == 0 {
			continue
		}
		links := make([]topology.LinkID, len(sf.PathLinks))
		for j, l := range sf.PathLinks {
			if l < 0 || l >= g.NumLinks() {
				return nil, fmt.Errorf("%w: flow %d references link %d", ErrBadSnapshot, i, l)
			}
			links[j] = topology.LinkID(l)
		}
		path, err := routing.NewPath(g, links)
		if err != nil {
			return nil, fmt.Errorf("%w: flow %d path: %v", ErrBadSnapshot, i, err)
		}
		if err := net.Place(f, path); err != nil {
			return nil, fmt.Errorf("%w: flow %d placement: %v", ErrBadSnapshot, i, err)
		}
	}
	return flows, nil
}
