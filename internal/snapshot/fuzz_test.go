package snapshot

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures arbitrary input never panics the decoder and that
// anything it accepts either restores cleanly or fails with an error —
// never by corrupting state.
func FuzzRead(f *testing.F) {
	f.Add(`{"version":1,"nodes":[],"links":[],"flows":[]}`)
	f.Add(`{"version":1,"nodes":[{"kind":1,"name":"a"},{"kind":1,"name":"b"}],` +
		`"links":[{"from":0,"to":1,"capacity_bps":1000000000}],` +
		`"flows":[{"src":0,"dst":1,"demand_bps":1000000,"path_links":[0]}]}`)
	f.Add(`{"version":99}`)
	f.Add(`not json at all`)
	f.Add(`{"version":1,"links":[{"from":-5,"to":99,"capacity_bps":-1}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		snap, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything Read accepts must round-trip through Write.
		var buf bytes.Buffer
		if err := snap.Write(&buf); err != nil {
			t.Fatalf("Write after Read: %v", err)
		}
		// Restore may reject it, but must not panic.
		if net, err := Restore(snap); err == nil {
			_ = net.Utilization()
		}
	})
}
