package snapshot

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// loadedNetwork builds a k=4 fat-tree at 40% utilization.
func loadedNetwork(t *testing.T) *netstate.Network {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(3))
	gen, err := trace.NewGenerator(2, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, 0.4, 0); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRoundTrip(t *testing.T) {
	net := loadedNetwork(t)
	snap := Capture(net)

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	read, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(read)
	if err != nil {
		t.Fatal(err)
	}

	// Structure preserved.
	if restored.Graph().NumNodes() != net.Graph().NumNodes() {
		t.Errorf("nodes = %d, want %d", restored.Graph().NumNodes(), net.Graph().NumNodes())
	}
	if restored.Graph().NumLinks() != net.Graph().NumLinks() {
		t.Errorf("links = %d, want %d", restored.Graph().NumLinks(), net.Graph().NumLinks())
	}
	if restored.Registry().Len() != net.Registry().Len() {
		t.Errorf("flows = %d, want %d", restored.Registry().Len(), net.Registry().Len())
	}
	// Reservations replayed exactly.
	for i := 0; i < net.Graph().NumLinks(); i++ {
		id := topology.LinkID(i)
		want := net.Graph().Link(id).Reserved()
		if got := restored.Graph().Link(id).Reserved(); got != want {
			t.Fatalf("link %d reserved = %v, want %v", i, got, want)
		}
	}
	if got, want := restored.Utilization(), net.Utilization(); got != want {
		t.Errorf("utilization = %v, want %v", got, want)
	}
	// Every placed flow kept its exact path.
	orig := net.Registry().Placed()
	rest := restored.Registry().Placed()
	if len(orig) != len(rest) {
		t.Fatalf("placed = %d, want %d", len(rest), len(orig))
	}
	for i := range orig {
		if !orig[i].Path().Equal(rest[i].Path()) {
			t.Errorf("flow %d path changed across round trip", i)
		}
		if orig[i].Event != rest[i].Event {
			t.Errorf("flow %d event tag changed", i)
		}
	}
}

func TestCaptureIncludesUnplacedFlows(t *testing.T) {
	net := loadedNetwork(t)
	hosts := net.Graph().NodesOfKind(topology.KindHost)
	f, err := net.AddFlow(flow.Spec{Src: hosts[0], Dst: hosts[1], Demand: topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	snap := Capture(net)
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Registry().Len() != net.Registry().Len() {
		t.Errorf("flow count mismatch with unplaced flow")
	}
	if got := len(restored.Registry().Placed()); got != len(net.Registry().Placed()) {
		t.Errorf("placed count = %d, want %d", got, len(net.Registry().Placed()))
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	in := strings.NewReader(`{"version": 99, "nodes": [], "links": [], "flows": []}`)
	if _, err := Read(in); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("Read error = %v, want ErrBadSnapshot", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("Read(garbage) succeeded")
	}
}

func TestRestoreRejectsBadLinkRef(t *testing.T) {
	snap := &Snapshot{
		Version: FormatVersion,
		Nodes:   []Node{{Kind: int(topology.KindHost), Name: "a"}, {Kind: int(topology.KindHost), Name: "b"}},
		Links:   []Link{{From: 0, To: 1, CapacityBps: 1e9}},
		Flows: []Flow{{
			Src: 0, Dst: 1, DemandBps: 1e6, PathLinks: []int{5},
		}},
	}
	if _, err := Restore(snap); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("Restore error = %v, want ErrBadSnapshot", err)
	}
}

func TestRestoreRejectsOverbookedSnapshot(t *testing.T) {
	// Two flows of 800 Mbps on the same 1 Gbps link cannot both replay.
	snap := &Snapshot{
		Version: FormatVersion,
		Nodes:   []Node{{Kind: int(topology.KindHost), Name: "a"}, {Kind: int(topology.KindHost), Name: "b"}},
		Links:   []Link{{From: 0, To: 1, CapacityBps: 1e9}},
		Flows: []Flow{
			{Src: 0, Dst: 1, DemandBps: 8e8, PathLinks: []int{0}},
			{Src: 0, Dst: 1, DemandBps: 8e8, PathLinks: []int{0}},
		},
	}
	if _, err := Restore(snap); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("Restore error = %v, want ErrBadSnapshot (congestion)", err)
	}
}
