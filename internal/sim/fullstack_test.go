package sim

import (
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/rules"
	"netupdate/internal/sched"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// TestFullStack drives every subsystem at once: a loaded fat-tree with
// two-phase rule tables attached, churning background traffic, Poisson
// event arrivals, split-capable migration, rule-op install accounting and
// P-LMTF scheduling — then checks the global invariants survived.
func TestFullStack(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	net := netstate.New(g, routing.NewFatTreeProvider(ft), routing.NewRandomFit(41))
	dp := rules.NewManager(g, 0)
	if err := net.AttachDataPlane(dp); err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(17, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	background, err := trace.FillBackground(net, gen, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}

	mig := migration.NewPlanner(net, migration.StrategyDensity)
	mig.SetAllowSplit(true)
	planner := core.NewPlanner(mig, core.FailSkip)

	events := gen.EventsPoisson(12, 3, 12, 300*time.Millisecond)
	eng := NewEngine(planner, sched.NewPLMTF(2, 31), Config{
		PerRuleOpTime: 2 * time.Millisecond,
	})
	eng.EnableChurn(gen, ChurnConfig{Interval: 200 * time.Millisecond, Fraction: 0.05, Seed: 9})

	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != len(events) {
		t.Fatalf("recorded %d events, want %d", col.Len(), len(events))
	}
	for _, ev := range events {
		if !ev.Done {
			t.Errorf("%v not done", ev)
		}
	}

	// Invariant 1: congestion freedom everywhere.
	for i := 0; i < g.NumLinks(); i++ {
		if l := g.Link(topology.LinkID(i)); l.Residual() < 0 {
			t.Errorf("link %v over capacity", l)
		}
	}
	// Invariant 2: the ledger equals the placed-flow sums.
	sums := make(map[topology.LinkID]topology.Bandwidth)
	for _, f := range net.Registry().Placed() {
		for _, l := range f.Path().Links() {
			sums[l] += f.Demand
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		id := topology.LinkID(i)
		if got := g.Link(id).Reserved(); got != sums[id] {
			t.Fatalf("link %d ledger %v != placed sum %v", i, got, sums[id])
		}
	}
	// Invariant 3: the data plane holds exactly the placed flows' rules.
	wantEntries := 0
	for _, f := range net.Registry().Placed() {
		if !dp.PathInstalled(f.ID, dp.CurrentVersion(f.ID), f.Path()) {
			t.Errorf("flow %v rules missing or stale", f)
		}
		for _, l := range f.Path().Links() {
			if g.Node(g.Link(l).From).Kind.IsSwitch() {
				wantEntries++
			}
		}
	}
	if got := dp.TotalEntries(); got != wantEntries {
		t.Errorf("rule entries = %d, want %d", got, wantEntries)
	}
	// Invariant 4: all event flows released; only background-class flows
	// remain (churn replaces background, so count only the class).
	for _, f := range net.Registry().Placed() {
		if f.Event != flow.NoEvent {
			t.Errorf("event flow %v still placed after run", f)
		}
	}
	if len(net.Registry().Placed()) == 0 {
		t.Error("all background gone; churn should maintain it")
	}
	_ = background
}
