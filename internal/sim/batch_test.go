package sim_test

import (
	"bytes"
	"testing"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// incrementalRun drives the ctl-server usage pattern: events enqueued
// into a live engine (no Run), either one at a time or in batches of
// batchSize, then stepped to completion. Returns the JSONL trace bytes.
func incrementalRun(t *testing.T, mk func() sched.Scheduler, batchSize int) []byte {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, 0.6, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	events := gen.Events(12, 4, 16)

	var buf bytes.Buffer
	tr := obs.NewTracer(obs.NewJSONLSink(&buf), nil)
	eng := sim.NewEngine(planner, mk(), sim.Config{Probes: 1})
	eng.SetTracer(tr)

	if batchSize <= 1 {
		for _, ev := range events {
			eng.Enqueue(ev)
		}
	} else {
		for len(events) > 0 {
			n := batchSize
			if n > len(events) {
				n = len(events)
			}
			eng.EnqueueBatch(events[:n])
			events = events[n:]
		}
	}
	for {
		worked, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !worked {
			break
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchedAdmissionDeterminism is the ingest acceptance criterion:
// for a fixed admission order, bulk admission (EnqueueBatch →
// Queue.PushBatch) produces byte-identical traces to one-at-a-time
// Enqueue — same arrival records, same per-event queue depths, same
// rounds — at any batch size.
func TestBatchedAdmissionDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"fifo", func() sched.Scheduler { return sched.FIFO{} }},
		{"lmtf", func() sched.Scheduler { return sched.NewLMTF(4, 1) }},
		{"plmtf", func() sched.Scheduler { return sched.NewPLMTF(4, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			single := incrementalRun(t, tc.mk, 1)
			if len(single) == 0 {
				t.Fatal("empty trace")
			}
			for _, batchSize := range []int{3, 5, 12} {
				batched := incrementalRun(t, tc.mk, batchSize)
				if !bytes.Equal(single, batched) {
					t.Errorf("batch size %d: trace bytes differ from unbatched admission", batchSize)
				}
			}
		})
	}
}
