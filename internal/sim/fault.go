package sim

import (
	"fmt"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/fault"
	"netupdate/internal/flow"
	"netupdate/internal/obs"
)

// RepairEventIDBase is where the engine starts minting IDs for repair
// events (failures converted into update events). It sits far above any
// workload or ctl-submitted event ID, so repair events can never collide.
const RepairEventIDBase flow.EventID = 1 << 40

// FaultOutcome reports what one applied injection did to the run.
type FaultOutcome struct {
	// Action is the injected fault kind.
	Action fault.Action
	// LinksChanged counts links whose up/down state actually flipped.
	LinksChanged int
	// FlowsAffected counts placed flows the failure withdrew.
	FlowsAffected int
	// RepairEvent is the update event minted to re-admit the withdrawn
	// flows (nil when the failure disrupted nothing).
	RepairEvent *core.Event
	// LinksDown is the number of failed links after the injection.
	LinksDown int
}

// timeoutArm is one armed install-timeout injection waiting for its event.
type timeoutArm struct {
	// event targets a specific event ID; 0 matches the next event to
	// execute after the arm fires.
	event flow.EventID
	// times is how many consecutive install attempts will time out.
	times int
}

// SetFaults attaches a scripted fault injector to the run. The script is
// replayed against the virtual clock: Run (and Step) apply every due
// injection before scheduling, so the same script and workload always
// perturb the schedule at the same points — the determinism the chaos
// harness relies on. Call before Run.
func (e *Engine) SetFaults(script fault.Script) {
	e.injector = fault.NewInjector(script)
}

// applyDueFaults fires every scripted injection due at the current clock.
func (e *Engine) applyDueFaults() error {
	if e.injector == nil {
		return nil
	}
	for _, inj := range e.injector.Due(e.clock) {
		if _, err := e.InjectFault(inj); err != nil {
			return err
		}
	}
	return nil
}

// InjectFault applies one fault injection to the running schedule at the
// current virtual time. Link and switch failures withdraw the placed
// flows crossing the dead links and convert them into a repair update
// event queued through the normal scheduling path (the paper's
// event abstraction: a failure IS an update event); marking links down
// bumps the graph epoch, so probe-cache entries and probe forks reading
// those links self-invalidate. Install timeouts arm the retry/rollback
// machinery in runLane. The ctl server calls this directly for
// operator-driven injection; scripted runs go through SetFaults.
func (e *Engine) InjectFault(inj fault.Injection) (*FaultOutcome, error) {
	net := e.planner.Network()
	g := net.Graph()
	if err := inj.Validate(g.NumNodes(), g.NumLinks()); err != nil {
		return nil, fmt.Errorf("sim: inject: %w", err)
	}
	out := &FaultOutcome{Action: inj.Action}

	switch inj.Action {
	case fault.LinkDown, fault.SwitchDown:
		links, kind := inj.TargetLinks(g)
		affected, changed := net.FailLinks(links)
		out.LinksChanged = changed
		out.FlowsAffected = len(affected)
		if len(affected) > 0 {
			out.RepairEvent = e.mintRepairEvent(kind, affected)
		}
	case fault.LinkUp, fault.SwitchUp:
		links, _ := inj.TargetLinks(g)
		out.LinksChanged = net.RestoreLinks(links)
	case fault.InstallTimeout:
		times := inj.Times
		if times == 0 {
			times = 1
		}
		e.timeouts = append(e.timeouts, timeoutArm{event: flow.EventID(inj.Event), times: times})
	}

	out.LinksDown = g.NumLinksDown()
	e.collector.FaultsInjected++
	e.collector.FlowsDisrupted += out.FlowsAffected
	if out.RepairEvent != nil {
		e.collector.RepairEvents++
	}
	if e.obs != nil {
		rec := obs.FaultRecord{
			Action:        string(inj.Action),
			Link:          inj.Link,
			Node:          inj.Node,
			FlowsAffected: out.FlowsAffected,
			LinksDown:     out.LinksDown,
			Times:         inj.Times,
		}
		if out.RepairEvent != nil {
			rec.RepairEvent = int64(out.RepairEvent.ID)
		}
		e.obs.Fault(int64(e.clock), rec)
	}
	return out, nil
}

// mintRepairEvent withdraws the disrupted flows and queues an update
// event that re-admits them. The flows route around the dead links when
// the event executes because a down link has zero residual.
func (e *Engine) mintRepairEvent(kind string, affected []*flow.Flow) *core.Event {
	specs := make([]flow.Spec, 0, len(affected))
	for _, f := range affected {
		specs = append(specs, flow.Spec{Src: f.Src, Dst: f.Dst, Demand: f.Demand, Size: f.Size})
		e.dropFlow(f)
	}
	e.repairSeq++
	ev := core.NewEvent(RepairEventIDBase+flow.EventID(e.repairSeq), kind, e.clock, specs)
	e.queue.Push(ev)
	e.traceArrival(ev)
	return ev
}

// dropFlow withdraws and deletes a flow disrupted by a failure, and marks
// it so a release already scheduled for it becomes a no-op instead of a
// double-remove.
func (e *Engine) dropFlow(f *flow.Flow) {
	if err := e.planner.Network().Remove(f); err != nil {
		panic(fmt.Sprintf("sim: dropping disrupted flow: %v", err))
	}
	if e.dropped == nil {
		e.dropped = make(map[flow.ID]struct{})
	}
	e.dropped[f.ID] = struct{}{}
}

// takeTimeout consumes the first armed install-timeout matching the event
// (a specific arm wins over a wildcard) and returns how many install
// attempts must fail, 0 when none is armed.
func (e *Engine) takeTimeout(id flow.EventID) int {
	match := -1
	for i, arm := range e.timeouts {
		if arm.event == id {
			match = i
			break
		}
		if arm.event == 0 && match < 0 {
			match = i
		}
	}
	if match < 0 {
		return 0
	}
	times := e.timeouts[match].times
	e.timeouts = append(e.timeouts[:match], e.timeouts[match+1:]...)
	return times
}

// nextFaultAt returns the virtual time of the next unfired scripted
// injection, if any.
func (e *Engine) nextFaultAt() (time.Duration, bool) {
	if e.injector == nil {
		return 0, false
	}
	return e.injector.NextAt()
}

// LinksDown reports the number of currently failed links.
func (e *Engine) LinksDown() int {
	return e.planner.Network().Graph().NumLinksDown()
}
