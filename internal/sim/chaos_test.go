package sim_test

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/fault"
	"netupdate/internal/flow"
	"netupdate/internal/metrics"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// chaosRun is tracedRun plus a fault script: a fixed workload simulated
// under injected failures, returning the raw JSONL trace and the run's
// collector. met may be nil; when given, live metrics are updated too.
func chaosRun(t *testing.T, mk func() sched.Scheduler, probes int, mkScript func(g *topology.Graph) fault.Script, met *obs.SimMetrics) ([]byte, *metrics.Collector) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, 0.6, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	events := gen.Events(12, 4, 16)

	var buf bytes.Buffer
	tr := obs.NewTracer(obs.NewJSONLSink(&buf), met)
	eng := sim.NewEngine(planner, mk(), sim.Config{Probes: probes})
	eng.SetTracer(tr)
	eng.SetFaults(mkScript(ft.Graph()))
	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), col
}

// TestChaosTraceDeterminism is the chaos-harness acceptance criterion:
// the same seed and the same fault script yield byte-identical JSONL
// traces, across repeated runs and across serial vs parallel probing.
func TestChaosTraceDeterminism(t *testing.T) {
	script := func(g *topology.Graph) fault.Script {
		s := fault.RandomScript(42, g, 3, 2*time.Second, 500*time.Millisecond)
		// Mix in an install timeout so the retry path is under test too.
		s = append(s, fault.Injection{At: 50 * time.Millisecond, Action: fault.InstallTimeout, Times: 2})
		return s
	}
	for _, tc := range []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"lmtf", func() sched.Scheduler { return sched.NewLMTF(4, 1) }},
		{"plmtf", func() sched.Scheduler { return sched.NewPLMTF(4, 1) }},
		{"min-cost", func() sched.Scheduler { return sched.NewMinCost() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, col := chaosRun(t, tc.mk, 1, script, nil)
			serial2, _ := chaosRun(t, tc.mk, 1, script, nil)
			parallel, _ := chaosRun(t, tc.mk, 4, script, nil)
			if len(serial) == 0 {
				t.Fatal("empty trace")
			}
			if col.FaultsInjected == 0 {
				t.Fatal("no faults applied; the script never fired")
			}
			if !bytes.Equal(serial, serial2) {
				t.Error("two runs with the same seed and fault script produced different trace bytes")
			}
			if !bytes.Equal(serial, parallel) {
				t.Error("serial and parallel probing produced different trace bytes under faults")
			}
		})
	}
}

// TestLinkFailureRecoveryE2E is the recovery acceptance criterion: a
// loaded fabric link fails mid-schedule, the disrupted flows come back as
// a repair event that reroutes them, no link ever exceeds capacity, and
// the recovery counters are scrapeable via /metrics.
func TestLinkFailureRecoveryE2E(t *testing.T) {
	reg := obs.NewRegistry()
	met := obs.NewSimMetrics(reg)

	var failedLink topology.LinkID = topology.InvalidLink
	script := func(g *topology.Graph) fault.Script {
		// Fail the most loaded fabric link mid-schedule; repair it later.
		var best topology.Bandwidth = -1
		for i := 0; i < g.NumLinks(); i++ {
			l := g.Link(topology.LinkID(i))
			if !g.Node(l.From).Kind.IsSwitch() || !g.Node(l.To).Kind.IsSwitch() {
				continue
			}
			if l.Reserved() > best {
				best, failedLink = l.Reserved(), l.ID
			}
		}
		if best <= 0 {
			t.Fatal("background fill left every fabric link empty")
		}
		return fault.Script{
			{At: 40 * time.Millisecond, Action: fault.LinkDown, Link: int(failedLink)},
			{At: 5 * time.Second, Action: fault.LinkUp, Link: int(failedLink)},
		}
	}

	_, col := chaosRun(t, func() sched.Scheduler { return sched.NewPLMTF(4, 1) }, 1, script, met)

	if col.FaultsInjected != 2 {
		t.Errorf("FaultsInjected = %d, want 2", col.FaultsInjected)
	}
	if col.RepairEvents < 1 {
		t.Fatalf("RepairEvents = %d, want >= 1 (the failed link carried traffic)", col.RepairEvents)
	}
	if col.FlowsDisrupted < 1 {
		t.Errorf("FlowsDisrupted = %d, want >= 1", col.FlowsDisrupted)
	}
	// Every event — including the minted repair event — completed.
	repairs := 0
	for _, r := range col.Records() {
		if r.Kind == "link-repair" {
			repairs++
			if r.Event < sim.RepairEventIDBase {
				t.Errorf("repair event ID %d below RepairEventIDBase", int64(r.Event))
			}
		}
	}
	if repairs != col.RepairEvents {
		t.Errorf("completed repair events = %d, want %d", repairs, col.RepairEvents)
	}

	// Recovery counters are visible on a /metrics scrape.
	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"netupdate_faults_injected_total 2",
		"netupdate_repair_events_total 1",
		"netupdate_links_down 0", // the link-up fired before the run ended
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "netupdate_flows_disrupted_total") {
		t.Error("/metrics missing netupdate_flows_disrupted_total")
	}
}

// capacityCheck fails the test if any link is over capacity or its
// ledger disagrees with the sum of placed flow demands.
func capacityCheck(t *testing.T, net *netstate.Network) {
	t.Helper()
	g := net.Graph()
	perLink := make(map[topology.LinkID]topology.Bandwidth)
	for _, f := range net.Registry().Placed() {
		for _, l := range f.Path().Links() {
			perLink[l] += f.Demand
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		if l.Reserved() > l.Capacity {
			t.Errorf("%v over capacity: reserved %v > cap %v", l, l.Reserved(), l.Capacity)
		}
		if l.Reserved() != perLink[l.ID] {
			t.Errorf("%v ledger %v != placed demand sum %v", l, l.Reserved(), perLink[l.ID])
		}
	}
}

// TestInstallTimeoutRetryThenRollback covers both halves of the timeout
// machinery on a small deterministic run: a survivable timeout count
// delays the event by retries+backoff, while an unsurvivable one rolls
// the event back, restoring the exact pre-event network state.
func TestInstallTimeoutRetryThenRollback(t *testing.T) {
	setup := func() (*sim.Engine, *netstate.Network) {
		ft, err := topology.NewFatTree(4, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
		planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
		eng := sim.NewEngine(planner, sched.FIFO{}, sim.Config{KeepFlows: true})
		return eng, net
	}
	t.Run("retry", func(t *testing.T) {
		// Run the same single-flow event with and without two injected
		// install timeouts; the faulted run must finish later by exactly
		// two extra install passes plus the 25ms+50ms backoff.
		runOne := func(times int) (*core.Event, *metrics.Collector, *netstate.Network) {
			eng, net := setup()
			hosts := hostPair(t, net)
			if times > 0 {
				eng.SetFaults(fault.Script{{At: 0, Action: fault.InstallTimeout, Times: times}})
			}
			ev := core.NewEvent(1, "test", 0, []flow.Spec{{Src: hosts[0], Dst: hosts[1], Demand: 100 * topology.Mbps}})
			col, err := eng.Run([]*core.Event{ev})
			if err != nil {
				t.Fatal(err)
			}
			return ev, col, net
		}
		clean, _, _ := runOne(0)
		ev, col, net := runOne(2)
		if col.InstallRetries != 2 {
			t.Errorf("InstallRetries = %d, want 2", col.InstallRetries)
		}
		if col.InstallRollbacks != 0 {
			t.Errorf("InstallRollbacks = %d, want 0", col.InstallRollbacks)
		}
		wantExtra := 2*10*time.Millisecond + 25*time.Millisecond + 50*time.Millisecond
		if got := ev.ECT() - clean.ECT(); got != wantExtra {
			t.Errorf("retry delay = %v, want %v (2 install passes + capped backoff)", got, wantExtra)
		}
		if !ev.Done || len(ev.FailedSpecs) != 0 {
			t.Errorf("retried event should complete cleanly: done=%v failed=%d", ev.Done, len(ev.FailedSpecs))
		}
		capacityCheck(t, net)
	})

	t.Run("rollback", func(t *testing.T) {
		eng, net := setup()
		hosts := hostPair(t, net)
		eng.SetFaults(fault.Script{{At: 0, Action: fault.InstallTimeout, Event: 1, Times: 10}})
		ev := core.NewEvent(1, "test", 0, []flow.Spec{{Src: hosts[0], Dst: hosts[1], Demand: 100 * topology.Mbps}})
		col, err := eng.Run([]*core.Event{ev})
		if err != nil {
			t.Fatal(err)
		}
		if col.InstallRollbacks != 1 {
			t.Errorf("InstallRollbacks = %d, want 1", col.InstallRollbacks)
		}
		if len(ev.FailedSpecs) != 1 {
			t.Errorf("FailedSpecs = %d, want 1 (all specs failed)", len(ev.FailedSpecs))
		}
		if got := len(net.Registry().Placed()); got != 0 {
			t.Errorf("placed flows after rollback = %d, want 0", got)
		}
		recs := col.Records()
		if len(recs) != 1 || !recs[0].RolledBack || recs[0].Flows != 0 {
			t.Errorf("record = %+v, want rolled-back with 0 flows", recs)
		}
		capacityCheck(t, net)
	})
}

// hostPair returns four distinct hosts of the network's fat-tree graph.
func hostPair(t *testing.T, net *netstate.Network) []topology.NodeID {
	t.Helper()
	hosts := net.Graph().NodesOfKind(topology.KindHost)
	if len(hosts) < 4 {
		t.Fatal("not enough hosts")
	}
	return hosts[:4]
}
