package sim

import (
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/rules"
	"netupdate/internal/sched"
	"netupdate/internal/topology"
)

// ruleOpConfig charges 1 second per rule operation and nothing else.
func ruleOpConfig() Config {
	return Config{
		InstallTime:   time.Hour, // must be ignored when PerRuleOpTime is set
		PerRuleOpTime: time.Second,
		MigrationRate: 100 * topology.Mbps,
		PlanEvalTime:  -1,
	}
}

func TestPerRuleOpInstallAccounting(t *testing.T) {
	planner, ft := newPlanner(t)
	hosts := ft.Hosts()

	// Event 1: one same-edge flow (host->edge->host: 2 links, 1 switch
	// hop, +1 flip = 2 ops). Event 2: one cross-pod flow (6 links, 5
	// switch hops, +1 flip = 6 ops).
	sameEdge := core.NewEvent(1, "short", 0, []flow.Spec{
		{Src: ft.Host(0, 0, 0), Dst: ft.Host(0, 0, 1), Demand: topology.Mbps},
	})
	crossPod := core.NewEvent(2, "long", 0, []flow.Spec{
		{Src: ft.Host(1, 0, 0), Dst: ft.Host(2, 0, 0), Demand: topology.Mbps},
	})
	_ = hosts

	eng := NewEngine(planner, sched.FIFO{}, ruleOpConfig())
	if _, err := eng.Run([]*core.Event{sameEdge, crossPod}); err != nil {
		t.Fatal(err)
	}
	within(t, "same-edge ECT", sameEdge.ECT(), 2*time.Second, time.Millisecond)
	// Cross-pod event waits for the first (2s) then takes 6s of ops.
	within(t, "cross-pod ECT", crossPod.ECT(), 8*time.Second, time.Millisecond)
}

func TestPerRuleOpChargesMigrations(t *testing.T) {
	// Deterministic bottleneck gadget: admitting the event flow migrates
	// one victim. Rule ops: victim move = from(3 hops... path c->u->v->d:
	// links cu,uv,vd => switch-sourced: uv(from u), vd(from v) = 2 hops;
	// wait, cu's From is host c. So from-path 2 hops; detour c->w->d:
	// wd only = 1 hop; move ops = 2+1+1 = 4. New flow a->u->v->b: uv,vb
	// = 2 hops + flip = 3. Total = 7 ops.
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	c := g.AddNode(topology.KindHost, "c")
	d := g.AddNode(topology.KindHost, "d")
	u := g.AddNode(topology.KindEdgeSwitch, "u")
	v := g.AddNode(topology.KindEdgeSwitch, "v")
	w := g.AddNode(topology.KindEdgeSwitch, "w")
	link := func(x, y topology.NodeID) topology.LinkID {
		id, err := g.AddLink(x, y, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	link(a, u)
	uv := link(u, v)
	link(v, b)
	cu := link(c, u)
	vd := link(v, d)
	link(c, w)
	link(w, d)

	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})
	victim, err := net.AddFlow(flow.Spec{Src: c, Dst: d, Demand: 800 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	vicPath, err := routing.NewPath(g, []topology.LinkID{cu, uv, vd})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Place(victim, vicPath); err != nil {
		t.Fatal(err)
	}

	planner := core.NewPlanner(migration.NewPlanner(net, 0), 0)
	ev := core.NewEvent(1, "migrating", 0, []flow.Spec{
		{Src: a, Dst: b, Demand: 500 * topology.Mbps},
	})
	eng := NewEngine(planner, sched.FIFO{}, ruleOpConfig())
	if _, err := eng.Run([]*core.Event{ev}); err != nil {
		t.Fatal(err)
	}
	// 8s of migration (800 Mbps at 100 Mbps/s) + 7s of rule ops.
	within(t, "ECT", ev.ECT(), 15*time.Second, time.Millisecond)
}

// TestEngineWithDataPlane runs a full simulation over a network with rule
// tables attached and verifies the tables drain with the flows.
func TestEngineWithDataPlane(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	dp := rules.NewManager(ft.Graph(), 0)
	if err := net.AttachDataPlane(dp); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), 0)
	events := fig2Events(ft)
	eng := NewEngine(planner, sched.NewPLMTF(2, 1), cleanConfig())
	if _, err := eng.Run(events); err != nil {
		t.Fatal(err)
	}
	// All event flows released => all rules torn down.
	if got := dp.TotalEntries(); got != 0 {
		t.Errorf("TotalEntries after run = %d, want 0", got)
	}
	if dp.Ops() == 0 {
		t.Error("no rule operations recorded")
	}
}
