package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// parallelRun simulates a fixed 20-event workload on a loaded k=4 fat-tree
// under the given scheduler and probe concurrency, returning the decision
// sequence (records in completion order) and a fingerprint of the final
// network state.
func parallelRun(t *testing.T, mkSched func() sched.Scheduler, probes int) (decisions, state string) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	net := netstate.New(g, routing.NewFatTreeProvider(ft), routing.NewRandomFit(41))
	gen, err := trace.NewGenerator(17, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, 0.6, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	events := gen.Events(20, 3, 15)
	eng := NewEngine(planner, mkSched(), Config{Probes: probes})
	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}

	var dec strings.Builder
	for _, r := range col.Records() {
		fmt.Fprintf(&dec, "ev%d flows=%d failed=%d cost=%v start=%v end=%v\n",
			r.Event, r.Flows, r.Failed, r.Cost, r.Start, r.Completion)
	}

	var st strings.Builder
	for i := 0; i < g.NumLinks(); i++ {
		fmt.Fprintf(&st, "link%d=%v\n", i, g.Link(topology.LinkID(i)).Reserved())
	}
	var placements []string
	for _, f := range net.Registry().Placed() {
		placements = append(placements, fmt.Sprintf("flow%d:%v", f.ID, f.Path().Links()))
	}
	sort.Strings(placements)
	st.WriteString(strings.Join(placements, "\n"))
	return dec.String(), st.String()
}

// TestProbesKnobIsScheduleInvariant: the Probes knob buys wall-clock
// planning speed only — the decision sequence and the final network state
// must be bit-identical between serial and wide parallel probing, for both
// probing schedulers. (Run with -race to also exercise the concurrent
// probe paths.)
func TestProbesKnobIsScheduleInvariant(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"lmtf", func() sched.Scheduler { return sched.NewLMTF(4, 7) }},
		{"plmtf", func() sched.Scheduler { return sched.NewPLMTF(4, 7) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serialDec, serialState := parallelRun(t, tc.mk, 1)
			parallelDec, parallelState := parallelRun(t, tc.mk, 8)
			if serialDec != parallelDec {
				t.Errorf("decision sequences diverge between Probes=1 and Probes=8:\n--- serial ---\n%s--- parallel ---\n%s",
					serialDec, parallelDec)
			}
			if serialState != parallelState {
				t.Error("final network state diverges between Probes=1 and Probes=8")
			}
			if serialDec == "" {
				t.Fatal("no decisions recorded")
			}
		})
	}
}

// TestParallelProbingCacheHitRate: the acceptance bar — at 60% utilization
// the epoch cache must answer at least half of all scheduler probes across
// an end-to-end run. A k=8 fabric with moderate event sizes keeps most
// estimates provably stable between rounds (on a 16-host k=4 fabric the
// events genuinely contend, so estimates — and hence misses — change for
// real; that regime is covered by TestProbesKnobIsScheduleInvariant).
func TestParallelProbingCacheHitRate(t *testing.T) {
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(41))
	gen, err := trace.NewGenerator(17, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, 0.6, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	events := gen.Events(30, 2, 6)
	eng := NewEngine(planner, sched.NewLMTF(9, 7), Config{Probes: 8})
	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if col.ProbeCacheHits+col.ProbeCacheMisses == 0 {
		t.Fatal("no probes recorded")
	}
	if rate := col.ProbeHitRate(); rate < 0.5 {
		t.Errorf("probe cache hit rate = %.2f (%d/%d), want >= 0.5",
			rate, col.ProbeCacheHits, col.ProbeCacheHits+col.ProbeCacheMisses)
	}
	if col.ProbeForks == 0 || col.ProbeForks > 8 {
		t.Errorf("forks = %d, want 1..8", col.ProbeForks)
	}
	if col.ProbeWallTime <= 0 {
		t.Error("probe wall time not recorded")
	}
}
