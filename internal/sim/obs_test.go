package sim_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// tracedRun simulates a fixed workload with a JSONL tracer attached and
// returns the raw trace bytes.
func tracedRun(t *testing.T, mk func() sched.Scheduler, probes int) []byte {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, 0.6, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	events := gen.Events(12, 4, 16)

	var buf bytes.Buffer
	tr := obs.NewTracer(obs.NewJSONLSink(&buf), nil)
	eng := sim.NewEngine(planner, mk(), sim.Config{Probes: probes})
	eng.SetTracer(tr)
	if _, err := eng.Run(events); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminism checks the obs acceptance criterion: the same seed
// and config produce byte-identical JSONL traces, both across repeated
// runs and across serial (Probes=1) vs parallel (Probes=4) probing —
// virtual-clock stamps only, no wall-clock leakage, cache behavior
// independent of probe concurrency.
func TestTraceDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"lmtf", func() sched.Scheduler { return sched.NewLMTF(4, 1) }},
		{"plmtf", func() sched.Scheduler { return sched.NewPLMTF(4, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := tracedRun(t, tc.mk, 1)
			serial2 := tracedRun(t, tc.mk, 1)
			parallel := tracedRun(t, tc.mk, 4)
			if len(serial) == 0 {
				t.Fatal("empty trace")
			}
			if !bytes.Equal(serial, serial2) {
				t.Error("two serial runs with the same seed produced different trace bytes")
			}
			if !bytes.Equal(serial, parallel) {
				t.Error("serial and parallel probing produced different trace bytes")
			}
		})
	}
}

// TestTraceContents sanity-checks the record stream structure: a run
// record first, one arrival and one span per event, and round records
// whose claims include the head, with candidates carrying the sampled
// probe outcomes.
func TestTraceContents(t *testing.T) {
	raw := tracedRun(t, func() sched.Scheduler { return sched.NewPLMTF(4, 1) }, 1)
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	var (
		runs, arrivals, spans, rounds int
		candidates                    int
		spanEvents                    = map[int64]bool{}
	)
	for i, line := range lines {
		var r obs.Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		switch r.Kind {
		case obs.KindRun:
			runs++
			if i != 0 {
				t.Errorf("run record at line %d, want first", i)
			}
			if r.Run.Events != 12 {
				t.Errorf("run record events = %d, want 12", r.Run.Events)
			}
		case obs.KindArrival:
			arrivals++
		case obs.KindSpan:
			spans++
			s := r.Span
			if spanEvents[s.Event] {
				t.Errorf("event %d completed twice", s.Event)
			}
			spanEvents[s.Event] = true
			if s.CompletionVT < s.StartVT || s.StartVT < s.ArrivalVT {
				t.Errorf("event %d: lifecycle out of order: %+v", s.Event, s)
			}
			if got := s.CompletionVT - s.ArrivalVT; got != s.ECTNs {
				t.Errorf("event %d: ECT %d != completion-arrival %d", s.Event, s.ECTNs, got)
			}
		case obs.KindRound:
			rounds++
			rr := r.Round
			candidates += len(rr.Candidates)
			if len(rr.Claims) == 0 || rr.Claims[0].Event != rr.Head {
				t.Errorf("round %d: first claim %+v is not head %d", rr.Round, rr.Claims, rr.Head)
			}
			headSampled := false
			for _, c := range rr.Candidates {
				if c.Event == rr.Head {
					headSampled = true
				}
			}
			if len(rr.Candidates) > 0 && !headSampled {
				t.Errorf("round %d: head %d missing from candidates", rr.Round, rr.Head)
			}
		default:
			t.Errorf("line %d: unknown kind %q", i, r.Kind)
		}
	}
	if runs != 1 {
		t.Errorf("runs = %d, want 1", runs)
	}
	if arrivals != 12 || spans != 12 {
		t.Errorf("arrivals/spans = %d/%d, want 12/12", arrivals, spans)
	}
	if rounds == 0 || candidates == 0 {
		t.Errorf("rounds = %d, candidates = %d, want > 0", rounds, candidates)
	}
	if rounds > 12 {
		t.Errorf("rounds = %d > events; P-LMTF should co-schedule some", rounds)
	}
}

// TestTracedRunMatchesUntraced checks the nil fast path: attaching a
// tracer must not change the schedule or any collected metric.
func TestTracedRunMatchesUntraced(t *testing.T) {
	run := func(tr *obs.Tracer) (time.Duration, time.Duration, int) {
		ft, err := topology.NewFatTree(4, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
		gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.FillBackground(net, gen, 0.6, 0); err != nil {
			t.Fatal(err)
		}
		planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
		eng := sim.NewEngine(planner, sched.NewPLMTF(4, 1), sim.Config{})
		eng.SetTracer(tr)
		col, err := eng.Run(gen.Events(12, 4, 16))
		if err != nil {
			t.Fatal(err)
		}
		return col.AvgECT(), col.Makespan, col.TotalPlanEvals()
	}
	reg := obs.NewRegistry()
	traced := obs.NewTracer(obs.NewRingSink(256), obs.NewSimMetrics(reg))
	a1, m1, e1 := run(nil)
	a2, m2, e2 := run(traced)
	if a1 != a2 || m1 != m2 || e1 != e2 {
		t.Fatalf("tracing changed the simulation: (%v,%v,%d) vs (%v,%v,%d)", a1, m1, e1, a2, m2, e2)
	}
}
