package sim_test

import (
	"fmt"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
)

// Simulate the paper's Fig. 2 toy workload — three events with 3, 4 and 5
// unit flows — under event-level FIFO with 1-second installs.
func ExampleEngine_Run() {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		fmt.Println(err)
		return
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)

	hosts := ft.Hosts()
	var events []*core.Event
	for i, n := range []int{3, 4, 5} {
		specs := make([]flow.Spec, n)
		for j := range specs {
			specs[j] = flow.Spec{
				Src:    hosts[(2*i)%len(hosts)],
				Dst:    hosts[(2*i+1)%len(hosts)],
				Demand: topology.Mbps,
			}
		}
		events = append(events, core.NewEvent(flow.EventID(i+1), "toy", 0, specs))
	}

	engine := sim.NewEngine(planner, sched.FIFO{}, sim.Config{
		InstallTime:  time.Second,
		PlanEvalTime: -1,
	})
	col, err := engine.Run(events)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("avg ECT:", col.AvgECT())
	fmt.Println("tail ECT:", col.TailECT())
	// Output:
	// avg ECT: 7.333333333s
	// tail ECT: 12s
}
