// Package sim is the discrete-event simulator that drives trace-driven
// evaluations: it feeds queued update events to a scheduler, executes the
// chosen events against the network through the event planner, advances a
// virtual clock according to an explicit timing model, and records the
// paper's metrics.
//
// Timing model (reconstructed from Figs. 2 and 3 of the paper and
// documented in DESIGN.md):
//
//   - planning work is charged per feasibility evaluation (PlanEvalTime);
//   - migrating existing flows costs MigrationRate-proportional time
//     (Fig. 3 charges an event with cost 4 "seconds" versus 1 second of
//     execution);
//   - installing each flow of an event takes InstallTime, serialized
//     within an event (Fig. 2's unit-slot installs), while co-scheduled
//     events (P-LMTF) install in parallel lanes;
//   - an event completes when its rules are installed and its migrations
//     are done (InstallOnly, the paper's model), or additionally when its
//     own flows finish transferring (InstallPlusTransfer).
package sim

import (
	"time"

	"netupdate/internal/migration"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// CompletionMode selects when an event counts as complete.
type CompletionMode int

const (
	// InstallOnly completes an event once all migrations are applied and
	// all flow rules are installed — the paper's ECT definition.
	InstallOnly CompletionMode = iota + 1
	// InstallPlusTransfer also waits for the event's own flows to finish
	// transferring their payloads (e.g. VM images).
	InstallPlusTransfer
)

// String implements fmt.Stringer.
func (m CompletionMode) String() string {
	switch m {
	case InstallOnly:
		return "install-only"
	case InstallPlusTransfer:
		return "install+transfer"
	default:
		return "unknown"
	}
}

// Config is the simulator timing model. The zero value gets defaults via
// withDefaults; all experiments share these defaults unless stated.
type Config struct {
	// InstallTime is the controller time to install one flow's rules
	// (default 10ms).
	InstallTime time.Duration
	// PerRuleOpTime, when positive, switches install accounting from
	// per-flow to per-rule-operation: installing a flow takes
	// (switch hops + 1 ingress flip) x PerRuleOpTime, and each migration
	// move adds its two-phase op count (install + flip + remove) — the
	// rule-level refinement backed by internal/rules and
	// internal/consistency. Zero keeps the coarse per-flow InstallTime.
	PerRuleOpTime time.Duration
	// MigrationRate converts migrated traffic into migration time: moving
	// `cost` of demand takes cost/MigrationRate seconds (default
	// 100 Mbps/s, i.e. 1 s per 100 Mbps of migrated demand).
	MigrationRate topology.Bandwidth
	// PlanEvalTime is the controller time per planning evaluation
	// (default 1µs; negative disables plan-time accounting, used by the
	// toy reproductions of Figs. 2 and 3 whose arithmetic has none).
	PlanEvalTime time.Duration
	// SerialPlanning charges planning time into the execution timeline
	// (decisions delay round starts). The default pipelines planning with
	// execution, as a real controller would: plan time is still accounted
	// as a metric (Fig. 6d) but does not inflate ECTs.
	SerialPlanning bool
	// Mode selects the completion semantics (default InstallOnly).
	Mode CompletionMode
	// ReleaseFlows releases an event flow's bandwidth once its transfer
	// finishes, modeling finite update flows (default true; set
	// KeepFlows to retain them forever instead).
	KeepFlows bool
	// Probes is the scheduler's cost-probe concurrency: how many candidate
	// events may be trial-planned at once on forked network state
	// (0 = GOMAXPROCS, 1 = serial probing). This is real controller
	// parallelism, not simulated time — the schedule is identical at every
	// setting; only wall-clock planning speed changes.
	Probes int
	// InstallRetryBase and InstallRetryCap shape the capped exponential
	// backoff after a timed-out rule install: retry i waits
	// min(Base << (i-1), Cap) before re-attempting (defaults 25ms / 200ms).
	InstallRetryBase time.Duration
	InstallRetryCap  time.Duration
	// MaxInstallRetries bounds install retries per event (default 3);
	// when timeouts persist past the budget, the event's bandwidth plan is
	// rolled back and all its specs recorded as failed.
	MaxInstallRetries int
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.InstallTime == 0 {
		c.InstallTime = 10 * time.Millisecond
	}
	if c.MigrationRate == 0 {
		c.MigrationRate = 100 * topology.Mbps
	}
	if c.PlanEvalTime == 0 {
		c.PlanEvalTime = time.Microsecond
	}
	if c.Mode == 0 {
		c.Mode = InstallOnly
	}
	if c.InstallRetryBase == 0 {
		c.InstallRetryBase = 25 * time.Millisecond
	}
	if c.InstallRetryCap == 0 {
		c.InstallRetryCap = 200 * time.Millisecond
	}
	if c.MaxInstallRetries == 0 {
		c.MaxInstallRetries = 3
	}
	return c
}

// retryBackoff is the wait before install retry i (1-based): capped
// exponential, min(Base << (i-1), Cap).
func (c Config) retryBackoff(i int) time.Duration {
	d := c.InstallRetryBase << (i - 1)
	if d > c.InstallRetryCap || d <= 0 { // <= 0 guards shift overflow
		d = c.InstallRetryCap
	}
	return d
}

// totalBackoff sums the backoff waits of n retries.
func (c Config) totalBackoff(n int) time.Duration {
	var total time.Duration
	for i := 1; i <= n; i++ {
		total += c.retryBackoff(i)
	}
	return total
}

// migrationTime converts migrated traffic into simulated time.
func (c Config) migrationTime(cost topology.Bandwidth) time.Duration {
	if cost <= 0 || c.MigrationRate <= 0 {
		return 0
	}
	sec := float64(cost) / float64(c.MigrationRate)
	return time.Duration(sec * float64(time.Second))
}

// installDuration is how long one admission's rule installation takes: a
// flat InstallTime per flow by default, or the two-phase rule-operation
// count times PerRuleOpTime when rule-level accounting is on (the flow's
// own install+flip, plus install+flip+remove for each migrated victim —
// matching consistency.Plan.NumRuleOps).
func installDuration(cfg Config, g *topology.Graph, adm *migration.Result) time.Duration {
	if cfg.PerRuleOpTime <= 0 {
		return cfg.InstallTime
	}
	ops := switchHops(g, adm.Path) + 1
	for _, mv := range adm.Moves {
		ops += switchHops(g, mv.From) + switchHops(g, mv.To) + 1
	}
	return time.Duration(ops) * cfg.PerRuleOpTime
}

// switchHops counts a path's switch-sourced links — the rules it occupies.
func switchHops(g *topology.Graph, p routing.Path) int {
	hops := 0
	for _, l := range p.Links() {
		if g.Node(g.Link(l).From).Kind.IsSwitch() {
			hops++
		}
	}
	return hops
}

// planTime converts an evaluation count into simulated planning time.
func (c Config) planTime(evals int) time.Duration {
	if c.PlanEvalTime < 0 {
		return 0
	}
	return time.Duration(evals) * c.PlanEvalTime
}
