package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/metrics"
	"netupdate/internal/topology"
)

// FlowLevel simulates the baseline the paper argues against (Figs. 2, 4
// and 5): flows are scheduled individually, with no notion of events. The
// controller serves one flow at a time, round-robin across all events
// currently in the system (the per-flow fair order of Fig. 2a), so the
// flows of concurrent events interleave and every event's completion drags
// until its last straggler flow is installed.
type FlowLevel struct {
	cfg       Config
	planner   *core.Planner
	clock     time.Duration
	releases  releaseHeap
	collector *metrics.Collector
}

// NewFlowLevel builds a flow-level baseline runner.
func NewFlowLevel(planner *core.Planner, cfg Config) *FlowLevel {
	return &FlowLevel{
		cfg:       cfg.withDefaults(),
		planner:   planner,
		collector: metrics.NewCollector(),
	}
}

// flState tracks one event's progress through the flow-level scheduler.
type flState struct {
	ev       *core.Event
	next     int // index of the next spec to serve
	admitted int
	failed   int
	cost     topology.Bandwidth
	planned  int
	lastDone time.Duration // completion of the event's latest flow
}

// Run simulates the events to completion under flow-level scheduling.
func (e *FlowLevel) Run(events []*core.Event) (*metrics.Collector, error) {
	pending := make([]*core.Event, len(events))
	copy(pending, events)
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].Arrival < pending[j].Arrival
	})

	var active []*flState
	rr := 0 // round-robin cursor over active events

	for len(pending) > 0 || len(active) > 0 {
		// Admit arrived events.
		for len(pending) > 0 && pending[0].Arrival <= e.clock {
			active = append(active, &flState{ev: pending[0]})
			pending = pending[1:]
		}
		if len(active) == 0 {
			e.processReleases(pending[0].Arrival)
			e.clock = pending[0].Arrival
			continue
		}

		// Serve one flow from the next event in round-robin order.
		if rr >= len(active) {
			rr = 0
		}
		st := active[rr]
		if err := e.serveOne(st); err != nil {
			return nil, err
		}

		if st.next >= len(st.ev.Specs) {
			e.finish(st)
			active = append(active[:rr], active[rr+1:]...)
			// rr now points at the next event already.
		} else {
			rr++
		}
	}
	e.processReleases(1<<62 - 1)
	e.collector.Makespan = e.clock
	return e.collector, nil
}

// serveOne admits and installs the next flow of st's event, advancing the
// clock by the planning, migration and install time it costs.
func (e *FlowLevel) serveOne(st *flState) error {
	net := e.planner.Network()
	spec := st.ev.Specs[st.next]
	st.next++

	if !st.ev.Started {
		st.ev.Started = true
		st.ev.Start = e.clock
	}

	f, err := net.AddFlow(spec)
	if err != nil {
		return fmt.Errorf("sim: flow-level register: %w", err)
	}
	res, admitErr := e.planner.Migration().Admit(f)
	if res != nil {
		st.planned += res.Evals
		e.collector.PlanTime += e.cfg.planTime(res.Evals)
		if e.cfg.SerialPlanning {
			e.clock += e.cfg.planTime(res.Evals)
		}
	}
	e.processReleases(e.clock)
	if admitErr != nil {
		st.failed++
		st.ev.FailedSpecs = append(st.ev.FailedSpecs, spec)
		if rmErr := net.Remove(f); rmErr != nil {
			return fmt.Errorf("sim: flow-level cleanup: %w", rmErr)
		}
		return nil
	}

	st.cost += res.MigratedTraffic
	st.ev.CostAtExec += res.MigratedTraffic
	st.ev.Flows = append(st.ev.Flows, f)
	st.admitted++

	e.clock += e.cfg.migrationTime(res.MigratedTraffic) +
		installDuration(e.cfg, net.Graph(), res)
	installed := e.clock
	transferred := installed + f.TransferTime()
	if !e.cfg.KeepFlows {
		heap.Push(&e.releases, release{at: transferred, f: f})
	}
	switch e.cfg.Mode {
	case InstallPlusTransfer:
		if transferred > st.lastDone {
			st.lastDone = transferred
		}
	default:
		st.lastDone = installed
	}
	e.processReleases(e.clock)
	return nil
}

// finish records a completed event.
func (e *FlowLevel) finish(st *flState) {
	ev := st.ev
	completion := st.lastDone
	if completion < e.clock {
		completion = e.clock
	}
	ev.Completion = completion
	ev.Done = true
	e.collector.Add(metrics.EventRecord{
		Event:      ev.ID,
		Kind:       ev.Kind,
		Flows:      st.admitted,
		Failed:     st.failed,
		Arrival:    ev.Arrival,
		Start:      ev.Start,
		Completion: completion,
		Cost:       st.cost,
		PlanEvals:  st.planned,
	})
}

// processReleases removes flows whose transfers completed by t.
func (e *FlowLevel) processReleases(t time.Duration) {
	for len(e.releases) > 0 && e.releases[0].at <= t {
		rel := heap.Pop(&e.releases).(release)
		if err := e.planner.Network().Remove(rel.f); err != nil {
			panic(fmt.Sprintf("sim: flow-level release: %v", err))
		}
	}
}
