package sim

import (
	"container/heap"
	"time"

	"netupdate/internal/flow"
)

// release is a scheduled removal of a finished event flow.
type release struct {
	at time.Duration
	f  *flow.Flow
}

// releaseHeap is a min-heap of pending flow releases ordered by time,
// with flow ID as a deterministic tie-break.
type releaseHeap []release

var _ heap.Interface = (*releaseHeap)(nil)

func (h releaseHeap) Len() int { return len(h) }

func (h releaseHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].f.ID < h[j].f.ID
}

func (h releaseHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *releaseHeap) Push(x any) {
	rel, ok := x.(release)
	if !ok {
		panic("sim: releaseHeap.Push: not a release")
	}
	*h = append(*h, rel)
}

// Pop implements heap.Interface.
func (h *releaseHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}
