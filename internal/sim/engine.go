package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/fault"
	"netupdate/internal/flow"
	"netupdate/internal/metrics"
	"netupdate/internal/migration"
	"netupdate/internal/obs"
	"netupdate/internal/sched"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// Engine simulates event-level scheduling: each round it asks the
// scheduler for a decision, executes the head event (plus any feasible
// opportunistic events in parallel lanes, for P-LMTF) and advances the
// virtual clock to the round's completion. Rounds are barriers: the next
// decision happens only after every event of the round completes, matching
// the paper's "the network executes one round of updates at a time".
type Engine struct {
	cfg       Config
	planner   *core.Planner
	scheduler sched.Scheduler

	clock     time.Duration
	queue     *sched.Queue
	pending   []*core.Event
	releases  releaseHeap
	collector *metrics.Collector
	churn     *churner

	// injector replays a scripted fault schedule against the virtual
	// clock (nil = no faults); timeouts holds armed install-timeout
	// injections waiting for their event to execute.
	injector *fault.Injector
	timeouts []timeoutArm
	// dropped marks flows withdrawn by failures whose scheduled releases
	// must become no-ops; repairSeq numbers minted repair events.
	dropped   map[flow.ID]struct{}
	repairSeq int64

	// probeBase is the probe-counter baseline restored from a checkpoint
	// (zero otherwise): the recovered probe engine counts from zero, so
	// syncProbeStats adds the pre-crash totals back in.
	probeBase ProbeBase

	// obs is the optional observability tracer (nil = disabled; every
	// instrumentation hook below reduces to one nil check).
	obs *obs.Tracer
	// spans is the optional stage-level latency recorder (nil = disabled).
	// Unlike obs it records wall clocks too, so its records ride the span
	// channel only — never a deterministic trace sink.
	spans  *obs.SpanRecorder
	rounds int64
	// curRound accumulates the round record being built (obs enabled
	// only); runLane appends its claim and span to it.
	curRound *obs.RoundRecord
	// utilScratch backs the per-round link-utilization snapshot so the
	// telemetry refresh allocates nothing in steady state.
	utilScratch []float64
}

// NewEngine builds an engine. The planner owns the (pre-filled) network;
// cfg zero fields take documented defaults.
func NewEngine(planner *core.Planner, scheduler sched.Scheduler, cfg Config) *Engine {
	if cp, ok := scheduler.(sched.CostProber); ok {
		cp.SetProbes(cfg.Probes)
	}
	return &Engine{
		cfg:       cfg.withDefaults(),
		planner:   planner,
		scheduler: scheduler,
		queue:     sched.NewQueue(),
		collector: metrics.NewCollector(),
	}
}

// SetTracer attaches an observability tracer (nil detaches). Call before
// Run or the first Step. Attaching also turns on per-candidate probe
// recording for schedulers that support it, so round records carry the
// sampled candidates' costs and cache hits.
func (e *Engine) SetTracer(t *obs.Tracer) {
	e.obs = t
	if pr, ok := e.scheduler.(sched.ProbeRecorder); ok {
		pr.SetRecordProbes(t != nil)
	}
}

// Tracer returns the attached tracer, or nil.
func (e *Engine) Tracer() *obs.Tracer { return e.obs }

// SetSpans attaches a stage-level latency recorder (nil detaches). The
// ctl server attaches it after WAL replay, so replayed rounds emit no
// span records and recovery stays byte-deterministic.
func (e *Engine) SetSpans(sr *obs.SpanRecorder) { e.spans = sr }

// probeEngine returns the scheduler's probe engine, or nil for schedulers
// (FIFO, Reorder) that probe the live network directly.
func (e *Engine) probeEngine() *core.ProbeEngine {
	if cp, ok := e.scheduler.(sched.CostProber); ok {
		return cp.ProbeEngine(e.planner)
	}
	return nil
}

// Run simulates the given events to completion and returns the collected
// metrics. Events may arrive at any time; the common experimental setup
// enqueues all of them at time zero.
func (e *Engine) Run(events []*core.Event) (*metrics.Collector, error) {
	e.pending = make([]*core.Event, len(events))
	copy(e.pending, events)
	sort.SliceStable(e.pending, func(i, j int) bool {
		return e.pending[i].Arrival < e.pending[j].Arrival
	})
	if e.obs != nil {
		e.obs.RunStart(int64(e.clock), e.scheduler.Name(), len(events))
	}

	for {
		if err := e.applyDueFaults(); err != nil {
			return nil, err
		}
		e.admitArrivals()
		if e.queue.Len() == 0 {
			next, ok := e.nextWakeup()
			if !ok {
				break
			}
			// Idle until the next arrival or scripted fault.
			e.advanceTo(next)
			continue
		}
		if _, err := e.Step(); err != nil {
			return nil, err
		}
	}
	e.drainReleases()
	e.collector.Makespan = e.clock
	return e.collector, nil
}

// Enqueue adds an event to the live update queue. It is the incremental
// alternative to Run for callers (like the ctl server) that receive events
// over time; pair it with Step. The event's Arrival should already be set
// (typically to Clock()).
func (e *Engine) Enqueue(ev *core.Event) {
	e.queue.Push(ev)
	e.traceArrival(ev)
}

// EnqueueBatch adds a batch of events to the live update queue in one
// bulk push (sched.Queue.PushBatch), in slice order. It is the batched
// ingest path of the ctl server: for a fixed admission order it is
// observationally identical to calling Enqueue on each event — the same
// arrival trace records with the same per-event queue depths — so traces
// are byte-identical with batching on or off.
func (e *Engine) EnqueueBatch(evs []*core.Event) {
	if len(evs) == 0 {
		return
	}
	e.queue.PushBatch(evs)
	if e.obs == nil {
		return
	}
	base := e.queue.Len() - len(evs)
	for i, ev := range evs {
		e.obs.EventArrival(int64(ev.Arrival), obs.ArrivalRecord{
			Event:      int64(ev.ID),
			Kind:       ev.Kind,
			Flows:      ev.NumFlows(),
			QueueDepth: base + i + 1,
		})
	}
}

// Step runs one scheduling round if the queue is non-empty and reports
// whether it did any work. Scripted faults due at the current clock are
// applied first; a failure can therefore mint a repair event and make an
// otherwise empty queue schedulable.
func (e *Engine) Step() (bool, error) {
	if err := e.applyDueFaults(); err != nil {
		return false, err
	}
	if e.queue.Len() == 0 {
		return false, nil
	}
	if err := e.runRound(); err != nil {
		return false, err
	}
	return true, nil
}

// nextWakeup returns the next virtual time something happens while the
// queue is idle: a pending arrival or a scripted fault injection.
func (e *Engine) nextWakeup() (time.Duration, bool) {
	next, ok := time.Duration(0), false
	if len(e.pending) > 0 {
		next, ok = e.pending[0].Arrival, true
	}
	if at, faultOK := e.nextFaultAt(); faultOK && (!ok || at < next) {
		next, ok = at, true
	}
	return next, ok
}

// installTime returns how long one admission's rule installation takes.
func (e *Engine) installTime(adm *migration.Result) time.Duration {
	return installDuration(e.cfg, e.planner.Network().Graph(), adm)
}

// Clock returns the current virtual time.
func (e *Engine) Clock() time.Duration { return e.clock }

// QueueLen returns the number of events waiting in the update queue.
func (e *Engine) QueueLen() int { return e.queue.Len() }

// Collector exposes the live metrics (shared state; read-only use).
func (e *Engine) Collector() *metrics.Collector { return e.collector }

// admitArrivals moves pending events whose arrival time has come into the
// update queue, as one bulk push (trace-equivalent to admitting them one
// at a time — see EnqueueBatch).
func (e *Engine) admitArrivals() {
	due := 0
	for due < len(e.pending) && e.pending[due].Arrival <= e.clock {
		due++
	}
	if due == 0 {
		return
	}
	e.EnqueueBatch(e.pending[:due])
	e.pending = e.pending[due:]
}

// traceArrival emits an arrival record for an event just queued.
func (e *Engine) traceArrival(ev *core.Event) {
	if e.obs == nil {
		return
	}
	e.obs.EventArrival(int64(ev.Arrival), obs.ArrivalRecord{
		Event:      int64(ev.ID),
		Kind:       ev.Kind,
		Flows:      ev.NumFlows(),
		QueueDepth: e.queue.Len(),
	})
}

// EnableChurn turns over background traffic during the run: every
// cfg.Interval of virtual time, cfg.Fraction of the background flows are
// replaced with fresh ones drawn from gen, holding utilization near the
// level it has when the run starts. Call before Run.
func (e *Engine) EnableChurn(gen *trace.Generator, cfg ChurnConfig) {
	e.churn = newChurner(e.planner.Network(), gen, cfg)
}

// advanceTo moves the clock forward, applying any flow releases and churn
// ticks that fall due on the way.
func (e *Engine) advanceTo(t time.Duration) {
	e.processReleases(t)
	if e.churn != nil {
		if err := e.churn.advance(t); err != nil {
			panic(fmt.Sprintf("sim: churn: %v", err))
		}
	}
	if t > e.clock {
		e.clock = t
	}
}

// processReleases removes event flows whose transfers finished by t.
// Flows a failure already dropped are skipped: their release became a
// no-op the moment the fault layer withdrew them.
func (e *Engine) processReleases(t time.Duration) {
	for len(e.releases) > 0 && e.releases[0].at <= t {
		rel := heap.Pop(&e.releases).(release)
		if _, gone := e.dropped[rel.f.ID]; gone {
			delete(e.dropped, rel.f.ID)
			continue
		}
		if err := e.planner.Network().Remove(rel.f); err != nil {
			panic(fmt.Sprintf("sim: releasing finished flow: %v", err))
		}
	}
}

// drainReleases applies all outstanding releases (end of run).
func (e *Engine) drainReleases() {
	e.processReleases(1<<62 - 1)
}

// Plan runs the scheduler's decision step over the current queue without
// executing anything: a dry run that prices the queue (warming and
// revalidating the probe engine's cost cache) and syncs probe counters,
// leaving queue and network untouched. Introspection and testing hook —
// note that sampling schedulers (LMTF) consume RNG on every decision, so
// interleaving Plan with Step changes their subsequent samples.
func (e *Engine) Plan() (sched.Decision, error) {
	d, err := e.scheduler.Pick(e.queue, e.planner)
	if err != nil {
		return sched.Decision{}, fmt.Errorf("sim: planning: %w", err)
	}
	e.syncProbeStats()
	return d, nil
}

// runRound performs one scheduling round.
func (e *Engine) runRound() error {
	if pe := e.probeEngine(); pe != nil && e.obs != nil {
		if m := e.obs.Metrics(); m != nil {
			pe.SetDirtyObserver(m.ProbeDirtyLinks)
		}
	}
	decision, err := e.scheduler.Pick(e.queue, e.planner)
	if err != nil {
		return fmt.Errorf("sim: scheduling: %w", err)
	}
	decisionTime := e.cfg.planTime(decision.Evals)
	e.collector.DecisionEvals += decision.Evals
	e.collector.PlanTime += decisionTime

	e.rounds++
	if e.obs != nil {
		rr := &obs.RoundRecord{
			Round:         e.rounds,
			QueueDepth:    e.queue.Len(),
			Head:          int64(decision.Head.ID),
			DecisionEvals: decision.Evals,
		}
		if len(decision.Probes) > 0 {
			rr.Candidates = make([]obs.ProbeOutcome, len(decision.Probes))
			for i, p := range decision.Probes {
				rr.Candidates[i] = obs.ProbeOutcome{
					Event:      int64(p.Event.ID),
					CostBps:    int64(p.Cost),
					Evals:      p.Evals,
					Admittable: p.Admittable,
					CacheHit:   p.CacheHit,
				}
			}
		}
		e.curRound = rr
	}

	roundStart := e.clock
	if e.cfg.SerialPlanning {
		roundStart += decisionTime
	}
	roundEnd := roundStart

	if e.spans != nil {
		for _, p := range decision.Probes {
			e.spans.Probed(int64(p.Event.ID), e.rounds, int64(roundStart))
		}
	}

	end, err := e.runLane(decision.Head, roundStart)
	if err != nil {
		return err
	}
	if end > roundEnd {
		roundEnd = end
	}

	// Opportunistic co-scheduling (P-LMTF): in arrival order, commit any
	// candidate whose admission is not degraded by what this round has
	// already committed — running together must not interfere (flows that
	// fail either way, e.g. on saturated access links, do not block it).
	pe := e.probeEngine()
	for _, cand := range decision.Opportunistic {
		// Re-probe through the scheduler's probe engine when it has one, so
		// a candidate untouched by this round's commits is answered from
		// the epoch cache instead of replanned.
		var est *core.Estimate
		var err error
		if pe != nil {
			est, err = pe.Probe(cand.Event)
		} else {
			est, err = e.planner.Probe(cand.Event)
		}
		if err != nil {
			return fmt.Errorf("sim: opportunistic probe of %v: %w", cand.Event, err)
		}
		e.collector.DecisionEvals += est.Evals
		e.collector.PlanTime += e.cfg.planTime(est.Evals)
		if e.spans != nil {
			e.spans.Probed(int64(cand.Event.ID), e.rounds, int64(roundStart))
		}
		committed := est.Admittable >= cand.AloneAdmittable
		if rr := e.curRound; rr != nil {
			rr.CoScheduled = append(rr.CoScheduled, obs.CoSchedule{
				Probe: obs.ProbeOutcome{
					Event:      int64(cand.Event.ID),
					CostBps:    int64(est.Cost),
					Evals:      est.Evals,
					Admittable: est.Admittable,
					CacheHit:   est.FromCache,
				},
				AloneAdmittable: cand.AloneAdmittable,
				Committed:       committed,
			})
		}
		if !committed {
			continue
		}
		end, err := e.runLane(cand.Event, roundStart)
		if err != nil {
			return err
		}
		if end > roundEnd {
			roundEnd = end
		}
	}

	e.advanceTo(roundEnd)
	e.syncProbeStats()
	if rr := e.curRound; rr != nil {
		rr.EndVT = int64(roundEnd)
		e.obs.Round(int64(roundStart), rr)
		e.curRound = nil
		e.syncTelemetry()
	}
	return nil
}

// syncTelemetry refreshes the live gauges a scrape reads: virtual clock,
// overall utilization and the per-link utilization distribution. Called
// at the end of each round when a tracer with metrics is attached.
func (e *Engine) syncTelemetry() {
	m := e.obs.Metrics()
	if m == nil {
		return
	}
	g := e.planner.Network().Graph()
	m.VirtualClock.Set(int64(e.clock))
	m.Utilization.Set(g.Utilization())
	e.utilScratch = e.utilScratch[:0]
	for i := 0; i < g.NumLinks(); i++ {
		e.utilScratch = append(e.utilScratch, g.Link(topology.LinkID(i)).Utilization())
	}
	m.LinkUtil.Update(e.utilScratch)
}

// syncProbeStats copies the probe engine's cumulative counters into the
// collector (assignment, not addition — the engine's counters are already
// totals for the run).
func (e *Engine) syncProbeStats() {
	pe := e.probeEngine()
	if pe == nil {
		return
	}
	st := pe.Stats()
	e.collector.ProbeCacheHits = e.probeBase.Hits + st.Hits
	e.collector.ProbeCacheMisses = e.probeBase.Misses + st.Misses
	e.collector.ProbeCold = e.probeBase.Cold + st.Cold
	e.collector.ProbeIncremental = e.probeBase.Incremental + st.Incremental
	e.collector.ProbeJournalMisses = e.probeBase.JournalMisses + st.JournalMisses
	e.collector.ProbeForks = e.probeBase.Forks + st.Forks
	e.collector.ProbeResyncs = e.probeBase.Resyncs + st.Resyncs
	e.collector.ProbeWallTime = time.Duration(e.probeBase.WallTimeNs) + st.ProbeTime
	if e.obs != nil {
		if m := e.obs.Metrics(); m != nil {
			m.SetProbeStats(int64(e.collector.ProbeCacheHits), int64(e.collector.ProbeCacheMisses))
			m.SetProbeDetail(int64(e.collector.ProbeCold), int64(e.collector.ProbeIncremental))
		}
	}
}

// runLane executes one event starting at laneStart and returns the lane's
// completion time. The event is removed from the queue, executed against
// the network, its flows' releases scheduled, and its record collected.
func (e *Engine) runLane(ev *core.Event, laneStart time.Duration) (time.Duration, error) {
	if !e.queue.Remove(ev) {
		return 0, fmt.Errorf("sim: %v scheduled but not queued", ev)
	}
	if e.spans != nil {
		e.spans.ExecStart(int64(ev.ID), e.rounds, int64(laneStart))
	}
	res, err := e.planner.Execute(ev)
	if err != nil {
		return 0, fmt.Errorf("sim: executing %v: %w", ev, err)
	}
	if pe := e.probeEngine(); pe != nil {
		pe.Forget(ev.ID) // executed events are never probed again
	}
	lanePlan := e.cfg.planTime(res.Evals)
	e.collector.PlanTime += lanePlan
	if !e.cfg.SerialPlanning {
		lanePlan = 0 // pipelined with the previous round's execution
	}
	migTime := e.cfg.migrationTime(res.Cost)

	// Armed install-timeout injections: each timed-out attempt burns one
	// full install pass, then waits the capped exponential backoff before
	// the next try. Past the retry budget the whole event is rolled back
	// (bandwidth plan reverted, every spec recorded failed).
	failTimes := e.takeTimeout(ev.ID)
	rolledBack := failTimes > e.cfg.MaxInstallRetries
	retries := failTimes
	if rolledBack {
		retries = e.cfg.MaxInstallRetries
	}
	var retryDelay time.Duration
	if failTimes > 0 {
		var installSum time.Duration
		for _, adm := range res.Admitted {
			installSum += e.installTime(adm)
		}
		timedOut := retries
		if rolledBack {
			timedOut++ // the final attempt timed out too; nothing succeeded
		}
		retryDelay = time.Duration(timedOut)*installSum + e.cfg.totalBackoff(retries)
		e.collector.InstallRetries += retries
	}

	completion := laneStart + lanePlan + migTime + retryDelay
	flows, failed := len(res.Admitted), res.Failed
	if rolledBack {
		if err := e.planner.RollbackExec(res); err != nil {
			return 0, fmt.Errorf("sim: rolling back %v: %w", ev, err)
		}
		ev.FailedSpecs = ev.Specs
		flows, failed = 0, len(ev.Specs)
		e.collector.InstallRollbacks++
	} else {
		cursor := completion
		for _, adm := range res.Admitted {
			cursor += e.installTime(adm)
			installed := cursor
			if installed > completion {
				completion = installed
			}
			transferred := installed + adm.Flow.TransferTime()
			if e.cfg.Mode == InstallPlusTransfer && transferred > completion {
				completion = transferred
			}
			if !e.cfg.KeepFlows {
				heap.Push(&e.releases, release{at: transferred, f: adm.Flow})
			}
		}
	}

	ev.Start = laneStart
	ev.Started = true
	ev.Completion = completion
	ev.Done = true
	if e.spans != nil {
		e.spans.Completed(int64(ev.ID), e.rounds, int64(completion), flows, failed, retries, rolledBack)
	}
	e.collector.Add(metrics.EventRecord{
		Event:      ev.ID,
		Kind:       ev.Kind,
		Flows:      flows,
		Failed:     failed,
		Arrival:    ev.Arrival,
		Start:      ev.Start,
		Completion: ev.Completion,
		Cost:       res.Cost,
		PlanEvals:  res.Evals,
		Retries:    retries,
		RolledBack: rolledBack,
	})
	if rr := e.curRound; rr != nil {
		opportunistic := len(rr.Claims) > 0 // the head's claim is always first
		rr.Claims = append(rr.Claims, obs.LaneClaim{
			Event:        int64(ev.ID),
			Flows:        flows,
			Failed:       failed,
			CostBps:      int64(res.Cost),
			Evals:        res.Evals,
			CompletionVT: int64(completion),
			Retries:      retries,
			RolledBack:   rolledBack,
		})
		e.obs.EventComplete(int64(completion), obs.SpanRecord{
			Event:         int64(ev.ID),
			Kind:          ev.Kind,
			Round:         e.rounds,
			ArrivalVT:     int64(ev.Arrival),
			StartVT:       int64(ev.Start),
			CompletionVT:  int64(ev.Completion),
			QueuingNs:     int64(ev.QueuingDelay()),
			ECTNs:         int64(ev.ECT()),
			Flows:         flows,
			Failed:        failed,
			CostBps:       int64(res.Cost),
			Opportunistic: opportunistic,
			Retries:       retries,
			RolledBack:    rolledBack,
		})
	}
	return completion, nil
}
