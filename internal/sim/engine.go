package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/metrics"
	"netupdate/internal/migration"
	"netupdate/internal/sched"
	"netupdate/internal/trace"
)

// Engine simulates event-level scheduling: each round it asks the
// scheduler for a decision, executes the head event (plus any feasible
// opportunistic events in parallel lanes, for P-LMTF) and advances the
// virtual clock to the round's completion. Rounds are barriers: the next
// decision happens only after every event of the round completes, matching
// the paper's "the network executes one round of updates at a time".
type Engine struct {
	cfg       Config
	planner   *core.Planner
	scheduler sched.Scheduler

	clock     time.Duration
	queue     *sched.Queue
	pending   []*core.Event
	releases  releaseHeap
	collector *metrics.Collector
	churn     *churner
}

// NewEngine builds an engine. The planner owns the (pre-filled) network;
// cfg zero fields take documented defaults.
func NewEngine(planner *core.Planner, scheduler sched.Scheduler, cfg Config) *Engine {
	if cp, ok := scheduler.(sched.CostProber); ok {
		cp.SetProbes(cfg.Probes)
	}
	return &Engine{
		cfg:       cfg.withDefaults(),
		planner:   planner,
		scheduler: scheduler,
		queue:     sched.NewQueue(),
		collector: metrics.NewCollector(),
	}
}

// probeEngine returns the scheduler's probe engine, or nil for schedulers
// (FIFO, Reorder) that probe the live network directly.
func (e *Engine) probeEngine() *core.ProbeEngine {
	if cp, ok := e.scheduler.(sched.CostProber); ok {
		return cp.ProbeEngine(e.planner)
	}
	return nil
}

// Run simulates the given events to completion and returns the collected
// metrics. Events may arrive at any time; the common experimental setup
// enqueues all of them at time zero.
func (e *Engine) Run(events []*core.Event) (*metrics.Collector, error) {
	e.pending = make([]*core.Event, len(events))
	copy(e.pending, events)
	sort.SliceStable(e.pending, func(i, j int) bool {
		return e.pending[i].Arrival < e.pending[j].Arrival
	})

	for {
		e.admitArrivals()
		if e.queue.Len() == 0 {
			if len(e.pending) == 0 {
				break
			}
			// Idle until the next arrival.
			e.advanceTo(e.pending[0].Arrival)
			continue
		}
		if _, err := e.Step(); err != nil {
			return nil, err
		}
	}
	e.drainReleases()
	e.collector.Makespan = e.clock
	return e.collector, nil
}

// Enqueue adds an event to the live update queue. It is the incremental
// alternative to Run for callers (like the ctl server) that receive events
// over time; pair it with Step. The event's Arrival should already be set
// (typically to Clock()).
func (e *Engine) Enqueue(ev *core.Event) {
	e.queue.Push(ev)
}

// Step runs one scheduling round if the queue is non-empty and reports
// whether it did any work.
func (e *Engine) Step() (bool, error) {
	if e.queue.Len() == 0 {
		return false, nil
	}
	if err := e.runRound(); err != nil {
		return false, err
	}
	return true, nil
}

// installTime returns how long one admission's rule installation takes.
func (e *Engine) installTime(adm *migration.Result) time.Duration {
	return installDuration(e.cfg, e.planner.Network().Graph(), adm)
}

// Clock returns the current virtual time.
func (e *Engine) Clock() time.Duration { return e.clock }

// QueueLen returns the number of events waiting in the update queue.
func (e *Engine) QueueLen() int { return e.queue.Len() }

// Collector exposes the live metrics (shared state; read-only use).
func (e *Engine) Collector() *metrics.Collector { return e.collector }

// admitArrivals moves pending events whose arrival time has come into the
// update queue.
func (e *Engine) admitArrivals() {
	for len(e.pending) > 0 && e.pending[0].Arrival <= e.clock {
		e.queue.Push(e.pending[0])
		e.pending = e.pending[1:]
	}
}

// EnableChurn turns over background traffic during the run: every
// cfg.Interval of virtual time, cfg.Fraction of the background flows are
// replaced with fresh ones drawn from gen, holding utilization near the
// level it has when the run starts. Call before Run.
func (e *Engine) EnableChurn(gen *trace.Generator, cfg ChurnConfig) {
	e.churn = newChurner(e.planner.Network(), gen, cfg)
}

// advanceTo moves the clock forward, applying any flow releases and churn
// ticks that fall due on the way.
func (e *Engine) advanceTo(t time.Duration) {
	e.processReleases(t)
	if e.churn != nil {
		if err := e.churn.advance(t); err != nil {
			panic(fmt.Sprintf("sim: churn: %v", err))
		}
	}
	if t > e.clock {
		e.clock = t
	}
}

// processReleases removes event flows whose transfers finished by t.
func (e *Engine) processReleases(t time.Duration) {
	for len(e.releases) > 0 && e.releases[0].at <= t {
		rel := heap.Pop(&e.releases).(release)
		if err := e.planner.Network().Remove(rel.f); err != nil {
			panic(fmt.Sprintf("sim: releasing finished flow: %v", err))
		}
	}
}

// drainReleases applies all outstanding releases (end of run).
func (e *Engine) drainReleases() {
	e.processReleases(1<<62 - 1)
}

// runRound performs one scheduling round.
func (e *Engine) runRound() error {
	decision, err := e.scheduler.Pick(e.queue, e.planner)
	if err != nil {
		return fmt.Errorf("sim: scheduling: %w", err)
	}
	decisionTime := e.cfg.planTime(decision.Evals)
	e.collector.DecisionEvals += decision.Evals
	e.collector.PlanTime += decisionTime

	roundStart := e.clock
	if e.cfg.SerialPlanning {
		roundStart += decisionTime
	}
	roundEnd := roundStart

	end, err := e.runLane(decision.Head, roundStart)
	if err != nil {
		return err
	}
	if end > roundEnd {
		roundEnd = end
	}

	// Opportunistic co-scheduling (P-LMTF): in arrival order, commit any
	// candidate whose admission is not degraded by what this round has
	// already committed — running together must not interfere (flows that
	// fail either way, e.g. on saturated access links, do not block it).
	pe := e.probeEngine()
	for _, cand := range decision.Opportunistic {
		// Re-probe through the scheduler's probe engine when it has one, so
		// a candidate untouched by this round's commits is answered from
		// the epoch cache instead of replanned.
		var est *core.Estimate
		var err error
		if pe != nil {
			est, err = pe.Probe(cand.Event)
		} else {
			est, err = e.planner.Probe(cand.Event)
		}
		if err != nil {
			return fmt.Errorf("sim: opportunistic probe of %v: %w", cand.Event, err)
		}
		e.collector.DecisionEvals += est.Evals
		e.collector.PlanTime += e.cfg.planTime(est.Evals)
		if est.Admittable < cand.AloneAdmittable {
			continue
		}
		end, err := e.runLane(cand.Event, roundStart)
		if err != nil {
			return err
		}
		if end > roundEnd {
			roundEnd = end
		}
	}

	e.advanceTo(roundEnd)
	e.syncProbeStats()
	return nil
}

// syncProbeStats copies the probe engine's cumulative counters into the
// collector (assignment, not addition — the engine's counters are already
// totals for the run).
func (e *Engine) syncProbeStats() {
	pe := e.probeEngine()
	if pe == nil {
		return
	}
	st := pe.Stats()
	e.collector.ProbeCacheHits = st.Hits
	e.collector.ProbeCacheMisses = st.Misses
	e.collector.ProbeForks = st.Forks
	e.collector.ProbeResyncs = st.Resyncs
	e.collector.ProbeWallTime = st.ProbeTime
}

// runLane executes one event starting at laneStart and returns the lane's
// completion time. The event is removed from the queue, executed against
// the network, its flows' releases scheduled, and its record collected.
func (e *Engine) runLane(ev *core.Event, laneStart time.Duration) (time.Duration, error) {
	if !e.queue.Remove(ev) {
		return 0, fmt.Errorf("sim: %v scheduled but not queued", ev)
	}
	res, err := e.planner.Execute(ev)
	if err != nil {
		return 0, fmt.Errorf("sim: executing %v: %w", ev, err)
	}
	if pe := e.probeEngine(); pe != nil {
		pe.Forget(ev.ID) // executed events are never probed again
	}
	lanePlan := e.cfg.planTime(res.Evals)
	e.collector.PlanTime += lanePlan
	if !e.cfg.SerialPlanning {
		lanePlan = 0 // pipelined with the previous round's execution
	}
	migTime := e.cfg.migrationTime(res.Cost)

	completion := laneStart + lanePlan + migTime
	cursor := completion
	for _, adm := range res.Admitted {
		cursor += e.installTime(adm)
		installed := cursor
		if installed > completion {
			completion = installed
		}
		transferred := installed + adm.Flow.TransferTime()
		if e.cfg.Mode == InstallPlusTransfer && transferred > completion {
			completion = transferred
		}
		if !e.cfg.KeepFlows {
			heap.Push(&e.releases, release{at: transferred, f: adm.Flow})
		}
	}

	ev.Start = laneStart
	ev.Started = true
	ev.Completion = completion
	ev.Done = true
	e.collector.Add(metrics.EventRecord{
		Event:      ev.ID,
		Kind:       ev.Kind,
		Flows:      len(res.Admitted),
		Failed:     res.Failed,
		Arrival:    ev.Arrival,
		Start:      ev.Start,
		Completion: ev.Completion,
		Cost:       res.Cost,
		PlanEvals:  res.Evals,
	})
	return completion, nil
}
