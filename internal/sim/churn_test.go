package sim

import (
	"math"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// loadedEnv builds a k=4 fat-tree at the given utilization.
func loadedEnv(t *testing.T, util float64, seed int64) (*core.Planner, *trace.Generator, []*flow.Flow) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(seed+7))
	gen, err := trace.NewGenerator(seed, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	bg, err := trace.FillBackground(net, gen, util, 0)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewPlanner(migration.NewPlanner(net, 0), 0), gen, bg
}

func TestChurnReplacesBackgroundFlows(t *testing.T) {
	planner, gen, bg := loadedEnv(t, 0.4, 31)
	net := planner.Network()
	before := make(map[flow.ID]bool, len(bg))
	for _, f := range bg {
		before[f.ID] = true
	}

	events := gen.Events(5, 3, 8)
	eng := NewEngine(planner, sched.FIFO{}, Config{InstallTime: 200 * time.Millisecond})
	eng.EnableChurn(gen, ChurnConfig{Interval: 100 * time.Millisecond, Fraction: 0.1, Seed: 1})
	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 5 {
		t.Fatalf("recorded %d events, want 5", col.Len())
	}

	// Some of the original background must have churned away.
	survivors := 0
	for _, f := range net.Registry().Placed() {
		if before[f.ID] {
			survivors++
		}
	}
	if survivors == len(before) {
		t.Error("churn never replaced any background flow")
	}
	// Utilization stays near the baseline.
	if got := net.Utilization(); math.Abs(got-0.4) > 0.1 {
		t.Errorf("utilization drifted to %.3f, want near 0.40", got)
	}
	// The fabric is still congestion-free.
	g := net.Graph()
	for i := 0; i < g.NumLinks(); i++ {
		if l := g.Link(topology.LinkID(i)); l.Residual() < 0 {
			t.Errorf("link %v over capacity", l)
		}
	}
}

func TestChurnNeverTouchesEventFlows(t *testing.T) {
	planner, gen, _ := loadedEnv(t, 0.4, 33)
	cfg := Config{InstallTime: 100 * time.Millisecond}
	cfg.KeepFlows = true // keep event flows around to check them afterwards
	eng := NewEngine(planner, sched.FIFO{}, cfg)
	eng.EnableChurn(gen, ChurnConfig{Interval: 50 * time.Millisecond, Fraction: 0.2, Seed: 2})
	events := gen.Events(4, 4, 8)
	if _, err := eng.Run(events); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		for _, f := range ev.Flows {
			if !f.Placed() {
				t.Errorf("event flow %v was displaced by churn", f)
			}
		}
	}
}

func TestChurnConfigDefaults(t *testing.T) {
	cfg := ChurnConfig{}.withDefaults()
	if cfg.Interval != time.Second || cfg.Fraction != 0.05 || cfg.MaxPlaceAttempts != 50 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestEventsPoissonArrivals(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(9, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	events := gen.EventsPoisson(50, 2, 5, time.Second)
	if events[0].Arrival != 0 {
		t.Errorf("first arrival = %v, want 0", events[0].Arrival)
	}
	var last time.Duration
	var total time.Duration
	for _, ev := range events {
		if ev.Arrival < last {
			t.Fatal("arrivals not nondecreasing")
		}
		last = ev.Arrival
	}
	total = last
	// Mean gap should be near 1s: total ≈ 49s within loose bounds.
	if total < 20*time.Second || total > 120*time.Second {
		t.Errorf("total span = %v, want roughly 49s", total)
	}
}

// TestOnlineArrivalsDrainCorrectly: events arriving over time are all
// served and queuing delays stay small when the system is underloaded.
func TestOnlineArrivalsDrainCorrectly(t *testing.T) {
	planner, gen, _ := loadedEnv(t, 0.3, 35)
	events := gen.EventsPoisson(10, 2, 4, 2*time.Second)
	eng := NewEngine(planner, sched.NewLMTF(2, 1), Config{InstallTime: 10 * time.Millisecond})
	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 10 {
		t.Fatalf("recorded %d events, want 10", col.Len())
	}
	for _, ev := range events {
		if !ev.Done {
			t.Errorf("%v not completed", ev)
		}
		if ev.Start < ev.Arrival {
			t.Errorf("%v started before it arrived", ev)
		}
	}
	// Underloaded: most events should start almost immediately.
	if col.AvgQueuingDelay() > time.Second {
		t.Errorf("avg queuing delay = %v, want < 1s when underloaded", col.AvgQueuingDelay())
	}
}
