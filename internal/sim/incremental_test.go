package sim

import (
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/sched"
	"netupdate/internal/topology"
)

// TestIncrementalEnqueueStep drives the engine through the Enqueue/Step
// API the live controller uses.
func TestIncrementalEnqueueStep(t *testing.T) {
	planner, ft := newPlanner(t)
	eng := NewEngine(planner, sched.FIFO{}, cleanConfig())

	if eng.QueueLen() != 0 || eng.Clock() != 0 {
		t.Fatal("fresh engine not idle")
	}
	if did, err := eng.Step(); err != nil || did {
		t.Fatalf("Step on empty queue = %v,%v", did, err)
	}

	hosts := ft.Hosts()
	ev1 := core.NewEvent(1, "inc", eng.Clock(), []flow.Spec{
		{Src: hosts[0], Dst: hosts[1], Demand: topology.Mbps},
	})
	ev2 := core.NewEvent(2, "inc", eng.Clock(), []flow.Spec{
		{Src: hosts[2], Dst: hosts[3], Demand: topology.Mbps},
		{Src: hosts[4], Dst: hosts[5], Demand: topology.Mbps},
	})
	eng.Enqueue(ev1)
	eng.Enqueue(ev2)
	if eng.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", eng.QueueLen())
	}

	if did, err := eng.Step(); err != nil || !did {
		t.Fatalf("first Step = %v,%v", did, err)
	}
	if !ev1.Done || ev2.Done {
		t.Fatal("FIFO must complete ev1 first")
	}
	within(t, "clock after ev1", eng.Clock(), time.Second, time.Millisecond)

	if did, err := eng.Step(); err != nil || !did {
		t.Fatalf("second Step = %v,%v", did, err)
	}
	if !ev2.Done {
		t.Fatal("ev2 not done after second step")
	}
	within(t, "clock after ev2", eng.Clock(), 3*time.Second, time.Millisecond)
	if eng.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after draining", eng.QueueLen())
	}
	if got := eng.Collector().Len(); got != 2 {
		t.Errorf("collector recorded %d events, want 2", got)
	}
	// A late arrival stamps its queuing delay from the virtual now.
	ev3 := core.NewEvent(3, "inc", eng.Clock(), []flow.Spec{
		{Src: hosts[6], Dst: hosts[7], Demand: topology.Mbps},
	})
	eng.Enqueue(ev3)
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if got := ev3.QueuingDelay(); got != 0 {
		t.Errorf("late arrival queuing delay = %v, want 0", got)
	}
}

func TestCompletionModeString(t *testing.T) {
	for m, want := range map[CompletionMode]string{
		InstallOnly:         "install-only",
		InstallPlusTransfer: "install+transfer",
		CompletionMode(9):   "unknown",
	} {
		if got := m.String(); got != want {
			t.Errorf("CompletionMode.String() = %q, want %q", got, want)
		}
	}
}
