package sim_test

import (
	"fmt"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/fault"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// TestSchedulerInvariantsUnderFaults is the property-based satellite:
// across random seeds, all four schedulers, and faults on/off, a run must
// uphold the paper's congestion-free contract — no link ever exceeds
// capacity, the bandwidth ledger matches the placed flows exactly, no
// placed flow crosses a down link — and every admitted event completes.
func TestSchedulerInvariantsUnderFaults(t *testing.T) {
	schedulers := map[string]func(seed int64) sched.Scheduler{
		"fifo":    func(int64) sched.Scheduler { return sched.FIFO{} },
		"reorder": func(int64) sched.Scheduler { return sched.Reorder{} },
		"lmtf":    func(seed int64) sched.Scheduler { return sched.NewLMTF(4, seed) },
		"p-lmtf":  func(seed int64) sched.Scheduler { return sched.NewPLMTF(4, seed) },
	}
	for name, mk := range schedulers {
		for seed := int64(1); seed <= 3; seed++ {
			for _, faults := range []bool{false, true} {
				label := fmt.Sprintf("%s/seed=%d/faults=%v", name, seed, faults)
				t.Run(label, func(t *testing.T) {
					checkRunInvariants(t, mk(seed), seed, faults)
				})
			}
		}
	}
}

func checkRunInvariants(t *testing.T, s sched.Scheduler, seed int64, faults bool) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(seed))
	gen, err := trace.NewGenerator(seed, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	eng := sim.NewEngine(planner, s, sim.Config{})

	events := gen.Events(10, 2, 8)
	if faults {
		script := fault.RandomScript(seed, ft.Graph(), 4, 2*time.Second, 300*time.Millisecond)
		// Exercise the timeout machinery too: one survivable, one not.
		script = append(script,
			fault.Injection{At: 10 * time.Millisecond, Action: fault.InstallTimeout, Times: 1},
			fault.Injection{At: 20 * time.Millisecond, Action: fault.InstallTimeout, Times: 100},
		)
		eng.SetFaults(script)
	}

	col, err := eng.Run(events)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	// Every submitted event completed (repair events show up as extra
	// collector records, so >= is the right comparison).
	for _, ev := range events {
		if !ev.Done {
			t.Errorf("%v never completed", ev)
		}
	}
	if col.Len() < len(events) {
		t.Errorf("collector has %d records, want >= %d", col.Len(), len(events))
	}

	// Congestion freedom and ledger consistency at end of run.
	g := net.Graph()
	perLink := make(map[topology.LinkID]topology.Bandwidth)
	for _, f := range net.Registry().Placed() {
		for _, l := range f.Path().Links() {
			perLink[l] += f.Demand
			if g.Link(l).Down() {
				t.Errorf("flow %v placed across down link %v", f, g.Link(l))
			}
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		if l.Reserved() > l.Capacity {
			t.Errorf("%v over capacity", l)
		}
		if l.Reserved() != perLink[l.ID] {
			t.Errorf("%v ledger %v != placed sum %v", l, l.Reserved(), perLink[l.ID])
		}
	}
}
