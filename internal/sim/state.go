package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
)

// This file is the engine's checkpoint surface: everything the WAL
// recovery path needs to freeze an engine mid-run and thaw an identical
// one in a new process. The network itself (graph, flows, reservations)
// is carried by a snapshot; EngineState covers the rest — clock, round
// count, scheduled releases, armed timeouts, repair numbering, and the
// probe-counter baseline.

// ReleaseState is one scheduled flow release. Flow is the index of the
// flow in registry order (flow.Registry.All(), which is ID-sorted) —
// the same order snapshot.Capture serializes flows in, so a restored
// release resolves to the restored flow at the same position.
type ReleaseState struct {
	Flow int   `json:"flow"`
	AtNs int64 `json:"at_ns"`
}

// TimeoutState is one armed install-timeout injection.
type TimeoutState struct {
	Event int64 `json:"event"`
	Times int   `json:"times"`
}

// ProbeBase carries the probe-engine counter totals accumulated before
// a checkpoint. A recovered engine's probe caches start cold, so its
// own probe counters restart at zero; syncProbeStats adds this baseline
// back, keeping the collector's run totals continuous across restarts.
type ProbeBase struct {
	Hits          int   `json:"hits"`
	Misses        int   `json:"misses"`
	Cold          int   `json:"cold"`
	Incremental   int   `json:"incremental"`
	JournalMisses int   `json:"journal_misses"`
	Forks         int   `json:"forks"`
	Resyncs       int   `json:"resyncs"`
	WallTimeNs    int64 `json:"wall_time_ns"`
}

// EngineState is the engine's checkpointable run state.
type EngineState struct {
	ClockNs   int64          `json:"clock_ns"`
	Rounds    int64          `json:"rounds"`
	RepairSeq int64          `json:"repair_seq"`
	Releases  []ReleaseState `json:"releases,omitempty"`
	Timeouts  []TimeoutState `json:"timeouts,omitempty"`
	Probe     ProbeBase      `json:"probe"`
}

// Rounds returns the number of completed scheduling rounds. The clock
// only advances inside rounds, so for a fixed admitted-input history
// the pair (rounds, clock) is a pure function of the round count —
// which is what lets WAL replay reproduce admission timing exactly by
// stepping the engine to each record's round stamp.
func (e *Engine) Rounds() int64 { return e.rounds }

// QueueEvents returns the queued events in queue order (shared event
// pointers; callers only read).
func (e *Engine) QueueEvents() []*core.Event { return e.queue.Events() }

// ExportState captures the engine's run state for a checkpoint.
// Releases for flows already withdrawn by faults are omitted together
// with their dropped-marks: the pair cancels to a no-op, and the
// withdrawn flow has no index in the snapshot to point at.
func (e *Engine) ExportState() EngineState {
	st := EngineState{
		ClockNs:   int64(e.clock),
		Rounds:    e.rounds,
		RepairSeq: e.repairSeq,
		Probe: ProbeBase{
			Hits:          e.collector.ProbeCacheHits,
			Misses:        e.collector.ProbeCacheMisses,
			Cold:          e.collector.ProbeCold,
			Incremental:   e.collector.ProbeIncremental,
			JournalMisses: e.collector.ProbeJournalMisses,
			Forks:         e.collector.ProbeForks,
			Resyncs:       e.collector.ProbeResyncs,
			WallTimeNs:    int64(e.collector.ProbeWallTime),
		},
	}
	index := make(map[flow.ID]int)
	for i, f := range e.planner.Network().Registry().All() {
		index[f.ID] = i
	}
	for _, rel := range e.releases {
		if _, gone := e.dropped[rel.f.ID]; gone {
			continue
		}
		i, ok := index[rel.f.ID]
		if !ok {
			panic(fmt.Sprintf("sim: release for unregistered flow %v", rel.f))
		}
		st.Releases = append(st.Releases, ReleaseState{Flow: i, AtNs: int64(rel.at)})
	}
	// The heap is iterated in storage order; sort for a canonical
	// checkpoint (heap.Push on restore re-establishes the invariant).
	sort.Slice(st.Releases, func(i, j int) bool {
		if st.Releases[i].AtNs != st.Releases[j].AtNs {
			return st.Releases[i].AtNs < st.Releases[j].AtNs
		}
		return st.Releases[i].Flow < st.Releases[j].Flow
	})
	for _, arm := range e.timeouts {
		st.Timeouts = append(st.Timeouts, TimeoutState{Event: int64(arm.event), Times: arm.times})
	}
	return st
}

// RestoreState thaws a checkpointed run state into a freshly built
// engine. flows is the restored flow list in snapshot (= registry)
// order, used to resolve release indices. The engine must not have run
// yet. Call before RestoreQueue and before the first Step.
func (e *Engine) RestoreState(st EngineState, flows []*flow.Flow) error {
	if e.rounds != 0 || e.clock != 0 || e.queue.Len() != 0 {
		return fmt.Errorf("sim: RestoreState on an engine that already ran")
	}
	e.clock = time.Duration(st.ClockNs)
	e.rounds = st.Rounds
	e.repairSeq = st.RepairSeq
	for _, rel := range st.Releases {
		if rel.Flow < 0 || rel.Flow >= len(flows) {
			return fmt.Errorf("sim: release references flow index %d of %d", rel.Flow, len(flows))
		}
		heap.Push(&e.releases, release{at: time.Duration(rel.AtNs), f: flows[rel.Flow]})
	}
	for _, arm := range st.Timeouts {
		e.timeouts = append(e.timeouts, timeoutArm{event: flow.EventID(arm.Event), times: arm.Times})
	}
	e.probeBase = st.Probe
	// Publish the baseline immediately so a scrape between recovery and
	// the first round already sees continuous probe totals.
	e.collector.ProbeCacheHits = st.Probe.Hits
	e.collector.ProbeCacheMisses = st.Probe.Misses
	e.collector.ProbeCold = st.Probe.Cold
	e.collector.ProbeIncremental = st.Probe.Incremental
	e.collector.ProbeJournalMisses = st.Probe.JournalMisses
	e.collector.ProbeForks = st.Probe.Forks
	e.collector.ProbeResyncs = st.Probe.Resyncs
	e.collector.ProbeWallTime = time.Duration(st.Probe.WallTimeNs)
	return nil
}

// RestoreQueue refills the update queue with checkpointed events, in
// order, without emitting arrival trace records — the arrivals were
// traced when the events were first admitted; a restart must not tell
// the story twice.
func (e *Engine) RestoreQueue(evs []*core.Event) {
	if len(evs) == 0 {
		return
	}
	e.queue.PushBatch(evs)
}
