package sim

import (
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// cleanConfig removes all timing noise except serialized 1-second installs,
// reproducing the unit-slot arithmetic of the paper's Fig. 2.
func cleanConfig() Config {
	return Config{
		InstallTime:   time.Second,
		MigrationRate: 100 * topology.Mbps,
		PlanEvalTime:  time.Nanosecond, // nonzero to exercise accounting
		Mode:          InstallOnly,
	}
}

// newPlanner builds a planner over an empty k=4 fat-tree; tiny demands
// never congest it, so no event needs migration.
func newPlanner(t *testing.T) (*core.Planner, *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	return core.NewPlanner(migration.NewPlanner(net, 0), 0), ft
}

// fig2Events returns the toy workload of Fig. 2: three events with 3, 4
// and 5 unit flows, all arriving at time zero.
func fig2Events(ft *topology.FatTree) []*core.Event {
	hosts := ft.Hosts()
	mk := func(id flow.EventID, n int) *core.Event {
		specs := make([]flow.Spec, n)
		for i := range specs {
			specs[i] = flow.Spec{
				Src:    hosts[(int(id)*2)%len(hosts)],
				Dst:    hosts[(int(id)*2+1)%len(hosts)],
				Demand: topology.Mbps,
				Size:   0, // pure rule updates; transfers are instant
			}
		}
		return core.NewEvent(id, "toy", 0, specs)
	}
	return []*core.Event{mk(1, 3), mk(2, 4), mk(3, 5)}
}

// within asserts |got-want| <= tol (plan-time accounting adds nanoseconds).
func within(t *testing.T, name string, got, want, tol time.Duration) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestEngineFIFOReproducesFig2EventLevel(t *testing.T) {
	planner, ft := newPlanner(t)
	events := fig2Events(ft)
	eng := NewEngine(planner, sched.FIFO{}, cleanConfig())
	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 3 {
		t.Fatalf("recorded %d events, want 3", col.Len())
	}
	tol := time.Millisecond
	// Event-level serial installs: ECTs 3s, 7s, 12s (Fig. 2b).
	within(t, "U1 ECT", events[0].ECT(), 3*time.Second, tol)
	within(t, "U2 ECT", events[1].ECT(), 7*time.Second, tol)
	within(t, "U3 ECT", events[2].ECT(), 12*time.Second, tol)
	within(t, "avg ECT", col.AvgECT(), 22*time.Second/3, tol)
	within(t, "tail ECT", col.TailECT(), 12*time.Second, tol)
	within(t, "makespan", col.Makespan, 12*time.Second, tol)
}

func TestFlowLevelReproducesFig2Interleaving(t *testing.T) {
	planner, ft := newPlanner(t)
	events := fig2Events(ft)
	fl := NewFlowLevel(planner, cleanConfig())
	col, err := fl.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	tol := time.Millisecond
	// Round-robin interleaving finishes U1 at slot 7, U2 at 10, U3 at 12.
	within(t, "U1 ECT", events[0].ECT(), 7*time.Second, tol)
	within(t, "U2 ECT", events[1].ECT(), 10*time.Second, tol)
	within(t, "U3 ECT", events[2].ECT(), 12*time.Second, tol)
	within(t, "avg ECT", col.AvgECT(), 29*time.Second/3, tol)

	// The headline comparison of Fig. 2: event-level average ECT beats
	// flow-level; tails tie.
	planner2, ft2 := newPlanner(t)
	eng := NewEngine(planner2, sched.FIFO{}, cleanConfig())
	col2, err := eng.Run(fig2Events(ft2))
	if err != nil {
		t.Fatal(err)
	}
	if col2.AvgECT() >= col.AvgECT() {
		t.Errorf("event-level avg ECT %v not better than flow-level %v", col2.AvgECT(), col.AvgECT())
	}
	within(t, "tails tie", col.TailECT(), col2.TailECT(), tol)
}

func TestEngineQueuingDelaysUnderFIFO(t *testing.T) {
	planner, ft := newPlanner(t)
	events := fig2Events(ft)
	eng := NewEngine(planner, sched.FIFO{}, cleanConfig())
	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	delays := col.QueuingDelays()
	tol := time.Millisecond
	within(t, "U1 delay", delays[0], 0, tol)
	within(t, "U2 delay", delays[1], 3*time.Second, tol)
	within(t, "U3 delay", delays[2], 7*time.Second, tol)
}

func TestEngineIdlesUntilArrival(t *testing.T) {
	planner, ft := newPlanner(t)
	hosts := ft.Hosts()
	ev := core.NewEvent(1, "late", 5*time.Second, []flow.Spec{
		{Src: hosts[0], Dst: hosts[1], Demand: topology.Mbps},
	})
	eng := NewEngine(planner, sched.FIFO{}, cleanConfig())
	col, err := eng.Run([]*core.Event{ev})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Start < 5*time.Second {
		t.Errorf("event started at %v, before its arrival", ev.Start)
	}
	within(t, "ECT excludes idle wait", ev.ECT(), time.Second, time.Millisecond)
	if col.Makespan < 6*time.Second {
		t.Errorf("makespan = %v, want >= 6s", col.Makespan)
	}
}

func TestEngineReleasesEventFlows(t *testing.T) {
	planner, ft := newPlanner(t)
	events := fig2Events(ft)
	eng := NewEngine(planner, sched.FIFO{}, cleanConfig())
	if _, err := eng.Run(events); err != nil {
		t.Fatal(err)
	}
	net := planner.Network()
	if got := net.Registry().Len(); got != 0 {
		t.Errorf("registry holds %d flows after run, want 0 (all released)", got)
	}
	if got := net.Utilization(); got != 0 {
		t.Errorf("utilization = %v after run, want 0", got)
	}
}

func TestEngineKeepFlows(t *testing.T) {
	planner, ft := newPlanner(t)
	events := fig2Events(ft)
	cfg := cleanConfig()
	cfg.KeepFlows = true
	eng := NewEngine(planner, sched.FIFO{}, cfg)
	if _, err := eng.Run(events); err != nil {
		t.Fatal(err)
	}
	if got := planner.Network().Registry().Len(); got != 12 {
		t.Errorf("registry holds %d flows, want 12 (kept)", got)
	}
}

func TestEngineInstallPlusTransfer(t *testing.T) {
	planner, ft := newPlanner(t)
	hosts := ft.Hosts()
	// One 10 Mbps flow carrying 10 Mbit => 1 s transfer after install.
	ev := core.NewEvent(1, "xfer", 0, []flow.Spec{
		{Src: hosts[0], Dst: hosts[1], Demand: 10 * topology.Mbps, Size: 10_000_000 / 8},
	})
	cfg := cleanConfig()
	cfg.Mode = InstallPlusTransfer
	eng := NewEngine(planner, sched.FIFO{}, cfg)
	if _, err := eng.Run([]*core.Event{ev}); err != nil {
		t.Fatal(err)
	}
	within(t, "ECT includes transfer", ev.ECT(), 2*time.Second, 10*time.Millisecond)
}

func TestEnginePLMTFCoSchedules(t *testing.T) {
	planner, ft := newPlanner(t)
	events := fig2Events(ft)
	eng := NewEngine(planner, sched.NewPLMTF(4, 1), cleanConfig())
	col, err := eng.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 3 {
		t.Fatalf("recorded %d events, want 3", col.Len())
	}
	// All three tiny events fit together: one parallel round, makespan ~5s
	// (the longest lane) instead of FIFO's 12s.
	within(t, "makespan", col.Makespan, 5*time.Second, 10*time.Millisecond)
	within(t, "avg ECT", col.AvgECT(), 4*time.Second, 10*time.Millisecond)
	for _, ev := range events {
		within(t, "co-scheduled start", ev.Start, 0, 10*time.Millisecond)
	}
}

func TestEngineErrorOnInvalidSpec(t *testing.T) {
	planner, ft := newPlanner(t)
	hosts := ft.Hosts()
	bad := core.NewEvent(1, "bad", 0, []flow.Spec{
		{Src: hosts[0], Dst: hosts[0], Demand: topology.Mbps},
	})
	eng := NewEngine(planner, sched.FIFO{}, cleanConfig())
	if _, err := eng.Run([]*core.Event{bad}); err == nil {
		t.Error("Run with invalid spec succeeded")
	}
}

// TestEngineIntegrationUnderLoad runs every scheduler on a loaded k=4
// fat-tree and checks global invariants.
func TestEngineIntegrationUnderLoad(t *testing.T) {
	schedulers := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.FIFO{} },
		func() sched.Scheduler { return sched.Reorder{} },
		func() sched.Scheduler { return sched.NewLMTF(2, 11) },
		func() sched.Scheduler { return sched.NewPLMTF(2, 11) },
	}
	for _, mk := range schedulers {
		s := mk()
		t.Run(s.Name(), func(t *testing.T) {
			ft, err := topology.NewFatTree(4, topology.Gbps)
			if err != nil {
				t.Fatal(err)
			}
			net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
			gen, err := trace.NewGenerator(21, trace.YahooLike{}, ft.Hosts())
			if err != nil {
				t.Fatal(err)
			}
			background, err := trace.FillBackground(net, gen, 0.4, 0)
			if err != nil {
				t.Fatal(err)
			}
			planner := core.NewPlanner(migration.NewPlanner(net, 0), 0)
			events := gen.Events(8, 3, 10)
			eng := NewEngine(planner, s, Config{})
			col, err := eng.Run(events)
			if err != nil {
				t.Fatal(err)
			}
			if col.Len() != 8 {
				t.Fatalf("recorded %d events, want 8", col.Len())
			}
			for _, ev := range events {
				if !ev.Done {
					t.Errorf("%v not done", ev)
				}
				if ev.Completion < ev.Start || ev.Start < ev.Arrival {
					t.Errorf("%v has inconsistent times: %v %v %v", ev, ev.Arrival, ev.Start, ev.Completion)
				}
			}
			// All event flows released; background intact.
			if got := net.Registry().Len(); got != len(background) {
				t.Errorf("registry = %d flows, want %d background", got, len(background))
			}
			// Congestion-freedom held throughout (spot-check the end state).
			g := net.Graph()
			for i := 0; i < g.NumLinks(); i++ {
				if l := g.Link(topology.LinkID(i)); l.Residual() < 0 {
					t.Errorf("link %v over capacity", l)
				}
			}
			if col.TailECT() < col.AvgECT() {
				t.Error("tail ECT below average ECT")
			}
			if col.PlanTime <= 0 {
				t.Error("no plan time accounted")
			}
		})
	}
}

// TestEngineDeterministicUnderSeed: identical seeds must give identical
// metrics for the randomized schedulers.
func TestEngineDeterministicUnderSeed(t *testing.T) {
	run := func() *runSummary {
		ft, err := topology.NewFatTree(4, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
		gen, err := trace.NewGenerator(33, trace.YahooLike{}, ft.Hosts())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.FillBackground(net, gen, 0.35, 0); err != nil {
			t.Fatal(err)
		}
		planner := core.NewPlanner(migration.NewPlanner(net, 0), 0)
		eng := NewEngine(planner, sched.NewLMTF(3, 17), Config{})
		col, err := eng.Run(gen.Events(6, 3, 8))
		if err != nil {
			t.Fatal(err)
		}
		return &runSummary{col.AvgECT(), col.TailECT(), col.Makespan}
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("same-seed runs diverged: %+v vs %+v", a, b)
	}
}

type runSummary struct {
	avg, tail, makespan time.Duration
}
