package sim_test

import (
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// minCostEngine builds a loaded fat-tree driven by the min-cost
// scheduler with live metrics attached, plus a workload batch.
func minCostEngine(t *testing.T) (*sim.Engine, *obs.SimMetrics, []*core.Event) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
	eng := sim.NewEngine(planner, sched.NewMinCost(), sim.Config{InstallTime: time.Millisecond, Probes: 2})
	reg := obs.NewRegistry()
	met := obs.NewSimMetrics(reg)
	eng.SetTracer(obs.NewTracer(nil, met))
	return eng, met, gen.Events(16, 2, 4)
}

// TestMinCostSteadyStateZeroTrialPlans is the incremental-core
// acceptance criterion: once the queue has been priced, planning
// another round over the unchanged queue performs ZERO full trial-plans
// — no cold plans, no incremental re-plans, not a single probe miss —
// as reported by the run's observability counters.
func TestMinCostSteadyStateZeroTrialPlans(t *testing.T) {
	eng, met, events := minCostEngine(t)
	eng.EnqueueBatch(events)

	// Cold start: the first plan prices the whole queue.
	if _, err := eng.Plan(); err != nil {
		t.Fatalf("cold Plan: %v", err)
	}
	coldMisses := eng.Collector().ProbeCacheMisses
	if coldMisses == 0 {
		t.Fatal("cold plan performed no trial-plans; workload broken")
	}
	if met.ProbeCold.Value() != int64(eng.Collector().ProbeCold) {
		t.Errorf("obs cold gauge %d != collector %d", met.ProbeCold.Value(), eng.Collector().ProbeCold)
	}

	// Steady state: nothing changed, so re-planning the same queue must
	// touch no planner at all.
	for i := 0; i < 3; i++ {
		if _, err := eng.Plan(); err != nil {
			t.Fatalf("steady Plan %d: %v", i, err)
		}
		if got := eng.Collector().ProbeCacheMisses; got != coldMisses {
			t.Fatalf("steady-state plan %d performed %d trial-plans", i, got-coldMisses)
		}
	}
	if met.ProbeCold.Value()+met.ProbeIncremental.Value() != int64(coldMisses) {
		t.Errorf("obs miss split %d cold + %d incremental != %d total misses",
			met.ProbeCold.Value(), met.ProbeIncremental.Value(), coldMisses)
	}

	// Execute one round: the network changes, so the next plan may
	// re-plan dirtied entries — but only dirtied ones, and the dirty-set
	// histogram must have seen the change batch.
	if _, err := eng.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	missesAfterRound := eng.Collector().ProbeCacheMisses
	if _, err := eng.Plan(); err != nil {
		t.Fatalf("post-round Plan: %v", err)
	}
	if eng.Collector().ProbeCold != int(met.ProbeCold.Value()) {
		t.Errorf("collector cold %d != obs gauge %d", eng.Collector().ProbeCold, met.ProbeCold.Value())
	}
	if replans := eng.Collector().ProbeCacheMisses - missesAfterRound; replans > 0 {
		if eng.Collector().ProbeIncremental == 0 {
			t.Errorf("%d post-round replans but zero counted as incremental", replans)
		}
		if met.ProbeDirtyLinks.Count() == 0 {
			t.Error("dirty-set histogram empty despite incremental replans")
		}
	}
}

// TestMinCostMatchesReorderDecisions checks min-cost picks the same
// head Reorder (the full-scan baseline) would: cheapest cost, ties by
// ID. The index is a faster route to the same decision, not a new
// policy.
func TestMinCostMatchesReorderDecisions(t *testing.T) {
	build := func(s sched.Scheduler) (*sim.Engine, []*core.Event) {
		ft, err := topology.NewFatTree(4, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
		gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.FillBackground(net, gen, 0.5, 0); err != nil {
			t.Fatal(err)
		}
		planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)
		return sim.NewEngine(planner, s, sim.Config{InstallTime: time.Millisecond}), gen.Events(12, 2, 4)
	}

	mc, evs1 := build(sched.NewMinCost())
	ro, evs2 := build(sched.Reorder{})
	mc.EnqueueBatch(evs1)
	ro.EnqueueBatch(evs2)
	for round := 0; ; round++ {
		a, errA := mc.Plan()
		b, errB := ro.Plan()
		if (errA != nil) != (errB != nil) {
			t.Fatalf("round %d: min-cost err=%v, reorder err=%v", round, errA, errB)
		}
		if errA != nil {
			break
		}
		if a.Head.ID != b.Head.ID {
			t.Fatalf("round %d: min-cost picked ev%d, reorder picked ev%d", round, a.Head.ID, b.Head.ID)
		}
		da, errA := mc.Step()
		db, errB := ro.Step()
		if errA != nil || errB != nil {
			t.Fatalf("round %d: step: %v / %v", round, errA, errB)
		}
		if !da && !db {
			break
		}
	}
	ca, cb := mc.Collector(), ro.Collector()
	if ca.Len() != cb.Len() || ca.Len() == 0 {
		t.Fatalf("events done: min-cost %d, reorder %d", ca.Len(), cb.Len())
	}
	if ca.TotalCost() != cb.TotalCost() {
		t.Errorf("total cost: min-cost %v, reorder %v", ca.TotalCost(), cb.TotalCost())
	}
}
