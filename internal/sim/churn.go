package sim

import (
	"fmt"
	"math/rand"
	"time"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/trace"
)

// ChurnConfig turns over background traffic while a simulation runs: every
// Interval of virtual time, a Fraction of the background flows depart and
// new flows arrive to restore the network's utilization. This is the
// "network traffic in flux" of Section IV-A — the reason an event's update
// cost changes while it waits in the queue, and the reason LMTF re-probes
// costs each round instead of sorting the queue once.
type ChurnConfig struct {
	// Interval is the virtual time between churn ticks (default 1s).
	Interval time.Duration
	// Fraction of background flows replaced per tick, in (0,1]
	// (default 0.05).
	Fraction float64
	// Seed drives victim selection and replacement traffic.
	Seed int64
	// MaxPlaceAttempts bounds the placement retries per tick (default 50).
	MaxPlaceAttempts int
}

// withDefaults fills zero fields.
func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.Fraction == 0 {
		c.Fraction = 0.05
	}
	if c.MaxPlaceAttempts == 0 {
		c.MaxPlaceAttempts = 50
	}
	return c
}

// churner replaces background flows on a virtual-time schedule.
type churner struct {
	cfg      ChurnConfig
	net      *netstate.Network
	gen      *trace.Generator
	rng      *rand.Rand
	nextTick time.Duration
	// baseline is the utilization to restore after departures.
	baseline float64
}

// newChurner captures the network's current utilization as the level to
// maintain.
func newChurner(net *netstate.Network, gen *trace.Generator, cfg ChurnConfig) *churner {
	cfg = cfg.withDefaults()
	return &churner{
		cfg:      cfg,
		net:      net,
		gen:      gen,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nextTick: cfg.Interval,
		baseline: net.Utilization(),
	}
}

// advance applies every churn tick due by time t.
func (c *churner) advance(t time.Duration) error {
	for c.nextTick <= t {
		if err := c.tick(); err != nil {
			return err
		}
		c.nextTick += c.cfg.Interval
	}
	return nil
}

// tick replaces a fraction of the background flows.
func (c *churner) tick() error {
	var background []*flow.Flow
	for _, f := range c.net.Registry().Placed() {
		if f.Event == flow.NoEvent {
			background = append(background, f)
		}
	}
	depart := int(float64(len(background)) * c.cfg.Fraction)
	if depart == 0 && len(background) > 0 {
		depart = 1
	}
	// Fisher-Yates prefix over the ID-sorted slice keeps selection
	// deterministic under the seed.
	for i := 0; i < depart; i++ {
		j := i + c.rng.Intn(len(background)-i)
		background[i], background[j] = background[j], background[i]
		if err := c.net.Remove(background[i]); err != nil {
			return fmt.Errorf("sim: churn departure: %w", err)
		}
	}
	// Refill toward the baseline utilization.
	attempts := 0
	for c.net.Utilization() < c.baseline && attempts < c.cfg.MaxPlaceAttempts {
		attempts++
		f, err := c.net.AddFlow(c.gen.Spec())
		if err != nil {
			return fmt.Errorf("sim: churn arrival: %w", err)
		}
		if _, err := c.net.PlaceBest(f); err != nil {
			if rmErr := c.net.Remove(f); rmErr != nil {
				return fmt.Errorf("sim: churn cleanup: %w", rmErr)
			}
		}
	}
	return nil
}
