// Package wal is the durable write-ahead event log of the update
// controller: an append-only, length-prefixed, CRC-framed record stream
// that captures every externally-visible input to the deterministic
// engine in admission order — admitted update events and applied fault
// injections — each stamped with a logical-clock ID (virtualTime, seq).
//
// Because the engine is deterministic by construction (byte-identical
// traces per seed), engine state is a pure fold of this log: replaying
// the records against a freshly built world reproduces the exact queue,
// network, clock and metrics the daemon held when the log was written.
// That is the Bayou ordered-update-log design: update IDs <time, seq>,
// DB = fold of the log. Periodic checkpoints capture the folded state
// and truncate the log; recovery restores the newest checkpoint and
// replays only the record suffix past it.
//
// On-disk layout (one directory per daemon):
//
//	wal-<first-seq>.log   segment files, oldest first
//	checkpoint.json       newest checkpoint (atomic rename)
//
// Each segment opens with a meta record describing the world the log
// folds over (scheduler, seed, topology, ...); recovery refuses a log
// whose meta does not match the restarted daemon's configuration.
//
// Framing is corruption-evident: a frame is [u32 payload length]
// [u32 CRC-32C of payload][payload]. A torn tail — a crash mid-write —
// is cleanly ignored up to the last valid frame; a CRC mismatch in the
// middle of a segment surfaces as ErrCorrupt.
package wal

import (
	"errors"
	"fmt"
)

// FormatVersion identifies the WAL record schema.
const FormatVersion = 1

// Typed errors. Match with errors.Is.
var (
	// ErrCorrupt marks a frame whose CRC does not match its payload, a
	// malformed record body, or a sequence discontinuity — damage that a
	// clean crash cannot produce, so replay refuses to guess past it.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrMetaMismatch is returned when a log's meta record describes a
	// different world (scheduler, seed, topology) than the daemon
	// replaying it was configured with.
	ErrMetaMismatch = errors.New("wal: meta mismatch")
	// ErrSeq is returned by Writer.Append for a record whose sequence
	// number is not exactly one past the previous append.
	ErrSeq = errors.New("wal: non-monotonic sequence")
)

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy int

const (
	// SyncGroup fsyncs once per commit (a batch of appends acked
	// together) — the default: group commit amortizes the fsync over the
	// batch, so the pipelined ingest path keeps its throughput.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs after every single append, bounding loss to zero
	// acknowledged records at the cost of one fsync per record.
	SyncAlways
	// SyncOff never fsyncs: appends are flushed to the OS but ride on
	// the page cache. A process crash loses nothing; a machine crash may
	// lose the tail.
	SyncOff
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "unknown"
	}
}

// ParseSyncPolicy parses a -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, group or off)", s)
	}
}

// ID is a record's logical-clock identifier: the engine's virtual time
// at admission and a strictly increasing sequence number. Sequence
// numbers are global across segment rotations, so (VT, Seq) totally
// orders the history even though VT alone repeats (several admissions
// can land between two rounds).
type ID struct {
	// VT is the engine's virtual clock in nanoseconds.
	VT int64 `json:"vt"`
	// Seq numbers records from 1; a checkpoint covering Seq = s replaces
	// the fold of records 1..s.
	Seq int64 `json:"seq"`
}

// Type tags a record's payload.
type Type byte

const (
	// TypeMeta opens every segment: it describes the world the log folds
	// over and carries the sequence base of the segment.
	TypeMeta Type = 1
	// TypeEvent records one admitted update event (post-verdict).
	TypeEvent Type = 2
	// TypeFault records one applied fault injection.
	TypeFault Type = 3
)

// Meta describes the deterministic world a log folds over. Recovery
// verifies it against the restarted daemon's configuration: replaying
// an event log against a different world would diverge silently.
type Meta struct {
	Format    int     `json:"format"`
	Scheduler string  `json:"scheduler"`
	Seed      int64   `json:"seed"`
	K         int     `json:"k"`
	Util      float64 `json:"util"`
	Watermark int     `json:"watermark"`
	Tables    int     `json:"tables"`
	// Shard/Shards record a sharded engine's placement (1-based ID of N);
	// zero for unsharded logs, so pre-shard logs compare equal under
	// Check. Replaying a shard's log into a different slot would fold a
	// disjoint event-ID lattice and must be refused.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// Check reports whether got folds over the same world as m.
func (m *Meta) Check(got *Meta) error {
	if *m == *got {
		return nil
	}
	return fmt.Errorf("%w: log written for %+v, daemon configured %+v", ErrMetaMismatch, *m, *got)
}

// FlowSpec is one flow of a logged event, in wire units.
type FlowSpec struct {
	Src       int   `json:"src"`
	Dst       int   `json:"dst"`
	DemandBps int64 `json:"demand_bps"`
	SizeBytes int64 `json:"size_bytes"`
}

// EventRecord is the payload of one admitted update event.
type EventRecord struct {
	// EventID is the server-assigned event ID the submitter was acked.
	EventID int64 `json:"event_id"`
	// Kind is the event's label ("submitted", "vm-migration", ...).
	Kind string `json:"kind"`
	// Retry marks an admission from a request flagged as a backoff
	// resubmission (restores the retried-ingest counter on replay).
	Retry bool `json:"retry,omitempty"`
	// BatchSize is set on the first record of each accepted request to
	// the number of events that request admitted; replay restores the
	// batch counters and size histogram from it.
	BatchSize int `json:"batch_size,omitempty"`
	// Flows are the event's flows in submission order.
	Flows []FlowSpec `json:"flows"`
	// Origin and SubmitWallNs carry the wire span context of the
	// admitting request (both zero when the submitter sent none). They
	// are observability-only: replay never folds them into engine state,
	// and the wall stamp is explicitly non-deterministic.
	Origin       uint16 `json:"origin,omitempty"`
	SubmitWallNs int64  `json:"submit_wall_ns,omitempty"`
}

// FaultRecord is the payload of one applied fault injection, plus the
// outcome fields replay verifies against (a minted repair event is a
// deterministic consequence, so a mismatch means the fold diverged).
type FaultRecord struct {
	Action string `json:"action"`
	Link   int    `json:"link,omitempty"`
	Node   int    `json:"node,omitempty"`
	Event  int64  `json:"event,omitempty"`
	Times  int    `json:"times,omitempty"`
	// RepairEventID is the repair event the injection minted (0 = none);
	// replay asserts the re-applied injection mints the same one.
	RepairEventID int64 `json:"repair_event_id,omitempty"`
}

// Record is one WAL entry. Exactly one payload pointer matching Type is
// non-nil.
type Record struct {
	Type Type `json:"type"`
	// ID is the logical-clock stamp. For meta records Seq is the
	// segment's sequence base (the last seq covered before the segment).
	ID ID `json:"id"`
	// Rounds is the engine's completed-round count at admission: replay
	// steps the engine to exactly this round before applying the record,
	// which reproduces the live interleaving of rounds and admissions.
	Rounds int64 `json:"rounds"`

	Meta  *Meta        `json:"meta,omitempty"`
	Event *EventRecord `json:"event,omitempty"`
	Fault *FaultRecord `json:"fault,omitempty"`
}
