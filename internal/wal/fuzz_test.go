package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWALDecode throws arbitrary byte streams at the frame decoder. The
// decoder must never panic, never allocate unboundedly, and classify
// every outcome as a clean EOF, a torn tail, or typed corruption. Valid
// frames must survive a re-encode round trip.
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: valid frames of each record type, a multi-record
	// stream, plus truncated and bit-flipped variants.
	var stream []byte
	meta, err := AppendFrame(nil, &Record{Type: TypeMeta, ID: ID{Seq: 0}, Meta: &Meta{Format: FormatVersion, Scheduler: "p-lmtf", Seed: 42, K: 4}})
	if err != nil {
		f.Fatal(err)
	}
	ev, err := AppendFrame(nil, &Record{
		Type: TypeEvent, ID: ID{VT: 5000, Seq: 1}, Rounds: 2,
		Event: &EventRecord{EventID: 1, Kind: "submitted", BatchSize: 2, Flows: []FlowSpec{{Src: 1, Dst: 9, DemandBps: 1e9, SizeBytes: 1 << 20}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	flt, err := AppendFrame(nil, &Record{
		Type: TypeFault, ID: ID{VT: 9000, Seq: 2}, Rounds: 4,
		Fault: &FaultRecord{Action: "link-down", Link: 3, RepairEventID: 1<<40 + 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	stream = append(stream, meta...)
	stream = append(stream, ev...)
	stream = append(stream, flt...)

	f.Add(meta)
	f.Add(ev)
	f.Add(flt)
	f.Add(stream)
	f.Add(stream[:len(stream)-3]) // torn tail
	f.Add(ev[:5])                 // torn header
	flipped := append([]byte(nil), ev...)
	flipped[10] ^= 0x01 // bit flip in payload
	f.Add(flipped)
	flipped2 := append([]byte(nil), flt...)
	flipped2[4] ^= 0x80 // bit flip in stored CRC
	f.Add(flipped2)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var scratch []byte
		for {
			rec, s, err := ReadFrame(r, scratch)
			scratch = s
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("undecodable frame with untyped error: %v", err)
				}
				return
			}
			// A decoded record must re-encode and decode to itself.
			buf, err := AppendFrame(nil, rec)
			if err != nil {
				t.Fatalf("re-encode of decoded record failed: %v (rec=%+v)", err, rec)
			}
			rec2, _, err := ReadFrame(bytes.NewReader(buf), nil)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if rec2.Type != rec.Type || rec2.ID != rec.ID || rec2.Rounds != rec.Rounds {
				t.Fatalf("round trip changed header: %+v vs %+v", rec, rec2)
			}
		}
	})
}
