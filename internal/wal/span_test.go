package wal

import (
	"bytes"
	"reflect"
	"testing"
)

// Event records carrying a wire span context round-trip it through the
// flag-gated suffix; records without one encode byte-identically to the
// pre-span format.
func TestEventSpanContextRoundTrip(t *testing.T) {
	rec := &Record{
		Type: TypeEvent, ID: ID{VT: 5000, Seq: 1}, Rounds: 2,
		Event: &EventRecord{
			EventID: 42, Kind: "submitted", BatchSize: 3,
			Flows:        []FlowSpec{{Src: 1, Dst: 2, DemandBps: 1e6, SizeBytes: 4096}},
			Origin:       7,
			SubmitWallNs: 1722400000123456789,
		},
	}
	buf, err := AppendFrame(nil, rec)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	got, _, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("round trip mismatch:\n in: %+v %+v\nout: %+v %+v", rec, rec.Event, got, got.Event)
	}
}

func TestEventWithoutSpanMatchesOldFormat(t *testing.T) {
	ev := &EventRecord{
		EventID: 9, Kind: "vm", Flows: []FlowSpec{{Src: 0, Dst: 3, DemandBps: 100}},
	}
	rec := &Record{Type: TypeEvent, ID: ID{VT: 100, Seq: 1}, Event: ev}
	buf, err := AppendFrame(nil, rec)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	// The payload must end exactly after the flow array: header (8) +
	// record header (25) + flags/batch/id (13) + kind (1+2) + flow count
	// (2) + one flow (24); no span suffix, flag bit 1 clear.
	wantLen := frameHeaderSize + recHeaderSize + 13 + 3 + 2 + 24
	if len(buf) != wantLen {
		t.Fatalf("spanless frame is %d bytes, want %d (format drifted)", len(buf), wantLen)
	}
	if flags := buf[frameHeaderSize+recHeaderSize]; flags&eventFlagSpan != 0 {
		t.Fatalf("spanless record has span flag set")
	}
	got, _, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Event.Origin != 0 || got.Event.SubmitWallNs != 0 {
		t.Fatalf("spanless decode fabricated context: %+v", got.Event)
	}
}

// A truncated span suffix must be rejected as corrupt, not silently
// absorbed into the flow array.
func TestEventSpanSuffixTruncated(t *testing.T) {
	rec := &Record{
		Type: TypeEvent, ID: ID{VT: 1, Seq: 1},
		Event: &EventRecord{EventID: 1, Kind: "x", Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 1}}, Origin: 1},
	}
	buf, err := AppendFrame(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	payload := buf[frameHeaderSize : len(buf)-4] // drop 4 suffix bytes
	if _, err := DecodePayload(payload); err == nil {
		t.Fatal("truncated span suffix decoded without error")
	}
}
