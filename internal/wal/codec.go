package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Frame layout:
//
//	u32  payload length (little endian)
//	u32  CRC-32C (Castagnoli) of the payload bytes
//	payload
//
// Payload layout (common header, then a per-type body):
//
//	u8   record type
//	u64  seq
//	u64  vt      (engine virtual clock, ns)
//	u64  rounds  (engine completed rounds at admission)
//	body
//
// Event bodies are dense binary — they are the hot path, appended once
// per admitted event under the ingest pipeline. Meta and fault bodies
// are JSON: they are rare (one meta per segment, one fault per operator
// action) and benefit from being self-describing.
//
// Event body:
//
//	u8   flags (bit 0: retry; bit 1: span context suffix present)
//	u32  batch size (0 unless first record of an accepted request)
//	u64  event ID
//	u8   kind length, then kind bytes
//	u16  flow count, then per flow: u32 src, u32 dst, u64 demand, u64 size
//	[u16 origin, u64 submit wall ns]  — only when flag bit 1 is set

const (
	frameHeaderSize = 8
	recHeaderSize   = 1 + 8 + 8 + 8

	// maxFramePayload bounds a frame so a corrupt length prefix cannot
	// drive a giant allocation. Checkpoint state lives outside the log,
	// so real payloads are small (a meta record or one event's flows).
	maxFramePayload = 1 << 24

	eventFlagRetry = 1 << 0
	// eventFlagSpan gates a 10-byte span-context suffix (u16 origin +
	// u64 submit wall ns) after the flow array. Records without wire
	// span context omit both flag and suffix, so logs written by span-
	// unaware peers and spanless runs stay byte-identical to the old
	// format.
	eventFlagSpan = 1 << 1

	spanSuffixSize = 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame encodes rec as one frame and appends it to dst.
func AppendFrame(dst []byte, rec *Record) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder

	p := len(dst)
	dst = append(dst, byte(rec.Type))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.ID.Seq))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.ID.VT))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Rounds))

	switch rec.Type {
	case TypeEvent:
		ev := rec.Event
		if ev == nil {
			return dst, fmt.Errorf("wal: event record without event payload")
		}
		if len(ev.Kind) > math.MaxUint8 {
			return dst, fmt.Errorf("wal: event kind %q too long", ev.Kind)
		}
		if len(ev.Flows) > math.MaxUint16 {
			return dst, fmt.Errorf("wal: event has %d flows, max %d", len(ev.Flows), math.MaxUint16)
		}
		var flags byte
		if ev.Retry {
			flags |= eventFlagRetry
		}
		if ev.Origin != 0 || ev.SubmitWallNs != 0 {
			flags |= eventFlagSpan
		}
		dst = append(dst, flags)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(ev.BatchSize))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(ev.EventID))
		dst = append(dst, byte(len(ev.Kind)))
		dst = append(dst, ev.Kind...)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ev.Flows)))
		for _, f := range ev.Flows {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Src))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Dst))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(f.DemandBps))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(f.SizeBytes))
		}
		if flags&eventFlagSpan != 0 {
			dst = binary.LittleEndian.AppendUint16(dst, ev.Origin)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(ev.SubmitWallNs))
		}
	case TypeMeta:
		if rec.Meta == nil {
			return dst, fmt.Errorf("wal: meta record without meta payload")
		}
		body, err := json.Marshal(rec.Meta)
		if err != nil {
			return dst, err
		}
		dst = append(dst, body...)
	case TypeFault:
		if rec.Fault == nil {
			return dst, fmt.Errorf("wal: fault record without fault payload")
		}
		body, err := json.Marshal(rec.Fault)
		if err != nil {
			return dst, err
		}
		dst = append(dst, body...)
	default:
		return dst, fmt.Errorf("wal: unknown record type %d", rec.Type)
	}

	payload := dst[p:]
	if len(payload) > maxFramePayload {
		return dst, fmt.Errorf("wal: frame payload %d exceeds cap %d", len(payload), maxFramePayload)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst, nil
}

// DecodePayload decodes one frame payload (the bytes after the frame
// header, already CRC-verified) into a Record.
func DecodePayload(payload []byte) (*Record, error) {
	if len(payload) < recHeaderSize {
		return nil, fmt.Errorf("%w: payload %d bytes, want at least %d", ErrCorrupt, len(payload), recHeaderSize)
	}
	rec := &Record{Type: Type(payload[0])}
	rec.ID.Seq = int64(binary.LittleEndian.Uint64(payload[1:]))
	rec.ID.VT = int64(binary.LittleEndian.Uint64(payload[9:]))
	rec.Rounds = int64(binary.LittleEndian.Uint64(payload[17:]))
	body := payload[recHeaderSize:]

	switch rec.Type {
	case TypeEvent:
		ev, err := decodeEventBody(body)
		if err != nil {
			return nil, err
		}
		rec.Event = ev
	case TypeMeta:
		m := &Meta{}
		if err := json.Unmarshal(body, m); err != nil {
			return nil, fmt.Errorf("%w: bad meta body: %v", ErrCorrupt, err)
		}
		rec.Meta = m
	case TypeFault:
		f := &FaultRecord{}
		if err := json.Unmarshal(body, f); err != nil {
			return nil, fmt.Errorf("%w: bad fault body: %v", ErrCorrupt, err)
		}
		rec.Fault = f
	default:
		return nil, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, rec.Type)
	}
	return rec, nil
}

func decodeEventBody(body []byte) (*EventRecord, error) {
	bad := func(what string) error {
		return fmt.Errorf("%w: truncated event body at %s", ErrCorrupt, what)
	}
	if len(body) < 1+4+8+1 {
		return nil, bad("header")
	}
	ev := &EventRecord{}
	flags := body[0]
	ev.Retry = flags&eventFlagRetry != 0
	ev.BatchSize = int(binary.LittleEndian.Uint32(body[1:]))
	ev.EventID = int64(binary.LittleEndian.Uint64(body[5:]))
	kindLen := int(body[13])
	body = body[14:]
	if len(body) < kindLen+2 {
		return nil, bad("kind")
	}
	ev.Kind = string(body[:kindLen])
	flowCount := int(binary.LittleEndian.Uint16(body[kindLen:]))
	body = body[kindLen+2:]
	want := flowCount * 24
	if flags&eventFlagSpan != 0 {
		want += spanSuffixSize
	}
	if len(body) != want {
		return nil, fmt.Errorf("%w: event body has %d bytes for %d flows", ErrCorrupt, len(body), flowCount)
	}
	ev.Flows = make([]FlowSpec, flowCount)
	for i := range ev.Flows {
		off := i * 24
		ev.Flows[i] = FlowSpec{
			Src:       int(binary.LittleEndian.Uint32(body[off:])),
			Dst:       int(binary.LittleEndian.Uint32(body[off+4:])),
			DemandBps: int64(binary.LittleEndian.Uint64(body[off+8:])),
			SizeBytes: int64(binary.LittleEndian.Uint64(body[off+16:])),
		}
	}
	if flags&eventFlagSpan != 0 {
		off := flowCount * 24
		ev.Origin = binary.LittleEndian.Uint16(body[off:])
		ev.SubmitWallNs = int64(binary.LittleEndian.Uint64(body[off+2:]))
	}
	return ev, nil
}

// ReadFrame reads one frame from r. It returns io.EOF at a clean record
// boundary and io.ErrUnexpectedEOF when the stream ends inside a frame
// (a torn tail). A CRC mismatch or malformed record is ErrCorrupt.
// On success the returned scratch slice is exactly the payload read, so
// len(scratch) is the frame's payload length; pass it back in to reuse
// the allocation.
func ReadFrame(r io.Reader, scratch []byte) (*Record, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, scratch, io.EOF
		}
		return nil, scratch, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFramePayload {
		return nil, scratch, fmt.Errorf("%w: frame length %d exceeds cap %d", ErrCorrupt, n, maxFramePayload)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	payload := scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, scratch, io.ErrUnexpectedEOF
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, scratch, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	rec, err := DecodePayload(payload)
	if err != nil {
		return nil, payload, err
	}
	return rec, payload, nil
}
