package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testMeta() *Meta {
	return &Meta{Format: FormatVersion, Scheduler: "p-lmtf", Seed: 42, K: 4, Util: 0.5, Watermark: 1024}
}

func testRecords(n int) []*Record {
	recs := make([]*Record, 0, n)
	for i := 0; i < n; i++ {
		seq := int64(i + 1)
		if i%5 == 4 {
			recs = append(recs, &Record{
				Type:   TypeFault,
				ID:     ID{VT: 1000 * seq, Seq: seq},
				Rounds: seq / 2,
				Fault:  &FaultRecord{Action: "link-down", Link: int(seq), RepairEventID: 1<<40 + seq},
			})
			continue
		}
		recs = append(recs, &Record{
			Type:   TypeEvent,
			ID:     ID{VT: 1000 * seq, Seq: seq},
			Rounds: seq / 2,
			Event: &EventRecord{
				EventID:   seq,
				Kind:      "submitted",
				Retry:     i%3 == 0,
				BatchSize: 1,
				Flows: []FlowSpec{
					{Src: int(seq), Dst: int(seq) + 1, DemandBps: 1e9, SizeBytes: 1 << 20},
					{Src: 0, Dst: 7, DemandBps: 5e8, SizeBytes: 1 << 19},
				},
			},
		})
	}
	return recs
}

func appendAll(t *testing.T, w *Writer, recs []*Record) {
	t.Helper()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append(seq=%d): %v", rec.ID.Seq, err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func replayAll(t *testing.T, l *Log, afterSeq int64) ([]*Record, ReplayInfo) {
	t.Helper()
	var got []*Record
	info, err := l.Replay(afterSeq, func(rec *Record) error {
		cp := *rec
		got = append(got, &cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, info
}

func TestCodecRoundTrip(t *testing.T) {
	recs := testRecords(10)
	recs = append(recs, &Record{Type: TypeMeta, ID: ID{Seq: 0}, Meta: testMeta()})
	for _, rec := range recs {
		buf, err := AppendFrame(nil, rec)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		got, _, err := ReadFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", rec, got)
		}
	}
}

func TestWriterSeqEnforced(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := testRecords(3)[2] // seq 3, but writer expects 1
	if err := w.Append(rec); !errors.Is(err, ErrSeq) {
		t.Fatalf("Append(seq=3) err = %v, want ErrSeq", err)
	}
}

func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(12)

	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Empty() {
		t.Fatal("fresh log not Empty")
	}
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Empty() {
		t.Fatal("log with records reports Empty")
	}
	if got := l2.LastSeq(); got != 12 {
		t.Fatalf("LastSeq = %d, want 12", got)
	}
	if m := l2.Meta(); m == nil || *m != *testMeta() {
		t.Fatalf("Meta = %+v, want %+v", m, testMeta())
	}
	got, info := replayAll(t, l2, 0)
	if info.Records != len(recs) || info.Truncated {
		t.Fatalf("ReplayInfo = %+v", info)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed records differ")
	}

	// Replay past a cutoff skips the prefix.
	got, _ = replayAll(t, l2, 7)
	if len(got) != 5 || got[0].ID.Seq != 8 {
		t.Fatalf("Replay(after=7) got %d records, first seq %d", len(got), got[0].ID.Seq)
	}
}

func TestReopenContinuesSeq(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(8)

	l, _ := Open(dir)
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs[:5])
	w.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := l2.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w2.LastSeq() != 5 {
		t.Fatalf("reopened writer LastSeq = %d, want 5", w2.LastSeq())
	}
	appendAll(t, w2, recs[5:])
	w2.Close()

	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, l3, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("records after reopen differ")
	}
}

// TestTornTail truncates the log at every byte length between the
// second-to-last and last frame boundary: replay must cleanly ignore
// the torn tail and surface exactly the prefix.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(6)
	l, _ := Open(dir)
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs)
	w.Close()

	lscan, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := lscan.Segments()[0]
	data, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	ends := seg.FrameEnds
	prevEnd := ends[len(ends)-2] // boundary before the final record
	for cut := prevEnd + 1; cut < int64(len(data)); cut++ {
		path := filepath.Join(t.TempDir(), segmentName(0))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lt, err := Open(filepath.Dir(path))
		if err != nil {
			t.Fatalf("Open(cut=%d): %v", cut, err)
		}
		if lt.LastSeq() != 5 {
			t.Fatalf("cut=%d: LastSeq = %d, want 5", cut, lt.LastSeq())
		}
		got, info := replayAll(t, lt, 0)
		if !info.Truncated {
			t.Fatalf("cut=%d: truncation not reported", cut)
		}
		if !reflect.DeepEqual(got, recs[:5]) {
			t.Fatalf("cut=%d: replayed prefix differs", cut)
		}
	}

	// A cut at an exact frame boundary is not a torn tail at all.
	path := filepath.Join(t.TempDir(), segmentName(0))
	if err := os.WriteFile(path, data[:prevEnd], 0o644); err != nil {
		t.Fatal(err)
	}
	lt, err := Open(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, lt, 0)
	if info.Truncated || len(got) != 5 {
		t.Fatalf("boundary cut: info=%+v records=%d", info, len(got))
	}
}

// TestTornTailTruncatedOnAppend reopens a torn log for writing: the
// torn bytes must be discarded so new appends extend the last valid
// frame, and a subsequent scan sees a contiguous log.
func TestTornTailTruncatedOnAppend(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(6)
	l, _ := Open(dir)
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs[:5])
	w.Close()

	segPath := l.Segments()[0].Path
	data, _ := os.ReadFile(segPath)
	if err := os.WriteFile(segPath, append(data, 0xde, 0xad, 0xbe), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := l2.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w2, recs[5:])
	w2.Close()

	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, l3, 0)
	if info.Truncated {
		t.Fatal("tail still torn after reopen-for-append")
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("records differ after torn-tail repair")
	}
}

// TestBitFlipIsCorrupt flips one bit in each frame region of a valid
// segment: scan must fail with ErrCorrupt (never silently skip).
func TestBitFlipIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, testRecords(4))
	w.Close()
	data, err := os.ReadFile(l.Segments()[0].Path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a bit in the payload, the CRC field and mid-stream (not the
	// final frame, so truncation tolerance cannot mask it).
	for _, off := range []int{9, 4, len(data) / 2} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		path := filepath.Join(t.TempDir(), segmentName(0))
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(filepath.Dir(path))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: Open err = %v, want ErrCorrupt", off, err)
		}
	}
}

func TestCheckpointRotateAndPurge(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(10)
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs[:6])

	state := []byte(`{"folded":6}`)
	w2, err := l.Rotate(w, state, ID{VT: 6000, Seq: 6}, 3)
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, w2, recs[6:])
	w2.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after rotate: %v", err)
	}
	ck := l2.Checkpoint()
	if ck == nil || ck.ID.Seq != 6 || ck.Rounds != 3 || string(ck.State) != string(state) {
		t.Fatalf("Checkpoint = %+v", ck)
	}
	if n := len(l2.Segments()); n != 1 {
		t.Fatalf("segments after purge = %d, want 1", n)
	}
	got, _ := replayAll(t, l2, ck.ID.Seq)
	if !reflect.DeepEqual(got, recs[6:]) {
		t.Fatal("suffix replay after checkpoint differs")
	}
	if m := l2.Meta(); m == nil || *m != *testMeta() {
		t.Fatalf("meta lost across rotation: %+v", m)
	}
}

func TestKeepSegmentsArchivesHistory(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(10)
	l, err := Open(dir, WithKeepSegments())
	if err != nil {
		t.Fatal(err)
	}
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs[:6])
	w2, err := l.Rotate(w, []byte(`{}`), ID{VT: 6000, Seq: 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w2, recs[6:])
	w2.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(l2.Segments()); n != 2 {
		t.Fatalf("segments kept = %d, want 2", n)
	}
	// Genesis fold still possible: replay everything from seq 0.
	got, _ := replayAll(t, l2, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("genesis replay with kept segments differs")
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint-0000000000000006.json")); err != nil {
		t.Fatalf("checkpoint archive missing: %v", err)
	}
}

func TestMetaMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, testRecords(3))
	w.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	other := testMeta()
	other.Seed = 99
	if _, err := l2.OpenWriter(other, ID{}, 0); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("OpenWriter with different world err = %v, want ErrMetaMismatch", err)
	}
}

func TestReadFrameTornHeader(t *testing.T) {
	buf, err := AppendFrame(nil, testRecords(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(buf[:cut]), nil)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut=%d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}
