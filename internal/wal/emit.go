// Raw frame re-emission for replication catch-up: a leader streams the
// exact frame bytes sitting in its segment files to a follower resuming
// from an arbitrary sequence number. The scanned FrameEnds offsets let
// the reader seek straight to the first needed frame instead of
// decoding the whole segment.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// EmitFrames streams the raw frame bytes of every event/fault record
// with seq in (afterSeq, upTo] to fn, reading from the segment files
// described by segs (a snapshot of Log.Segments taken while records
// through upTo were durably flushed). fn receives the framed bytes
// (header plus payload) and the decoded record; the byte slice is only
// valid during the call.
//
// The snapshot may be older than the files: only the newest segment
// grows, so frames past its scanned FrameEnds are read sequentially
// until upTo is reached, while resume points inside the scanned range
// seek directly to their FrameEnds boundary. Concurrent appends past
// upTo are never read, so a live writer on the same files is safe.
func EmitFrames(segs []SegmentInfo, afterSeq, upTo int64, fn func(frame []byte, rec *Record) error) error {
	emitted := afterSeq
	for i := range segs {
		if emitted >= upTo {
			break
		}
		seg := &segs[i]
		// Non-final segments are immutable, so their scanned LastSeq is
		// authoritative; the final segment may hold frames past the scan.
		if i < len(segs)-1 && seg.LastSeq <= emitted {
			continue
		}
		if err := emitSegment(seg, &emitted, upTo, fn); err != nil {
			return fmt.Errorf("%s: %w", seg.Path, err)
		}
	}
	if emitted < upTo {
		return fmt.Errorf("wal: emit: frames end at seq %d, want %d", emitted, upTo)
	}
	return nil
}

func emitSegment(seg *SegmentInfo, emitted *int64, upTo int64, fn func([]byte, *Record) error) error {
	f, err := os.Open(seg.Path)
	if err != nil {
		return err
	}
	defer f.Close()

	// FrameEnds[k] closes frame k: the meta record for k = 0, record seq
	// Base+k past it. Seek past every frame the resume point covers that
	// the scan knew about; anything further is skipped frame by frame.
	if skip := *emitted - seg.Base; skip > 0 && len(seg.FrameEnds) > 0 {
		idx := skip
		if idx > int64(len(seg.FrameEnds)-1) {
			idx = int64(len(seg.FrameEnds) - 1)
		}
		if _, err := f.Seek(seg.FrameEnds[idx], io.SeekStart); err != nil {
			return err
		}
	}

	br := bufio.NewReaderSize(f, 1<<16)
	var frame []byte
	for *emitted < upTo {
		frame, err = readRawFrame(br, frame)
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			// A torn tail can only trail the frames we need (those were
			// committed before the snapshot), so reaching it means this
			// segment is exhausted.
			return nil
		}
		if err != nil {
			return err
		}
		rec, err := DecodePayload(frame[frameHeaderSize:])
		if err != nil {
			return err
		}
		if rec.Type == TypeMeta || rec.ID.Seq <= *emitted {
			continue
		}
		if rec.ID.Seq != *emitted+1 {
			return fmt.Errorf("%w: emit seq %d after %d", ErrCorrupt, rec.ID.Seq, *emitted)
		}
		if err := fn(frame, rec); err != nil {
			return err
		}
		*emitted = rec.ID.Seq
	}
	return nil
}

// readRawFrame reads one whole frame — header and payload — into buf,
// verifying the CRC. The same EOF conventions as ReadFrame apply.
func readRawFrame(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < frameHeaderSize {
		buf = make([]byte, frameHeaderSize, 4096)
	}
	buf = buf[:frameHeaderSize]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return buf, io.EOF
		}
		return buf, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(buf)
	want := binary.LittleEndian.Uint32(buf[4:])
	if n > maxFramePayload {
		return buf, fmt.Errorf("%w: frame length %d exceeds cap %d", ErrCorrupt, n, maxFramePayload)
	}
	total := frameHeaderSize + int(n)
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:total]
	if _, err := io.ReadFull(r, buf[frameHeaderSize:]); err != nil {
		return buf, io.ErrUnexpectedEOF
	}
	if got := crc32.Checksum(buf[frameHeaderSize:], castagnoli); got != want {
		return buf, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	return buf, nil
}
