package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	checkpointName = "checkpoint.json"
)

// Checkpoint is the on-disk checkpoint envelope: the logical-clock ID
// and round count of the fold it captures, plus an opaque state
// document owned by the ctl layer. A checkpoint covering ID.Seq = s
// replaces the fold of records 1..s; recovery replays only seq > s.
type Checkpoint struct {
	Format int             `json:"format"`
	ID     ID              `json:"id"`
	Rounds int64           `json:"rounds"`
	State  json.RawMessage `json:"state"`
}

// SegmentInfo describes one scanned segment file.
type SegmentInfo struct {
	Path string
	// Base is the sequence base from the file name: the last seq covered
	// before this segment, so its first record carries Base+1.
	Base int64
	// Records counts decoded non-meta records.
	Records int
	// LastSeq is the last valid record seq (== Base for meta-only).
	LastSeq int64
	// FrameEnds holds the byte offset just past each valid frame,
	// including the meta frame — the clean truncation points a torn
	// write can leave behind.
	FrameEnds []int64
	// Truncated reports a torn tail past the last valid frame.
	Truncated bool
}

// ReplayInfo summarizes one Replay pass.
type ReplayInfo struct {
	// Records is the number of records handed to the callback.
	Records int
	// LastSeq is the last record seq in the log (independent of the
	// afterSeq cutoff).
	LastSeq int64
	// Truncated reports that a torn tail was ignored.
	Truncated bool
}

// Option configures Open.
type Option func(*Log)

// WithSync sets the fsync policy for writers opened from this log.
func WithSync(p SyncPolicy) Option { return func(l *Log) { l.policy = p } }

// WithKeepSegments disables segment purging on checkpoint and archives
// each checkpoint as checkpoint-<seq>.json next to the live one. The
// full history stays replayable from genesis — used by the fold-
// equivalence tests to rebuild the crash image at any record prefix.
func WithKeepSegments() Option { return func(l *Log) { l.keep = true } }

// Log manages a WAL directory: its segment files and checkpoint. Open
// scans and validates the whole directory up front; Replay re-reads the
// segments to hand records to the recovery fold.
type Log struct {
	dir    string
	policy SyncPolicy
	keep   bool

	segments []SegmentInfo
	lastSeq  int64
	meta     *Meta
	ckpt     *Checkpoint
}

// Open opens (creating if needed) the WAL directory at dir and scans
// it: segment names, frame CRCs and sequence continuity are verified.
// A torn tail on the last segment is tolerated and noted; any other
// damage fails with ErrCorrupt.
func Open(dir string, opts ...Option) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, policy: SyncGroup}
	for _, opt := range opts {
		opt(l)
	}
	if err := l.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Empty reports a fresh log: no checkpoint and no records.
func (l *Log) Empty() bool { return l.ckpt == nil && l.lastSeq == 0 }

// LastSeq returns the highest valid record seq on disk (0 if none).
func (l *Log) LastSeq() int64 { return l.lastSeq }

// Meta returns the world descriptor from the oldest segment, or nil
// for a fresh log.
func (l *Log) Meta() *Meta { return l.meta }

// Checkpoint returns the newest checkpoint, or nil.
func (l *Log) Checkpoint() *Checkpoint { return l.ckpt }

// Segments returns the scanned segments, oldest first.
func (l *Log) Segments() []SegmentInfo { return l.segments }

func (l *Log) loadCheckpoint() error {
	data, err := os.ReadFile(filepath.Join(l.dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return fmt.Errorf("%w: bad checkpoint: %v", ErrCorrupt, err)
	}
	if ck.Format != FormatVersion {
		return fmt.Errorf("%w: checkpoint format %d, want %d", ErrCorrupt, ck.Format, FormatVersion)
	}
	l.ckpt = ck
	return nil
}

func segmentBase(name string) (int64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	base, err := strconv.ParseInt(name[len(segmentPrefix):len(name)-len(segmentSuffix)], 16, 64)
	if err != nil || base < 0 {
		return 0, false
	}
	return base, true
}

func segmentName(base int64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, base, segmentSuffix)
}

func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if base, ok := segmentBase(e.Name()); ok {
			l.segments = append(l.segments, SegmentInfo{Path: filepath.Join(l.dir, e.Name()), Base: base})
		}
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i].Base < l.segments[j].Base })

	for i := range l.segments {
		seg := &l.segments[i]
		last := i == len(l.segments)-1
		if err := scanSegment(seg, last); err != nil {
			return err
		}
		if seg.Truncated && !last {
			return fmt.Errorf("%w: %s truncated but not the last segment", ErrCorrupt, seg.Path)
		}
		if i > 0 && seg.Base != l.segments[i-1].LastSeq {
			return fmt.Errorf("%w: segment %s base %d does not continue previous last seq %d",
				ErrCorrupt, seg.Path, seg.Base, l.segments[i-1].LastSeq)
		}
		if seg.LastSeq > l.lastSeq {
			l.lastSeq = seg.LastSeq
		}
	}
	if len(l.segments) > 0 {
		first := l.segments[0]
		if meta, err := readSegmentMeta(first.Path); err == nil && meta != nil {
			l.meta = meta
		}
	}
	if l.ckpt != nil && l.ckpt.ID.Seq > l.lastSeq {
		return fmt.Errorf("%w: checkpoint covers seq %d but log ends at %d", ErrCorrupt, l.ckpt.ID.Seq, l.lastSeq)
	}
	return nil
}

// scanSegment validates one segment file and fills in its SegmentInfo.
// A torn tail is tolerated only when tolerateTail is set (last
// segment); the caller enforces that.
func scanSegment(seg *SegmentInfo, tolerateTail bool) error {
	f, err := os.Open(seg.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var (
		off     int64
		scratch []byte
		sawMeta bool
	)
	seg.LastSeq = seg.Base
	for {
		var rec *Record
		rec, scratch, err = ReadFrame(br, scratch)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			if !tolerateTail {
				return fmt.Errorf("%w: %s truncated mid-segment", ErrCorrupt, seg.Path)
			}
			seg.Truncated = true
			break
		}
		if err != nil {
			return fmt.Errorf("%s at offset %d: %w", seg.Path, off, err)
		}
		if !sawMeta {
			if rec.Type != TypeMeta {
				return fmt.Errorf("%w: %s does not start with a meta record", ErrCorrupt, seg.Path)
			}
			if rec.ID.Seq != seg.Base {
				return fmt.Errorf("%w: %s meta base %d, file name says %d", ErrCorrupt, seg.Path, rec.ID.Seq, seg.Base)
			}
			sawMeta = true
		} else {
			if rec.Type == TypeMeta {
				return fmt.Errorf("%w: %s has a second meta record", ErrCorrupt, seg.Path)
			}
			if rec.ID.Seq != seg.LastSeq+1 {
				return fmt.Errorf("%w: %s seq %d after %d", ErrCorrupt, seg.Path, rec.ID.Seq, seg.LastSeq)
			}
			seg.LastSeq = rec.ID.Seq
			seg.Records++
		}
		off += frameHeaderSize + int64(len(scratch))
		seg.FrameEnds = append(seg.FrameEnds, off)
	}
	return nil
}

// readSegmentMeta decodes just the leading meta record of a segment.
func readSegmentMeta(path string) (*Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, _, err := ReadFrame(bufio.NewReader(f), nil)
	if err != nil {
		return nil, err
	}
	if rec.Type != TypeMeta {
		return nil, fmt.Errorf("%w: %s does not start with a meta record", ErrCorrupt, path)
	}
	return rec.Meta, nil
}

// Replay re-reads every segment in order and hands each event/fault
// record with seq > afterSeq to fn, stopping on the first fn error.
// Meta records are skipped (Open already validated them). The torn tail
// of the last segment, if any, is ignored.
func (l *Log) Replay(afterSeq int64, fn func(*Record) error) (ReplayInfo, error) {
	info := ReplayInfo{LastSeq: l.lastSeq}
	for i := range l.segments {
		seg := &l.segments[i]
		if seg.LastSeq <= afterSeq {
			continue
		}
		if err := replaySegment(seg, afterSeq, fn, &info); err != nil {
			return info, err
		}
		info.Truncated = info.Truncated || seg.Truncated
	}
	return info, nil
}

func replaySegment(seg *SegmentInfo, afterSeq int64, fn func(*Record) error, info *ReplayInfo) error {
	f, err := os.Open(seg.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var scratch []byte
	for n := 0; n < len(seg.FrameEnds); n++ {
		var rec *Record
		rec, scratch, err = ReadFrame(br, scratch)
		if err != nil {
			return fmt.Errorf("%s: %w", seg.Path, err)
		}
		if rec.Type == TypeMeta || rec.ID.Seq <= afterSeq {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
		info.Records++
	}
	return nil
}

// TruncateTail physically truncates the newest segment to its last
// valid frame boundary (the final FrameEnds offset), discarding the
// torn tail a crash mid-append can leave behind. It returns the number
// of bytes removed.
//
// Scan tolerates a torn tail only on the last segment, and OpenWriter
// truncates it before appending — but a replication follower advertises
// its resume point and can receive a checkpoint announcement (which
// rotates to a fresh segment) before it ever appends. Without this
// call, the torn bytes would survive the rotation inside a now
// non-final segment and the next Open would refuse the directory with
// ErrCorrupt. Follower resume therefore truncates to the last acked
// FrameEnds boundary before handshaking.
func (l *Log) TruncateTail() (int64, error) {
	if len(l.segments) == 0 {
		return 0, nil
	}
	seg := &l.segments[len(l.segments)-1]
	valid := int64(0)
	if n := len(seg.FrameEnds); n > 0 {
		valid = seg.FrameEnds[n-1]
	}
	fi, err := os.Stat(seg.Path)
	if err != nil {
		return 0, err
	}
	removed := fi.Size() - valid
	if removed <= 0 {
		seg.Truncated = false
		return 0, nil
	}
	f, err := os.OpenFile(seg.Path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if err := f.Truncate(valid); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	seg.Truncated = false
	return removed, nil
}

// InstallCheckpoint bootstraps an empty log from a checkpoint shipped
// by a replication leader: the document is durably written as the
// log's own checkpoint and the sequence floor advances to the seq it
// covers, so a writer opened afterwards starts a segment based there.
// Installing into a log that already holds records or a checkpoint is
// refused — a behind follower must be wiped, never spliced.
func (l *Log) InstallCheckpoint(ck *Checkpoint) error {
	if !l.Empty() {
		return fmt.Errorf("wal: install checkpoint into non-empty log (last seq %d)", l.lastSeq)
	}
	if ck.Format != FormatVersion {
		return fmt.Errorf("%w: checkpoint format %d, want %d", ErrCorrupt, ck.Format, FormatVersion)
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(l.dir, checkpointName, data); err != nil {
		return err
	}
	if l.keep {
		archive := fmt.Sprintf("checkpoint-%016x.json", ck.ID.Seq)
		if err := writeFileAtomic(l.dir, archive, data); err != nil {
			return err
		}
	}
	cp := *ck
	l.ckpt = &cp
	l.lastSeq = ck.ID.Seq
	return nil
}

// OpenWriter opens the newest segment for appending, creating the first
// segment (with a leading meta record) on a fresh log. A torn tail is
// truncated away first, so appends always extend the last valid frame.
// meta describes the daemon's world; it is verified against the log's
// recorded meta and used for any newly created segment.
func (l *Log) OpenWriter(meta *Meta, id ID, rounds int64) (*Writer, error) {
	if l.meta != nil {
		if err := l.meta.Check(meta); err != nil {
			return nil, err
		}
	} else {
		l.meta = cloneMeta(meta)
	}
	if len(l.segments) == 0 {
		return l.createSegment(ID{VT: id.VT, Seq: l.lastSeq}, rounds)
	}
	seg := &l.segments[len(l.segments)-1]
	f, err := os.OpenFile(seg.Path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	valid := int64(0)
	if n := len(seg.FrameEnds); n > 0 {
		valid = seg.FrameEnds[n-1]
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if valid == 0 {
		// The segment file exists but holds no valid frame (crash between
		// create and meta write): rewrite the meta record.
		w := newWriter(f, l.policy, l.lastSeq)
		if err := w.Append(&Record{Type: TypeMeta, ID: ID{VT: id.VT, Seq: seg.Base}, Rounds: rounds, Meta: l.meta}); err != nil {
			f.Close()
			return nil, err
		}
		if err := w.Commit(); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	return newWriter(f, l.policy, l.lastSeq), nil
}

func (l *Log) createSegment(id ID, rounds int64) (*Writer, error) {
	path := filepath.Join(l.dir, segmentName(id.Seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	w := newWriter(f, l.policy, id.Seq)
	if err := w.Append(&Record{Type: TypeMeta, ID: id, Rounds: rounds, Meta: l.meta}); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.Commit(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(l.dir); err != nil {
		return nil, err
	}
	l.segments = append(l.segments, SegmentInfo{Path: path, Base: id.Seq, LastSeq: id.Seq})
	return w, nil
}

// Rotate executes the checkpoint/truncate protocol: commit and close
// the active writer, atomically replace checkpoint.json with a
// checkpoint covering id/rounds and the opaque state document, start a
// fresh segment based at id.Seq, and purge the segments the checkpoint
// covers. It returns the writer for the new segment.
//
// Crash safety: the old segments are removed only after the new
// checkpoint is durable, so every instant has either (old checkpoint +
// full suffix) or (new checkpoint + empty suffix) on disk.
func (l *Log) Rotate(w *Writer, state []byte, id ID, rounds int64) (*Writer, error) {
	if w != nil {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	ck := &Checkpoint{Format: FormatVersion, ID: id, Rounds: rounds, State: state}
	data, err := json.Marshal(ck)
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(l.dir, checkpointName, data); err != nil {
		return nil, err
	}
	if l.keep {
		// Archive the checkpoint under its seq so historical crash images
		// can be reconstructed at any prefix.
		archive := fmt.Sprintf("checkpoint-%016x.json", id.Seq)
		if err := writeFileAtomic(l.dir, archive, data); err != nil {
			return nil, err
		}
	}
	l.ckpt = ck
	l.lastSeq = id.Seq

	nw, err := l.createSegment(id, rounds)
	if err != nil {
		return nil, err
	}
	if !l.keep {
		kept := l.segments[:0]
		for _, seg := range l.segments {
			if seg.LastSeq <= id.Seq && seg.Base < id.Seq {
				if err := os.Remove(seg.Path); err != nil {
					return nil, err
				}
				continue
			}
			kept = append(kept, seg)
		}
		l.segments = kept
		if err := syncDir(l.dir); err != nil {
			return nil, err
		}
	}
	return nw, nil
}

func cloneMeta(m *Meta) *Meta {
	cp := *m
	return &cp
}

func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
