package wal

import (
	"bufio"
	"fmt"
	"os"
	"time"
)

// Writer appends records to one segment file. It is not safe for
// concurrent use; the ctl server confines it to the state loop, which
// is the only goroutine that admits inputs.
//
// Append buffers; Commit makes everything appended so far durable
// according to the sync policy. The server calls Commit before replying
// to the requests whose records it covers — append-before-ack — so an
// acknowledged verdict is always recoverable.
type Writer struct {
	f      *os.File
	bw     *bufio.Writer
	policy SyncPolicy
	buf    []byte

	lastSeq int64
	dirty   bool

	appends int64
	bytes   int64
	commits int64
	syncs   int64

	// syncObserver, when set, receives the wall-clock duration of each
	// fsync in nanoseconds (one call per sync: per group commit under
	// SyncGroup, per append under SyncAlways).
	syncObserver func(ns int64)
}

func newWriter(f *os.File, policy SyncPolicy, lastSeq int64) *Writer {
	return &Writer{
		f:       f,
		bw:      bufio.NewWriterSize(f, 1<<16),
		policy:  policy,
		lastSeq: lastSeq,
	}
}

// LastSeq returns the sequence number of the last appended record (or
// the segment base if nothing has been appended yet).
func (w *Writer) LastSeq() int64 { return w.lastSeq }

// Policy returns the writer's sync policy.
func (w *Writer) Policy() SyncPolicy { return w.policy }

// SetSyncObserver registers fn to receive each fsync's wall-clock
// duration in nanoseconds (nil disables). Called from the writer's
// owning goroutine, synchronously inside Commit.
func (w *Writer) SetSyncObserver(fn func(ns int64)) { w.syncObserver = fn }

// Stats returns lifetime counters for this writer: records appended,
// payload+frame bytes written, commits, and fsyncs issued.
func (w *Writer) Stats() (appends, bytes, commits, syncs int64) {
	return w.appends, w.bytes, w.commits, w.syncs
}

// Append encodes rec and buffers it. rec.ID.Seq must be exactly
// lastSeq+1 (meta records, which carry the segment base, are exempt).
// Under SyncAlways the record is flushed and fsynced immediately.
func (w *Writer) Append(rec *Record) error {
	if rec.Type != TypeMeta && rec.ID.Seq != w.lastSeq+1 {
		return fmt.Errorf("%w: append seq %d after %d", ErrSeq, rec.ID.Seq, w.lastSeq)
	}
	buf, err := AppendFrame(w.buf[:0], rec)
	w.buf = buf[:0]
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(buf); err != nil {
		return err
	}
	if rec.Type != TypeMeta {
		w.lastSeq = rec.ID.Seq
	}
	w.appends++
	w.bytes += int64(len(buf))
	w.dirty = true
	if w.policy == SyncAlways {
		return w.Commit()
	}
	return nil
}

// Commit flushes buffered records to the file and, unless the policy is
// SyncOff, fsyncs. It is a no-op when nothing was appended since the
// last commit.
func (w *Writer) Commit() error {
	if !w.dirty {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.policy != SyncOff {
		if w.syncObserver != nil {
			t0 := time.Now()
			if err := w.f.Sync(); err != nil {
				return err
			}
			w.syncObserver(int64(time.Since(t0)))
		} else if err := w.f.Sync(); err != nil {
			return err
		}
		w.syncs++
	}
	w.dirty = false
	w.commits++
	return nil
}

// Close commits outstanding records and closes the segment file.
func (w *Writer) Close() error {
	err := w.Commit()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
