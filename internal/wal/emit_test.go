package wal

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"
)

// tornLog writes recs into a fresh log at dir and appends torn bytes to
// the segment's tail, returning the number of garbage bytes.
func tornLog(t *testing.T, dir string, recs []*Record) int64 {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs)
	w.Close()

	segPath := l.Segments()[0].Path
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	if err := os.WriteFile(segPath, append(data, torn...), 0o644); err != nil {
		t.Fatal(err)
	}
	return int64(len(torn))
}

func TestTruncateTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(5)
	tornBytes := tornLog(t, dir, recs)

	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Segments()[0].Truncated {
		t.Fatal("scan did not flag the torn tail")
	}
	removed, err := l.TruncateTail()
	if err != nil {
		t.Fatal(err)
	}
	if removed != tornBytes {
		t.Fatalf("removed %d bytes, want %d", removed, tornBytes)
	}
	if l.Segments()[0].Truncated {
		t.Fatal("Truncated flag not cleared")
	}

	// Idempotent, and a no-op on a clean reopen and on an empty log.
	if removed, err = l.TruncateTail(); err != nil || removed != 0 {
		t.Fatalf("second truncate: removed=%d err=%v", removed, err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after truncate: %v", err)
	}
	got, info := replayAll(t, l2, 0)
	if info.Truncated || !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay after truncate: info=%+v records=%d", info, len(got))
	}
	empty, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if removed, err = empty.TruncateTail(); err != nil || removed != 0 {
		t.Fatalf("empty log: removed=%d err=%v", removed, err)
	}
}

// TestTornTailSurvivingRotationIsCorrupt is the regression for the
// latent bug TruncateTail fixes: Scan tolerates a torn tail only on the
// final segment, so a rotation that starts a fresh segment while torn
// bytes still trail the previous one leaves a directory the next Open
// refuses. A follower that resumes with TruncateTail before folding
// checkpoint announcements never reaches that state.
func TestTornTailSurvivingRotationIsCorrupt(t *testing.T) {
	recs := testRecords(5)
	rotate := func(dir string, truncate bool) error {
		l, err := Open(dir, WithKeepSegments())
		if err != nil {
			t.Fatal(err)
		}
		if truncate {
			if _, err := l.TruncateTail(); err != nil {
				t.Fatal(err)
			}
		}
		// A checkpoint announcement rotates the log at the current seq;
		// keep mode (and the purge-survivor case generally) leaves the old
		// segment on disk, now non-final.
		w, err := l.Rotate(nil, nil, ID{VT: 5000, Seq: 5}, 2)
		if err != nil {
			return err
		}
		w.Close()
		_, err = Open(dir, WithKeepSegments())
		return err
	}

	buggy := t.TempDir()
	tornLog(t, buggy, recs)
	if err := rotate(buggy, false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rotation over a torn tail: got %v, want ErrCorrupt on reopen", err)
	}

	fixed := t.TempDir()
	tornLog(t, fixed, recs)
	if err := rotate(fixed, true); err != nil {
		t.Fatalf("rotation after TruncateTail: %v", err)
	}
	l, err := Open(fixed, WithKeepSegments())
	if err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, l, 0)
	if info.Truncated || !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay after rotation: info=%+v records=%d", info, len(got))
	}
}

func TestInstallCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Format: FormatVersion, ID: ID{VT: 10000, Seq: 10}, Rounds: 5, State: []byte(`{"x":1}`)}

	if err := l.InstallCheckpoint(&Checkpoint{ID: ck.ID}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad format: got %v, want ErrCorrupt", err)
	}
	if err := l.InstallCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 10 || l.Checkpoint() == nil || l.Checkpoint().ID != ck.ID {
		t.Fatalf("after install: lastSeq=%d ckpt=%+v", l.LastSeq(), l.Checkpoint())
	}
	// Installing twice is refused: the log is no longer empty.
	if err := l.InstallCheckpoint(ck); err == nil {
		t.Fatal("second install accepted")
	}

	// A writer opened after install bases its first segment at the
	// checkpoint seq, so appends continue the replicated history.
	w, err := l.OpenWriter(testMeta(), ID{VT: 10000, Seq: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{Type: TypeEvent, ID: ID{VT: 11000, Seq: 11}, Rounds: 5,
		Event: &EventRecord{EventID: 11, Kind: "submitted", BatchSize: 1}}
	appendAll(t, w, []*Record{rec})
	w.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after install+append: %v", err)
	}
	if l2.Checkpoint() == nil || l2.Checkpoint().ID.Seq != 10 {
		t.Fatalf("checkpoint lost: %+v", l2.Checkpoint())
	}
	got, _ := replayAll(t, l2, 10)
	if len(got) != 1 || got[0].ID.Seq != 11 {
		t.Fatalf("replay past checkpoint: %+v", got)
	}

	// Install into a log holding records is refused.
	fullDir := t.TempDir()
	full, err := Open(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	w, err = full.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, testRecords(2))
	w.Close()
	full, err = Open(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.InstallCheckpoint(ck); err == nil {
		t.Fatal("install into non-empty log accepted")
	}
}

// emitAll collects (frame copy, record) pairs from EmitFrames.
func emitAll(t *testing.T, segs []SegmentInfo, afterSeq, upTo int64) ([]*Record, [][]byte) {
	t.Helper()
	var recs []*Record
	var frames [][]byte
	err := EmitFrames(segs, afterSeq, upTo, func(frame []byte, rec *Record) error {
		frames = append(frames, append([]byte(nil), frame...))
		cp := *rec
		recs = append(recs, &cp)
		return nil
	})
	if err != nil {
		t.Fatalf("EmitFrames(%d, %d]: %v", afterSeq, upTo, err)
	}
	return recs, frames
}

func TestEmitFrames(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(12)

	// Three segments: records 1-4, rotate@4, 5-8, rotate@8, 9-12.
	l, err := Open(dir, WithKeepSegments())
	if err != nil {
		t.Fatal(err)
	}
	w, err := l.OpenWriter(testMeta(), ID{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs[:4])
	if w, err = l.Rotate(w, nil, ID{VT: 4000, Seq: 4}, 2); err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs[4:8])
	if w, err = l.Rotate(w, nil, ID{VT: 8000, Seq: 8}, 4); err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs[8:12])

	// Rescan so every FrameEnds table reflects the bytes on disk.
	scanned, err := Open(dir, WithKeepSegments())
	if err != nil {
		t.Fatal(err)
	}
	segs := append([]SegmentInfo(nil), scanned.Segments()...)

	// Full range: every record, frame bytes identical to a re-encode.
	got, frames := emitAll(t, segs, 0, 12)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("full emit: %d records", len(got))
	}
	for i, rec := range recs {
		want, err := AppendFrame(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frames[i], want) {
			t.Fatalf("frame %d bytes differ from canonical encoding", i)
		}
	}

	// Mid-segment resume exercises the FrameEnds seek, and a resume at a
	// segment boundary skips the earlier segments entirely.
	for _, tc := range []struct{ after, upTo int64 }{{5, 9}, {4, 12}, {8, 11}, {11, 12}, {12, 12}} {
		got, _ := emitAll(t, segs, tc.after, tc.upTo)
		want := recs[tc.after:tc.upTo]
		if int64(len(got)) != tc.upTo-tc.after || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("emit (%d, %d]: got %d records", tc.after, tc.upTo, len(got))
		}
	}

	// A stale snapshot: the final segment grew past the scanned
	// FrameEnds. Frames beyond the scan are read sequentially.
	grown := testRecords(14)[12:]
	appendAll(t, w, grown)
	w.Close()
	got, _ = emitAll(t, segs, 10, 14)
	if len(got) != 4 || got[0].ID.Seq != 11 || got[3].ID.Seq != 14 {
		t.Fatalf("stale-snapshot emit: %+v", got)
	}

	// A torn tail past the requested range is not an error...
	segPath := segs[len(segs)-1].Path
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath, append(data, 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = emitAll(t, segs, 0, 14)
	if len(got) != 14 {
		t.Fatalf("emit with torn tail: %d records", len(got))
	}
	// ...but asking past the last durable frame is.
	if err := EmitFrames(segs, 0, 20, func([]byte, *Record) error { return nil }); err == nil {
		t.Fatal("emit past log end: want error")
	}
}
