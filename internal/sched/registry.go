package sched

import (
	"fmt"
	"sort"
	"sync"
)

// Option configures a scheduler at construction time. Options that do
// not apply to the chosen policy (e.g. WithScanAll on FIFO) are ignored,
// so callers can thread one option set through a policy flag.
type Option func(*config)

// config collects the construction-time knobs the registry's builders
// consult.
type config struct {
	alpha        int
	seed         int64
	probes       int
	recordProbes bool
	scanAll      bool
}

// WithAlpha sets the LMTF/P-LMTF sample size (0 means DefaultAlpha).
func WithAlpha(alpha int) Option { return func(c *config) { c.alpha = alpha } }

// WithSeed sets the sampling RNG seed (default 1).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithProbes sets the cost-probe concurrency (0 = GOMAXPROCS,
// 1 = serial). It replaces the post-construction SetProbes mutator.
func WithProbes(n int) Option { return func(c *config) { c.probes = n } }

// WithRecordProbes enables per-candidate probe reporting in
// Decision.Probes from the first round. It replaces the
// post-construction SetRecordProbes mutator.
func WithRecordProbes() Option { return func(c *config) { c.recordProbes = true } }

// WithScanAll makes P-LMTF offer the entire queue (not just the sampled
// candidates) for co-scheduling — the costlier alternative Section IV-C
// rejects, kept for ablations. It replaces the post-construction
// SetScanAll mutator and is ignored by other policies.
func WithScanAll() Option { return func(c *config) { c.scanAll = true } }

// UnknownSchedulerError is returned by New for a name no builder is
// registered under. It lists the registered names so callers (CLIs, the
// daemon) can print an actionable message.
type UnknownSchedulerError struct {
	Name       string
	Registered []string
}

// Error implements error.
func (e *UnknownSchedulerError) Error() string {
	return fmt.Sprintf("sched: unknown scheduler %q (registered: %v)", e.Name, e.Registered)
}

// Builder constructs a scheduler from the resolved option set. The
// registry applies the cross-cutting knobs (probes, probe recording)
// through the CostProber/ProbeRecorder interfaces after the builder
// returns, so builders only consume policy-specific fields.
type Builder func(alpha int, seed int64) Scheduler

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{
		"fifo":     func(int, int64) Scheduler { return FIFO{} },
		"reorder":  func(int, int64) Scheduler { return Reorder{} },
		"lmtf":     func(alpha int, seed int64) Scheduler { return NewLMTF(alpha, seed) },
		"p-lmtf":   func(alpha int, seed int64) Scheduler { return NewPLMTF(alpha, seed) },
		"min-cost": func(int, int64) Scheduler { return NewMinCost() },
	}
)

// Register adds a scheduler builder under name, for policies defined
// outside this package. It panics on a duplicate name, like
// database/sql.Register.
func Register(name string, b Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: Register called twice for %q", name))
	}
	registry[name] = b
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named scheduler, replacing the string switches that
// used to be duplicated across the CLIs and the daemon. Unknown names
// return an *UnknownSchedulerError listing the registered policies.
func New(name string, opts ...Option) (Scheduler, error) {
	c := config{alpha: DefaultAlpha, seed: 1}
	for _, opt := range opts {
		opt(&c)
	}
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, &UnknownSchedulerError{Name: name, Registered: Names()}
	}
	s := b(c.alpha, c.seed)
	if cp, isCP := s.(CostProber); isCP && c.probes != 0 {
		cp.SetProbes(c.probes)
	}
	if pr, isPR := s.(ProbeRecorder); isPR && c.recordProbes {
		pr.SetRecordProbes(true)
	}
	if p, isP := s.(*PLMTF); isP && c.scanAll {
		p.SetScanAll(true)
	}
	return s, nil
}
