package sched

import (
	"errors"

	"netupdate/internal/core"
	"netupdate/internal/topology"
)

// ErrEmptyQueue is returned by Pick on an empty queue.
var ErrEmptyQueue = errors.New("sched: empty update queue")

// Decision is the outcome of one scheduling round.
type Decision struct {
	// Head is the event that must execute now.
	Head *core.Event
	// Opportunistic lists further events, in arrival order, that the
	// executor should co-schedule with Head if doing so does not
	// interfere with them (see Candidate). Only P-LMTF produces a
	// non-empty list.
	Opportunistic []Candidate
	// Evals is the planning work (feasibility evaluations) spent making
	// this decision; the simulator charges plan time for it.
	Evals int
	// Probes reports the individual cost probes behind the decision, in
	// the order they were sampled, for observability (the per-round
	// trace record). It is populated only when probe recording has been
	// enabled via ProbeRecorder — the default leaves it nil so that
	// untraced decisions allocate nothing extra.
	Probes []ProbeRecord
}

// ProbeRecord is one cost probe made while deciding a round, as reported
// in Decision.Probes.
type ProbeRecord struct {
	// Event is the probed event.
	Event *core.Event
	// Cost, Admittable and Evals mirror the probe's core.Estimate.
	Cost       topology.Bandwidth
	Admittable int
	Evals      int
	// CacheHit reports whether the probe engine answered from its epoch
	// cache instead of replanning.
	CacheHit bool
}

// Candidate is an event offered for opportunistic co-scheduling together
// with the admission headroom it had when the decision was made.
type Candidate struct {
	// Event is the offered event.
	Event *core.Event
	// AloneAdmittable is how many of the event's flows were admittable
	// when probed before the round's head executed. The executor
	// co-schedules the event only if a fresh probe (with the head's plan
	// committed) admits at least as many flows — i.e. running together
	// does not interfere with the event. Flows that fail either way
	// (e.g. saturated host access links) do not block co-scheduling.
	AloneAdmittable int
}

// Scheduler picks the next event(s) to execute from the update queue.
// Pick must not modify the queue or the network (cost probes roll
// themselves back); the simulator removes chosen events and executes them.
type Scheduler interface {
	// Name identifies the policy in reports ("fifo", "lmtf", ...).
	Name() string
	// Pick chooses from a non-empty queue using planner for cost probes.
	Pick(q *Queue, planner *core.Planner) (Decision, error)
}

// CostProber is implemented by schedulers whose cost probes run through a
// core.ProbeEngine (LMTF and P-LMTF). The simulator uses it to thread the
// Probes concurrency knob through, to route its own opportunistic
// re-probes via the same engine (sharing the cache), and to read probe
// statistics at the end of a run.
type CostProber interface {
	Scheduler
	// SetProbes sets the probe concurrency (0 = GOMAXPROCS, 1 = serial).
	SetProbes(n int)
	// ProbeEngine returns the engine bound to the given planner.
	ProbeEngine(planner *core.Planner) *core.ProbeEngine
}

// ProbeRecorder is implemented by schedulers that can report their
// per-candidate probe outcomes in Decision.Probes. Recording defaults to
// off so that untraced hot paths stay allocation-identical; the
// simulator turns it on when a tracer is attached to the engine.
type ProbeRecorder interface {
	// SetRecordProbes enables or disables Decision.Probes reporting.
	SetRecordProbes(on bool)
}

// probeCost estimates an event's current update cost, tolerating
// infeasible events (their cost still orders them; infeasibility at probe
// time does not exclude an event from being scheduled later).
func probeCost(planner *core.Planner, ev *core.Event) (*core.Estimate, error) {
	est, err := planner.Probe(ev)
	if err != nil {
		return nil, err
	}
	return est, nil
}
