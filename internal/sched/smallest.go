package sched

import (
	"netupdate/internal/core"
)

// SmallestFirst executes the queued event with the fewest flows — a
// probe-free shortest-job-first heuristic. It costs no planning work at
// all, but orders by a static proxy (flow count) rather than the live
// update cost LMTF probes; the ablation-reorder experiment quantifies
// what the probing buys. Ties keep arrival order.
type SmallestFirst struct{}

var _ Scheduler = SmallestFirst{}

// Name implements Scheduler.
func (SmallestFirst) Name() string { return "smallest-first" }

// Pick implements Scheduler.
func (SmallestFirst) Pick(q *Queue, _ *core.Planner) (Decision, error) {
	if q.Len() == 0 {
		return Decision{}, ErrEmptyQueue
	}
	best := 0
	for i := 1; i < q.Len(); i++ {
		if q.At(i).NumFlows() < q.At(best).NumFlows() {
			best = i
		}
	}
	return Decision{Head: q.At(best)}, nil
}
