package sched

import (
	"fmt"

	"netupdate/internal/core"
)

// PLMTF — parallel LMTF (Section IV-C) — first selects the new head
// exactly as LMTF does, then offers the remaining α candidates, in arrival
// order, for opportunistic co-scheduling: the executor commits the head
// and then admits each opportunistic event whose flows still fit. A heavy
// event that LMTF pushed back thus regains a chance to run early
// (fairness), and multiple events update in the same round (efficiency).
//
// P-LMTF deliberately checks only the sampled candidates, not the whole
// queue — scanning everything would reintroduce the Reorder method's
// computation cost (the paper makes the same argument).
type PLMTF struct {
	inner *LMTF
	// scanAll offers the entire queue (not just the α sampled candidates)
	// for co-scheduling — the costlier alternative Section IV-C rejects,
	// kept for the batch-width ablation.
	scanAll bool
}

var _ Scheduler = (*PLMTF)(nil)
var _ CostProber = (*PLMTF)(nil)
var _ ProbeRecorder = (*PLMTF)(nil)

// NewPLMTF returns a P-LMTF scheduler with the given sample size (0 means
// DefaultAlpha) and RNG seed.
func NewPLMTF(alpha int, seed int64) *PLMTF {
	return &PLMTF{inner: NewLMTF(alpha, seed)}
}

// Name implements Scheduler.
func (s *PLMTF) Name() string {
	if s.scanAll {
		return fmt.Sprintf("p-lmtf-full(a=%d)", s.inner.Alpha)
	}
	return fmt.Sprintf("p-lmtf(a=%d)", s.inner.Alpha)
}

// Alpha returns the sample size.
func (s *PLMTF) Alpha() int { return s.inner.Alpha }

// RNGDraws returns the number of sampling RNG draws consumed so far.
func (s *PLMTF) RNGDraws() int64 { return s.inner.RNGDraws() }

// RestoreRNG repositions the sampling RNG at the given draw count
// (checkpoint recovery).
func (s *PLMTF) RestoreRNG(draws int64) { s.inner.RestoreRNG(draws) }

// SetScanAll makes the scheduler offer every queued event for
// opportunistic co-scheduling instead of only the sampled candidates.
// The executor probes each offered event, so this multiplies planning
// work by the queue length — the overhead the paper's design avoids.
//
// Deprecated: prefer constructing with sched.New("p-lmtf", WithScanAll()).
func (s *PLMTF) SetScanAll(all bool) { s.scanAll = all }

// SetProbes implements CostProber, delegating to the inner LMTF.
//
// Deprecated: prefer constructing with sched.New(name, WithProbes(n)).
// The method remains because the simulator retunes concurrency from
// sim.Config after construction.
func (s *PLMTF) SetProbes(n int) { s.inner.SetProbes(n) }

// SetRecordProbes implements ProbeRecorder, delegating to the inner LMTF.
//
// Deprecated: prefer constructing with sched.New(name,
// WithRecordProbes()). The method remains because the simulator flips
// recording when a tracer is attached after construction.
func (s *PLMTF) SetRecordProbes(on bool) { s.inner.SetRecordProbes(on) }

// ProbeEngine implements CostProber, delegating to the inner LMTF so both
// the selection probes and the full-queue scan share one cache.
func (s *PLMTF) ProbeEngine(planner *core.Planner) *core.ProbeEngine {
	return s.inner.ProbeEngine(planner)
}

// Pick implements Scheduler: the LMTF winner plus the remaining
// candidates, in arrival order, as opportunistic co-runners.
func (s *PLMTF) Pick(q *Queue, planner *core.Planner) (Decision, error) {
	cands, d, err := s.inner.selectCandidates(q, planner)
	if err != nil {
		return Decision{}, err
	}
	d.Head = cands[0].ev
	if s.scanAll {
		// Offer the whole queue in arrival order. Events outside the
		// sampled set were not probed for the decision; probe them now so
		// the executor has their alone-admittable baselines. This is the
		// full-queue cost the sampled design avoids.
		byEvent := make(map[*core.Event]int, len(cands))
		for _, c := range cands {
			byEvent[c.ev] = c.admittable
		}
		var unprobed []*core.Event
		for i := 0; i < q.Len(); i++ {
			if ev := q.At(i); ev != d.Head {
				if _, ok := byEvent[ev]; !ok {
					unprobed = append(unprobed, ev)
				}
			}
		}
		// Batch the un-sampled events through the probe engine so the
		// full-queue scan also gets fork parallelism and epoch caching.
		ests, err := s.ProbeEngine(planner).ProbeAll(unprobed)
		if err != nil {
			return Decision{}, err
		}
		for j, ev := range unprobed {
			d.Evals += ests[j].Evals
			byEvent[ev] = ests[j].Admittable
			if s.inner.record {
				d.Probes = append(d.Probes, ProbeRecord{
					Event:      ev,
					Cost:       ests[j].Cost,
					Admittable: ests[j].Admittable,
					Evals:      ests[j].Evals,
					CacheHit:   ests[j].FromCache,
				})
			}
		}
		rest := make([]Candidate, 0, q.Len()-1)
		for i := 0; i < q.Len(); i++ {
			ev := q.At(i)
			if ev == d.Head {
				continue
			}
			rest = append(rest, Candidate{Event: ev, AloneAdmittable: byEvent[ev]})
		}
		d.Opportunistic = rest
		return d, nil
	}
	if len(cands) > 1 {
		rest := make([]Candidate, 0, len(cands)-1)
		for _, c := range cands[1:] {
			rest = append(rest, Candidate{Event: c.ev, AloneAdmittable: c.admittable})
		}
		d.Opportunistic = rest
	}
	return d, nil
}
