package sched

import (
	"math/rand"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
)

func TestQueuePushBatch(t *testing.T) {
	q := NewQueue()
	evs := mkEvents(5)
	q.Push(evs[0])
	q.PushBatch(evs[1:4])
	q.PushBatch(nil) // empty batch is a no-op
	q.Push(evs[4])
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i, ev := range evs {
		if q.At(i) != ev {
			t.Errorf("At(%d) out of order after PushBatch", i)
		}
	}
}

// TestQueuePushBatchEquivalence is the bulk-admission contract: PushBatch
// must be indistinguishable from pushing each event in order, under
// random interleavings of single pushes, batch pushes and removals.
func TestQueuePushBatchEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		batched, single := NewQueue(), NewQueue()
		var model []*core.Event // reference: plain slice semantics
		nextID := int64(1)
		arrival := time.Duration(0)

		mk := func() *core.Event {
			// Arrival stamps are nondecreasing across pushes, like real
			// arrivals admitted in clock order.
			arrival += time.Duration(rng.Intn(3)) * time.Millisecond
			ev := core.NewEvent(flow.EventID(nextID), "test", arrival, nil)
			nextID++
			return ev
		}

		for op := 0; op < 200; op++ {
			switch r := rng.Intn(10); {
			case r < 4: // single push
				ev := mk()
				batched.Push(ev)
				single.Push(ev)
				model = append(model, ev)
			case r < 8: // batch push of 0..6 events
				n := rng.Intn(7)
				evs := make([]*core.Event, n)
				for i := range evs {
					evs[i] = mk()
				}
				batched.PushBatch(evs)
				for _, ev := range evs {
					single.Push(ev)
				}
				model = append(model, evs...)
			default: // remove a random present (or absent) event
				var ev *core.Event
				if len(model) > 0 && rng.Intn(4) > 0 {
					ev = model[rng.Intn(len(model))]
				} else {
					ev = core.NewEvent(flow.EventID(1<<30), "absent", arrival, nil)
				}
				got, want := batched.Remove(ev), single.Remove(ev)
				if got != want {
					t.Fatalf("seed %d op %d: batched Remove = %v, single = %v", seed, op, got, want)
				}
				if want {
					for i, m := range model {
						if m == ev {
							model = append(model[:i], model[i+1:]...)
							break
						}
					}
				}
			}

			if batched.Len() != len(model) || single.Len() != len(model) {
				t.Fatalf("seed %d op %d: lens %d/%d, model %d",
					seed, op, batched.Len(), single.Len(), len(model))
			}
			var prev time.Duration
			for i, want := range model {
				if batched.At(i) != want || single.At(i) != want {
					t.Fatalf("seed %d op %d: order diverged at index %d", seed, op, i)
				}
				if a := batched.At(i).Arrival; a < prev {
					t.Fatalf("seed %d op %d: arrival stamps decreased at index %d", seed, op, i)
				} else {
					prev = a
				}
			}
		}
	}
}
