package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// fixture builds the deterministic bottleneck graph used across packages:
//
//	a -> u -> v -> b   (event flow route, 1 Gbps bottleneck u->v)
//	c -> u -> v -> d   (800 Mbps victim) with detour c -> w -> d
//
// Events with demand <= 200 Mbps probe at cost 0; larger demands force the
// 800 Mbps victim to migrate, probing at cost 800 Mbps.
type fixture struct {
	planner *core.Planner
	a, b    topology.NodeID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	c := g.AddNode(topology.KindHost, "c")
	d := g.AddNode(topology.KindHost, "d")
	u := g.AddNode(topology.KindEdgeSwitch, "u")
	v := g.AddNode(topology.KindEdgeSwitch, "v")
	w := g.AddNode(topology.KindEdgeSwitch, "w")
	link := func(x, y topology.NodeID) topology.LinkID {
		id, err := g.AddLink(x, y, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	link(a, u)
	uv := link(u, v)
	link(v, b)
	cu := link(c, u)
	vd := link(v, d)
	link(c, w)
	link(w, d)

	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})
	victim, err := net.AddFlow(flow.Spec{Src: c, Dst: d, Demand: 800 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	p, err := routing.NewPath(g, []topology.LinkID{cu, uv, vd})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Place(victim, p); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		planner: core.NewPlanner(migration.NewPlanner(net, 0), 0),
		a:       a,
		b:       b,
	}
}

// event returns an update event whose single flow has the given demand.
func (f *fixture) event(id flow.EventID, demand topology.Bandwidth) *core.Event {
	return core.NewEvent(id, "test", 0, []flow.Spec{{Src: f.a, Dst: f.b, Demand: demand}})
}

// cheap events fit the 200 Mbps residual; expensive ones cost a migration.
func (f *fixture) cheap(id flow.EventID) *core.Event     { return f.event(id, 100*topology.Mbps) }
func (f *fixture) expensive(id flow.EventID) *core.Event { return f.event(id, 500*topology.Mbps) }

func TestFIFOPicksHead(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	head := f.expensive(1)
	q.Push(head)
	q.Push(f.cheap(2))

	d, err := FIFO{}.Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != head {
		t.Error("FIFO did not pick the head")
	}
	if d.Evals != 0 {
		t.Errorf("FIFO Evals = %d, want 0", d.Evals)
	}
	if len(d.Opportunistic) != 0 {
		t.Error("FIFO produced opportunistic events")
	}
	if q.Len() != 2 {
		t.Error("Pick modified the queue")
	}
}

func TestFIFOEmptyQueue(t *testing.T) {
	f := newFixture(t)
	if _, err := (FIFO{}).Pick(NewQueue(), f.planner); !errors.Is(err, ErrEmptyQueue) {
		t.Errorf("error = %v, want ErrEmptyQueue", err)
	}
	if _, err := NewLMTF(2, 1).Pick(NewQueue(), f.planner); !errors.Is(err, ErrEmptyQueue) {
		t.Errorf("LMTF error = %v, want ErrEmptyQueue", err)
	}
	if _, err := NewPLMTF(2, 1).Pick(NewQueue(), f.planner); !errors.Is(err, ErrEmptyQueue) {
		t.Errorf("PLMTF error = %v, want ErrEmptyQueue", err)
	}
	if _, err := (Reorder{}).Pick(NewQueue(), f.planner); !errors.Is(err, ErrEmptyQueue) {
		t.Errorf("Reorder error = %v, want ErrEmptyQueue", err)
	}
}

func TestReorderPicksCheapest(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	q.Push(f.expensive(1))
	q.Push(f.expensive(2))
	cheap := f.cheap(3)
	q.Push(cheap)

	d, err := (Reorder{}).Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != cheap {
		t.Errorf("Reorder head = %v, want the cheap event", d.Head)
	}
	if d.Evals == 0 {
		t.Error("Reorder Evals = 0, want probing work for the whole queue")
	}
}

func TestReorderTieBreaksByArrival(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	first := f.cheap(1)
	q.Push(first)
	q.Push(f.cheap(2))
	d, err := (Reorder{}).Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != first {
		t.Error("tie not broken toward earliest arrival")
	}
}

func TestLMTFOvertakesHeavyHead(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	q.Push(f.expensive(1))
	cheap := f.cheap(2)
	q.Push(cheap)

	// With only one non-head event, LMTF samples it regardless of seed.
	s := NewLMTF(4, 1)
	d, err := s.Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != cheap {
		t.Errorf("LMTF head = %v, want cheap event", d.Head)
	}
	if d.Evals == 0 {
		t.Error("LMTF Evals = 0, want probe work")
	}
}

func TestLMTFKeepsCheapHead(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	head := f.cheap(1)
	q.Push(head)
	q.Push(f.expensive(2))
	q.Push(f.expensive(3))

	s := NewLMTF(4, 1)
	d, err := s.Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != head {
		t.Errorf("LMTF displaced a cheap head: %v", d.Head)
	}
}

func TestLMTFTiePrefersHead(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	head := f.cheap(1)
	q.Push(head)
	q.Push(f.cheap(2))
	q.Push(f.cheap(3))

	s := NewLMTF(4, 99)
	d, err := s.Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != head {
		t.Error("equal costs must keep FIFO order (head wins)")
	}
}

func TestLMTFSingleEventQueue(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	only := f.expensive(1)
	q.Push(only)
	d, err := NewLMTF(4, 5).Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != only {
		t.Error("single-event queue must pick that event")
	}
}

func TestLMTFDefaultAlpha(t *testing.T) {
	s := NewLMTF(0, 1)
	if s.Alpha != DefaultAlpha {
		t.Errorf("Alpha = %d, want %d", s.Alpha, DefaultAlpha)
	}
	if NewPLMTF(0, 1).Alpha() != DefaultAlpha {
		t.Errorf("PLMTF default alpha wrong")
	}
}

func TestLMTFDeterministicUnderSeed(t *testing.T) {
	mk := func() (*fixture, *Queue) {
		f := newFixture(t)
		q := NewQueue()
		for i := 1; i <= 10; i++ {
			if i%2 == 0 {
				q.Push(f.cheap(flow.EventID(i)))
			} else {
				q.Push(f.expensive(flow.EventID(i)))
			}
		}
		return f, q
	}
	f1, q1 := mk()
	f2, q2 := mk()
	s1, s2 := NewLMTF(3, 42), NewLMTF(3, 42)
	for round := 0; round < 5; round++ {
		d1, err := s1.Pick(q1, f1.planner)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := s2.Pick(q2, f2.planner)
		if err != nil {
			t.Fatal(err)
		}
		if d1.Head.ID != d2.Head.ID {
			t.Fatalf("round %d: seeds diverged (%d vs %d)", round, d1.Head.ID, d2.Head.ID)
		}
		q1.Remove(d1.Head)
		q2.Remove(d2.Head)
	}
}

func TestPLMTFOpportunisticOrder(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	e1 := f.expensive(1)
	e2 := f.expensive(2)
	cheap := f.cheap(3)
	q.Push(e1)
	q.Push(e2)
	q.Push(cheap)

	// α=4 over 3 events: all are candidates.
	s := NewPLMTF(4, 7)
	d, err := s.Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != cheap {
		t.Fatalf("PLMTF head = %v, want cheap event", d.Head)
	}
	if len(d.Opportunistic) != 2 || d.Opportunistic[0].Event != e1 || d.Opportunistic[1].Event != e2 {
		t.Errorf("Opportunistic = %v, want [e1 e2] in arrival order", d.Opportunistic)
	}
	for _, c := range d.Opportunistic {
		if c.AloneAdmittable != 1 {
			t.Errorf("AloneAdmittable = %d, want 1 (single-flow events)", c.AloneAdmittable)
		}
	}
}

func TestPLMTFSingleEventNoOpportunistic(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	q.Push(f.cheap(1))
	d, err := NewPLMTF(4, 7).Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Opportunistic) != 0 {
		t.Errorf("Opportunistic = %v, want empty", d.Opportunistic)
	}
}

func TestSchedulerNames(t *testing.T) {
	if (FIFO{}).Name() != "fifo" {
		t.Error("FIFO name")
	}
	if (Reorder{}).Name() != "reorder" {
		t.Error("Reorder name")
	}
	if NewLMTF(4, 1).Name() != "lmtf(a=4)" {
		t.Error("LMTF name")
	}
	if NewPLMTF(4, 1).Name() != "p-lmtf(a=4)" {
		t.Error("PLMTF name")
	}
}

// TestPickLeavesNetworkUntouched: probing must roll back fully for every
// scheduler.
func TestPickLeavesNetworkUntouched(t *testing.T) {
	for _, mkSched := range []func() Scheduler{
		func() Scheduler { return FIFO{} },
		func() Scheduler { return Reorder{} },
		func() Scheduler { return NewLMTF(2, 3) },
		func() Scheduler { return NewPLMTF(2, 3) },
	} {
		f := newFixture(t)
		g := f.planner.Network().Graph()
		before := make([]topology.Bandwidth, g.NumLinks())
		for i := range before {
			before[i] = g.Link(topology.LinkID(i)).Reserved()
		}
		q := NewQueue()
		q.Push(f.expensive(1))
		q.Push(f.cheap(2))
		s := mkSched()
		if _, err := s.Pick(q, f.planner); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for i, w := range before {
			if got := g.Link(topology.LinkID(i)).Reserved(); got != w {
				t.Errorf("%s: link %d reserved = %v, want %v", s.Name(), i, got, w)
			}
		}
		if got := f.planner.Network().Registry().Len(); got != 1 {
			t.Errorf("%s: registry len = %d, want 1 (victim only)", s.Name(), got)
		}
	}
}

func TestSampleIndicesProperties(t *testing.T) {
	s := &LMTF{rng: rand.New(rand.NewSource(11))}
	f := func(nRaw, alphaRaw uint8) bool {
		n := int(nRaw%50) + 1
		alpha := int(alphaRaw % 10)
		got := s.sampleIndices(n, alpha)
		if got[0] != 0 {
			return false
		}
		want := alpha + 1
		if n-1 < alpha {
			want = n
		}
		if len(got) != want {
			return false
		}
		seen := map[int]bool{}
		for i, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			if i >= 2 && got[i] < got[i-1] {
				return false // tail must be sorted
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPLMTFScanAll(t *testing.T) {
	f := newFixture(t)
	q := NewQueue()
	var events []*core.Event
	for i := 1; i <= 6; i++ {
		ev := f.cheap(flow.EventID(i))
		events = append(events, ev)
		q.Push(ev)
	}
	s := NewPLMTF(2, 5)
	s.SetScanAll(true)
	if s.Name() != "p-lmtf-full(a=2)" {
		t.Errorf("Name = %q", s.Name())
	}
	d, err := s.Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	// Every queued event except the head is offered, in arrival order.
	if len(d.Opportunistic) != 5 {
		t.Fatalf("Opportunistic = %d, want 5", len(d.Opportunistic))
	}
	seen := map[*core.Event]bool{d.Head: true}
	idx := 0
	for _, ev := range events {
		if ev == d.Head {
			continue
		}
		if d.Opportunistic[idx].Event != ev {
			t.Fatalf("opportunistic[%d] out of arrival order", idx)
		}
		seen[ev] = true
		idx++
	}
	if len(seen) != 6 {
		t.Error("not all events covered")
	}
	// Unsampled candidates were probed for their baselines: more evals
	// than the sampled variant.
	s2 := NewPLMTF(2, 5)
	d2, err := s2.Pick(q, f.planner)
	if err != nil {
		t.Fatal(err)
	}
	if d.Evals <= d2.Evals {
		t.Errorf("full-scan evals %d not greater than sampled %d", d.Evals, d2.Evals)
	}
}
