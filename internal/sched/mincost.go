package sched

import (
	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/topology"
)

// MinCost prices the whole queue through the probe engine's incremental
// cache and executes the globally cheapest event each round. It is the
// "intrinsic method" of the paper (full-queue reordering, like Reorder)
// made affordable: the first round cold-probes every queued event, but
// from then on the engine's dirty-set maintenance revalidates only the
// events whose read sets intersect links changed since the last round,
// and the round's winner is popped from the engine's min-cost index
// instead of recomputed by a scan. A steady-state round over an
// unchanged queue therefore performs zero full trial-plans.
//
// Ties are broken by event ID (stable across probe modes and runs),
// unlike Reorder's queue-position tie-break — with unique IDs the two
// policies pick the same event whenever costs are distinct.
type MinCost struct {
	// probes is the requested probe concurrency (0 = GOMAXPROCS).
	probes int
	// eng is the probe engine, bound lazily to the planner Pick receives.
	eng *core.ProbeEngine
	// record makes Pick report per-candidate probe outcomes in
	// Decision.Probes (see ProbeRecorder); off by default.
	record bool
	// evScratch backs the per-round event collection so steady-state
	// rounds allocate nothing for it.
	evScratch []*core.Event
}

var _ Scheduler = (*MinCost)(nil)
var _ CostProber = (*MinCost)(nil)
var _ ProbeRecorder = (*MinCost)(nil)

// NewMinCost returns a min-cost scheduler. Probe concurrency defaults to
// GOMAXPROCS; override with SetProbes.
func NewMinCost() *MinCost { return &MinCost{} }

// Name implements Scheduler.
func (s *MinCost) Name() string { return "min-cost" }

// SetProbes implements CostProber.
func (s *MinCost) SetProbes(n int) {
	if s.probes == n {
		return
	}
	s.probes = n
	s.eng = nil // rebuilt with the new width on next Pick
}

// SetRecordProbes implements ProbeRecorder.
func (s *MinCost) SetRecordProbes(on bool) { s.record = on }

// ProbeEngine implements CostProber, returning the engine bound to the
// given planner (rebinding if the planner changed since the last round).
func (s *MinCost) ProbeEngine(planner *core.Planner) *core.ProbeEngine {
	if s.eng == nil || s.eng.Planner() != planner {
		s.eng = core.NewProbeEngine(planner, s.probes)
	}
	return s.eng
}

// Pick implements Scheduler. It batch-probes every queued event — valid
// cached entries answer in O(1) with no planning work, only dirtied or
// new events replan — then pops the cheapest valid candidate from the
// engine's min-cost index. Evals charges only the replans (the honest
// incremental cost of the round), unlike Reorder, which charges a full
// probe of every queued event every round.
func (s *MinCost) Pick(q *Queue, planner *core.Planner) (Decision, error) {
	if q.Len() == 0 {
		return Decision{}, ErrEmptyQueue
	}
	evs := s.evScratch[:0]
	for i := 0; i < q.Len(); i++ {
		evs = append(evs, q.At(i))
	}
	s.evScratch = evs[:0]
	eng := s.ProbeEngine(planner)
	ests, err := eng.ProbeAll(evs)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{}
	for _, est := range ests {
		if !est.FromCache {
			d.Evals += est.Evals
		}
	}
	if s.record {
		d.Probes = make([]ProbeRecord, 0, len(evs))
		for i, est := range ests {
			if est.FromCache {
				continue
			}
			d.Probes = append(d.Probes, ProbeRecord{
				Event:      evs[i],
				Cost:       est.Cost,
				Admittable: est.Admittable,
				Evals:      est.Evals,
				CacheHit:   false,
			})
		}
	}
	if id, _, ok := eng.CheapestValid(); ok {
		for _, ev := range evs {
			if ev.ID == id {
				d.Head = ev
				return d, nil
			}
		}
		// The index's minimum is not in this queue (stale entry for an
		// event owned by another queue); fall through to the scan.
	}
	// Cacheless mode (data plane attached) or index miss: scan the fresh
	// estimates with the same (cost, ID) order.
	best := 0
	for i := 1; i < len(ests); i++ {
		if less(ests[i].Cost, evs[i].ID, ests[best].Cost, evs[best].ID) {
			best = i
		}
	}
	d.Head = evs[best]
	return d, nil
}

// less orders candidates by (cost, event ID).
func less(c1 topology.Bandwidth, id1 flow.EventID, c2 topology.Bandwidth, id2 flow.EventID) bool {
	if c1 != c2 {
		return c1 < c2
	}
	return id1 < id2
}
