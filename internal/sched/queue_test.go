package sched

import (
	"testing"

	"netupdate/internal/core"
	"netupdate/internal/flow"
)

func mkEvents(n int) []*core.Event {
	out := make([]*core.Event, n)
	for i := range out {
		out[i] = core.NewEvent(flow.EventID(i+1), "test", 0, nil)
	}
	return out
}

func TestQueueOrder(t *testing.T) {
	q := NewQueue()
	if q.Head() != nil {
		t.Error("empty queue Head != nil")
	}
	evs := mkEvents(3)
	for _, ev := range evs {
		q.Push(ev)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if q.Head() != evs[0] {
		t.Error("Head != first pushed")
	}
	for i, ev := range evs {
		if q.At(i) != ev {
			t.Errorf("At(%d) != pushed order", i)
		}
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue()
	evs := mkEvents(4)
	for _, ev := range evs {
		q.Push(ev)
	}
	if !q.Remove(evs[1]) {
		t.Fatal("Remove returned false for present event")
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d after remove, want 3", q.Len())
	}
	want := []*core.Event{evs[0], evs[2], evs[3]}
	for i, ev := range want {
		if q.At(i) != ev {
			t.Errorf("At(%d) wrong after remove", i)
		}
	}
	if q.Remove(evs[1]) {
		t.Error("Remove returned true for absent event")
	}
}

func TestQueueEventsIsCopy(t *testing.T) {
	q := NewQueue()
	evs := mkEvents(2)
	for _, ev := range evs {
		q.Push(ev)
	}
	cp := q.Events()
	cp[0] = nil
	if q.At(0) != evs[0] {
		t.Error("mutating Events() copy changed the queue")
	}
}
