package sched

import (
	"netupdate/internal/core"
)

// FIFO executes events strictly in arrival order: simple, strictly fair,
// and vulnerable to head-of-line blocking when event durations are
// heavy-tailed (Section IV-B).
type FIFO struct{}

var _ Scheduler = FIFO{}

// Name implements Scheduler.
func (FIFO) Name() string { return "fifo" }

// Pick implements Scheduler: always the head event, no probing work.
func (FIFO) Pick(q *Queue, _ *core.Planner) (Decision, error) {
	if q.Len() == 0 {
		return Decision{}, ErrEmptyQueue
	}
	return Decision{Head: q.Head()}, nil
}

// Reorder is the "intrinsic method" of Section III-C: probe every queued
// event and execute the cheapest first. It tackles head-of-line blocking
// completely but pays full-queue probing cost each round and destroys
// arrival-order fairness; the paper rejects it in favour of LMTF, and it
// is kept here as an ablation baseline.
type Reorder struct{}

var _ Scheduler = Reorder{}

// Name implements Scheduler.
func (Reorder) Name() string { return "reorder" }

// Pick implements Scheduler: probe all, choose the cheapest (ties go to
// the earliest arrival). Every probe is reported in Decision.Probes —
// Reorder's full-queue scan is already the expensive baseline, so the
// recording is unconditional (no ProbeRecorder opt-in needed).
func (Reorder) Pick(q *Queue, planner *core.Planner) (Decision, error) {
	if q.Len() == 0 {
		return Decision{}, ErrEmptyQueue
	}
	d := Decision{Probes: make([]ProbeRecord, 0, q.Len())}
	best := -1
	var bestCost float64
	for i := 0; i < q.Len(); i++ {
		est, err := probeCost(planner, q.At(i))
		if err != nil {
			return Decision{}, err
		}
		d.Evals += est.Evals
		d.Probes = append(d.Probes, ProbeRecord{
			Event:      q.At(i),
			Cost:       est.Cost,
			Admittable: est.Admittable,
			Evals:      est.Evals,
			CacheHit:   est.FromCache,
		})
		if best == -1 || float64(est.Cost) < bestCost {
			best, bestCost = i, float64(est.Cost)
		}
	}
	d.Head = q.At(best)
	return d, nil
}
