package sched

import (
	"errors"
	"strings"
	"testing"
)

func TestNewRegisteredNames(t *testing.T) {
	for name, wantType := range map[string]string{
		"fifo":    "sched.FIFO",
		"reorder": "sched.Reorder",
		"lmtf":    "*sched.LMTF",
		"p-lmtf":  "*sched.PLMTF",
	} {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got := typeName(s); got != wantType {
			t.Errorf("New(%q) built %s, want %s", name, got, wantType)
		}
	}
}

func typeName(s Scheduler) string {
	switch s.(type) {
	case FIFO:
		return "sched.FIFO"
	case Reorder:
		return "sched.Reorder"
	case *LMTF:
		return "*sched.LMTF"
	case *PLMTF:
		return "*sched.PLMTF"
	default:
		return "unknown"
	}
}

func TestNewUnknownScheduler(t *testing.T) {
	_, err := New("bogus")
	if err == nil {
		t.Fatal("New(bogus) succeeded")
	}
	var unknown *UnknownSchedulerError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %T is not *UnknownSchedulerError", err)
	}
	if unknown.Name != "bogus" {
		t.Errorf("Name = %q, want bogus", unknown.Name)
	}
	for _, want := range []string{"fifo", "lmtf", "p-lmtf", "reorder"} {
		found := false
		for _, name := range unknown.Registered {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Registered %v misses %q", unknown.Registered, want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error message %q does not list %q", err, want)
		}
	}
}

func TestNewOptions(t *testing.T) {
	s, err := New("lmtf", WithAlpha(7), WithSeed(3), WithProbes(1), WithRecordProbes())
	if err != nil {
		t.Fatal(err)
	}
	l := s.(*LMTF)
	if l.Alpha != 7 {
		t.Errorf("Alpha = %d, want 7", l.Alpha)
	}
	if l.probes != 1 {
		t.Errorf("probes = %d, want 1", l.probes)
	}
	if !l.record {
		t.Error("WithRecordProbes did not enable probe recording")
	}

	p, err := New("p-lmtf", WithAlpha(2), WithScanAll())
	if err != nil {
		t.Fatal(err)
	}
	if !p.(*PLMTF).scanAll {
		t.Error("WithScanAll did not enable full-queue co-scheduling")
	}
	if got := p.Name(); !strings.Contains(got, "full") {
		t.Errorf("scan-all scheduler Name() = %q, want the full variant", got)
	}

	// Options that do not apply to the policy are ignored, not fatal.
	if _, err := New("fifo", WithScanAll(), WithProbes(4)); err != nil {
		t.Errorf("New(fifo, inapplicable options): %v", err)
	}
}

func TestNewDefaultAlpha(t *testing.T) {
	s, err := New("lmtf", WithAlpha(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*LMTF).Alpha; got != DefaultAlpha {
		t.Errorf("Alpha = %d, want DefaultAlpha %d", got, DefaultAlpha)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("fifo", func(int, int64) Scheduler { return FIFO{} })
}

func TestRegisterCustom(t *testing.T) {
	Register("custom-fifo", func(int, int64) Scheduler { return FIFO{} })
	s, err := New("custom-fifo")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "fifo" {
		t.Errorf("custom builder produced %q", s.Name())
	}
	found := false
	for _, name := range Names() {
		if name == "custom-fifo" {
			found = true
		}
	}
	if !found {
		t.Error("Names() misses the registered custom scheduler")
	}
}
