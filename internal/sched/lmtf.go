package sched

import (
	"fmt"
	"math/rand"

	"netupdate/internal/core"
	"netupdate/internal/topology"
)

// DefaultAlpha is the paper's sampling parameter (α=4 in every
// experiment); load-balance theory says even α=2 captures most of the
// benefit (power of two random choices [16]).
const DefaultAlpha = 4

// LMTF — least migration traffic first (Section IV-B) — schedules in
// arrival order but fine-tunes the head each round: it samples α queued
// events, probes their current update costs together with the head's, and
// executes the cheapest of the α+1 candidates. Smaller events therefore
// overtake a heavy head (no head-of-line blocking) while un-sampled events
// keep their FIFO positions (bounded unfairness).
type LMTF struct {
	// Alpha is the sample size (>= 1).
	Alpha int
	rng   *rand.Rand
}

var _ Scheduler = (*LMTF)(nil)

// NewLMTF returns an LMTF scheduler with the given sample size (0 means
// DefaultAlpha) and RNG seed.
func NewLMTF(alpha int, seed int64) *LMTF {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	return &LMTF{Alpha: alpha, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (s *LMTF) Name() string { return fmt.Sprintf("lmtf(a=%d)", s.Alpha) }

// Pick implements Scheduler.
func (s *LMTF) Pick(q *Queue, planner *core.Planner) (Decision, error) {
	cands, d, err := s.selectCandidates(q, planner)
	if err != nil {
		return Decision{}, err
	}
	d.Head = cands[0].ev
	return d, nil
}

// candidate pairs an event with its probed cost and queue index.
type candidate struct {
	ev         *core.Event
	index      int
	cost       topology.Bandwidth
	admittable int
}

// selectCandidates probes the head plus α sampled events and returns them
// sorted so that the cheapest (ties: earliest arrival) is first and the
// rest follow in arrival order. Shared by LMTF and P-LMTF.
func (s *LMTF) selectCandidates(q *Queue, planner *core.Planner) ([]candidate, Decision, error) {
	if q.Len() == 0 {
		return nil, Decision{}, ErrEmptyQueue
	}
	d := Decision{}
	indices := sampleIndices(s.rng, q.Len(), s.Alpha)
	cands := make([]candidate, 0, len(indices))
	for _, i := range indices {
		ev := q.At(i)
		est, err := probeCost(planner, ev)
		if err != nil {
			return nil, Decision{}, err
		}
		d.Evals += est.Evals
		cands = append(cands, candidate{ev: ev, index: i, cost: est.Cost, admittable: est.Admittable})
	}
	// Move the winner to the front; keep everyone else in arrival order.
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].cost < cands[best].cost {
			best = i
		}
	}
	if best != 0 {
		winner := cands[best]
		cands = append(cands[:best], cands[best+1:]...)
		cands = append([]candidate{winner}, cands...)
	}
	return cands, d, nil
}

// sampleIndices returns {0} ∪ α distinct random indices from [1, n), in
// increasing order after the leading 0. With n-1 <= α it returns all
// indices (the paper: LMTF "does not persist in sampling α events when the
// queue contains less than α+1").
func sampleIndices(rng *rand.Rand, n, alpha int) []int {
	out := []int{0}
	rest := n - 1
	if rest <= 0 {
		return out
	}
	if rest <= alpha {
		for i := 1; i < n; i++ {
			out = append(out, i)
		}
		return out
	}
	// Floyd's algorithm: α distinct values from [1, n).
	chosen := make(map[int]bool, alpha)
	for j := rest - alpha; j < rest; j++ {
		// candidate in [1, j+1]
		v := 1 + rng.Intn(j+1)
		if chosen[v] {
			v = j + 1
		}
		chosen[v] = true
	}
	picks := make([]int, 0, alpha)
	for v := range chosen {
		picks = append(picks, v)
	}
	// Sort the small pick set (insertion sort keeps this allocation-free).
	for i := 1; i < len(picks); i++ {
		for j := i; j > 0 && picks[j] < picks[j-1]; j-- {
			picks[j], picks[j-1] = picks[j-1], picks[j]
		}
	}
	return append(out, picks...)
}
