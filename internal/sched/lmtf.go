package sched

import (
	"fmt"
	"math/rand"

	"netupdate/internal/core"
	"netupdate/internal/detrand"
	"netupdate/internal/topology"
)

// DefaultAlpha is the paper's sampling parameter (α=4 in every
// experiment); load-balance theory says even α=2 captures most of the
// benefit (power of two random choices [16]).
const DefaultAlpha = 4

// LMTF — least migration traffic first (Section IV-B) — schedules in
// arrival order but fine-tunes the head each round: it samples α queued
// events, probes their current update costs together with the head's, and
// executes the cheapest of the α+1 candidates. Smaller events therefore
// overtake a heavy head (no head-of-line blocking) while un-sampled events
// keep their FIFO positions (bounded unfairness).
//
// Cost probes go through a core.ProbeEngine: the α+1 probes fan out over
// forked scratch networks (bounded by the Probes knob) and repeat probes
// of unchanged candidates are answered from the engine's epoch cache.
// Neither changes the decision — probes are read-isolated and the winner
// is still the (cost, arrival-order) minimum over the same sampled set —
// so serial and parallel configurations pick identical schedules.
type LMTF struct {
	// Alpha is the sample size (>= 1).
	Alpha int
	rng   *rand.Rand
	src   *detrand.CountedSource
	// probes is the requested probe concurrency (0 = GOMAXPROCS,
	// 1 = serial).
	probes int
	// eng is the probe engine, bound lazily to the planner Pick receives.
	eng *core.ProbeEngine
	// record makes Pick report per-candidate probe outcomes in
	// Decision.Probes (see ProbeRecorder); off by default.
	record bool
	// scratch backs sampleIndices between rounds so sampling allocates
	// nothing in steady state.
	scratch []int
}

var _ Scheduler = (*LMTF)(nil)
var _ CostProber = (*LMTF)(nil)
var _ ProbeRecorder = (*LMTF)(nil)

// NewLMTF returns an LMTF scheduler with the given sample size (0 means
// DefaultAlpha) and RNG seed. Probe concurrency defaults to GOMAXPROCS;
// override with SetProbes.
func NewLMTF(alpha int, seed int64) *LMTF {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	src := detrand.New(seed)
	return &LMTF{Alpha: alpha, rng: rand.New(src), src: src}
}

// RNGDraws returns the number of sampling RNG draws consumed so far.
func (s *LMTF) RNGDraws() int64 { return s.src.Draws() }

// RestoreRNG repositions the sampling RNG at the given draw count
// (checkpoint recovery).
func (s *LMTF) RestoreRNG(draws int64) { s.src.Restore(draws) }

// Name implements Scheduler.
func (s *LMTF) Name() string { return fmt.Sprintf("lmtf(a=%d)", s.Alpha) }

// SetProbes implements CostProber: n is the maximum number of concurrent
// cost probes (0 = GOMAXPROCS, 1 = serial probing).
//
// Deprecated: prefer constructing with sched.New(name, WithProbes(n)).
// The method remains because the simulator retunes concurrency from
// sim.Config after construction.
func (s *LMTF) SetProbes(n int) {
	if s.probes == n {
		return
	}
	s.probes = n
	s.eng = nil // rebuilt with the new width on next Pick
}

// SetRecordProbes implements ProbeRecorder.
//
// Deprecated: prefer constructing with sched.New(name,
// WithRecordProbes()). The method remains because the simulator flips
// recording when a tracer is attached after construction.
func (s *LMTF) SetRecordProbes(on bool) { s.record = on }

// ProbeEngine implements CostProber, returning the engine bound to the
// given planner (rebinding if the planner changed since the last round).
func (s *LMTF) ProbeEngine(planner *core.Planner) *core.ProbeEngine {
	if s.eng == nil || s.eng.Planner() != planner {
		s.eng = core.NewProbeEngine(planner, s.probes)
	}
	return s.eng
}

// Pick implements Scheduler.
func (s *LMTF) Pick(q *Queue, planner *core.Planner) (Decision, error) {
	cands, d, err := s.selectCandidates(q, planner)
	if err != nil {
		return Decision{}, err
	}
	d.Head = cands[0].ev
	return d, nil
}

// candidate pairs an event with its probed cost and queue index.
type candidate struct {
	ev         *core.Event
	index      int
	cost       topology.Bandwidth
	admittable int
}

// selectCandidates probes the head plus α sampled events and returns them
// sorted so that the cheapest (ties: earliest arrival) is first and the
// rest follow in arrival order. Shared by LMTF and P-LMTF.
func (s *LMTF) selectCandidates(q *Queue, planner *core.Planner) ([]candidate, Decision, error) {
	if q.Len() == 0 {
		return nil, Decision{}, ErrEmptyQueue
	}
	d := Decision{}
	indices := s.sampleIndices(q.Len(), s.Alpha)
	evs := make([]*core.Event, len(indices))
	for j, i := range indices {
		evs[j] = q.At(i)
	}
	ests, err := s.ProbeEngine(planner).ProbeAll(evs)
	if err != nil {
		return nil, Decision{}, err
	}
	cands := make([]candidate, 0, len(indices))
	for j, i := range indices {
		est := ests[j]
		d.Evals += est.Evals
		cands = append(cands, candidate{ev: evs[j], index: i, cost: est.Cost, admittable: est.Admittable})
	}
	if s.record {
		d.Probes = make([]ProbeRecord, len(indices))
		for j := range indices {
			est := ests[j]
			d.Probes[j] = ProbeRecord{
				Event:      evs[j],
				Cost:       est.Cost,
				Admittable: est.Admittable,
				Evals:      est.Evals,
				CacheHit:   est.FromCache,
			}
		}
	}
	// Move the winner to the front; keep everyone else in arrival order.
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].cost < cands[best].cost {
			best = i
		}
	}
	if best != 0 {
		winner := cands[best]
		cands = append(cands[:best], cands[best+1:]...)
		cands = append([]candidate{winner}, cands...)
	}
	return cands, d, nil
}

// sampleIndices returns {0} ∪ α distinct random indices from [1, n), in
// increasing order after the leading 0. With n-1 <= α it returns all
// indices (the paper: LMTF "does not persist in sampling α events when the
// queue contains less than α+1"). The returned slice is backed by the
// scheduler's scratch buffer and is valid until the next call; steady
// state allocates nothing.
func (s *LMTF) sampleIndices(n, alpha int) []int {
	out := append(s.scratch[:0], 0)
	defer func() { s.scratch = out[:0] }()
	rest := n - 1
	if rest <= 0 {
		return out
	}
	if rest <= alpha {
		for i := 1; i < n; i++ {
			out = append(out, i)
		}
		return out
	}
	// Floyd's algorithm: α distinct values from [1, n). Membership tests
	// scan the picks gathered so far — α is tiny, so a linear scan beats
	// allocating a set, and the accepted values match the map-based
	// formulation exactly (same RNG consumption, same picks).
	contains := func(picks []int, v int) bool {
		for _, p := range picks {
			if p == v {
				return true
			}
		}
		return false
	}
	for j := rest - alpha; j < rest; j++ {
		// candidate in [1, j+1]
		v := 1 + s.rng.Intn(j+1)
		if contains(out[1:], v) {
			v = j + 1
		}
		out = append(out, v)
	}
	// Sort the small pick tail (insertion sort keeps this allocation-free).
	picks := out[1:]
	for i := 1; i < len(picks); i++ {
		for j := i; j > 0 && picks[j] < picks[j-1]; j-- {
			picks[j], picks[j-1] = picks[j-1], picks[j]
		}
	}
	return out
}
