// Package sched implements the inter-event scheduling policies of
// Section IV: FIFO, the full cost reorder ("intrinsic method"), LMTF
// (least migration traffic first) and P-LMTF (parallel LMTF with
// opportunistic co-scheduling), plus the update queue they operate on.
package sched

import (
	"netupdate/internal/core"
)

// Queue is the update queue: events in arrival order. The scheduler reads
// it; the simulator pushes arrivals and removes events chosen for
// execution.
type Queue struct {
	events []*core.Event
}

// NewQueue returns an empty update queue.
func NewQueue() *Queue { return &Queue{} }

// Push appends an event (events arrive in nondecreasing time order).
func (q *Queue) Push(ev *core.Event) {
	q.events = append(q.events, ev)
}

// PushBatch appends events in the given order with one underlying grow —
// the bulk-admission path of the batched ingest pipeline. It is exactly
// equivalent to calling Push on each event in order: arrival order is the
// slice order, and the events' Arrival stamps should be nondecreasing
// like any other arrivals.
func (q *Queue) PushBatch(evs []*core.Event) {
	q.events = append(q.events, evs...)
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.events) }

// At returns the i-th event in arrival order (0 = head).
func (q *Queue) At(i int) *core.Event { return q.events[i] }

// Head returns the head event, or nil if the queue is empty.
func (q *Queue) Head() *core.Event {
	if len(q.events) == 0 {
		return nil
	}
	return q.events[0]
}

// Remove deletes the given event, preserving the order of the rest.
// It reports whether the event was present.
func (q *Queue) Remove(ev *core.Event) bool {
	for i, e := range q.events {
		if e == ev {
			q.events = append(q.events[:i], q.events[i+1:]...)
			return true
		}
	}
	return false
}

// Events returns a copy of the queue in arrival order.
func (q *Queue) Events() []*core.Event {
	out := make([]*core.Event, len(q.events))
	copy(out, q.events)
	return out
}
