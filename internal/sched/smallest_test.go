package sched

import (
	"errors"
	"testing"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/topology"
)

// sizedEvent builds an event with n placeholder flows (never executed, so
// host IDs need not exist).
func sizedEvent(id flow.EventID, n int) *core.Event {
	specs := make([]flow.Spec, n)
	for i := range specs {
		specs[i] = flow.Spec{Src: 0, Dst: 1, Demand: topology.Mbps}
	}
	return core.NewEvent(id, "test", 0, specs)
}

func TestSmallestFirstPicksFewestFlows(t *testing.T) {
	q := NewQueue()
	q.Push(sizedEvent(1, 10))
	small := sizedEvent(2, 2)
	q.Push(small)
	q.Push(sizedEvent(3, 5))

	d, err := (SmallestFirst{}).Pick(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != small {
		t.Errorf("head = %v, want the 2-flow event", d.Head)
	}
	if d.Evals != 0 {
		t.Errorf("Evals = %d, want 0 (probe-free)", d.Evals)
	}
}

func TestSmallestFirstTieKeepsArrival(t *testing.T) {
	q := NewQueue()
	first := sizedEvent(1, 3)
	q.Push(first)
	q.Push(sizedEvent(2, 3))
	d, err := (SmallestFirst{}).Pick(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Head != first {
		t.Error("tie not broken toward earliest arrival")
	}
}

func TestSmallestFirstEmptyQueue(t *testing.T) {
	if _, err := (SmallestFirst{}).Pick(NewQueue(), nil); !errors.Is(err, ErrEmptyQueue) {
		t.Errorf("error = %v, want ErrEmptyQueue", err)
	}
}

func TestSmallestFirstName(t *testing.T) {
	if got := (SmallestFirst{}).Name(); got != "smallest-first" {
		t.Errorf("Name = %q", got)
	}
}
