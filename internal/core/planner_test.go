package core

import (
	"errors"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// coreScenario mirrors the migration package's deterministic graph:
//
//	a -> u -> v -> b   (route for event flows a->b; 1 Gbps bottleneck u->v)
//	c -> u -> v -> d   (victim route) with detour c -> w -> d
type coreScenario struct {
	net        *netstate.Network
	g          *topology.Graph
	a, b, c, d topology.NodeID
	uv         topology.LinkID
	victim     *flow.Flow
}

func newCoreScenario(t *testing.T, victimDemand topology.Bandwidth) *coreScenario {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	c := g.AddNode(topology.KindHost, "c")
	d := g.AddNode(topology.KindHost, "d")
	u := g.AddNode(topology.KindEdgeSwitch, "u")
	v := g.AddNode(topology.KindEdgeSwitch, "v")
	w := g.AddNode(topology.KindEdgeSwitch, "w")
	link := func(x, y topology.NodeID) topology.LinkID {
		id, err := g.AddLink(x, y, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	au := link(a, u)
	uv := link(u, v)
	vb := link(v, b)
	cu := link(c, u)
	vd := link(v, d)
	link(c, w)
	link(w, d)
	_, _, _ = au, vb, cu

	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})
	s := &coreScenario{net: net, g: g, a: a, b: b, c: c, d: d, uv: uv}
	if victimDemand > 0 {
		f, err := net.AddFlow(flow.Spec{Src: c, Dst: d, Demand: victimDemand})
		if err != nil {
			t.Fatal(err)
		}
		p, err := routing.NewPath(g, []topology.LinkID{cu, uv, vd})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Place(f, p); err != nil {
			t.Fatal(err)
		}
		s.victim = f
	}
	return s
}

func (s *coreScenario) planner(policy FailPolicy) *Planner {
	return NewPlanner(migration.NewPlanner(s.net, 0), policy)
}

func (s *coreScenario) snapshot() []topology.Bandwidth {
	out := make([]topology.Bandwidth, s.g.NumLinks())
	for i := range out {
		out[i] = s.g.Link(topology.LinkID(i)).Reserved()
	}
	return out
}

func TestExecuteAdmitsAllFlows(t *testing.T) {
	s := newCoreScenario(t, 0)
	p := s.planner(0)
	ev := NewEvent(1, "test", 0, []flow.Spec{
		{Src: s.a, Dst: s.b, Demand: 300 * topology.Mbps},
		{Src: s.a, Dst: s.b, Demand: 200 * topology.Mbps},
	})
	res, err := p.Execute(ev)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Admitted) != 2 || res.Failed != 0 {
		t.Fatalf("Admitted = %d, Failed = %d", len(res.Admitted), res.Failed)
	}
	if res.Cost != 0 {
		t.Errorf("Cost = %v, want 0 (no migration needed)", res.Cost)
	}
	if len(ev.Flows) != 2 {
		t.Errorf("event flows = %d, want 2", len(ev.Flows))
	}
	if got := s.g.Link(s.uv).Reserved(); got != 500*topology.Mbps {
		t.Errorf("bottleneck reserved = %v, want 500Mbps", got)
	}
	if ev.CostAtExec != res.Cost {
		t.Errorf("CostAtExec = %v, want %v", ev.CostAtExec, res.Cost)
	}
}

func TestExecuteWithMigrationCost(t *testing.T) {
	s := newCoreScenario(t, 800*topology.Mbps)
	p := s.planner(0)
	ev := NewEvent(1, "test", 0, []flow.Spec{
		{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps},
	})
	res, err := p.Execute(ev)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Cost != 800*topology.Mbps {
		t.Errorf("Cost = %v, want 800Mbps (victim migrated)", res.Cost)
	}
	if s.victim.Path().Contains(s.uv) {
		t.Error("victim still on bottleneck")
	}
}

func TestExecuteFailSkipRecordsFailures(t *testing.T) {
	// Victim has no detour here: strip the detour by filling it.
	s := newCoreScenario(t, 800*topology.Mbps)
	// Saturate the victim's detour so migration is impossible.
	cw, _ := s.g.LinkBetween(s.c, topology.NodeID(6))
	if err := s.g.Reserve(cw, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	p := s.planner(FailSkip)
	ev := NewEvent(1, "test", 0, []flow.Spec{
		{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps}, // blocked (bottleneck 200 free)
		{Src: s.a, Dst: s.b, Demand: 100 * topology.Mbps}, // fits
	})
	res, err := p.Execute(ev)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Failed != 1 || len(res.Admitted) != 1 {
		t.Fatalf("Failed = %d, Admitted = %d; want 1, 1", res.Failed, len(res.Admitted))
	}
	if len(ev.FailedSpecs) != 1 || ev.FailedSpecs[0].Demand != 500*topology.Mbps {
		t.Errorf("FailedSpecs = %+v", ev.FailedSpecs)
	}
	if len(ev.Flows) != 1 {
		t.Errorf("event flows = %d, want 1", len(ev.Flows))
	}
	// The failed spec's flow must not linger in the registry.
	if got := s.net.Registry().Len(); got != 2 { // victim + admitted flow
		t.Errorf("registry size = %d, want 2", got)
	}
}

func TestExecuteFailAbortRollsBack(t *testing.T) {
	s := newCoreScenario(t, 800*topology.Mbps)
	cw, _ := s.g.LinkBetween(s.c, topology.NodeID(6))
	if err := s.g.Reserve(cw, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	before := s.snapshot()
	regBefore := s.net.Registry().Len()

	p := s.planner(FailAbort)
	ev := NewEvent(1, "test", 0, []flow.Spec{
		{Src: s.a, Dst: s.b, Demand: 100 * topology.Mbps}, // fits, then rolled back
		{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps}, // blocked -> abort
	})
	_, err := p.Execute(ev)
	if !errors.Is(err, ErrEventAborted) {
		t.Fatalf("Execute error = %v, want ErrEventAborted", err)
	}
	for i, w := range before {
		if got := s.g.Link(topology.LinkID(i)).Reserved(); got != w {
			t.Errorf("link %d reserved = %v, want %v (rollback)", i, got, w)
		}
	}
	if got := s.net.Registry().Len(); got != regBefore {
		t.Errorf("registry size = %d, want %d", got, regBefore)
	}
	if len(ev.Flows) != 0 {
		t.Errorf("aborted event has flows: %v", ev.Flows)
	}
}

func TestProbeRestoresStateAndPredictsCost(t *testing.T) {
	s := newCoreScenario(t, 800*topology.Mbps)
	p := s.planner(0)
	ev := NewEvent(1, "test", 0, []flow.Spec{
		{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps},
	})
	before := s.snapshot()
	regBefore := s.net.Registry().Len()
	victimPath := s.victim.Path()

	est, err := p.Probe(ev)
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if !est.Feasible || est.Admittable != 1 {
		t.Errorf("estimate = %+v, want feasible with 1 admittable", est)
	}
	if est.Cost != 800*topology.Mbps {
		t.Errorf("estimated cost = %v, want 800Mbps", est.Cost)
	}
	if est.Evals == 0 {
		t.Error("Evals = 0, want > 0")
	}
	// State fully restored.
	for i, w := range before {
		if got := s.g.Link(topology.LinkID(i)).Reserved(); got != w {
			t.Errorf("link %d reserved = %v, want %v after probe", i, got, w)
		}
	}
	if got := s.net.Registry().Len(); got != regBefore {
		t.Errorf("registry size = %d, want %d after probe", got, regBefore)
	}
	if !s.victim.Path().Equal(victimPath) {
		t.Error("victim path changed by probe")
	}
	if ev.CostAtExec != 0 || len(ev.Flows) != 0 {
		t.Error("probe mutated event bookkeeping")
	}

	// Executing afterwards realizes the estimated cost.
	res, err := p.Execute(ev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != est.Cost {
		t.Errorf("executed cost %v != estimated %v", res.Cost, est.Cost)
	}
}

func TestProbeInfeasibleEvent(t *testing.T) {
	s := newCoreScenario(t, 800*topology.Mbps)
	cw, _ := s.g.LinkBetween(s.c, topology.NodeID(6))
	if err := s.g.Reserve(cw, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	p := s.planner(0)
	ev := NewEvent(1, "test", 0, []flow.Spec{
		{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps},
		{Src: s.a, Dst: s.b, Demand: 100 * topology.Mbps},
	})
	before := s.snapshot()
	est, err := p.Probe(ev)
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if est.Feasible || est.Admittable != 1 {
		t.Errorf("estimate = %+v, want infeasible with 1 admittable", est)
	}
	for i, w := range before {
		if got := s.g.Link(topology.LinkID(i)).Reserved(); got != w {
			t.Errorf("link %d reserved = %v, want %v after probe", i, got, w)
		}
	}
	if len(ev.FailedSpecs) != 0 {
		t.Error("probe recorded failed specs on the event")
	}
}

func TestExecuteInvalidSpecFails(t *testing.T) {
	s := newCoreScenario(t, 0)
	p := s.planner(0)
	ev := NewEvent(1, "test", 0, []flow.Spec{
		{Src: s.a, Dst: s.a, Demand: topology.Mbps}, // src == dst
	})
	if _, err := p.Execute(ev); err == nil {
		t.Error("Execute with invalid spec succeeded")
	}
}

func TestPlannerNetworkAccessor(t *testing.T) {
	s := newCoreScenario(t, 0)
	p := s.planner(0)
	if p.Network() != s.net {
		t.Error("Network() returned wrong network")
	}
}

func TestRollbackExecRestoresExactState(t *testing.T) {
	// Use a migration-heavy execute so rollback must also un-migrate the
	// victim, not just withdraw the event's own flows.
	s := newCoreScenario(t, 800*topology.Mbps)
	before := s.snapshot()
	victimPath := s.victim.Path()
	p := s.planner(0)
	ev := NewEvent(1, "test", 0, []flow.Spec{
		{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps},
	})
	res, err := p.Execute(ev)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Cost == 0 {
		t.Fatal("scenario did not force a migration")
	}

	if err := p.RollbackExec(res); err != nil {
		t.Fatalf("RollbackExec: %v", err)
	}
	after := s.snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("link %d reserved = %v, want pre-Execute %v", i, after[i], before[i])
		}
	}
	if !s.victim.Path().Equal(victimPath) {
		t.Errorf("victim path = %v, want restored %v", s.victim.Path(), victimPath)
	}
	if len(ev.Flows) != 0 {
		t.Errorf("event still owns %d flows after rollback", len(ev.Flows))
	}
	// The event's flows are gone from the registry: only the victim remains.
	if got := len(s.net.Registry().Placed()); got != 1 {
		t.Errorf("placed flows after rollback = %d, want 1 (the victim)", got)
	}
}
