package core

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/topology"
)

// ProbeStats counts the work a ProbeEngine performed.
type ProbeStats struct {
	// Hits and Misses count probe requests answered from the epoch cache
	// versus freshly planned.
	Hits   int
	Misses int
	// Cold and Incremental split Misses by cause: Cold counts probes of
	// events never cached (or probed live in data-plane mode), while
	// Incremental counts re-plans of events whose cached estimate was
	// invalidated by a link change. Misses == Cold + Incremental always.
	Cold        int
	Incremental int
	// JournalMisses counts refreshes where the graph's change journal no
	// longer covered the gap since the last scan, forcing the engine to
	// treat every cached entry as potentially dirty.
	JournalMisses int
	// Forks counts fork lanes created; Resyncs counts times an existing
	// lane was refreshed from live state.
	Forks   int
	Resyncs int
	// ProbeTime is the wall-clock time spent inside ProbeAll.
	ProbeTime time.Duration
}

// DirtyObserver receives the number of distinct dirty links each time
// the engine consumes a batch of journaled changes. obs.Histogram
// satisfies it; the indirection keeps core free of the obs package.
type DirtyObserver interface {
	Observe(v int64)
}

// HitRate returns Hits / (Hits + Misses), 0 when no probes ran.
func (s ProbeStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// forkLane is one worker's scratch network plus the planner bound to it.
type forkLane struct {
	net     *netstate.Network
	planner *Planner
}

// probeEntry is one cached cost estimate together with its validity
// condition: the deduplicated set of links the probe read and the highest
// link version among them at probe time. Because link versions are minted
// from a single graph-wide epoch, any later change to any of these links
// strictly raises the set's max version, so "max unchanged" proves "all
// unchanged".
//
// Fully-admittable entries under the hash policy additionally carry need:
// for each desired-path link, the total demand the event's flows place on
// it. It backs the headroom revalidation of ProbeEngine.revalidate (nil
// when unavailable). cleanEvals is the planning work an all-fast-path
// replay would report, so headroom hits can account Evals faithfully.
// Each entry also carries the bookkeeping of the engine's incremental
// indexes: valid is the dirty bit maintained from the graph's change
// journal (true means no link of the read set changed since the entry
// was stamped, so the cached estimate is current without any check);
// gen is bumped whenever the entry's cost may have changed, lazily
// invalidating min-cost heap nodes that reference an older gen.
type probeEntry struct {
	id         flow.EventID
	est        Estimate
	links      []topology.LinkID
	maxVersion uint64
	need       map[topology.LinkID]topology.Bandwidth
	cleanEvals int

	valid bool
	gen   uint64
}

// ProbeEngine answers event cost probes (Planner.Probe) for schedulers,
// adding two optimizations over probing the live network directly:
//
//   - Parallelism: cache misses fan out over a bounded pool of fork lanes
//     (Network.Fork scratch copies), so the α+1 probes of an LMTF round
//     run concurrently instead of serially. Forks are probe-only; the
//     live network is never written, which is why probing in parallel
//     preserves the exact estimates (and therefore decisions) of serial
//     probing.
//   - Epoch caching: each fresh estimate is stored with the link set the
//     plan read and those links' max version. A later probe of the same
//     event whose links are all unchanged returns the cached estimate
//     with zero planning work — common across scheduling rounds, because
//     committing one event perturbs only a few links of a large fabric.
//
// When the live network has a data plane attached, fork probing and
// caching are both disabled (rule-table state is neither forked nor
// covered by link versions) and the engine degrades to serial probes on
// the live network — exactly the pre-engine behavior.
//
// A ProbeEngine is bound to one Planner and must be used from a single
// goroutine; the parallelism is internal.
type ProbeEngine struct {
	planner *Planner
	workers int

	lanes       []*forkLane
	syncedEpoch uint64
	synced      bool

	cache map[flow.EventID]*probeEntry
	stats ProbeStats

	// byLink is the reverse index read-set link -> cached entries, used
	// by refresh to dirty exactly the entries a journaled change hits.
	byLink map[topology.LinkID]map[*probeEntry]struct{}
	// scanEpoch is the graph epoch up to which journaled changes have
	// been consumed; every cached entry's valid bit is accurate as of it.
	scanEpoch uint64
	// minHeap orders heap nodes over cached entries by (cost, event ID)
	// with lazy invalidation: stale nodes (gen mismatch) are discarded
	// on pop. dirtyScratch is the reused buffer for journal reads.
	minHeap      costHeap
	dirtyScratch []topology.LinkID
	dirtyObs     DirtyObserver
}

// costNode is one lazy min-cost heap node. It is stale — skipped on
// pop — once gen no longer matches entry.gen (the entry was dirtied,
// resurrected at a different cost, replaced, or forgotten).
type costNode struct {
	cost  topology.Bandwidth
	id    flow.EventID
	entry *probeEntry
	gen   uint64
}

// costHeap implements container/heap ordered by (cost, event ID); the
// ID tie-break keeps CheapestValid deterministic across probe modes.
type costHeap []costNode

func (h costHeap) Len() int { return len(h) }
func (h costHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].id < h[j].id
}
func (h costHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x any)   { *h = append(*h, x.(costNode)) }
func (h *costHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewProbeEngine returns an engine over the given planner with the given
// worker count. workers <= 0 selects GOMAXPROCS; workers == 1 probes
// serially (but still on a fork, and still cached).
func NewProbeEngine(planner *Planner, workers int) *ProbeEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ProbeEngine{
		planner: planner,
		workers: workers,
		cache:   make(map[flow.EventID]*probeEntry),
		byLink:  make(map[topology.LinkID]map[*probeEntry]struct{}),
	}
}

// SetDirtyObserver installs o to receive the distinct-dirty-link count
// of each consumed journal batch (nil disables). Typically an
// obs.Histogram feeding the netupdate_probe_dirty_links metric.
func (pe *ProbeEngine) SetDirtyObserver(o DirtyObserver) { pe.dirtyObs = o }

// Planner returns the live planner the engine probes on behalf of.
func (pe *ProbeEngine) Planner() *Planner { return pe.planner }

// Workers returns the configured probe concurrency.
func (pe *ProbeEngine) Workers() int { return pe.workers }

// Stats returns a snapshot of the engine's counters.
func (pe *ProbeEngine) Stats() ProbeStats { return pe.stats }

// Forget drops the cached estimate for an event. Call after the event
// executes: it will never be probed again, and its entry would otherwise
// linger for the life of the engine.
func (pe *ProbeEngine) Forget(id flow.EventID) {
	if e, ok := pe.cache[id]; ok {
		pe.dropEntry(e)
		delete(pe.cache, id)
	}
}

// dropEntry unlinks an entry from the reverse index and bumps its gen so
// any heap nodes referencing it are discarded on pop. The cache map
// itself is the caller's to update.
func (pe *ProbeEngine) dropEntry(e *probeEntry) {
	for _, l := range e.links {
		if set, ok := pe.byLink[l]; ok {
			delete(set, e)
			if len(set) == 0 {
				delete(pe.byLink, l)
			}
		}
	}
	e.valid = false
	e.gen++
}

// markValid flips a resurrected entry back to valid and indexes its
// (possibly refreshed) cost in the min-cost heap.
func (pe *ProbeEngine) markValid(e *probeEntry) {
	e.valid = true
	e.gen++
	pe.pushNode(e)
}

// pushNode records the entry's current cost in the lazy heap, compacting
// stale nodes when they outnumber live entries by too much.
func (pe *ProbeEngine) pushNode(e *probeEntry) {
	heap.Push(&pe.minHeap, costNode{cost: e.est.Cost, id: e.id, entry: e, gen: e.gen})
	if len(pe.minHeap) > 4*len(pe.cache)+64 {
		live := pe.minHeap[:0]
		for _, n := range pe.minHeap {
			if n.gen == n.entry.gen {
				live = append(live, n)
			}
		}
		pe.minHeap = live
		heap.Init(&pe.minHeap)
	}
}

// refresh consumes the graph's change journal since the last scan,
// marking dirty exactly the cached entries whose read sets intersect the
// changed links. When the journal cannot cover the gap (the engine fell
// more than journalCap epochs behind, or the graph was synced wholesale)
// every entry is conservatively marked dirty — recovering the pre-index
// behavior of revalidating each entry at its next probe.
func (pe *ProbeEngine) refresh(g *topology.Graph) {
	epoch := g.Epoch()
	if epoch == pe.scanEpoch {
		return
	}
	if len(pe.cache) == 0 {
		// Nothing to dirty; just fast-forward past the gap (background
		// fill alone can burn thousands of epochs before the first probe).
		pe.scanEpoch = epoch
		return
	}
	changes, ok := g.AppendChangesSince(pe.dirtyScratch[:0], pe.scanEpoch)
	pe.dirtyScratch = changes[:0]
	if !ok {
		pe.stats.JournalMisses++
		for _, e := range pe.cache {
			if e.valid {
				e.valid = false
				e.gen++
			}
		}
		pe.scanEpoch = epoch
		return
	}
	changes = dedupLinks(changes)
	for _, l := range changes {
		for e := range pe.byLink[l] {
			if e.valid {
				e.valid = false
				e.gen++
			}
		}
	}
	if pe.dirtyObs != nil && len(changes) > 0 {
		pe.dirtyObs.Observe(int64(len(changes)))
	}
	pe.scanEpoch = epoch
}

// Probe estimates one event's current update cost; see ProbeAll.
func (pe *ProbeEngine) Probe(ev *Event) (*Estimate, error) {
	ests, err := pe.ProbeAll([]*Event{ev})
	if err != nil {
		return nil, err
	}
	return ests[0], nil
}

// ProbeAll estimates the current update cost of every event, returning
// estimates in input order. Cache hits report the Evals a fresh probe
// would have performed (so simulated plan-time accounting is unchanged by
// caching) while doing none of that work for real; misses report the full
// planning cost, exactly as Planner.Probe would. The live network is
// never modified, and the results are independent of the worker count.
func (pe *ProbeEngine) ProbeAll(evs []*Event) ([]*Estimate, error) {
	start := time.Now()
	defer func() { pe.stats.ProbeTime += time.Since(start) }()

	out := make([]*Estimate, len(evs))
	live := pe.planner.Network()
	if live.DataPlane() != nil {
		// Rule-table admission constraints are not captured by forks or
		// link versions; stay faithful by probing live, serially.
		for i, ev := range evs {
			est, err := pe.planner.Probe(ev)
			if err != nil {
				return nil, err
			}
			out[i] = est
			pe.stats.Misses++
			pe.stats.Cold++
		}
		return out, nil
	}

	g := live.Graph()
	pe.refresh(g)
	var misses []int
	for i, ev := range evs {
		entry, ok := pe.cache[ev.ID]
		if ok && (entry.valid || pe.revalidate(g, entry)) {
			// Replanning is guaranteed to reproduce the cached estimate,
			// so skip it. Evals reports the work that hypothetical replan
			// would have performed — not the (zero) work actually done —
			// so simulated plan-time accounting is identical with and
			// without the cache; only real wall-time changes.
			//
			// A valid entry (no read-set link changed since the last
			// journal scan) hits with zero checks; a dirty one falls back
			// to revalidate, whose success resurrects it into the valid
			// set and re-indexes its cost.
			if !entry.valid {
				pe.markValid(entry)
			}
			out[i] = &Estimate{
				Cost:       entry.est.Cost,
				Feasible:   entry.est.Feasible,
				Admittable: entry.est.Admittable,
				Evals:      entry.est.Evals,
				FromCache:  true,
			}
			pe.stats.Hits++
			continue
		}
		if ok {
			pe.stats.Incremental++
		} else {
			pe.stats.Cold++
		}
		misses = append(misses, i)
	}
	if len(misses) == 0 {
		return out, nil
	}
	pe.stats.Misses += len(misses)

	lanes := pe.ensureLanes(min(pe.workers, len(misses)))
	results := make([]*ExecResult, len(evs))
	errs := make([]error, len(evs))
	if len(lanes) == 1 {
		for _, i := range misses {
			results[i], errs[i] = lanes[0].planner.run(evs[i], false)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for w := range lanes {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < len(misses); j += len(lanes) {
					i := misses[j]
					results[i], errs[i] = lanes[w].planner.run(evs[i], false)
					if errs[i] != nil {
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	for _, i := range misses {
		if errs[i] != nil {
			// A failed probe may leave its lane only partially rolled
			// back in theory; force a resync before the pool is reused.
			pe.synced = false
			return nil, fmt.Errorf("probe %v: %w", evs[i], errs[i])
		}
	}

	// Record fresh entries against live link versions. The live graph is
	// unchanged since the cache check above (probes only write forks), so
	// these versions describe exactly the state the estimates were
	// computed against.
	hashDesired := pe.planner.mig.DesiredPolicy() == migration.DesiredHash
	for _, i := range misses {
		res := results[i]
		if res == nil {
			continue // event skipped by an error path that didn't set errs
		}
		out[i] = res.estimate()
		links := dedupLinks(out[i].Touched)
		if old, ok := pe.cache[evs[i].ID]; ok {
			pe.dropEntry(old)
		}
		entry := &probeEntry{
			id:         evs[i].ID,
			est:        *out[i],
			links:      links,
			maxVersion: g.MaxVersion(links),
			valid:      true,
			gen:        1,
		}
		if hashDesired && res.Failed == 0 {
			// Every flow landed on its hash-pinned desired path (the slow
			// path places on the desired path too, after migrations).
			// Record how much the event loads each of those links;
			// revalidate re-admits by headroom instead of replanning.
			entry.need = make(map[topology.LinkID]topology.Bandwidth)
			for _, adm := range res.Admitted {
				for _, l := range adm.Path.Links() {
					entry.need[l] += adm.Flow.Demand
				}
				// An all-fast-path replay evaluates each flow's candidate
				// set once (candidate sets are static topology).
				entry.cleanEvals += len(live.Candidates(adm.Flow))
			}
		}
		pe.cache[evs[i].ID] = entry
		for _, l := range links {
			set, ok := pe.byLink[l]
			if !ok {
				set = make(map[*probeEntry]struct{})
				pe.byLink[l] = set
			}
			set[entry] = struct{}{}
		}
		pe.pushNode(entry)
	}
	return out, nil
}

// CheapestValid returns the event ID and cost of the cheapest currently
// valid cached estimate, ordered by (cost, event ID). ok is false when
// no valid entry exists — nothing probed yet, everything dirtied, or the
// engine is in data-plane (cacheless) mode. The caller typically runs
// ProbeAll over its candidate set first, which validates every entry it
// can and replans the rest, making the subsequent pop authoritative for
// that set.
func (pe *ProbeEngine) CheapestValid() (flow.EventID, topology.Bandwidth, bool) {
	live := pe.planner.Network()
	if live.DataPlane() != nil {
		return 0, 0, false
	}
	pe.refresh(live.Graph())
	for len(pe.minHeap) > 0 {
		n := pe.minHeap[0]
		if n.gen == n.entry.gen && n.entry.valid && pe.cache[n.id] == n.entry {
			return n.id, n.cost, true
		}
		heap.Pop(&pe.minHeap)
	}
	return 0, 0, false
}

// revalidate reports whether a cached estimate still equals what a fresh
// probe would return, by two sound checks in increasing looseness:
//
//  1. Version check: no link of the read set changed since the probe
//     (max version unchanged) — the replan reads exactly the same state.
//  2. Headroom check, for fully-admittable entries under the hash policy:
//     desired paths are hash-selected from each flow's immutable
//     identity, so a replay re-picks exactly the same paths, and it
//     fast-paths all of them iff every desired-path link retains
//     residual >= the demand the event puts on it — which is what need
//     records. When headroom holds the replay's outcome is known without
//     running it: {cost 0, feasible, all admittable}, regardless of what
//     the original probe measured (an entry probed during congestion is
//     thereby "resurrected" once departures free its desired paths).
//     Residuals elsewhere in the read set are irrelevant. Without this
//     check the cache is structurally useless on fat-trees: every
//     inter-pod candidate set crosses the core layer, so any commit
//     anywhere bumps some version in almost every read set.
//
// A successful headroom check refreshes the version stamp, re-anchoring
// the cheap check-1 at the current state.
func (pe *ProbeEngine) revalidate(g *topology.Graph, e *probeEntry) bool {
	max := g.MaxVersion(e.links)
	if max <= e.maxVersion {
		return true
	}
	if e.need == nil {
		return false
	}
	for id, need := range e.need {
		if g.Link(id).Residual() < need {
			return false
		}
	}
	// A replay right now fast-paths every flow: zero cost, and exactly
	// one candidate-set evaluation of planning work per flow.
	e.est.Cost = 0
	e.est.Evals = e.cleanEvals
	e.maxVersion = max
	return true
}

// ensureLanes returns n ready fork lanes, creating or resyncing them so
// each one mirrors the live network's current state. Lanes left behind by
// a previous round need a resync only when the live epoch moved: probes
// roll themselves back, so an un-moved live network means every lane
// still matches it exactly.
func (pe *ProbeEngine) ensureLanes(n int) []*forkLane {
	live := pe.planner.Network()
	epoch := live.Graph().Epoch()
	if !pe.synced || pe.syncedEpoch != epoch {
		// Refresh every existing lane, not just the first n: a stale lane
		// handed out later would silently probe against old state.
		for _, lane := range pe.lanes {
			lane.net.SyncFrom(live)
			pe.stats.Resyncs++
		}
	}
	for len(pe.lanes) < n {
		fnet := live.Fork() // a fresh fork is in sync by construction
		fmig := pe.planner.mig.CloneFor(fnet)
		fmig.SetTrackTouched(true)
		pe.lanes = append(pe.lanes, &forkLane{
			net:     fnet,
			planner: NewPlanner(fmig, pe.planner.policy),
		})
		pe.stats.Forks++
	}
	pe.synced = true
	pe.syncedEpoch = epoch
	return pe.lanes[:n]
}

// dedupLinks sorts and deduplicates a touched-link list in place.
func dedupLinks(links []topology.LinkID) []topology.LinkID {
	if len(links) < 2 {
		return links
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	out := links[:1]
	for _, l := range links[1:] {
		if l != out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}
