package core

import (
	"testing"
	"time"

	"netupdate/internal/flow"
	"netupdate/internal/topology"
)

func specN(n int) []flow.Spec {
	specs := make([]flow.Spec, n)
	for i := range specs {
		specs[i] = flow.Spec{Src: 0, Dst: 1, Demand: topology.Bandwidth(i+1) * topology.Mbps}
	}
	return specs
}

func TestNewEventStampsSpecs(t *testing.T) {
	specs := specN(3)
	ev := NewEvent(42, "vm-migration", time.Second, specs)
	if ev.NumFlows() != 3 {
		t.Fatalf("NumFlows = %d, want 3", ev.NumFlows())
	}
	for i, s := range ev.Specs {
		if s.Event != 42 {
			t.Errorf("spec %d event = %d, want 42", i, s.Event)
		}
	}
	// Caller's slice must be unaffected (copy at boundary).
	if specs[0].Event != flow.NoEvent {
		t.Error("NewEvent mutated caller's specs")
	}
}

func TestEventTotalDemand(t *testing.T) {
	ev := NewEvent(1, "test", 0, specN(3))
	if got, want := ev.TotalDemand(), 6*topology.Mbps; got != want {
		t.Errorf("TotalDemand = %v, want %v", got, want)
	}
	empty := NewEvent(2, "test", 0, nil)
	if got := empty.TotalDemand(); got != 0 {
		t.Errorf("empty TotalDemand = %v, want 0", got)
	}
}

func TestEventTimingMetrics(t *testing.T) {
	ev := NewEvent(1, "test", 10*time.Second, specN(1))
	if ev.QueuingDelay() != 0 || ev.ECT() != 0 {
		t.Error("metrics nonzero before scheduling")
	}
	ev.Start = 15 * time.Second
	ev.Started = true
	if got, want := ev.QueuingDelay(), 5*time.Second; got != want {
		t.Errorf("QueuingDelay = %v, want %v", got, want)
	}
	if ev.ECT() != 0 {
		t.Error("ECT nonzero before completion")
	}
	ev.Completion = 22 * time.Second
	ev.Done = true
	if got, want := ev.ECT(), 12*time.Second; got != want {
		t.Errorf("ECT = %v, want %v", got, want)
	}
}

func TestEventString(t *testing.T) {
	ev := NewEvent(3, "upgrade", 0, specN(2))
	if got := ev.String(); got == "" {
		t.Error("String() empty")
	}
}
