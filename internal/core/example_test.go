package core_test

import (
	"fmt"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// Plan and execute one update event against an empty fat-tree: probe the
// cost first (non-committal), then execute for real.
func ExamplePlanner() {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		fmt.Println(err)
		return
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	planner := core.NewPlanner(migration.NewPlanner(net, 0), core.FailSkip)

	event := core.NewEvent(1, "example", 0, []flow.Spec{
		{Src: ft.Host(0, 0, 0), Dst: ft.Host(1, 0, 0), Demand: 100 * topology.Mbps},
		{Src: ft.Host(2, 0, 0), Dst: ft.Host(3, 0, 0), Demand: 200 * topology.Mbps},
	})

	estimate, _ := planner.Probe(event)
	fmt.Println("probe feasible:", estimate.Feasible, "cost:", estimate.Cost)

	result, _ := planner.Execute(event)
	fmt.Println("admitted:", len(result.Admitted), "failed:", result.Failed)
	fmt.Println("Cost(U):", result.Cost)
	// Output:
	// probe feasible: true cost: 0bps
	// admitted: 2 failed: 0
	// Cost(U): 0bps
}
