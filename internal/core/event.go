// Package core implements the paper's primary contribution: the
// event-level abstraction of network update (Section III). An update event
// groups the flows it causes and is planned, costed and executed as one
// entity; Cost(U) — the traffic migrated to admit all of the event's
// flows — is the metric the LMTF/P-LMTF schedulers order events by.
package core

import (
	"fmt"
	"time"

	"netupdate/internal/flow"
	"netupdate/internal/topology"
)

// Event is an update event U = {f_1, ..., f_w}: a set of flows that must
// all be admitted into the network before the event is complete
// (Definition 2). Events are created by operators, applications or device
// failures; Kind records which for reporting.
type Event struct {
	// ID identifies the event; the flows it spawns carry it in their
	// Event field so migration never cannibalizes the event's own flows.
	ID flow.EventID
	// Kind is a free-form label ("vm-migration", "switch-upgrade", ...).
	Kind string
	// Specs are the flows the event must admit, in intra-event order.
	Specs []flow.Spec
	// Arrival is the event's arrival (enqueue) virtual time.
	Arrival time.Duration

	// Start is when execution began; valid once Started.
	Start time.Duration
	// Completion is when the event's last flow completed; valid once Done.
	Completion time.Duration
	// Started and Done track scheduling state.
	Started bool
	Done    bool

	// CostAtExec is the realized Cost(U) when the event executed.
	CostAtExec topology.Bandwidth

	// Flows holds the registered flows once the event executes.
	Flows []*flow.Flow
	// FailedSpecs are flows that could not be admitted even with
	// migration (typically saturated host access links).
	FailedSpecs []flow.Spec
}

// NewEvent builds an event from its flow specs, stamping each spec's Event
// field with the event ID.
func NewEvent(id flow.EventID, kind string, arrival time.Duration, specs []flow.Spec) *Event {
	ev := &Event{
		ID:      id,
		Kind:    kind,
		Arrival: arrival,
		Specs:   make([]flow.Spec, len(specs)),
	}
	copy(ev.Specs, specs)
	for i := range ev.Specs {
		ev.Specs[i].Event = id
	}
	return ev
}

// NumFlows returns the number of flows the event will admit.
func (e *Event) NumFlows() int { return len(e.Specs) }

// TotalDemand returns the sum of the event's flow demands, a measure of
// event weight used by workload reports.
func (e *Event) TotalDemand() topology.Bandwidth {
	var total topology.Bandwidth
	for _, s := range e.Specs {
		total += s.Demand
	}
	return total
}

// QueuingDelay returns Start - Arrival, the time the event waited in the
// update queue (the metric of Figs. 8 and 9). It is zero until Started.
func (e *Event) QueuingDelay() time.Duration {
	if !e.Started {
		return 0
	}
	return e.Start - e.Arrival
}

// ECT returns the event completion time: Completion - Arrival (Section I).
// It is zero until Done.
func (e *Event) ECT() time.Duration {
	if !e.Done {
		return 0
	}
	return e.Completion - e.Arrival
}

// String implements fmt.Stringer.
func (e *Event) String() string {
	return fmt.Sprintf("event#%d(%s, %d flows)", int64(e.ID), e.Kind, len(e.Specs))
}
