package core

import (
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/topology"
)

func probeScenarioEvents(s *coreScenario) []*Event {
	return []*Event{
		NewEvent(1, "probe", 0, []flow.Spec{{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps}}),
		NewEvent(2, "probe", 0, []flow.Spec{{Src: s.a, Dst: s.b, Demand: 100 * topology.Mbps}}),
		NewEvent(3, "probe", 0, []flow.Spec{
			{Src: s.c, Dst: s.d, Demand: 50 * topology.Mbps},
			{Src: s.a, Dst: s.b, Demand: 50 * topology.Mbps},
		}),
	}
}

// TestProbeEngineMatchesDirectProbe: at every worker count the engine must
// return exactly what Planner.Probe on the live network returns, and the
// live network must be untouched.
func TestProbeEngineMatchesDirectProbe(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		s := newCoreScenario(t, 800*topology.Mbps)
		p := s.planner(0)
		evs := probeScenarioEvents(s)

		want := make([]*Estimate, len(evs))
		for i, ev := range evs {
			est, err := p.Probe(ev)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = est
		}
		before := s.snapshot()

		pe := NewProbeEngine(p, workers)
		got, err := pe.ProbeAll(evs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range evs {
			if got[i].Cost != want[i].Cost || got[i].Feasible != want[i].Feasible ||
				got[i].Admittable != want[i].Admittable || got[i].Evals != want[i].Evals {
				t.Errorf("workers=%d ev%d: engine estimate %+v, direct probe %+v",
					workers, i, *got[i], *want[i])
			}
		}
		for i, w := range before {
			if got := s.g.Link(topology.LinkID(i)).Reserved(); got != w {
				t.Errorf("workers=%d: live link %d reserved %v, want %v", workers, i, got, w)
			}
		}
		if st := pe.Stats(); st.Misses != len(evs) || st.Hits != 0 {
			t.Errorf("workers=%d: stats = %+v, want %d cold misses", workers, st, len(evs))
		}
	}
}

// TestProbeEngineCaches: re-probing with unchanged links must hit the
// cache (Evals 0, same numbers); a live commit that touches the probed
// links must invalidate, and Forget must evict.
func TestProbeEngineCaches(t *testing.T) {
	s := newCoreScenario(t, 800*topology.Mbps)
	p := s.planner(0)
	pe := NewProbeEngine(p, 2)
	evs := probeScenarioEvents(s)

	first, err := pe.ProbeAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := pe.ProbeAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	if st := pe.Stats(); st.Hits != len(evs) || st.Misses != len(evs) {
		t.Fatalf("stats after repeat = %+v, want %d hits / %d misses", st, len(evs), len(evs))
	}
	for i := range evs {
		if second[i].Cost != first[i].Cost || second[i].Admittable != first[i].Admittable {
			t.Errorf("ev%d: cached estimate %+v differs from fresh %+v", i, *second[i], *first[i])
		}
		if second[i].Evals != first[i].Evals {
			t.Errorf("ev%d: cache hit reported Evals=%d, want %d (a replay's work)",
				i, second[i].Evals, first[i].Evals)
		}
	}

	// Committing 100Mbps on the bottleneck leaves 100Mbps residual. That
	// bumps every entry's version, but headroom revalidation keeps the
	// small events (100Mbps and 50+50Mbps: residual still covers their
	// desired paths) — only the 500Mbps event must be replanned.
	commit := NewEvent(9, "commit", 0, []flow.Spec{{Src: s.a, Dst: s.b, Demand: 100 * topology.Mbps}})
	if _, err := p.Execute(commit); err != nil {
		t.Fatal(err)
	}
	if _, err := pe.ProbeAll(evs); err != nil {
		t.Fatal(err)
	}
	if st := pe.Stats(); st.Misses != len(evs)+1 || st.Hits != 2*len(evs)-1 {
		t.Errorf("stats after commit = %+v, want %d misses / %d hits",
			pe.Stats(), len(evs)+1, 2*len(evs)-1)
	}

	pe.Forget(evs[0].ID)
	if _, err := pe.Probe(evs[0]); err != nil {
		t.Fatal(err)
	}
	if st := pe.Stats(); st.Misses != len(evs)+2 {
		t.Errorf("misses after Forget = %d, want %d", st.Misses, len(evs)+2)
	}
}

// TestProbeEngineResyncsAfterCommit: lanes built before a live commit must
// be refreshed, so post-commit probes see the committed state.
func TestProbeEngineResyncsAfterCommit(t *testing.T) {
	s := newCoreScenario(t, 0)
	p := s.planner(0)
	pe := NewProbeEngine(p, 1)
	ev := NewEvent(1, "probe", 0, []flow.Spec{{Src: s.a, Dst: s.b, Demand: 600 * topology.Mbps}})

	est, err := pe.Probe(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Feasible {
		t.Fatal("600Mbps must fit an empty bottleneck")
	}
	// Fill the bottleneck on the live network; the same probe must now
	// reflect the new state, not the stale fork.
	commit := NewEvent(2, "commit", 0, []flow.Spec{{Src: s.a, Dst: s.b, Demand: 700 * topology.Mbps}})
	if _, err := p.Execute(commit); err != nil {
		t.Fatal(err)
	}
	est, err = pe.Probe(ev)
	if err != nil {
		t.Fatal(err)
	}
	if est.Feasible {
		t.Error("probe after commit still feasible: lane not resynced")
	}
	if st := pe.Stats(); st.Resyncs == 0 {
		t.Error("no resync counted after live commit")
	}
}

// TestProbeEngineStress drives many mixed rounds at high concurrency;
// meaningful mainly under -race, where it proves probes on sibling forks
// and shared path caches do not race.
func TestProbeEngineStress(t *testing.T) {
	s := newCoreScenario(t, 800*topology.Mbps)
	p := s.planner(0)
	pe := NewProbeEngine(p, 8)
	var evs []*Event
	for i := 0; i < 24; i++ {
		demand := topology.Bandwidth(i%7+1) * 20 * topology.Mbps
		src, dst := s.a, s.b
		if i%3 == 0 {
			src, dst = s.c, s.d
		}
		evs = append(evs, NewEvent(flow.EventID(i+1), "stress", 0, []flow.Spec{
			{Src: src, Dst: dst, Demand: demand},
		}))
	}
	for round := 0; round < 5; round++ {
		if _, err := pe.ProbeAll(evs); err != nil {
			t.Fatal(err)
		}
		// Perturb live state between rounds to force invalidation+resync.
		commit := NewEvent(flow.EventID(100+round), "commit", 0, []flow.Spec{
			{Src: s.a, Dst: s.b, Demand: 10 * topology.Mbps},
		})
		if _, err := p.Execute(commit); err != nil {
			t.Fatal(err)
		}
	}
	st := pe.Stats()
	if st.Hits == 0 {
		t.Error("stress run produced no cache hits")
	}
	if st.Forks == 0 || st.Forks > 8 {
		t.Errorf("forks = %d, want 1..8", st.Forks)
	}
}
