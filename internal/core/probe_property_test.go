package core

import (
	"math/rand"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/topology"
)

// TestProbeEngineIncrementalOracle drives the incremental probe core
// through random interleavings of submissions, scheduling rounds, link
// faults and repairs, and demands that every estimate it serves — and
// every min-cost pop — matches a from-scratch probe of the live
// network. This is the correctness contract of the dirty-set design:
// the journal, the reverse index, and the lazy heap are all invisible
// to callers except in how much work they save.
func TestProbeEngineIncrementalOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run("", func(t *testing.T) {
			runProbeOracle(t, seed, 160)
		})
	}
}

func runProbeOracle(t *testing.T, seed int64, ops int) {
	t.Helper()
	s := newCoreScenario(t, 800*topology.Mbps)
	p := s.planner(FailSkip)
	pe := NewProbeEngine(p, 2)
	rng := rand.New(rand.NewSource(seed))

	hosts := []topology.NodeID{s.a, s.b, s.c, s.d}
	live := make(map[flow.EventID]*Event)
	var order []flow.EventID // insertion order, for stable iteration
	var nextID flow.EventID = 1
	downLinks := make(map[topology.LinkID]bool)

	addEvent := func() {
		n := 1 + rng.Intn(3)
		specs := make([]flow.Spec, n)
		for i := range specs {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			specs[i] = flow.Spec{
				Src:    src,
				Dst:    dst,
				Demand: topology.Bandwidth(10+rng.Intn(90)) * topology.Mbps,
			}
		}
		ev := NewEvent(nextID, "prop", 0, specs)
		live[nextID] = ev
		order = append(order, nextID)
		nextID++
	}

	// round probes the whole queue, checks every estimate against a
	// fresh oracle probe, checks the min-cost pop, then executes and
	// retires the popped event.
	round := func() {
		if len(order) == 0 {
			return
		}
		evs := make([]*Event, len(order))
		for i, id := range order {
			evs[i] = live[id]
		}
		got, err := pe.ProbeAll(evs)
		if err != nil {
			t.Fatalf("seed %d: ProbeAll: %v", seed, err)
		}
		// Oracle: probe each event from scratch on a fork of the live
		// network. (Probing the live network directly would bump its
		// epoch and dirty the very cache under test.)
		oracle := NewPlanner(migration.NewPlanner(s.net.Fork(), 0), FailSkip)
		for i, ev := range evs {
			want, err := oracle.Probe(ev)
			if err != nil {
				t.Fatalf("seed %d: oracle probe ev%d: %v", seed, ev.ID, err)
			}
			if got[i].Cost != want.Cost || got[i].Feasible != want.Feasible ||
				got[i].Admittable != want.Admittable || got[i].Evals != want.Evals {
				t.Fatalf("seed %d: ev%d incremental estimate %+v, oracle %+v (from-cache=%v)",
					seed, ev.ID, *got[i], *want, got[i].FromCache)
			}
		}
		// The heap must pop the cheapest valid candidate, ties by ID.
		wantID, wantCost := order[0], got[0].Cost
		for i, id := range order {
			if got[i].Cost < wantCost || (got[i].Cost == wantCost && id < wantID) {
				wantID, wantCost = id, got[i].Cost
			}
		}
		id, cost, ok := pe.CheapestValid()
		if !ok {
			t.Fatalf("seed %d: CheapestValid found nothing with %d live events", seed, len(order))
		}
		if id != wantID || cost != wantCost {
			t.Fatalf("seed %d: CheapestValid = (ev%d, %v), oracle min = (ev%d, %v)",
				seed, id, cost, wantID, wantCost)
		}
		// Execute the winner against the live network and retire it.
		if _, err := p.Execute(live[id]); err != nil {
			t.Fatalf("seed %d: execute ev%d: %v", seed, id, err)
		}
		pe.Forget(id)
		delete(live, id)
		for i, oid := range order {
			if oid == id {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
	}

	// failLink mirrors the fault layer: mark the link down, withdraw the
	// flows it disrupted, and resubmit their specs as a repair event.
	failLink := func() {
		id := topology.LinkID(rng.Intn(s.g.NumLinks()))
		if downLinks[id] {
			return
		}
		affected, _ := s.net.FailLinks([]topology.LinkID{id})
		downLinks[id] = true
		var specs []flow.Spec
		for _, f := range affected {
			specs = append(specs, flow.Spec{Src: f.Src, Dst: f.Dst, Demand: f.Demand})
			if err := s.net.Remove(f); err != nil {
				t.Fatalf("seed %d: remove disrupted flow: %v", seed, err)
			}
		}
		if len(specs) > 0 {
			ev := NewEvent(nextID, "repair", 0, specs)
			live[nextID] = ev
			order = append(order, nextID)
			nextID++
		}
	}

	repairLink := func() {
		// Repair the lowest-ID down link so runs with one seed replay
		// identically.
		for id := topology.LinkID(0); int(id) < s.g.NumLinks(); id++ {
			if downLinks[id] {
				s.net.RestoreLinks([]topology.LinkID{id})
				delete(downLinks, id)
				return
			}
		}
	}

	for i := 0; i < ops; i++ {
		switch r := rng.Intn(10); {
		case r < 4:
			addEvent()
		case r < 8:
			round()
		case r < 9:
			failLink()
		default:
			repairLink()
		}
	}
	// Drain: every remaining event must still match the oracle.
	for len(order) > 0 {
		round()
	}

	st := pe.Stats()
	if st.Misses != st.Cold+st.Incremental {
		t.Fatalf("seed %d: stats invariant broken: misses=%d cold=%d incremental=%d",
			seed, st.Misses, st.Cold, st.Incremental)
	}
	if st.Incremental == 0 {
		t.Errorf("seed %d: no incremental re-plans exercised; workload too tame", seed)
	}
	if st.Hits == 0 {
		t.Errorf("seed %d: no cache hits exercised; workload too tame", seed)
	}
}
