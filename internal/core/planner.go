package core

import (
	"errors"
	"fmt"

	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/topology"
)

// FailPolicy controls what happens when one flow of an event cannot be
// admitted even with migration.
type FailPolicy int

const (
	// FailSkip records the spec in Event.FailedSpecs and continues with
	// the remaining flows. This is the default: at very high utilization
	// some host access links are simply full, and the paper's evaluation
	// keeps running (success probability < 1 in Fig. 1).
	FailSkip FailPolicy = iota + 1
	// FailAbort rolls back the whole event and returns an error, leaving
	// the network exactly as before Execute.
	FailAbort
)

// ErrEventAborted is returned by Execute under FailAbort when any flow of
// the event cannot be admitted.
var ErrEventAborted = errors.New("event aborted: flow not admittable")

// ExecResult reports an executed (or trial-planned) event.
type ExecResult struct {
	// Event is the planned event.
	Event *Event
	// Admitted holds one migration result per successfully admitted flow,
	// in admission order.
	Admitted []*migration.Result
	// Failed counts specs that could not be admitted (FailSkip only).
	Failed int
	// Cost is the realized Cost(U): total migrated traffic across all
	// admissions (Definition 2).
	Cost topology.Bandwidth
	// Evals counts planning work (feasibility evaluations), used for
	// plan-time accounting.
	Evals int
	// Touched aggregates the links the event's admissions read, when the
	// migration planner has touched-link tracking enabled (may contain
	// duplicates). See migration.Result.Touched.
	Touched []topology.LinkID
}

// Estimate is a non-committal cost probe of an event against the current
// network state. LMTF compares these across sampled events each round.
type Estimate struct {
	// Cost is Cost(U) as it would be right now.
	Cost topology.Bandwidth
	// Feasible reports whether every flow of the event could be admitted.
	Feasible bool
	// Admittable counts the flows that could be admitted.
	Admittable int
	// Evals counts planning work performed for the probe.
	Evals int
	// Touched lists the links whose reservation state the probe read
	// (duplicates possible), when touched-link tracking is enabled on the
	// migration planner. While none of them change, re-probing the same
	// event is guaranteed to reproduce this estimate.
	Touched []topology.LinkID
	// FromCache reports that a ProbeEngine answered this estimate from
	// its epoch cache instead of replanning. Purely observational: a hit
	// carries the same Cost/Feasible/Admittable/Evals a fresh probe
	// would, and whether an estimate is a hit is itself deterministic
	// (the cache is checked serially regardless of probe concurrency).
	FromCache bool
}

// Planner plans and executes update events against a network, one flow at
// a time, delegating per-flow admission (and migration of existing flows)
// to the migration planner.
type Planner struct {
	mig    *migration.Planner
	policy FailPolicy
}

// NewPlanner wraps a migration planner. policy 0 defaults to FailSkip.
func NewPlanner(mig *migration.Planner, policy FailPolicy) *Planner {
	if policy == 0 {
		policy = FailSkip
	}
	return &Planner{mig: mig, policy: policy}
}

// Network returns the underlying network state.
func (p *Planner) Network() *netstate.Network { return p.mig.Network() }

// Migration returns the per-flow admission planner, for callers (like the
// flow-level baseline) that bypass event grouping.
func (p *Planner) Migration() *migration.Planner { return p.mig }

// Execute admits every flow of the event, committing placements and
// migrations to the network. Under FailSkip, unadmittable flows are
// recorded on the event and skipped; under FailAbort the event is fully
// rolled back and ErrEventAborted returned.
func (p *Planner) Execute(ev *Event) (*ExecResult, error) {
	res, err := p.run(ev, true)
	if err != nil {
		return nil, err
	}
	ev.CostAtExec = res.Cost
	return res, nil
}

// Probe trial-plans the event and rolls everything back, returning the
// cost the event would incur right now. The network state is unchanged.
// This is the "calculate the update cost" step LMTF performs for each
// sampled candidate (Section IV-B).
func (p *Planner) Probe(ev *Event) (*Estimate, error) {
	res, err := p.run(ev, false)
	if err != nil {
		return nil, err
	}
	return res.estimate(), nil
}

// estimate condenses a trial run into the Estimate schedulers compare.
func (r *ExecResult) estimate() *Estimate {
	return &Estimate{
		Cost:       r.Cost,
		Feasible:   r.Failed == 0,
		Admittable: len(r.Admitted),
		Evals:      r.Evals,
		Touched:    r.Touched,
	}
}

// RollbackExec undoes a committed Execute: each admission's migrations
// are reverted in reverse order, then the event's own flows are withdrawn
// and removed, restoring the network to its exact pre-Execute state. The
// fault layer uses this when rule installs keep timing out after the
// bandwidth-level plan already committed. The event's Flows list is
// cleared; the caller decides how to re-record the specs (typically as
// FailedSpecs).
func (p *Planner) RollbackExec(res *ExecResult) error {
	net := p.mig.Network()
	for i := len(res.Admitted) - 1; i >= 0; i-- {
		if err := p.mig.Rollback(res.Admitted[i]); err != nil {
			return fmt.Errorf("rollback %v: %w", res.Event, err)
		}
	}
	ev := res.Event
	for i := len(ev.Flows) - 1; i >= 0; i-- {
		if err := net.Remove(ev.Flows[i]); err != nil {
			return fmt.Errorf("rollback %v: remove %v: %w", ev, ev.Flows[i], err)
		}
	}
	ev.Flows = nil
	return nil
}

// run admits the event's flows in order. When commit is false, all
// admissions are rolled back before returning (in reverse order, restoring
// the exact prior state) and the event's bookkeeping fields are untouched.
func (p *Planner) run(ev *Event, commit bool) (*ExecResult, error) {
	net := p.mig.Network()
	res := &ExecResult{Event: ev}
	var flows []*flow.Flow

	rollbackAll := func() {
		for i := len(res.Admitted) - 1; i >= 0; i-- {
			if err := p.mig.Rollback(res.Admitted[i]); err != nil {
				panic(fmt.Sprintf("core: event rollback failed: %v", err))
			}
		}
		for i := len(flows) - 1; i >= 0; i-- {
			if err := net.Remove(flows[i]); err != nil {
				panic(fmt.Sprintf("core: event rollback remove failed: %v", err))
			}
		}
	}

	for _, spec := range ev.Specs {
		f, err := net.AddFlow(spec)
		if err != nil {
			rollbackAll()
			return nil, fmt.Errorf("%v: register flow: %w", ev, err)
		}
		flows = append(flows, f)

		admit, err := p.mig.Admit(f)
		if admit != nil {
			res.Evals += admit.Evals
			res.Touched = append(res.Touched, admit.Touched...)
		}
		if err != nil {
			switch {
			case !errors.Is(err, migration.ErrCannotAdmit) && !errors.Is(err, netstate.ErrNoFeasiblePath):
				rollbackAll()
				return nil, fmt.Errorf("%v: %w", ev, err)
			case p.policy == FailAbort && commit:
				rollbackAll()
				return nil, fmt.Errorf("%v: %w: %v", ev, ErrEventAborted, err)
			default:
				res.Failed++
				if commit {
					ev.FailedSpecs = append(ev.FailedSpecs, spec)
				}
				// The unplaced flow must not linger in the registry.
				if rmErr := net.Remove(f); rmErr != nil {
					panic(fmt.Sprintf("core: removing unadmitted flow: %v", rmErr))
				}
				flows = flows[:len(flows)-1]
				continue
			}
		}
		res.Admitted = append(res.Admitted, admit)
		res.Cost += admit.MigratedTraffic
	}

	if commit {
		ev.Flows = append(ev.Flows, flows...)
		return res, nil
	}
	rollbackAll()
	return res, nil
}
