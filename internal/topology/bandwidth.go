// Package topology models the physical network substrate used throughout the
// library: a directed multigraph of switches, hosts and capacitated links,
// plus the parametric Fat-Tree builder the paper evaluates on (an 8-pod
// Fat-Tree with 1 Gbps links, Section V-A).
//
// The package owns bandwidth bookkeeping: every link tracks its capacity and
// the bandwidth currently reserved by placed flows. All higher layers
// (admission, migration planning, scheduling) reason purely in terms of the
// residual bandwidth exposed here.
package topology

import (
	"fmt"
	"strconv"
)

// Bandwidth is an amount of network bandwidth in bits per second.
//
// Bandwidth is an integer type so that reserve/release bookkeeping is exact:
// a sequence of reservations followed by the matching releases always
// restores the original residual value, which the congestion-freedom
// invariants of the paper (Section III-A) depend on.
type Bandwidth int64

// Convenient bandwidth units.
const (
	Bps  Bandwidth = 1
	Kbps           = 1000 * Bps
	Mbps           = 1000 * Kbps
	Gbps           = 1000 * Mbps
)

// String formats the bandwidth using the largest unit that divides it
// legibly, e.g. "1Gbps", "250Mbps", "1500bps".
func (b Bandwidth) String() string {
	neg := ""
	v := b
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= Gbps && v%(Gbps/10) == 0:
		return neg + formatScaled(int64(v), int64(Gbps)) + "Gbps"
	case v >= Mbps && v%(Mbps/10) == 0:
		return neg + formatScaled(int64(v), int64(Mbps)) + "Mbps"
	case v >= Kbps && v%(Kbps/10) == 0:
		return neg + formatScaled(int64(v), int64(Kbps)) + "Kbps"
	default:
		return neg + strconv.FormatInt(int64(v), 10) + "bps"
	}
}

// formatScaled renders v/unit with at most one decimal digit.
func formatScaled(v, unit int64) string {
	whole := v / unit
	frac := (v % unit) * 10 / unit
	if frac == 0 {
		return strconv.FormatInt(whole, 10)
	}
	return fmt.Sprintf("%d.%d", whole, frac)
}
