package topology

import "testing"

func TestBandwidthString(t *testing.T) {
	tests := []struct {
		name string
		in   Bandwidth
		want string
	}{
		{"zero", 0, "0bps"},
		{"bits", 999, "999bps"},
		{"kilo", 5 * Kbps, "5Kbps"},
		{"kilo fraction", 1500 * Bps, "1.5Kbps"},
		{"mega", 250 * Mbps, "250Mbps"},
		{"mega fraction", 2500 * Kbps, "2.5Mbps"},
		{"giga", Gbps, "1Gbps"},
		{"giga fraction", 1500 * Mbps, "1.5Gbps"},
		{"negative", -10 * Mbps, "-10Mbps"},
		{"awkward value falls back to bps", 1234567, "1234567bps"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.String(); got != tt.want {
				t.Errorf("Bandwidth(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
			}
		})
	}
}

func TestNodeKindString(t *testing.T) {
	tests := []struct {
		kind NodeKind
		want string
	}{
		{KindHost, "host"},
		{KindEdgeSwitch, "edge"},
		{KindAggSwitch, "agg"},
		{KindCoreSwitch, "core"},
		{NodeKind(99), "NodeKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("NodeKind.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNodeKindIsSwitch(t *testing.T) {
	if KindHost.IsSwitch() {
		t.Error("KindHost.IsSwitch() = true, want false")
	}
	for _, k := range []NodeKind{KindEdgeSwitch, KindAggSwitch, KindCoreSwitch} {
		if !k.IsSwitch() {
			t.Errorf("%v.IsSwitch() = false, want true", k)
		}
	}
}
