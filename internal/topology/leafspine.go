package topology

import (
	"errors"
	"fmt"
)

// ErrInvalidLeafSpine is returned by NewLeafSpine for degenerate shapes.
var ErrInvalidLeafSpine = errors.New("leaf-spine needs >= 2 leaves, >= 1 spine, >= 1 host per leaf")

// LeafSpine is a two-tier Clos fabric: every leaf connects to every spine,
// hosts hang off leaves. It is the second common data-center topology
// (after the Fat-Tree) and exercises the general BFS routing provider —
// its path structure has no closed-form ECMP enumeration in this library.
type LeafSpine struct {
	// NumLeaves, NumSpines and HostsPerLeaf echo the construction.
	NumLeaves    int
	NumSpines    int
	HostsPerLeaf int
	// LinkCapacity is the capacity of every directed link.
	LinkCapacity Bandwidth

	graph  *Graph
	spines []NodeID
	leaves []NodeID
	hosts  []NodeID
}

// NewLeafSpine builds a leaf-spine fabric with uniform link capacity.
func NewLeafSpine(leaves, spines, hostsPerLeaf int, capacity Bandwidth) (*LeafSpine, error) {
	if leaves < 2 || spines < 1 || hostsPerLeaf < 1 {
		return nil, fmt.Errorf("leaves=%d spines=%d hosts/leaf=%d: %w",
			leaves, spines, hostsPerLeaf, ErrInvalidLeafSpine)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("capacity %d: %w", int64(capacity), ErrNegativeBandwidth)
	}
	ls := &LeafSpine{
		NumLeaves:    leaves,
		NumSpines:    spines,
		HostsPerLeaf: hostsPerLeaf,
		LinkCapacity: capacity,
		graph:        NewGraph(),
	}
	g := ls.graph
	for s := 0; s < spines; s++ {
		ls.spines = append(ls.spines, g.AddNode(KindCoreSwitch, fmt.Sprintf("spine%d", s)))
	}
	for l := 0; l < leaves; l++ {
		leaf := g.AddNode(KindEdgeSwitch, fmt.Sprintf("leaf%d", l))
		ls.leaves = append(ls.leaves, leaf)
		for _, spine := range ls.spines {
			if _, _, err := g.AddBiLink(leaf, spine, capacity); err != nil {
				return nil, fmt.Errorf("leaf-spine wiring: %w", err)
			}
		}
		for h := 0; h < hostsPerLeaf; h++ {
			host := g.AddNode(KindHost, fmt.Sprintf("h%d-%d", l, h))
			ls.hosts = append(ls.hosts, host)
			if _, _, err := g.AddBiLink(host, leaf, capacity); err != nil {
				return nil, fmt.Errorf("leaf-spine host wiring: %w", err)
			}
		}
	}
	return ls, nil
}

// Graph returns the underlying graph (shared, live state).
func (ls *LeafSpine) Graph() *Graph { return ls.graph }

// Spine returns the s-th spine switch.
func (ls *LeafSpine) Spine(s int) NodeID { return ls.spines[s] }

// Leaf returns the l-th leaf switch.
func (ls *LeafSpine) Leaf(l int) NodeID { return ls.leaves[l] }

// Host returns the h-th host under leaf l.
func (ls *LeafSpine) Host(l, h int) NodeID { return ls.hosts[l*ls.HostsPerLeaf+h] }

// Hosts returns all hosts in address order. The slice is owned by the
// LeafSpine and must not be modified.
func (ls *LeafSpine) Hosts() []NodeID { return ls.hosts }

// NumHosts returns the total host count.
func (ls *LeafSpine) NumHosts() int { return len(ls.hosts) }

// NumPods returns the pod count of the fabric under the sharding
// abstraction: each leaf (with its hosts) is one pod; spines are the
// shared core layer.
func (ls *LeafSpine) NumPods() int { return ls.NumLeaves }

// PodOf returns the "pod" of a node — the leaf index for leaves and the
// hosts under them, -1 for spines (shared core layer) and unknown IDs.
// Nodes are minted spines-first, then per-leaf blocks of one leaf switch
// followed by HostsPerLeaf hosts (see NewLeafSpine).
func (ls *LeafSpine) PodOf(id NodeID) int {
	if int(id) < ls.NumSpines {
		return -1
	}
	rel := int(id) - ls.NumSpines
	perLeaf := 1 + ls.HostsPerLeaf
	leaf := rel / perLeaf
	if leaf >= ls.NumLeaves {
		return -1
	}
	return leaf
}
