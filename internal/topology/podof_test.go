package topology

import (
	"errors"
	"testing"
)

func TestSetCapacity(t *testing.T) {
	g, _, _, l := twoNodeGraph(t)
	e0 := g.Epoch()
	v0 := g.Link(l).Version()

	if err := g.SetCapacity(l, Gbps/2); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	if got := g.Link(l).Capacity; got != Gbps/2 {
		t.Errorf("Capacity = %v, want %v", got, Gbps/2)
	}
	if g.Epoch() != e0+1 {
		t.Errorf("Epoch = %d, want %d (capacity change must bump the epoch)", g.Epoch(), e0+1)
	}
	if g.Link(l).Version() <= v0 {
		t.Errorf("link version did not advance on capacity change")
	}

	// No-op change: same capacity leaves the epoch alone.
	if err := g.SetCapacity(l, Gbps/2); err != nil {
		t.Fatalf("no-op SetCapacity: %v", err)
	}
	if g.Epoch() != e0+1 {
		t.Errorf("no-op SetCapacity bumped the epoch")
	}

	if err := g.SetCapacity(l, -1); !errors.Is(err, ErrNegativeBandwidth) {
		t.Errorf("negative capacity error = %v, want ErrNegativeBandwidth", err)
	}

	// Shrinking below the committed reservation is refused.
	if err := g.Reserve(l, Gbps/4); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := g.SetCapacity(l, Gbps/8); !errors.Is(err, ErrInsufficientBandwidth) {
		t.Errorf("shrink-below-reserved error = %v, want ErrInsufficientBandwidth", err)
	}
	if got := g.Link(l).Capacity; got != Gbps/2 {
		t.Errorf("failed SetCapacity mutated the link: capacity %v", got)
	}
}

func TestFatTreePodOf(t *testing.T) {
	for _, k := range []int{4, 6, 8} {
		ft, err := NewFatTree(k, Gbps)
		if err != nil {
			t.Fatalf("NewFatTree(%d): %v", k, err)
		}
		for _, c := range ft.Cores() {
			if got := ft.PodOf(c); got != -1 {
				t.Errorf("k=%d: PodOf(core %d) = %d, want -1", k, c, got)
			}
		}
		for pod := 0; pod < k; pod++ {
			for i := 0; i < k/2; i++ {
				if got := ft.PodOf(ft.Agg(pod, i)); got != pod {
					t.Errorf("k=%d: PodOf(agg %d,%d) = %d, want %d", k, pod, i, got, pod)
				}
				if got := ft.PodOf(ft.Edge(pod, i)); got != pod {
					t.Errorf("k=%d: PodOf(edge %d,%d) = %d, want %d", k, pod, i, got, pod)
				}
			}
		}
		for _, h := range ft.Hosts() {
			want, _, _, _ := ft.HostAddr(h)
			if got := ft.PodOf(h); got != want {
				t.Errorf("k=%d: PodOf(host %d) = %d, want %d", k, h, got, want)
			}
		}
		if got := ft.PodOf(NodeID(-1)); got != -1 {
			t.Errorf("k=%d: PodOf(-1) = %d, want -1", k, got)
		}
		if got := ft.PodOf(NodeID(ft.Graph().NumNodes())); got != -1 {
			t.Errorf("k=%d: PodOf(out of range) = %d, want -1", k, got)
		}
	}
}

func TestLeafSpinePodOf(t *testing.T) {
	ls, err := NewLeafSpine(4, 2, 3, Gbps)
	if err != nil {
		t.Fatalf("NewLeafSpine: %v", err)
	}
	if got := ls.NumPods(); got != 4 {
		t.Fatalf("NumPods = %d, want 4", got)
	}
	for s := 0; s < ls.NumSpines; s++ {
		if got := ls.PodOf(ls.Spine(s)); got != -1 {
			t.Errorf("PodOf(spine %d) = %d, want -1", s, got)
		}
	}
	for l := 0; l < ls.NumLeaves; l++ {
		if got := ls.PodOf(ls.Leaf(l)); got != l {
			t.Errorf("PodOf(leaf %d) = %d, want %d", l, got, l)
		}
		for h := 0; h < ls.HostsPerLeaf; h++ {
			if got := ls.PodOf(ls.Host(l, h)); got != l {
				t.Errorf("PodOf(host %d,%d) = %d, want %d", l, h, got, l)
			}
		}
	}
	if got := ls.PodOf(NodeID(-1)); got != -1 {
		t.Errorf("PodOf(-1) = %d, want -1", got)
	}
	if got := ls.PodOf(NodeID(ls.Graph().NumNodes())); got != -1 {
		t.Errorf("PodOf(out of range) = %d, want -1", got)
	}
}
