package topology

import (
	"errors"
	"testing"
)

func TestSetLinkDownBumpsEpochAndVersion(t *testing.T) {
	g, _, _, l := twoNodeGraph(t)
	before := g.Epoch()
	if !g.SetLinkDown(l, true) {
		t.Fatal("SetLinkDown(true) on an up link reported no change")
	}
	if g.Epoch() != before+1 {
		t.Errorf("epoch after down = %d, want %d", g.Epoch(), before+1)
	}
	if got := g.Link(l).Version(); got != g.Epoch() {
		t.Errorf("link version = %d, want epoch %d", got, g.Epoch())
	}
	// Idempotent re-down is a no-op: no change, no epoch bump.
	if g.SetLinkDown(l, true) {
		t.Error("SetLinkDown(true) on a down link reported a change")
	}
	if g.Epoch() != before+1 {
		t.Errorf("epoch after idempotent down = %d, want %d", g.Epoch(), before+1)
	}
	if !g.SetLinkDown(l, false) {
		t.Fatal("SetLinkDown(false) on a down link reported no change")
	}
	if g.Epoch() != before+2 {
		t.Errorf("epoch after up = %d, want %d", g.Epoch(), before+2)
	}
}

func TestDownLinkRejectsReserveButReleases(t *testing.T) {
	g, _, _, l := twoNodeGraph(t)
	if err := g.Reserve(l, 300*Mbps); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	g.SetLinkDown(l, true)

	if !g.Link(l).Down() {
		t.Fatal("Down() = false after SetLinkDown(true)")
	}
	if got := g.Link(l).Residual(); got != 0 {
		t.Errorf("down link Residual() = %v, want 0", got)
	}
	if err := g.Reserve(l, Mbps); !errors.Is(err, ErrLinkDown) {
		t.Errorf("Reserve on down link: error = %v, want ErrLinkDown", err)
	}
	// Existing reservations persist and can still be released while down,
	// so withdraw paths work during failure handling.
	if got := g.Link(l).Reserved(); got != 300*Mbps {
		t.Errorf("down link Reserved() = %v, want %v", got, 300*Mbps)
	}
	if err := g.Release(l, 300*Mbps); err != nil {
		t.Errorf("Release on down link: %v", err)
	}

	g.SetLinkDown(l, false)
	if got := g.Link(l).Residual(); got != Gbps {
		t.Errorf("restored link Residual() = %v, want %v", got, Gbps)
	}
	if err := g.Reserve(l, Mbps); err != nil {
		t.Errorf("Reserve after restore: %v", err)
	}
}

func TestForkAndSyncFromCarryDownState(t *testing.T) {
	g, _, _, l := twoNodeGraph(t)
	g.SetLinkDown(l, true)

	f := g.Fork()
	if !f.Link(l).Down() {
		t.Error("fork of a graph with a down link lost the down state")
	}

	// Flip state on the parent only; the fork resyncs via SyncFrom.
	g.SetLinkDown(l, false)
	if !f.Link(l).Down() {
		t.Error("fork state changed without SyncFrom")
	}
	f.SyncFrom(g)
	if f.Link(l).Down() {
		t.Error("SyncFrom did not clear the fork's down state")
	}
	if f.Epoch() != g.Epoch() {
		t.Errorf("fork epoch = %d, want %d", f.Epoch(), g.Epoch())
	}
}

func TestNumLinksDownAndIncidentLinks(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindEdgeSwitch, "a")
	b := g.AddNode(KindEdgeSwitch, "b")
	c := g.AddNode(KindEdgeSwitch, "c")
	ab, ba, err := g.AddBiLink(a, b, Gbps)
	if err != nil {
		t.Fatalf("AddBiLink: %v", err)
	}
	bc, cb, err := g.AddBiLink(b, c, Gbps)
	if err != nil {
		t.Fatalf("AddBiLink: %v", err)
	}

	if got := g.NumLinksDown(); got != 0 {
		t.Errorf("NumLinksDown() = %d, want 0", got)
	}

	// Failing switch b takes down every incident link.
	incident := g.IncidentLinks(b)
	want := map[LinkID]bool{ab: true, ba: true, bc: true, cb: true}
	if len(incident) != len(want) {
		t.Fatalf("IncidentLinks(b) = %v, want the 4 links touching b", incident)
	}
	for _, id := range incident {
		if !want[id] {
			t.Errorf("IncidentLinks(b) contains unexpected link %d", int(id))
		}
		g.SetLinkDown(id, true)
	}
	if got := g.NumLinksDown(); got != 4 {
		t.Errorf("NumLinksDown() = %d, want 4", got)
	}
	// c's only neighbour is b, so both of c's links are down too.
	for _, id := range g.IncidentLinks(c) {
		if !g.Link(id).Down() {
			t.Errorf("link %d incident to c should be down", int(id))
		}
	}
}
