package topology

import "testing"

// journalGraph builds a 3-node line a->b->c with two links.
func journalGraph(t *testing.T) (*Graph, LinkID, LinkID) {
	t.Helper()
	g := NewGraph()
	a := g.AddNode(KindHost, "a")
	b := g.AddNode(KindEdgeSwitch, "b")
	c := g.AddNode(KindHost, "c")
	ab, err := g.AddLink(a, b, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := g.AddLink(b, c, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	return g, ab, bc
}

func TestChangeJournalRecordsMutations(t *testing.T) {
	g, ab, bc := journalGraph(t)

	// No changes yet: any since >= epoch succeeds with no appends.
	if got, ok := g.AppendChangesSince(nil, g.Epoch()); !ok || len(got) != 0 {
		t.Fatalf("AppendChangesSince(epoch) = %v, %v; want empty, true", got, ok)
	}

	base := g.Epoch()
	if err := g.Reserve(ab, 100*Mbps); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(bc, 200*Mbps); err != nil {
		t.Fatal(err)
	}
	if !g.SetLinkDown(ab, true) {
		t.Fatal("SetLinkDown reported no change")
	}
	if err := g.Release(bc, 100*Mbps); err != nil {
		t.Fatal(err)
	}

	got, ok := g.AppendChangesSince(nil, base)
	if !ok {
		t.Fatal("journal lost history within capacity")
	}
	want := []LinkID{ab, bc, ab, bc}
	if len(got) != len(want) {
		t.Fatalf("changes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("changes = %v, want %v", got, want)
		}
	}

	// A partial read from the middle sees only the tail.
	got, ok = g.AppendChangesSince(nil, base+2)
	if !ok || len(got) != 2 || got[0] != ab || got[1] != bc {
		t.Fatalf("tail changes = %v, %v; want [%v %v], true", got, ok, ab, bc)
	}
}

func TestChangeJournalOverflowReportsLoss(t *testing.T) {
	g, ab, _ := journalGraph(t)
	base := g.Epoch()
	for i := 0; i < journalCap+10; i++ {
		if err := g.Reserve(ab, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := g.AppendChangesSince(nil, base); ok {
		t.Fatal("journal claimed full coverage past its capacity")
	}
	// The retained window is still fully served.
	got, ok := g.AppendChangesSince(nil, g.Epoch()-journalCap)
	if !ok || len(got) != journalCap {
		t.Fatalf("retained window: len=%d ok=%v, want %d true", len(got), ok, journalCap)
	}
}

func TestChangeJournalOffOnForks(t *testing.T) {
	g, ab, _ := journalGraph(t)
	f := g.Fork()
	base := f.Epoch()
	if err := f.Reserve(ab, 100*Mbps); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.AppendChangesSince(nil, base); ok {
		t.Fatal("fork served journal entries; journaling should be off on forks")
	}
	if f.journal != nil {
		t.Fatal("fork allocated a journal ring")
	}
}

func TestChangeJournalInvalidatedBySyncFrom(t *testing.T) {
	g, ab, _ := journalGraph(t)
	if err := g.Reserve(ab, 100*Mbps); err != nil {
		t.Fatal(err)
	}
	other, _, _ := journalGraph(t)
	for i := 0; i < 5; i++ {
		if err := other.Reserve(ab, 0); err != nil {
			t.Fatal(err)
		}
	}
	g.SyncFrom(other)
	if _, ok := g.AppendChangesSince(nil, 0); ok {
		t.Fatal("journal survived SyncFrom; the epoch jump has no entries")
	}
	// Journaling resumes after the next mutation.
	base := g.Epoch()
	if err := g.Reserve(ab, 0); err != nil {
		t.Fatal(err)
	}
	got, ok := g.AppendChangesSince(nil, base)
	if !ok || len(got) != 1 || got[0] != ab {
		t.Fatalf("post-sync changes = %v, %v; want [%v], true", got, ok, ab)
	}
}
