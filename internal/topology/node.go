package topology

import "fmt"

// NodeID identifies a node (switch or host) within a Graph. IDs are dense
// indexes assigned in insertion order, which lets callers use them directly
// as slice indexes.
type NodeID int

// InvalidNode is returned by lookups that found no node.
const InvalidNode NodeID = -1

// NodeKind classifies a node by its role in the data-center topology.
type NodeKind int

// Node kinds. Hosts are traffic sources/sinks; the three switch tiers
// mirror the Fat-Tree layering of the paper's evaluation testbed.
const (
	KindHost NodeKind = iota + 1
	KindEdgeSwitch
	KindAggSwitch
	KindCoreSwitch
)

// String returns a short human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindEdgeSwitch:
		return "edge"
	case KindAggSwitch:
		return "agg"
	case KindCoreSwitch:
		return "core"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// IsSwitch reports whether the kind is one of the switch tiers.
func (k NodeKind) IsSwitch() bool {
	switch k {
	case KindEdgeSwitch, KindAggSwitch, KindCoreSwitch:
		return true
	default:
		return false
	}
}

// Node is a vertex of the network graph.
type Node struct {
	// ID is the node's dense index within its Graph.
	ID NodeID
	// Kind classifies the node (host or switch tier).
	Kind NodeKind
	// Name is a human-readable label, e.g. "pod3/edge1" or "host(2,0,5)".
	Name string
}

// String implements fmt.Stringer.
func (n Node) String() string {
	return fmt.Sprintf("%s#%d(%s)", n.Kind, int(n.ID), n.Name)
}
