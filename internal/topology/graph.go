package topology

import (
	"fmt"
)

// Graph is a directed multigraph of nodes and capacitated links with exact
// residual-bandwidth bookkeeping. It corresponds to the network
// G = (V, E) of Section III-A of the paper, where each link e_{i,j} carries
// a residual bandwidth c_{i,j}.
//
// Graph is not safe for concurrent mutation; the simulator serializes all
// state changes through a single goroutine (see internal/sim).
type Graph struct {
	nodes []Node
	links []Link
	// out[n] lists the IDs of links leaving node n.
	out [][]LinkID
	// in[n] lists the IDs of links entering node n.
	in [][]LinkID
	// byPair maps an ordered (from,to) pair to its link, enforcing simple
	// directed edges (at most one link per ordered pair).
	byPair map[[2]NodeID]LinkID
	// epoch counts reservation-state changes across the whole graph. Each
	// Reserve/Release increments it and stamps the new value onto the
	// touched link's version, so link versions are globally unique and
	// monotonically increasing.
	epoch uint64
	// journal is a ring of the links touched by recent epoch bumps: the
	// change minted at epoch v sits at journal[(v-1)%journalCap]. It backs
	// AppendChangesSince, letting probe caches dirty exactly the entries
	// whose read sets intersect recent changes instead of revalidating
	// every entry. Allocated lazily on the first recorded change.
	journal []LinkID
	// journalLo is the smallest epoch still retained in the ring; changes
	// at or before journalLo-1 have been overwritten (or never recorded).
	journalLo uint64
	// journalOff disables journaling entirely. Set on forks: trial
	// planning churns a fork's epoch at the hottest rate in the system,
	// and nobody subscribes to a fork's change stream.
	journalOff bool
}

// journalCap bounds the change journal. 4096 epochs of history is far
// more than the gap between scheduler rounds (a round commits one event,
// touching tens of links); readers that fall further behind take the
// revalidate-everything slow path.
const journalCap = 4096

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byPair: make(map[[2]NodeID]LinkID)}
}

// AddNode appends a node of the given kind and returns its ID.
func (g *Graph) AddNode(kind NodeKind, name string) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddLink adds a directed link from -> to with the given capacity and
// returns its ID. It fails if either endpoint is unknown, the capacity is
// negative, or a link between the ordered pair already exists.
func (g *Graph) AddLink(from, to NodeID, capacity Bandwidth) (LinkID, error) {
	if !g.validNode(from) {
		return InvalidLink, fmt.Errorf("add link: from %d: %w", int(from), ErrUnknownNode)
	}
	if !g.validNode(to) {
		return InvalidLink, fmt.Errorf("add link: to %d: %w", int(to), ErrUnknownNode)
	}
	if capacity < 0 {
		return InvalidLink, fmt.Errorf("add link %d->%d: capacity %d: %w",
			int(from), int(to), int64(capacity), ErrNegativeBandwidth)
	}
	key := [2]NodeID{from, to}
	if _, ok := g.byPair[key]; ok {
		return InvalidLink, fmt.Errorf("add link %d->%d: %w", int(from), int(to), ErrDuplicateLink)
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: from, To: to, Capacity: capacity})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.byPair[key] = id
	return id, nil
}

// AddBiLink adds a pair of directed links (a->b and b->a), each with the
// given capacity, modeling one physical cable. It returns both link IDs.
func (g *Graph) AddBiLink(a, b NodeID, capacity Bandwidth) (ab, ba LinkID, err error) {
	ab, err = g.AddLink(a, b, capacity)
	if err != nil {
		return InvalidLink, InvalidLink, err
	}
	ba, err = g.AddLink(b, a, capacity)
	if err != nil {
		return InvalidLink, InvalidLink, err
	}
	return ab, ba, nil
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of directed links in the graph.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given ID. It panics on out-of-range IDs,
// which always indicate a programming error (IDs are only minted by AddNode).
func (g *Graph) Node(id NodeID) Node {
	return g.nodes[id]
}

// Link returns a pointer to the link with the given ID. The pointer remains
// valid until the next AddLink call. It panics on out-of-range IDs.
func (g *Graph) Link(id LinkID) *Link {
	return &g.links[id]
}

// Out returns the IDs of links leaving node n. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Out(n NodeID) []LinkID { return g.out[n] }

// In returns the IDs of links entering node n. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) In(n NodeID) []LinkID { return g.in[n] }

// LinkBetween returns the ID of the directed link from -> to, if present.
func (g *Graph) LinkBetween(from, to NodeID) (LinkID, bool) {
	id, ok := g.byPair[[2]NodeID{from, to}]
	return id, ok
}

// Nodes returns a copy of all nodes in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NodesOfKind returns the IDs of all nodes with the given kind, in ID order.
func (g *Graph) NodesOfKind(kind NodeKind) []NodeID {
	var ids []NodeID
	for _, n := range g.nodes {
		if n.Kind == kind {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Reserve claims bw on the given link, reducing its residual bandwidth.
// It fails with ErrInsufficientBandwidth if the residual is too small and
// with ErrNegativeBandwidth if bw < 0; the link is unchanged on failure.
func (g *Graph) Reserve(id LinkID, bw Bandwidth) error {
	if bw < 0 {
		return fmt.Errorf("reserve on %v: %w", id, ErrNegativeBandwidth)
	}
	l := &g.links[id]
	if l.down {
		return fmt.Errorf("reserve %v on %v: %w", bw, l, ErrLinkDown)
	}
	if l.Residual() < bw {
		return fmt.Errorf("reserve %v on %v (residual %v): %w",
			bw, l, l.Residual(), ErrInsufficientBandwidth)
	}
	l.reserved += bw
	g.epoch++
	l.version = g.epoch
	g.recordChange(id)
	return nil
}

// Release returns bw previously claimed on the given link. It fails with
// ErrOverRelease if bw exceeds the currently reserved amount, leaving the
// link unchanged.
func (g *Graph) Release(id LinkID, bw Bandwidth) error {
	if bw < 0 {
		return fmt.Errorf("release on %v: %w", id, ErrNegativeBandwidth)
	}
	l := &g.links[id]
	if l.reserved < bw {
		return fmt.Errorf("release %v on %v (reserved %v): %w",
			bw, l, l.reserved, ErrOverRelease)
	}
	l.reserved -= bw
	g.epoch++
	l.version = g.epoch
	g.recordChange(id)
	return nil
}

// SetCapacity rewrites a link's capacity, e.g. when a sharded deployment
// splits core-layer links across per-shard worlds. It fails with
// ErrNegativeBandwidth for c < 0 and with ErrInsufficientBandwidth when
// the link already has more than c reserved (shrinking below the
// committed load would make the residual negative). A successful change
// bumps the graph epoch and the link's version exactly like Reserve, so
// probe caches revalidate.
func (g *Graph) SetCapacity(id LinkID, c Bandwidth) error {
	if c < 0 {
		return fmt.Errorf("set capacity on %v: %w", id, ErrNegativeBandwidth)
	}
	l := &g.links[id]
	if l.reserved > c {
		return fmt.Errorf("set capacity %v on %v (reserved %v): %w",
			c, l, l.reserved, ErrInsufficientBandwidth)
	}
	if l.Capacity == c {
		return nil
	}
	l.Capacity = c
	g.epoch++
	l.version = g.epoch
	g.recordChange(id)
	return nil
}

// Utilization returns total reserved bandwidth divided by total capacity
// across all links (0 for an empty graph). This is the "network utilization"
// knob the paper sweeps in its evaluation.
func (g *Graph) Utilization() float64 {
	var used, total Bandwidth
	for i := range g.links {
		used += g.links[i].reserved
		total += g.links[i].Capacity
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// SwitchUtilization is like Utilization but restricted to switch-to-switch
// links (the network fabric), excluding host access links.
func (g *Graph) SwitchUtilization() float64 {
	var used, total Bandwidth
	for i := range g.links {
		l := &g.links[i]
		if !g.nodes[l.From].Kind.IsSwitch() || !g.nodes[l.To].Kind.IsSwitch() {
			continue
		}
		used += l.reserved
		total += l.Capacity
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// SetLinkDown marks a link failed (down=true) or repaired (down=false)
// and reports whether the state actually changed. A change bumps the
// graph epoch and the link's version exactly like a reservation change,
// so probe-cost caches whose read sets include the link revalidate
// instead of replaying stale estimates, and probe forks resync before
// their next use.
func (g *Graph) SetLinkDown(id LinkID, down bool) bool {
	l := &g.links[id]
	if l.down == down {
		return false
	}
	l.down = down
	g.epoch++
	l.version = g.epoch
	g.recordChange(id)
	return true
}

// NumLinksDown counts currently failed links.
func (g *Graph) NumLinksDown() int {
	n := 0
	for i := range g.links {
		if g.links[i].down {
			n++
		}
	}
	return n
}

// IncidentLinks returns every directed link touching node n (outgoing
// then incoming) — the set a switch failure takes down.
func (g *Graph) IncidentLinks(n NodeID) []LinkID {
	out := make([]LinkID, 0, len(g.out[n])+len(g.in[n]))
	out = append(out, g.out[n]...)
	out = append(out, g.in[n]...)
	return out
}

// Epoch returns the graph-wide reservation-change counter. It increases
// by exactly one on every successful Reserve or Release (and on every
// link up/down transition), so an unchanged epoch guarantees unchanged
// residual bandwidth on every link.
func (g *Graph) Epoch() uint64 { return g.epoch }

// recordChange appends the link just stamped with the current epoch to
// the change journal. Must be called immediately after an epoch bump.
func (g *Graph) recordChange(id LinkID) {
	if g.journalOff {
		return
	}
	if g.journal == nil {
		g.journal = make([]LinkID, journalCap)
		g.journalLo = g.epoch
	}
	g.journal[(g.epoch-1)%journalCap] = id
	if g.epoch-g.journalLo >= journalCap {
		g.journalLo = g.epoch - journalCap + 1
	}
}

// AppendChangesSince appends to buf the ID of every link changed after
// epoch since (one entry per epoch bump, so a link changed k times
// appears k times) and reports whether the journal covered the whole
// gap. A false return means history was lost — the caller observed
// since too long ago, journaling is off (forks), or the journal was
// invalidated — and the caller must fall back to revalidating all of
// its state. since >= the current epoch trivially succeeds with no
// appends.
func (g *Graph) AppendChangesSince(buf []LinkID, since uint64) ([]LinkID, bool) {
	if since >= g.epoch {
		return buf, true
	}
	if g.journalOff || g.journal == nil || since+1 < g.journalLo {
		return buf, false
	}
	for v := since + 1; v <= g.epoch; v++ {
		buf = append(buf, g.journal[(v-1)%journalCap])
	}
	return buf, true
}

// MaxVersion returns the largest link version across the given links.
// Because versions are minted from the single graph epoch, the max over a
// fixed set increases iff some link of the set changed — the validity
// check of probe-cost caches.
func (g *Graph) MaxVersion(links []LinkID) uint64 {
	var max uint64
	for _, id := range links {
		if v := g.links[id].version; v > max {
			max = v
		}
	}
	return max
}

// Fork returns a scratch copy of the graph for trial planning: the
// mutable per-link reservation state is copied, while the immutable
// topology (nodes, adjacency, pair index) is shared with the parent.
// Reserve/Release on the fork never touch the parent.
//
// Forks are probe-only: growing a fork's topology (AddNode/AddLink) is
// not supported, because the shared adjacency slices would alias the
// parent's.
func (g *Graph) Fork() *Graph {
	links := make([]Link, len(g.links))
	copy(links, g.links)
	return &Graph{
		nodes:  g.nodes,
		links:  links,
		out:    g.out,
		in:     g.in,
		byPair: g.byPair,
		epoch:  g.epoch,
		// Trial planning hammers a fork's Reserve/Release; journaling
		// there would only slow the hottest path for a stream nobody
		// subscribes to.
		journalOff: true,
	}
}

// SyncFrom resets a fork's reservation state (and epoch) to match src,
// reusing the fork's link storage. Both graphs must describe the same
// topology (same link count); it panics otherwise, since that indicates
// the fork and its parent diverged structurally.
func (g *Graph) SyncFrom(src *Graph) {
	if len(g.links) != len(src.links) {
		panic(fmt.Sprintf("topology: SyncFrom across different topologies (%d vs %d links)",
			len(g.links), len(src.links)))
	}
	copy(g.links, src.links)
	g.epoch = src.epoch
	// The epoch just jumped without per-change entries; drop any journal
	// history so AppendChangesSince reports the gap instead of serving
	// entries that never described this graph's transitions.
	g.journal = nil
	g.journalLo = 0
}

// validNode reports whether id is in range.
func (g *Graph) validNode(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes)
}
