package topology_test

import (
	"fmt"

	"netupdate/internal/topology"
)

// Build the paper's testbed and inspect its dimensions.
func ExampleNewFatTree() {
	ft, err := topology.NewFatTree(8, topology.Gbps)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("switches:", ft.NumSwitches())
	fmt.Println("hosts:", ft.NumHosts())
	fmt.Println("directed links:", ft.Graph().NumLinks())
	// Output:
	// switches: 80
	// hosts: 128
	// directed links: 768
}

// Bandwidth bookkeeping is exact: reservations must fit and must be
// released in full.
func ExampleGraph_Reserve() {
	g := topology.NewGraph()
	a := g.AddNode(topology.KindEdgeSwitch, "a")
	b := g.AddNode(topology.KindEdgeSwitch, "b")
	link, _ := g.AddLink(a, b, topology.Gbps)

	_ = g.Reserve(link, 600*topology.Mbps)
	fmt.Println("residual:", g.Link(link).Residual())

	if err := g.Reserve(link, 500*topology.Mbps); err != nil {
		fmt.Println("second reserve rejected")
	}
	_ = g.Release(link, 600*topology.Mbps)
	fmt.Println("after release:", g.Link(link).Residual())
	// Output:
	// residual: 400Mbps
	// second reserve rejected
	// after release: 1Gbps
}
