package topology

import (
	"errors"
	"testing"
)

func TestNewLeafSpineInvalid(t *testing.T) {
	cases := [][3]int{{1, 2, 2}, {2, 0, 2}, {2, 2, 0}}
	for _, c := range cases {
		if _, err := NewLeafSpine(c[0], c[1], c[2], Gbps); !errors.Is(err, ErrInvalidLeafSpine) {
			t.Errorf("NewLeafSpine(%v) error = %v, want ErrInvalidLeafSpine", c, err)
		}
	}
	if _, err := NewLeafSpine(2, 2, 2, -1); !errors.Is(err, ErrNegativeBandwidth) {
		t.Errorf("negative capacity error missing")
	}
}

func TestLeafSpineStructure(t *testing.T) {
	const leaves, spines, hpl = 6, 3, 4
	ls, err := NewLeafSpine(leaves, spines, hpl, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ls.Graph()
	if got := ls.NumHosts(); got != leaves*hpl {
		t.Errorf("NumHosts = %d, want %d", got, leaves*hpl)
	}
	if got := g.NumNodes(); got != spines+leaves+leaves*hpl {
		t.Errorf("NumNodes = %d", got)
	}
	// Every leaf reaches every spine; spines reach no host directly.
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			if _, ok := g.LinkBetween(ls.Leaf(l), ls.Spine(s)); !ok {
				t.Errorf("leaf%d !-> spine%d", l, s)
			}
		}
	}
	for s := 0; s < spines; s++ {
		for _, h := range ls.Hosts() {
			if _, ok := g.LinkBetween(ls.Spine(s), h); ok {
				t.Errorf("spine%d directly wired to host %v", s, h)
			}
		}
	}
	// Host addressing.
	for l := 0; l < leaves; l++ {
		for h := 0; h < hpl; h++ {
			id := ls.Host(l, h)
			if _, ok := g.LinkBetween(id, ls.Leaf(l)); !ok {
				t.Errorf("host (%d,%d) not attached to its leaf", l, h)
			}
		}
	}
	// Degrees: leaf = spines + hosts, spine = leaves, host = 1.
	for l := 0; l < leaves; l++ {
		if got := len(g.Out(ls.Leaf(l))); got != spines+hpl {
			t.Errorf("leaf%d degree = %d, want %d", l, got, spines+hpl)
		}
	}
	for s := 0; s < spines; s++ {
		if got := len(g.Out(ls.Spine(s))); got != leaves {
			t.Errorf("spine%d degree = %d, want %d", s, got, leaves)
		}
	}
}
