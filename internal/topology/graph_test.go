package topology

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoNodeGraph returns a graph with two nodes and one 1 Gbps link a->b.
func twoNodeGraph(t *testing.T) (*Graph, NodeID, NodeID, LinkID) {
	t.Helper()
	g := NewGraph()
	a := g.AddNode(KindHost, "a")
	b := g.AddNode(KindHost, "b")
	l, err := g.AddLink(a, b, Gbps)
	if err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	return g, a, b, l
}

func TestGraphAddNodeAssignsDenseIDs(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		id := g.AddNode(KindHost, "h")
		if int(id) != i {
			t.Fatalf("AddNode #%d returned ID %d", i, int(id))
		}
	}
	if g.NumNodes() != 10 {
		t.Errorf("NumNodes() = %d, want 10", g.NumNodes())
	}
}

func TestGraphAddLinkErrors(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindHost, "a")
	b := g.AddNode(KindHost, "b")

	tests := []struct {
		name     string
		from, to NodeID
		capacity Bandwidth
		wantErr  error
	}{
		{"unknown from", NodeID(99), b, Gbps, ErrUnknownNode},
		{"unknown to", a, NodeID(-2), Gbps, ErrUnknownNode},
		{"negative capacity", a, b, -1, ErrNegativeBandwidth},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddLink(tt.from, tt.to, tt.capacity); !errors.Is(err, tt.wantErr) {
				t.Errorf("AddLink() error = %v, want %v", err, tt.wantErr)
			}
		})
	}

	if _, err := g.AddLink(a, b, Gbps); err != nil {
		t.Fatalf("first AddLink: %v", err)
	}
	if _, err := g.AddLink(a, b, Gbps); !errors.Is(err, ErrDuplicateLink) {
		t.Errorf("duplicate AddLink error = %v, want ErrDuplicateLink", err)
	}
	// Reverse direction is a distinct link and must succeed.
	if _, err := g.AddLink(b, a, Gbps); err != nil {
		t.Errorf("reverse AddLink: %v", err)
	}
}

func TestGraphAddBiLink(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindEdgeSwitch, "a")
	b := g.AddNode(KindEdgeSwitch, "b")
	ab, ba, err := g.AddBiLink(a, b, 10*Mbps)
	if err != nil {
		t.Fatalf("AddBiLink: %v", err)
	}
	if g.Link(ab).From != a || g.Link(ab).To != b {
		t.Errorf("forward link endpoints = %v", g.Link(ab))
	}
	if g.Link(ba).From != b || g.Link(ba).To != a {
		t.Errorf("reverse link endpoints = %v", g.Link(ba))
	}
	if got, ok := g.LinkBetween(a, b); !ok || got != ab {
		t.Errorf("LinkBetween(a,b) = %v,%v want %v,true", got, ok, ab)
	}
	if got, ok := g.LinkBetween(b, a); !ok || got != ba {
		t.Errorf("LinkBetween(b,a) = %v,%v want %v,true", got, ok, ba)
	}
	if _, ok := g.LinkBetween(b, b); ok {
		t.Error("LinkBetween(b,b) found a link, want none")
	}
}

func TestGraphAdjacency(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindHost, "a")
	b := g.AddNode(KindHost, "b")
	c := g.AddNode(KindHost, "c")
	ab, _ := g.AddLink(a, b, Gbps)
	ac, _ := g.AddLink(a, c, Gbps)
	cb, _ := g.AddLink(c, b, Gbps)

	if out := g.Out(a); len(out) != 2 || out[0] != ab || out[1] != ac {
		t.Errorf("Out(a) = %v, want [%v %v]", out, ab, ac)
	}
	if in := g.In(b); len(in) != 2 || in[0] != ab || in[1] != cb {
		t.Errorf("In(b) = %v, want [%v %v]", in, ab, cb)
	}
	if out := g.Out(b); len(out) != 0 {
		t.Errorf("Out(b) = %v, want empty", out)
	}
}

func TestReserveRelease(t *testing.T) {
	g, _, _, l := twoNodeGraph(t)

	if err := g.Reserve(l, 600*Mbps); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := g.Link(l).Residual(); got != 400*Mbps {
		t.Errorf("Residual = %v, want 400Mbps", got)
	}
	if err := g.Reserve(l, 500*Mbps); !errors.Is(err, ErrInsufficientBandwidth) {
		t.Errorf("over-reserve error = %v, want ErrInsufficientBandwidth", err)
	}
	// Failed reserve must not change state.
	if got := g.Link(l).Residual(); got != 400*Mbps {
		t.Errorf("Residual after failed reserve = %v, want 400Mbps", got)
	}
	if err := g.Release(l, 700*Mbps); !errors.Is(err, ErrOverRelease) {
		t.Errorf("over-release error = %v, want ErrOverRelease", err)
	}
	if err := g.Release(l, 600*Mbps); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := g.Link(l).Residual(); got != Gbps {
		t.Errorf("Residual after full release = %v, want 1Gbps", got)
	}
	if err := g.Reserve(l, -1); !errors.Is(err, ErrNegativeBandwidth) {
		t.Errorf("negative reserve error = %v, want ErrNegativeBandwidth", err)
	}
	if err := g.Release(l, -1); !errors.Is(err, ErrNegativeBandwidth) {
		t.Errorf("negative release error = %v, want ErrNegativeBandwidth", err)
	}
}

func TestReserveExactCapacity(t *testing.T) {
	g, _, _, l := twoNodeGraph(t)
	if err := g.Reserve(l, Gbps); err != nil {
		t.Fatalf("Reserve full capacity: %v", err)
	}
	if got := g.Link(l).Residual(); got != 0 {
		t.Errorf("Residual = %v, want 0", got)
	}
	if got := g.Link(l).Utilization(); got != 1.0 {
		t.Errorf("Utilization = %v, want 1.0", got)
	}
	if err := g.Reserve(l, 1); !errors.Is(err, ErrInsufficientBandwidth) {
		t.Errorf("reserve beyond capacity error = %v, want ErrInsufficientBandwidth", err)
	}
}

func TestUtilization(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindEdgeSwitch, "a")
	b := g.AddNode(KindAggSwitch, "b")
	h := g.AddNode(KindHost, "h")
	fabric, _ := g.AddLink(a, b, Gbps)
	access, _ := g.AddLink(h, a, Gbps)

	if got := g.Utilization(); got != 0 {
		t.Errorf("empty Utilization = %v, want 0", got)
	}
	if err := g.Reserve(fabric, 500*Mbps); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(access, 250*Mbps); err != nil {
		t.Fatal(err)
	}
	if got, want := g.Utilization(), 0.375; got != want {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
	// Switch utilization ignores the host access link.
	if got, want := g.SwitchUtilization(), 0.5; got != want {
		t.Errorf("SwitchUtilization = %v, want %v", got, want)
	}
}

func TestNodesOfKind(t *testing.T) {
	g := NewGraph()
	g.AddNode(KindHost, "h0")
	s := g.AddNode(KindEdgeSwitch, "e0")
	g.AddNode(KindHost, "h1")
	got := g.NodesOfKind(KindEdgeSwitch)
	if len(got) != 1 || got[0] != s {
		t.Errorf("NodesOfKind(edge) = %v, want [%v]", got, s)
	}
	if hosts := g.NodesOfKind(KindHost); len(hosts) != 2 {
		t.Errorf("NodesOfKind(host) = %v, want 2 entries", hosts)
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	g := NewGraph()
	g.AddNode(KindHost, "a")
	nodes := g.Nodes()
	nodes[0].Name = "mutated"
	if g.Node(0).Name != "a" {
		t.Error("mutating Nodes() result changed graph state")
	}
}

// TestReserveReleaseRoundTrip property: any sequence of successful reserves
// followed by matching releases restores the original residual, and the
// residual never goes negative in between.
func TestReserveReleaseRoundTrip(t *testing.T) {
	f := func(amounts []uint16) bool {
		g := NewGraph()
		a := g.AddNode(KindHost, "a")
		b := g.AddNode(KindHost, "b")
		l, err := g.AddLink(a, b, Gbps)
		if err != nil {
			return false
		}
		var reserved []Bandwidth
		for _, amt := range amounts {
			bw := Bandwidth(amt) * Mbps
			if err := g.Reserve(l, bw); err == nil {
				reserved = append(reserved, bw)
			} else if !errors.Is(err, ErrInsufficientBandwidth) {
				return false
			}
			if g.Link(l).Residual() < 0 {
				return false
			}
		}
		for _, bw := range reserved {
			if err := g.Release(l, bw); err != nil {
				return false
			}
		}
		return g.Link(l).Residual() == Gbps && g.Link(l).Reserved() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestReservationConservation property: the sum of Reserved over all links
// always equals the sum of amounts successfully reserved minus released.
func TestReservationConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGraph()
	const n = 8
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(KindEdgeSwitch, "s")
	}
	var links []LinkID
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			l, err := g.AddLink(ids[i], ids[j], 100*Mbps)
			if err != nil {
				t.Fatal(err)
			}
			links = append(links, l)
		}
	}
	var ledger Bandwidth
	outstanding := make(map[LinkID]Bandwidth)
	for step := 0; step < 5000; step++ {
		l := links[rng.Intn(len(links))]
		if rng.Intn(2) == 0 {
			bw := Bandwidth(rng.Intn(50)+1) * Mbps
			if err := g.Reserve(l, bw); err == nil {
				ledger += bw
				outstanding[l] += bw
			}
		} else if outstanding[l] > 0 {
			bw := Bandwidth(rng.Int63n(int64(outstanding[l]))) + 1
			if err := g.Release(l, bw); err != nil {
				t.Fatalf("release within outstanding failed: %v", err)
			}
			ledger -= bw
			outstanding[l] -= bw
		}
	}
	var total Bandwidth
	for _, l := range links {
		total += g.Link(l).Reserved()
		if g.Link(l).Residual() < 0 {
			t.Fatalf("link %v has negative residual", l)
		}
	}
	if total != ledger {
		t.Errorf("total reserved = %v, ledger = %v", total, ledger)
	}
}
