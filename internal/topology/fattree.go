package topology

import (
	"errors"
	"fmt"
)

// ErrInvalidK is returned by NewFatTree for k values that do not describe a
// Fat-Tree (k must be even and >= 2).
var ErrInvalidK = errors.New("fat-tree parameter k must be even and >= 2")

// FatTree is a k-ary Fat-Tree data-center topology (Leiserson [17]; the
// paper evaluates k=8 with 1 Gbps links). It wraps a Graph and keeps the
// structural indexes needed for O(1) addressing of switches and hosts:
//
//   - (k/2)^2 core switches, indexed by (group, index) with group < k/2,
//   - k pods, each with k/2 aggregation and k/2 edge switches,
//   - k/2 hosts per edge switch, k^3/4 hosts in total.
//
// Aggregation switch a of every pod connects to the k/2 core switches of
// group a; edge switch e connects to all k/2 aggregation switches of its
// pod and to its k/2 hosts.
type FatTree struct {
	// K is the Fat-Tree arity parameter.
	K int
	// LinkCapacity is the capacity assigned to every (directed) link.
	LinkCapacity Bandwidth

	graph *Graph
	cores []NodeID   // (k/2)^2 core switches, index = group*k/2 + j
	aggs  [][]NodeID // [pod][i] aggregation switches
	edges [][]NodeID // [pod][i] edge switches
	hosts []NodeID   // all hosts, index = pod*(k/2)^2 + edge*(k/2) + h
	// hostIdx maps a host NodeID back to its index in hosts for O(1)
	// address decomposition.
	hostIdx map[NodeID]int
}

// NewFatTree builds a k-ary Fat-Tree in which every directed link has the
// given capacity. The paper's testbed is NewFatTree(8, topology.Gbps).
func NewFatTree(k int, capacity Bandwidth) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("k=%d: %w", k, ErrInvalidK)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("capacity %d: %w", int64(capacity), ErrNegativeBandwidth)
	}
	half := k / 2
	ft := &FatTree{
		K:            k,
		LinkCapacity: capacity,
		graph:        NewGraph(),
		cores:        make([]NodeID, 0, half*half),
		aggs:         make([][]NodeID, k),
		edges:        make([][]NodeID, k),
		hosts:        make([]NodeID, 0, k*half*half),
		hostIdx:      make(map[NodeID]int, k*half*half),
	}
	g := ft.graph

	for grp := 0; grp < half; grp++ {
		for j := 0; j < half; j++ {
			ft.cores = append(ft.cores, g.AddNode(KindCoreSwitch, fmt.Sprintf("core(%d,%d)", grp, j)))
		}
	}
	for pod := 0; pod < k; pod++ {
		ft.aggs[pod] = make([]NodeID, half)
		ft.edges[pod] = make([]NodeID, half)
		for i := 0; i < half; i++ {
			ft.aggs[pod][i] = g.AddNode(KindAggSwitch, fmt.Sprintf("pod%d/agg%d", pod, i))
		}
		for i := 0; i < half; i++ {
			ft.edges[pod][i] = g.AddNode(KindEdgeSwitch, fmt.Sprintf("pod%d/edge%d", pod, i))
		}
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				id := g.AddNode(KindHost, fmt.Sprintf("host(%d,%d,%d)", pod, e, h))
				ft.hostIdx[id] = len(ft.hosts)
				ft.hosts = append(ft.hosts, id)
			}
		}
	}

	// Wire core <-> aggregation: agg i of every pod reaches core group i.
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			agg := ft.aggs[pod][i]
			for j := 0; j < half; j++ {
				if _, _, err := g.AddBiLink(ft.cores[i*half+j], agg, capacity); err != nil {
					return nil, fmt.Errorf("fat-tree core wiring: %w", err)
				}
			}
		}
	}
	// Wire aggregation <-> edge: full bipartite graph within each pod.
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			for e := 0; e < half; e++ {
				if _, _, err := g.AddBiLink(ft.aggs[pod][i], ft.edges[pod][e], capacity); err != nil {
					return nil, fmt.Errorf("fat-tree pod wiring: %w", err)
				}
			}
		}
	}
	// Wire edge <-> hosts.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				if _, _, err := g.AddBiLink(ft.edges[pod][e], ft.Host(pod, e, h), capacity); err != nil {
					return nil, fmt.Errorf("fat-tree host wiring: %w", err)
				}
			}
		}
	}
	return ft, nil
}

// Graph returns the underlying graph. Callers share it with the FatTree;
// mutations (reservations) are visible through both.
func (ft *FatTree) Graph() *Graph { return ft.graph }

// NumPods returns the number of pods (= k).
func (ft *FatTree) NumPods() int { return ft.K }

// NumHosts returns the total number of hosts (= k^3/4).
func (ft *FatTree) NumHosts() int { return len(ft.hosts) }

// NumSwitches returns the total number of switches (= 5k^2/4).
func (ft *FatTree) NumSwitches() int {
	return len(ft.cores) + ft.K*(ft.K/2)*2
}

// Core returns the core switch of the given group and index (both < k/2).
func (ft *FatTree) Core(group, j int) NodeID { return ft.cores[group*(ft.K/2)+j] }

// Cores returns all core switch IDs. The slice is owned by the FatTree.
func (ft *FatTree) Cores() []NodeID { return ft.cores }

// Agg returns aggregation switch i of the given pod.
func (ft *FatTree) Agg(pod, i int) NodeID { return ft.aggs[pod][i] }

// Edge returns edge switch i of the given pod.
func (ft *FatTree) Edge(pod, i int) NodeID { return ft.edges[pod][i] }

// Host returns the h-th host under edge switch e of the given pod.
func (ft *FatTree) Host(pod, e, h int) NodeID {
	half := ft.K / 2
	return ft.hosts[pod*half*half+e*half+h]
}

// Hosts returns all host IDs in address order. The slice is owned by the
// FatTree and must not be modified.
func (ft *FatTree) Hosts() []NodeID { return ft.hosts }

// HostAddr decomposes a host NodeID into its (pod, edge, index) address.
// ok is false if the node is not a host of this Fat-Tree.
func (ft *FatTree) HostAddr(id NodeID) (pod, edge, h int, ok bool) {
	idx, found := ft.hostIdx[id]
	if !found {
		return 0, 0, 0, false
	}
	half := ft.K / 2
	pod = idx / (half * half)
	rem := idx % (half * half)
	return pod, rem / half, rem % half, true
}

// PodOf returns the pod a node belongs to: the pod number for hosts,
// edge and aggregation switches, and -1 for core switches (which belong
// to no pod) and unknown IDs. This is the shard key of the pod-sharded
// control plane: a node with PodOf >= 0 is owned by exactly one pod.
func (ft *FatTree) PodOf(id NodeID) int {
	if p := ft.PodOfHost(id); p >= 0 {
		return p
	}
	if id < 0 || int(id) >= ft.graph.NumNodes() {
		return -1
	}
	switch ft.graph.Node(id).Kind {
	case KindAggSwitch, KindEdgeSwitch:
		// Nodes are minted cores-first, then per-pod blocks of
		// k/2 aggs + k/2 edges + (k/2)^2 hosts (see NewFatTree).
		half := ft.K / 2
		perPod := 2*half + half*half
		return (int(id) - half*half) / perPod
	default:
		return -1
	}
}

// PodOfHost returns the pod number of a host, or -1 if id is not a host.
func (ft *FatTree) PodOfHost(id NodeID) int {
	pod, _, _, ok := ft.HostAddr(id)
	if !ok {
		return -1
	}
	return pod
}

// EdgeOfHost returns the edge switch a host attaches to, or InvalidNode.
func (ft *FatTree) EdgeOfHost(id NodeID) NodeID {
	pod, e, _, ok := ft.HostAddr(id)
	if !ok {
		return InvalidNode
	}
	return ft.edges[pod][e]
}
