package topology

import (
	"errors"
	"testing"
)

func TestNewFatTreeInvalidK(t *testing.T) {
	for _, k := range []int{-2, 0, 1, 3, 7} {
		if _, err := NewFatTree(k, Gbps); !errors.Is(err, ErrInvalidK) {
			t.Errorf("NewFatTree(%d) error = %v, want ErrInvalidK", k, err)
		}
	}
	if _, err := NewFatTree(4, -Gbps); !errors.Is(err, ErrNegativeBandwidth) {
		t.Errorf("negative capacity error = %v, want ErrNegativeBandwidth", err)
	}
}

func TestFatTreeCounts(t *testing.T) {
	tests := []struct {
		k                       int
		wantHosts, wantSwitches int
	}{
		{2, 2, 5},
		{4, 16, 20},
		{6, 54, 45},
		{8, 128, 80}, // the paper's testbed: 5k^2/4 = 80 switches, k^3/4 = 128 servers
	}
	for _, tt := range tests {
		ft, err := NewFatTree(tt.k, Gbps)
		if err != nil {
			t.Fatalf("NewFatTree(%d): %v", tt.k, err)
		}
		if got := ft.NumHosts(); got != tt.wantHosts {
			t.Errorf("k=%d NumHosts = %d, want %d", tt.k, got, tt.wantHosts)
		}
		if got := ft.NumSwitches(); got != tt.wantSwitches {
			t.Errorf("k=%d NumSwitches = %d, want %d", tt.k, got, tt.wantSwitches)
		}
		if got := ft.Graph().NumNodes(); got != tt.wantHosts+tt.wantSwitches {
			t.Errorf("k=%d NumNodes = %d, want %d", tt.k, got, tt.wantHosts+tt.wantSwitches)
		}
		// Directed link count: each of core-agg (k * k/2 * k/2), agg-edge
		// (k * k/2 * k/2) and edge-host (k^3/4) cables contributes 2 links.
		half := tt.k / 2
		cables := tt.k*half*half*2 + tt.k*half*half
		if got := ft.Graph().NumLinks(); got != 2*cables {
			t.Errorf("k=%d NumLinks = %d, want %d", tt.k, got, 2*cables)
		}
	}
}

func TestFatTreeDegrees(t *testing.T) {
	const k = 8
	ft, err := NewFatTree(k, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	for _, n := range g.Nodes() {
		wantDeg := 0
		switch n.Kind {
		case KindHost:
			wantDeg = 1
		case KindEdgeSwitch, KindAggSwitch, KindCoreSwitch:
			wantDeg = k
		}
		if got := len(g.Out(n.ID)); got != wantDeg {
			t.Errorf("%v out-degree = %d, want %d", n, got, wantDeg)
		}
		if got := len(g.In(n.ID)); got != wantDeg {
			t.Errorf("%v in-degree = %d, want %d", n, got, wantDeg)
		}
	}
}

func TestFatTreeWiring(t *testing.T) {
	const k = 4
	ft, err := NewFatTree(k, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	half := k / 2

	// Aggregation switch i of every pod must reach exactly the core
	// switches of group i.
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			agg := ft.Agg(pod, i)
			for grp := 0; grp < half; grp++ {
				for j := 0; j < half; j++ {
					_, connected := g.LinkBetween(agg, ft.Core(grp, j))
					if want := grp == i; connected != want {
						t.Errorf("pod%d/agg%d <-> core(%d,%d): connected=%v, want %v",
							pod, i, grp, j, connected, want)
					}
				}
			}
		}
	}
	// Every edge switch connects to every aggregation switch of its pod and
	// to no switch of other pods.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			edge := ft.Edge(pod, e)
			for p2 := 0; p2 < k; p2++ {
				for a := 0; a < half; a++ {
					_, connected := g.LinkBetween(edge, ft.Agg(p2, a))
					if want := p2 == pod; connected != want {
						t.Errorf("pod%d/edge%d <-> pod%d/agg%d: connected=%v, want %v",
							pod, e, p2, a, connected, want)
					}
				}
			}
		}
	}
}

func TestFatTreeHostAddr(t *testing.T) {
	const k = 8
	ft, err := NewFatTree(k, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	half := k / 2
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				id := ft.Host(pod, e, h)
				gp, ge, gh, ok := ft.HostAddr(id)
				if !ok || gp != pod || ge != e || gh != h {
					t.Fatalf("HostAddr(Host(%d,%d,%d)) = (%d,%d,%d,%v)", pod, e, h, gp, ge, gh, ok)
				}
				if got := ft.PodOfHost(id); got != pod {
					t.Errorf("PodOfHost = %d, want %d", got, pod)
				}
				if got := ft.EdgeOfHost(id); got != ft.Edge(pod, e) {
					t.Errorf("EdgeOfHost = %v, want %v", got, ft.Edge(pod, e))
				}
			}
		}
	}
	// Non-host nodes have no address.
	if _, _, _, ok := ft.HostAddr(ft.Core(0, 0)); ok {
		t.Error("HostAddr(core) reported ok")
	}
	if ft.PodOfHost(ft.Agg(0, 0)) != -1 {
		t.Error("PodOfHost(agg) != -1")
	}
	if ft.EdgeOfHost(ft.Edge(0, 0)) != InvalidNode {
		t.Error("EdgeOfHost(edge) != InvalidNode")
	}
}

func TestFatTreeHostsAttachToDeclaredEdge(t *testing.T) {
	ft, err := NewFatTree(4, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	for _, h := range ft.Hosts() {
		edge := ft.EdgeOfHost(h)
		if _, ok := g.LinkBetween(h, edge); !ok {
			t.Errorf("host %v has no uplink to its edge switch %v", h, edge)
		}
		if _, ok := g.LinkBetween(edge, h); !ok {
			t.Errorf("edge %v has no downlink to host %v", edge, h)
		}
	}
}

// TestFatTreeConnected verifies every host can reach every other host via
// BFS over directed links — the basic sanity every experiment relies on.
func TestFatTreeConnected(t *testing.T) {
	ft, err := NewFatTree(4, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	src := ft.Hosts()[0]
	seen := make([]bool, g.NumNodes())
	queue := []NodeID{src}
	seen[src] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, l := range g.Out(n) {
			to := g.Link(l).To
			if !seen[to] {
				seen[to] = true
				queue = append(queue, to)
			}
		}
	}
	for _, h := range ft.Hosts() {
		if !seen[h] {
			t.Errorf("host %v unreachable from %v", h, src)
		}
	}
}

func TestFatTreeLinkCapacity(t *testing.T) {
	ft, err := NewFatTree(4, 10*Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	for i := 0; i < g.NumLinks(); i++ {
		if got := g.Link(LinkID(i)).Capacity; got != 10*Gbps {
			t.Fatalf("link %d capacity = %v, want 10Gbps", i, got)
		}
	}
}
