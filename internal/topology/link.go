package topology

import (
	"errors"
	"fmt"
)

// LinkID identifies a directed link within a Graph. Like NodeID, link IDs
// are dense insertion-order indexes.
type LinkID int

// InvalidLink is returned by lookups that found no link.
const InvalidLink LinkID = -1

// Errors reported by bandwidth bookkeeping and graph construction.
var (
	// ErrInsufficientBandwidth is returned by Reserve when the requested
	// bandwidth exceeds the link's residual capacity.
	ErrInsufficientBandwidth = errors.New("insufficient residual bandwidth")
	// ErrOverRelease is returned by Release when more bandwidth would be
	// released than is currently reserved; it indicates a bookkeeping bug
	// in the caller.
	ErrOverRelease = errors.New("release exceeds reserved bandwidth")
	// ErrDuplicateLink is returned by AddLink when a link between the same
	// ordered node pair already exists.
	ErrDuplicateLink = errors.New("duplicate link")
	// ErrUnknownNode is returned when a NodeID is out of range for the graph.
	ErrUnknownNode = errors.New("unknown node")
	// ErrNegativeBandwidth is returned when a negative capacity or demand
	// reaches the bookkeeping layer.
	ErrNegativeBandwidth = errors.New("negative bandwidth")
	// ErrLinkDown is returned by Reserve on a failed link. Fault injection
	// marks links down; recovery marks them up again.
	ErrLinkDown = errors.New("link down")
)

// Link is a directed, capacitated edge of the network graph. Physical
// cables are modeled as two Links, one per direction, each with its own
// capacity and reservation state; flows reserve bandwidth only along their
// direction of travel.
type Link struct {
	// ID is the link's dense index within its Graph.
	ID LinkID
	// From and To are the endpoints; traffic flows From -> To.
	From NodeID
	To   NodeID
	// Capacity is the total bandwidth of the link.
	Capacity Bandwidth

	// reserved is the bandwidth currently claimed by placed flows.
	// It is manipulated exclusively through Graph.Reserve / Graph.Release
	// so that all mutation funnels through invariant checks.
	reserved Bandwidth
	// version is the graph epoch at which the link's reservation state
	// last changed. Epochs are minted by a single graph-wide counter, so
	// versions are globally unique and strictly increasing: the max
	// version over any link set changes iff some link in the set changed.
	// Probe-cost caches rely on this to validate cached estimates.
	version uint64
	// down marks a failed link (fault injection). A down link reports zero
	// residual and rejects reservations; existing reservations persist
	// until the failure handler withdraws the affected flows. State
	// changes go through Graph.SetLinkDown so they bump the epoch like any
	// other reservation-visible change.
	down bool
}

// Reserved returns the bandwidth currently reserved on the link.
func (l *Link) Reserved() Bandwidth { return l.reserved }

// Version returns the graph epoch of the link's last reservation change
// (zero if it was never touched).
func (l *Link) Version() uint64 { return l.version }

// Down reports whether the link is currently failed.
func (l *Link) Down() bool { return l.down }

// Residual returns the bandwidth still available on the link. A down link
// has no usable bandwidth, so planning and placement route around it
// without any routing-layer special casing.
func (l *Link) Residual() Bandwidth {
	if l.down {
		return 0
	}
	return l.Capacity - l.reserved
}

// Utilization returns reserved/capacity in [0,1]. A zero-capacity link
// reports utilization 0.
func (l *Link) Utilization() float64 {
	if l.Capacity == 0 {
		return 0
	}
	return float64(l.reserved) / float64(l.Capacity)
}

// String implements fmt.Stringer.
func (l *Link) String() string {
	return fmt.Sprintf("link#%d(%d->%d cap=%v used=%v)",
		int(l.ID), int(l.From), int(l.To), l.Capacity, l.reserved)
}
