package topology

import "testing"

// forkGraph builds a 3-node line x->y->z with two links.
func forkGraph(t *testing.T) (*Graph, LinkID, LinkID) {
	t.Helper()
	g := NewGraph()
	x := g.AddNode(KindEdgeSwitch, "x")
	y := g.AddNode(KindEdgeSwitch, "y")
	z := g.AddNode(KindEdgeSwitch, "z")
	l1, err := g.AddLink(x, y, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := g.AddLink(y, z, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	return g, l1, l2
}

func TestLinkVersionsFollowGlobalEpoch(t *testing.T) {
	g, l1, l2 := forkGraph(t)
	if g.Epoch() != 0 || g.Link(l1).Version() != 0 || g.Link(l2).Version() != 0 {
		t.Fatal("fresh graph must start at epoch 0 with unversioned links")
	}
	if err := g.Reserve(l1, Mbps); err != nil {
		t.Fatal(err)
	}
	if got := g.Link(l1).Version(); got != 1 {
		t.Errorf("l1 version after first reserve = %d, want 1", got)
	}
	if err := g.Release(l1, Mbps); err != nil {
		t.Fatal(err)
	}
	if got := g.Link(l1).Version(); got != 2 {
		t.Errorf("l1 version after release = %d, want 2 (releases bump too)", got)
	}
	if err := g.Reserve(l2, Mbps); err != nil {
		t.Fatal(err)
	}
	// Versions are minted from one global counter: l2's single touch must
	// outrank both of l1's, making max-over-a-set a sound change detector.
	if g.Link(l2).Version() != 3 || g.Epoch() != 3 {
		t.Errorf("l2 version = %d, epoch = %d, want 3, 3", g.Link(l2).Version(), g.Epoch())
	}
	if got := g.MaxVersion([]LinkID{l1, l2}); got != 3 {
		t.Errorf("MaxVersion(l1,l2) = %d, want 3", got)
	}
	if got := g.MaxVersion([]LinkID{l1}); got != 2 {
		t.Errorf("MaxVersion(l1) = %d, want 2", got)
	}
	if got := g.MaxVersion(nil); got != 0 {
		t.Errorf("MaxVersion(nil) = %d, want 0", got)
	}
	// Failed reservations must not mint versions: the state did not change.
	if err := g.Reserve(l1, 2*Gbps); err == nil {
		t.Fatal("overcommit reserve unexpectedly succeeded")
	}
	if g.Epoch() != 3 {
		t.Errorf("epoch after failed reserve = %d, want 3", g.Epoch())
	}
}

func TestGraphForkIsolatesReservations(t *testing.T) {
	g, l1, l2 := forkGraph(t)
	if err := g.Reserve(l1, 100*Mbps); err != nil {
		t.Fatal(err)
	}
	f := g.Fork()
	if f.Epoch() != g.Epoch() || f.Link(l1).Reserved() != 100*Mbps {
		t.Fatal("fork must start as an exact copy of the live ledger")
	}
	// Writes to the fork must not leak into the live graph, and vice versa.
	if err := f.Reserve(l2, 300*Mbps); err != nil {
		t.Fatal(err)
	}
	if got := g.Link(l2).Reserved(); got != 0 {
		t.Errorf("live l2 reserved = %v after fork write, want 0", got)
	}
	if g.Epoch() != 1 {
		t.Errorf("live epoch = %d after fork write, want 1", g.Epoch())
	}
	if err := g.Reserve(l1, 50*Mbps); err != nil {
		t.Fatal(err)
	}
	if got := f.Link(l1).Reserved(); got != 100*Mbps {
		t.Errorf("fork l1 reserved = %v after live write, want 100Mbps", got)
	}
	// SyncFrom realigns the fork with the live ledger wholesale.
	f.SyncFrom(g)
	if f.Epoch() != g.Epoch() {
		t.Errorf("fork epoch after sync = %d, want %d", f.Epoch(), g.Epoch())
	}
	if f.Link(l1).Reserved() != 150*Mbps || f.Link(l2).Reserved() != 0 {
		t.Errorf("fork ledger after sync = (%v, %v), want (150Mbps, 0)",
			f.Link(l1).Reserved(), f.Link(l2).Reserved())
	}
}
