// Package fault models failures as first-class, replayable inputs to a
// simulation run. A Script is an ordered list of Injections — link
// failures and recoveries, switch reboots, rule-install timeouts — each
// stamped with the virtual time at which it fires. An Injector walks a
// script in step with the simulator's virtual clock, so the same seed and
// the same script always produce the same failure sequence: chaos tests
// become deterministic and their traces byte-comparable.
//
// The package deliberately knows nothing about the engine. It only
// describes what should fail and when; internal/sim owns how the schedule
// reacts (withdrawing flows, minting repair events, retrying installs).
package fault

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"netupdate/internal/topology"
)

// Action names one kind of injected fault.
type Action string

const (
	// LinkDown fails a single directed link. Placed flows crossing it are
	// withdrawn and re-admitted as a repair event.
	LinkDown Action = "link-down"
	// LinkUp repairs a previously failed link.
	LinkUp Action = "link-up"
	// SwitchDown reboots a switch: every incident link goes down.
	SwitchDown Action = "switch-down"
	// SwitchUp brings a rebooted switch's links back.
	SwitchUp Action = "switch-up"
	// InstallTimeout makes the rule installs of one event time out Times
	// times before succeeding; past the engine's retry budget the event is
	// rolled back instead.
	InstallTimeout Action = "install-timeout"
)

// valid reports whether a is a known action.
func (a Action) valid() bool {
	switch a {
	case LinkDown, LinkUp, SwitchDown, SwitchUp, InstallTimeout:
		return true
	}
	return false
}

// Injection is one scheduled fault. Exactly one of Link/Node/Event is
// meaningful depending on Action. Fields are plain ints so scripts
// round-trip through JSON without custom codecs.
type Injection struct {
	// At is the virtual time at which the fault fires (nanoseconds in
	// JSON, like all trace timestamps).
	At time.Duration `json:"at"`
	// Action selects the fault kind.
	Action Action `json:"action"`
	// Link is the target link for LinkDown/LinkUp.
	Link int `json:"link,omitempty"`
	// Node is the target switch for SwitchDown/SwitchUp.
	Node int `json:"node,omitempty"`
	// Event targets InstallTimeout at a specific event ID; zero means the
	// next event to execute after the fault fires.
	Event int64 `json:"event,omitempty"`
	// Times is how many consecutive installs fail for InstallTimeout
	// (default 1). Beyond the engine's retry budget the event rolls back.
	Times int `json:"times,omitempty"`
}

// Validate checks the injection against a topology of numNodes nodes and
// numLinks links.
func (inj Injection) Validate(numNodes, numLinks int) error {
	if inj.At < 0 {
		return fmt.Errorf("fault at %v: negative time", inj.At)
	}
	if !inj.Action.valid() {
		return fmt.Errorf("fault at %v: unknown action %q", inj.At, inj.Action)
	}
	switch inj.Action {
	case LinkDown, LinkUp:
		if inj.Link < 0 || inj.Link >= numLinks {
			return fmt.Errorf("fault %s at %v: link %d out of range [0,%d)",
				inj.Action, inj.At, inj.Link, numLinks)
		}
	case SwitchDown, SwitchUp:
		if inj.Node < 0 || inj.Node >= numNodes {
			return fmt.Errorf("fault %s at %v: node %d out of range [0,%d)",
				inj.Action, inj.At, inj.Node, numNodes)
		}
	case InstallTimeout:
		if inj.Times < 0 {
			return fmt.Errorf("fault %s at %v: negative times %d", inj.Action, inj.At, inj.Times)
		}
		if inj.Event < 0 {
			return fmt.Errorf("fault %s at %v: negative event %d", inj.Action, inj.At, inj.Event)
		}
	}
	return nil
}

// TargetLinks resolves a link or switch injection to the set of links it
// flips, plus the kind label of the repair event a failure may mint
// ("link-repair" / "switch-repair"). Other actions return nil.
func (inj Injection) TargetLinks(g *topology.Graph) ([]topology.LinkID, string) {
	switch inj.Action {
	case LinkDown, LinkUp:
		return []topology.LinkID{topology.LinkID(inj.Link)}, "link-repair"
	case SwitchDown, SwitchUp:
		return g.IncidentLinks(topology.NodeID(inj.Node)), "switch-repair"
	}
	return nil, ""
}

// Script is a fault schedule. Order within equal timestamps is
// preserved, so a script is itself part of the deterministic input.
type Script []Injection

// Validate checks every injection against the topology bounds.
func (s Script) Validate(numNodes, numLinks int) error {
	for i, inj := range s {
		if err := inj.Validate(numNodes, numLinks); err != nil {
			return fmt.Errorf("script[%d]: %w", i, err)
		}
	}
	return nil
}

// Sorted returns a copy of the script stably sorted by firing time.
func (s Script) Sorted() Script {
	out := make(Script, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// WriteTo serializes the script as JSONL, one injection per line.
func (s Script) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, inj := range s {
		if err := enc.Encode(inj); err != nil {
			return 0, err
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ParseScript reads a JSONL fault script. Blank lines are skipped;
// malformed lines or unknown actions are errors.
func ParseScript(r io.Reader) (Script, error) {
	var s Script
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var inj Injection
		if err := json.Unmarshal(raw, &inj); err != nil {
			return nil, fmt.Errorf("fault script line %d: %w", line, err)
		}
		if !inj.Action.valid() {
			return nil, fmt.Errorf("fault script line %d: unknown action %q", line, inj.Action)
		}
		s = append(s, inj)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fault script: %w", err)
	}
	return s, nil
}

// Injector walks a script in virtual-time order. It is driven by the
// simulator's single-threaded loop; it is not safe for concurrent use.
type Injector struct {
	script Script
	next   int
}

// NewInjector returns an injector over the script, stably sorted by time.
func NewInjector(s Script) *Injector {
	return &Injector{script: s.Sorted()}
}

// Due returns the injections with At <= now that have not fired yet, in
// script order, and marks them fired.
func (in *Injector) Due(now time.Duration) []Injection {
	start := in.next
	for in.next < len(in.script) && in.script[in.next].At <= now {
		in.next++
	}
	if in.next == start {
		return nil
	}
	return in.script[start:in.next]
}

// NextAt returns the firing time of the next pending injection, if any.
func (in *Injector) NextAt() (time.Duration, bool) {
	if in.next >= len(in.script) {
		return 0, false
	}
	return in.script[in.next].At, true
}

// Remaining returns the number of injections that have not fired.
func (in *Injector) Remaining() int { return len(in.script) - in.next }

// RandomScript generates a deterministic script of n link failure +
// recovery pairs on the fabric (switch-to-switch) links of g. Failures
// are uniform over [0, horizon); each repair follows its failure by
// mttr/2 + U[0, mttr). The same seed and graph always yield the same
// script. It returns nil when the graph has no fabric links.
func RandomScript(seed int64, g *topology.Graph, n int, horizon, mttr time.Duration) Script {
	var fabric []topology.LinkID
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		if g.Node(l.From).Kind.IsSwitch() && g.Node(l.To).Kind.IsSwitch() {
			fabric = append(fabric, l.ID)
		}
	}
	if len(fabric) == 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var s Script
	for i := 0; i < n; i++ {
		link := int(fabric[rng.Intn(len(fabric))])
		downAt := time.Duration(rng.Int63n(int64(horizon)))
		upAt := downAt + mttr/2 + time.Duration(rng.Int63n(int64(mttr)))
		s = append(s,
			Injection{At: downAt, Action: LinkDown, Link: link},
			Injection{At: upAt, Action: LinkUp, Link: link},
		)
	}
	return s.Sorted()
}
