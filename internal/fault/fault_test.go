package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"netupdate/internal/topology"
)

func TestInjectionValidate(t *testing.T) {
	tests := []struct {
		name    string
		inj     Injection
		wantErr bool
	}{
		{"link down ok", Injection{At: time.Second, Action: LinkDown, Link: 3}, false},
		{"link out of range", Injection{Action: LinkUp, Link: 10}, true},
		{"negative link", Injection{Action: LinkDown, Link: -1}, true},
		{"switch ok", Injection{Action: SwitchDown, Node: 4}, false},
		{"switch out of range", Injection{Action: SwitchUp, Node: 5}, true},
		{"timeout ok", Injection{Action: InstallTimeout, Event: 7, Times: 2}, false},
		{"timeout negative times", Injection{Action: InstallTimeout, Times: -1}, true},
		{"unknown action", Injection{Action: "nuke"}, true},
		{"negative time", Injection{At: -1, Action: LinkDown}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.inj.Validate(5, 10)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestInjectorFiresInOrderOnce(t *testing.T) {
	in := NewInjector(Script{
		{At: 30 * time.Millisecond, Action: LinkUp, Link: 1},
		{At: 10 * time.Millisecond, Action: LinkDown, Link: 1},
		{At: 10 * time.Millisecond, Action: InstallTimeout, Event: 2},
	})
	if at, ok := in.NextAt(); !ok || at != 10*time.Millisecond {
		t.Fatalf("NextAt() = %v, %v; want 10ms, true", at, ok)
	}
	if due := in.Due(5 * time.Millisecond); due != nil {
		t.Fatalf("Due(5ms) = %v, want nil", due)
	}
	due := in.Due(10 * time.Millisecond)
	if len(due) != 2 || due[0].Action != LinkDown || due[1].Action != InstallTimeout {
		t.Fatalf("Due(10ms) = %v, want [link-down install-timeout]", due)
	}
	// Already fired injections never fire again.
	if again := in.Due(10 * time.Millisecond); again != nil {
		t.Fatalf("repeated Due(10ms) = %v, want nil", again)
	}
	if got := in.Remaining(); got != 1 {
		t.Errorf("Remaining() = %d, want 1", got)
	}
	if due := in.Due(time.Second); len(due) != 1 || due[0].Action != LinkUp {
		t.Fatalf("Due(1s) = %v, want the link-up", due)
	}
	if _, ok := in.NextAt(); ok {
		t.Error("NextAt() reports pending work on a drained injector")
	}
}

func TestScriptJSONLRoundTrip(t *testing.T) {
	s := Script{
		{At: time.Millisecond, Action: LinkDown, Link: 7},
		{At: 2 * time.Millisecond, Action: InstallTimeout, Event: 3, Times: 2},
		{At: 5 * time.Millisecond, Action: SwitchDown, Node: 1},
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ParseScript(&buf)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip = %+v, want %+v", got, s)
	}
}

func TestParseScriptRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{"at": 1, "action": "meteor-strike"}`,
		`not json`,
		`{"at": "soon", "action": "link-down"}`,
	} {
		if _, err := ParseScript(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseScript(%q) succeeded, want error", bad)
		}
	}
	// Blank lines are fine.
	s, err := ParseScript(strings.NewReader("\n\n{\"at\":1,\"action\":\"link-up\"}\n\n"))
	if err != nil || len(s) != 1 {
		t.Errorf("ParseScript with blanks = %v, %v; want 1 injection", s, err)
	}
}

func TestRandomScriptDeterministicAndValid(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	a := RandomScript(42, g, 5, time.Second, 100*time.Millisecond)
	b := RandomScript(42, g, 5, time.Second, 100*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scripts")
	}
	c := RandomScript(43, g, 5, time.Second, 100*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical scripts")
	}
	if len(a) != 10 {
		t.Fatalf("script length = %d, want 10 (5 down/up pairs)", len(a))
	}
	if err := a.Validate(g.NumNodes(), g.NumLinks()); err != nil {
		t.Errorf("generated script invalid: %v", err)
	}
	downs := 0
	for i, inj := range a {
		if i > 0 && a[i-1].At > inj.At {
			t.Fatalf("script not sorted at %d", i)
		}
		// Only fabric links fail.
		l := g.Link(topology.LinkID(inj.Link))
		if !g.Node(l.From).Kind.IsSwitch() || !g.Node(l.To).Kind.IsSwitch() {
			t.Errorf("injection %d targets non-fabric link %v", i, l)
		}
		if inj.Action == LinkDown {
			downs++
		}
	}
	if downs != 5 {
		t.Errorf("down injections = %d, want 5", downs)
	}
}
