package migration

import (
	"fmt"

	"netupdate/internal/flow"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// Two-splittable migration (an extension after Foerster & Wattenhofer
// [18], the paper's related work): when a victim flow has no single
// detour with enough residual bandwidth, it may instead be split across
// two detours whose residuals together cover its demand. The original
// flow is withdrawn and replaced by two child flows; rollback removes the
// children and restores the original placement.
//
// Only background flows (flow.NoEvent) are split: event flows are tracked
// by the simulator's release heap under their original identity and must
// stay whole.

// SetAllowSplit enables two-splittable migration as a fallback when no
// single detour fits a victim.
func (p *Planner) SetAllowSplit(allow bool) { p.allowSplit = allow }

// splitMove records a split for rollback: the original flow's placement
// and the two children standing in for it.
type splitMove struct {
	original *flow.Flow
	oldPath  routing.Path
	children [2]*flow.Flow
}

// trySplit migrates victim off the congested links by splitting it over
// two acceptable detours. On success the children are placed, the victim
// withdrawn, and a Move (with split bookkeeping) appended to res.
func (p *Planner) trySplit(victim, trigger *flow.Flow, desired routing.Path, congested []topology.LinkID, res *Result) bool {
	if !p.allowSplit || victim.Event != flow.NoEvent {
		return false
	}
	g := p.net.Graph()
	old := victim.Path()

	// Gather acceptable detours with their usable headroom, mirroring
	// detourFor's constraints (avoid congested links; keep room for the
	// triggering flow on shared desired-path links). The victim's own
	// reservation is NOT credited: the two children must fit alongside it
	// until it is withdrawn, and computing against live state keeps the
	// placement order below safe.
	type option struct {
		path routing.Path
		room topology.Bandwidth
	}
	var options []option
scan:
	for _, q := range p.net.Candidates(victim) {
		res.Evals++
		if q.Equal(old) {
			continue
		}
		for _, l := range congested {
			if q.Contains(l) {
				continue scan
			}
		}
		room := topology.Bandwidth(1<<62 - 1)
		for _, l := range q.Links() {
			r := g.Link(l).Residual()
			if old.Contains(l) {
				r += victim.Demand // freed once the victim is withdrawn
			}
			if desired.Contains(l) {
				r -= trigger.Demand
			}
			if r < room {
				room = r
			}
		}
		if room <= 0 {
			continue
		}
		options = append(options, option{path: q, room: room})
	}
	if len(options) < 2 {
		return false
	}
	// Pick the two roomiest (they may share links — headroom computed
	// per-path may double count; re-verify after the first child lands).
	best, second := -1, -1
	for i, o := range options {
		switch {
		case best == -1 || o.room > options[best].room:
			best, second = i, best
		case second == -1 || o.room > options[second].room:
			second = i
		}
	}
	if options[best].room+options[second].room < victim.Demand {
		return false
	}

	// Withdraw the victim first so its bandwidth is free for the children;
	// on any failure, restore it (its old reservations are still free).
	if err := p.net.Withdraw(victim); err != nil {
		return false
	}
	restore := func() {
		if err := p.net.Place(victim, old); err != nil {
			panic(fmt.Sprintf("migration: restoring split victim: %v", err))
		}
	}
	d1 := options[best].room
	if d1 > victim.Demand {
		d1 = victim.Demand
	}
	d2 := victim.Demand - d1
	if d2 == 0 {
		// The roomiest path alone fits once the victim's own reservation
		// is released — a plain detour, cheaper than a split.
		restore()
		return false
	}

	child1, err := p.placeChild(victim, d1, options[best].path)
	if err != nil {
		restore()
		return false
	}
	child2, err := p.placeChild(victim, d2, options[second].path)
	if err != nil {
		if rmErr := p.net.Remove(child1); rmErr != nil {
			panic(fmt.Sprintf("migration: unwinding split child: %v", rmErr))
		}
		restore()
		return false
	}
	res.Moves = append(res.Moves, Move{
		Flow: victim,
		From: old,
		To:   options[best].path,
		split: &splitMove{
			original: victim,
			oldPath:  old,
			children: [2]*flow.Flow{child1, child2},
		},
	})
	res.MigratedTraffic += victim.Demand
	return true
}

// placeChild registers and places one fragment of a split victim.
func (p *Planner) placeChild(victim *flow.Flow, demand topology.Bandwidth, path routing.Path) (*flow.Flow, error) {
	child, err := p.net.AddFlow(flow.Spec{
		Src:    victim.Src,
		Dst:    victim.Dst,
		Demand: demand,
		Size:   victim.Size / 2,
		Event:  victim.Event,
	})
	if err != nil {
		return nil, err
	}
	if err := p.net.Place(child, path); err != nil {
		if rmErr := p.net.Remove(child); rmErr != nil {
			panic(fmt.Sprintf("migration: removing failed child: %v", rmErr))
		}
		return nil, err
	}
	return child, nil
}

// undoSplit reverses a split move: children removed, victim re-placed.
func (p *Planner) undoSplit(sm *splitMove) {
	for _, child := range sm.children {
		if err := p.net.Remove(child); err != nil {
			panic(fmt.Sprintf("migration: removing split child: %v", err))
		}
	}
	if err := p.net.Place(sm.original, sm.oldPath); err != nil {
		panic(fmt.Sprintf("migration: restoring split victim: %v", err))
	}
}
