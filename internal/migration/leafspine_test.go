package migration_test

import (
	"errors"
	"math/rand"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// TestAdmitOnLeafSpineWithYen exercises the migration slow path on a
// non-fat-tree fabric routed by Yen k-shortest paths: load the spine
// trunks unevenly, then admit flows that need victims migrated.
func TestAdmitOnLeafSpineWithYen(t *testing.T) {
	ls, err := topology.NewLeafSpine(4, 2, 3, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g := ls.Graph()
	net := netstate.New(g, routing.NewKShortestProvider(g, 6), routing.NewRandomFit(3))

	// Load with random flows until moderately full.
	rng := rand.New(rand.NewSource(8))
	hosts := ls.Hosts()
	placed := 0
	for i := 0; i < 400; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := src
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		f, err := net.AddFlow(flow.Spec{
			Src: src, Dst: dst,
			Demand: topology.Bandwidth(10+rng.Intn(90)) * topology.Mbps,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.PlaceBest(f); err != nil {
			if rmErr := net.Remove(f); rmErr != nil {
				t.Fatal(rmErr)
			}
			continue
		}
		placed++
	}
	if net.Utilization() < 0.3 {
		t.Fatalf("fabric underloaded: %.2f", net.Utilization())
	}

	p := migration.NewPlanner(net, 0)
	admitted, migrated, failed := 0, 0, 0
	for i := 0; i < 150; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := src
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		f, err := net.AddFlow(flow.Spec{
			Src: src, Dst: dst,
			Demand: topology.Bandwidth(50+rng.Intn(150)) * topology.Mbps,
			Event:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, admitErr := p.Admit(f)
		switch {
		case admitErr == nil:
			admitted++
			if len(res.Moves) > 0 {
				migrated++
			}
		case errors.Is(admitErr, migration.ErrCannotAdmit) || errors.Is(admitErr, netstate.ErrNoFeasiblePath):
			failed++
			if err := net.Remove(f); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected error: %v", admitErr)
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted on leaf-spine")
	}
	if migrated == 0 {
		t.Error("no slow-path migration exercised on leaf-spine (adjust load)")
	}
	// Congestion-freedom held.
	for i := 0; i < g.NumLinks(); i++ {
		if l := g.Link(topology.LinkID(i)); l.Residual() < 0 {
			t.Fatalf("link %v over capacity", l)
		}
	}
	t.Logf("leaf-spine: placed=%d admitted=%d migrated=%d failed=%d util=%.2f",
		placed, admitted, migrated, failed, net.Utilization())
}
