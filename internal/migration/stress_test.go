package migration_test

import (
	"errors"
	"math/rand"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// stressEnv builds a loaded k=4 fat-tree with random-fit placement (hot
// links) so admissions regularly exercise the migration slow path.
func stressEnv(t *testing.T, seed int64, util float64) (*netstate.Network, *trace.Generator) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(seed+7))
	gen, err := trace.NewGenerator(seed, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net, gen, util, 0); err != nil {
		t.Fatal(err)
	}
	return net, gen
}

// checkInvariants asserts the global safety properties of the network.
func checkInvariants(t *testing.T, net *netstate.Network) {
	t.Helper()
	g := net.Graph()
	// 1. Congestion-freedom: no link over capacity.
	reserved := make(map[topology.LinkID]topology.Bandwidth)
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(topology.LinkID(i))
		if l.Residual() < 0 {
			t.Fatalf("link %v over capacity", l)
		}
		reserved[l.ID] = l.Reserved()
	}
	// 2. Ledger = sum of placed flows' demands per link.
	sums := make(map[topology.LinkID]topology.Bandwidth)
	for _, f := range net.Registry().Placed() {
		for _, l := range f.Path().Links() {
			sums[l] += f.Demand
		}
	}
	for id, want := range reserved {
		if got := sums[id]; got != want {
			t.Fatalf("link %d: ledger %v != placed-flow sum %v", int(id), want, got)
		}
	}
}

// TestAdmitStress drives hundreds of admissions at several utilizations
// and strategies, checking invariants after every operation class.
func TestAdmitStress(t *testing.T) {
	for _, util := range []float64{0.3, 0.5, 0.65} {
		for _, strategy := range []migration.Strategy{migration.StrategyDensity, migration.StrategySmallest, migration.StrategyLargest} {
			net, gen := stressEnv(t, int64(util*100)+int64(strategy), util)
			p := migration.NewPlanner(net, strategy)
			rng := rand.New(rand.NewSource(99))

			admitted, migrated, failed := 0, 0, 0
			var live []*flow.Flow
			for i := 0; i < 300; i++ {
				spec := gen.Spec()
				spec.Event = flow.EventID(i%7 + 1)
				f, err := net.AddFlow(spec)
				if err != nil {
					t.Fatal(err)
				}
				res, admitErr := p.Admit(f)
				switch {
				case admitErr == nil:
					admitted++
					if len(res.Moves) > 0 {
						migrated++
					}
					live = append(live, f)
				case errors.Is(admitErr, migration.ErrCannotAdmit) || errors.Is(admitErr, netstate.ErrNoFeasiblePath):
					failed++
					if err := net.Remove(f); err != nil {
						t.Fatal(err)
					}
				default:
					t.Fatalf("unexpected admit error: %v", admitErr)
				}
				// Occasionally retire an admitted flow.
				if len(live) > 0 && rng.Intn(4) == 0 {
					j := rng.Intn(len(live))
					if err := net.Remove(live[j]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:j], live[j+1:]...)
				}
			}
			checkInvariants(t, net)
			if admitted == 0 {
				t.Errorf("util %.2f %v: nothing admitted", util, strategy)
			}
			if util >= 0.6 && migrated == 0 {
				t.Errorf("util %.2f %v: no admission required migration (slow path untested)", util, strategy)
			}
			t.Logf("util %.2f %v: admitted=%d (with migration %d) failed=%d",
				util, strategy, admitted, migrated, failed)
		}
	}
}

// TestProbeStressLeavesStateIntact runs admit+rollback cycles and checks
// the state is byte-identical each time.
func TestProbeStressLeavesStateIntact(t *testing.T) {
	net, gen := stressEnv(t, 5, 0.6)
	g := net.Graph()
	p := migration.NewPlanner(net, 0)

	before := make([]topology.Bandwidth, g.NumLinks())
	for i := range before {
		before[i] = g.Link(topology.LinkID(i)).Reserved()
	}
	regBefore := net.Registry().Len()
	pathsBefore := make(map[flow.ID]routingPathKey)
	for _, f := range net.Registry().Placed() {
		pathsBefore[f.ID] = pathKey(f)
	}

	for i := 0; i < 200; i++ {
		spec := gen.Spec()
		spec.Event = 1
		f, err := net.AddFlow(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res, admitErr := p.Admit(f); admitErr == nil {
			if err := p.Rollback(res); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.Remove(f); err != nil {
			t.Fatal(err)
		}
	}

	for i := range before {
		if got := g.Link(topology.LinkID(i)).Reserved(); got != before[i] {
			t.Fatalf("link %d reserved drifted: %v != %v", i, got, before[i])
		}
	}
	if got := net.Registry().Len(); got != regBefore {
		t.Fatalf("registry drifted: %d != %d", got, regBefore)
	}
	for _, f := range net.Registry().Placed() {
		if pathKey(f) != pathsBefore[f.ID] {
			t.Fatalf("flow %v path drifted", f)
		}
	}
}

// routingPathKey is a comparable digest of a path's link sequence.
type routingPathKey string

func pathKey(f *flow.Flow) routingPathKey {
	key := make([]byte, 0, 4*f.Path().Len())
	for _, l := range f.Path().Links() {
		key = append(key, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return routingPathKey(key)
}
