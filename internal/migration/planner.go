// Package migration implements the paper's core optimization: admitting a
// flow whose desired path is congested by locally migrating a small set of
// existing flows off the congested links (Definition 1, Section IV-A).
//
// Choosing the minimum-traffic migration set is NP-complete (a weighted
// covering problem: the freed bandwidth on every congested link must cover
// that link's deficit). The Planner approximates it greedily; three
// interchangeable heuristics are provided so the choice can be ablated.
package migration

import (
	"errors"
	"fmt"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// ErrCannotAdmit is returned when no migration set can free enough
// bandwidth for the flow — some congested link's deficit is uncoverable.
var ErrCannotAdmit = errors.New("cannot admit flow even with migration")

// Strategy selects which candidate flow the greedy loop migrates next.
type Strategy int

// Greedy strategies, ablated by BenchmarkAblationGreedy.
const (
	// StrategyDensity picks the flow with the best ratio of deficit
	// coverage to migrated traffic — the classic greedy set-cover rule
	// and the default.
	StrategyDensity Strategy = iota + 1
	// StrategySmallest always migrates the smallest-demand useful flow,
	// minimizing per-move disturbance.
	StrategySmallest
	// StrategyLargest always migrates the largest-demand useful flow,
	// minimizing the number of moves.
	StrategyLargest
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyDensity:
		return "density"
	case StrategySmallest:
		return "smallest"
	case StrategyLargest:
		return "largest"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DesiredPolicy selects how the desired path of a flow being admitted is
// chosen from its candidate set P(f) (Definition 1 examines the congested
// links of the desired path).
type DesiredPolicy int

const (
	// DesiredHash pins each flow to an ECMP-hash-selected member of P(f),
	// like a statically configured data center: when that path lacks
	// capacity the flow needs migration even if other paths have room.
	// This is the regime of the paper's Fig. 1, where the probability of
	// accommodating a flow without migration falls steeply with
	// utilization, and it is the default.
	DesiredHash DesiredPolicy = iota + 1
	// DesiredWidest picks the currently widest candidate, modeling an
	// ideal load-aware routing layer that resorts to migration only when
	// every candidate path is full. With the path diversity of a fat-tree
	// this makes migration vanishingly rare.
	DesiredWidest
)

// Move records one applied migration: flow moved From -> To. When the
// move split the flow over two paths (SetAllowSplit), To is the first
// fragment's path and Split reports true.
type Move struct {
	Flow *flow.Flow
	From routing.Path
	To   routing.Path

	// split carries the bookkeeping to reverse a two-splittable move.
	split *splitMove
}

// Split reports whether this move split the flow across two paths.
func (m Move) Split() bool { return m.split != nil }

// Result describes a successful admission. All moves listed have already
// been applied to the network, and the triggering flow is placed on Path.
type Result struct {
	// Flow is the admitted flow.
	Flow *flow.Flow
	// Path is where the flow was placed.
	Path routing.Path
	// Moves lists the migrations applied, in application order.
	Moves []Move
	// MigratedTraffic is the sum of the demands of all migrated flows —
	// this admission's contribution to Cost(U) (Definition 2).
	MigratedTraffic topology.Bandwidth
	// Evals counts path/flow feasibility evaluations performed while
	// planning; the simulator charges plan time proportional to it.
	Evals int
	// Touched, when touched-link tracking is enabled (SetTrackTouched),
	// conservatively over-approximates the links whose reservation state
	// this admission read: every link of every candidate path of the
	// triggering flow, plus every link of every candidate path of each
	// migration victim considered. If none of these links changed, a
	// repeat of the admission plan is guaranteed to produce the same
	// result — the soundness condition of the probe-cost cache. Entries
	// may repeat; callers dedup.
	Touched []topology.LinkID
}

// Planner admits flows into a Network, migrating existing flows when
// needed. The zero value is not usable; construct with NewPlanner.
type Planner struct {
	net        *netstate.Network
	strategy   Strategy
	desired    DesiredPolicy
	allowSplit bool
	// trackTouched makes Admit record the links it reads in
	// Result.Touched (probe-cost caching needs the read set).
	trackTouched bool
}

// NewPlanner returns a Planner over the given network. strategy 0 defaults
// to StrategyDensity; the desired-path policy defaults to DesiredHash.
func NewPlanner(net *netstate.Network, strategy Strategy) *Planner {
	if strategy == 0 {
		strategy = StrategyDensity
	}
	return &Planner{net: net, strategy: strategy, desired: DesiredHash}
}

// SetDesiredPolicy overrides how flows' desired paths are chosen.
func (p *Planner) SetDesiredPolicy(policy DesiredPolicy) { p.desired = policy }

// DesiredPolicy returns the active desired-path policy.
func (p *Planner) DesiredPolicy() DesiredPolicy { return p.desired }

// SetTrackTouched enables recording of the links each admission reads in
// Result.Touched. Probe engines turn this on for their fork planners so
// cached cost estimates can be invalidated precisely.
func (p *Planner) SetTrackTouched(track bool) { p.trackTouched = track }

// Network returns the planner's network.
func (p *Planner) Network() *netstate.Network { return p.net }

// CloneFor returns a planner with this planner's exact configuration
// (greedy strategy, desired-path policy, split and tracking settings)
// bound to a different network — typically a probe fork of this
// planner's network.
func (p *Planner) CloneFor(net *netstate.Network) *Planner {
	return &Planner{
		net:          net,
		strategy:     p.strategy,
		desired:      p.desired,
		allowSplit:   p.allowSplit,
		trackTouched: p.trackTouched,
	}
}

// Admit places f into the network, applying migrations if its candidate
// paths lack capacity. On success the returned Result reflects the applied
// state; on failure the network is unchanged and the error wraps either
// netstate.ErrNoFeasiblePath (no candidates at all) or ErrCannotAdmit.
// Even on failure the Result is returned (with no moves) so callers can
// account for the planning work in Result.Evals.
func (p *Planner) Admit(f *flow.Flow) (*Result, error) {
	res := &Result{Flow: f}

	candidates := p.net.Candidates(f)
	res.Evals += len(candidates)
	if p.trackTouched {
		for _, q := range candidates {
			res.Touched = append(res.Touched, q.Links()...)
		}
	}
	if len(candidates) == 0 {
		return res, fmt.Errorf("admit %v: no candidate paths: %w", f, netstate.ErrNoFeasiblePath)
	}
	desired := p.desiredPath(f, candidates)

	// Fast path: the desired path already has room.
	if desired.Fits(p.net.Graph(), f.Demand) {
		if err := p.net.Place(f, desired); err != nil {
			return res, fmt.Errorf("admit %v: %w", f, err)
		}
		res.Path = desired
		return res, nil
	}

	// Slow path: free the desired path's congested links by migrating
	// existing flows (Definition 1).
	if err := p.freeCapacity(f, desired, res); err != nil {
		p.rollback(res)
		return res, err
	}
	if err := p.net.Place(f, desired); err != nil {
		// freeCapacity guarantees every deficit is covered, so a failure
		// here means the invariant broke; undo and report loudly.
		p.rollback(res)
		return res, fmt.Errorf("admit %v: placement after migration failed: %w", f, err)
	}
	res.Path = desired
	return res, nil
}

// Rollback undoes an Admit: the flow is withdrawn and every migrated flow
// returns to its original path (in reverse order, which is always
// feasible because it exactly reverses the applied reservations).
// It is used by trial planning (cost estimation) and by event-level
// rollback when a later flow of the same event cannot be admitted.
func (p *Planner) Rollback(res *Result) error {
	if res.Flow.Placed() {
		if err := p.net.Withdraw(res.Flow); err != nil {
			return fmt.Errorf("rollback %v: %w", res.Flow, err)
		}
	}
	p.rollback(res)
	return nil
}

// rollback reverses the moves of res (the triggering flow must already be
// unplaced). Failures indicate ledger corruption and panic.
func (p *Planner) rollback(res *Result) {
	for i := len(res.Moves) - 1; i >= 0; i-- {
		m := res.Moves[i]
		if m.split != nil {
			p.undoSplit(m.split)
			continue
		}
		if err := p.net.Reroute(m.Flow, m.From); err != nil {
			panic(fmt.Sprintf("migration: rollback of %v failed: %v", m.Flow, err))
		}
	}
	res.Moves = nil
	res.MigratedTraffic = 0
}

// freeCapacity migrates existing flows until every congested link of the
// desired path has at least f.Demand residual. Applied moves are appended
// to res; on error the caller rolls back.
func (p *Planner) freeCapacity(f *flow.Flow, desired routing.Path, res *Result) error {
	g := p.net.Graph()
	congested := desired.CongestedLinks(g, f.Demand)
	if len(congested) == 0 {
		return nil
	}
	// deficit[l] is how much bandwidth must still be freed on link l.
	deficit := make(map[topology.LinkID]topology.Bandwidth, len(congested))
	for _, l := range congested {
		deficit[l] = f.Demand - g.Link(l).Residual()
	}

	candidates := p.net.FlowsAcross(congested, f.Event)
	res.Evals += len(candidates)
	// Pre-filter to flows that are topologically detourable: a victim
	// pinned to every congested link (e.g. the link is its own host access
	// link, which every one of its paths crosses) can never free capacity,
	// and skipping it here keeps uncoverable deficits cheap to detect —
	// important because saturated access links are common at high
	// utilization and are exactly the unfixable case.
	usable := make([]*flow.Flow, 0, len(candidates))
	for _, cand := range candidates {
		if p.trackTouched {
			// Every candidate victim's candidate-path links are read below
			// (detour scans) and their occupancy determined which victims
			// appeared at all; record them for cache invalidation.
			for _, q := range p.net.Candidates(cand) {
				res.Touched = append(res.Touched, q.Links()...)
			}
		}
		if p.detourable(cand, congested, res) {
			usable = append(usable, cand)
		}
	}

	for remaining(deficit) {
		best := p.pickCandidate(usable, deficit, res)
		if best == -1 {
			return fmt.Errorf("admit %v: deficits %v uncovered: %w", f, deficitSummary(deficit), ErrCannotAdmit)
		}
		victim := usable[best]
		usable = append(usable[:best:best], usable[best+1:]...)

		oldPath := victim.Path()
		if newPath, ok := p.detourFor(victim, f, desired, congested, res); ok {
			if err := p.net.Reroute(victim, newPath); err != nil {
				// detourFor verified feasibility against live state, so
				// this only races with our own bookkeeping — unusable.
				continue
			}
			res.Moves = append(res.Moves, Move{Flow: victim, From: oldPath, To: newPath})
			res.MigratedTraffic += victim.Demand
		} else if !p.trySplit(victim, f, desired, congested, res) {
			continue // unmigratable; the greedy loop tries the next flow
		}
		for _, l := range congested {
			if _, ok := deficit[l]; !ok {
				continue
			}
			if oldPath.Contains(l) {
				deficit[l] -= victim.Demand
				if deficit[l] <= 0 {
					delete(deficit, l)
				}
			}
		}
	}
	return nil
}

// pickCandidate returns the index of the next flow to migrate according to
// the strategy, or -1 when no remaining candidate covers any deficit.
func (p *Planner) pickCandidate(usable []*flow.Flow, deficit map[topology.LinkID]topology.Bandwidth, res *Result) int {
	best := -1
	var bestScore float64
	for i, cand := range usable {
		res.Evals++
		cover := coverage(cand, deficit)
		if cover == 0 {
			continue
		}
		var score float64
		switch p.strategy {
		case StrategySmallest:
			score = -float64(cand.Demand)
		case StrategyLargest:
			score = float64(cand.Demand)
		default: // StrategyDensity
			score = float64(cover) / float64(cand.Demand)
		}
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// coverage is how much of the outstanding deficits migrating cand away
// would satisfy: min(demand, deficit) summed over the congested links the
// flow currently crosses.
func coverage(cand *flow.Flow, deficit map[topology.LinkID]topology.Bandwidth) topology.Bandwidth {
	var total topology.Bandwidth
	for l, d := range deficit {
		if cand.Path().Contains(l) {
			if cand.Demand < d {
				total += cand.Demand
			} else {
				total += d
			}
		}
	}
	return total
}

// desiredPath applies the desired-path policy to a non-empty candidate set.
func (p *Planner) desiredPath(f *flow.Flow, candidates []routing.Path) routing.Path {
	if p.desired == DesiredWidest {
		path, _, _ := routing.Widest(p.net.Graph(), candidates)
		return path
	}
	return candidates[specHash(f)%uint64(len(candidates))]
}

// specHash hashes the flow's immutable identity (FNV-1a over src, dst,
// demand, size, event). The registry-assigned flow ID is deliberately
// excluded so that probing an event and later executing it pin each flow
// to the same desired path, the way a 5-tuple ECMP hash would.
func specHash(f *flow.Flow) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [...]uint64{
		uint64(f.Src), uint64(f.Dst), uint64(f.Demand), uint64(f.Size), uint64(f.Event),
	} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return h
}

// detourable reports whether the victim has any candidate path that avoids
// every congested link — a pure topology check, ignoring bandwidth.
func (p *Planner) detourable(victim *flow.Flow, congested []topology.LinkID, res *Result) bool {
	old := victim.Path()
scan:
	for _, q := range p.net.Candidates(victim) {
		res.Evals++
		if q.Equal(old) {
			continue
		}
		for _, l := range congested {
			if q.Contains(l) {
				continue scan
			}
		}
		return true
	}
	return false
}

// detourFor finds a new path for victim that (a) avoids every congested
// link, (b) fits victim's demand once its own reservations are released,
// and (c) leaves room for the triggering flow on any shared link of the
// desired path — so migrations can never re-congest the path they are
// clearing (constraint (5) of the paper, strengthened to avoid oscillation).
func (p *Planner) detourFor(victim, trigger *flow.Flow, desired routing.Path, congested []topology.LinkID, res *Result) (routing.Path, bool) {
	g := p.net.Graph()
	old := victim.Path()
	candidates := p.net.Candidates(victim)

	best := -1
	var bestResidual topology.Bandwidth
scan:
	for i, q := range candidates {
		res.Evals++
		if q.Equal(old) {
			continue
		}
		for _, l := range congested {
			if q.Contains(l) {
				continue scan
			}
		}
		bottleneck := topology.Bandwidth(1<<62 - 1)
		for _, l := range q.Links() {
			r := g.Link(l).Residual()
			if old.Contains(l) {
				r += victim.Demand // own reservation will be released
			}
			if desired.Contains(l) {
				r -= trigger.Demand // keep headroom for the new flow
			}
			if r < bottleneck {
				bottleneck = r
			}
		}
		if bottleneck < victim.Demand {
			continue
		}
		if best == -1 || bottleneck > bestResidual {
			best, bestResidual = i, bottleneck
		}
	}
	if best == -1 {
		return routing.Path{}, false
	}
	return candidates[best], true
}

// remaining reports whether any deficit is still positive.
func remaining(deficit map[topology.LinkID]topology.Bandwidth) bool {
	return len(deficit) > 0
}

// deficitSummary renders outstanding deficits for error messages.
func deficitSummary(deficit map[topology.LinkID]topology.Bandwidth) string {
	var total topology.Bandwidth
	for _, d := range deficit {
		total += d
	}
	return fmt.Sprintf("%d links short %v total", len(deficit), total)
}
