package migration

import (
	"errors"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// splitScenario: the 800 Mbps victim on the u->v bottleneck has two
// detours of only 500 Mbps capacity each — no single detour fits, but a
// two-way split does.
//
//	a -> u -> v -> b          (event flow route, 1 Gbps)
//	c -> u -> v -> d          (victim, 800 Mbps)
//	c -> w1 -> d, c -> w2 -> d (500 Mbps detours)
func splitScenario(t *testing.T) (*netstate.Network, *topology.Graph, *flow.Flow, topology.NodeID, topology.NodeID, topology.LinkID) {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	c := g.AddNode(topology.KindHost, "c")
	d := g.AddNode(topology.KindHost, "d")
	u := g.AddNode(topology.KindEdgeSwitch, "u")
	v := g.AddNode(topology.KindEdgeSwitch, "v")
	link := func(x, y topology.NodeID, cap_ topology.Bandwidth) topology.LinkID {
		id, err := g.AddLink(x, y, cap_)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	link(a, u, topology.Gbps)
	uv := link(u, v, topology.Gbps)
	link(v, b, topology.Gbps)
	cu := link(c, u, 2*topology.Gbps) // fat access link: carries victim + split halves
	vd := link(v, d, topology.Gbps)
	for _, name := range []string{"w1", "w2"} {
		w := g.AddNode(topology.KindEdgeSwitch, name)
		link(c, w, 500*topology.Mbps)
		wd := link(w, d, 500*topology.Mbps)
		_ = wd
	}
	// c's access to w1/w2 is capped at 500M each, d's ingress from them too.

	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})
	victim, err := net.AddFlow(flow.Spec{Src: c, Dst: d, Demand: 800 * topology.Mbps, Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	path, err := routing.NewPath(g, []topology.LinkID{cu, uv, vd})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Place(victim, path); err != nil {
		t.Fatal(err)
	}
	return net, g, victim, a, b, uv
}

func TestSplitDisabledFails(t *testing.T) {
	net, _, _, a, b, _ := splitScenario(t)
	p := NewPlanner(net, 0)
	f, err := net.AddFlow(flow.Spec{Src: a, Dst: b, Demand: 500 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(f); !errors.Is(err, ErrCannotAdmit) {
		t.Fatalf("Admit without split error = %v, want ErrCannotAdmit", err)
	}
}

func TestSplitMigration(t *testing.T) {
	net, g, victim, a, b, uv := splitScenario(t)
	p := NewPlanner(net, 0)
	p.SetAllowSplit(true)
	f, err := net.AddFlow(flow.Spec{Src: a, Dst: b, Demand: 500 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Admit(f)
	if err != nil {
		t.Fatalf("Admit with split: %v", err)
	}
	if len(res.Moves) != 1 || !res.Moves[0].Split() {
		t.Fatalf("Moves = %+v, want one split move", res.Moves)
	}
	if res.MigratedTraffic != 800*topology.Mbps {
		t.Errorf("cost = %v, want 800Mbps", res.MigratedTraffic)
	}
	if victim.Placed() {
		t.Error("split victim still placed as one flow")
	}
	if !f.Placed() || !f.Path().Contains(uv) {
		t.Error("trigger flow not placed over cleared bottleneck")
	}
	// Two children carry the victim's demand off the bottleneck.
	var childDemand topology.Bandwidth
	children := 0
	for _, fl := range net.Registry().Placed() {
		if fl == f {
			continue
		}
		if fl.Src == victim.Src && fl.Dst == victim.Dst {
			children++
			childDemand += fl.Demand
			if fl.Path().Contains(uv) {
				t.Error("split child routed over the bottleneck")
			}
		}
	}
	if children != 2 || childDemand != 800*topology.Mbps {
		t.Errorf("children = %d carrying %v, want 2 carrying 800Mbps", children, childDemand)
	}
	// No link over capacity anywhere.
	for i := 0; i < g.NumLinks(); i++ {
		if l := g.Link(topology.LinkID(i)); l.Residual() < 0 {
			t.Errorf("link %v over capacity", l)
		}
	}
}

func TestSplitRollbackRestoresExactly(t *testing.T) {
	net, g, victim, a, b, _ := splitScenario(t)
	p := NewPlanner(net, 0)
	p.SetAllowSplit(true)

	before := make([]topology.Bandwidth, g.NumLinks())
	for i := range before {
		before[i] = g.Link(topology.LinkID(i)).Reserved()
	}
	regBefore := net.Registry().Len()
	victimPath := victim.Path()

	f, err := net.AddFlow(flow.Spec{Src: a, Dst: b, Demand: 500 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Admit(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Rollback(res); err != nil {
		t.Fatal(err)
	}
	if err := net.Remove(f); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if got := g.Link(topology.LinkID(i)).Reserved(); got != before[i] {
			t.Fatalf("link %d reserved = %v, want %v after rollback", i, got, before[i])
		}
	}
	if got := net.Registry().Len(); got != regBefore {
		t.Errorf("registry = %d flows, want %d (children removed)", got, regBefore)
	}
	if !victim.Placed() || !victim.Path().Equal(victimPath) {
		t.Error("victim not restored to original path")
	}
}

func TestSplitRefusesEventFlows(t *testing.T) {
	net, _, victim, a, b, _ := splitScenario(t)
	// Make the victim an event flow: splitting must be refused (the
	// simulator tracks event flows by identity for release bookkeeping).
	victim.Event = 3
	p := NewPlanner(net, 0)
	p.SetAllowSplit(true)
	f, err := net.AddFlow(flow.Spec{Src: a, Dst: b, Demand: 500 * topology.Mbps, Event: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(f); !errors.Is(err, ErrCannotAdmit) {
		t.Fatalf("Admit error = %v, want ErrCannotAdmit (event victims unsplittable)", err)
	}
	if !victim.Placed() {
		t.Error("victim disturbed by refused split")
	}
}
