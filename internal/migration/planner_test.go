package migration

import (
	"errors"
	"testing"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// migrationScenario is a hand-built graph where migration outcomes are
// fully deterministic:
//
//	a -> u -> v -> b        (the only route for the new flow a->b)
//	c -> u -> v -> d        (victim route, shares the u->v bottleneck)
//	c -> w -> d             (victim detour, off the bottleneck)
//
// All links are 1 Gbps.
type migrationScenario struct {
	net        *netstate.Network
	g          *topology.Graph
	a, b, c, d topology.NodeID
	uv         topology.LinkID
}

func newScenario(t *testing.T, withDetour bool) *migrationScenario {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	c := g.AddNode(topology.KindHost, "c")
	d := g.AddNode(topology.KindHost, "d")
	u := g.AddNode(topology.KindEdgeSwitch, "u")
	v := g.AddNode(topology.KindEdgeSwitch, "v")

	link := func(x, y topology.NodeID) topology.LinkID {
		id, err := g.AddLink(x, y, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	link(a, u)
	uv := link(u, v)
	link(v, b)
	link(c, u)
	link(v, d)
	if withDetour {
		w := g.AddNode(topology.KindEdgeSwitch, "w")
		link(c, w)
		link(w, d)
	}
	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})
	return &migrationScenario{net: net, g: g, a: a, b: b, c: c, d: d, uv: uv}
}

// placeVictim admits a c->d flow (which lands on the 3-hop u/v route when
// it is the shortest — with the detour present both routes are length 3
// ... the detour is length 2, so force the bottleneck route explicitly).
func (s *migrationScenario) placeVictim(t *testing.T, demand topology.Bandwidth, event flow.EventID) *flow.Flow {
	t.Helper()
	f, err := s.net.AddFlow(flow.Spec{Src: s.c, Dst: s.d, Demand: demand, Event: event})
	if err != nil {
		t.Fatal(err)
	}
	// Build the bottleneck path c->u->v->d by hand.
	cu, _ := s.g.LinkBetween(s.c, topology.NodeID(4)) // u has ID 4 (5th node added)
	vd, _ := s.g.LinkBetween(topology.NodeID(5), s.d) // v has ID 5
	p, err := routing.NewPath(s.g, []topology.LinkID{cu, s.uv, vd})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.net.Place(f, p); err != nil {
		t.Fatal(err)
	}
	return f
}

// snapshot captures every link's reserved bandwidth.
func snapshot(g *topology.Graph) []topology.Bandwidth {
	out := make([]topology.Bandwidth, g.NumLinks())
	for i := range out {
		out[i] = g.Link(topology.LinkID(i)).Reserved()
	}
	return out
}

func assertSnapshot(t *testing.T, g *topology.Graph, want []topology.Bandwidth) {
	t.Helper()
	for i, w := range want {
		if got := g.Link(topology.LinkID(i)).Reserved(); got != w {
			t.Errorf("link %d reserved = %v, want %v", i, got, w)
		}
	}
}

func TestAdmitFastPathNoMigration(t *testing.T) {
	s := newScenario(t, true)
	p := NewPlanner(s.net, 0)
	f, err := s.net.AddFlow(flow.Spec{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Admit(f)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if len(res.Moves) != 0 || res.MigratedTraffic != 0 {
		t.Errorf("fast path produced moves: %+v", res)
	}
	if !f.Placed() {
		t.Error("flow not placed")
	}
	if res.Evals == 0 {
		t.Error("Evals = 0, want > 0")
	}
}

func TestAdmitWithMigration(t *testing.T) {
	s := newScenario(t, true)
	p := NewPlanner(s.net, 0)
	victim := s.placeVictim(t, 800*topology.Mbps, flow.NoEvent)

	f, err := s.net.AddFlow(flow.Spec{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps, Event: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Admit(f)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if len(res.Moves) != 1 || res.Moves[0].Flow != victim {
		t.Fatalf("Moves = %+v, want single migration of victim", res.Moves)
	}
	if res.MigratedTraffic != 800*topology.Mbps {
		t.Errorf("MigratedTraffic = %v, want 800Mbps", res.MigratedTraffic)
	}
	if !f.Placed() || !f.Path().Contains(s.uv) {
		t.Error("new flow not placed over the cleared bottleneck")
	}
	if victim.Path().Contains(s.uv) {
		t.Error("victim still crosses the bottleneck")
	}
	// Congestion-freedom: no link over capacity.
	for i := 0; i < s.g.NumLinks(); i++ {
		if l := s.g.Link(topology.LinkID(i)); l.Residual() < 0 {
			t.Errorf("link %v over capacity", l)
		}
	}
}

func TestAdmitFailsWithoutDetour(t *testing.T) {
	s := newScenario(t, false)
	p := NewPlanner(s.net, 0)
	s.placeVictim(t, 800*topology.Mbps, flow.NoEvent)
	before := snapshot(s.g)

	f, err := s.net.AddFlow(flow.Spec{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Admit(f)
	if !errors.Is(err, ErrCannotAdmit) {
		t.Fatalf("Admit error = %v, want ErrCannotAdmit", err)
	}
	if res == nil || res.Evals == 0 {
		t.Error("failed Admit must still report eval work")
	}
	if f.Placed() {
		t.Error("flow placed despite failure")
	}
	assertSnapshot(t, s.g, before)
}

func TestAdmitDoesNotMigrateOwnEventFlows(t *testing.T) {
	s := newScenario(t, true)
	p := NewPlanner(s.net, 0)
	// The victim belongs to the same event as the new flow: migrating it
	// is forbidden, and nothing else can free the bottleneck.
	s.placeVictim(t, 800*topology.Mbps, 7)
	f, err := s.net.AddFlow(flow.Spec{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps, Event: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(f); !errors.Is(err, ErrCannotAdmit) {
		t.Fatalf("Admit error = %v, want ErrCannotAdmit", err)
	}
}

func TestRollbackRestoresExactState(t *testing.T) {
	s := newScenario(t, true)
	p := NewPlanner(s.net, 0)
	victim := s.placeVictim(t, 800*topology.Mbps, flow.NoEvent)
	victimPath := victim.Path()
	before := snapshot(s.g)

	f, err := s.net.AddFlow(flow.Spec{Src: s.a, Dst: s.b, Demand: 500 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Admit(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Rollback(res); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	assertSnapshot(t, s.g, before)
	if !victim.Path().Equal(victimPath) {
		t.Error("victim not restored to original path")
	}
	if f.Placed() {
		t.Error("admitted flow still placed after rollback")
	}
}

// strategyScenario: bottleneck u->v carries two victims of different sizes
// (300M and 600M) with independent detours; a 400 Mbps flow needs 300 Mbps
// freed. Density and Smallest migrate the 300M victim; Largest migrates
// the 600M one.
func strategyScenario(t *testing.T) (*netstate.Network, *topology.Graph, topology.LinkID, [2]*flow.Flow, [2]topology.NodeID) {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	u := g.AddNode(topology.KindEdgeSwitch, "u")
	v := g.AddNode(topology.KindEdgeSwitch, "v")
	link := func(x, y topology.NodeID) topology.LinkID {
		id, err := g.AddLink(x, y, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	link(a, u)
	uv := link(u, v)
	link(v, b)

	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})
	var victims [2]*flow.Flow
	demands := []topology.Bandwidth{300 * topology.Mbps, 600 * topology.Mbps}
	for i, dem := range demands {
		src := g.AddNode(topology.KindHost, "src")
		dst := g.AddNode(topology.KindHost, "dst")
		su := link(src, u)
		vd := link(v, dst)
		// Detour: src -> w_i -> dst.
		w := g.AddNode(topology.KindEdgeSwitch, "w")
		link(src, w)
		link(w, dst)
		f, err := net.AddFlow(flow.Spec{Src: src, Dst: dst, Demand: dem})
		if err != nil {
			t.Fatal(err)
		}
		path, err := routing.NewPath(g, []topology.LinkID{su, uv, vd})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Place(f, path); err != nil {
			t.Fatal(err)
		}
		victims[i] = f
	}
	return net, g, uv, victims, [2]topology.NodeID{a, b}
}

func TestStrategies(t *testing.T) {
	tests := []struct {
		name       string
		strategy   Strategy
		wantVictim int // index into victims
		wantCost   topology.Bandwidth
	}{
		{"density prefers exact small cover", StrategyDensity, 0, 300 * topology.Mbps},
		{"smallest migrates 300M", StrategySmallest, 0, 300 * topology.Mbps},
		{"largest migrates 600M", StrategyLargest, 1, 600 * topology.Mbps},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			net, _, uv, victims, hosts := strategyScenario(t)
			p := NewPlanner(net, tt.strategy)
			f, err := net.AddFlow(flow.Spec{Src: hosts[0], Dst: hosts[1], Demand: 400 * topology.Mbps})
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Admit(f)
			if err != nil {
				t.Fatalf("Admit: %v", err)
			}
			if len(res.Moves) != 1 || res.Moves[0].Flow != victims[tt.wantVictim] {
				t.Fatalf("Moves = %v, want migration of victim %d", res.Moves, tt.wantVictim)
			}
			if res.MigratedTraffic != tt.wantCost {
				t.Errorf("cost = %v, want %v", res.MigratedTraffic, tt.wantCost)
			}
			if victims[tt.wantVictim].Path().Contains(uv) {
				t.Error("migrated victim still on bottleneck")
			}
		})
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyDensity:  "density",
		StrategySmallest: "smallest",
		StrategyLargest:  "largest",
		Strategy(9):      "Strategy(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Strategy.String() = %q, want %q", got, want)
		}
	}
}

// TestAdmitMultipleVictims requires freeing more than one victim's worth of
// bandwidth: two 300M victims must both move for a 900 Mbps flow
// (residual 400, deficit 500).
func TestAdmitMultipleVictims(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	u := g.AddNode(topology.KindEdgeSwitch, "u")
	v := g.AddNode(topology.KindEdgeSwitch, "v")
	link := func(x, y topology.NodeID) topology.LinkID {
		id, err := g.AddLink(x, y, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	link(a, u)
	uv := link(u, v)
	link(v, b)
	net := netstate.New(g, routing.NewBFSProvider(g, 0), routing.WidestFit{})

	for i := 0; i < 2; i++ {
		src := g.AddNode(topology.KindHost, "s")
		dst := g.AddNode(topology.KindHost, "t")
		su := link(src, u)
		vd := link(v, dst)
		w := g.AddNode(topology.KindEdgeSwitch, "w")
		link(src, w)
		link(w, dst)
		f, err := net.AddFlow(flow.Spec{Src: src, Dst: dst, Demand: 300 * topology.Mbps})
		if err != nil {
			t.Fatal(err)
		}
		path, err := routing.NewPath(g, []topology.LinkID{su, uv, vd})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Place(f, path); err != nil {
			t.Fatal(err)
		}
	}

	p := NewPlanner(net, 0)
	f, err := net.AddFlow(flow.Spec{Src: a, Dst: b, Demand: 900 * topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Admit(f)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if len(res.Moves) != 2 {
		t.Fatalf("Moves = %d, want 2", len(res.Moves))
	}
	if res.MigratedTraffic != 600*topology.Mbps {
		t.Errorf("cost = %v, want 600Mbps", res.MigratedTraffic)
	}
	if got := g.Link(uv).Reserved(); got != 900*topology.Mbps {
		t.Errorf("bottleneck reserved = %v, want 900Mbps (new flow only)", got)
	}
}
