package flow

import (
	"errors"
	"testing"
	"testing/quick"

	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// testNet builds a 3-node line a->b->c and returns the graph plus the
// 2-link path and its prefix (1 link).
func testNet(t *testing.T) (g *topology.Graph, full, prefix routing.Path, hosts [3]topology.NodeID) {
	t.Helper()
	g = topology.NewGraph()
	hosts[0] = g.AddNode(topology.KindHost, "a")
	hosts[1] = g.AddNode(topology.KindEdgeSwitch, "b")
	hosts[2] = g.AddNode(topology.KindHost, "c")
	l1, err := g.AddLink(hosts[0], hosts[1], topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := g.AddLink(hosts[1], hosts[2], topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if full, err = routing.NewPath(g, []topology.LinkID{l1, l2}); err != nil {
		t.Fatal(err)
	}
	if prefix, err = routing.NewPath(g, []topology.LinkID{l1}); err != nil {
		t.Fatal(err)
	}
	return g, full, prefix, hosts
}

func addFlow(t *testing.T, r *Registry, src, dst topology.NodeID) *Flow {
	t.Helper()
	f, err := r.Add(Spec{Src: src, Dst: dst, Demand: 10 * topology.Mbps, Size: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRegistryAddAssignsIncreasingIDs(t *testing.T) {
	_, _, _, hosts := testNet(t)
	r := NewRegistry()
	var last ID = -1
	for i := 0; i < 5; i++ {
		f := addFlow(t, r, hosts[0], hosts[2])
		if f.ID <= last {
			t.Fatalf("IDs not increasing: %d after %d", f.ID, last)
		}
		last = f.ID
	}
	if r.Len() != 5 {
		t.Errorf("Len = %d, want 5", r.Len())
	}
}

func TestRegistryAddRejectsInvalidSpec(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Add(Spec{Src: 1, Dst: 1, Demand: topology.Mbps}); err == nil {
		t.Error("Add(invalid spec) succeeded")
	}
}

func TestRegistryGet(t *testing.T) {
	_, _, _, hosts := testNet(t)
	r := NewRegistry()
	f := addFlow(t, r, hosts[0], hosts[2])
	got, err := r.Get(f.ID)
	if err != nil || got != f {
		t.Errorf("Get = %v,%v want %v", got, err, f)
	}
	if _, err := r.Get(999); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("Get(999) error = %v, want ErrUnknownFlow", err)
	}
}

func TestBindUnbindIndexesLinks(t *testing.T) {
	_, full, _, hosts := testNet(t)
	r := NewRegistry()
	f := addFlow(t, r, hosts[0], hosts[2])

	if err := r.Bind(f, full); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !f.Placed() || !f.Path().Equal(full) {
		t.Error("flow not marked placed on its path")
	}
	for _, l := range full.Links() {
		flows := r.FlowsOn(l)
		if len(flows) != 1 || flows[0] != f {
			t.Errorf("FlowsOn(%v) = %v, want [flow]", l, flows)
		}
		if r.NumFlowsOn(l) != 1 {
			t.Errorf("NumFlowsOn(%v) = %d, want 1", l, r.NumFlowsOn(l))
		}
	}
	if err := r.Bind(f, full); !errors.Is(err, ErrAlreadyPlaced) {
		t.Errorf("double Bind error = %v, want ErrAlreadyPlaced", err)
	}

	if err := r.Unbind(f); err != nil {
		t.Fatalf("Unbind: %v", err)
	}
	if f.Placed() || !f.Path().IsZero() {
		t.Error("flow still placed after Unbind")
	}
	for _, l := range full.Links() {
		if got := r.FlowsOn(l); got != nil {
			t.Errorf("FlowsOn(%v) after Unbind = %v, want nil", l, got)
		}
	}
	if err := r.Unbind(f); !errors.Is(err, ErrNotPlaced) {
		t.Errorf("double Unbind error = %v, want ErrNotPlaced", err)
	}
}

func TestRemove(t *testing.T) {
	_, full, _, hosts := testNet(t)
	r := NewRegistry()
	f := addFlow(t, r, hosts[0], hosts[2])
	if err := r.Bind(f, full); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(f); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := r.Get(f.ID); !errors.Is(err, ErrUnknownFlow) {
		t.Error("flow still retrievable after Remove")
	}
	if got := r.FlowsOn(full.Links()[0]); got != nil {
		t.Errorf("link index retains removed flow: %v", got)
	}
	if err := r.Remove(f); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("double Remove error = %v, want ErrUnknownFlow", err)
	}
}

func TestBindUnknownFlow(t *testing.T) {
	_, full, _, _ := testNet(t)
	r := NewRegistry()
	ghost := &Flow{ID: 42, Src: 0, Dst: 2, Demand: topology.Mbps}
	if err := r.Bind(ghost, full); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("Bind(ghost) error = %v, want ErrUnknownFlow", err)
	}
	if err := r.Unbind(ghost); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("Unbind(ghost) error = %v, want ErrUnknownFlow", err)
	}
}

func TestFlowsOnSortedByID(t *testing.T) {
	_, full, prefix, hosts := testNet(t)
	r := NewRegistry()
	// Bind several flows over the shared first link in scrambled order.
	var flows []*Flow
	for i := 0; i < 10; i++ {
		flows = append(flows, addFlow(t, r, hosts[0], hosts[2]))
	}
	for _, idx := range []int{7, 2, 9, 0, 4, 1, 8, 3, 6, 5} {
		p := full
		if idx%2 == 0 {
			p = prefix
		}
		if err := r.Bind(flows[idx], p); err != nil {
			t.Fatal(err)
		}
	}
	on := r.FlowsOn(full.Links()[0])
	if len(on) != 10 {
		t.Fatalf("FlowsOn = %d flows, want 10", len(on))
	}
	for i := 1; i < len(on); i++ {
		if on[i].ID <= on[i-1].ID {
			t.Fatal("FlowsOn not sorted by ID")
		}
	}
	// Only full-path flows appear on the second link.
	on2 := r.FlowsOn(full.Links()[1])
	if len(on2) != 5 {
		t.Errorf("FlowsOn(second link) = %d flows, want 5", len(on2))
	}
}

func TestAllAndPlaced(t *testing.T) {
	_, full, _, hosts := testNet(t)
	r := NewRegistry()
	f1 := addFlow(t, r, hosts[0], hosts[2])
	f2 := addFlow(t, r, hosts[0], hosts[2])
	if err := r.Bind(f2, full); err != nil {
		t.Fatal(err)
	}
	if all := r.All(); len(all) != 2 || all[0] != f1 || all[1] != f2 {
		t.Errorf("All() = %v", all)
	}
	if placed := r.Placed(); len(placed) != 1 || placed[0] != f2 {
		t.Errorf("Placed() = %v", placed)
	}
}

// Property: for any sequence of bind/unbind operations, the link index
// contains exactly the placed flows.
func TestRegistryIndexConsistency(t *testing.T) {
	_, full, prefix, hosts := testNet(t)
	f := func(ops []bool) bool {
		r := NewRegistry()
		var flows []*Flow
		for i := 0; i < 4; i++ {
			fl, err := r.Add(Spec{Src: hosts[0], Dst: hosts[2], Demand: topology.Mbps})
			if err != nil {
				return false
			}
			flows = append(flows, fl)
		}
		for i, bind := range ops {
			fl := flows[i%len(flows)]
			if bind && !fl.Placed() {
				p := full
				if i%3 == 0 {
					p = prefix
				}
				if err := r.Bind(fl, p); err != nil {
					return false
				}
			} else if !bind && fl.Placed() {
				if err := r.Unbind(fl); err != nil {
					return false
				}
			}
		}
		// Check index == placed set on every link.
		for _, l := range full.Links() {
			for _, fl := range r.FlowsOn(l) {
				if !fl.Placed() || !fl.Path().Contains(l) {
					return false
				}
			}
		}
		for _, fl := range r.Placed() {
			for _, l := range fl.Path().Links() {
				found := false
				for _, g := range r.FlowsOn(l) {
					if g == fl {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
