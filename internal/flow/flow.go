// Package flow models network flows and indexes them by the links they
// occupy. The link index answers the central query of Definition 1 of the
// paper: given a congested link, which existing flows (the set F_A) could
// be migrated away to free bandwidth?
package flow

import (
	"fmt"
	"time"

	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// ID uniquely identifies a flow within a Network. IDs are assigned by the
// Registry in increasing order, so they double as arrival order.
type ID int64

// InvalidID is the zero-value "no flow" sentinel.
const InvalidID ID = -1

// EventID identifies the update event a flow belongs to. Real events use
// IDs >= 1; the zero value means "no event", so a zero flow.Spec describes
// background traffic.
type EventID int64

// NoEvent marks background flows that belong to no update event.
const NoEvent EventID = 0

// Flow is a single unsplittable flow: it traverses exactly one path and
// consumes its full demand on every link of that path (the congestion-free
// constraints of Section III-A).
type Flow struct {
	// ID is the registry-assigned identity.
	ID ID
	// Src and Dst are the endpoint hosts.
	Src topology.NodeID
	Dst topology.NodeID
	// Demand is the bandwidth the flow consumes on every traversed link.
	Demand topology.Bandwidth
	// Size is the number of payload bytes the flow must transfer. Together
	// with Demand it determines the transfer time.
	Size int64
	// Event is the update event this flow belongs to (NoEvent for
	// background traffic).
	Event EventID

	// path is the currently assigned route; zero when unplaced.
	path routing.Path
	// placed records whether the flow currently holds reservations.
	placed bool
}

// Spec describes a flow before it is registered: the immutable part of a
// Flow. Trace generators produce Specs; the Registry turns them into Flows.
type Spec struct {
	Src    topology.NodeID
	Dst    topology.NodeID
	Demand topology.Bandwidth
	Size   int64
	Event  EventID
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	if s.Src == s.Dst {
		return fmt.Errorf("flow spec: src == dst (%d)", int(s.Src))
	}
	if s.Demand <= 0 {
		return fmt.Errorf("flow spec: non-positive demand %d", int64(s.Demand))
	}
	if s.Size < 0 {
		return fmt.Errorf("flow spec: negative size %d", s.Size)
	}
	return nil
}

// Path returns the flow's current route (zero when unplaced).
func (f *Flow) Path() routing.Path { return f.path }

// Placed reports whether the flow currently holds link reservations.
func (f *Flow) Placed() bool { return f.placed }

// TransferTime returns how long the flow takes to move Size bytes at its
// demand rate. Zero-size flows (pure rule updates) transfer instantly.
func (f *Flow) TransferTime() time.Duration {
	if f.Size == 0 || f.Demand <= 0 {
		return 0
	}
	bits := f.Size * 8
	sec := float64(bits) / float64(f.Demand)
	return time.Duration(sec * float64(time.Second))
}

// String implements fmt.Stringer.
func (f *Flow) String() string {
	state := "unplaced"
	if f.placed {
		state = "placed"
	}
	return fmt.Sprintf("flow#%d(%d->%d %v %s)", int64(f.ID), int(f.Src), int(f.Dst), f.Demand, state)
}
