package flow

import (
	"errors"
	"fmt"
	"sort"

	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

// Registry errors.
var (
	// ErrUnknownFlow is returned for IDs that were never registered or
	// were already removed.
	ErrUnknownFlow = errors.New("unknown flow")
	// ErrAlreadyPlaced is returned when binding a path to a flow that
	// already holds one.
	ErrAlreadyPlaced = errors.New("flow already placed")
	// ErrNotPlaced is returned when unbinding a flow that holds no path.
	ErrNotPlaced = errors.New("flow not placed")
)

// Registry owns all live flows and maintains the inverted index from links
// to the flows traversing them. It performs no bandwidth accounting — that
// stays in topology.Graph; netstate.Network keeps the two consistent.
type Registry struct {
	next  ID
	flows map[ID]*Flow
	// onLink indexes flows by every link of their placed path.
	onLink map[topology.LinkID]map[ID]*Flow
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		flows:  make(map[ID]*Flow),
		onLink: make(map[topology.LinkID]map[ID]*Flow),
	}
}

// Add registers a new, unplaced flow built from spec and returns it.
func (r *Registry) Add(spec Spec) (*Flow, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	f := &Flow{
		ID:     r.next,
		Src:    spec.Src,
		Dst:    spec.Dst,
		Demand: spec.Demand,
		Size:   spec.Size,
		Event:  spec.Event,
	}
	r.next++
	r.flows[f.ID] = f
	return f, nil
}

// Get returns the flow with the given ID.
func (r *Registry) Get(id ID) (*Flow, error) {
	f, ok := r.flows[id]
	if !ok {
		return nil, fmt.Errorf("flow %d: %w", int64(id), ErrUnknownFlow)
	}
	return f, nil
}

// Len returns the number of registered flows (placed or not).
func (r *Registry) Len() int { return len(r.flows) }

// Bind records that f now routes over path, updating the link index.
// The caller is responsible for having reserved bandwidth first.
func (r *Registry) Bind(f *Flow, path routing.Path) error {
	if _, ok := r.flows[f.ID]; !ok {
		return fmt.Errorf("bind %v: %w", f, ErrUnknownFlow)
	}
	if f.placed {
		return fmt.Errorf("bind %v: %w", f, ErrAlreadyPlaced)
	}
	f.path = path
	f.placed = true
	for _, l := range path.Links() {
		m := r.onLink[l]
		if m == nil {
			m = make(map[ID]*Flow)
			r.onLink[l] = m
		}
		m[f.ID] = f
	}
	return nil
}

// Unbind removes f's path binding, updating the link index. The caller is
// responsible for releasing the bandwidth reservations.
func (r *Registry) Unbind(f *Flow) error {
	if _, ok := r.flows[f.ID]; !ok {
		return fmt.Errorf("unbind %v: %w", f, ErrUnknownFlow)
	}
	if !f.placed {
		return fmt.Errorf("unbind %v: %w", f, ErrNotPlaced)
	}
	for _, l := range f.path.Links() {
		delete(r.onLink[l], f.ID)
		if len(r.onLink[l]) == 0 {
			delete(r.onLink, l)
		}
	}
	f.path = routing.Path{}
	f.placed = false
	return nil
}

// Remove deletes the flow from the registry entirely. Placed flows are
// unbound first.
func (r *Registry) Remove(f *Flow) error {
	if _, ok := r.flows[f.ID]; !ok {
		return fmt.Errorf("remove %v: %w", f, ErrUnknownFlow)
	}
	if f.placed {
		if err := r.Unbind(f); err != nil {
			return err
		}
	}
	delete(r.flows, f.ID)
	return nil
}

// Fork returns a scratch copy of the registry for trial planning: every
// flow is cloned (so Bind/Unbind on the fork never mutate the parent's
// flows) and the link index is rebuilt over the clones. Paths are shared:
// a Path's link slice is never mutated in place, only replaced. The ID
// counter is carried over so fork-minted IDs stay in the parent's ID
// order.
func (r *Registry) Fork() *Registry {
	nr := &Registry{
		next:   r.next,
		flows:  make(map[ID]*Flow, len(r.flows)),
		onLink: make(map[topology.LinkID]map[ID]*Flow, len(r.onLink)),
	}
	for id, f := range r.flows {
		cp := *f
		nr.flows[id] = &cp
	}
	for l, m := range r.onLink {
		nm := make(map[ID]*Flow, len(m))
		for id := range m {
			nm[id] = nr.flows[id]
		}
		nr.onLink[l] = nm
	}
	return nr
}

// FlowsOn returns the flows currently routed over the given link, sorted
// by ID so that iteration is deterministic. The slice is freshly allocated.
func (r *Registry) FlowsOn(link topology.LinkID) []*Flow {
	m := r.onLink[link]
	if len(m) == 0 {
		return nil
	}
	out := make([]*Flow, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumFlowsOn returns how many flows traverse the given link.
func (r *Registry) NumFlowsOn(link topology.LinkID) int {
	return len(r.onLink[link])
}

// All returns every registered flow sorted by ID.
func (r *Registry) All() []*Flow {
	out := make([]*Flow, 0, len(r.flows))
	for _, f := range r.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Placed returns every placed flow sorted by ID.
func (r *Registry) Placed() []*Flow {
	out := make([]*Flow, 0, len(r.flows))
	for _, f := range r.flows {
		if f.placed {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
