package flow

import (
	"testing"
	"time"

	"netupdate/internal/topology"
)

func TestSpecValidate(t *testing.T) {
	valid := Spec{Src: 0, Dst: 1, Demand: topology.Mbps, Size: 100}
	tests := []struct {
		name    string
		mutate  func(*Spec)
		wantErr bool
	}{
		{"valid", func(*Spec) {}, false},
		{"zero size ok", func(s *Spec) { s.Size = 0 }, false},
		{"src==dst", func(s *Spec) { s.Dst = s.Src }, true},
		{"zero demand", func(s *Spec) { s.Demand = 0 }, true},
		{"negative demand", func(s *Spec) { s.Demand = -1 }, true},
		{"negative size", func(s *Spec) { s.Size = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := valid
			tt.mutate(&s)
			if err := s.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTransferTime(t *testing.T) {
	tests := []struct {
		name   string
		demand topology.Bandwidth
		size   int64
		want   time.Duration
	}{
		{"1MB at 8Mbps = 1s", 8 * topology.Mbps, 1e6, time.Second},
		{"zero size", topology.Gbps, 0, 0},
		{"125KB at 1Mbps = 1s", topology.Mbps, 125_000, time.Second},
		{"small flow sub-second", topology.Gbps, 125_000, time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := &Flow{Demand: tt.demand, Size: tt.size}
			if got := f.TransferTime(); got != tt.want {
				t.Errorf("TransferTime() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFlowString(t *testing.T) {
	f := &Flow{ID: 3, Src: 1, Dst: 2, Demand: topology.Mbps}
	if got := f.String(); got == "" {
		t.Error("String() empty")
	}
}
