package flow

import (
	"testing"

	"netupdate/internal/topology"
)

func TestRegistryForkIsolatesPlacements(t *testing.T) {
	_, full, prefix, hosts := testNet(t)
	r := NewRegistry()
	placed := addFlow(t, r, hosts[0], hosts[2])
	if err := r.Bind(placed, full); err != nil {
		t.Fatal(err)
	}
	unplaced := addFlow(t, r, hosts[0], hosts[2])

	fk := r.Fork()
	if fk.Len() != r.Len() {
		t.Fatalf("fork len = %d, want %d", fk.Len(), r.Len())
	}
	fplaced, err := fk.Get(placed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fplaced == placed {
		t.Fatal("fork must clone flows, not share pointers")
	}
	if !fplaced.Placed() || !fplaced.Path().Equal(full) {
		t.Fatal("clone must carry the original placement")
	}

	// Rebinding the clone must not move the original, and the fork's
	// link index must follow the clone while the original's stays put.
	if err := fk.Unbind(fplaced); err != nil {
		t.Fatal(err)
	}
	if err := fk.Bind(fplaced, prefix); err != nil {
		t.Fatal(err)
	}
	if !placed.Path().Equal(full) {
		t.Error("rebinding the fork's clone moved the original flow")
	}
	lastLink := full.Links()[len(full.Links())-1]
	if got := r.NumFlowsOn(lastLink); got != 1 {
		t.Errorf("live NumFlowsOn(last) = %d, want 1", got)
	}
	if got := fk.NumFlowsOn(lastLink); got != 0 {
		t.Errorf("fork NumFlowsOn(last) = %d, want 0 after rebind", got)
	}

	// ID allocation must continue identically on both sides, so planning
	// against a fork registers trial flows under the same IDs the live
	// network would assign.
	fa, err := r.Add(Spec{Src: hosts[0], Dst: hosts[2], Demand: topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := fk.Add(Spec{Src: hosts[0], Dst: hosts[2], Demand: topology.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if fa.ID != fb.ID {
		t.Errorf("next ID diverged: live %d vs fork %d", fa.ID, fb.ID)
	}
	_ = unplaced
}
