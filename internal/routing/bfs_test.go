package routing

import (
	"testing"

	"netupdate/internal/topology"
)

// diamondGraph builds s -> {a,b} -> t plus a longer detour s -> c -> d -> t.
func diamondGraph(t *testing.T) (g *topology.Graph, s, a, b, c, d, dst topology.NodeID) {
	t.Helper()
	g = topology.NewGraph()
	s = g.AddNode(topology.KindEdgeSwitch, "s")
	a = g.AddNode(topology.KindAggSwitch, "a")
	b = g.AddNode(topology.KindAggSwitch, "b")
	c = g.AddNode(topology.KindAggSwitch, "c")
	d = g.AddNode(topology.KindAggSwitch, "d")
	dst = g.AddNode(topology.KindEdgeSwitch, "t")
	for _, pair := range [][2]topology.NodeID{{s, a}, {s, b}, {a, dst}, {b, dst}, {s, c}, {c, d}, {d, dst}} {
		if _, err := g.AddLink(pair[0], pair[1], topology.Gbps); err != nil {
			t.Fatal(err)
		}
	}
	return g, s, a, b, c, d, dst
}

func TestBFSProviderShortestOnly(t *testing.T) {
	g, s, a, b, _, _, dst := diamondGraph(t)
	prov := NewBFSProvider(g, 0)
	paths := prov.Paths(s, dst)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (shortest only)", len(paths))
	}
	mids := make(map[topology.NodeID]bool)
	for _, p := range paths {
		if p.Len() != 2 {
			t.Errorf("path %s has %d hops, want 2", p.Format(g), p.Len())
		}
		mids[g.Link(p.Links()[0]).To] = true
	}
	if !mids[a] || !mids[b] {
		t.Errorf("middle nodes = %v, want {a,b}", mids)
	}
}

func TestBFSProviderMaxPaths(t *testing.T) {
	g, s, _, _, _, _, dst := diamondGraph(t)
	prov := NewBFSProvider(g, 1)
	if got := len(prov.Paths(s, dst)); got != 1 {
		t.Errorf("capped path count = %d, want 1", got)
	}
}

func TestBFSProviderUnreachable(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	prov := NewBFSProvider(g, 0)
	if got := prov.Paths(a, b); got != nil {
		t.Errorf("Paths over disconnected graph = %v, want nil", got)
	}
	if got := prov.Paths(a, a); got != nil {
		t.Errorf("Paths(a,a) = %v, want nil", got)
	}
}

func TestBFSProviderDirectedness(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindHost, "b")
	if _, err := g.AddLink(a, b, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	prov := NewBFSProvider(g, 0)
	if got := len(prov.Paths(a, b)); got != 1 {
		t.Errorf("forward paths = %d, want 1", got)
	}
	if got := prov.Paths(b, a); got != nil {
		t.Errorf("reverse paths = %v, want nil (directed link)", got)
	}
}

func TestBFSProviderInvalidate(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.KindHost, "a")
	b := g.AddNode(topology.KindEdgeSwitch, "b")
	c := g.AddNode(topology.KindHost, "c")
	if _, err := g.AddLink(a, b, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(b, c, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	prov := NewBFSProvider(g, 0)
	if got := len(prov.Paths(a, c)); got != 1 {
		t.Fatalf("paths = %d, want 1", got)
	}
	// Add a parallel two-hop route via a new switch; the cache hides it
	// until invalidated.
	d := g.AddNode(topology.KindEdgeSwitch, "d")
	if _, err := g.AddLink(a, d, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(d, c, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	if got := len(prov.Paths(a, c)); got != 1 {
		t.Fatalf("cached paths = %d, want 1", got)
	}
	prov.Invalidate()
	if got := len(prov.Paths(a, c)); got != 2 {
		t.Errorf("paths after Invalidate = %d, want 2", got)
	}
}

// TestBFSMatchesFatTreeEnumeration cross-checks the two providers: on a
// Fat-Tree they must produce identical path sets (as sets).
func TestBFSMatchesFatTreeEnumeration(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	ftProv := NewFatTreeProvider(ft)
	bfsProv := NewBFSProvider(ft.Graph(), 0)

	pairs := [][2]topology.NodeID{
		{ft.Host(0, 0, 0), ft.Host(0, 0, 1)},
		{ft.Host(0, 0, 0), ft.Host(0, 1, 1)},
		{ft.Host(0, 0, 0), ft.Host(2, 1, 0)},
		{ft.Host(3, 1, 1), ft.Host(1, 0, 0)},
	}
	for _, pair := range pairs {
		a := ftProv.Paths(pair[0], pair[1])
		b := bfsProv.Paths(pair[0], pair[1])
		if len(a) != len(b) {
			t.Fatalf("pair %v: fat-tree %d paths, BFS %d", pair, len(a), len(b))
		}
		for _, pa := range a {
			found := false
			for _, pb := range b {
				if pa.Equal(pb) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("pair %v: fat-tree path %s missing from BFS set", pair, pa.Format(ft.Graph()))
			}
		}
	}
}
