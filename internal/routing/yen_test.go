package routing

import (
	"testing"
	"testing/quick"

	"netupdate/internal/topology"
)

func TestKShortestOnDiamond(t *testing.T) {
	g, s, a, b, c, d, dst := diamondGraph(t)
	_ = a
	_ = b
	prov := NewKShortestProvider(g, 5)
	paths := prov.Paths(s, dst)
	// Two 2-hop paths plus the 3-hop detour via c->d.
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(paths))
	}
	if paths[0].Len() != 2 || paths[1].Len() != 2 || paths[2].Len() != 3 {
		t.Errorf("path lengths = %d,%d,%d want 2,2,3",
			paths[0].Len(), paths[1].Len(), paths[2].Len())
	}
	// The detour runs via c and d.
	detour := paths[2]
	if g.Link(detour.Links()[0]).To != c || g.Link(detour.Links()[1]).To != d {
		t.Errorf("detour = %s, want via c,d", detour.Format(g))
	}
}

func TestKShortestRespectsK(t *testing.T) {
	g, s, _, _, _, _, dst := diamondGraph(t)
	for _, k := range []int{1, 2, 3, 10} {
		paths := NewKShortestProvider(g, k).Paths(s, dst)
		want := k
		if want > 3 {
			want = 3
		}
		if len(paths) != want {
			t.Errorf("k=%d: paths = %d, want %d", k, len(paths), want)
		}
	}
	// k < 1 clamps to 1.
	if got := len(NewKShortestProvider(g, 0).Paths(s, dst)); got != 1 {
		t.Errorf("k=0: paths = %d, want 1", got)
	}
}

func TestKShortestDegenerate(t *testing.T) {
	g := topology.NewGraph()
	x := g.AddNode(topology.KindHost, "x")
	y := g.AddNode(topology.KindHost, "y")
	prov := NewKShortestProvider(g, 3)
	if got := prov.Paths(x, y); got != nil {
		t.Errorf("disconnected Paths = %v, want nil", got)
	}
	if got := prov.Paths(x, x); got != nil {
		t.Errorf("self Paths = %v, want nil", got)
	}
}

func TestKShortestInvalidate(t *testing.T) {
	g := topology.NewGraph()
	x := g.AddNode(topology.KindHost, "x")
	m := g.AddNode(topology.KindEdgeSwitch, "m")
	y := g.AddNode(topology.KindHost, "y")
	if _, err := g.AddLink(x, m, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(m, y, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	prov := NewKShortestProvider(g, 4)
	if got := len(prov.Paths(x, y)); got != 1 {
		t.Fatalf("paths = %d, want 1", got)
	}
	n := g.AddNode(topology.KindEdgeSwitch, "n")
	if _, err := g.AddLink(x, n, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(n, y, topology.Gbps); err != nil {
		t.Fatal(err)
	}
	if got := len(prov.Paths(x, y)); got != 1 {
		t.Fatalf("cached paths = %d, want 1", got)
	}
	prov.Invalidate()
	if got := len(prov.Paths(x, y)); got != 2 {
		t.Errorf("paths after invalidate = %d, want 2", got)
	}
}

// TestKShortestSupersetOfBFS: the first paths returned must be exactly the
// shortest ones BFS finds (as a set), on random graphs.
func TestKShortestSupersetOfBFS(t *testing.T) {
	check := func(seed int64, srcRaw, dstRaw uint8) bool {
		g := randomGraph(seed, 9, 0.3)
		src := topology.NodeID(int(srcRaw) % 9)
		dst := topology.NodeID(int(dstRaw) % 9)
		if src == dst {
			return true
		}
		bfsPaths := NewBFSProvider(g, 0).Paths(src, dst)
		yenPaths := NewKShortestProvider(g, len(bfsPaths)+8).Paths(src, dst)
		if len(bfsPaths) == 0 {
			return len(yenPaths) == 0
		}
		if len(yenPaths) < len(bfsPaths) {
			return false
		}
		// Ordered by length.
		for i := 1; i < len(yenPaths); i++ {
			if yenPaths[i].Len() < yenPaths[i-1].Len() {
				return false
			}
		}
		// All distinct, loopless, correct endpoints.
		for i, p := range yenPaths {
			if p.Src() != src || p.Dst() != dst {
				return false
			}
			seen := map[topology.NodeID]bool{src: true}
			for _, l := range p.Links() {
				to := g.Link(l).To
				if seen[to] {
					return false
				}
				seen[to] = true
			}
			for j := i + 1; j < len(yenPaths); j++ {
				if p.Equal(yenPaths[j]) {
					return false
				}
			}
		}
		// Every BFS shortest path appears among the yen paths of equal
		// length.
		shortest := bfsPaths[0].Len()
		for _, bp := range bfsPaths {
			found := false
			for _, yp := range yenPaths {
				if yp.Len() > shortest {
					break
				}
				if yp.Equal(bp) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestKShortestOnFatTree: with k large enough, Yen recovers at least the
// full ECMP set.
func TestKShortestOnFatTree(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	ecmp := NewFatTreeProvider(ft).Paths(ft.Host(0, 0, 0), ft.Host(1, 0, 0))
	yen := NewKShortestProvider(ft.Graph(), 8).Paths(ft.Host(0, 0, 0), ft.Host(1, 0, 0))
	if len(yen) < len(ecmp) {
		t.Fatalf("yen = %d paths, want >= %d", len(yen), len(ecmp))
	}
	for _, ep := range ecmp {
		found := false
		for _, yp := range yen {
			if yp.Equal(ep) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("ECMP path missing from yen set: %s", ep.Format(ft.Graph()))
		}
	}
}
