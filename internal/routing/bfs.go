package routing

import (
	"sync"

	"netupdate/internal/topology"
)

// BFSProvider enumerates all shortest paths between node pairs of an
// arbitrary graph, up to a configurable cap per pair. It serves as the
// general-graph fallback for topologies without a closed-form ECMP set
// (e.g. the degraded graphs of the link-failure example). The cache is
// lock-guarded so concurrent probes on forked networks can share it.
type BFSProvider struct {
	g *topology.Graph
	// maxPaths caps the number of shortest paths enumerated per pair to
	// bound memory on dense graphs. 0 means no cap.
	maxPaths int
	mu       sync.RWMutex
	cache    map[[2]topology.NodeID][]Path
}

var _ Provider = (*BFSProvider)(nil)

// NewBFSProvider returns a shortest-path Provider over g. maxPaths caps
// the paths returned per pair (0 = unlimited).
func NewBFSProvider(g *topology.Graph, maxPaths int) *BFSProvider {
	return &BFSProvider{
		g:        g,
		maxPaths: maxPaths,
		cache:    make(map[[2]topology.NodeID][]Path),
	}
}

// Invalidate drops all cached path sets. Call after mutating the graph's
// structure (adding nodes or links); bandwidth changes need no invalidation.
func (p *BFSProvider) Invalidate() {
	p.mu.Lock()
	p.cache = make(map[[2]topology.NodeID][]Path)
	p.mu.Unlock()
}

// Paths implements Provider, returning every shortest src->dst path (up to
// the configured cap) in a deterministic order.
func (p *BFSProvider) Paths(src, dst topology.NodeID) []Path {
	if src == dst {
		return nil
	}
	key := [2]topology.NodeID{src, dst}
	p.mu.RLock()
	paths, ok := p.cache[key]
	p.mu.RUnlock()
	if ok {
		return paths
	}
	paths = p.compute(src, dst)
	p.mu.Lock()
	if prior, ok := p.cache[key]; ok {
		paths = prior
	} else {
		p.cache[key] = paths
	}
	p.mu.Unlock()
	return paths
}

func (p *BFSProvider) compute(src, dst topology.NodeID) []Path {
	g := p.g
	n := g.NumNodes()
	// Standard BFS layering: dist[v] is the hop distance from src, and
	// preds[v] lists every link that reaches v on a shortest path.
	const unvisited = -1
	dist := make([]int, n)
	for i := range dist {
		dist[i] = unvisited
	}
	preds := make([][]topology.LinkID, n)
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			continue // no need to expand past the target layer via dst
		}
		for _, lid := range g.Out(u) {
			v := g.Link(lid).To
			switch {
			case dist[v] == unvisited:
				dist[v] = dist[u] + 1
				preds[v] = append(preds[v], lid)
				queue = append(queue, v)
			case dist[v] == dist[u]+1:
				preds[v] = append(preds[v], lid)
			}
		}
	}
	if dist[dst] == unvisited {
		return nil
	}

	// Walk the predecessor DAG backwards from dst, materializing every
	// shortest path until the cap is hit.
	var paths []Path
	var stack []topology.LinkID
	var walk func(v topology.NodeID)
	walk = func(v topology.NodeID) {
		if p.maxPaths > 0 && len(paths) >= p.maxPaths {
			return
		}
		if v == src {
			links := make([]topology.LinkID, len(stack))
			for i, l := range stack {
				links[len(stack)-1-i] = l // stack is dst->src; reverse it
			}
			path, err := NewPath(g, links)
			if err != nil {
				// preds construction guarantees chained links; an error
				// here means the graph mutated mid-walk.
				panic("routing: BFS produced invalid path: " + err.Error())
			}
			paths = append(paths, path)
			return
		}
		for _, lid := range preds[v] {
			stack = append(stack, lid)
			walk(g.Link(lid).From)
			stack = stack[:len(stack)-1]
		}
	}
	walk(dst)
	return paths
}
