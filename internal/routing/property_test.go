package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netupdate/internal/topology"
)

// randomGraph builds a random directed graph with n nodes and roughly
// density*n*(n-1) links, deterministically from seed.
func randomGraph(seed int64, n int, density float64) *topology.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := topology.NewGraph()
	ids := make([]topology.NodeID, n)
	for i := range ids {
		kind := topology.KindEdgeSwitch
		if i%3 == 0 {
			kind = topology.KindHost
		}
		ids[i] = g.AddNode(kind, "n")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() >= density {
				continue
			}
			if _, err := g.AddLink(ids[i], ids[j], topology.Gbps); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// bfsDistance computes hop distances from src with a plain BFS, as an
// independent oracle for the provider.
func bfsDistance(g *topology.Graph, src topology.NodeID) []int {
	const unreached = -1
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = unreached
	}
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, l := range g.Out(u) {
			v := g.Link(l).To
			if dist[v] == unreached {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// TestBFSProviderProperties checks, over random graphs, that every
// returned path (a) is loop-free, (b) has length equal to the true
// shortest distance, and (c) connects the requested endpoints; and that
// paths are returned exactly when the oracle says the pair is reachable.
func TestBFSProviderProperties(t *testing.T) {
	check := func(seed int64, nRaw, srcRaw, dstRaw uint8, densRaw uint8) bool {
		n := int(nRaw%12) + 2
		density := 0.05 + float64(densRaw%40)/100
		g := randomGraph(seed, n, density)
		src := topology.NodeID(int(srcRaw) % n)
		dst := topology.NodeID(int(dstRaw) % n)
		if src == dst {
			return true
		}
		prov := NewBFSProvider(g, 64)
		paths := prov.Paths(src, dst)
		dist := bfsDistance(g, src)

		if dist[dst] == -1 {
			return len(paths) == 0
		}
		if len(paths) == 0 {
			return false
		}
		for _, p := range paths {
			if p.Src() != src || p.Dst() != dst {
				return false
			}
			if p.Len() != dist[dst] {
				return false
			}
			seen := map[topology.NodeID]bool{src: true}
			for _, l := range p.Links() {
				to := g.Link(l).To
				if seen[to] {
					return false
				}
				seen[to] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestSelectorsAgreeOnFeasibility: over random graphs and demands, every
// selector either returns a feasible path or correctly reports none.
func TestSelectorsAgreeOnFeasibility(t *testing.T) {
	rf := NewRandomFit(3)
	check := func(seed int64, demandRaw uint16) bool {
		g := randomGraph(seed, 8, 0.3)
		prov := NewBFSProvider(g, 0)
		demand := topology.Bandwidth(demandRaw) * topology.Mbps
		var anyPair bool
		for src := 0; src < 8 && !anyPair; src++ {
			for dst := 0; dst < 8; dst++ {
				if src == dst {
					continue
				}
				paths := prov.Paths(topology.NodeID(src), topology.NodeID(dst))
				if len(paths) == 0 {
					continue
				}
				anyPair = true
				feasible := false
				for _, p := range paths {
					if p.Fits(g, demand) {
						feasible = true
						break
					}
				}
				for _, sel := range []Selector{FirstFit{}, WidestFit{}, rf} {
					p, ok := sel.Select(g, paths, demand)
					if ok != feasible {
						return false
					}
					if ok && !p.Fits(g, demand) {
						return false
					}
				}
				break
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
