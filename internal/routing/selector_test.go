package routing

import (
	"testing"

	"netupdate/internal/topology"
)

// forkGraph builds two parallel 2-hop routes s->a->t and s->b->t and
// returns the graph and the two paths.
func forkGraph(t *testing.T) (g *topology.Graph, via [2]Path, linksA, linksB [2]topology.LinkID) {
	t.Helper()
	g = topology.NewGraph()
	s := g.AddNode(topology.KindEdgeSwitch, "s")
	a := g.AddNode(topology.KindAggSwitch, "a")
	b := g.AddNode(topology.KindAggSwitch, "b")
	dst := g.AddNode(topology.KindEdgeSwitch, "t")
	mk := func(mid topology.NodeID, out *[2]topology.LinkID) Path {
		l1, err := g.AddLink(s, mid, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := g.AddLink(mid, dst, topology.Gbps)
		if err != nil {
			t.Fatal(err)
		}
		*out = [2]topology.LinkID{l1, l2}
		p, err := NewPath(g, []topology.LinkID{l1, l2})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	via[0] = mk(a, &linksA)
	via[1] = mk(b, &linksB)
	return g, via, linksA, linksB
}

func TestFirstFit(t *testing.T) {
	g, via, linksA, _ := forkGraph(t)
	var sel FirstFit

	p, ok := sel.Select(g, via[:], 100*topology.Mbps)
	if !ok || !p.Equal(via[0]) {
		t.Errorf("Select = %v,%v want first path", p, ok)
	}
	// Congest the first path; selection falls through to the second.
	if err := g.Reserve(linksA[0], topology.Gbps); err != nil {
		t.Fatal(err)
	}
	p, ok = sel.Select(g, via[:], 100*topology.Mbps)
	if !ok || !p.Equal(via[1]) {
		t.Errorf("Select after congestion = %v,%v want second path", p, ok)
	}
	// Nothing fits.
	if _, ok := sel.Select(g, via[:], 2*topology.Gbps); ok {
		t.Error("Select(2Gbps) = ok, want !ok")
	}
	if _, ok := sel.Select(g, nil, topology.Mbps); ok {
		t.Error("Select(no candidates) = ok, want !ok")
	}
}

func TestWidestFit(t *testing.T) {
	g, via, linksA, _ := forkGraph(t)
	var sel WidestFit

	// Load path A lightly; widest-fit must prefer the emptier path B.
	if err := g.Reserve(linksA[1], 300*topology.Mbps); err != nil {
		t.Fatal(err)
	}
	p, ok := sel.Select(g, via[:], 100*topology.Mbps)
	if !ok || !p.Equal(via[1]) {
		t.Errorf("Select = %v,%v want widest (second) path", p, ok)
	}
	// Demand that only path B satisfies.
	p, ok = sel.Select(g, via[:], 800*topology.Mbps)
	if !ok || !p.Equal(via[1]) {
		t.Errorf("Select(800Mbps) = %v,%v want second path", p, ok)
	}
	if _, ok := sel.Select(g, via[:], 2*topology.Gbps); ok {
		t.Error("Select(2Gbps) = ok, want !ok")
	}
}

func TestWidestFitTieBreaksFirst(t *testing.T) {
	g, via, _, _ := forkGraph(t)
	var sel WidestFit
	p, ok := sel.Select(g, via[:], topology.Mbps)
	if !ok || !p.Equal(via[0]) {
		t.Errorf("tied Select = %v,%v want first path", p, ok)
	}
}

func TestRandomFit(t *testing.T) {
	g, via, linksA, _ := forkGraph(t)
	sel := NewRandomFit(7)

	picked := make(map[int]int)
	for i := 0; i < 200; i++ {
		p, ok := sel.Select(g, via[:], 100*topology.Mbps)
		if !ok {
			t.Fatal("Select failed with feasible candidates")
		}
		for j := range via {
			if p.Equal(via[j]) {
				picked[j]++
			}
		}
	}
	if picked[0] == 0 || picked[1] == 0 {
		t.Errorf("RandomFit never picked one of the paths: %v", picked)
	}

	// Only path B feasible -> always B.
	if err := g.Reserve(linksA[0], topology.Gbps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p, ok := sel.Select(g, via[:], 100*topology.Mbps)
		if !ok || !p.Equal(via[1]) {
			t.Fatalf("Select with one feasible = %v,%v", p, ok)
		}
	}
	if _, ok := sel.Select(g, via[:], 2*topology.Gbps); ok {
		t.Error("Select(2Gbps) = ok, want !ok")
	}
}

func TestRandomFitDeterministicUnderSeed(t *testing.T) {
	g, via, _, _ := forkGraph(t)
	s1, s2 := NewRandomFit(99), NewRandomFit(99)
	for i := 0; i < 50; i++ {
		p1, ok1 := s1.Select(g, via[:], topology.Mbps)
		p2, ok2 := s2.Select(g, via[:], topology.Mbps)
		if ok1 != ok2 || !p1.Equal(p2) {
			t.Fatal("same-seed RandomFit selectors diverged")
		}
	}
}

func TestWidest(t *testing.T) {
	g, via, _, linksB := forkGraph(t)
	if err := g.Reserve(linksB[0], 900*topology.Mbps); err != nil {
		t.Fatal(err)
	}
	p, residual, ok := Widest(g, via[:])
	if !ok || !p.Equal(via[0]) || residual != topology.Gbps {
		t.Errorf("Widest = %v,%v,%v want path A with 1Gbps", p, residual, ok)
	}
	if _, _, ok := Widest(g, nil); ok {
		t.Error("Widest(no candidates) = ok, want !ok")
	}
	// Widest ignores feasibility: still returns the best even when full.
	g2, via2, lA, lB := forkGraph(t)
	if err := g2.Reserve(lA[0], topology.Gbps); err != nil {
		t.Fatal(err)
	}
	if err := g2.Reserve(lB[0], 999*topology.Mbps); err != nil {
		t.Fatal(err)
	}
	p, residual, ok = Widest(g2, via2[:])
	if !ok || !p.Equal(via2[1]) || residual != topology.Mbps {
		t.Errorf("Widest over congested = %v,%v,%v want path B with 1Mbps", p, residual, ok)
	}
}
