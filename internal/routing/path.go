// Package routing computes and selects paths over the network substrate.
//
// It provides the feasible path set P(f) of Section III-A: for every flow f
// the set of candidate routes it may take. For the Fat-Tree testbed this is
// the standard ECMP set (all equal-cost shortest paths); a BFS-based
// enumerator covers arbitrary graphs. Selection policies pick a concrete
// path from P(f) given the current residual bandwidths.
package routing

import (
	"fmt"
	"strings"

	"netupdate/internal/topology"
)

// Path is a loop-free sequence of directed links from a source node to a
// destination node.
type Path struct {
	links []topology.LinkID
	src   topology.NodeID
	dst   topology.NodeID
}

// NewPath builds a Path from an ordered link sequence. It validates that
// consecutive links chain head-to-tail and returns an error otherwise.
func NewPath(g *topology.Graph, links []topology.LinkID) (Path, error) {
	if len(links) == 0 {
		return Path{}, fmt.Errorf("routing: empty path")
	}
	for i := 1; i < len(links); i++ {
		prev, cur := g.Link(links[i-1]), g.Link(links[i])
		if prev.To != cur.From {
			return Path{}, fmt.Errorf("routing: link %v does not continue %v", cur, prev)
		}
	}
	cp := make([]topology.LinkID, len(links))
	copy(cp, links)
	return Path{
		links: cp,
		src:   g.Link(links[0]).From,
		dst:   g.Link(links[len(links)-1]).To,
	}, nil
}

// IsZero reports whether the path is the zero value (no links).
func (p Path) IsZero() bool { return len(p.links) == 0 }

// Src returns the path's source node.
func (p Path) Src() topology.NodeID { return p.src }

// Dst returns the path's destination node.
func (p Path) Dst() topology.NodeID { return p.dst }

// Len returns the number of links (hops) in the path.
func (p Path) Len() int { return len(p.links) }

// Links returns the path's link IDs. The returned slice is owned by the
// path and must not be modified.
func (p Path) Links() []topology.LinkID { return p.links }

// Contains reports whether the path traverses the given link.
func (p Path) Contains(id topology.LinkID) bool {
	for _, l := range p.links {
		if l == id {
			return true
		}
	}
	return false
}

// MinResidual returns the bottleneck residual bandwidth along the path:
// the largest demand the path can currently accommodate.
func (p Path) MinResidual(g *topology.Graph) topology.Bandwidth {
	if len(p.links) == 0 {
		return 0
	}
	min := g.Link(p.links[0]).Residual()
	for _, l := range p.links[1:] {
		if r := g.Link(l).Residual(); r < min {
			min = r
		}
	}
	return min
}

// Fits reports whether every link on the path has at least demand residual
// bandwidth.
func (p Path) Fits(g *topology.Graph, demand topology.Bandwidth) bool {
	return p.MinResidual(g) >= demand
}

// CongestedLinks returns the links whose residual bandwidth is below the
// demand — the set E^c of Definition 1 for a flow taking this path.
func (p Path) CongestedLinks(g *topology.Graph, demand topology.Bandwidth) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range p.links {
		if g.Link(l).Residual() < demand {
			out = append(out, l)
		}
	}
	return out
}

// Format renders the path as a node chain, e.g. "3 -> 17 -> 42".
func (p Path) Format(g *topology.Graph) string {
	if len(p.links) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	b.WriteString(g.Node(p.src).Name)
	for _, l := range p.links {
		b.WriteString(" -> ")
		b.WriteString(g.Node(g.Link(l).To).Name)
	}
	return b.String()
}

// Equal reports whether two paths traverse exactly the same link sequence.
func (p Path) Equal(q Path) bool {
	if len(p.links) != len(q.links) {
		return false
	}
	for i := range p.links {
		if p.links[i] != q.links[i] {
			return false
		}
	}
	return true
}

// Provider enumerates the feasible path set P(f) between two nodes.
// Implementations must return the same set (same order) for the same pair,
// so that callers can rely on deterministic behaviour under a fixed seed.
type Provider interface {
	// Paths returns all candidate paths from src to dst. The returned
	// slice and its paths are owned by the provider and must not be
	// modified. An empty result means the pair is unroutable.
	Paths(src, dst topology.NodeID) []Path
}
