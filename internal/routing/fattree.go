package routing

import (
	"fmt"
	"sync"

	"netupdate/internal/topology"
)

// FatTreeProvider enumerates the ECMP path set between host pairs of a
// Fat-Tree: all equal-cost shortest paths. For a k-ary tree these are
//
//   - 1 path when both hosts share an edge switch,
//   - k/2 paths (one per aggregation switch) within a pod,
//   - (k/2)^2 paths (one per aggregation/core pair) across pods.
//
// Path sets are computed lazily and cached; the provider is therefore
// cheap to query repeatedly for the same pair, which the migration planner
// does heavily. The cache is guarded by a read-write lock so concurrent
// probes on forked networks can share one provider (and one warm cache).
type FatTreeProvider struct {
	ft    *topology.FatTree
	mu    sync.RWMutex
	cache map[[2]topology.NodeID][]Path
}

var _ Provider = (*FatTreeProvider)(nil)

// NewFatTreeProvider returns a Provider over the given Fat-Tree.
func NewFatTreeProvider(ft *topology.FatTree) *FatTreeProvider {
	return &FatTreeProvider{
		ft:    ft,
		cache: make(map[[2]topology.NodeID][]Path),
	}
}

// Paths implements Provider. Both endpoints must be hosts of the Fat-Tree;
// other node pairs (and equal src/dst) yield an empty set.
func (p *FatTreeProvider) Paths(src, dst topology.NodeID) []Path {
	if src == dst {
		return nil
	}
	key := [2]topology.NodeID{src, dst}
	p.mu.RLock()
	paths, ok := p.cache[key]
	p.mu.RUnlock()
	if ok {
		return paths
	}
	paths = p.compute(src, dst)
	p.mu.Lock()
	// A concurrent probe may have computed the same pair; keep the first
	// entry so every caller sees one canonical slice.
	if prior, ok := p.cache[key]; ok {
		paths = prior
	} else {
		p.cache[key] = paths
	}
	p.mu.Unlock()
	return paths
}

// compute enumerates the ECMP set for one ordered host pair.
func (p *FatTreeProvider) compute(src, dst topology.NodeID) []Path {
	ft := p.ft
	g := ft.Graph()
	sPod, sEdge, _, ok := ft.HostAddr(src)
	if !ok {
		return nil
	}
	dPod, dEdge, _, ok := ft.HostAddr(dst)
	if !ok {
		return nil
	}
	half := ft.K / 2
	se := ft.Edge(sPod, sEdge)
	de := ft.Edge(dPod, dEdge)

	// chain builds a Path from a node walk, panicking on a missing link —
	// impossible by Fat-Tree construction, so a panic indicates corruption.
	chain := func(nodes ...topology.NodeID) Path {
		links := make([]topology.LinkID, 0, len(nodes)-1)
		for i := 1; i < len(nodes); i++ {
			l, ok := g.LinkBetween(nodes[i-1], nodes[i])
			if !ok {
				panic(fmt.Sprintf("routing: fat-tree missing link %v->%v", nodes[i-1], nodes[i]))
			}
			links = append(links, l)
		}
		path, err := NewPath(g, links)
		if err != nil {
			panic(fmt.Sprintf("routing: fat-tree path invalid: %v", err))
		}
		return path
	}

	switch {
	case se == de:
		return []Path{chain(src, se, dst)}
	case sPod == dPod:
		paths := make([]Path, 0, half)
		for a := 0; a < half; a++ {
			paths = append(paths, chain(src, se, ft.Agg(sPod, a), de, dst))
		}
		return paths
	default:
		paths := make([]Path, 0, half*half)
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				core := ft.Core(a, j)
				paths = append(paths, chain(src, se, ft.Agg(sPod, a), core, ft.Agg(dPod, a), de, dst))
			}
		}
		return paths
	}
}
