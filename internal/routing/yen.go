package routing

import (
	"container/heap"
	"sync"

	"netupdate/internal/topology"
)

// KShortestProvider enumerates the K shortest loopless paths between node
// pairs of an arbitrary graph using Yen's algorithm (hop-count metric).
// Unlike BFSProvider it also returns paths longer than the shortest, which
// matters for migration on general topologies: a victim's detour off a
// congested link is often one hop longer than its current route, and a
// shortest-only candidate set would hide it.
type KShortestProvider struct {
	g *topology.Graph
	k int
	// cache memoizes per-pair path sets; lock-guarded so concurrent
	// probes on forked networks can share it.
	mu    sync.RWMutex
	cache map[[2]topology.NodeID][]Path
}

var _ Provider = (*KShortestProvider)(nil)

// NewKShortestProvider returns a Provider yielding up to k loopless paths
// per pair (k >= 1), ordered by increasing hop count.
func NewKShortestProvider(g *topology.Graph, k int) *KShortestProvider {
	if k < 1 {
		k = 1
	}
	return &KShortestProvider{
		g:     g,
		k:     k,
		cache: make(map[[2]topology.NodeID][]Path),
	}
}

// Invalidate drops all cached path sets (call after structural changes).
func (p *KShortestProvider) Invalidate() {
	p.mu.Lock()
	p.cache = make(map[[2]topology.NodeID][]Path)
	p.mu.Unlock()
}

// Paths implements Provider.
func (p *KShortestProvider) Paths(src, dst topology.NodeID) []Path {
	if src == dst {
		return nil
	}
	key := [2]topology.NodeID{src, dst}
	p.mu.RLock()
	paths, ok := p.cache[key]
	p.mu.RUnlock()
	if ok {
		return paths
	}
	paths = p.compute(src, dst)
	p.mu.Lock()
	if prior, ok := p.cache[key]; ok {
		paths = prior
	} else {
		p.cache[key] = paths
	}
	p.mu.Unlock()
	return paths
}

// pathCandidates is a min-heap of candidate paths ordered by length, with
// a deterministic link-sequence tie-break.
type pathCandidates []Path

var _ heap.Interface = (*pathCandidates)(nil)

func (h pathCandidates) Len() int { return len(h) }

func (h pathCandidates) Less(i, j int) bool {
	if h[i].Len() != h[j].Len() {
		return h[i].Len() < h[j].Len()
	}
	a, b := h[i].Links(), h[j].Links()
	for x := range a {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}

func (h pathCandidates) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *pathCandidates) Push(x any) {
	path, ok := x.(Path)
	if !ok {
		panic("routing: pathCandidates.Push: not a Path")
	}
	*h = append(*h, path)
}

// Pop implements heap.Interface.
func (h *pathCandidates) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// compute runs Yen's algorithm for one pair.
func (p *KShortestProvider) compute(src, dst topology.NodeID) []Path {
	first, ok := p.shortestPath(src, dst, nil, nil)
	if !ok {
		return nil
	}
	result := []Path{first}
	var candidates pathCandidates

	for len(result) < p.k {
		prev := result[len(result)-1]
		prevLinks := prev.Links()
		// For each spur node along the previous path, ban the link
		// prefixes shared with already-found paths and the root-path
		// nodes, then find a deviation.
		for i := 0; i < len(prevLinks); i++ {
			spur := p.g.Link(prevLinks[i]).From
			rootLinks := prevLinks[:i]

			bannedLinks := make(map[topology.LinkID]bool)
			for _, found := range result {
				fl := found.Links()
				if len(fl) > i && samePrefix(fl[:i], rootLinks) {
					bannedLinks[fl[i]] = true
				}
			}
			// Ban every root-path node except the spur itself, so the
			// deviation cannot loop back through the prefix.
			bannedNodes := make(map[topology.NodeID]bool)
			node := src
			for _, l := range rootLinks {
				bannedNodes[node] = true
				node = p.g.Link(l).To
			}
			delete(bannedNodes, spur)

			spurPath, ok := p.shortestPath(spur, dst, bannedLinks, bannedNodes)
			if !ok {
				continue
			}
			total := make([]topology.LinkID, 0, len(rootLinks)+spurPath.Len())
			total = append(total, rootLinks...)
			total = append(total, spurPath.Links()...)
			candidate, err := NewPath(p.g, total)
			if err != nil {
				continue
			}
			if !containsPath(result, candidate) && !containsPath(candidates, candidate) {
				heap.Push(&candidates, candidate)
			}
		}
		if candidates.Len() == 0 {
			break
		}
		next := heap.Pop(&candidates).(Path)
		result = append(result, next)
	}
	return result
}

// shortestPath is BFS from src to dst avoiding banned links and nodes.
func (p *KShortestProvider) shortestPath(src, dst topology.NodeID, bannedLinks map[topology.LinkID]bool, bannedNodes map[topology.NodeID]bool) (Path, bool) {
	g := p.g
	const unvisited = -1
	prev := make([]topology.LinkID, g.NumNodes())
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = unvisited
		prev[i] = topology.InvalidLink
	}
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 && dist[dst] == unvisited {
		u := queue[0]
		queue = queue[1:]
		for _, lid := range g.Out(u) {
			if bannedLinks[lid] {
				continue
			}
			v := g.Link(lid).To
			if bannedNodes[v] {
				continue
			}
			if dist[v] == unvisited {
				dist[v] = dist[u] + 1
				prev[v] = lid
				queue = append(queue, v)
			}
		}
	}
	if dist[dst] == unvisited {
		return Path{}, false
	}
	links := make([]topology.LinkID, dist[dst])
	node := dst
	for i := dist[dst] - 1; i >= 0; i-- {
		links[i] = prev[node]
		node = g.Link(prev[node]).From
	}
	path, err := NewPath(g, links)
	if err != nil {
		panic("routing: yen shortest produced invalid path: " + err.Error())
	}
	return path, true
}

// samePrefix reports whether two link sequences are identical.
func samePrefix(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// containsPath reports whether the set already holds an equal path.
func containsPath(set []Path, p Path) bool {
	for _, q := range set {
		if q.Equal(p) {
			return true
		}
	}
	return false
}
