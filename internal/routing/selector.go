package routing

import (
	"math/rand"

	"netupdate/internal/detrand"
	"netupdate/internal/topology"
)

// Selector picks a concrete path for a demand from a candidate set.
// Implementations must be deterministic given their own state (seeded RNGs
// included) so simulations are reproducible.
type Selector interface {
	// Select returns a path from candidates that can carry demand, and
	// ok=true; or the zero Path and ok=false when no candidate fits.
	Select(g *topology.Graph, candidates []Path, demand topology.Bandwidth) (path Path, ok bool)
}

// FirstFit selects the first candidate with enough residual bandwidth.
// It mirrors static ECMP-style deterministic placement.
type FirstFit struct{}

var _ Selector = FirstFit{}

// Select implements Selector.
func (FirstFit) Select(g *topology.Graph, candidates []Path, demand topology.Bandwidth) (Path, bool) {
	for _, p := range candidates {
		if p.Fits(g, demand) {
			return p, true
		}
	}
	return Path{}, false
}

// WidestFit selects the feasible candidate with the largest bottleneck
// residual bandwidth, spreading load across the ECMP set. Ties break
// toward the earliest candidate, keeping selection deterministic.
type WidestFit struct{}

var _ Selector = WidestFit{}

// Select implements Selector.
func (WidestFit) Select(g *topology.Graph, candidates []Path, demand topology.Bandwidth) (Path, bool) {
	best := -1
	var bestResidual topology.Bandwidth
	for i, p := range candidates {
		r := p.MinResidual(g)
		if r < demand {
			continue
		}
		if best == -1 || r > bestResidual {
			best, bestResidual = i, r
		}
	}
	if best == -1 {
		return Path{}, false
	}
	return candidates[best], true
}

// RandomFit selects uniformly at random among the feasible candidates,
// modeling hash-based ECMP spraying. It is deterministic under its seed,
// and its RNG position is checkpointable via RNGDraws/RestoreRNG.
type RandomFit struct {
	rng *rand.Rand
	src *detrand.CountedSource
}

var _ Selector = (*RandomFit)(nil)

// NewRandomFit returns a RandomFit driven by the given seed.
func NewRandomFit(seed int64) *RandomFit {
	src := detrand.New(seed)
	return &RandomFit{rng: rand.New(src), src: src}
}

// RNGDraws returns the number of RNG draws consumed so far.
func (s *RandomFit) RNGDraws() int64 { return s.src.Draws() }

// RestoreRNG repositions the RNG stream at the given draw count
// (checkpoint recovery).
func (s *RandomFit) RestoreRNG(draws int64) { s.src.Restore(draws) }

// Select implements Selector.
func (s *RandomFit) Select(g *topology.Graph, candidates []Path, demand topology.Bandwidth) (Path, bool) {
	feasible := make([]int, 0, len(candidates))
	for i, p := range candidates {
		if p.Fits(g, demand) {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) == 0 {
		return Path{}, false
	}
	return candidates[feasible[s.rng.Intn(len(feasible))]], true
}

// Widest returns the candidate with the largest bottleneck residual
// regardless of feasibility, plus that residual. It is used to pick the
// "desired path" a congested flow would take before migration frees room
// (Definition 1 examines the congested links of that desired path).
// ok is false only when candidates is empty.
func Widest(g *topology.Graph, candidates []Path) (path Path, residual topology.Bandwidth, ok bool) {
	best := -1
	var bestResidual topology.Bandwidth
	for i, p := range candidates {
		r := p.MinResidual(g)
		if best == -1 || r > bestResidual {
			best, bestResidual = i, r
		}
	}
	if best == -1 {
		return Path{}, 0, false
	}
	return candidates[best], bestResidual, true
}
