package routing

import (
	"testing"

	"netupdate/internal/topology"
)

func newFT(t *testing.T, k int) (*topology.FatTree, *FatTreeProvider) {
	t.Helper()
	ft, err := topology.NewFatTree(k, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	return ft, NewFatTreeProvider(ft)
}

func TestFatTreePathCounts(t *testing.T) {
	const k = 8
	ft, prov := newFT(t, k)
	half := k / 2

	tests := []struct {
		name     string
		src, dst topology.NodeID
		want     int
		wantHops int
	}{
		{"same edge switch", ft.Host(0, 0, 0), ft.Host(0, 0, 1), 1, 2},
		{"same pod", ft.Host(0, 0, 0), ft.Host(0, 1, 0), half, 4},
		{"cross pod", ft.Host(0, 0, 0), ft.Host(5, 2, 3), half * half, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			paths := prov.Paths(tt.src, tt.dst)
			if len(paths) != tt.want {
				t.Fatalf("got %d paths, want %d", len(paths), tt.want)
			}
			for _, p := range paths {
				if p.Src() != tt.src || p.Dst() != tt.dst {
					t.Errorf("path endpoints %v->%v, want %v->%v", p.Src(), p.Dst(), tt.src, tt.dst)
				}
				if p.Len() != tt.wantHops {
					t.Errorf("path length %d, want %d", p.Len(), tt.wantHops)
				}
			}
		})
	}
}

func TestFatTreePathsDistinct(t *testing.T) {
	ft, prov := newFT(t, 4)
	paths := prov.Paths(ft.Host(0, 0, 0), ft.Host(3, 1, 1))
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if paths[i].Equal(paths[j]) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
}

func TestFatTreePathsLoopFree(t *testing.T) {
	ft, prov := newFT(t, 4)
	g := ft.Graph()
	for _, src := range ft.Hosts() {
		for _, dst := range ft.Hosts() {
			if src == dst {
				continue
			}
			for _, p := range prov.Paths(src, dst) {
				seen := map[topology.NodeID]bool{p.Src(): true}
				for _, l := range p.Links() {
					to := g.Link(l).To
					if seen[to] {
						t.Fatalf("path %s revisits node %v", p.Format(g), to)
					}
					seen[to] = true
				}
			}
		}
	}
}

func TestFatTreePathsDegenerate(t *testing.T) {
	ft, prov := newFT(t, 4)
	h := ft.Host(0, 0, 0)
	if got := prov.Paths(h, h); got != nil {
		t.Errorf("Paths(h,h) = %v, want nil", got)
	}
	// Switch endpoints are not addressable hosts.
	if got := prov.Paths(ft.Core(0, 0), h); got != nil {
		t.Errorf("Paths(core,h) = %v, want nil", got)
	}
	if got := prov.Paths(h, ft.Agg(1, 0)); got != nil {
		t.Errorf("Paths(h,agg) = %v, want nil", got)
	}
}

func TestFatTreePathsCached(t *testing.T) {
	ft, prov := newFT(t, 4)
	src, dst := ft.Host(0, 0, 0), ft.Host(1, 0, 0)
	a := prov.Paths(src, dst)
	b := prov.Paths(src, dst)
	if len(a) != len(b) {
		t.Fatalf("cache changed path count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("cache changed path %d", i)
		}
	}
}

// TestFatTreeCrossPodPathsUseDistinctCores verifies the (k/2)^2 cross-pod
// paths each route over a distinct core switch.
func TestFatTreeCrossPodPathsUseDistinctCores(t *testing.T) {
	ft, prov := newFT(t, 8)
	g := ft.Graph()
	paths := prov.Paths(ft.Host(0, 0, 0), ft.Host(7, 3, 3))
	cores := make(map[topology.NodeID]bool)
	for _, p := range paths {
		var core topology.NodeID = topology.InvalidNode
		for _, l := range p.Links() {
			if g.Node(g.Link(l).To).Kind == topology.KindCoreSwitch {
				core = g.Link(l).To
			}
		}
		if core == topology.InvalidNode {
			t.Fatalf("cross-pod path %s traverses no core switch", p.Format(g))
		}
		if cores[core] {
			t.Errorf("core %v used by multiple paths", core)
		}
		cores[core] = true
	}
	if len(cores) != 16 {
		t.Errorf("distinct cores = %d, want 16", len(cores))
	}
}
