package routing

import (
	"strings"
	"testing"

	"netupdate/internal/topology"
)

// lineGraph builds a -> b -> c with 1 Gbps links and returns the graph,
// node IDs and link IDs.
func lineGraph(t *testing.T) (g *topology.Graph, nodes [3]topology.NodeID, links [2]topology.LinkID) {
	t.Helper()
	g = topology.NewGraph()
	nodes[0] = g.AddNode(topology.KindHost, "a")
	nodes[1] = g.AddNode(topology.KindEdgeSwitch, "b")
	nodes[2] = g.AddNode(topology.KindHost, "c")
	var err error
	if links[0], err = g.AddLink(nodes[0], nodes[1], topology.Gbps); err != nil {
		t.Fatal(err)
	}
	if links[1], err = g.AddLink(nodes[1], nodes[2], topology.Gbps); err != nil {
		t.Fatal(err)
	}
	return g, nodes, links
}

func TestNewPath(t *testing.T) {
	g, nodes, links := lineGraph(t)

	p, err := NewPath(g, links[:])
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	if p.Src() != nodes[0] || p.Dst() != nodes[2] {
		t.Errorf("endpoints = %v -> %v, want %v -> %v", p.Src(), p.Dst(), nodes[0], nodes[2])
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	if p.IsZero() {
		t.Error("IsZero() = true for non-empty path")
	}

	if _, err := NewPath(g, nil); err == nil {
		t.Error("NewPath(empty) succeeded, want error")
	}
	// Links out of order do not chain.
	if _, err := NewPath(g, []topology.LinkID{links[1], links[0]}); err == nil {
		t.Error("NewPath(unchained) succeeded, want error")
	}
}

func TestNewPathCopiesInput(t *testing.T) {
	g, _, links := lineGraph(t)
	in := []topology.LinkID{links[0], links[1]}
	p, err := NewPath(g, in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = topology.InvalidLink
	if p.Links()[0] != links[0] {
		t.Error("mutating input slice changed the path")
	}
}

func TestPathResidualAndCongestion(t *testing.T) {
	g, _, links := lineGraph(t)
	p, err := NewPath(g, links[:])
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MinResidual(g); got != topology.Gbps {
		t.Errorf("MinResidual = %v, want 1Gbps", got)
	}
	if !p.Fits(g, topology.Gbps) {
		t.Error("Fits(1Gbps) = false, want true")
	}

	if err := g.Reserve(links[1], 800*topology.Mbps); err != nil {
		t.Fatal(err)
	}
	if got := p.MinResidual(g); got != 200*topology.Mbps {
		t.Errorf("MinResidual = %v, want 200Mbps", got)
	}
	if p.Fits(g, 300*topology.Mbps) {
		t.Error("Fits(300Mbps) = true, want false")
	}
	congested := p.CongestedLinks(g, 300*topology.Mbps)
	if len(congested) != 1 || congested[0] != links[1] {
		t.Errorf("CongestedLinks = %v, want [%v]", congested, links[1])
	}
	if got := p.CongestedLinks(g, 100*topology.Mbps); got != nil {
		t.Errorf("CongestedLinks under demand = %v, want none", got)
	}
}

func TestPathContainsAndEqual(t *testing.T) {
	g, _, links := lineGraph(t)
	p, err := NewPath(g, links[:])
	if err != nil {
		t.Fatal(err)
	}
	short, err := NewPath(g, links[:1])
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(links[0]) || !p.Contains(links[1]) {
		t.Error("Contains missed a member link")
	}
	if short.Contains(links[1]) {
		t.Error("Contains reported a non-member link")
	}
	if !p.Equal(p) {
		t.Error("Equal(self) = false")
	}
	if p.Equal(short) {
		t.Error("Equal(different length) = true")
	}
}

func TestPathFormat(t *testing.T) {
	g, _, links := lineGraph(t)
	p, err := NewPath(g, links[:])
	if err != nil {
		t.Fatal(err)
	}
	got := p.Format(g)
	if !strings.Contains(got, "a") || !strings.Contains(got, "b") || !strings.Contains(got, "c") {
		t.Errorf("Format = %q, want all node names", got)
	}
	if (Path{}).Format(g) != "<empty>" {
		t.Errorf("zero path Format = %q", (Path{}).Format(g))
	}
}

func TestZeroPath(t *testing.T) {
	var p Path
	if !p.IsZero() {
		t.Error("zero path IsZero() = false")
	}
	g := topology.NewGraph()
	if got := p.MinResidual(g); got != 0 {
		t.Errorf("zero path MinResidual = %v, want 0", got)
	}
}
