// Package trace generates workloads: flow traffic models, update-event
// generators and the background-traffic filler that drives the network to
// a target utilization (Section V-A).
//
// Substitution note: the paper replays a proprietary Yahoo! inter-data-
// center trace [11] and a random trace with the traffic characteristics of
// Benson et al. [12]. Neither dataset is publicly redistributable, so this
// package provides synthetic equivalents: YahooLike reproduces the
// distributional shape that drives the paper's results — a heavy-tailed
// flow-size mix (many mice, few elephants carrying most bytes) — and
// Uniform reproduces the "random trace". The scheduling results depend on
// the shape (heavy tails cause head-of-line blocking), not on trace bytes;
// all parameters are documented and overridable.
package trace

import (
	"math"
	"math/rand"

	"netupdate/internal/topology"
)

// Model samples the (size, demand) of one flow.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Sample draws one flow's payload size in bytes and bandwidth demand.
	Sample(rng *rand.Rand) (size int64, demand topology.Bandwidth)
}

// YahooLike is a synthetic stand-in for the Yahoo! data-center trace:
// an 80/20 mice/elephant mix with log-normal size bodies, matching the
// qualitative statistics reported for data-center traffic (most flows are
// small; a few large flows carry most of the bytes).
type YahooLike struct {
	// MiceFraction is the probability a sampled flow is a mouse
	// (default 0.8).
	MiceFraction float64
	// MiceMedianBytes and ElephantMedianBytes are the medians of the two
	// log-normal size distributions (defaults 20 KB and 10 MB).
	MiceMedianBytes     float64
	ElephantMedianBytes float64
	// Sigma is the log-normal shape parameter (default 1.2).
	Sigma float64
	// MiceDemand / ElephantDemand bound the uniform demand draw in Mbps
	// (defaults 1–10 and 10–100).
	MiceDemandMinMbps     int
	MiceDemandMaxMbps     int
	ElephantDemandMinMbps int
	ElephantDemandMaxMbps int
}

var _ Model = YahooLike{}

// Name implements Model.
func (YahooLike) Name() string { return "yahoo-like" }

// Sample implements Model.
func (m YahooLike) Sample(rng *rand.Rand) (int64, topology.Bandwidth) {
	m = m.withDefaults()
	if rng.Float64() < m.MiceFraction {
		size := logNormal(rng, m.MiceMedianBytes, m.Sigma)
		demand := uniformMbps(rng, m.MiceDemandMinMbps, m.MiceDemandMaxMbps)
		return size, demand
	}
	size := logNormal(rng, m.ElephantMedianBytes, m.Sigma)
	demand := uniformMbps(rng, m.ElephantDemandMinMbps, m.ElephantDemandMaxMbps)
	return size, demand
}

func (m YahooLike) withDefaults() YahooLike {
	if m.MiceFraction == 0 {
		m.MiceFraction = 0.8
	}
	if m.MiceMedianBytes == 0 {
		m.MiceMedianBytes = 20e3
	}
	if m.ElephantMedianBytes == 0 {
		m.ElephantMedianBytes = 10e6
	}
	if m.Sigma == 0 {
		m.Sigma = 1.2
	}
	if m.MiceDemandMinMbps == 0 {
		m.MiceDemandMinMbps = 1
	}
	if m.MiceDemandMaxMbps == 0 {
		m.MiceDemandMaxMbps = 10
	}
	if m.ElephantDemandMinMbps == 0 {
		m.ElephantDemandMinMbps = 10
	}
	if m.ElephantDemandMaxMbps == 0 {
		m.ElephantDemandMaxMbps = 100
	}
	return m
}

// Uniform is the "random trace": sizes and demands drawn uniformly.
type Uniform struct {
	// MinBytes/MaxBytes bound the size draw (defaults 10 KB / 10 MB).
	MinBytes int64
	MaxBytes int64
	// MinDemandMbps/MaxDemandMbps bound the demand draw (defaults 1/100).
	MinDemandMbps int
	MaxDemandMbps int
}

var _ Model = Uniform{}

// Name implements Model.
func (Uniform) Name() string { return "uniform" }

// Sample implements Model.
func (m Uniform) Sample(rng *rand.Rand) (int64, topology.Bandwidth) {
	if m.MinBytes == 0 {
		m.MinBytes = 10e3
	}
	if m.MaxBytes == 0 {
		m.MaxBytes = 10e6
	}
	if m.MinDemandMbps == 0 {
		m.MinDemandMbps = 1
	}
	if m.MaxDemandMbps == 0 {
		m.MaxDemandMbps = 100
	}
	size := m.MinBytes + rng.Int63n(m.MaxBytes-m.MinBytes+1)
	demand := uniformMbps(rng, m.MinDemandMbps, m.MaxDemandMbps)
	return size, demand
}

// logNormal draws a log-normal sample with the given median and shape,
// clamped to at least 1 byte.
func logNormal(rng *rand.Rand, median, sigma float64) int64 {
	v := math.Exp(math.Log(median) + sigma*rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// uniformMbps draws a uniform integer demand in [min, max] Mbps.
func uniformMbps(rng *rand.Rand, min, max int) topology.Bandwidth {
	if max < min {
		min, max = max, min
	}
	return topology.Bandwidth(min+rng.Intn(max-min+1)) * topology.Mbps
}
