package trace

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/routing"
	"netupdate/internal/topology"
)

func TestModelsSampleValidValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Model{YahooLike{}, Uniform{}} {
		t.Run(m.Name(), func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				size, demand := m.Sample(rng)
				if size < 1 {
					t.Fatalf("size = %d, want >= 1", size)
				}
				if demand < topology.Mbps || demand > 100*topology.Mbps {
					t.Fatalf("demand = %v, want within [1,100] Mbps", demand)
				}
			}
		})
	}
}

func TestYahooLikeIsHeavyTailed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := YahooLike{}
	sizes := make([]float64, 5000)
	var total float64
	for i := range sizes {
		s, _ := m.Sample(rng)
		sizes[i] = float64(s)
		total += float64(s)
	}
	sort.Float64s(sizes)
	// Heavy tail: the top 10% of flows must carry the majority of bytes.
	var topTotal float64
	for _, s := range sizes[len(sizes)*9/10:] {
		topTotal += s
	}
	if frac := topTotal / total; frac < 0.5 {
		t.Errorf("top-decile byte share = %.2f, want >= 0.5 (heavy tail)", frac)
	}
	// And the median must be small (mice dominate).
	if median := sizes[len(sizes)/2]; median > 1e6 {
		t.Errorf("median size = %.0f bytes, want mice-sized (< 1MB)", median)
	}
}

func TestUniformRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Uniform{MinBytes: 100, MaxBytes: 200, MinDemandMbps: 5, MaxDemandMbps: 7}
	for i := 0; i < 500; i++ {
		size, demand := m.Sample(rng)
		if size < 100 || size > 200 {
			t.Fatalf("size = %d out of [100,200]", size)
		}
		if demand < 5*topology.Mbps || demand > 7*topology.Mbps {
			t.Fatalf("demand = %v out of [5,7] Mbps", demand)
		}
	}
}

func newGen(t *testing.T, seed int64) (*Generator, *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(seed, YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	return g, ft
}

func TestNewGeneratorNeedsHosts(t *testing.T) {
	if _, err := NewGenerator(1, YahooLike{}, []topology.NodeID{1}); err == nil {
		t.Error("NewGenerator with 1 host succeeded")
	}
}

func TestGeneratorSpecsAreValid(t *testing.T) {
	g, _ := newGen(t, 4)
	for _, spec := range g.Specs(500) {
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated invalid spec: %v", err)
		}
		if spec.Event != flow.NoEvent {
			t.Fatal("plain spec carries an event ID")
		}
	}
}

func TestGeneratorEventFlowCounts(t *testing.T) {
	g, _ := newGen(t, 5)
	for i := 0; i < 100; i++ {
		ev := g.Event(flow.EventID(i+1), "test", 0, 10, 100)
		if n := ev.NumFlows(); n < 10 || n > 100 {
			t.Fatalf("event flow count = %d, want [10,100]", n)
		}
		for _, s := range ev.Specs {
			if s.Event != ev.ID {
				t.Fatal("event spec not stamped with event ID")
			}
		}
	}
	// Degenerate range and swapped bounds.
	if n := g.Event(1, "t", 0, 7, 7).NumFlows(); n != 7 {
		t.Errorf("fixed-count event has %d flows, want 7", n)
	}
	if n := g.Event(1, "t", 0, 9, 3).NumFlows(); n < 3 || n > 9 {
		t.Errorf("swapped-bounds event has %d flows", n)
	}
}

func TestGeneratorEventsBatch(t *testing.T) {
	g, _ := newGen(t, 6)
	evs := g.Events(20, 10, 100)
	if len(evs) != 20 {
		t.Fatalf("Events = %d, want 20", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != flow.EventID(i+1) {
			t.Errorf("event %d ID = %d", i, ev.ID)
		}
		if ev.Arrival != 0 {
			t.Errorf("event %d arrival = %v, want 0", i, ev.Arrival)
		}
	}
}

func TestGeneratorDeterministicUnderSeed(t *testing.T) {
	g1, _ := newGen(t, 42)
	g2, _ := newGen(t, 42)
	for i := 0; i < 200; i++ {
		a, b := g1.Spec(), g2.Spec()
		if a != b {
			t.Fatalf("same-seed generators diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestFillBackgroundReachesTarget(t *testing.T) {
	g, ft := newGen(t, 7)
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	placed, err := FillBackground(net, g, 0.3, 0)
	if err != nil {
		t.Fatalf("FillBackground: %v", err)
	}
	if len(placed) == 0 {
		t.Fatal("no background flows placed")
	}
	if got := net.Utilization(); got < 0.3 {
		t.Errorf("utilization = %.3f, want >= 0.3", got)
	}
	for _, f := range placed {
		if !f.Placed() {
			t.Errorf("background flow %v not placed", f)
		}
		if f.Event != flow.NoEvent {
			t.Errorf("background flow %v carries event ID", f)
		}
	}
}

func TestFillBackgroundUnreachableTarget(t *testing.T) {
	g, ft := newGen(t, 8)
	net := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	// 100% utilization of every link is unreachable with unsplittable flows.
	_, err := FillBackground(net, g, 0.999, 50)
	if !errors.Is(err, ErrTargetUnreachable) {
		t.Errorf("error = %v, want ErrTargetUnreachable", err)
	}
}

func TestEventsPoissonWithinTracePackage(t *testing.T) {
	g, _ := newGen(t, 44)
	events := g.EventsPoisson(20, 2, 4, time.Second)
	if len(events) != 20 {
		t.Fatalf("events = %d, want 20", len(events))
	}
	if events[0].Arrival != 0 {
		t.Errorf("first arrival = %v, want 0", events[0].Arrival)
	}
	var last time.Duration
	for i, ev := range events {
		if ev.Arrival < last {
			t.Fatalf("event %d arrival %v before %v", i, ev.Arrival, last)
		}
		last = ev.Arrival
		if n := ev.NumFlows(); n < 2 || n > 4 {
			t.Errorf("event %d flows = %d, want [2,4]", i, n)
		}
	}
	if last == 0 {
		t.Error("all arrivals at 0; expected spread")
	}
}
