package trace

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/flow"
	"netupdate/internal/netstate"
	"netupdate/internal/topology"
)

// ErrTargetUnreachable is returned by FillBackground when the utilization
// target cannot be reached (placements keep failing).
var ErrTargetUnreachable = errors.New("trace: utilization target unreachable")

// Generator draws flows and update events over a fixed host set using a
// traffic model and a seeded RNG. The paper maps the trace's anonymized
// IPs onto testbed hosts with a hash; drawing uniform host pairs from a
// seeded RNG is the equivalent construction for synthetic traffic.
type Generator struct {
	rng   *rand.Rand
	model Model
	hosts []topology.NodeID
}

// NewGenerator returns a Generator over the given hosts (at least 2).
func NewGenerator(seed int64, model Model, hosts []topology.NodeID) (*Generator, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("trace: need at least 2 hosts, have %d", len(hosts))
	}
	cp := make([]topology.NodeID, len(hosts))
	copy(cp, hosts)
	return &Generator{
		rng:   rand.New(rand.NewSource(seed)),
		model: model,
		hosts: cp,
	}, nil
}

// Spec draws one flow between a uniformly random distinct host pair.
func (g *Generator) Spec() flow.Spec {
	src := g.hosts[g.rng.Intn(len(g.hosts))]
	dst := src
	for dst == src {
		dst = g.hosts[g.rng.Intn(len(g.hosts))]
	}
	size, demand := g.model.Sample(g.rng)
	return flow.Spec{Src: src, Dst: dst, Demand: demand, Size: size}
}

// Specs draws n flows.
func (g *Generator) Specs(n int) []flow.Spec {
	out := make([]flow.Spec, n)
	for i := range out {
		out[i] = g.Spec()
	}
	return out
}

// Event draws one update event with a uniform flow count in
// [minFlows, maxFlows] (the paper draws 10–100).
func (g *Generator) Event(id flow.EventID, kind string, arrival time.Duration, minFlows, maxFlows int) *core.Event {
	if maxFlows < minFlows {
		minFlows, maxFlows = maxFlows, minFlows
	}
	n := minFlows
	if maxFlows > minFlows {
		n += g.rng.Intn(maxFlows - minFlows + 1)
	}
	return core.NewEvent(id, kind, arrival, g.Specs(n))
}

// Events draws a batch of events, all arriving at time zero with IDs
// 1..n — the paper's "queue of n update events" setup.
func (g *Generator) Events(n, minFlows, maxFlows int) []*core.Event {
	out := make([]*core.Event, n)
	for i := range out {
		out[i] = g.Event(flow.EventID(i+1), "generated", 0, minFlows, maxFlows)
	}
	return out
}

// EventsPoisson draws a batch of events whose arrivals follow a Poisson
// process with the given mean inter-arrival gap — the online-arrival
// variant of Events, for experiments where the update queue builds and
// drains over time instead of starting full.
func (g *Generator) EventsPoisson(n, minFlows, maxFlows int, meanGap time.Duration) []*core.Event {
	out := make([]*core.Event, n)
	var clock time.Duration
	for i := range out {
		if i > 0 {
			clock += time.Duration(g.rng.ExpFloat64() * float64(meanGap))
		}
		out[i] = g.Event(flow.EventID(i+1), "generated", clock, minFlows, maxFlows)
	}
	return out
}

// FillBackground injects background flows until the network's overall
// utilization reaches target (in [0,1)), giving up after maxConsecFail
// consecutive placement failures (default 200 when 0). It returns the
// placed flows. Background flows carry flow.NoEvent and stay in place for
// the whole simulation, like the paper's static background traffic.
func FillBackground(net *netstate.Network, g *Generator, target float64, maxConsecFail int) ([]*flow.Flow, error) {
	if maxConsecFail == 0 {
		maxConsecFail = 200
	}
	var placed []*flow.Flow
	fails := 0
	for net.Utilization() < target {
		spec := g.Spec()
		f, err := net.AddFlow(spec)
		if err != nil {
			return placed, fmt.Errorf("trace: background flow: %w", err)
		}
		if _, err := net.PlaceBest(f); err != nil {
			if !errors.Is(err, netstate.ErrNoFeasiblePath) {
				return placed, fmt.Errorf("trace: background placement: %w", err)
			}
			if rmErr := net.Remove(f); rmErr != nil {
				return placed, fmt.Errorf("trace: background cleanup: %w", rmErr)
			}
			fails++
			if fails >= maxConsecFail {
				return placed, fmt.Errorf("trace: stuck at %.3f utilization targeting %.3f: %w",
					net.Utilization(), target, ErrTargetUnreachable)
			}
			continue
		}
		fails = 0
		placed = append(placed, f)
	}
	return placed, nil
}
