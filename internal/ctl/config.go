package ctl

import (
	"fmt"

	"netupdate/internal/core"
	"netupdate/internal/obs"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
)

// ShardIdentity places a server in a sharded deployment: shard ID (1-
// based) of Count engines. The zero value is the unsharded default.
type ShardIdentity struct {
	ID    int
	Count int
}

// Config collects everything a controller needs at construction. It
// replaces the positional NewServer/NewServerWithWAL split: one struct,
// one constructor, optional durability. The zero values of the optional
// fields (Watermark, SpanSink, Shard, WAL) select the unsharded,
// memory-only defaults.
type Config struct {
	// Planner owns the prepared network; Scheduler orders events; Sim is
	// the virtual timing model. All three are required.
	Planner   *core.Planner
	Scheduler sched.Scheduler
	Sim       sim.Config

	// Watermark bounds the intake queue; <= 0 keeps
	// DefaultHighWatermark.
	Watermark int

	// SpanSink, when set, receives stage-level latency span records (see
	// WithSpanSink).
	SpanSink obs.Sink

	// Shard places this server in a sharded deployment (see WithShard).
	Shard ShardIdentity

	// WAL, when set, attaches a durable log: history is replayed at
	// construction and every admitted mutation is appended before its
	// ack (see NewServerWithWAL).
	WAL *WALConfig
}

// New builds and starts a controller from one Config. The returned
// RecoveryInfo is non-nil only when cfg.WAL was set and describes what
// was replayed.
func New(cfg Config) (*Server, *RecoveryInfo, error) {
	if cfg.Planner == nil || cfg.Scheduler == nil {
		return nil, nil, fmt.Errorf("ctl: Config needs Planner and Scheduler")
	}
	var opts []ServerOption
	if cfg.Watermark > 0 {
		opts = append(opts, WithHighWatermark(cfg.Watermark))
	}
	if cfg.SpanSink != nil {
		opts = append(opts, WithSpanSink(cfg.SpanSink))
	}
	if cfg.Shard.ID > 0 {
		opts = append(opts, WithShard(cfg.Shard.ID, cfg.Shard.Count))
	}
	if cfg.WAL == nil {
		return NewServer(cfg.Planner, cfg.Scheduler, cfg.Sim, opts...), nil, nil
	}
	return NewServerWithWAL(cfg.Planner, cfg.Scheduler, cfg.Sim, *cfg.WAL, opts...)
}
