package ctl

import (
	"fmt"

	"netupdate/internal/obs"
	"netupdate/internal/snapshot"
)

// Backend is the one control-plane surface: everything a caller can ask
// a controller to do, independent of whether the controller is an
// in-process engine (*Server), a remote one over TCP (*Client), or a
// shard-routing gateway fronting several. updatectl, loadgen, and the
// gateway's fan-out all program against this interface, so an engine
// reached directly and one reached through the gateway cannot drift in
// semantics.
//
// Typed methods map refusals to the protocol's typed errors
// (OverloadError, NotLeaderError). Do is the raw escape hatch: it
// returns the Response as-is — refusals come back OK=false with the
// structured rejection payloads intact, and transport failures are
// folded into the same shape — which is what a router fanning in
// per-shard answers needs.
type Backend interface {
	Ping() error
	Features() ([]string, error)
	Submit(event EventSpec) (int64, error)
	SubmitBatch(events []EventSpec) ([]SubmitVerdict, *OverloadInfo, error)
	Status(eventID int64) (EventStatus, error)
	Results() ([]EventStatus, error)
	Stats() (Stats, error)
	Fault(spec FaultSpec) (FaultResult, error)
	Trace(n int) ([]obs.Record, error)
	Snapshot() (*snapshot.Snapshot, error)
	Do(req Request) Response
	Close() error
}

var (
	_ Backend = (*Server)(nil)
	_ Backend = (*Client)(nil)
)

// Do executes one raw request against the state loop. It is the
// in-process twin of Client.Do: no wire, no codec, same semantics.
func (s *Server) Do(req Request) Response {
	return s.dispatch(req)
}

// Ping checks the server is accepting requests.
func (s *Server) Ping() error {
	resp := s.dispatch(Request{Op: OpPing})
	return respError(OpPing, &resp)
}

// Features reports the optional protocol capabilities the server
// advertises.
func (s *Server) Features() ([]string, error) {
	resp := s.dispatch(Request{Op: OpPing})
	if err := respError(OpPing, &resp); err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// Submit enqueues an update event and returns its ID.
func (s *Server) Submit(event EventSpec) (int64, error) {
	resp := s.dispatch(Request{Op: OpSubmit, Event: &event})
	if err := respError(OpSubmit, &resp); err != nil {
		return 0, err
	}
	return resp.EventID, nil
}

// SubmitBatch submits many events in one request and returns one verdict
// per event, in submission order (see Client.SubmitBatch).
func (s *Server) SubmitBatch(events []EventSpec) ([]SubmitVerdict, *OverloadInfo, error) {
	resp := s.dispatch(Request{Op: OpSubmitBatch, Events: events})
	if err := respError(OpSubmitBatch, &resp); err != nil {
		return nil, nil, err
	}
	if len(resp.Verdicts) != len(events) {
		return nil, nil, fmt.Errorf("ctl: submit-batch: %d verdicts for %d events", len(resp.Verdicts), len(events))
	}
	return resp.Verdicts, resp.Overload, nil
}

// Status reports one event's scheduling state.
func (s *Server) Status(eventID int64) (EventStatus, error) {
	resp := s.dispatch(Request{Op: OpStatus, EventID: eventID})
	if err := respError(OpStatus, &resp); err != nil {
		return EventStatus{}, err
	}
	if resp.Status == nil {
		return EventStatus{}, fmt.Errorf("ctl: status: empty response")
	}
	return *resp.Status, nil
}

// Results lists all completed events in completion order.
func (s *Server) Results() ([]EventStatus, error) {
	resp := s.dispatch(Request{Op: OpResults})
	if err := respError(OpResults, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Stats reports controller-wide aggregates.
func (s *Server) Stats() (Stats, error) {
	resp := s.dispatch(Request{Op: OpStats})
	if err := respError(OpStats, &resp); err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("ctl: stats: empty response")
	}
	return *resp.Stats, nil
}

// Fault injects a fault into the running schedule.
func (s *Server) Fault(spec FaultSpec) (FaultResult, error) {
	resp := s.dispatch(Request{Op: OpFault, Fault: &spec})
	if err := respError(OpFault, &resp); err != nil {
		return FaultResult{}, err
	}
	if resp.Fault == nil {
		return FaultResult{}, fmt.Errorf("ctl: fault: empty response")
	}
	return *resp.Fault, nil
}

// Trace fetches the most recent n scheduling-trace records (oldest
// first); n <= 0 fetches everything the ring retains.
func (s *Server) Trace(n int) ([]obs.Record, error) {
	resp := s.dispatch(Request{Op: OpTrace, N: n})
	if err := respError(OpTrace, &resp); err != nil {
		return nil, err
	}
	return resp.Trace, nil
}

// Snapshot captures the full network state.
func (s *Server) Snapshot() (*snapshot.Snapshot, error) {
	resp := s.dispatch(Request{Op: OpSnapshot})
	if err := respError(OpSnapshot, &resp); err != nil {
		return nil, err
	}
	if resp.Snapshot == nil {
		return nil, fmt.Errorf("ctl: snapshot: empty response")
	}
	return resp.Snapshot, nil
}
