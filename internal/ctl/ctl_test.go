package ctl

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/snapshot"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// startServer brings up a controller over a loaded k=4 fat-tree on an
// ephemeral port and returns a connected client. Everything is torn down
// by t.Cleanup.
func startServer(t *testing.T, scheduler sched.Scheduler, opts ...ServerOption) (*Client, *topology.FatTree) {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net1 := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net1, gen, 0.3, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net1, 0), core.FailSkip)
	srv := NewServer(planner, scheduler, sim.Config{InstallTime: time.Millisecond}, opts...)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := client.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Errorf("client close: %v", err)
		}
	})
	return client, ft
}

// eventSpec builds a small event between distinct hosts.
func eventSpec(ft *topology.FatTree, nFlows int, demandMbps int64) EventSpec {
	hosts := ft.Hosts()
	spec := EventSpec{Kind: "test"}
	for i := 0; i < nFlows; i++ {
		spec.Flows = append(spec.Flows, FlowSpec{
			Src:       int(hosts[(2*i)%len(hosts)]),
			Dst:       int(hosts[(2*i+1)%len(hosts)]),
			DemandBps: demandMbps * 1e6,
		})
	}
	return spec
}

func TestPing(t *testing.T) {
	client, _ := startServer(t, sched.FIFO{})
	if err := client.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestSubmitAndWait(t *testing.T) {
	client, ft := startServer(t, sched.NewPLMTF(2, 1))
	id, err := client.Submit(eventSpec(ft, 5, 10))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if id == 0 {
		t.Fatal("Submit returned zero ID")
	}
	st, err := client.WaitDone(id, 5*time.Second)
	if err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if st.Admitted != 5 || st.Failed != 0 {
		t.Errorf("admitted/failed = %d/%d, want 5/0", st.Admitted, st.Failed)
	}
	if st.ECT <= 0 {
		t.Errorf("ECT = %v, want > 0", st.ECT)
	}
}

func TestSubmitManyAndResults(t *testing.T) {
	client, ft := startServer(t, sched.NewLMTF(2, 1))
	const n = 8
	ids := make([]int64, n)
	for i := range ids {
		id, err := client.Submit(eventSpec(ft, 3+i%4, 5))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if _, err := client.WaitDone(id, 5*time.Second); err != nil {
			t.Fatalf("WaitDone(%d): %v", id, err)
		}
	}
	results, err := client.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("results = %d, want %d", len(results), n)
	}
	seen := map[int64]bool{}
	for _, r := range results {
		if r.State != StateDone {
			t.Errorf("result %d state = %s", r.EventID, r.State)
		}
		seen[r.EventID] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("event %d missing from results", id)
		}
	}
}

func TestStats(t *testing.T) {
	client, ft := startServer(t, sched.FIFO{})
	before, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if before.Scheduler != "fifo" {
		t.Errorf("scheduler = %q, want fifo", before.Scheduler)
	}
	if before.Utilization <= 0 || before.FlowsPlaced == 0 {
		t.Errorf("stats show empty network: %+v", before)
	}
	id, err := client.Submit(eventSpec(ft, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitDone(id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	after, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.EventsDone != before.EventsDone+1 {
		t.Errorf("EventsDone = %d, want %d", after.EventsDone, before.EventsDone+1)
	}
	if after.VirtualClock <= before.VirtualClock {
		t.Error("virtual clock did not advance")
	}
}

func TestStatusUnknownEvent(t *testing.T) {
	client, _ := startServer(t, sched.FIFO{})
	st, err := client.Status(9999)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateUnknown {
		t.Errorf("state = %s, want unknown", st.State)
	}
}

func TestSubmitValidation(t *testing.T) {
	client, ft := startServer(t, sched.FIFO{})
	host := int(ft.Hosts()[0])
	cases := []struct {
		name string
		spec EventSpec
	}{
		{"no flows", EventSpec{}},
		{"src==dst", EventSpec{Flows: []FlowSpec{{Src: host, Dst: host, DemandBps: 1e6}}}},
		{"zero demand", EventSpec{Flows: []FlowSpec{{Src: host, Dst: host + 1, DemandBps: 0}}}},
		{"negative size", EventSpec{Flows: []FlowSpec{{Src: host, Dst: host + 1, DemandBps: 1e6, SizeBytes: -1}}}},
		{"out of range", EventSpec{Flows: []FlowSpec{{Src: -1, Dst: host, DemandBps: 1e6}}}},
		{"node index too big", EventSpec{Flows: []FlowSpec{{Src: 1 << 20, Dst: host, DemandBps: 1e6}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := client.Submit(tc.spec); err == nil {
				t.Error("Submit succeeded, want validation error")
			}
		})
	}
	// The connection survives rejected submissions.
	if err := client.Ping(); err != nil {
		t.Fatalf("Ping after rejects: %v", err)
	}
}

func TestUnknownOp(t *testing.T) {
	client, _ := startServer(t, sched.FIFO{})
	if _, err := client.roundTrip(Request{Op: "bogus"}); err == nil {
		t.Error("bogus op succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	client, ft := startServer(t, sched.NewPLMTF(2, 3))
	addr := client.conn.RemoteAddr().String()

	const workers = 4
	const perWorker = 3
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				id, err := c.Submit(eventSpec(ft, 2+w, 5))
				if err != nil {
					errCh <- err
					return
				}
				if _, err := c.WaitDone(id, 10*time.Second); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	results, err := client.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != workers*perWorker {
		t.Errorf("results = %d, want %d", len(results), workers*perWorker)
	}
}

func TestMalformedJSONDropsConnection(t *testing.T) {
	client, _ := startServer(t, sched.FIFO{})
	addr := client.conn.RemoteAddr().String()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// Server must drop us: the read eventually returns EOF.
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var buf [64]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Error("expected connection drop after malformed JSON")
	}
	// Other clients are unaffected.
	if err := client.Ping(); err != nil {
		t.Fatalf("Ping after malformed peer: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net1 := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	planner := core.NewPlanner(migration.NewPlanner(net1, 0), core.FailSkip)
	srv := NewServer(planner, sched.FIFO{}, sim.Config{})
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

// TestCloseUnderLoadNoDeadlock closes the server while many clients are
// dispatching into the buffered command channel. A regression here
// deadlocks: a command left in the buffer after the state loop exits
// strands its handler on the reply, and Close hangs on conns.Wait.
func TestCloseUnderLoadNoDeadlock(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net1 := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.WidestFit{})
	planner := core.NewPlanner(migration.NewPlanner(net1, 0), core.FailSkip)
	srv := NewServer(planner, sched.FIFO{}, sim.Config{InstallTime: time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			spec := eventSpec(ft, 1, 1)
			// Submit until the connection drops or the server refuses:
			// either way the call must return, never hang.
			for {
				if _, err := c.Submit(spec); err != nil {
					return
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let submissions pile into the buffer
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked under concurrent submissions")
	}
	wg.Wait()
	if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

func TestProtocolWireFormat(t *testing.T) {
	// The protocol is line-delimited JSON; verify a raw exchange.
	client, ft := startServer(t, sched.FIFO{})
	addr := client.conn.RemoteAddr().String()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	host := ft.Hosts()
	raw, err := json.Marshal(Request{Op: OpSubmit, Event: &EventSpec{
		Flows: []FlowSpec{{Src: int(host[0]), Dst: int(host[1]), DemandBps: 1e6}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(raw, '\n')); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.EventID == 0 {
		t.Errorf("raw submit response = %+v", resp)
	}
}

func TestSnapshotOp(t *testing.T) {
	client, ft := startServer(t, sched.FIFO{})
	id, err := client.Submit(eventSpec(ft, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitDone(id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	snap, err := client.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if len(snap.Nodes) != ft.Graph().NumNodes() {
		t.Errorf("snapshot nodes = %d, want %d", len(snap.Nodes), ft.Graph().NumNodes())
	}
	if len(snap.Flows) == 0 {
		t.Error("snapshot has no flows despite loaded fabric")
	}
	// A fetched snapshot must restore into a working network.
	restored, err := snapshot.Restore(snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Utilization() <= 0 {
		t.Error("restored network empty")
	}
}

// loadedFabricLink finds the most loaded switch-switch link purely from a
// snapshot, so the test never touches the server's graph concurrently.
func loadedFabricLink(t *testing.T, snap *snapshot.Snapshot) int {
	t.Helper()
	load := make([]int64, len(snap.Links))
	for _, f := range snap.Flows {
		for _, l := range f.PathLinks {
			load[l] += f.DemandBps
		}
	}
	best, bestLink := int64(-1), -1
	for i, l := range snap.Links {
		if !topology.NodeKind(snap.Nodes[l.From].Kind).IsSwitch() ||
			!topology.NodeKind(snap.Nodes[l.To].Kind).IsSwitch() {
			continue
		}
		if load[i] > best {
			best, bestLink = load[i], i
		}
	}
	if best <= 0 {
		t.Fatal("background fill left every fabric link empty")
	}
	return bestLink
}

func TestFaultLinkDownRecovery(t *testing.T) {
	client, _ := startServer(t, sched.NewPLMTF(2, 1))
	snap, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	link := loadedFabricLink(t, snap)

	res, err := client.Fault(FaultSpec{Action: "link-down", Link: link})
	if err != nil {
		t.Fatalf("Fault link-down: %v", err)
	}
	if res.Action != "link-down" || res.LinksChanged != 1 || res.LinksDown != 1 {
		t.Errorf("fault result = %+v, want link-down changing 1 link", res)
	}
	if res.FlowsAffected < 1 || res.RepairEventID == 0 {
		t.Fatalf("fault result = %+v, want disrupted flows and a repair event", res)
	}

	// The minted repair event schedules like any submitted event.
	st, err := client.WaitDone(res.RepairEventID, 5*time.Second)
	if err != nil {
		t.Fatalf("WaitDone(repair): %v", err)
	}
	if st.Kind != "link-repair" {
		t.Errorf("repair event kind = %q, want link-repair", st.Kind)
	}
	if st.Flows != res.FlowsAffected {
		t.Errorf("repair event flows = %d, want %d", st.Flows, res.FlowsAffected)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultsInjected != 1 || stats.LinksDown != 1 ||
		stats.RepairEvents != 1 || stats.FlowsDisrupted != res.FlowsAffected {
		t.Errorf("stats = %+v, want 1 fault, 1 link down, 1 repair, %d disrupted",
			stats, res.FlowsAffected)
	}

	up, err := client.Fault(FaultSpec{Action: "link-up", Link: link})
	if err != nil {
		t.Fatalf("Fault link-up: %v", err)
	}
	if up.LinksDown != 0 || up.LinksChanged != 1 || up.RepairEventID != 0 {
		t.Errorf("link-up result = %+v, want 1 link restored, none down", up)
	}
}

func TestFaultInstallTimeout(t *testing.T) {
	client, ft := startServer(t, sched.FIFO{})
	if _, err := client.Fault(FaultSpec{Action: "install-timeout", Times: 1}); err != nil {
		t.Fatalf("Fault install-timeout: %v", err)
	}
	id, err := client.Submit(eventSpec(ft, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.WaitDone(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 2 || st.Failed != 0 {
		t.Errorf("admitted/failed = %d/%d, want 2/0 (one timeout is survivable)", st.Admitted, st.Failed)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.InstallRetries != 1 || stats.InstallRollbacks != 0 {
		t.Errorf("retries/rollbacks = %d/%d, want 1/0", stats.InstallRetries, stats.InstallRollbacks)
	}
}

func TestFaultValidation(t *testing.T) {
	client, _ := startServer(t, sched.FIFO{})
	cases := []struct {
		name string
		spec FaultSpec
	}{
		{"unknown action", FaultSpec{Action: "meteor-strike"}},
		{"link out of range", FaultSpec{Action: "link-down", Link: 1 << 20}},
		{"node out of range", FaultSpec{Action: "switch-down", Node: -1}},
		{"negative times", FaultSpec{Action: "install-timeout", Times: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := client.Fault(tc.spec); err == nil {
				t.Error("Fault succeeded, want validation error")
			}
		})
	}
	// The connection survives rejected injections.
	if err := client.Ping(); err != nil {
		t.Fatalf("Ping after rejects: %v", err)
	}
}

func TestTraceOp(t *testing.T) {
	client, ft := startServer(t, sched.NewPLMTF(2, 1))
	const n = 4
	for i := 0; i < n; i++ {
		id, err := client.Submit(eventSpec(ft, 3, 5))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.WaitDone(id, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	records, err := client.Trace(0)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	var arrivals, spans, rounds int
	for _, r := range records {
		switch r.Kind {
		case obs.KindArrival:
			arrivals++
		case obs.KindSpan:
			spans++
		case obs.KindRound:
			rounds++
		}
	}
	if arrivals != n || spans != n || rounds == 0 {
		t.Errorf("trace arrivals/spans/rounds = %d/%d/%d, want %d/%d/>0",
			arrivals, spans, rounds, n, n)
	}
	// A bounded fetch returns exactly the trailing records.
	last2, err := client.Trace(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(last2) != 2 {
		t.Fatalf("Trace(2) returned %d records", len(last2))
	}
	if want := records[len(records)-1]; last2[1].Kind != want.Kind || last2[1].VT != want.VT {
		t.Errorf("Trace(2) tail = %+v, want %+v", last2[1], want)
	}
	// Stats must surface probe telemetry after scheduling activity.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 {
		t.Error("stats rounds = 0 after scheduling")
	}
	if stats.ProbeCacheHits+stats.ProbeCacheMisses == 0 {
		t.Error("stats show no probes after scheduling")
	}
}
