package ctl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// TestRequestFrameRoundTrip encodes every operation through the binary
// framing and decodes it back, checking the dense submit-batch path and
// the JSON envelope path both survive intact.
func TestRequestFrameRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpSubmitBatch, Retry: true, Events: []EventSpec{
			{Kind: "vm-arrival", Flows: []FlowSpec{
				{Src: 1, Dst: 2, DemandBps: 1_000_000},
				{Src: 3, Dst: 4, DemandBps: 2_000_000, SizeBytes: 1 << 20},
			}},
			{Flows: []FlowSpec{{Src: 5, Dst: 6, DemandBps: 7}}},
		}},
		{Op: OpSubmitBatch, Span: &obs.SpanContext{Origin: 9, SubmitWallNs: 1722400000123456789}, Events: []EventSpec{
			{Kind: "spanned", Flows: []FlowSpec{{Src: 1, Dst: 2, DemandBps: 5}}},
		}},
		{Op: OpSubmit, Event: &EventSpec{Kind: "x", Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 9}}}},
		{Op: OpStatus, EventID: 42},
		{Op: OpResults},
		{Op: OpStats},
		{Op: OpSnapshot},
		{Op: OpTrace, N: 17},
		{Op: OpFault, Fault: &FaultSpec{Action: "link-down", Link: 3}},
	}
	for _, req := range reqs {
		t.Run(string(req.Op), func(t *testing.T) {
			frame, err := AppendRequestFrame(nil, &req)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := ParseRequest(frame)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.Version != ProtocolVersionBinary {
				t.Errorf("decoded version %d, want %d", got.Version, ProtocolVersionBinary)
			}
			want := req
			want.Version = ProtocolVersionBinary
			wj, _ := json.Marshal(want)
			gj, _ := json.Marshal(got)
			if !bytes.Equal(wj, gj) {
				t.Errorf("round-trip mismatch:\n want %s\n got  %s", wj, gj)
			}
		})
	}
}

// TestResponseFrameRoundTrip covers the dense verdicts encoding —
// mixed accept/reject/overload verdicts, with and without overload
// info — and the JSON envelope fallback for other response shapes.
func TestResponseFrameRoundTrip(t *testing.T) {
	resps := []Response{
		{OK: true, Verdicts: []SubmitVerdict{
			{OK: true, EventID: 7},
			{Error: "bad flow", Overloaded: false},
			{Error: "queue full", Overloaded: true},
		}, Overload: &OverloadInfo{QueueDepth: 100, Watermark: 64, RetryAfterMs: 25}},
		{OK: true, Verdicts: []SubmitVerdict{{OK: true, EventID: 1}}},
		{OK: true, EventID: 5},
		{OK: false, Error: "no such event"},
		{OK: false, Error: "overloaded", Overload: &OverloadInfo{QueueDepth: 9, Watermark: 8, RetryAfterMs: 5}},
	}
	for i, resp := range resps {
		frame, err := AppendResponseFrame(nil, &resp)
		if err != nil {
			t.Fatalf("resp %d: encode: %v", i, err)
		}
		got, err := decodeResponseFrame(frame)
		if err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		wj, _ := json.Marshal(&resp)
		gj, _ := json.Marshal(got)
		if !bytes.Equal(wj, gj) {
			t.Errorf("resp %d round-trip mismatch:\n want %s\n got  %s", i, wj, gj)
		}
	}
}

// TestBinaryClientEndToEnd exercises every client call over the binary
// codec against a live server, and checks the codec counters the server
// reports.
func TestBinaryClientEndToEnd(t *testing.T) {
	jsonClient, ft := startServer(t, sched.NewLMTF(4, 1))
	addr := jsonClient.conn.RemoteAddr().String()
	client, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	id, err := client.Submit(eventSpec(ft, 2, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := client.WaitDone(id, 5*time.Second); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	verdicts, _, err := client.SubmitBatch([]EventSpec{eventSpec(ft, 1, 1), eventSpec(ft, 2, 2)})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(verdicts))
	}
	for i, v := range verdicts {
		if !v.OK {
			t.Fatalf("verdict %d rejected: %s", i, v.Error)
		}
		if _, err := client.WaitDone(v.EventID, 5*time.Second); err != nil {
			t.Fatalf("WaitDone(%d): %v", v.EventID, err)
		}
	}
	if _, err := client.Results(); err != nil {
		t.Fatalf("Results: %v", err)
	}
	if _, err := client.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := client.Trace(10); err != nil {
		t.Fatalf("Trace: %v", err)
	}
	// Both codecs hit the same state loop: the JSON client sees the
	// binary client's events and vice versa.
	st, err := jsonClient.Stats()
	if err != nil {
		t.Fatalf("Stats over JSON: %v", err)
	}
	if st.EventsDone < 3 {
		t.Errorf("completed %d events, want >= 3", st.EventsDone)
	}
	if st.CodecV2Conns != 1 {
		t.Errorf("codec_v2_conns = %d, want 1", st.CodecV2Conns)
	}
	if st.FramesV2 == 0 {
		t.Error("frames_v2 stayed 0 despite binary traffic")
	}
	if st.FramesV1 == 0 {
		t.Error("frames_v1 stayed 0 despite JSON traffic")
	}
}

// TestBinaryRejectsValidation checks the dense verdict path carries
// per-event validation errors like JSON does.
func TestBinaryRejectsValidation(t *testing.T) {
	jsonClient, ft := startServer(t, sched.FIFO{})
	client, err := DialBinary(jsonClient.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	verdicts, _, err := client.SubmitBatch([]EventSpec{
		eventSpec(ft, 1, 1),
		{Kind: "bad"}, // no flows
	})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if !verdicts[0].OK {
		t.Errorf("valid event rejected: %s", verdicts[0].Error)
	}
	if verdicts[1].OK || verdicts[1].Error == "" {
		t.Errorf("invalid event accepted: %+v", verdicts[1])
	}
}

// TestPipelineSubmit floods a pipelined connection and checks every
// batch is answered exactly once, in order, with a positive latency.
func TestPipelineSubmit(t *testing.T) {
	jsonClient, ft := startServer(t, sched.FIFO{}, WithHighWatermark(100000))
	addr := jsonClient.conn.RemoteAddr().String()

	const batches = 64
	var mu sync.Mutex
	var results []BatchResult
	p, err := DialPipeline(addr, 8, func(r BatchResult) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := eventSpec(ft, 1, 1)
	for i := 0; i < batches; i++ {
		if err := p.SubmitBatch([]EventSpec{spec, spec}, false); err != nil {
			t.Fatalf("SubmitBatch %d: %v", i, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(results) != batches {
		t.Fatalf("got %d results, want %d", len(results), batches)
	}
	var accepted int
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch %d failed: %v", i, r.Err)
		}
		if len(r.Verdicts) != 2 {
			t.Fatalf("batch %d: %d verdicts, want 2", i, len(r.Verdicts))
		}
		if r.Latency <= 0 {
			t.Errorf("batch %d: non-positive latency %v", i, r.Latency)
		}
		for _, v := range r.Verdicts {
			if v.OK {
				accepted++
			}
		}
	}
	if accepted != 2*batches {
		t.Errorf("accepted %d events, want %d", accepted, 2*batches)
	}
	// Submitting after Close fails cleanly.
	if err := p.SubmitBatch([]EventSpec{spec}, false); !errors.Is(err, ErrServerClosed) {
		t.Errorf("SubmitBatch after Close: %v, want ErrServerClosed", err)
	}
}

// TestPipelineServerGone checks in-flight batches are failed (not lost)
// when the connection dies under the pipeline.
func TestPipelineServerGone(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	var mu sync.Mutex
	var errs int
	p, err := DialPipeline(l.Addr().String(), 4, func(r BatchResult) {
		mu.Lock()
		if r.Err != nil {
			errs++
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := EventSpec{Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 1}}}
	if err := p.SubmitBatch([]EventSpec{spec}, false); err != nil {
		t.Fatal(err)
	}
	// Kill the server side without answering; the reader must fail the
	// in-flight batch and Close must not hang.
	srvConn := <-accepted
	srvConn.Close()
	l.Close()
	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after server death")
	}
	mu.Lock()
	defer mu.Unlock()
	if errs != 1 {
		t.Errorf("got %d errored batches, want 1", errs)
	}
}

// startCodecServer brings up a server over its own deterministically
// seeded network for the trace-parity test. Extra server options (e.g.
// a span sink) are applied as given.
func startCodecServer(t *testing.T, probes int, opts ...ServerOption) string {
	t.Helper()
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net1 := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net1, gen, 0.3, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net1, 0), core.FailSkip)
	srv := NewServer(planner, sched.NewLMTF(4, 99), sim.Config{InstallTime: time.Millisecond, Probes: probes}, opts...)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return l.Addr().String()
}

// TestCodecTraceParity runs the same workload through {JSON v1, binary
// v2} x {serial, parallel} probing x {spans off, spans on} and demands
// byte-identical virtual-clock traces: the codec, the probe concurrency
// and the latency span pipeline are transport/observability knobs and
// must not leak into scheduling decisions. Stage records go to their
// own span channel, never the trace ring, so even with a span sink
// attached the main trace must not move.
func TestCodecTraceParity(t *testing.T) {
	specs := []EventSpec{
		{Kind: "a", Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 40e6}, {Src: 2, Dst: 3, DemandBps: 60e6}}},
		{Kind: "b", Flows: []FlowSpec{{Src: 4, Dst: 5, DemandBps: 120e6}}},
		{Kind: "c", Flows: []FlowSpec{{Src: 6, Dst: 7, DemandBps: 10e6}, {Src: 8, Dst: 9, DemandBps: 30e6}, {Src: 10, Dst: 11, DemandBps: 70e6}}},
		{Kind: "d", Flows: []FlowSpec{{Src: 12, Dst: 13, DemandBps: 250e6}}},
	}
	type combo struct {
		name   string
		binary bool
		probes int
		spans  bool
	}
	combos := []combo{
		{"v1-serial", false, 1, false},
		{"v1-parallel", false, 4, false},
		{"v2-serial", true, 1, false},
		{"v2-parallel", true, 4, false},
		{"v1-serial-spans", false, 1, true},
		{"v1-parallel-spans", false, 4, true},
		{"v2-serial-spans", true, 1, true},
		{"v2-parallel-spans", true, 4, true},
	}
	traces := make(map[string]string)
	for _, cb := range combos {
		var opts []ServerOption
		var spanBuf syncBuffer
		if cb.spans {
			opts = append(opts, WithSpanSink(obs.NewJSONLSink(&spanBuf)))
		}
		addr := startCodecServer(t, cb.probes, opts...)
		var client *Client
		var err error
		if cb.binary {
			client, err = DialBinary(addr)
		} else {
			client, err = Dial(addr)
		}
		if err != nil {
			t.Fatal(err)
		}
		if cb.spans {
			feats, err := client.Features()
			if err != nil {
				t.Fatalf("%s: Features: %v", cb.name, err)
			}
			if !slices.Contains(feats, FeatureSpanContext) {
				t.Fatalf("%s: server does not advertise %q (got %v)", cb.name, FeatureSpanContext, feats)
			}
			client.EnableSpans(3)
		}
		verdicts, _, err := client.SubmitBatch(specs)
		if err != nil {
			t.Fatalf("%s: SubmitBatch: %v", cb.name, err)
		}
		for i, v := range verdicts {
			if !v.OK {
				t.Fatalf("%s: event %d rejected: %s", cb.name, i, v.Error)
			}
			if _, err := client.WaitDone(v.EventID, 10*time.Second); err != nil {
				t.Fatalf("%s: WaitDone(%d): %v", cb.name, v.EventID, err)
			}
		}
		records, err := client.Trace(0)
		if err != nil {
			t.Fatalf("%s: Trace: %v", cb.name, err)
		}
		if len(records) == 0 {
			t.Fatalf("%s: empty trace", cb.name)
		}
		var sb strings.Builder
		for _, r := range records {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(b)
			sb.WriteByte('\n')
		}
		traces[cb.name] = sb.String()
		client.Close()
	}
	want := traces[combos[0].name]
	for _, cb := range combos[1:] {
		if traces[cb.name] != want {
			t.Errorf("trace for %s differs from %s:\n%s", cb.name, combos[0].name,
				firstDiffLine(want, traces[cb.name]))
		}
	}
}

// firstDiffLine reports the first line where two line-oriented strings
// diverge, for readable parity failures.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
