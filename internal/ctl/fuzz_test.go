package ctl

import (
	"testing"
)

// FuzzParseRequest ensures arbitrary bytes never panic the protocol
// decoder and that anything it accepts honours the per-op payload
// contract the state loop relies on (submit has an event, fault has a
// well-formed spec, the op is known).
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		`{"op":"ping"}`,
		`{"op":"submit","event":{"kind":"test","flows":[{"src":0,"dst":1,"demand_bps":1000000}]}}`,
		`{"op":"status","event_id":3}`,
		`{"op":"results"}`,
		`{"op":"stats"}`,
		`{"op":"snapshot"}`,
		`{"op":"trace","n":10}`,
		`{"op":"fault","fault":{"action":"link-down","link":2}}`,
		`{"op":"fault","fault":{"action":"switch-up","node":5}}`,
		`{"op":"fault","fault":{"action":"install-timeout","event":1,"times":3}}`,
		`{"op":"fault"}`,
		`{"op":"fault","fault":{"action":"install-timeout","times":-1}}`,
		`{"op":"submit"}`,
		`{"op":"bogus"}`,
		`not json at all`,
		`{"op":"ping","event":{"flows":null}}`,
		`{"op":42}`,
		`{"v":1,"op":"ping"}`,
		`{"v":2,"op":"ping"}`,
		`{"v":-1,"op":"stats"}`,
		`{"op":"submit-batch","events":[{"flows":[{"src":0,"dst":1,"demand_bps":1000000}]},{"kind":"big","flows":[{"src":2,"dst":3,"demand_bps":5000000}]}]}`,
		`{"v":1,"op":"submit-batch","retry":true,"events":[{"flows":[{"src":0,"dst":1,"demand_bps":1}]}]}`,
		`{"op":"submit-batch"}`,
		`{"op":"submit-batch","events":[]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("ParseRequest returned a request alongside an error")
			}
			return
		}
		if !knownOps[req.Op] {
			t.Fatalf("accepted unknown op %q", req.Op)
		}
		if req.Version != 0 && req.Version != ProtocolVersion {
			t.Fatalf("accepted unsupported protocol version %d", req.Version)
		}
		switch req.Op {
		case OpSubmit:
			if req.Event == nil {
				t.Fatal("accepted submit without event")
			}
		case OpSubmitBatch:
			if len(req.Events) == 0 {
				t.Fatal("accepted submit-batch without events")
			}
		case OpFault:
			if req.Fault == nil {
				t.Fatal("accepted fault without spec")
			}
			if req.Fault.Times < 0 || req.Fault.Event < 0 {
				t.Fatalf("accepted negative fault parameters: %+v", req.Fault)
			}
		}
	})
}
