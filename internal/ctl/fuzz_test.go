package ctl

import (
	"testing"
)

// FuzzParseRequest ensures arbitrary bytes never panic the protocol
// decoder and that anything it accepts honours the per-op payload
// contract the state loop relies on (submit has an event, fault has a
// well-formed spec, the op is known).
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		`{"op":"ping"}`,
		`{"op":"submit","event":{"kind":"test","flows":[{"src":0,"dst":1,"demand_bps":1000000}]}}`,
		`{"op":"status","event_id":3}`,
		`{"op":"results"}`,
		`{"op":"stats"}`,
		`{"op":"snapshot"}`,
		`{"op":"trace","n":10}`,
		`{"op":"fault","fault":{"action":"link-down","link":2}}`,
		`{"op":"fault","fault":{"action":"switch-up","node":5}}`,
		`{"op":"fault","fault":{"action":"install-timeout","event":1,"times":3}}`,
		`{"op":"fault"}`,
		`{"op":"fault","fault":{"action":"install-timeout","times":-1}}`,
		`{"op":"submit"}`,
		`{"op":"bogus"}`,
		`not json at all`,
		`{"op":"ping","event":{"flows":null}}`,
		`{"op":42}`,
		`{"v":1,"op":"ping"}`,
		`{"v":2,"op":"ping"}`,
		`{"v":-1,"op":"stats"}`,
		`{"op":"submit-batch","events":[{"flows":[{"src":0,"dst":1,"demand_bps":1000000}]},{"kind":"big","flows":[{"src":2,"dst":3,"demand_bps":5000000}]}]}`,
		`{"v":1,"op":"submit-batch","retry":true,"events":[{"flows":[{"src":0,"dst":1,"demand_bps":1}]}]}`,
		`{"op":"submit-batch"}`,
		`{"op":"submit-batch","events":[]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// Binary v2 frames: well-formed ping and submit-batch, plus the
	// malformed shapes the decoder must reject without panicking —
	// truncated header, truncated payload, oversized and lying length
	// fields, a version-downgrade byte, and trailing junk.
	ping, err := AppendRequestFrame(nil, &Request{Op: OpPing})
	if err != nil {
		f.Fatal(err)
	}
	batch, err := AppendRequestFrame(nil, &Request{Op: OpSubmitBatch, Events: []EventSpec{
		{Kind: "test", Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 1_000_000}}},
		{Flows: []FlowSpec{{Src: 2, Dst: 3, DemandBps: 5_000_000, SizeBytes: 4096}}},
	}})
	if err != nil {
		f.Fatal(err)
	}
	jsonEnv, err := AppendRequestFrame(nil, &Request{Op: OpStats})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ping)
	f.Add(batch)
	f.Add(jsonEnv)
	f.Add(ping[:FrameHeaderSize-3])                       // truncated header
	f.Add(batch[:len(batch)-5])                           // truncated payload
	f.Add(append(append([]byte{}, batch...), 0xAA, 0xBB)) // trailing junk
	downgrade := append([]byte{}, ping...)
	downgrade[1] = 1 // binary framing with a v1 version byte
	f.Add(downgrade)
	badLen := append([]byte{}, batch...)
	badLen[4], badLen[5], badLen[6], badLen[7] = 0xFF, 0xFF, 0xFF, 0x7F // length far beyond cap
	f.Add(badLen)
	lyingLen := append([]byte{}, batch...)
	lyingLen[4]++ // header claims one more byte than the payload carries
	f.Add(lyingLen)
	f.Add([]byte{FrameMagic})                                                      // magic alone
	f.Add([]byte{FrameMagic, ProtocolVersionBinary, 0x7F, 0, 0, 0, 0, 0})          // unknown frame kind
	f.Add([]byte{FrameMagic, ProtocolVersionBinary, 2, 0, 4, 0, 0, 0, 0, 0, 0, 0}) // batch with count 0
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("ParseRequest returned a request alongside an error")
			}
			return
		}
		if !knownOps[req.Op] {
			t.Fatalf("accepted unknown op %q", req.Op)
		}
		if len(data) > 0 && data[0] == FrameMagic {
			// Binary framing: the decoder stamps the negotiated version.
			if req.Version != ProtocolVersionBinary {
				t.Fatalf("binary frame accepted with version %d", req.Version)
			}
		} else if req.Version != 0 && req.Version != ProtocolVersion {
			t.Fatalf("accepted unsupported protocol version %d", req.Version)
		}
		switch req.Op {
		case OpSubmit:
			if req.Event == nil {
				t.Fatal("accepted submit without event")
			}
		case OpSubmitBatch:
			if len(req.Events) == 0 {
				t.Fatal("accepted submit-batch without events")
			}
		case OpFault:
			if req.Fault == nil {
				t.Fatal("accepted fault without spec")
			}
			if req.Fault.Times < 0 || req.Fault.Event < 0 {
				t.Fatalf("accepted negative fault parameters: %+v", req.Fault)
			}
		}
	})
}
