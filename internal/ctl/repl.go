package ctl

// WAL replication: a leader streams committed log frames to warm
// followers; a follower folds them through the crash-recovery replay
// path and can be promoted when the leader is lost.
//
// The wire protocol and term discipline live in internal/repl; this
// file owns the server wiring on both sides:
//
//   - Leader: walAppend stages each record's frame bytes when followers
//     are registered; walCommit publishes the staged frames to every
//     follower outbox and then gates the reply release on synced
//     followers' acks (group commit) — an acked event is durable on the
//     follower too, so promotion loses nothing a client was told
//     succeeded. A follower that overflows its outbox or misses the ack
//     deadline is dropped and the leader continues solo (availability
//     over replication; the drop is counted and visible in Stats).
//   - Follower: a session goroutine reads frames off the leader
//     connection and hands them to the state loop, which appends them
//     to the follower's own WAL and folds them through replayRecord —
//     the exact path recovery takes, so a promoted follower is the
//     state a never-crashed server holding the same prefix would be in.
//     Checkpoints are taken only on the leader's announcement, keeping
//     both logs rotating at the same sequences.
//
// Session ordering makes the stream gap-free: attach is a state-loop
// command, so it observes a sequence point S with every frame ≤ S
// committed (the batch flushes before non-submit commands) and nothing
// published past S yet. The session then reads (afterSeq, S] straight
// from the segment files (wal.EmitFrames) while the outbox accumulates
// (S, ∞) — exact order, no gaps, no duplicates.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/obs"
	"netupdate/internal/repl"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/wal"
)

// Replication roles.
const (
	roleLeader   = "leader"
	roleFollower = "follower"
	// roleDeposed is a former leader that observed a higher term: it
	// serves reads but never writes again (split-brain rule).
	roleDeposed = "deposed"
)

// roleCode maps a role to its metric encoding.
func roleCode(role string) int64 {
	switch role {
	case roleFollower:
		return 1
	case roleDeposed:
		return 2
	default:
		return 0
	}
}

// Replication tunables.
const (
	// DefaultMaxFollowers bounds concurrent replication sessions; the
	// single-follower default matches the one-warm-standby deployment
	// (see ROADMAP for sharded multi-follower plans).
	DefaultMaxFollowers = 1
	// DefaultAckTimeout is how long a group commit waits for a synced
	// follower's ack before dropping it and continuing solo.
	DefaultAckTimeout = 5 * time.Second
	// DefaultHeartbeatEvery is the leader's liveness beacon cadence.
	DefaultHeartbeatEvery = 500 * time.Millisecond
	// DefaultReconnectEvery is the follower's redial backoff.
	DefaultReconnectEvery = 200 * time.Millisecond
	// DefaultDialTimeout bounds the follower's TCP connect.
	DefaultDialTimeout = 5 * time.Second

	// replHandshakeTimeout bounds each handshake read (Hello, Welcome,
	// bootstrap checkpoint) so a stalled peer cannot pin a session.
	replHandshakeTimeout = 30 * time.Second
	// replWriteTimeout bounds each stream write.
	replWriteTimeout = 10 * time.Second
	// replOutboxDepth is the per-follower outbox in frames (one frame
	// per commit or heartbeat); overflowing it drops the follower.
	replOutboxDepth = 8192
	// replBatchBytes caps one KindRecords frame during catch-up and
	// between commits, keeping frames well under repl.MaxPayload.
	replBatchBytes = 256 << 10
)

// ReplicationConfig tunes the leader side of WAL replication.
type ReplicationConfig struct {
	// MaxFollowers caps registered sessions (0 = DefaultMaxFollowers).
	MaxFollowers int
	// AckTimeout bounds the group-commit wait on synced followers
	// (0 = DefaultAckTimeout).
	AckTimeout time.Duration
	// HeartbeatEvery is the liveness beacon cadence (0 = default).
	HeartbeatEvery time.Duration
}

// WithReplication overrides the leader-side replication tunables.
// Replication itself needs no opt-in: every WAL-backed server accepts
// follower sessions up to MaxFollowers.
func WithReplication(rc ReplicationConfig) ServerOption {
	return func(s *Server) { s.replCfg = &rc }
}

// errFoldFailed marks a follower-side apply error (sequence gap, replay
// divergence, checkpoint misalignment). It is terminal: reconnecting
// would deterministically fail again.
var errFoldFailed = errors.New("ctl: replication fold failed")

// errPromoted ends a follower session because this server was promoted.
var errPromoted = errors.New("ctl: promoted")

// replState is the per-server replication hub. role and term are state-
// loop confined; the atomic mirrors serve connection handlers, the
// heartbeater and /metrics.
type replState struct {
	s   *Server
	met *obs.ReplMetrics

	// State-loop confined.
	role string
	term uint64

	// Atomic mirrors.
	roleA      atomic.Int64
	termA      atomic.Uint64
	nFollowers atomic.Int64
	nSynced    atomic.Int64
	failoverMs atomic.Int64

	maxFollowers int
	ackTimeout   time.Duration
	hbEvery      time.Duration

	mu        sync.Mutex
	acked     *sync.Cond // signaled on acks, drops and detaches
	followers map[*replFollower]struct{}
	lastErr   string
	fconn     net.Conn // live follower-side leader connection

	// Leader publish pipeline: walAppend stages raw frame bytes here,
	// walCommit wraps them in KindRecords frames and fans them out.
	// State-loop confined.
	pending     []byte
	chunks      [][]byte
	pendingRecs int64

	// Follower side.
	fcfg         *FollowerConfig
	leaderAddr   string
	promoteAfter time.Duration
	backoff      time.Duration
	dialTimeout  time.Duration
	leaderTerm   atomic.Uint64
	leaderSeq    atomic.Int64
	stopFollow   chan struct{}
	stopOnce     sync.Once

	wg sync.WaitGroup
}

func newReplState(s *Server, term uint64, rc ReplicationConfig) *replState {
	r := &replState{
		s:            s,
		met:          obs.NewReplMetrics(s.registry),
		term:         term,
		maxFollowers: rc.MaxFollowers,
		ackTimeout:   rc.AckTimeout,
		hbEvery:      rc.HeartbeatEvery,
		followers:    make(map[*replFollower]struct{}),
		backoff:      DefaultReconnectEvery,
		dialTimeout:  DefaultDialTimeout,
		stopFollow:   make(chan struct{}),
	}
	if r.maxFollowers <= 0 {
		r.maxFollowers = DefaultMaxFollowers
	}
	if r.ackTimeout <= 0 {
		r.ackTimeout = DefaultAckTimeout
	}
	if r.hbEvery <= 0 {
		r.hbEvery = DefaultHeartbeatEvery
	}
	r.acked = sync.NewCond(&r.mu)
	r.termA.Store(term)
	r.met.Term.Set(int64(term))
	r.setRole(roleLeader)
	return r
}

// setRole flips the replication role (state loop, or before start).
func (r *replState) setRole(role string) {
	r.role = role
	r.roleA.Store(roleCode(role))
	r.met.Role.Set(roleCode(role))
}

// stepDown makes a deposed leader read-only after observing a higher
// term. Never called on followers.
func (r *replState) stepDown() {
	if r.role == roleLeader {
		r.setRole(roleDeposed)
	}
}

func (r *replState) setLastErr(err error) {
	r.mu.Lock()
	if err == nil {
		r.lastErr = ""
	} else {
		r.lastErr = err.Error()
	}
	r.mu.Unlock()
}

// wake broadcasts the ack condition. Taking the mutex first is what
// prevents a lost wakeup between gate's predicate check and its Wait.
func (r *replState) wake() {
	r.mu.Lock()
	r.acked.Broadcast()
	r.mu.Unlock()
}

// stopped reports whether following was stopped (promotion or Close).
func (r *replState) stopped() bool {
	select {
	case <-r.stopFollow:
		return true
	default:
		return false
	}
}

// stopFollowing ends the follower loop: no reconnects, no auto-promote.
func (r *replState) stopFollowing() {
	r.stopOnce.Do(func() { close(r.stopFollow) })
	r.mu.Lock()
	if r.fconn != nil {
		_ = r.fconn.Close()
	}
	r.mu.Unlock()
}

// setConn tracks the live leader connection so stopFollowing can
// interrupt a blocked read.
func (r *replState) setConn(c net.Conn) {
	r.mu.Lock()
	r.fconn = c
	stopped := r.stopped()
	r.mu.Unlock()
	if stopped && c != nil {
		_ = c.Close()
	}
}

// replFollower is one registered replication session on the leader.
type replFollower struct {
	addr string
	conn net.Conn
	// out carries encoded stream frames from the state loop (and the
	// heartbeater) to the session's writer goroutine.
	out  chan []byte
	done chan struct{}
	once sync.Once

	acked atomic.Int64
	// syncTarget is the leader's walSeq at registration: acking through
	// it makes the follower synced, joining the group-commit gate.
	syncTarget int64
	synced     atomic.Bool
	failed     atomic.Bool
}

// shut closes the session exactly once.
func (f *replFollower) shut() {
	f.once.Do(func() {
		_ = f.conn.Close()
		close(f.done)
	})
}

// fail marks the session dead (drop, ack error) and shuts it.
func (f *replFollower) fail() {
	f.failed.Store(true)
	f.shut()
}

// detach unregisters a session (any goroutine).
func (r *replState) detach(f *replFollower) {
	r.mu.Lock()
	_, present := r.followers[f]
	delete(r.followers, f)
	r.mu.Unlock()
	f.shut()
	if !present {
		return
	}
	r.met.Followers.Set(r.nFollowers.Add(-1))
	if f.synced.Load() {
		r.met.SyncedFollowers.Set(r.nSynced.Add(-1))
	}
	r.wake()
}

// stage buffers one just-appended record's frame bytes for publication
// at the next commit (state loop, from walAppend). No-op without
// registered followers — they will read the frames from the segment
// files at attach instead.
func (r *replState) stage(rec *wal.Record) {
	if r.role != roleLeader || r.nFollowers.Load() == 0 {
		return
	}
	buf, err := wal.AppendFrame(r.pending, rec)
	if err != nil {
		// The WAL writer just encoded this same record successfully.
		panic(fmt.Sprintf("ctl: repl stage: %v", err))
	}
	r.pending = buf
	r.pendingRecs++
	if len(r.pending) >= replBatchBytes {
		r.chunks = append(r.chunks, r.pending)
		r.pending = nil
	}
}

// publish fans the staged frames out to every follower outbox (state
// loop, from walCommit after the records became durable — a follower
// must never hold records the leader could still lose).
func (r *replState) publish() {
	if r.pendingRecs == 0 {
		return
	}
	for _, chunk := range r.chunks {
		r.fanoutRecords(chunk)
	}
	if len(r.pending) > 0 {
		r.fanoutRecords(r.pending)
	}
	r.met.RecordsSent.Add(r.pendingRecs)
	r.chunks = nil
	r.pending = r.pending[:0]
	r.pendingRecs = 0
}

func (r *replState) fanoutRecords(frames []byte) {
	buf, err := repl.AppendRecords(nil, frames)
	if err != nil {
		panic(fmt.Sprintf("ctl: repl publish: %v", err))
	}
	r.fanout(buf)
}

// fanout offers one encoded stream frame to every live follower; an
// outbox overflow means the follower cannot keep up even with 8k frames
// of slack, so it is dropped rather than blocking the state loop.
func (r *replState) fanout(frame []byte) {
	r.mu.Lock()
	for f := range r.followers {
		if f.failed.Load() {
			continue
		}
		select {
		case f.out <- frame:
		default:
			f.fail()
			r.met.FollowerDrops.Inc()
		}
	}
	r.acked.Broadcast()
	r.mu.Unlock()
}

// announce tells followers the leader checkpointed at id (state loop,
// from doCheckpoint). The staged buffer is always empty here — every
// path into doCheckpoint runs after a flush.
func (r *replState) announce(id wal.ID, rounds int64) {
	ck := &wal.Checkpoint{Format: wal.FormatVersion, ID: id, Rounds: rounds}
	buf, err := repl.AppendCheckpoint(nil, ck, false)
	if err != nil {
		panic(fmt.Sprintf("ctl: repl announce: %v", err))
	}
	r.fanout(buf)
}

// gate blocks the state loop until every synced follower has acked
// through seq, or the ack timeout drops the laggards (state loop, from
// walCommit after publish). This is the group-commit fence: replies
// held behind it are released only once the acked events are durable on
// every synced follower.
func (r *replState) gate(seq int64) {
	if r.nSynced.Load() == 0 {
		return
	}
	deadline := time.Now().Add(r.ackTimeout)
	// The timer broadcasts under the mutex: it cannot fire between the
	// predicate check and Wait, so the wakeup is never lost.
	timer := time.AfterFunc(r.ackTimeout, r.wake)
	defer timer.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		waiting := false
		for f := range r.followers {
			if f.synced.Load() && !f.failed.Load() && f.acked.Load() < seq {
				waiting = true
				break
			}
		}
		if !waiting {
			return
		}
		if !time.Now().Before(deadline) {
			// Availability over replication: drop the laggards and
			// continue solo. The drop is counted and visible in Stats.
			for f := range r.followers {
				if f.synced.Load() && !f.failed.Load() && f.acked.Load() < seq {
					f.fail()
					r.met.FollowerDrops.Inc()
				}
			}
			return
		}
		r.acked.Wait()
	}
}

// replHeartbeats is the leader's beacon loop: liveness for follower
// watchdogs plus lag bookkeeping, both ways off the heartbeat cadence.
func (s *Server) replHeartbeats() {
	r := s.repl
	defer r.wg.Done()
	t := time.NewTicker(r.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-s.closing:
			return
		case <-t.C:
		}
		if r.roleA.Load() != roleCode(roleLeader) || r.nFollowers.Load() == 0 {
			continue
		}
		last := s.walMet.LastSeq.Value()
		frame, err := repl.AppendHeartbeat(nil, r.termA.Load(), last)
		if err != nil {
			continue
		}
		var worst int64
		r.mu.Lock()
		for f := range r.followers {
			if f.failed.Load() {
				continue
			}
			select {
			case f.out <- frame:
				r.met.HeartbeatsSent.Inc()
			default:
				f.fail()
				r.met.FollowerDrops.Inc()
			}
			lag := max(0, last-f.acked.Load())
			r.met.Lag.Observe(lag)
			worst = max(worst, lag)
		}
		r.mu.Unlock()
		r.met.LagRecords.Set(worst)
	}
}

// replCmd kinds routed through the state loop.
type replCmdKind int

const (
	replAttach replCmdKind = iota
	replApply
	replCkpt
)

// replCmd is an internal replication command carried by the command
// channel alongside wire requests.
type replCmd struct {
	kind     replCmdKind
	hello    *repl.Hello
	follower *replFollower
	recs     []*wal.Record
	ckptSeq  int64
}

// replReply is the state loop's answer to a replCmd.
type replReply struct {
	verdict repl.Verdict
	term    uint64
	walSeq  int64
	ckptSeq int64
	segs    []wal.SegmentInfo
	ckpt    *wal.Checkpoint

	appliedSeq int64
}

// dispatchRepl routes an internal replication command to the state loop.
func (s *Server) dispatchRepl(rc *replCmd) (*replReply, error) {
	select {
	case <-s.closing:
		return nil, ErrServerClosed
	default:
	}
	cmd := command{repl: rc, reply: make(chan Response, 1)}
	select {
	case s.cmds <- cmd:
		resp := <-cmd.reply
		if !resp.OK {
			return nil, errors.New(resp.Error)
		}
		return resp.repl, nil
	case <-s.closing:
		return nil, ErrServerClosed
	}
}

// handleReplCmd executes one replication command (state loop only; the
// batch was flushed first, so every record ≤ walSeq is committed and
// the publish buffer is empty).
func (s *Server) handleReplCmd(rc *replCmd) Response {
	r := s.repl
	switch rc.kind {
	case replAttach:
		if r == nil || s.wal == nil {
			return Response{OK: true, repl: &replReply{verdict: repl.Verdict{
				Code: repl.CodeNoWAL, Detail: "server runs without a WAL",
			}}}
		}
		var ckptSeq int64
		ckpt := s.walLog.Checkpoint()
		if ckpt != nil {
			ckptSeq = ckpt.ID.Seq
		}
		if r.role != roleLeader {
			return Response{OK: true, repl: &replReply{verdict: repl.Verdict{
				Code:   repl.CodeNotLeader,
				Detail: fmt.Sprintf("server is a %s at term %d", r.role, r.term),
			}, term: r.term}}
		}
		v := repl.Judge(r.term, s.walSeq, ckptSeq, &s.walMeta,
			int(r.nFollowers.Load()), r.maxFollowers, rc.hello)
		if v.Deposed {
			r.stepDown()
		}
		if v.Code != "" {
			return Response{OK: true, repl: &replReply{verdict: v, term: r.term}}
		}
		f := rc.follower
		f.syncTarget = s.walSeq
		if rc.hello.AfterSeq >= s.walSeq {
			// Already caught up at attach (idle leader, exact resume):
			// acks only flow after records do, so flip synced now or a
			// quiet leader would never admit the follower to the gate.
			f.acked.Store(rc.hello.AfterSeq)
			f.synced.Store(true)
		}
		r.mu.Lock()
		r.followers[f] = struct{}{}
		r.mu.Unlock()
		r.met.Followers.Set(r.nFollowers.Add(1))
		if f.synced.Load() {
			r.met.SyncedFollowers.Set(r.nSynced.Add(1))
		}
		rep := &replReply{
			verdict: v, term: r.term, walSeq: s.walSeq, ckptSeq: ckptSeq,
			segs: append([]wal.SegmentInfo(nil), s.walLog.Segments()...),
		}
		if v.SendCheckpoint {
			rep.ckpt = ckpt
		}
		return Response{OK: true, repl: rep}

	case replApply:
		if r == nil || r.role != roleFollower {
			return Response{OK: false, Error: fmt.Sprintf("ctl: repl apply on a %s", replRoleOf(r))}
		}
		for _, rec := range rc.recs {
			if rec.ID.Seq != s.walSeq+1 {
				return Response{OK: false, Error: fmt.Sprintf(
					"%v: record seq %d after applied prefix %d", repl.ErrSeqGap, rec.ID.Seq, s.walSeq)}
			}
			s.walAppend(rec)
			if err := s.replayRecord(rec); err != nil {
				return Response{OK: false, Error: err.Error()}
			}
			r.met.RecordsApplied.Inc()
		}
		// Durable before acked: the commit below is what the ack the
		// session sends back will attest to.
		s.walCommit()
		return Response{OK: true, repl: &replReply{appliedSeq: s.walSeq}}

	case replCkpt:
		if r == nil || r.role != roleFollower {
			return Response{OK: false, Error: fmt.Sprintf("ctl: repl checkpoint on a %s", replRoleOf(r))}
		}
		// Stream ordering guarantees the announce arrives exactly at the
		// rotation point; anything else means the session lost frames.
		if rc.ckptSeq != s.walSeq {
			return Response{OK: false, Error: fmt.Sprintf(
				"%v: checkpoint announced at seq %d, follower applied %d", repl.ErrSeqGap, rc.ckptSeq, s.walSeq)}
		}
		if err := s.doCheckpoint(); err != nil {
			return Response{OK: false, Error: fmt.Sprintf("ctl: follower checkpoint: %v", err)}
		}
		return Response{OK: true, repl: &replReply{appliedSeq: s.walSeq}}

	default:
		return Response{OK: false, Error: fmt.Sprintf("ctl: unknown repl command %d", rc.kind)}
	}
}

func replRoleOf(r *replState) string {
	if r == nil {
		return "server without replication"
	}
	return r.role
}

// replFolding reports whether the engine may only advance through the
// replicated fold (state loop only). True exactly while following: the
// leader stamps each record with its round count at admission, and the
// follower reconstructs state by stepping to that stamp, so rounds run
// anywhere else overshoot the next record's stamp — the leader admits
// mid-cascade under pipelined load — and fail the fold's clock
// assertion. Promotion drains the backlog and flips the role, which
// re-enables free-running rounds.
func (s *Server) replFolding() bool {
	return s.repl != nil && s.repl.role == roleFollower
}

// notLeaderResponse is the typed rejection for writes landing on a
// follower or deposed leader.
func (s *Server) notLeaderResponse() Response {
	r := s.repl
	info := &NotLeaderInfo{Role: r.role, Term: r.term}
	if r.role == roleFollower {
		info.LeaderAddr = r.leaderAddr
	}
	err := &NotLeaderError{Role: info.Role, Term: info.Term, LeaderAddr: info.LeaderAddr}
	return Response{OK: false, Error: err.Error(), NotLeader: info}
}

// replInfo renders the OpReplStatus payload (state loop only).
func (s *Server) replInfo() *ReplInfo {
	r := s.repl
	info := &ReplInfo{Role: r.role, Term: r.term, LastSeq: s.walSeq, FailoverMs: r.failoverMs.Load()}
	switch r.role {
	case roleFollower:
		info.LeaderAddr = r.leaderAddr
		info.LagRecords = max(0, r.leaderSeq.Load()-s.walSeq)
		r.mu.Lock()
		info.LastError = r.lastErr
		r.mu.Unlock()
	case roleLeader:
		r.mu.Lock()
		for f := range r.followers {
			acked := f.acked.Load()
			info.Followers = append(info.Followers, FollowerInfo{
				Addr:       f.addr,
				AckedSeq:   acked,
				LagRecords: max(0, s.walSeq-acked),
				Synced:     f.synced.Load(),
			})
		}
		r.mu.Unlock()
		sort.Slice(info.Followers, func(i, j int) bool {
			return info.Followers[i].Addr < info.Followers[j].Addr
		})
	}
	return info
}

// handlePromote flips a follower to leader (state loop only): stop the
// stream, drain the fold's cascade to quiescence, persist the bumped
// term — the fence that deposes the old leader — and only then serve
// writes. The drain is bounded by replication lag, not log length: the
// follower folded continuously, so only the not-yet-executed tail of
// admitted work remains.
func (s *Server) handlePromote() Response {
	r := s.repl
	if r == nil || s.wal == nil {
		return Response{OK: false, Error: "ctl: replication requires a WAL"}
	}
	switch r.role {
	case roleLeader:
		// Idempotent: an operator promote racing the watchdog's is fine.
		return Response{OK: true, Repl: s.replInfo()}
	case roleDeposed:
		return Response{OK: false,
			Error:     "ctl: deposed leader cannot be promoted; restart it as a follower",
			NotLeader: &NotLeaderInfo{Role: r.role, Term: r.term}}
	}
	started := time.Now()
	r.stopFollowing()
	for {
		worked, err := s.engine.Step()
		if err != nil {
			return Response{OK: false, Error: fmt.Sprintf("ctl: promote drain: %v", err)}
		}
		if !worked {
			break
		}
	}
	newTerm := r.term + 1
	if lt := r.leaderTerm.Load(); lt >= newTerm {
		newTerm = lt + 1
	}
	if err := repl.SaveTerm(s.walLog.Dir(), newTerm); err != nil {
		return Response{OK: false, Error: fmt.Sprintf("ctl: promote: %v", err)}
	}
	r.term = newTerm
	r.termA.Store(newTerm)
	r.met.Term.Set(int64(newTerm))
	r.setRole(roleLeader)
	s.refreshGauges()
	elapsed := time.Since(started)
	r.failoverMs.Store(elapsed.Milliseconds())
	r.met.Promotions.Inc()
	r.met.Failover.Observe(elapsed.Nanoseconds())
	r.met.FailoverMs.Set(elapsed.Milliseconds())
	r.met.LagRecords.Set(0)
	return Response{OK: true, Repl: s.replInfo()}
}

// serveRepl serves one leader-side replication session (connection
// handler; the first byte already identified the stream).
func (s *Server) serveRepl(conn net.Conn, br *bufio.Reader) {
	_ = conn.SetReadDeadline(time.Now().Add(replHandshakeTimeout))
	m, _, err := repl.ReadMessage(br, nil)
	if err != nil || m.Kind != repl.KindHello {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	f := &replFollower{
		addr: conn.RemoteAddr().String(),
		conn: conn,
		out:  make(chan []byte, replOutboxDepth),
		done: make(chan struct{}),
	}
	rep, err := s.dispatchRepl(&replCmd{kind: replAttach, hello: m.Hello, follower: f})
	if err != nil {
		return
	}
	accepted := rep.verdict.Code == ""
	if accepted {
		defer s.repl.detach(f)
	}
	w := &repl.Welcome{
		Code: rep.verdict.Code, Detail: rep.verdict.Detail,
		Term: rep.term, LastSeq: rep.walSeq, CheckpointSeq: rep.ckptSeq,
		Snapshot: rep.ckpt != nil,
	}
	out, err := repl.AppendWelcome(nil, w)
	if err != nil {
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	if _, err := conn.Write(out); err != nil {
		return
	}
	if !accepted {
		return
	}

	afterSeq := m.Hello.AfterSeq
	if rep.ckpt != nil {
		out, err = repl.AppendCheckpoint(out[:0], rep.ckpt, true)
		if err != nil {
			return
		}
		_ = conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
		if _, err := conn.Write(out); err != nil {
			return
		}
		afterSeq = rep.ckpt.ID.Seq
	}

	// The ack reader owns the connection's read side from here. It
	// flips the follower to synced once it acks through the attach
	// point, joining the group-commit gate.
	r := s.repl
	go func() {
		var scratch []byte
		for {
			am, sc, err := repl.ReadMessage(br, scratch)
			scratch = sc
			if err != nil || am.Kind != repl.KindAck {
				f.fail()
				r.wake()
				return
			}
			f.acked.Store(am.Ack.Seq)
			r.met.AcksReceived.Inc()
			if !f.synced.Load() && am.Ack.Seq >= f.syncTarget {
				f.synced.Store(true)
				r.met.SyncedFollowers.Set(r.nSynced.Add(1))
			}
			r.wake()
		}
	}()

	// Catch-up: stream (afterSeq, attach point] straight off the
	// segment files. The snapshot taken at attach can go stale if the
	// leader checkpoints past it mid-stream (segments purged under us);
	// the session just drops and the follower reconnects from wherever
	// its fold got to.
	bw := bufio.NewWriterSize(conn, 64<<10)
	var batch, frameBuf []byte
	sent := int64(0)
	sendBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		var err error
		frameBuf, err = repl.AppendRecords(frameBuf[:0], batch)
		if err != nil {
			return err
		}
		_ = conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
		if _, err := bw.Write(frameBuf); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	err = wal.EmitFrames(rep.segs, afterSeq, rep.walSeq, func(frame []byte, _ *wal.Record) error {
		batch = append(batch, frame...)
		sent++
		if len(batch) >= replBatchBytes {
			return sendBatch()
		}
		return nil
	})
	if err != nil {
		return
	}
	if err := sendBatch(); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	r.met.RecordsSent.Add(sent)

	// Live stream: drain the outbox, coalescing bursts into one flush.
	for {
		select {
		case frame := <-f.out:
			_ = conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
			if _, err := bw.Write(frame); err != nil {
				return
			}
			for more := true; more; {
				select {
				case fr := <-f.out:
					if _, err := bw.Write(fr); err != nil {
						return
					}
				default:
					more = false
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case <-f.done:
			return
		case <-s.closing:
			return
		}
	}
}

// FollowerConfig wires a server as a warm follower of a leader's WAL.
type FollowerConfig struct {
	// Log is the follower's own opened WAL (wal.Open); replicated
	// frames are appended here so the follower can itself crash,
	// recover and resume.
	Log *wal.Log
	// Meta must describe the same deterministic world as the leader's;
	// the leader refuses mismatches at handshake.
	Meta *wal.Meta
	// LeaderAddr is the leader's ctl address.
	LeaderAddr string
	// CheckpointEvery is used after promotion (0 = default). While
	// following, checkpoints happen only on the leader's announcement.
	CheckpointEvery int
	// PromoteAfter auto-promotes once the leader has been unreachable
	// this long (0 = manual promotion only). Must comfortably exceed
	// the leader's heartbeat cadence.
	PromoteAfter time.Duration
	// DialTimeout bounds connection attempts (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// ReconnectEvery is the redial backoff (0 = DefaultReconnectEvery).
	ReconnectEvery time.Duration
}

// FollowerSession is an established replication stream, handed from
// FollowerBootstrap to NewFollower.
type FollowerSession struct {
	conn    net.Conn
	br      *bufio.Reader
	welcome *repl.Welcome
	term    uint64
}

// FollowerBootstrap prepares cfg.Log for following and opens the
// replication session: truncate any torn tail back to the last complete
// frame (a follower that crashed mid-stream must not let a later
// rotation freeze the tear into a non-final segment), load the
// persisted term, handshake, and install the leader's bootstrap
// checkpoint when one is needed.
//
// It runs before the world is built so the caller can decide — exactly
// as with plain recovery — whether cfg.Log.Checkpoint() obviates
// background pre-fill. Pass the session to NewFollower.
func FollowerBootstrap(cfg FollowerConfig) (*FollowerSession, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("ctl: FollowerConfig.Log is nil")
	}
	if cfg.Meta == nil {
		return nil, fmt.Errorf("ctl: FollowerConfig.Meta is nil")
	}
	if _, err := cfg.Log.TruncateTail(); err != nil {
		return nil, err
	}
	term, err := repl.LoadTerm(cfg.Log.Dir())
	if err != nil {
		return nil, err
	}
	sess, err := dialFollowerSession(&cfg, term, cfg.Log.LastSeq(), cfg.Log.Empty())
	if err != nil {
		return nil, err
	}
	if err := repl.CheckWelcome(term, sess.welcome); err != nil {
		_ = sess.conn.Close()
		return nil, err
	}
	if sess.welcome.Snapshot {
		_ = sess.conn.SetReadDeadline(time.Now().Add(replHandshakeTimeout))
		m, _, err := repl.ReadMessage(sess.br, nil)
		if err != nil {
			_ = sess.conn.Close()
			return nil, err
		}
		if m.Kind != repl.KindCheckpoint || !m.Bootstrap {
			_ = sess.conn.Close()
			return nil, fmt.Errorf("%w: expected bootstrap checkpoint, got frame kind %d", repl.ErrCorrupt, m.Kind)
		}
		if err := cfg.Log.InstallCheckpoint(m.Checkpoint); err != nil {
			_ = sess.conn.Close()
			return nil, err
		}
		_ = sess.conn.SetReadDeadline(time.Time{})
	}
	return sess, nil
}

// dialFollowerSession connects and exchanges Hello/Welcome. The caller
// validates the Welcome (CheckWelcome) so it can tell fatal rejections
// from retryable ones.
func dialFollowerSession(cfg *FollowerConfig, term uint64, afterSeq int64, bootstrap bool) (*FollowerSession, error) {
	dt := cfg.DialTimeout
	if dt <= 0 {
		dt = DefaultDialTimeout
	}
	conn, err := net.DialTimeout("tcp", cfg.LeaderAddr, dt)
	if err != nil {
		return nil, err
	}
	h := &repl.Hello{Term: term, AfterSeq: afterSeq, Bootstrap: bootstrap, Meta: *cfg.Meta}
	buf, err := repl.AppendHello(nil, h)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	_ = conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	if _, err := conn.Write(buf); err != nil {
		_ = conn.Close()
		return nil, err
	}
	_ = conn.SetWriteDeadline(time.Time{})
	br := bufio.NewReaderSize(conn, 64<<10)
	_ = conn.SetReadDeadline(time.Now().Add(replHandshakeTimeout))
	m, _, err := repl.ReadMessage(br, nil)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if m.Kind != repl.KindWelcome {
		_ = conn.Close()
		return nil, fmt.Errorf("%w: expected welcome, got frame kind %d", repl.ErrCorrupt, m.Kind)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return &FollowerSession{conn: conn, br: br, welcome: m.Welcome, term: term}, nil
}

// NewFollower builds a read-only server that continuously folds the
// leader's WAL stream. It recovers the follower's own log first (the
// same initWAL path NewServerWithWAL takes — a bootstrap checkpoint
// installed by FollowerBootstrap restores like any other), then applies
// frames from sess as they arrive. Writes are answered with a typed
// not-leader rejection until promotion.
func NewFollower(planner *core.Planner, scheduler sched.Scheduler, simCfg sim.Config, cfg FollowerConfig, sess *FollowerSession, opts ...ServerOption) (*Server, *RecoveryInfo, error) {
	if sess == nil {
		return nil, nil, fmt.Errorf("ctl: NewFollower needs the session from FollowerBootstrap")
	}
	s := newServer(planner, scheduler, simCfg, opts...)
	info, err := s.initWAL(WALConfig{Log: cfg.Log, Meta: cfg.Meta, CheckpointEvery: cfg.CheckpointEvery, followerBoot: true})
	if err != nil {
		_ = sess.conn.Close()
		return nil, nil, err
	}
	r := s.repl
	r.setRole(roleFollower)
	r.fcfg = &cfg
	r.leaderAddr = cfg.LeaderAddr
	r.promoteAfter = cfg.PromoteAfter
	if cfg.DialTimeout > 0 {
		r.dialTimeout = cfg.DialTimeout
	}
	if cfg.ReconnectEvery > 0 {
		r.backoff = cfg.ReconnectEvery
	}
	r.leaderTerm.Store(sess.welcome.Term)
	r.leaderSeq.Store(sess.welcome.LastSeq)
	s.start()
	r.wg.Add(1)
	go s.runFollower(sess)
	return s, info, nil
}

// runFollower owns the follower's stream: fold sessions, reconnects,
// and the leader-loss watchdog that auto-promotes.
func (s *Server) runFollower(sess *FollowerSession) {
	r := s.repl
	defer r.wg.Done()
	for {
		err := s.followSession(sess)
		_ = sess.conn.Close()
		if err == errPromoted || s.isClosing() || r.stopped() {
			return
		}
		r.setLastErr(err)
		if isFatalFollow(err) {
			// Reconnecting would deterministically fail again (stale
			// leader, divergence, sequence gap): stop and surface the
			// error through repl status.
			return
		}
		// Reconnect, auto-promoting if the leader stays dark.
		downSince := time.Now()
		for {
			if s.isClosing() || r.stopped() {
				return
			}
			if r.promoteAfter > 0 && time.Since(downSince) >= r.promoteAfter {
				s.dispatch(Request{Op: OpReplPromote})
				return
			}
			select {
			case <-time.After(r.backoff):
			case <-s.closing:
				return
			case <-r.stopFollow:
				return
			}
			ns, err := dialFollowerSession(r.fcfg, r.termA.Load(), s.walMet.LastSeq.Value(), false)
			if err != nil {
				continue // leader still down; keep the watchdog ticking
			}
			if werr := repl.CheckWelcome(r.termA.Load(), ns.welcome); werr != nil {
				_ = ns.conn.Close()
				r.setLastErr(werr)
				if ns.welcome.Code == repl.CodeFull {
					// Our previous session may still be detaching on the
					// leader; that slot frees up, so retry.
					continue
				}
				return
			}
			sess = ns
			r.setLastErr(nil)
			break
		}
	}
}

// followSession folds one established stream until it errors, the
// server closes, or a read-deadline watchdog promotes this follower.
func (s *Server) followSession(sess *FollowerSession) error {
	r := s.repl
	r.setConn(sess.conn)
	defer r.setConn(nil)
	if t := sess.welcome.Term; t > r.leaderTerm.Load() {
		r.leaderTerm.Store(t)
	}
	r.leaderSeq.Store(sess.welcome.LastSeq)
	var scratch, ackBuf []byte
	for {
		if s.isClosing() || r.stopped() {
			return errPromoted
		}
		if r.promoteAfter > 0 {
			_ = sess.conn.SetReadDeadline(time.Now().Add(r.promoteAfter))
		}
		m, sc, err := repl.ReadMessage(sess.br, scratch)
		scratch = sc
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && r.promoteAfter > 0 && !r.stopped() && !s.isClosing() {
				// The leader went silent past the heartbeat cadence:
				// promote in place rather than reconnect.
				s.dispatch(Request{Op: OpReplPromote})
				return errPromoted
			}
			return err
		}
		switch m.Kind {
		case repl.KindRecords:
			recs, err := repl.DecodeRecords(m.Records)
			if err != nil {
				return err
			}
			if len(recs) == 0 {
				continue
			}
			rep, err := s.dispatchRepl(&replCmd{kind: replApply, recs: recs})
			if err != nil {
				if errors.Is(err, ErrServerClosed) {
					return err
				}
				return fmt.Errorf("%w: %v", errFoldFailed, err)
			}
			ackBuf, err = repl.AppendAck(ackBuf[:0], rep.appliedSeq)
			if err != nil {
				return err
			}
			_ = sess.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
			if _, err := sess.conn.Write(ackBuf); err != nil {
				return err
			}
			if rep.appliedSeq > r.leaderSeq.Load() {
				r.leaderSeq.Store(rep.appliedSeq)
			}
			lag := max(0, r.leaderSeq.Load()-rep.appliedSeq)
			r.met.LagRecords.Set(lag)
			r.met.Lag.Observe(lag)

		case repl.KindCheckpoint:
			if m.Bootstrap {
				return fmt.Errorf("%w: bootstrap checkpoint mid-stream", repl.ErrCorrupt)
			}
			if _, err := s.dispatchRepl(&replCmd{kind: replCkpt, ckptSeq: m.Checkpoint.ID.Seq}); err != nil {
				if errors.Is(err, ErrServerClosed) {
					return err
				}
				return fmt.Errorf("%w: %v", errFoldFailed, err)
			}

		case repl.KindHeartbeat:
			hb := m.Heartbeat
			if hb.Term < r.termA.Load() {
				return fmt.Errorf("%w: heartbeat term %d below own term %d",
					repl.ErrStaleLeader, hb.Term, r.termA.Load())
			}
			if hb.Term > r.leaderTerm.Load() {
				r.leaderTerm.Store(hb.Term)
			}
			r.leaderSeq.Store(hb.LastSeq)
			lag := max(0, hb.LastSeq-s.walMet.LastSeq.Value())
			r.met.LagRecords.Set(lag)
			r.met.Lag.Observe(lag)

		default:
			return fmt.Errorf("%w: unexpected frame kind %d from leader", repl.ErrCorrupt, m.Kind)
		}
	}
}

// isFatalFollow reports whether a session error would deterministically
// recur on reconnect.
func isFatalFollow(err error) bool {
	return errors.Is(err, errFoldFailed) ||
		errors.Is(err, repl.ErrCorrupt) ||
		errors.Is(err, repl.ErrSeqGap) ||
		errors.Is(err, repl.ErrStaleLeader) ||
		errors.Is(err, repl.ErrRejected)
}

func (s *Server) isClosing() bool {
	select {
	case <-s.closing:
		return true
	default:
		return false
	}
}
