package ctl

import (
	"bytes"
	"encoding/json"
	"net"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/migration"
	"netupdate/internal/netstate"
	"netupdate/internal/obs"
	"netupdate/internal/routing"
	"netupdate/internal/sched"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/trace"
)

// syncBuffer is an io.Writer safe for the async span sink's background
// drain goroutine to write while the test later reads the result.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerSpanPipeline drives a binary client with spans enabled
// through a span-sinking server and checks the whole pipeline: feature
// negotiation, per-event stage waterfalls in the span file, and the
// latency percentiles surfaced through Stats.
func TestServerSpanPipeline(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net1 := netstate.New(ft.Graph(), routing.NewFatTreeProvider(ft), routing.NewRandomFit(7))
	gen, err := trace.NewGenerator(1, trace.YahooLike{}, ft.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.FillBackground(net1, gen, 0.3, 0); err != nil {
		t.Fatal(err)
	}
	planner := core.NewPlanner(migration.NewPlanner(net1, 0), core.FailSkip)
	var spanOut syncBuffer
	srv := NewServer(planner, sched.NewLMTF(4, 99),
		sim.Config{InstallTime: time.Millisecond, Probes: 2},
		WithSpanSink(obs.NewJSONLSink(&spanOut)))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()

	client, err := DialBinary(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	feats, err := client.Features()
	if err != nil {
		t.Fatalf("Features: %v", err)
	}
	if !slices.Contains(feats, FeatureSpanContext) {
		t.Fatalf("server features %v missing %q", feats, FeatureSpanContext)
	}
	const origin = 2
	client.EnableSpans(origin)

	specs := []EventSpec{
		{Kind: "a", Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 40e6}}},
		{Kind: "b", Flows: []FlowSpec{{Src: 2, Dst: 3, DemandBps: 60e6}, {Src: 4, Dst: 5, DemandBps: 20e6}}},
		{Kind: "c", Flows: []FlowSpec{{Src: 6, Dst: 7, DemandBps: 10e6}}},
	}
	verdicts, _, err := client.SubmitBatch(specs)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	var ids []int64
	for i, v := range verdicts {
		if !v.OK {
			t.Fatalf("event %d rejected: %s", i, v.Error)
		}
		if _, err := client.WaitDone(v.EventID, 10*time.Second); err != nil {
			t.Fatalf("WaitDone(%d): %v", v.EventID, err)
		}
		ids = append(ids, v.EventID)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.LatencyE2EP99Ns <= 0 {
		t.Errorf("LatencyE2EP99Ns = %d, want > 0 after %d completions", st.LatencyE2EP99Ns, len(ids))
	}
	if st.LatencyE2EP50Ns > st.LatencyE2EP99Ns {
		t.Errorf("e2e p50 %d > p99 %d", st.LatencyE2EP50Ns, st.LatencyE2EP99Ns)
	}
	if st.SpansDropped != 0 {
		t.Errorf("SpansDropped = %d, want 0", st.SpansDropped)
	}
	client.Close()
	// Close drains the async span sink, so afterwards the buffer holds
	// every stage record.
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}

	stages := map[int64][]*obs.StageRecord{}
	for _, line := range strings.Split(strings.TrimSpace(spanOut.String()), "\n") {
		if line == "" {
			continue
		}
		var rec obs.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if rec.Kind != obs.KindStage || rec.Stage == nil {
			t.Fatalf("span channel carried non-stage record: %q", line)
		}
		stages[rec.Stage.Event] = append(stages[rec.Stage.Event], rec.Stage)
	}

	// Every accepted event has a complete waterfall: submit (the wire
	// carried a client stamp), ingest, admit, exec, complete — in order.
	wantPrefix := []string{obs.StageSubmit, obs.StageIngest, obs.StageAdmit}
	for _, id := range ids {
		recs := stages[id]
		if len(recs) == 0 {
			t.Fatalf("event %d has no stage records", id)
		}
		var names []string
		for _, r := range recs {
			if r.TraceID != obs.TraceID(id, origin) {
				t.Errorf("event %d stage %s trace ID %d, want %d", id, r.Stage, r.TraceID, obs.TraceID(id, origin))
			}
			if r.Stage == obs.StageProbed {
				continue // probe count varies with scheduling; checked via Probes below
			}
			names = append(names, r.Stage)
		}
		for i, want := range wantPrefix {
			if i >= len(names) || names[i] != want {
				t.Fatalf("event %d stages = %v, want prefix %v", id, names, wantPrefix)
			}
		}
		last := recs[len(recs)-1]
		if last.Stage != obs.StageComplete {
			t.Fatalf("event %d last stage = %s, want %s", id, last.Stage, obs.StageComplete)
		}
		if last.E2ENs <= 0 {
			t.Errorf("event %d completion E2ENs = %d, want > 0", id, last.E2ENs)
		}
		if !slices.Contains(names, obs.StageExec) {
			t.Errorf("event %d stages %v missing %s", id, names, obs.StageExec)
		}
	}
}
