package ctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netupdate/internal/repl"
	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/wal"
)

// The replication chaos suite: a leader streams its WAL to a warm
// follower over the wire, the tests kill the leader at controlled (and,
// in the property test, at every possible) points, promote the
// follower, and require the promoted server to be indistinguishable
// from one that folded the same acked prefix without any of the drama.

// startReplLeader is startWALServer plus the pieces replication tests
// need: the listen address (followers dial it) and a fast heartbeat so
// lag/liveness machinery runs within test timescales.
func startReplLeader(t *testing.T, dir string, ckptEvery int, wopts ...wal.Option) (*Server, *Client, string, *topology.FatTree) {
	t.Helper()
	log, err := wal.Open(dir, wopts...)
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	planner, scheduler, ft := buildWALWorld(t, log.Checkpoint() == nil)
	srv, _, err := NewServerWithWAL(planner, scheduler, sim.Config{InstallTime: time.Millisecond},
		WALConfig{Log: log, CheckpointEvery: ckptEvery},
		WithReplication(ReplicationConfig{HeartbeatEvery: 50 * time.Millisecond}))
	if err != nil {
		t.Fatalf("NewServerWithWAL: %v", err)
	}
	client, addr := serveAndDial(t, srv)
	return srv, client, addr, ft
}

// startReplFollower boots a warm follower of the leader at leaderAddr,
// journaling into its own dir. promoteAfter 0 means manual promotion
// only.
func startReplFollower(t *testing.T, dir, leaderAddr string, meta wal.Meta, ckptEvery int, promoteAfter time.Duration) (*Server, *Client) {
	t.Helper()
	log, err := wal.Open(dir)
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	cfg := FollowerConfig{
		Log: log, Meta: &meta, LeaderAddr: leaderAddr,
		CheckpointEvery: ckptEvery, PromoteAfter: promoteAfter,
		ReconnectEvery: 50 * time.Millisecond,
	}
	sess, err := FollowerBootstrap(cfg)
	if err != nil {
		t.Fatalf("FollowerBootstrap: %v", err)
	}
	planner, scheduler, _ := buildWALWorld(t, log.Checkpoint() == nil)
	srv, _, err := NewFollower(planner, scheduler, sim.Config{InstallTime: time.Millisecond}, cfg, sess,
		WithReplication(ReplicationConfig{HeartbeatEvery: 50 * time.Millisecond}))
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	client, _ := serveAndDial(t, srv)
	return srv, client
}

// serveAndDial listens, serves and dials srv, wiring the same teardown
// as startWALServer.
func serveAndDial(t *testing.T, srv *Server) (*Client, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := client.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Errorf("client close: %v", err)
		}
	})
	return client, l.Addr().String()
}

// waitFor polls until cond or the deadline; replication progress is
// asynchronous by design, so the tests wait on externally visible state
// rather than internals.
func waitFor(t *testing.T, timeout time.Duration, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitCaughtUp waits until the follower has applied through seq.
func waitCaughtUp(t *testing.T, client *Client, seq int64) {
	t.Helper()
	waitFor(t, 15*time.Second, fmt.Sprintf("follower to reach seq %d", seq), func() bool {
		st, err := client.Stats()
		if err != nil {
			t.Fatalf("Stats: %v", err)
		}
		return st.WALLastSeq >= seq
	})
}

// TestReplFollowerStreamsAndPromotes is the end-to-end happy path of
// the tentpole: live streaming with checkpoint announcements, lag and
// role visibility, typed write rejection on the follower, and a manual
// promotion after leader loss that converges byte-for-byte with the
// dead leader's acked state.
func TestReplFollowerStreamsAndPromotes(t *testing.T) {
	leaderDir := filepath.Join(t.TempDir(), "leader")
	followerDir := filepath.Join(t.TempDir(), "follower")

	// ckptEvery 6 forces several rotations mid-run, so the follower must
	// fold checkpoint announcements interleaved with records.
	leaderSrv, leaderClient, leaderAddr, ft := startReplLeader(t, leaderDir, 6)
	followerSrv, followerClient := startReplFollower(t, followerDir, leaderAddr, leaderSrv.walMeta, 6, 0)

	for _, ch := range walWorkload(ft, 11, 4, 3) {
		playChunk(t, leaderClient, ch)
	}
	leaderStats, err := leaderClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if leaderStats.ReplRole != "leader" || leaderStats.ReplFollowers != 1 {
		t.Fatalf("leader stats: role=%q followers=%d", leaderStats.ReplRole, leaderStats.ReplFollowers)
	}
	waitCaughtUp(t, followerClient, leaderStats.WALLastSeq)

	// The group-commit gate means a quiesced leader has every record
	// acked; its own view of the follower must agree.
	waitFor(t, 10*time.Second, "leader to see the follower synced and acked", func() bool {
		info, err := leaderClient.ReplStatus()
		if err != nil {
			t.Fatalf("ReplStatus: %v", err)
		}
		return len(info.Followers) == 1 && info.Followers[0].Synced &&
			info.Followers[0].AckedSeq == leaderStats.WALLastSeq
	})

	followerStats, err := followerClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if followerStats.ReplRole != "follower" {
		t.Fatalf("follower role = %q", followerStats.ReplRole)
	}
	if followerStats.WALCheckpointSeq != leaderStats.WALCheckpointSeq {
		t.Fatalf("checkpoint misaligned: follower rotated at %d, leader at %d",
			followerStats.WALCheckpointSeq, leaderStats.WALCheckpointSeq)
	}
	if followerStats.ReplRecordsApplied != leaderStats.WALLastSeq {
		t.Fatalf("follower applied %d records, leader journaled %d",
			followerStats.ReplRecordsApplied, leaderStats.WALLastSeq)
	}
	info, err := followerClient.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "follower" || info.LeaderAddr != leaderAddr {
		t.Fatalf("follower repl status: %+v", info)
	}

	// Writes on the follower are refused with the typed rejection that
	// carries the leader's address.
	var nl *NotLeaderError
	if _, err := followerClient.Submit(EventSpec{Kind: "x", Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 1e6}}}); !errors.As(err, &nl) {
		t.Fatalf("submit on follower: got %v, want *NotLeaderError", err)
	}
	if !errors.Is(nl, ErrNotLeader) || nl.LeaderAddr != leaderAddr || nl.Role != "follower" {
		t.Fatalf("rejection detail: %+v", nl)
	}
	if _, err := followerClient.Fault(FaultSpec{Action: "install-timeout", Times: 1}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("fault on follower: got %v, want ErrNotLeader", err)
	}

	// Kill the leader; promote; the promoted server must be the dead
	// leader's acked state, exactly.
	want := captureDigest(t, leaderSrv, leaderClient)
	if err := leaderSrv.Close(); err != nil {
		t.Fatal(err)
	}
	pInfo, err := followerClient.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if pInfo.Role != "leader" || pInfo.Term < 2 {
		t.Fatalf("after promote: %+v", pInfo)
	}
	got := captureDigest(t, followerSrv, followerClient)
	diffDigest(t, want, got)

	// Idempotent for an operator racing the watchdog.
	again, err := followerClient.Promote()
	if err != nil || again.Term != pInfo.Term {
		t.Fatalf("second promote: info=%+v err=%v", again, err)
	}

	// The promoted leader serves: run another chunk to completion.
	for _, ch := range walWorkload(ft, 12, 1, 3) {
		playChunk(t, followerClient, ch)
	}
	st, err := followerClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplRole != "leader" || st.ReplTerm != pInfo.Term {
		t.Fatalf("promoted stats: role=%q term=%d", st.ReplRole, st.ReplTerm)
	}
}

// TestReplAutoPromoteOnLeaderLoss exercises the watchdog: the leader
// vanishes (process gone, port closed) and the follower promotes itself
// once the leader has been dark past PromoteAfter, then serves writes.
func TestReplAutoPromoteOnLeaderLoss(t *testing.T) {
	leaderDir := filepath.Join(t.TempDir(), "leader")
	followerDir := filepath.Join(t.TempDir(), "follower")
	leaderSrv, leaderClient, leaderAddr, ft := startReplLeader(t, leaderDir, -1)
	_, followerClient := startReplFollower(t, followerDir, leaderAddr, leaderSrv.walMeta, -1, 400*time.Millisecond)

	playChunk(t, leaderClient, walWorkload(ft, 21, 1, 3)[0])
	st, err := leaderClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, followerClient, st.WALLastSeq)

	if err := leaderSrv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "watchdog promotion", func() bool {
		info, err := followerClient.ReplStatus()
		if err != nil {
			t.Fatalf("ReplStatus: %v", err)
		}
		return info.Role == "leader"
	})
	info, err := followerClient.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if info.Term < 2 {
		t.Fatalf("promoted term = %d, want >= 2", info.Term)
	}
	if info.LastSeq != st.WALLastSeq {
		t.Fatalf("acked-event loss: promoted at seq %d, leader acked %d", info.LastSeq, st.WALLastSeq)
	}
	playChunk(t, followerClient, walWorkload(ft, 22, 1, 2)[0])
}

// TestReplSplitBrain pins the fencing rules: once a follower has
// promoted, its term deposes the old leader at first contact, and a
// deposed leader never again accepts a write or a promotion.
func TestReplSplitBrain(t *testing.T) {
	leaderDir := filepath.Join(t.TempDir(), "leader")
	followerDir := filepath.Join(t.TempDir(), "follower")
	leaderSrv, leaderClient, leaderAddr, ft := startReplLeader(t, leaderDir, -1)
	_, followerClient := startReplFollower(t, followerDir, leaderAddr, leaderSrv.walMeta, -1, 0)

	playChunk(t, leaderClient, walWorkload(ft, 31, 1, 3)[0])
	st, err := leaderClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, followerClient, st.WALLastSeq)

	// A network partition hides the leader from the operator, who
	// promotes the follower. The old leader is still running.
	pInfo, err := followerClient.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if pInfo.Term < 2 {
		t.Fatalf("promoted term = %d", pInfo.Term)
	}

	// The promoted term is persisted: a fresh LoadTerm sees the fence.
	term, err := repl.LoadTerm(followerDir)
	if err != nil || term != pInfo.Term {
		t.Fatalf("persisted term = %d (err %v), want %d", term, err, pInfo.Term)
	}

	// First contact from the new term deposes the old leader: the
	// handshake is refused with CodeDeposed and the old leader steps
	// down read-only.
	meta := leaderSrv.walMeta
	sess, err := dialFollowerSession(&FollowerConfig{LeaderAddr: leaderAddr, Meta: &meta}, pInfo.Term, 0, true)
	if err != nil {
		t.Fatalf("deposing handshake: %v", err)
	}
	defer sess.conn.Close()
	if sess.welcome.Code != repl.CodeDeposed {
		t.Fatalf("welcome code = %q, want %q", sess.welcome.Code, repl.CodeDeposed)
	}
	if err := repl.CheckWelcome(pInfo.Term, sess.welcome); !errors.Is(err, repl.ErrRejected) {
		t.Fatalf("CheckWelcome: %v", err)
	}

	waitFor(t, 5*time.Second, "old leader to step down", func() bool {
		info, err := leaderClient.ReplStatus()
		if err != nil {
			t.Fatalf("ReplStatus: %v", err)
		}
		return info.Role == "deposed"
	})

	// Never dual-write: every write path on the deposed leader is a
	// typed rejection, including promotion back to leader.
	if _, err := leaderClient.Submit(EventSpec{Kind: "x", Flows: []FlowSpec{{Src: 0, Dst: 1, DemandBps: 1e6}}}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("submit on deposed leader: got %v, want ErrNotLeader", err)
	}
	if _, err := leaderClient.Fault(FaultSpec{Action: "install-timeout", Times: 1}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("fault on deposed leader: got %v, want ErrNotLeader", err)
	}
	if _, err := leaderClient.Promote(); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("promote on deposed leader: got %v, want ErrNotLeader", err)
	}

	// The new leader, meanwhile, serves.
	playChunk(t, followerClient, walWorkload(ft, 32, 1, 2)[0])
}

// TestReplFailoverFoldEquivalenceAtEveryPrefix is the failover property
// test, mirroring TestRecoveryFoldEquivalenceAtEveryPrefix: the leader
// can die after ANY replicated record, and for every such prefix p the
// promoted follower (which received exactly p records — the leader's
// whole log) must match a never-crashed server that folded the same p
// records locally. Prefixes where an archived checkpoint applies also
// exercise the bootstrap-snapshot path: the leader boots from the
// checkpoint image, so the follower installs the snapshot and streams
// only the suffix, yet must still converge to the full-fold digest.
func TestReplFailoverFoldEquivalenceAtEveryPrefix(t *testing.T) {
	baseDir := filepath.Join(t.TempDir(), "wal")
	_, clientA, _, ft := startWALServer(t, baseDir, 5, wal.WithKeepSegments())
	for _, ch := range walWorkload(ft, 4, 4, 3) {
		playChunk(t, clientA, ch)
	}
	histDir := filepath.Join(t.TempDir(), "hist")
	copyDir(t, baseDir, histDir)
	hist, err := wal.Open(histDir, wal.WithKeepSegments())
	if err != nil {
		t.Fatalf("open history: %v", err)
	}
	lastSeq := hist.LastSeq()
	if lastSeq < 10 {
		t.Fatalf("workload journaled only %d records, too few to be interesting", lastSeq)
	}
	archives := readArchivedCheckpoints(t, histDir)

	for p := int64(1); p <= lastSeq; p++ {
		p := p
		t.Run(fmt.Sprintf("prefix-%02d", p), func(t *testing.T) {
			t.Parallel()
			// Reference: fold the prefix locally, no replication drama.
			foldDir := filepath.Join(t.TempDir(), "fold")
			buildPrefixDir(t, hist, foldDir, p, nil)
			srvF, clientF, _, _ := startWALServer(t, foldDir, -1)
			want := captureDigest(t, srvF, clientF)

			// The leader serving the replication stream boots from the
			// newest checkpoint image covering p when one exists (so the
			// follower must bootstrap from the snapshot), else from the
			// plain prefix.
			var ckpt []byte
			for i := range archives {
				if archives[i].seq <= p {
					ckpt = archives[i].data
				}
			}
			leaderDir := filepath.Join(t.TempDir(), "leader")
			buildPrefixDir(t, hist, leaderDir, p, ckpt)
			leaderSrv, _, leaderAddr, _ := startReplLeader(t, leaderDir, -1)

			followerDir := filepath.Join(t.TempDir(), "follower")
			followerSrv, followerClient := startReplFollower(t, followerDir, leaderAddr, leaderSrv.walMeta, -1, 0)
			waitCaughtUp(t, followerClient, p)

			// Kill the leader at this exact stream prefix, promote.
			if err := leaderSrv.Close(); err != nil {
				t.Fatal(err)
			}
			info, err := followerClient.Promote()
			if err != nil {
				t.Fatalf("Promote: %v", err)
			}
			if info.Role != "leader" || info.LastSeq != p {
				t.Fatalf("promoted at seq %d as %s, want leader at %d", info.LastSeq, info.Role, p)
			}
			got := captureDigest(t, followerSrv, followerClient)
			diffDigest(t, want, got)

			// The promoted trace must be a suffix of the reference trace
			// (equal when the follower folded from genesis; shorter when
			// it bootstrapped from a checkpoint snapshot).
			traceWant, err := clientF.Trace(0)
			if err != nil {
				t.Fatalf("Trace: %v", err)
			}
			traceGot, err := followerClient.Trace(0)
			if err != nil {
				t.Fatalf("Trace: %v", err)
			}
			normTrace(traceWant)
			normTrace(traceGot)
			if len(traceGot) > len(traceWant) {
				t.Fatalf("promoted trace has %d records, reference %d", len(traceGot), len(traceWant))
			}
			if ckpt == nil && len(traceGot) != len(traceWant) {
				t.Fatalf("genesis fold traces differ in length: %d vs %d", len(traceGot), len(traceWant))
			}
			tail := traceWant[len(traceWant)-len(traceGot):]
			for i := range traceGot {
				wantJSON, _ := json.Marshal(tail[i])
				gotJSON, _ := json.Marshal(traceGot[i])
				if string(wantJSON) != string(gotJSON) {
					t.Fatalf("trace record %d/%d diverged:\nreference: %s\npromoted:  %s",
						i, len(traceGot), wantJSON, gotJSON)
				}
			}
		})
	}
}

// TestReplAttachRejections pins the leader-side handshake rejections a
// client can provoke end to end (the full verdict table is unit-tested
// in internal/repl).
func TestReplAttachRejections(t *testing.T) {
	leaderDir := filepath.Join(t.TempDir(), "leader")
	leaderSrv, leaderClient, leaderAddr, ft := startReplLeader(t, leaderDir, -1)
	playChunk(t, leaderClient, walWorkload(ft, 41, 1, 3)[0])
	st, err := leaderClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	meta := leaderSrv.walMeta

	// A follower claiming a seq past the leader's log replicated from a
	// different history.
	sess, err := dialFollowerSession(&FollowerConfig{LeaderAddr: leaderAddr, Meta: &meta}, 1, st.WALLastSeq+10, false)
	if err != nil {
		t.Fatal(err)
	}
	if sess.welcome.Code != repl.CodeAhead {
		t.Fatalf("ahead follower: code %q, want %q", sess.welcome.Code, repl.CodeAhead)
	}
	sess.conn.Close()

	// A different world is refused before any frame flows.
	otherMeta := meta
	otherMeta.Scheduler = "fifo"
	sess, err = dialFollowerSession(&FollowerConfig{LeaderAddr: leaderAddr, Meta: &otherMeta}, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if sess.welcome.Code != repl.CodeMetaMismatch {
		t.Fatalf("mismatched world: code %q, want %q", sess.welcome.Code, repl.CodeMetaMismatch)
	}
	sess.conn.Close()

	// The configured cap (default 1): a second live session is refused.
	followerDir := filepath.Join(t.TempDir(), "follower")
	_, followerClient := startReplFollower(t, followerDir, leaderAddr, meta, -1, 0)
	waitCaughtUp(t, followerClient, st.WALLastSeq)
	sess, err = dialFollowerSession(&FollowerConfig{LeaderAddr: leaderAddr, Meta: &meta}, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if sess.welcome.Code != repl.CodeFull {
		t.Fatalf("second follower: code %q, want %q", sess.welcome.Code, repl.CodeFull)
	}
	sess.conn.Close()

	// A server running without a WAL has nothing to replicate.
	planner, scheduler, _ := buildWALWorld(t, true)
	plain := NewServer(planner, scheduler, sim.Config{InstallTime: time.Millisecond})
	_, plainAddr := serveAndDial(t, plain)
	sess, err = dialFollowerSession(&FollowerConfig{LeaderAddr: plainAddr, Meta: &meta}, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if sess.welcome.Code != repl.CodeNoWAL {
		t.Fatalf("no-wal server: code %q, want %q", sess.welcome.Code, repl.CodeNoWAL)
	}
	sess.conn.Close()
}

// TestReplFollowerFoldsPipelinedBatches is the regression test for a
// fold-divergence bug: under pipelined load the leader admits records
// mid-cascade, stamping them with whatever round count its engine had
// reached, so a follower that runs rounds of its own — between applies
// in the state loop, or in the recovery drain at boot — pushes its
// clock past the next record's stamp and the fold's clock assertion
// fires ("wal replay diverged"). Every other test in this suite waits
// each chunk to quiescence before the next submit, which hides the
// bug: at a quiesced boundary the free-running follower lands on the
// same clock as the fold. This one never waits between batches, so
// every batch after the first is admitted while earlier events are
// still executing, and it fires faults mid-flight for the same reason.
func TestReplFollowerFoldsPipelinedBatches(t *testing.T) {
	leaderDir := filepath.Join(t.TempDir(), "leader")
	followerDir := filepath.Join(t.TempDir(), "follower")

	// ckptEvery 4 forces rotations while the cascade is still running.
	leaderSrv, leaderClient, leaderAddr, ft := startReplLeader(t, leaderDir, 4)
	followerSrv, followerClient := startReplFollower(t, followerDir, leaderAddr, leaderSrv.walMeta, 4, 0)

	// Flatten a chunked workload into back-to-back submissions: batch,
	// fault, batch, ... with no WaitDone anywhere in between.
	chunks := walWorkload(ft, 29, 3, 4)
	var ids, repairs []int64
	for _, ch := range chunks {
		got, err := leaderClient.SubmitBatchRetry(ch.specs, 5)
		if err != nil {
			t.Fatalf("SubmitBatchRetry: %v", err)
		}
		ids = append(ids, got...)
		if ch.fault != nil {
			res, err := leaderClient.Fault(*ch.fault)
			if err != nil {
				t.Fatalf("Fault(%s): %v", ch.fault.Action, err)
			}
			if res.RepairEventID != 0 {
				repairs = append(repairs, res.RepairEventID)
			}
		}
	}
	for _, id := range append(ids, repairs...) {
		if _, err := leaderClient.WaitDone(id, 15*time.Second); err != nil {
			t.Fatalf("WaitDone(%d): %v", id, err)
		}
	}

	leaderStats, err := leaderClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Fail fast on a fold error instead of timing out on catch-up: a
	// diverged follower stops applying, so its seq would stall forever.
	waitFor(t, 15*time.Second, fmt.Sprintf("follower to fold through seq %d", leaderStats.WALLastSeq), func() bool {
		info, err := followerClient.ReplStatus()
		if err != nil {
			t.Fatalf("ReplStatus: %v", err)
		}
		if info.LastError != "" {
			t.Fatalf("follower fold failed at seq %d: %s", info.LastSeq, info.LastError)
		}
		return info.LastSeq >= leaderStats.WALLastSeq
	})

	// The promoted follower must be the quiesced leader's state, exactly.
	want := captureDigest(t, leaderSrv, leaderClient)
	if err := leaderSrv.Close(); err != nil {
		t.Fatal(err)
	}
	pInfo, err := followerClient.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if pInfo.Role != "leader" || pInfo.Term < 2 {
		t.Fatalf("after promote: %+v", pInfo)
	}
	got := captureDigest(t, followerSrv, followerClient)
	diffDigest(t, want, got)
}
