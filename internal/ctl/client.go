package ctl

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"netupdate/internal/obs"
	"netupdate/internal/snapshot"
)

// Client talks the controller protocol over one TCP connection, in
// either codec. It is safe for concurrent use; calls are serialized on
// the connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	// binary selects the v2 framed codec; br reads response frames and
	// buf is the reused request-frame build buffer.
	binary bool
	br     *bufio.Reader
	buf    []byte
	// spanOn/spanOrigin: when enabled, submit/submit-batch requests
	// carry a span context stamped at send time.
	spanOn     bool
	spanOrigin uint16
	// shardOn: when enabled, submit/submit-batch requests ask for
	// per-verdict shard attribution.
	shardOn bool
}

// Dial connects to a controller at addr, speaking JSON v1.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctl: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// DialBinary connects to a controller at addr, speaking the binary v2
// framing. The server detects the codec from the first frame's magic
// byte, so no handshake round-trip is needed.
func DialBinary(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctl: dial %s: %w", addr, err)
	}
	return NewBinaryClient(conn), nil
}

// NewClient wraps an established connection with the JSON v1 codec.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(conn),
	}
}

// NewBinaryClient wraps an established connection with the binary v2
// codec.
func NewBinaryClient(conn net.Conn) *Client {
	return &Client{
		conn:   conn,
		binary: true,
		br:     bufio.NewReader(conn),
	}
}

// Close closes the connection.
func (c *Client) Close() error {
	return c.conn.Close()
}

// readResponseFrame reads one complete binary response frame from br,
// reusing scratch, and decodes it.
func readResponseFrame(br *bufio.Reader, scratch []byte) (*Response, []byte, error) {
	if cap(scratch) < FrameHeaderSize {
		scratch = make([]byte, FrameHeaderSize)
	}
	header := scratch[:FrameHeaderSize]
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, scratch, err
	}
	if header[0] != FrameMagic {
		return nil, scratch, fmt.Errorf("%w: bad response magic 0x%02x", ErrBadRequest, header[0])
	}
	n := binary.LittleEndian.Uint32(header[4:8])
	if n > MaxFramePayload {
		return nil, scratch, fmt.Errorf("%w: response payload %d exceeds %d", ErrBadRequest, n, MaxFramePayload)
	}
	need := FrameHeaderSize + int(n)
	if cap(scratch) < need {
		grown := make([]byte, need)
		copy(grown, header)
		scratch = grown
	}
	scratch = scratch[:need]
	if _, err := io.ReadFull(br, scratch[FrameHeaderSize:]); err != nil {
		return nil, scratch, err
	}
	resp, err := decodeResponseFrame(scratch)
	return resp, scratch, err
}

// Features reports the optional protocol capabilities the server
// advertised on a ping (empty for pre-feature servers).
func (c *Client) Features() ([]string, error) {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return nil, err
	}
	return resp.Features, nil
}

// EnableSpans attaches a latency span context (origin identity + submit
// wall stamp) to every subsequent submit and submit-batch request. On
// the binary codec the context rides behind a flag bit that pre-span
// servers reject, so callers must first confirm support — dial, call
// Features, and enable only when FeatureSpanContext is present. JSON v1
// servers of any age simply ignore the unknown field.
func (c *Client) EnableSpans(origin uint16) {
	c.mu.Lock()
	c.spanOn = true
	c.spanOrigin = origin
	c.mu.Unlock()
}

// EnableShardInfo asks for per-verdict shard attribution on every
// subsequent submit and submit-batch request. On the binary codec the
// request sets a flag bit (ignored by pre-shard servers, which answer
// with plain verdicts); callers wanting a guarantee should confirm
// FeatureShardVerdicts via Features first. JSON v1 servers simply omit
// the field. Single-shard servers leave Shard zero either way.
func (c *Client) EnableShardInfo() {
	c.mu.Lock()
	c.shardOn = true
	c.mu.Unlock()
}

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The transport owns the wire version: a request forwarded from
	// another connection (a gateway re-routing what it decoded) still
	// carries that connection's version stamp, and a v2 stamp inside a
	// JSON body would be rejected by the receiver's v1 parser.
	req.Version = 0
	if req.Op == OpSubmit || req.Op == OpSubmitBatch {
		if c.spanOn && req.Span == nil {
			req.Span = &obs.SpanContext{Origin: c.spanOrigin, SubmitWallNs: time.Now().UnixNano()}
		}
		if c.shardOn {
			req.ShardInfo = true
		}
	}
	var resp Response
	if c.binary {
		frame, err := AppendRequestFrame(c.buf[:0], &req)
		if err != nil {
			return Response{}, fmt.Errorf("ctl: send %s: %w", req.Op, err)
		}
		c.buf = frame[:0]
		if _, err := c.conn.Write(frame); err != nil {
			return Response{}, fmt.Errorf("ctl: send %s: %w", req.Op, err)
		}
		rp, scratch, err := readResponseFrame(c.br, c.buf)
		if cap(scratch) > cap(c.buf) {
			c.buf = scratch[:0]
		}
		if err != nil {
			return Response{}, fmt.Errorf("ctl: recv %s: %w", req.Op, err)
		}
		resp = *rp
	} else {
		if err := c.enc.Encode(req); err != nil {
			return Response{}, fmt.Errorf("ctl: send %s: %w", req.Op, err)
		}
		if err := c.dec.Decode(&resp); err != nil {
			return Response{}, fmt.Errorf("ctl: recv %s: %w", req.Op, err)
		}
	}
	return resp, respError(req.Op, &resp)
}

// respError maps a failed response to the protocol's typed errors. It is
// the one place the wire-level failure taxonomy is interpreted, shared by
// the remote Client and the in-process Server's Backend methods.
func respError(op Op, resp *Response) error {
	if resp.OK {
		return nil
	}
	// An overload rejection carries structured retry guidance: surface
	// it as a typed error so callers can match errors.Is(err,
	// ErrOverloaded) and back off by the hint.
	if ov := resp.Overload; ov != nil {
		return &OverloadError{
			QueueDepth: ov.QueueDepth,
			Watermark:  ov.Watermark,
			RetryAfter: ov.RetryAfter(),
		}
	}
	// A role rejection is typed too: errors.Is(err, ErrNotLeader)
	// with the leader's address as a redirect hint.
	if nl := resp.NotLeader; nl != nil {
		return &NotLeaderError{Role: nl.Role, Term: nl.Term, LeaderAddr: nl.LeaderAddr}
	}
	return fmt.Errorf("ctl: %s: %s", op, resp.Error)
}

// Do sends one raw request and returns the raw response, bypassing the
// typed error mapping: a refusal comes back as Response{OK: false} with
// the structured rejection payloads intact. A transport failure is
// folded into the same shape so gateway-style callers fan in uniformly.
func (c *Client) Do(req Request) Response {
	resp, err := c.roundTrip(req)
	if err != nil && resp.Error == "" && resp.Overload == nil && resp.NotLeader == nil {
		// Transport failure: roundTrip returned a zero Response.
		return Response{OK: false, Error: err.Error()}
	}
	return resp
}

// Ping checks the controller is alive.
func (c *Client) Ping() error {
	_, err := c.roundTrip(Request{Op: OpPing})
	return err
}

// Submit enqueues an update event and returns its ID.
func (c *Client) Submit(event EventSpec) (int64, error) {
	resp, err := c.roundTrip(Request{Op: OpSubmit, Event: &event})
	if err != nil {
		return 0, err
	}
	return resp.EventID, nil
}

// SubmitBatch submits many events in one request and returns one verdict
// per event, in submission order. Verdicts may mix accepted events
// (OK with an ID), validation rejections, and overload rejections; when
// any event was refused for overload the returned OverloadInfo carries
// the server's queue depth and retry-after hint.
func (c *Client) SubmitBatch(events []EventSpec) ([]SubmitVerdict, *OverloadInfo, error) {
	return c.submitBatch(events, false)
}

func (c *Client) submitBatch(events []EventSpec, retry bool) ([]SubmitVerdict, *OverloadInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpSubmitBatch, Events: events, Retry: retry})
	if err != nil {
		return nil, nil, err
	}
	if len(resp.Verdicts) != len(events) {
		return nil, nil, fmt.Errorf("ctl: submit-batch: %d verdicts for %d events", len(resp.Verdicts), len(events))
	}
	return resp.Verdicts, resp.Overload, nil
}

// Backoff bounds for SubmitBatchRetry: each round waits the larger of
// the server's retry-after hint and base<<round, capped.
const (
	retryBackoffBase = 10 * time.Millisecond
	retryBackoffCap  = 2 * time.Second
)

// SubmitBatchRetry submits events, resubmitting overload-rejected ones
// with capped exponential backoff that honors the server's retry-after
// hint. Resubmissions are marked (Request.Retry) so the server counts
// them. It returns accepted event IDs aligned with the input (0 = not
// accepted). The error is non-nil if any event was rejected for
// validation, or still refused for overload after maxAttempts rounds —
// the latter matches errors.Is(err, ErrOverloaded).
func (c *Client) SubmitBatchRetry(events []EventSpec, maxAttempts int) ([]int64, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	ids := make([]int64, len(events))
	pending := make([]int, len(events)) // indexes into events still unsubmitted
	for i := range events {
		pending[i] = i
	}
	var invalid error
	var lastOverload *OverloadInfo
	for attempt := 0; len(pending) > 0 && attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			// Clamp the shift before it can overflow time.Duration: past a
			// handful of doublings the exponential curve is above the cap
			// anyway (an unclamped shift goes negative near attempt 40 and
			// would turn the wait into a hot loop).
			wait := retryBackoffCap
			if shift := attempt - 1; shift < 30 && retryBackoffBase<<shift < retryBackoffCap {
				wait = retryBackoffBase << shift
			}
			if lastOverload != nil && lastOverload.RetryAfter() > wait {
				wait = lastOverload.RetryAfter()
			}
			if wait > retryBackoffCap {
				wait = retryBackoffCap
			}
			time.Sleep(wait)
		}
		batch := make([]EventSpec, len(pending))
		for i, idx := range pending {
			batch[i] = events[idx]
		}
		verdicts, overload, err := c.submitBatch(batch, attempt > 0)
		if err != nil {
			return ids, err
		}
		lastOverload = overload
		next := pending[:0]
		for i, v := range verdicts {
			idx := pending[i]
			switch {
			case v.OK:
				ids[idx] = v.EventID
			case v.Overloaded:
				next = append(next, idx)
			default:
				// Validation failure: retrying an invalid spec cannot help.
				if invalid == nil {
					invalid = fmt.Errorf("ctl: submit-batch: event %d rejected: %s", idx, v.Error)
				}
			}
		}
		pending = next
	}
	if invalid != nil {
		return ids, invalid
	}
	if len(pending) > 0 {
		err := &OverloadError{}
		if lastOverload != nil {
			err.QueueDepth = lastOverload.QueueDepth
			err.Watermark = lastOverload.Watermark
			err.RetryAfter = lastOverload.RetryAfter()
		}
		return ids, fmt.Errorf("ctl: submit-batch: %d events still rejected after %d attempts: %w", len(pending), maxAttempts, err)
	}
	return ids, nil
}

// Status reports one event's scheduling state.
func (c *Client) Status(eventID int64) (EventStatus, error) {
	resp, err := c.roundTrip(Request{Op: OpStatus, EventID: eventID})
	if err != nil {
		return EventStatus{}, err
	}
	if resp.Status == nil {
		return EventStatus{}, fmt.Errorf("ctl: status: empty response")
	}
	return *resp.Status, nil
}

// Results lists all completed events in completion order.
func (c *Client) Results() ([]EventStatus, error) {
	resp, err := c.roundTrip(Request{Op: OpResults})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Stats reports controller-wide aggregates.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("ctl: stats: empty response")
	}
	return *resp.Stats, nil
}

// Fault injects a fault into the running schedule and reports what it
// disrupted (links flipped, flows withdrawn, the repair event minted).
func (c *Client) Fault(spec FaultSpec) (FaultResult, error) {
	resp, err := c.roundTrip(Request{Op: OpFault, Fault: &spec})
	if err != nil {
		return FaultResult{}, err
	}
	if resp.Fault == nil {
		return FaultResult{}, fmt.Errorf("ctl: fault: empty response")
	}
	return *resp.Fault, nil
}

// ReplStatus reports the server's replication state: role, term, log
// position, registered followers (on a leader) or leader address and
// lag (on a follower).
func (c *Client) ReplStatus() (ReplInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpReplStatus})
	if err != nil {
		return ReplInfo{}, err
	}
	if resp.Repl == nil {
		return ReplInfo{}, fmt.Errorf("ctl: repl status: empty response")
	}
	return *resp.Repl, nil
}

// Promote asks a follower to take over as leader: it stops streaming,
// drains its folded backlog to quiescence, persists a bumped term and
// starts accepting writes. Promoting a server that is already the
// leader is a no-op; a deposed leader refuses.
func (c *Client) Promote() (ReplInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpReplPromote})
	if err != nil {
		return ReplInfo{}, err
	}
	if resp.Repl == nil {
		return ReplInfo{}, fmt.Errorf("ctl: promote: empty response")
	}
	return *resp.Repl, nil
}

// Trace fetches the most recent n scheduling-trace records (oldest
// first); n <= 0 fetches everything the server's ring retains.
func (c *Client) Trace(n int) ([]obs.Record, error) {
	resp, err := c.roundTrip(Request{Op: OpTrace, N: n})
	if err != nil {
		return nil, err
	}
	return resp.Trace, nil
}

// Snapshot fetches the controller's full network state.
func (c *Client) Snapshot() (*snapshot.Snapshot, error) {
	resp, err := c.roundTrip(Request{Op: OpSnapshot})
	if err != nil {
		return nil, err
	}
	if resp.Snapshot == nil {
		return nil, fmt.Errorf("ctl: snapshot: empty response")
	}
	return resp.Snapshot, nil
}

// WaitDone polls until the event completes or the timeout elapses,
// returning the final status. Poll interval is 10ms.
func (c *Client) WaitDone(eventID int64, timeout time.Duration) (EventStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(eventID)
		if err != nil {
			return EventStatus{}, err
		}
		switch st.State {
		case StateDone:
			return st, nil
		case StateUnknown:
			return st, fmt.Errorf("ctl: wait: unknown event %d", eventID)
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("ctl: wait: event %d still %s after %v", eventID, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
