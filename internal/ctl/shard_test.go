package ctl

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"netupdate/internal/sim"
	"netupdate/internal/topology"
	"netupdate/internal/wal"
)

// TestShardVerdictCodecByteIdentity: the verdict shard extension is
// flag-gated on both sides. A response encoded without the request flag
// is byte-identical whether or not verdicts carry a shard, and a
// shard-flagged encode of shardless verdicts is also unchanged — only
// the combination (request asked, verdict has one) extends the frame.
func TestShardVerdictCodecByteIdentity(t *testing.T) {
	base := Response{OK: true, Verdicts: []SubmitVerdict{
		{OK: true, EventID: 7},
		{Error: "overloaded", Overloaded: true},
	}}
	sharded := Response{OK: true, Verdicts: []SubmitVerdict{
		{OK: true, EventID: 7, Shard: 3},
		{Error: "overloaded", Overloaded: true},
	}}

	plain, err := AppendResponseFrame(nil, &base)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := AppendResponseFrame(nil, &sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, legacy) {
		t.Errorf("shardless encode changed by verdict Shard field:\n %x\n %x", plain, legacy)
	}
	flaggedZero, err := AppendResponseFrameFor(nil, &base, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, flaggedZero) {
		t.Errorf("shard-flagged encode of zero-shard verdicts changed:\n %x\n %x", plain, flaggedZero)
	}

	extended, err := AppendResponseFrameFor(nil, &sharded, true)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain, extended) {
		t.Fatal("shard-flagged encode did not extend the frame")
	}
	got, err := decodeResponseFrame(extended)
	if err != nil {
		t.Fatal(err)
	}
	if got.Verdicts[0].Shard != 3 || got.Verdicts[1].Shard != 0 {
		t.Errorf("decoded shards = %d,%d, want 3,0", got.Verdicts[0].Shard, got.Verdicts[1].Shard)
	}
	if got.Verdicts[0].EventID != 7 || !got.Verdicts[1].Overloaded {
		t.Errorf("shard extension corrupted verdict bodies: %+v", got.Verdicts)
	}
}

// TestShardRequestFlagRoundTrip: ShardInfo rides a request flag bit on
// the binary codec; frames without it are byte-identical to pre-shard
// frames.
func TestShardRequestFlagRoundTrip(t *testing.T) {
	req := Request{Op: OpSubmitBatch, Events: []EventSpec{
		{Kind: "test", Flows: []FlowSpec{{Src: 1, Dst: 2, DemandBps: 5}}},
	}}
	plain, err := AppendRequestFrame(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	req.ShardInfo = true
	flagged, err := AppendRequestFrame(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(flagged) {
		t.Fatalf("shard flag changed frame length: %d vs %d", len(plain), len(flagged))
	}
	if bytes.Equal(plain, flagged) {
		t.Fatal("shard flag not encoded")
	}
	got, err := parseBinaryRequest(flagged)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ShardInfo {
		t.Error("ShardInfo lost in round-trip")
	}
	got, err = parseBinaryRequest(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardInfo {
		t.Error("ShardInfo set on an unflagged frame")
	}
}

// TestShardIDStriding: shard s of N mints IDs s, s+N, s+2N, ... and
// stamps its identity into verdicts and stats.
func TestShardIDStriding(t *testing.T) {
	planner, scheduler, ft := buildWALWorld(t, true)
	srv, _, err := New(Config{
		Planner: planner, Scheduler: scheduler,
		Sim:   sim.Config{InstallTime: time.Millisecond},
		Shard: ShardIdentity{ID: 2, Count: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	hosts := ft.Hosts()
	want := []int64{2, 6, 10}
	for i, wantID := range want {
		spec := EventSpec{Kind: "test", Flows: []FlowSpec{{
			Src: int(hosts[0]), Dst: int(hosts[1]), DemandBps: 1e6, SizeBytes: 1e4,
		}}}
		verdicts, _, err := srv.SubmitBatch([]EventSpec{spec})
		if err != nil {
			t.Fatal(err)
		}
		if verdicts[0].EventID != wantID {
			t.Errorf("event %d minted ID %d, want %d", i, verdicts[0].EventID, wantID)
		}
		if verdicts[0].Shard != 2 {
			t.Errorf("event %d verdict shard = %d, want 2", i, verdicts[0].Shard)
		}
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardID != 2 || st.Shards != 4 {
		t.Errorf("stats shard = %d/%d, want 2/4", st.ShardID, st.Shards)
	}
}

// TestShardWALRecoveryKeepsStride: a sharded engine's WAL replays onto
// the same ID lattice, and the log refuses to fold into a different
// shard slot.
func TestShardWALRecoveryKeepsStride(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	var hosts []topology.NodeID
	boot := func(id, count int) (*Server, *RecoveryInfo, error) {
		log, err := wal.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		planner, scheduler, ft := buildWALWorld(t, log.Checkpoint() == nil)
		hosts = ft.Hosts()
		return New(Config{
			Planner: planner, Scheduler: scheduler,
			Sim:   sim.Config{InstallTime: time.Millisecond},
			Shard: ShardIdentity{ID: id, Count: count},
			WAL:   &WALConfig{Log: log},
		})
	}

	srv, _, err := boot(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := EventSpec{Kind: "test", Flows: []FlowSpec{{
		Src: int(hosts[0]), Dst: int(hosts[1]), DemandBps: 1e6, SizeBytes: 1e4,
	}}}
	verdicts, _, err := srv.SubmitBatch([]EventSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].EventID != 3 {
		t.Fatalf("first ID = %d, want 3", verdicts[0].EventID)
	}
	if _, _, err := srv.SubmitBatch([]EventSpec{spec}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening in the same slot replays both events and keeps minting
	// on the lattice: next ID is 11.
	srv2, rec, err := boot(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.ReplayedRecords != 2 {
		t.Fatalf("recovery info = %+v, want 2 replayed records", rec)
	}
	verdicts, _, err = srv2.SubmitBatch([]EventSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].EventID != 11 {
		t.Errorf("post-recovery ID = %d, want 11", verdicts[0].EventID)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	// A different shard slot is a different world: the meta check
	// refuses before replaying anything.
	if bad, _, err := boot(2, 4); !errors.Is(err, wal.ErrMetaMismatch) {
		if err == nil {
			_ = bad.Close()
		}
		t.Errorf("wrong-slot boot error = %v, want ErrMetaMismatch", err)
	}
}
